package main

import (
	"strings"
	"testing"

	"rfabric/internal/obs"
)

func TestSparkline(t *testing.T) {
	if got := sparkline(nil); got != "" {
		t.Fatalf("empty sparkline = %q", got)
	}
	got := sparkline([]float64{0, 1, 2, 4, 8})
	if len([]rune(got)) != 5 {
		t.Fatalf("sparkline width = %d, want 5 (%q)", len([]rune(got)), got)
	}
	runes := []rune(got)
	if runes[0] != '▁' || runes[4] != '█' {
		t.Fatalf("sparkline extremes wrong: %q", got)
	}
	// All-zero input stays at the floor instead of dividing by zero.
	if got := sparkline([]float64{0, 0, 0}); got != "▁▁▁" {
		t.Fatalf("all-zero sparkline = %q", got)
	}
}

func TestFmtCount(t *testing.T) {
	for _, c := range []struct {
		in   float64
		want string
	}{
		{0, "0"}, {7, "7"}, {0.25, "0.25"}, {1500, "1.5k"},
		{2_500_000, "2.50M"}, {3_000_000_000, "3.00G"},
	} {
		if got := fmtCount(c.in); got != c.want {
			t.Errorf("fmtCount(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSeriesColumns(t *testing.T) {
	doc := obs.WindowsJSON{
		NowUnix: 1005,
		Series: []obs.WindowPoint{
			{UnixSec: 1001, Queries: 4, P99Cycles: 100},
			{UnixSec: 1003, Queries: 2, P99Cycles: 300}, // gap at 1002, 1004–1005
		},
	}
	qps, p99 := seriesColumns(doc, 6)
	if len(qps) != 6 || len(p99) != 6 {
		t.Fatalf("column widths = %d/%d, want 6", len(qps), len(p99))
	}
	want := []float64{0, 4, 0, 2, 0, 0} // seconds 1000..1005
	for i := range want {
		if qps[i] != want[i] {
			t.Fatalf("qps columns = %v, want %v", qps, want)
		}
	}
	if p99[3] != 300 || p99[1] != 100 {
		t.Fatalf("p99 columns = %v", p99)
	}
}

func TestRenderTop(t *testing.T) {
	f := topFrame{
		win: obs.WindowsJSON{
			NowUnix: 1700000000,
			Window: obs.WindowSnapshot{
				WindowSeconds: 60, Queries: 120, Errors: 6, QPS: 2,
				ErrorRate: 0.05, SlowRate: 0.01, P50Cycles: 40_000,
				P95Cycles: 900_000, P99Cycles: 2_000_000, MeanCycles: 120_000,
				DRAMBytesPerSec: 4096, CPUBytesPerSec: 1024, CacheMissRatio: 0.25,
				MeanWallNanos: 52_000, MeanAllocBytes: 1800,
			},
			Series: []obs.WindowPoint{{UnixSec: 1699999999, Queries: 3, P99Cycles: 1e6}},
		},
		alerts: obs.AlertsJSON{
			Firing: 1,
			Rules: []obs.AlertStatus{
				{Name: "high_p99", Severity: "page", State: "firing", Value: 2e6, Threshold: 1e6, FiredTotal: 2},
				{Name: "err_burn", Severity: "warn", State: "inactive", Value: 0.1, Threshold: 10},
			},
		},
		metrics: obs.ExportJSON{
			Counters: []obs.SeriesJSON{
				{Name: "rfabric_queries_total", Labels: `{engine="RM"}`, Value: 120},
				{Name: "rfabric_rows_scanned_total", Value: 99999},
			},
		},
		healthy: false,
	}
	var b strings.Builder
	renderTop(&b, "http://localhost:8080", f)
	out := b.String()

	for _, want := range []string{
		"rfbench top", "http://localhost:8080", "NOT READY",
		"window 60s", "qps", "p99", "2.00M", // p99 cycles formatted
		"alerts (1 firing)", "! high_p99", "firing", "err_burn",
		"top counters", "rfabric_queries_total", "rfabric_rows_scanned_total",
		"▁", // sparkline rendered
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
	// Counters sorted hottest first: rows_scanned (99999) above queries (120).
	if strings.Index(out, "rfabric_rows_scanned_total") > strings.Index(out, `rfabric_queries_total{engine="RM"}`) {
		t.Errorf("top counters not sorted by value:\n%s", out)
	}
}
