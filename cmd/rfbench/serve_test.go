package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"rfabric/internal/obs"
)

// End-to-end test of the -serve surface through httptest: every endpoint
// answers, the health pair gates correctly, and the windows document
// reflects the warmup query. This is the in-process twin of CI's curl
// smoke step.
func TestServeEndpoints(t *testing.T) {
	mux, alerts, err := setupServe(2000, 1, 10_000_000, nil, io.Discard)
	if err != nil {
		t.Fatalf("setupServe: %v", err)
	}
	defer alerts.Stop()
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}

	// Liveness and readiness: the warmup already ran, nothing fires.
	code, body := get("/healthz")
	if code != 200 || !strings.Contains(string(body), `"status": "ok"`) {
		t.Fatalf("/healthz = %d %s", code, body)
	}
	if code, _ := get("/readyz"); code != 200 {
		t.Fatalf("/readyz = %d, want 200", code)
	}

	// The windows saw the warmup query.
	code, body = get("/debug/windows.json")
	if code != 200 {
		t.Fatalf("/debug/windows.json = %d", code)
	}
	var win obs.WindowsJSON
	if err := json.Unmarshal(body, &win); err != nil {
		t.Fatalf("windows.json: %v\n%s", err, body)
	}
	if win.Window.Queries == 0 || win.Window.MeanCycles == 0 {
		t.Fatalf("windows empty after warmup: %+v", win.Window)
	}

	// The default alert rules are mounted and evaluated lazily (the ticker
	// is not started in tests; the document still renders).
	code, body = get("/debug/alerts")
	if code != 200 {
		t.Fatalf("/debug/alerts = %d", code)
	}
	var al obs.AlertsJSON
	if err := json.Unmarshal(body, &al); err != nil {
		t.Fatalf("alerts: %v\n%s", err, body)
	}
	if len(al.Rules) != len(defaultAlertRules) {
		t.Fatalf("%d rules mounted, want %d: %+v", len(al.Rules), len(defaultAlertRules), al.Rules)
	}

	// Build info flows through /metrics.
	if code, body := get("/metrics"); code != 200 || !strings.Contains(string(body), "rfabric_build_info") {
		t.Fatalf("/metrics missing build info: %d\n%s", code, body)
	}

	// A query runs, lands in the statement store, and updates the windows.
	if code, body := get("/query?q=" + url.QueryEscape("SELECT COUNT(*) FROM lineitem WHERE l_quantity < 25")); code != 200 {
		t.Fatalf("/query = %d %s", code, body)
	}
	if code, body := get("/debug/statements"); code != 200 || !strings.Contains(string(body), "lineitem") {
		t.Fatalf("/debug/statements = %d %s", code, body)
	}
	code, body = get("/debug/windows.json")
	var after obs.WindowsJSON
	if code != 200 || json.Unmarshal(body, &after) != nil {
		t.Fatalf("windows after query: %d", code)
	}
	if after.Window.Queries <= win.Window.Queries {
		t.Fatalf("query did not advance the windows: %d -> %d", win.Window.Queries, after.Window.Queries)
	}

	if code, _ := get("/query"); code != http.StatusBadRequest {
		t.Fatalf("missing q: %d, want 400", code)
	}
}

// TestServeCustomRules: -alert flags replace the defaults, and a bad rule
// fails setup instead of serving with half a config.
func TestServeCustomRules(t *testing.T) {
	mux, alerts, err := setupServe(500, 1, 0, []string{"only: qps > 1e9 severity warn"}, io.Discard)
	if err != nil {
		t.Fatalf("setupServe with custom rule: %v", err)
	}
	defer alerts.Stop()
	srv := httptest.NewServer(mux)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/alerts")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var al obs.AlertsJSON
	if err := json.NewDecoder(resp.Body).Decode(&al); err != nil {
		t.Fatal(err)
	}
	if len(al.Rules) != 1 || al.Rules[0].Name != "only" {
		t.Fatalf("custom rules not honored: %+v", al.Rules)
	}

	if _, _, err := setupServe(500, 1, 0, []string{"broken rule text"}, io.Discard); err == nil {
		t.Fatal("bad -alert rule accepted")
	}
}
