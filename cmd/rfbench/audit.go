package main

import (
	"fmt"
	"os"

	"rfabric"
)

// runAudit replays the default TPC-H statement set across every execution
// path on a freshly built catalog and reports optimizer accuracy: per-path
// estimated-vs-actual modeled cycles and q-errors, whether AUTO's choice
// was the path that actually won, what it would choose with the observed
// selectivity, and the statement store's view of the whole replay.
func runAudit(rows int, seed int64, jsonOut bool) error {
	rep, err := rfabric.RunAudit(rfabric.DefaultConfig(), rows, seed)
	if err != nil {
		return err
	}
	if jsonOut {
		if err := rep.WriteJSON(os.Stdout); err != nil {
			return err
		}
	} else {
		rep.WriteTable(os.Stdout)
	}
	if bad := rep.CheckShape(); len(bad) != 0 {
		for _, v := range bad {
			fmt.Fprintln(os.Stderr, "rfbench: audit shape VIOLATION: "+v)
		}
		return fmt.Errorf("%d audit shape violations", len(bad))
	}
	return nil
}
