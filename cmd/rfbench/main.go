// Command rfbench regenerates the paper's evaluation figures and the
// repository's ablation studies at any scale.
//
// Usage:
//
//	rfbench [flags] <experiment>...
//	rfbench -serve :8080
//	rfbench -bench [-bench-name NAME] [<experiment>...]
//	rfbench -compare [-tolerance PCT] old.json new.json
//
// Experiments: fig5, fig6a, fig6b, fig7a, fig7b, par-speedup, join, sequence,
// abl-prefetch, abl-buffer, abl-clock, abl-banks, abl-mvcc, abl-pushdown,
// abl-index, abl-rmc, abl-compress, abl-storage, abl-offload, or "all".
//
// Flags:
//
//	-rows N         micro-benchmark rows for fig5/fig6 (default 96000)
//	-sizes list     comma-separated target-column MiB for fig7 (default 2,4,8,16)
//	-workers list   comma-separated worker-pool sizes for par-speedup
//	                (default 1,2,4,8)
//	-paper-scale    run fig7 at the paper's sizes (2..128 MiB targets,
//	                tables up to ~700 MB; needs several GB of RAM)
//	-seed N         generator seed (default 1)
//	-json           emit results as a JSON array instead of tables
//	-audit          replay the TPC-H statement set across all six engines and
//	                report estimated-vs-actual cycles, q-errors, and whether
//	                AUTO chose the path that actually won (-json for the
//	                machine-readable report; see EXPERIMENTS.md for its schema)
//	-serve addr     serve live observability over a demo TPC-H database:
//	                GET /metrics (Prometheus), /metrics.json, /healthz,
//	                /readyz, /debug/windows.json, /debug/alerts,
//	                /debug/trace/last, /debug/trace/last.chrome,
//	                /debug/statements, /debug/slowlog, /query?q=SQL
//	-slow-cycles N  modeled-cycle threshold arming -serve's slow-query log
//	                (default 10000000; 0 disables)
//	-alert RULE     alert rule for -serve, e.g.
//	                'high_p99: p99_cycles > 5e8 for 10s over 30s severity page';
//	                repeatable; overrides the built-in default rules
//	-top URL        live terminal dashboard polling a -serve instance
//	                (e.g. -top http://localhost:8080)
//	-top-interval d poll interval for -top (default 1s)
//	-top-count N    frames to render before exiting -top (0 = run forever)
//	-bench          record the experiments (default: fig5, par-speedup) into
//	                BENCH_<name>.json for regression gating
//	-bench-name s   record name for -bench output (default tier1)
//	-compare        gate new.json against old.json; exits non-zero when any
//	                cycle metric grew past -tolerance percent
//	-tolerance T    percent cycle growth -compare tolerates (default 5)
//	-cpuprofile f   write a pprof CPU profile of the run to f
//	-memprofile f   write a pprof heap profile at exit to f
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"rfabric/internal/experiments"
)

func main() {
	rows := flag.Int("rows", 96_000, "micro-benchmark rows for fig5/fig6")
	sizes := flag.String("sizes", "2,4,8,16", "comma-separated target-column MiB for fig7")
	workers := flag.String("workers", "1,2,4,8", "comma-separated worker-pool sizes for par-speedup")
	paperScale := flag.Bool("paper-scale", false, "run fig7 at the paper's 2..128 MiB targets")
	seed := flag.Int64("seed", 1, "generator seed")
	jsonOut := flag.Bool("json", false, "emit results as JSON instead of tables")
	serveAddr := flag.String("serve", "", "serve live metrics and traces on this address (e.g. :8080)")
	slowCycles := flag.Uint64("slow-cycles", 10_000_000, "modeled-cycle threshold arming -serve's slow-query log (0 disables)")
	var alertRules []string
	flag.Func("alert", "alert rule for -serve (repeatable; overrides the defaults)", func(s string) error {
		alertRules = append(alertRules, s)
		return nil
	})
	topURL := flag.String("top", "", "live terminal dashboard polling a -serve instance at this URL")
	topInterval := flag.Duration("top-interval", time.Second, "poll interval for -top")
	topCount := flag.Int("top-count", 0, "frames to render before -top exits (0 = forever)")
	audit := flag.Bool("audit", false, "replay the TPC-H statement set across all engines and report optimizer accuracy")
	benchOut := flag.Bool("bench", false, "record experiments into BENCH_<name>.json for regression gating")
	benchName := flag.String("bench-name", "tier1", "record name for -bench output")
	compare := flag.Bool("compare", false, "compare two BENCH_*.json records: rfbench -compare old.json new.json")
	tolerance := flag.Float64("tolerance", 5, "percent cycle growth -compare tolerates before failing")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatalf("memprofile: %v", err)
			}
			defer f.Close()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatalf("memprofile: %v", err)
			}
		}()
	}

	opt := experiments.DefaultOptions()
	opt.MicroRows = *rows
	opt.Seed = *seed
	if *paperScale {
		opt = experiments.PaperScaleOptions()
		opt.Seed = *seed
	} else if trimmed := strings.TrimSpace(*sizes); trimmed != "" {
		opt.Fig7TargetMB = nil
		for _, part := range strings.Split(trimmed, ",") {
			mb, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || mb <= 0 {
				fatalf("bad -sizes entry %q", part)
			}
			opt.Fig7TargetMB = append(opt.Fig7TargetMB, mb)
		}
	}

	if trimmed := strings.TrimSpace(*workers); trimmed != "" {
		opt.ParWorkers = nil
		for _, part := range strings.Split(trimmed, ",") {
			w, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || w <= 0 {
				fatalf("bad -workers entry %q", part)
			}
			opt.ParWorkers = append(opt.ParWorkers, w)
		}
	}

	if *serveAddr != "" {
		if err := serve(*serveAddr, *rows, *seed, *slowCycles, alertRules); err != nil {
			fatalf("serve: %v", err)
		}
		return
	}

	if *topURL != "" {
		if err := runTop(os.Stdout, *topURL, *topInterval, *topCount); err != nil {
			fatalf("top: %v", err)
		}
		return
	}

	if *audit {
		if err := runAudit(*rows, *seed, *jsonOut); err != nil {
			fatalf("audit: %v", err)
		}
		return
	}

	if *compare {
		if flag.NArg() != 2 {
			fatalf("-compare needs exactly two record files: rfbench -compare old.json new.json")
		}
		if err := runCompare(flag.Arg(0), flag.Arg(1), *tolerance); err != nil {
			fatalf("%v", err)
		}
		return
	}

	if *benchOut {
		if err := runBench(flag.Args(), opt, *benchName); err != nil {
			fatalf("bench: %v", err)
		}
		return
	}

	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if len(args) == 1 && args[0] == "all" {
		args = []string{"fig5", "fig6a", "fig6b", "fig7a", "fig7b", "par-speedup", "join", "sequence",
			"abl-prefetch", "abl-buffer", "abl-clock", "abl-banks",
			"abl-mvcc", "abl-pushdown", "abl-index", "abl-rmc", "abl-compress", "abl-storage",
			"abl-offload"}
	}

	if *jsonOut {
		runJSON(args, opt)
		return
	}
	for i, name := range args {
		if i > 0 {
			fmt.Println()
		}
		result, violations, err := runExperiment(name, opt)
		if err != nil {
			fatalf("%s: %v", name, err)
		}
		result.(tableWriter).WriteTable(os.Stdout)
		if _, checked := result.(shapeChecker); checked {
			report(violations)
		}
	}
}

// tableWriter is the human-readable face every experiment result has.
type tableWriter interface{ WriteTable(w io.Writer) }

// shapeChecker verifies an experiment against the paper's qualitative
// claims; ablations without a claim to check don't implement it.
type shapeChecker interface{ CheckShape() []string }

// jsonEntry is one experiment's machine-readable record. Violations is
// empty (never null) for experiments whose shape held, and omitted is not
// an option — CI smoke tests key off the field being present.
type jsonEntry struct {
	Experiment string   `json:"experiment"`
	Result     any      `json:"result"`
	Violations []string `json:"violations"`
}

func runJSON(names []string, opt experiments.Options) {
	entries := make([]jsonEntry, 0, len(names))
	for _, name := range names {
		result, violations, err := runExperiment(name, opt)
		if err != nil {
			fatalf("%s: %v", name, err)
		}
		if violations == nil {
			violations = []string{}
		}
		entries = append(entries, jsonEntry{Experiment: name, Result: result, Violations: violations})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(entries); err != nil {
		fatalf("encoding JSON: %v", err)
	}
}

// runExperiment executes one named experiment and returns its result plus
// any shape violations (nil when the experiment has no shape claims).
func runExperiment(name string, opt experiments.Options) (any, []string, error) {
	var result any
	var err error
	switch name {
	case "fig5":
		result, err = experiments.Figure5(opt)
	case "fig6a", "fig6b":
		result, err = experiments.Figure6(opt)
	case "fig7a":
		result, err = experiments.Figure7(opt, experiments.Q1)
	case "fig7b":
		result, err = experiments.Figure7(opt, experiments.Q6)
	case "par-speedup":
		result, err = experiments.ParallelSpeedup(opt, 8, opt.MicroRows, opt.ParWorkers)
	case "join":
		result, err = experiments.JoinQ3(opt, opt.MicroRows, opt.ParWorkers)
	case "sequence":
		result, err = experiments.Sequence(opt, opt.MicroRows, 8)
	case "abl-prefetch":
		result, err = experiments.AblationPrefetchStreams(opt, []int{1, 2, 4, 8, 16})
	case "abl-buffer":
		result, err = experiments.AblationFabricBuffer(opt, []int{64 << 10, 256 << 10, 1 << 20, 2 << 20, 8 << 20})
	case "abl-clock":
		result, err = experiments.AblationFabricClock(opt, []int{1, 5, 15, 30})
	case "abl-banks":
		result, err = experiments.AblationDRAMBanks(opt, []int{1, 2, 4, 8, 16})
	case "abl-mvcc":
		result, err = experiments.AblationMVCC(opt, opt.MicroRows/2)
	case "abl-pushdown":
		result, err = experiments.AblationPushdown(opt, opt.MicroRows/2)
	case "abl-index":
		result, err = experiments.AblationIndex(opt, opt.MicroRows)
	case "abl-rmc":
		result, err = experiments.AblationRMC(opt, opt.MicroRows/2)
	case "abl-compress":
		result, err = experiments.AblationCompression(opt, opt.MicroRows/4)
	case "abl-storage":
		result, err = experiments.AblationStorage(opt, opt.MicroRows/4)
	case "abl-offload":
		result, err = experiments.AblationOffload(opt, opt.MicroRows/2)
	default:
		return nil, nil, fmt.Errorf("unknown experiment (try fig5, fig6a, fig7a, fig7b, par-speedup, join, abl-*, or all)")
	}
	if err != nil {
		return nil, nil, err
	}
	if sc, ok := result.(shapeChecker); ok {
		return result, sc.CheckShape(), nil
	}
	return result, nil, nil
}

func report(violations []string) {
	if len(violations) == 0 {
		fmt.Println("  shape: OK (matches the paper's qualitative claims)")
		return
	}
	for _, v := range violations {
		fmt.Println("  shape VIOLATION: " + v)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rfbench: "+format+"\n", args...)
	os.Exit(1)
}
