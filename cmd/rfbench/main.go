// Command rfbench regenerates the paper's evaluation figures and the
// repository's ablation studies at any scale.
//
// Usage:
//
//	rfbench [flags] <experiment>...
//
// Experiments: fig5, fig6a, fig6b, fig7a, fig7b, par-speedup, abl-prefetch,
// abl-buffer, abl-clock, abl-banks, abl-mvcc, abl-pushdown, abl-index,
// abl-rmc, abl-compress, abl-storage, or "all".
//
// Flags:
//
//	-rows N         micro-benchmark rows for fig5/fig6 (default 96000)
//	-sizes list     comma-separated target-column MiB for fig7 (default 2,4,8,16)
//	-workers list   comma-separated worker-pool sizes for par-speedup
//	                (default 1,2,4,8)
//	-paper-scale    run fig7 at the paper's sizes (2..128 MiB targets,
//	                tables up to ~700 MB; needs several GB of RAM)
//	-seed N         generator seed (default 1)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"rfabric/internal/experiments"
)

func main() {
	rows := flag.Int("rows", 96_000, "micro-benchmark rows for fig5/fig6")
	sizes := flag.String("sizes", "2,4,8,16", "comma-separated target-column MiB for fig7")
	workers := flag.String("workers", "1,2,4,8", "comma-separated worker-pool sizes for par-speedup")
	paperScale := flag.Bool("paper-scale", false, "run fig7 at the paper's 2..128 MiB targets")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	opt := experiments.DefaultOptions()
	opt.MicroRows = *rows
	opt.Seed = *seed
	if *paperScale {
		opt = experiments.PaperScaleOptions()
		opt.Seed = *seed
	} else if trimmed := strings.TrimSpace(*sizes); trimmed != "" {
		opt.Fig7TargetMB = nil
		for _, part := range strings.Split(trimmed, ",") {
			mb, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || mb <= 0 {
				fatalf("bad -sizes entry %q", part)
			}
			opt.Fig7TargetMB = append(opt.Fig7TargetMB, mb)
		}
	}

	if trimmed := strings.TrimSpace(*workers); trimmed != "" {
		opt.ParWorkers = nil
		for _, part := range strings.Split(trimmed, ",") {
			w, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || w <= 0 {
				fatalf("bad -workers entry %q", part)
			}
			opt.ParWorkers = append(opt.ParWorkers, w)
		}
	}

	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if len(args) == 1 && args[0] == "all" {
		args = []string{"fig5", "fig6a", "fig6b", "fig7a", "fig7b", "par-speedup",
			"abl-prefetch", "abl-buffer", "abl-clock", "abl-banks",
			"abl-mvcc", "abl-pushdown", "abl-index", "abl-rmc", "abl-compress", "abl-storage"}
	}

	for i, name := range args {
		if i > 0 {
			fmt.Println()
		}
		if err := run(name, opt); err != nil {
			fatalf("%s: %v", name, err)
		}
	}
}

func run(name string, opt experiments.Options) error {
	switch name {
	case "fig5":
		r, err := experiments.Figure5(opt)
		if err != nil {
			return err
		}
		r.WriteTable(os.Stdout)
		report(r.CheckShape())
	case "fig6a", "fig6b":
		r, err := experiments.Figure6(opt)
		if err != nil {
			return err
		}
		r.WriteTable(os.Stdout)
		report(r.CheckShape())
	case "fig7a":
		return runFig7(opt, experiments.Q1)
	case "fig7b":
		return runFig7(opt, experiments.Q6)
	case "par-speedup":
		r, err := experiments.ParallelSpeedup(opt, 8, opt.MicroRows, opt.ParWorkers)
		if err != nil {
			return err
		}
		r.WriteTable(os.Stdout)
		report(r.CheckShape())
	case "abl-prefetch":
		return runAblation(experiments.AblationPrefetchStreams(opt, []int{1, 2, 4, 8, 16}))
	case "abl-buffer":
		return runAblation(experiments.AblationFabricBuffer(opt, []int{64 << 10, 256 << 10, 1 << 20, 2 << 20, 8 << 20}))
	case "abl-clock":
		return runAblation(experiments.AblationFabricClock(opt, []int{1, 5, 15, 30}))
	case "abl-banks":
		return runAblation(experiments.AblationDRAMBanks(opt, []int{1, 2, 4, 8, 16}))
	case "abl-mvcc":
		return runAblation(experiments.AblationMVCC(opt, opt.MicroRows/2))
	case "abl-pushdown":
		return runAblation(experiments.AblationPushdown(opt, opt.MicroRows/2))
	case "abl-index":
		return runAblation(experiments.AblationIndex(opt, opt.MicroRows))
	case "abl-rmc":
		return runAblation(experiments.AblationRMC(opt, opt.MicroRows/2))
	case "abl-compress":
		r, err := experiments.AblationCompression(opt, opt.MicroRows/4)
		if err != nil {
			return err
		}
		r.WriteTable(os.Stdout)
	case "abl-storage":
		r, err := experiments.AblationStorage(opt, opt.MicroRows/4)
		if err != nil {
			return err
		}
		r.WriteTable(os.Stdout)
	default:
		return fmt.Errorf("unknown experiment (try fig5, fig6a, fig7a, fig7b, par-speedup, abl-*, or all)")
	}
	return nil
}

func runFig7(opt experiments.Options, q experiments.TPCHQuery) error {
	r, err := experiments.Figure7(opt, q)
	if err != nil {
		return err
	}
	r.WriteTable(os.Stdout)
	report(r.CheckShape())
	return nil
}

func runAblation(r *experiments.AblationResult, err error) error {
	if err != nil {
		return err
	}
	r.WriteTable(os.Stdout)
	return nil
}

func report(violations []string) {
	if len(violations) == 0 {
		fmt.Println("  shape: OK (matches the paper's qualitative claims)")
		return
	}
	for _, v := range violations {
		fmt.Println("  shape VIOLATION: " + v)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rfbench: "+format+"\n", args...)
	os.Exit(1)
}
