package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"rfabric/internal/obs"
)

// rfbench -top: a live terminal dashboard over a -serve instance. Each
// frame polls /debug/windows.json, /debug/alerts, and /metrics.json, then
// redraws in place (ANSI cursor-home + clear-to-end): a scoreboard of the
// rolling window, QPS and p99 sparklines from the per-second series, alert
// states, and the hottest counters from the registry.

// topFrame is one poll's worth of server state.
type topFrame struct {
	win     obs.WindowsJSON
	alerts  obs.AlertsJSON
	metrics obs.ExportJSON
	healthy bool
}

// runTop polls baseURL every interval and renders frames to out until
// count frames have been drawn (count <= 0 runs until the process is
// killed). The first failed poll of a run is fatal — a wrong URL should
// error out, not redraw forever — while later failures render a
// "connection lost" banner and keep polling.
func runTop(out io.Writer, baseURL string, interval time.Duration, count int) error {
	baseURL = strings.TrimSuffix(baseURL, "/")
	if !strings.Contains(baseURL, "://") {
		baseURL = "http://" + baseURL
	}
	client := &http.Client{Timeout: 5 * time.Second}
	for frame := 0; count <= 0 || frame < count; frame++ {
		f, err := pollTop(client, baseURL)
		if err != nil {
			if frame == 0 {
				return err
			}
			fmt.Fprintf(out, "\x1b[H\x1b[Jrfbench top — %s — connection lost: %v\n", baseURL, err)
		} else {
			fmt.Fprint(out, "\x1b[H\x1b[J")
			renderTop(out, baseURL, f)
		}
		if count > 0 && frame == count-1 {
			break
		}
		time.Sleep(interval)
	}
	return nil
}

// pollTop fetches one frame. Windows and alerts are required; the metrics
// registry is best-effort (older servers may not expose it).
func pollTop(client *http.Client, baseURL string) (topFrame, error) {
	var f topFrame
	if err := getJSON(client, baseURL+"/debug/windows.json", &f.win); err != nil {
		return f, err
	}
	if err := getJSON(client, baseURL+"/debug/alerts", &f.alerts); err != nil {
		return f, err
	}
	getJSON(client, baseURL+"/metrics.json", &f.metrics)
	resp, err := client.Get(baseURL + "/readyz")
	if err == nil {
		f.healthy = resp.StatusCode == http.StatusOK
		resp.Body.Close()
	}
	return f, nil
}

func getJSON(client *http.Client, url string, into any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

// sparkGlyphs are the eight-level unicode bars a sparkline is drawn with.
var sparkGlyphs = []rune("▁▂▃▄▅▆▇█")

// sparkline scales vals into an eight-level bar string. All-zero input
// renders as all-minimum bars; an empty slice renders empty.
func sparkline(vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	max := 0.0
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		i := 0
		if max > 0 {
			i = int(v / max * float64(len(sparkGlyphs)-1))
		}
		b.WriteRune(sparkGlyphs[i])
	}
	return b.String()
}

// seriesColumns resolves the trailing width seconds of a window series into
// dense per-second QPS and p99 columns, filling gap seconds with zeros so
// the sparkline's time axis is uniform.
func seriesColumns(doc obs.WindowsJSON, width int) (qps, p99 []float64) {
	if width <= 0 || len(doc.Series) == 0 {
		return nil, nil
	}
	end := doc.NowUnix
	if last := doc.Series[len(doc.Series)-1].UnixSec; last > end {
		end = last
	}
	start := end - int64(width) + 1
	qps = make([]float64, width)
	p99 = make([]float64, width)
	for _, p := range doc.Series {
		if p.UnixSec < start || p.UnixSec > end {
			continue
		}
		i := int(p.UnixSec - start)
		qps[i] = float64(p.Queries)
		p99[i] = p.P99Cycles
	}
	return qps, p99
}

// fmtCount renders a number with k/M/G suffixes for dashboard columns.
func fmtCount(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	case v == 0:
		return "0"
	case v < 10 && v != float64(int64(v)):
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// gaugeValue finds a gauge by name in the exported registry (0 when the
// server doesn't publish it — e.g. the group cache is off).
func gaugeValue(m obs.ExportJSON, name string) float64 {
	for _, g := range m.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}

// renderTop draws one dashboard frame. Pure function of the frame — tested
// without a terminal or a server.
func renderTop(w io.Writer, baseURL string, f topFrame) {
	s := f.win.Window
	health := "READY"
	if !f.healthy {
		health = "NOT READY"
	}
	fmt.Fprintf(w, "rfbench top — %s — %s — window %ds — %s\n\n",
		baseURL, time.Unix(f.win.NowUnix, 0).UTC().Format("15:04:05"), s.WindowSeconds, health)

	fmt.Fprintf(w, "  queries %-10s errors %-8s qps %-10s err%% %-8s slow%% %-8s\n",
		fmtCount(float64(s.Queries)), fmtCount(float64(s.Errors)),
		fmtCount(s.QPS), fmt.Sprintf("%.2f", s.ErrorRate*100), fmt.Sprintf("%.2f", s.SlowRate*100))
	fmt.Fprintf(w, "  cycles  p50 %-10s p95 %-10s p99 %-10s mean %-10s\n",
		fmtCount(s.P50Cycles), fmtCount(s.P95Cycles), fmtCount(s.P99Cycles), fmtCount(s.MeanCycles))
	fmt.Fprintf(w, "  bytes/s dram %-10s cpu %-10s miss%% %-7s cyc/s %-10s\n",
		fmtCount(s.DRAMBytesPerSec), fmtCount(s.CPUBytesPerSec),
		fmt.Sprintf("%.1f", s.CacheMissRatio*100), fmtCount(s.CyclesPerSec))
	fmt.Fprintf(w, "  gcache  hits %-10s miss %-9s hit%% %-8s resident %-10s entries %-8s\n",
		fmtCount(float64(s.GroupHits)), fmtCount(float64(s.GroupMisses)),
		fmt.Sprintf("%.1f", s.GroupHitRatio*100),
		fmtCount(gaugeValue(f.metrics, "rfabric_groupcache_bytes"))+"B",
		fmtCount(gaugeValue(f.metrics, "rfabric_groupcache_entries")))
	fmt.Fprintf(w, "  wall    mean %-12s alloc/query %-10s\n\n",
		time.Duration(s.MeanWallNanos).Round(time.Microsecond), fmtCount(s.MeanAllocBytes)+"B")

	const sparkWidth = 60
	qps, p99 := seriesColumns(f.win, sparkWidth)
	fmt.Fprintf(w, "  qps  %s\n", sparkline(qps))
	fmt.Fprintf(w, "  p99  %s\n\n", sparkline(p99))

	fmt.Fprintf(w, "  alerts (%d firing)\n", f.alerts.Firing)
	for _, r := range f.alerts.Rules {
		marker := " "
		switch r.State {
		case "firing":
			marker = "!"
		case "pending":
			marker = "~"
		}
		fmt.Fprintf(w, "  %s %-16s %-8s %-9s value %-10s fired %d\n",
			marker, r.Name, r.Severity, r.State, fmtCount(r.Value), r.FiredTotal)
	}

	if n := len(f.metrics.Counters); n > 0 {
		top := make([]obs.SeriesJSON, n)
		copy(top, f.metrics.Counters)
		sort.Slice(top, func(i, j int) bool { return top[i].Value > top[j].Value })
		if len(top) > 6 {
			top = top[:6]
		}
		fmt.Fprintf(w, "\n  top counters\n")
		for _, c := range top {
			name := c.Name
			if c.Labels != "" {
				name += c.Labels
			}
			if len(name) > 56 {
				name = name[:53] + "..."
			}
			fmt.Fprintf(w, "    %-56s %s\n", name, fmtCount(c.Value))
		}
	}
}
