package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"

	"rfabric"
	"rfabric/internal/obs"
	"rfabric/internal/tpch"
)

// serveWindowSeconds is the sliding-window ring the server retains: two
// minutes of per-second buckets, enough for any burn-rate window the
// default rules use.
const serveWindowSeconds = 120

// defaultAlertRules are the rules -serve evaluates when no -alert flags
// override them: a latency SLO on p99 modeled cycles, an error-budget burn
// on the five-nines error SLO, and a cache-thrash warning.
var defaultAlertRules = []string{
	"high_p99: p99_cycles > 5e8 for 10s over 30s severity page",
	"error_burn: burn error_rate slo 0.99 > 10 for 5s over 60s severity page",
	"cache_thrash: cache_miss_ratio > 0.9 for 30s over 30s severity warn",
}

// serve hosts the live observability surface over a demo database: a TPC-H
// lineitem table on the default simulated platform, with a metrics registry,
// sliding-window telemetry, statement statistics, a slow-query log, and an
// SLO alert engine attached, and one traced Q6 already run so every scrape
// is populated from the start.
//
//	GET /metrics                 — Prometheus text exposition
//	GET /metrics.json            — the same registry as JSON
//	GET /healthz                 — liveness (version, uptime)
//	GET /readyz                  — readiness; 503 while warming or when a
//	                               page-severity alert is firing
//	GET /debug/windows.json      — rolling-window scoreboard + per-second
//	                               series (?window=N narrows the merge)
//	GET /debug/alerts            — alert rules, states, firing history
//	GET /debug/trace/last        — most recent query trace (span tree) as JSON
//	GET /debug/trace/last.chrome — same trace as Chrome Trace Event JSON
//	                               (open it in ui.perfetto.dev)
//	GET /debug/statements        — per-statement statistics (pg_stat_statements
//	                               style), JSON; .prom for Prometheus text
//	GET /debug/slowlog           — recent slow queries with full traces
//	GET /query?q=SQL             — run a traced query; returns result + trace
//
// slowCycles arms the slow-query log (0 disables); ruleTexts override the
// default alert rules. rfbench -top <url> renders this server's windows and
// alerts as a live terminal dashboard.
func serve(addr string, rows int, seed int64, slowCycles uint64, ruleTexts []string) error {
	mux, alerts, err := setupServe(rows, seed, slowCycles, ruleTexts, os.Stderr)
	if err != nil {
		return err
	}
	alerts.Start(time.Second)
	defer alerts.Stop()
	fmt.Fprintf(os.Stderr, "rfbench: serving /metrics, /metrics.json, /healthz, /readyz, /debug/windows.json, /debug/alerts, /debug/trace/last, /debug/statements, /debug/slowlog, /query on %s\n", addr)
	return http.ListenAndServe(addr, mux)
}

// setupServe builds the demo database and the full observability mux —
// everything serve hosts, minus the listener, so tests drive it through
// httptest. The returned alert engine is not yet started.
func setupServe(rows int, seed int64, slowCycles uint64, ruleTexts []string, logw io.Writer) (*http.ServeMux, *rfabric.AlertEngine, error) {
	db, err := rfabric.Open(rfabric.DefaultConfig())
	if err != nil {
		return nil, nil, err
	}
	tbl, err := db.CreateTable("lineitem", tpch.LineitemSchema(), rows)
	if err != nil {
		return nil, nil, err
	}
	if err := tpch.Generate(tbl, rows, seed); err != nil {
		return nil, nil, err
	}
	db.SetGroupCache(rfabric.DefaultGroupCacheConfig())
	reg := rfabric.NewRegistry()
	db.SetObserver(reg)
	obs.PublishBuildInfo(reg, rfabric.Version, rfabric.EngineSet)
	stats := obs.NewStatStore()
	db.SetStatements(stats)
	if slowCycles > 0 {
		db.SetSlowThreshold(slowCycles)
	}

	// Rolling-window telemetry plus the SLO alert engine over it.
	win := rfabric.NewWindows(serveWindowSeconds)
	db.SetWindows(win)
	if len(ruleTexts) == 0 {
		ruleTexts = defaultAlertRules
	}
	rules := make([]rfabric.AlertRule, 0, len(ruleTexts))
	for _, txt := range ruleTexts {
		r, err := rfabric.ParseAlertRule(txt)
		if err != nil {
			return nil, nil, err
		}
		rules = append(rules, r)
	}
	alerts, err := rfabric.NewAlertEngine(win, rules...)
	if err != nil {
		return nil, nil, err
	}
	health := rfabric.NewHealth(alerts)

	var last obs.LastTrace
	var mu sync.Mutex // the DB façade is single-threaded; serialize queries

	res, trace, err := db.ExecuteTraced(rfabric.RM, "lineitem", tpch.Q6(), rfabric.WithTimeline(0))
	if err != nil {
		return nil, nil, fmt.Errorf("warmup Q6: %w", err)
	}
	last.Store(trace)
	health.SetReady(true)
	fmt.Fprintf(logw, "rfbench: loaded lineitem (%d rows); warmup Q6 took %d modeled cycles\n",
		rows, res.Breakdown.TotalCycles)

	mux := obs.NewMux(reg, &last)
	stats.Handle(mux)
	db.SlowLog().Handle(mux)
	win.Handle(mux)
	alerts.Handle(mux)
	health.Handle(mux)
	mux.HandleFunc("/query", func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query().Get("q")
		if q == "" {
			http.Error(w, `{"error":"missing q parameter"}`, http.StatusBadRequest)
			return
		}
		mu.Lock()
		res, trace, err := db.QueryTraced(q, rfabric.WithTimeline(0))
		mu.Unlock()
		if err != nil {
			http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusBadRequest)
			return
		}
		last.Store(trace)
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{"result": res, "trace": trace})
	})

	for _, r := range rules {
		fmt.Fprintf(logw, "rfbench: alert rule %s: %s\n", r.Name, r.Expr())
	}
	return mux, alerts, nil
}
