package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sync"

	"rfabric"
	"rfabric/internal/obs"
	"rfabric/internal/tpch"
)

// serve hosts the live observability surface over a demo database: a TPC-H
// lineitem table on the default simulated platform, with a metrics registry
// attached and one traced Q6 already run so /metrics and /debug/trace/last
// are populated from the first scrape.
//
//	GET /metrics                 — Prometheus text exposition
//	GET /metrics.json            — the same registry as JSON
//	GET /debug/trace/last        — most recent query trace (span tree) as JSON
//	GET /debug/trace/last.chrome — same trace as Chrome Trace Event JSON
//	                               (open it in ui.perfetto.dev)
//	GET /debug/statements        — per-statement statistics (pg_stat_statements
//	                               style), JSON; .prom for Prometheus text
//	GET /debug/slowlog           — recent slow queries with full traces
//	GET /query?q=SQL             — run a traced query; returns result + trace
func serve(addr string, rows int, seed int64) error {
	db, err := rfabric.Open(rfabric.DefaultConfig())
	if err != nil {
		return err
	}
	tbl, err := db.CreateTable("lineitem", tpch.LineitemSchema(), rows)
	if err != nil {
		return err
	}
	if err := tpch.Generate(tbl, rows, seed); err != nil {
		return err
	}
	reg := rfabric.NewRegistry()
	db.SetObserver(reg)
	stats := obs.NewStatStore()
	db.SetStatements(stats)
	// Capture any query above ~10M modeled cycles (a full scan of the demo
	// table costs a fraction of that; joins and cold COL conversions cross it).
	db.SetSlowThreshold(10_000_000)

	var last obs.LastTrace
	var mu sync.Mutex // the DB façade is single-threaded; serialize queries

	res, trace, err := db.ExecuteTraced(rfabric.RM, "lineitem", tpch.Q6(), rfabric.WithTimeline(0))
	if err != nil {
		return fmt.Errorf("warmup Q6: %w", err)
	}
	last.Store(trace)
	fmt.Fprintf(os.Stderr, "rfbench: loaded lineitem (%d rows); warmup Q6 took %d modeled cycles\n",
		rows, res.Breakdown.TotalCycles)

	mux := obs.NewMux(reg, &last)
	stats.Handle(mux)
	db.SlowLog().Handle(mux)
	mux.HandleFunc("/query", func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query().Get("q")
		if q == "" {
			http.Error(w, `{"error":"missing q parameter"}`, http.StatusBadRequest)
			return
		}
		mu.Lock()
		res, trace, err := db.QueryTraced(q, rfabric.WithTimeline(0))
		mu.Unlock()
		if err != nil {
			http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusBadRequest)
			return
		}
		last.Store(trace)
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{"result": res, "trace": trace})
	})

	fmt.Fprintf(os.Stderr, "rfbench: serving /metrics, /metrics.json, /debug/trace/last, /debug/statements, /debug/slowlog, /query on %s\n", addr)
	return http.ListenAndServe(addr, mux)
}
