package main

import (
	"fmt"
	"os"

	"rfabric/internal/bench"
	"rfabric/internal/experiments"
)

// defaultBenchSet is the tier-1 experiment set the CI regression gate runs:
// the projectivity sweep (the paper's headline figure), the parallel
// makespan sweep, the Q3-class hash join, the sequence-aware caching run,
// and the operator-offload ablation, which together cover all three
// engines, the morsel/shard coordinator, the join pipeline, the persistent
// group cache's warm/cold contract, and the offload layer's bytes-moved and
// cycle reductions.
var defaultBenchSet = []string{"fig5", "par-speedup", "join", "sequence", "abl-offload"}

// runBench executes the named experiments (the tier-1 set when none are
// given), flattens every numeric result leaf into a bench.Record, and writes
// BENCH_<name>.json in the current directory for `rfbench -compare` and the
// CI artifact archive.
func runBench(names []string, opt experiments.Options, benchName string) error {
	if len(names) == 0 {
		names = defaultBenchSet
	}
	rec := bench.NewRecord(benchName, opt.MicroRows, opt.Seed)
	for _, name := range names {
		result, _, err := runExperiment(name, opt)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if err := rec.AddResult(name, result); err != nil {
			return err
		}
	}
	path := "BENCH_" + benchName + ".json"
	if err := rec.WriteFile(path); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d metrics from %d experiments (rows=%d seed=%d)\n",
		path, len(rec.Metrics), len(names), rec.Rows, rec.Seed)
	return nil
}

// runCompare loads two BENCH_*.json records and exits non-zero when any
// cycle metric regressed past tolerancePct — the CI gate.
func runCompare(oldPath, newPath string, tolerancePct float64) error {
	base, err := bench.ReadFile(oldPath)
	if err != nil {
		return err
	}
	cur, err := bench.ReadFile(newPath)
	if err != nil {
		return err
	}
	regs, err := bench.Compare(base, cur, tolerancePct)
	if err != nil {
		return err
	}
	if len(regs) == 0 {
		fmt.Printf("compare: OK — no cycle metric regressed more than %.1f%% (%s vs %s)\n",
			tolerancePct, oldPath, newPath)
		return nil
	}
	fmt.Fprintf(os.Stderr, "compare: %d cycle regression(s) beyond %.1f%%:\n", len(regs), tolerancePct)
	for _, g := range regs {
		fmt.Fprintf(os.Stderr, "  %s\n", g)
	}
	return fmt.Errorf("benchmark regression gate failed")
}
