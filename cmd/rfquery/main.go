// Command rfquery loads a TPC-H-style lineitem table into the simulated
// platform and runs mini-SQL queries over it on any of the three execution
// paths, printing results and the modeled cost side by side — a hands-on way
// to see the fabric's effect on an ad-hoc query.
//
// Usage:
//
//	rfquery [-rows N] [-engine RM|ROW|COL|all] [-explain] "SELECT ... FROM lineitem ..."
//
// With no query argument, rfquery runs a small demo set including TPC-H Q1
// and Q6. With -explain, each query additionally prints its EXPLAIN ANALYZE
// span tree — parse, plan, engine dispatch, per-morsel/per-chunk execution —
// with modeled cycles and bytes per node.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"rfabric"
	"rfabric/internal/tpch"
)

var demoQueries = []string{
	"SELECT l_orderkey, l_extendedprice FROM lineitem WHERE l_quantity < 5",
	"SELECT SUM(l_extendedprice * l_discount) FROM lineitem " +
		"WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01' " +
		"AND l_discount BETWEEN 0.049 AND 0.071 AND l_quantity < 24",
	"SELECT l_returnflag, l_linestatus, SUM(l_quantity), SUM(l_extendedprice), " +
		"SUM(l_extendedprice * (1 - l_discount)), COUNT(*) FROM lineitem " +
		"WHERE l_shipdate <= DATE '1998-09-02' GROUP BY l_returnflag, l_linestatus",
	"SELECT l_returnflag, l_linestatus, SUM(l_quantity), SUM(l_extendedprice), " +
		"SUM(l_extendedprice * (1 - l_discount)), COUNT(*) FROM lineitem " +
		"WHERE l_shipdate <= DATE '1998-09-02' GROUP BY l_returnflag, l_linestatus " +
		"ORDER BY 3 DESC, l_returnflag LIMIT 4",
}

func main() {
	rows := flag.Int("rows", 50_000, "lineitem rows to generate")
	engineFlag := flag.String("engine", "all", "execution path: RM, ROW, COL, AUTO, or all")
	explain := flag.Bool("explain", false, "print each run's EXPLAIN ANALYZE span tree")
	flag.Parse()

	db, err := rfabric.Open(rfabric.DefaultConfig())
	if err != nil {
		fatalf("open: %v", err)
	}
	if _, err := db.CreateTable("lineitem", tpch.LineitemSchema(), *rows); err != nil {
		fatalf("create: %v", err)
	}
	tbl, _ := db.Table("lineitem")
	if err := tpch.Generate(tbl, *rows, 1); err != nil {
		fatalf("generate: %v", err)
	}
	fmt.Printf("loaded lineitem: %d rows, %.1f MB row-oriented base data\n\n", tbl.NumRows(), float64(tbl.SizeBytes())/(1<<20))

	queries := flag.Args()
	if len(queries) == 0 {
		queries = demoQueries
	}

	var kinds []rfabric.EngineKind
	switch strings.ToUpper(*engineFlag) {
	case "ALL":
		kinds = []rfabric.EngineKind{rfabric.ROW, rfabric.COL, rfabric.RM}
	case "RM":
		kinds = []rfabric.EngineKind{rfabric.RM}
	case "ROW":
		kinds = []rfabric.EngineKind{rfabric.ROW}
	case "COL":
		kinds = []rfabric.EngineKind{rfabric.COL}
	case "AUTO":
		kinds = []rfabric.EngineKind{rfabric.AUTO}
	default:
		fatalf("unknown engine %q", *engineFlag)
	}

	for qi, query := range queries {
		if qi > 0 {
			fmt.Println()
		}
		fmt.Println("query:", query)
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "engine\trows\tcycles\tbytes-from-DRAM\tbytes-to-CPU\tresult")
		var traces []*rfabric.Trace
		for _, kind := range kinds {
			db.System().ResetState()
			var res *rfabric.Result
			var err error
			if *explain {
				var trace *rfabric.Trace
				res, trace, err = db.QueryTraced(query, rfabric.OnEngine(kind))
				traces = append(traces, trace)
			} else {
				res, err = db.QueryOn(kind, query)
			}
			if err != nil {
				fatalf("%s: %v", kind, err)
			}
			fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%s\n",
				res.Engine, res.RowsPassed, res.Breakdown.TotalCycles,
				res.Breakdown.BytesFromDRAM, res.Breakdown.BytesToCPU, summarize(res))
		}
		w.Flush()
		for _, trace := range traces {
			fmt.Println()
			trace.Render(os.Stdout)
		}
	}
}

func summarize(res *rfabric.Result) string {
	switch {
	case len(res.Groups) > 0:
		parts := make([]string, 0, len(res.Groups))
		for _, g := range res.Groups {
			keys := make([]string, len(g.Key))
			for i, k := range g.Key {
				keys[i] = k.String()
			}
			parts = append(parts, strings.Join(keys, "/")+fmt.Sprintf("(%d)", g.Count))
		}
		return "groups: " + strings.Join(parts, " ")
	case len(res.Aggs) > 0:
		parts := make([]string, len(res.Aggs))
		for i, v := range res.Aggs {
			parts[i] = v.String()
		}
		return "aggs: " + strings.Join(parts, ", ")
	default:
		return fmt.Sprintf("checksum %#x", res.Checksum)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rfquery: "+format+"\n", args...)
	os.Exit(1)
}
