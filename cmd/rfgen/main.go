// Command rfgen generates TPC-H-style lineitem data as CSV, the same
// deterministic population the benchmarks use, so results can be inspected
// or loaded elsewhere.
//
// Usage:
//
//	rfgen [-rows N] [-seed N] [-o file]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"rfabric/internal/sql"
	"rfabric/internal/table"
	"rfabric/internal/tpch"
)

func main() {
	rows := flag.Int("rows", 10_000, "rows to generate")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("o", "-", "output file, - for stdout")
	flag.Parse()

	tbl, err := tpch.NewLineitem(*rows, *seed)
	if err != nil {
		fatalf("generate: %v", err)
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("create %s: %v", *out, err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatalf("close %s: %v", *out, err)
			}
		}()
		w = f
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()

	sch := tbl.Schema()
	for c := 0; c < sch.NumColumns(); c++ {
		if c > 0 {
			fmt.Fprint(bw, ",")
		}
		fmt.Fprint(bw, sch.Column(c).Name)
	}
	fmt.Fprintln(bw)

	for r := 0; r < tbl.NumRows(); r++ {
		vals, err := table.DecodeRow(sch, tbl.RowPayload(r))
		if err != nil {
			fatalf("decode row %d: %v", r, err)
		}
		for c, v := range vals {
			if c > 0 {
				fmt.Fprint(bw, ",")
			}
			if sch.Column(c).Type.String() == "DATE" {
				fmt.Fprint(bw, sql.FormatDate(int32(v.Int)))
				continue
			}
			fmt.Fprint(bw, v.String())
		}
		fmt.Fprintln(bw)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rfgen: "+format+"\n", args...)
	os.Exit(1)
}
