// Benchmarks regenerating every figure of the paper's evaluation (§V) plus
// the ablations DESIGN.md calls out. Each bench runs the corresponding
// experiment and reports the modeled metrics (simulated cycles, speedups)
// via b.ReportMetric, so `go test -bench=. -benchmem` prints the numbers
// EXPERIMENTS.md records. Wall-clock ns/op measures the simulator itself,
// not the modeled system.
//
// Sizes are scaled down so the full suite finishes in minutes; cmd/rfbench
// runs the same harness at any scale, including the paper's.
package rfabric

import (
	"testing"

	"rfabric/internal/experiments"
)

func benchOptions() experiments.Options {
	opt := experiments.DefaultOptions()
	opt.MicroRows = 48_000
	opt.Fig7TargetMB = []int{2, 4}
	return opt
}

// BenchmarkFigure5 regenerates the projectivity sweep (Figure 5) and
// reports each engine's cycles at projectivity 1 and 11, plus RM's
// normalized time (the paper's y-axis).
func BenchmarkFigure5(b *testing.B) {
	opt := benchOptions()
	var last *experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure5(opt)
		if err != nil {
			b.Fatal(err)
		}
		if bad := r.CheckShape(); len(bad) > 0 {
			b.Fatalf("shape violations: %v", bad)
		}
		last = r
	}
	first, final := last.Points[0], last.Points[len(last.Points)-1]
	b.ReportMetric(first.Normalized["RM"], "RM-norm@p1")
	b.ReportMetric(final.Normalized["RM"], "RM-norm@p11")
	b.ReportMetric(first.Normalized["COL"], "COL-norm@p1")
	b.ReportMetric(final.Normalized["COL"], "COL-norm@p11")
}

// BenchmarkFigure6 regenerates both speedup heatmaps (Figures 6a and 6b)
// and reports the corner cells the paper highlights.
func BenchmarkFigure6(b *testing.B) {
	opt := benchOptions()
	opt.MicroRows = 16_000 // 100 grid cells x 3 engines
	var last *experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure6(opt)
		if err != nil {
			b.Fatal(err)
		}
		if bad := r.CheckShape(); len(bad) > 0 {
			b.Fatalf("shape violations: %v", bad)
		}
		last = r
	}
	b.ReportMetric(last.VsRow[0][0], "RMvsROW@1,1")
	b.ReportMetric(last.VsRow[9][9], "RMvsROW@10,10")
	b.ReportMetric(last.VsCol[0][0], "RMvsCOL@1,1")
	b.ReportMetric(last.VsCol[9][9], "RMvsCOL@10,10")
}

// BenchmarkFigure7Q1 regenerates the TPC-H Q1 size sweep (Figure 7a).
func BenchmarkFigure7Q1(b *testing.B) {
	benchFigure7(b, experiments.Q1)
}

// BenchmarkFigure7Q6 regenerates the TPC-H Q6 size sweep (Figure 7b).
func BenchmarkFigure7Q6(b *testing.B) {
	benchFigure7(b, experiments.Q6)
}

func benchFigure7(b *testing.B, q experiments.TPCHQuery) {
	opt := benchOptions()
	var last *experiments.Fig7Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure7(opt, q)
		if err != nil {
			b.Fatal(err)
		}
		if bad := r.CheckShape(); len(bad) > 0 {
			b.Fatalf("shape violations: %v", bad)
		}
		last = r
	}
	pt := last.Points[len(last.Points)-1]
	b.ReportMetric(float64(pt.Cycles["ROW"])/float64(pt.Cycles["RM"]), "ROW/RM")
	b.ReportMetric(float64(pt.Cycles["COL"])/float64(pt.Cycles["RM"]), "COL/RM")
}

// BenchmarkAblationPrefetchStreams sweeps the prefetcher stream budget
// behind COL's <=4-column advantage.
func BenchmarkAblationPrefetchStreams(b *testing.B) {
	opt := benchOptions()
	opt.MicroRows = 24_000
	var last *experiments.AblationResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationPrefetchStreams(opt, []int{1, 2, 4, 8, 16})
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.Points[0].Cycles["COL"])/float64(last.Points[len(last.Points)-1].Cycles["COL"]), "COL-1stream/16streams")
}

// BenchmarkAblationFabricBuffer sweeps the on-fabric buffer (2 MB in the
// prototype).
func BenchmarkAblationFabricBuffer(b *testing.B) {
	opt := benchOptions()
	opt.MicroRows = 24_000
	var last *experiments.AblationResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationFabricBuffer(opt, []int{64 << 10, 256 << 10, 1 << 20, 2 << 20, 8 << 20})
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.Points[0].Cycles["RM"])/float64(last.Points[len(last.Points)-1].Cycles["RM"]), "RM-64K/8M")
}

// BenchmarkAblationFabricClock sweeps the CPU:fabric clock ratio (1:15 in
// the prototype).
func BenchmarkAblationFabricClock(b *testing.B) {
	opt := benchOptions()
	opt.MicroRows = 24_000
	var last *experiments.AblationResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationFabricClock(opt, []int{1, 5, 15, 30})
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.Points[len(last.Points)-1].Cycles["RM"])/float64(last.Points[0].Cycles["RM"]), "RM-1:30/1:1")
}

// BenchmarkAblationDRAMBanks sweeps bank-level parallelism.
func BenchmarkAblationDRAMBanks(b *testing.B) {
	opt := benchOptions()
	opt.MicroRows = 24_000
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationDRAMBanks(opt, []int{1, 2, 4, 8, 16}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMVCCFiltering compares hardware timestamp filtering in
// the fabric against the row engine's software visibility checks.
func BenchmarkAblationMVCCFiltering(b *testing.B) {
	opt := benchOptions()
	var last *experiments.AblationResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationMVCC(opt, 30_000)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.Points[0].Cycles["ROW"])/float64(last.Points[1].Cycles["RM"]), "software/hardware")
}

// BenchmarkAblationPushdown compares projection-only RM with selection and
// aggregation pushdown on Q6.
func BenchmarkAblationPushdown(b *testing.B) {
	opt := benchOptions()
	var last *experiments.AblationResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationPushdown(opt, 40_000)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.Points[0].Cycles["RM"])/float64(last.Points[2].Cycles["RM"]), "time-proj/agg")
	b.ReportMetric(float64(last.Points[0].BytesToCPU)/float64(last.Points[2].BytesToCPU+1), "bytes-proj/agg")
}

// BenchmarkAblationIndex compares a B+tree point lookup with scans and a
// 10% range query with the fabric (§III-A's residual role for indexes).
func BenchmarkAblationIndex(b *testing.B) {
	opt := benchOptions()
	var last *experiments.AblationResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationIndex(opt, 30_000)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.Points[2].Cycles["RM"])/float64(last.Points[0].Cycles["IDX"]+1), "RMscan/IDXpoint")
	b.ReportMetric(float64(last.Points[8].Cycles["RM"])/float64(last.Points[7].Cycles["IDX"]+1), "RMrange30/IDXrange30")
}

// BenchmarkAblationRMC compares discrete Relational Memory against the
// memory-controller-integrated design point of §IV-C.
func BenchmarkAblationRMC(b *testing.B) {
	opt := benchOptions()
	var last *experiments.AblationResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationRMC(opt, 24_000)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.Points[0].Cycles["RM"])/float64(last.Points[1].Cycles["RM"]), "discrete/RMC")
}

// BenchmarkAblationCompression measures the §III-D codecs over lineitem
// columns.
func BenchmarkAblationCompression(b *testing.B) {
	opt := benchOptions()
	var last *experiments.CompressionResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationCompression(opt, 20_000)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for _, p := range last.Points {
		if p.Codec == "dictionary(l_shipmode)" {
			b.ReportMetric(p.Ratio, "dict-ratio")
		}
	}
}

// BenchmarkAblationStorage compares Relational Storage with host-side
// scans on the flash model.
func BenchmarkAblationStorage(b *testing.B) {
	opt := benchOptions()
	var last *experiments.StorageResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationStorage(opt, 10_000)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.Points[1].Cycles)/float64(last.Points[0].Cycles), "host/near-raw")
}

// BenchmarkJoin runs the orders⋈items equi-join on ROW and RM and reports
// the modeled speedup — the §III-B hybrid-engine workload.
func BenchmarkJoin(b *testing.B) {
	var rowCycles, rmCycles float64
	for i := 0; i < b.N; i++ {
		db, err := Open(DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		oSchema, _ := NewSchema(
			Column{Name: "o_id", Type: Int64, Width: 8},
			Column{Name: "o_region", Type: Int32, Width: 4},
			Column{Name: "o_total", Type: Float64, Width: 8},
			Column{Name: "o_note", Type: Char, Width: 20},
		)
		iSchema, _ := NewSchema(
			Column{Name: "i_order", Type: Int64, Width: 8},
			Column{Name: "i_qty", Type: Int32, Width: 4},
			Column{Name: "i_price", Type: Float64, Width: 8},
			Column{Name: "i_note", Type: Char, Width: 20},
		)
		orders, _ := db.CreateTable("orders", oSchema, 10_000)
		items, _ := db.CreateTable("items", iSchema, 30_000)
		for o := 0; o < 10_000; o++ {
			if err := db.Insert("orders", I64(int64(o)), I32(int32(o%8)), F64(float64(o)), Str("order")); err != nil {
				b.Fatal(err)
			}
			for k := 0; k < o%4; k++ {
				if err := db.Insert("items", I64(int64(o)), I32(int32(k)), F64(float64(k)*2), Str("item")); err != nil {
					b.Fatal(err)
				}
			}
		}
		l := JoinInput{On: 0, Projection: []int{1, 2}}
		r := JoinInput{On: 0, Projection: []int{1, 2}}
		db.System().ResetState()
		row, err := HashJoinRow(db.System(), items, orders, l, r)
		if err != nil {
			b.Fatal(err)
		}
		db.System().ResetState()
		rm, err := HashJoinRM(db.System(), items, orders, l, r)
		if err != nil {
			b.Fatal(err)
		}
		if row.Checksum != rm.Checksum {
			b.Fatal("join paths disagree")
		}
		rowCycles = float64(row.Breakdown.TotalCycles)
		rmCycles = float64(rm.Breakdown.TotalCycles)
	}
	b.ReportMetric(rowCycles/rmCycles, "ROW/RM")
}

// BenchmarkParallelShards runs the parallel-speedup experiment — TPC-H Q6
// over an 8-shard lineitem — and asserts the tentpole guarantees: the
// logical result (rows passed, checksum) is identical at every worker
// count, and the modeled makespan at 8 workers beats 1 worker by more than
// 1.5x. Wall-clock per worker count is reported as a metric only: on a
// single-core host the goroutine fan-out cannot win wall time, while the
// modeled parallel hardware still must.
func BenchmarkParallelShards(b *testing.B) {
	opt := benchOptions()
	var last *experiments.ParallelResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.ParallelSpeedup(opt, 8, opt.MicroRows, []int{1, 8})
		if err != nil {
			b.Fatal(err)
		}
		if bad := r.CheckShape(); len(bad) > 0 {
			b.Fatalf("shape violations: %v", bad)
		}
		last = r
	}
	one, eight := last.Points[0], last.Points[1]
	if one.RowsPassed != eight.RowsPassed || one.Checksum != eight.Checksum {
		b.Fatalf("worker count changed the result: rows %d/%d checksum %#x/%#x",
			one.RowsPassed, eight.RowsPassed, one.Checksum, eight.Checksum)
	}
	if eight.Speedup <= 1.5 {
		b.Fatalf("modeled speedup at 8 workers = %.2fx (1w=%d cyc, 8w=%d cyc), want > 1.5x",
			eight.Speedup, one.Cycles, eight.Cycles)
	}
	b.ReportMetric(eight.Speedup, "modeled-speedup@8w")
	b.ReportMetric(float64(one.Cycles), "cycles@1w")
	b.ReportMetric(float64(eight.Cycles), "cycles@8w")
	b.ReportMetric(float64(one.WallNanos), "wall-ns@1w")
	b.ReportMetric(float64(eight.WallNanos), "wall-ns@8w")
}
