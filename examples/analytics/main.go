// Analytics runs the paper's two practical queries — TPC-H Q1 (CPU-bound
// pricing summary) and Q6 (data-movement-bound revenue forecast) — over a
// sales-lineitem table on all three execution paths, printing the modeled
// cost breakdowns behind Figure 7: Q1 is nearly layout-insensitive, Q6 is
// where the fabric's transparent transformation pays off.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"rfabric"
)

const rows = 60_000

func main() {
	schema, err := rfabric.NewSchema(
		rfabric.Column{Name: "orderkey", Type: rfabric.Int64, Width: 8},
		rfabric.Column{Name: "partkey", Type: rfabric.Int64, Width: 8},
		rfabric.Column{Name: "quantity", Type: rfabric.Float64, Width: 8},
		rfabric.Column{Name: "extendedprice", Type: rfabric.Float64, Width: 8},
		rfabric.Column{Name: "discount", Type: rfabric.Float64, Width: 8},
		rfabric.Column{Name: "tax", Type: rfabric.Float64, Width: 8},
		rfabric.Column{Name: "returnflag", Type: rfabric.Char, Width: 1},
		rfabric.Column{Name: "linestatus", Type: rfabric.Char, Width: 1},
		rfabric.Column{Name: "shipdate", Type: rfabric.Date, Width: 4},
		rfabric.Column{Name: "comment", Type: rfabric.Char, Width: 26},
	)
	if err != nil {
		log.Fatal(err)
	}

	db, err := rfabric.Open(rfabric.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := db.CreateTable("sales", schema, rows); err != nil {
		log.Fatal(err)
	}
	if err := load(db); err != nil {
		log.Fatal(err)
	}
	tbl, _ := db.Table("sales")
	fmt.Printf("sales: %d rows, %.1f MB row-oriented base data\n", tbl.NumRows(), float64(tbl.SizeBytes())/(1<<20))

	q1 := "SELECT returnflag, linestatus, SUM(quantity), SUM(extendedprice), " +
		"SUM(extendedprice * (1 - discount)), SUM(extendedprice * (1 - discount) * (1 + tax)), " +
		"AVG(quantity), COUNT(*) FROM sales WHERE shipdate <= DATE '1998-09-02' " +
		"GROUP BY returnflag, linestatus"
	q6 := "SELECT SUM(extendedprice * discount) FROM sales " +
		"WHERE shipdate >= DATE '1994-01-01' AND shipdate < DATE '1995-01-01' " +
		"AND discount BETWEEN 0.049 AND 0.071 AND quantity < 24"

	for _, q := range []struct{ name, sql string }{{"Q1 (pricing summary, CPU-bound)", q1}, {"Q6 (revenue forecast, movement-bound)", q6}} {
		fmt.Printf("\n=== %s ===\n", q.name)
		var base uint64
		for _, kind := range []rfabric.EngineKind{rfabric.ROW, rfabric.COL, rfabric.RM} {
			db.System().ResetState()
			res, err := db.QueryOn(kind, q.sql)
			if err != nil {
				log.Fatal(err)
			}
			if base == 0 {
				base = res.Breakdown.TotalCycles
			}
			fmt.Printf("%-4s cycles=%-10d (%.2fx ROW)  compute=%-9d memStall=%-9d bytesDRAM=%-9d bytesToCPU=%d\n",
				res.Engine, res.Breakdown.TotalCycles,
				float64(res.Breakdown.TotalCycles)/float64(base),
				res.Breakdown.ComputeCycles, res.Breakdown.MemDemandCycles,
				res.Breakdown.BytesFromDRAM, res.Breakdown.BytesToCPU)
			if len(res.Groups) > 0 {
				for _, g := range res.Groups {
					fmt.Printf("      %s/%s: count=%d sum_qty=%s\n", g.Key[0], g.Key[1], g.Count, g.Aggs[0])
				}
			}
			if len(res.Aggs) > 0 && len(res.Groups) == 0 {
				fmt.Printf("      revenue=%s over %d qualifying rows\n", res.Aggs[0], res.RowsPassed)
			}
		}
	}
}

// load populates the sales table with TPC-H-like distributions.
func load(db *rfabric.DB) error {
	rng := rand.New(rand.NewSource(11))
	const (
		shipLo = 8035  // 1992-01-01
		shipHi = 10440 // 1998-08-02
		cutoff = 9298  // 1995-06-17
	)
	for i := 0; i < rows; i++ {
		qty := float64(rng.Intn(50) + 1)
		price := qty * (900 + float64(rng.Intn(2000))*10)
		ship := int32(shipLo + rng.Intn(shipHi-shipLo))
		rf, ls := "N", "O"
		if int(ship) <= cutoff {
			ls = "F"
			if rng.Intn(2) == 0 {
				rf = "R"
			} else {
				rf = "A"
			}
		}
		err := db.Insert("sales",
			rfabric.I64(int64(i/4+1)),
			rfabric.I64(int64(rng.Intn(200000)+1)),
			rfabric.F64(qty),
			rfabric.F64(price),
			rfabric.F64(float64(rng.Intn(11))/100),
			rfabric.F64(float64(rng.Intn(9))/100),
			rfabric.Str(rf),
			rfabric.Str(ls),
			rfabric.DateV(ship),
			rfabric.Str("transparent transformation"),
		)
		if err != nil {
			return err
		}
	}
	return nil
}
