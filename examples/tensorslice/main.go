// Tensorslice exercises the paper's §VII Q1 extension: the same transparent
// transformation that serves relational column groups also serves
// matrix/tensor slices. A feature matrix stored row-major (one row per
// sample) is sliced by column block — through the fabric (dense, packed)
// and by strided CPU loads — and a mat-vec runs over the fabric slice.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"rfabric"
)

const (
	samples  = 20_000
	features = 32
)

func main() {
	sys, err := rfabric.NewSystem(rfabric.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	m, err := rfabric.NewMatrix(sys, samples, features)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for r := 0; r < samples; r++ {
		for c := 0; c < features; c++ {
			if err := m.Set(r, c, rng.NormFloat64()); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("feature matrix: %d samples x %d features (%.1f MB row-major)\n\n",
		samples, features, float64(samples*features*8)/(1<<20))

	// Slice a 4-feature block both ways.
	const c0, c1 = 8, 12
	sys.ResetState()
	fab, err := m.SliceColsFabric(c0, c1)
	if err != nil {
		log.Fatal(err)
	}
	sys.ResetState()
	cpu, err := m.SliceColsCPU(c0, c1)
	if err != nil {
		log.Fatal(err)
	}
	same := len(fab.Data) == len(cpu.Data)
	for i := range fab.Data {
		if fab.Data[i] != cpu.Data[i] {
			same = false
			break
		}
	}
	fmt.Printf("slice A[:, %d:%d]  fabric: %d cycles   strided CPU: %d cycles   (%.2fx, identical=%v)\n",
		c0, c1, fab.Cycles, cpu.Cycles, float64(cpu.Cycles)/float64(fab.Cycles), same)

	// Mat-vec over the slice: y = A[:, 8:12] · x.
	x := []float64{0.25, -1, 0.5, 2}
	sys.ResetState()
	y, cycles, err := m.MatVecSlice(c0, c1, x)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mat-vec over the slice: %d cycles, y[0]=%.4f y[%d]=%.4f\n",
		cycles, y[0], samples-1, y[samples-1])
	fmt.Println("\nthe same machinery that ships column groups ships tensor slices — no second layout for either")
}
