// Quickstart reimagines the paper's Figure 3 in Go: a row-oriented table
// whose layout matches the paper's `struct row`, a SQL query stating which
// columns matter, and an ephemeral column group the fabric serves without
// ever materializing it in memory. The same scan then runs on all three
// execution paths to show the modeled cost difference.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"rfabric"
)

func main() {
	// The paper's Figure 3 row layout: a key, two text fields, and four
	// numeric fields — 64 bytes per row.
	schema, err := rfabric.NewSchema(
		rfabric.Column{Name: "key", Type: rfabric.Int64, Width: 8},
		rfabric.Column{Name: "text_fld1", Type: rfabric.Char, Width: 12},
		rfabric.Column{Name: "text_fld2", Type: rfabric.Char, Width: 16},
		rfabric.Column{Name: "num_fld1", Type: rfabric.Int64, Width: 8},
		rfabric.Column{Name: "num_fld2", Type: rfabric.Int64, Width: 8},
		rfabric.Column{Name: "num_fld3", Type: rfabric.Int64, Width: 8},
		rfabric.Column{Name: "num_fld4", Type: rfabric.Int64, Width: 8},
	)
	if err != nil {
		log.Fatal(err)
	}

	db, err := rfabric.Open(rfabric.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	const rows = 50_000
	if _, err := db.CreateTable("the_table", schema, rows); err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < rows; i++ {
		err := db.Insert("the_table",
			rfabric.I64(int64(rng.Intn(1000))),
			rfabric.Str("alpha"),
			rfabric.Str("bravo"),
			rfabric.I64(int64(rng.Intn(100))),
			rfabric.I64(int64(rng.Intn(100))),
			rfabric.I64(int64(rng.Intn(100))),
			rfabric.I64(int64(rng.Intn(100))),
		)
		if err != nil {
			log.Fatal(err)
		}
	}

	// Figure 3, line 16: the query that defines the ephemeral variable.
	const query = "SELECT SUM(num_fld1 * num_fld4) FROM the_table WHERE key > 10"

	fmt.Println("query:", query)
	fmt.Println()
	for _, kind := range []rfabric.EngineKind{rfabric.ROW, rfabric.COL, rfabric.RM} {
		db.System().ResetState()
		res, err := db.QueryOn(kind, query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4s sum=%-14s rows=%-6d cycles=%-10d bytesToCPU=%d\n",
			res.Engine, res.Aggs[0], res.RowsPassed,
			res.Breakdown.TotalCycles, res.Breakdown.BytesToCPU)
	}

	// The lower-level Figure 3 surface: configure the geometry explicitly
	// and consume the packed bytes the fabric delivers.
	ev, err := db.Configure("the_table", []string{"key", "num_fld1", "num_fld4"})
	if err != nil {
		log.Fatal(err)
	}
	packed := ev.Materialize()
	fmt.Printf("\nephemeral %s: %d packed bytes for %d rows (%.0f%% of the base data)\n",
		ev.Geometry(), len(packed), rows,
		100*float64(len(packed))/float64(rows*schema.RowBytes()))
}
