// Compression walks through §III-D of the paper: which encodings can ride
// underneath Relational Fabric's scattered, computed-offset accesses and
// which cannot. It encodes three representative columns, reports compression
// ratios, and demonstrates random access where the encoding permits it —
// and why RLE and LZ77 do not.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"rfabric"
)

const rows = 50_000

func main() {
	fmt.Println("Encodings and their Relational Fabric compatibility (§III-D):")
	for _, c := range rfabric.Codecs() {
		mark := "✗"
		if c.RandomAccess {
			mark = "✓"
		}
		fmt.Printf("  %s %-11s %s\n", mark, c.Name, c.Reason)
	}

	rng := rand.New(rand.NewSource(3))

	// A low-cardinality CHAR(10) column (ship modes): dictionary territory.
	modes := []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	raw := make([]byte, 0, rows*10)
	for i := 0; i < rows; i++ {
		cell := make([]byte, 10)
		copy(cell, modes[rng.Intn(len(modes))])
		raw = append(raw, cell...)
	}
	dict, err := rfabric.EncodeDict(raw, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndictionary: %d B -> %d B (%.1fx), cardinality %d, code width %d B\n",
		len(raw), dict.EncodedSize(), float64(len(raw))/float64(dict.EncodedSize()),
		dict.Cardinality(), dict.CodeWidth())
	v, err := dict.At(31_337) // random access: one code lookup, no neighbours
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dictionary random access: row 31337 = %q\n", strings.TrimRight(string(v), "\x00"))

	// A monotone-ish BIGINT column (order keys): delta/FOR territory.
	keys := make([]int64, rows)
	for i := range keys {
		keys[i] = int64(i/4 + 1)
	}
	delta := rfabric.EncodeDelta(keys)
	dv, err := delta.At(31_337)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndelta/FOR:  %d B -> %d B (%.1fx)\n", rows*8, delta.EncodedSize(), float64(rows*8)/float64(delta.EncodedSize()))
	fmt.Printf("delta random access: row 31337 = %d (block and bit offset are computable)\n", dv)

	// Text (comments): Huffman with a block index.
	var text []byte
	words := []string{"carefully ", "quickly ", "deposits ", "requests ", "packages "}
	for i := 0; i < rows; i++ {
		text = append(text, words[rng.Intn(len(words))]...)
	}
	huff, err := rfabric.EncodeHuffman(text, 4096)
	if err != nil {
		log.Fatal(err)
	}
	block, err := huff.DecodeBlock(7) // random access at block granularity
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhuffman:    %d B -> %d B (%.1fx) in %d indexed blocks\n",
		len(text), huff.EncodedSize(), float64(len(text))/float64(huff.EncodedSize()), huff.Blocks())
	fmt.Printf("huffman block access: block 7 starts %q\n", string(block[:20]))

	// The contrast cases.
	rle, err := rfabric.EncodeRLE(raw, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrle:        %d B -> %d B (%.2fx) in %d runs — locating row i needs a search over data-dependent run boundaries\n",
		len(raw), rle.EncodedSize(), float64(len(raw))/float64(rle.EncodedSize()), rle.Runs())

	lz := rfabric.EncodeLZ77(text)
	round, err := rfabric.DecodeLZ77(lz)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lz77:       %d B -> %d B (%.1fx) — but decoding row i required decoding all %d bytes before it\n",
		len(text), len(lz), float64(len(text))/float64(len(lz)), len(round))
}
