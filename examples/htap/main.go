// HTAP demonstrates the paper's central promise (§I, §III-C): transactional
// ingest and analytical queries over a single row-oriented copy of the data.
// Writers append and update account rows through snapshot-isolation
// transactions; concurrently, an analytical reader sweeps the fabric's
// ephemeral column groups at fresh snapshots, with row-version visibility
// decided by the two per-row timestamps the fabric compares "in hardware".
// No second layout, no conversion, no staleness window.
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"rfabric"
)

const (
	accounts = 20_000
	writers  = 4
	txnsPer  = 2_000
)

func main() {
	schema, err := rfabric.NewSchema(
		rfabric.Column{Name: "id", Type: rfabric.Int64, Width: 8},
		rfabric.Column{Name: "branch", Type: rfabric.Int32, Width: 4},
		rfabric.Column{Name: "balance", Type: rfabric.Int64, Width: 8},
		rfabric.Column{Name: "flags", Type: rfabric.Int32, Width: 4},
		rfabric.Column{Name: "owner", Type: rfabric.Char, Width: 16},
	)
	if err != nil {
		log.Fatal(err)
	}

	db, err := rfabric.Open(rfabric.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	// Updates append versions, so reserve room beyond the initial load.
	capacity := accounts + 2*writers*txnsPer + 1024
	tbl, err := db.CreateTable("accounts", schema, capacity, rfabric.WithMVCC())
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := rfabric.NewTxnManager(tbl)
	if err != nil {
		log.Fatal(err)
	}

	// Initial load: every account starts with balance 1000.
	load := mgr.Begin()
	for i := 0; i < accounts; i++ {
		err := load.Insert(
			rfabric.I64(int64(i)),
			rfabric.I32(int32(i%64)),
			rfabric.I64(1000),
			rfabric.I32(0),
			rfabric.Str(fmt.Sprintf("acct-%05d", i)),
		)
		if err != nil {
			log.Fatal(err)
		}
	}
	if _, err := load.Commit(); err != nil {
		log.Fatal(err)
	}

	// Writers move money between random accounts: each transaction debits
	// one live account version and credits another. Total balance is the
	// invariant every snapshot must preserve.
	var committed, conflicts atomic.Int64
	var wg sync.WaitGroup
	writersDone := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for t := 0; t < txnsPer; t++ {
				if err := transfer(mgr, rng); err != nil {
					if errors.Is(err, errConflict) {
						conflicts.Add(1)
						continue
					}
					log.Fatal(err)
				}
				committed.Add(1)
			}
		}(int64(w + 1))
	}
	go func() { wg.Wait(); close(writersDone) }()

	// The analytical reader: SUM(balance) over the fabric at the freshest
	// snapshot, again and again while the writers keep committing. Every
	// snapshot must see the invariant intact.
	sys := db.System()
	runs := 0
	for done := false; !done; {
		select {
		case <-writersDone:
			done = true
		case <-time.After(2 * time.Millisecond):
		}
		var total int64
		var snapshot uint64
		err := mgr.ReadView(func(ts uint64) error {
			snapshot = ts
			t, err := sumBalances(sys, tbl, ts)
			total = t
			return err
		})
		if err != nil {
			log.Fatal(err)
		}
		if want := int64(accounts) * 1000; total != want {
			log.Fatalf("snapshot %d: total balance %d, want %d — isolation broken", snapshot, total, want)
		}
		runs++
		if runs <= 10 || done {
			fmt.Printf("analytics at snapshot %-5d total balance %d (invariant holds)\n", snapshot, total)
		}
	}
	fmt.Printf("... %d analytical sweeps, all consistent\n", runs)

	fmt.Printf("\nwriters done: %d committed, %d write-write conflicts detected and retried away\n",
		committed.Load(), conflicts.Load())
	fmt.Printf("final snapshot %d: %d row versions in one row-oriented copy (never converted)\n",
		mgr.Now(), tbl.NumRows())
}

var errConflict = errors.New("conflict")

// transfer debits one live account and credits another in one transaction.
func transfer(mgr *rfabric.TxnManager, rng *rand.Rand) error {
	tbl := mgr.Table()
	txn := mgr.Begin()
	defer txn.Abort()

	// Pick two live versions at our snapshot.
	from, err := pickLive(mgr, txn.ReadTS(), rng)
	if err != nil {
		return err
	}
	to, err := pickLive(mgr, txn.ReadTS(), rng)
	if err != nil {
		return err
	}
	if from == to {
		return nil // degenerate transfer; nothing to do
	}
	amount := int64(rng.Intn(50) + 1)
	fromVals, err := rowValues(tbl, from)
	if err != nil {
		return err
	}
	toVals, err := rowValues(tbl, to)
	if err != nil {
		return err
	}
	fromVals[2] = rfabric.I64(fromVals[2].Int - amount)
	toVals[2] = rfabric.I64(toVals[2].Int + amount)
	if err := txn.Update(from, fromVals...); err != nil {
		return errConflict
	}
	if err := txn.Update(to, toVals...); err != nil {
		return errConflict
	}
	if _, err := txn.Commit(); err != nil {
		return errConflict
	}
	return nil
}

func pickLive(mgr *rfabric.TxnManager, ts uint64, rng *rand.Rand) (int, error) {
	tbl := mgr.Table()
	for tries := 0; tries < 128; tries++ {
		r := rng.Intn(tbl.NumRows())
		if tbl.VisibleAt(r, ts) {
			if _, end := tbl.Timestamps(r); end == ^uint64(0) {
				return r, nil
			}
		}
	}
	return 0, errors.New("htap: could not find a live row version")
}

func rowValues(tbl *rfabric.Table, r int) ([]rfabric.Value, error) {
	out := make([]rfabric.Value, tbl.Schema().NumColumns())
	for c := range out {
		v, err := tbl.Get(r, c)
		if err != nil {
			return nil, err
		}
		out[c] = v
	}
	return out, nil
}

// sumBalances runs the analytical side through the fabric: an ephemeral
// view of just the balance column at the given snapshot, with the aggregate
// folded inside the fabric.
func sumBalances(sys *rfabric.System, tbl *rfabric.Table, ts uint64) (int64, error) {
	geom, err := rfabric.NewGeometryByName(tbl.Schema(), "balance")
	if err != nil {
		return 0, err
	}
	ev, err := sys.Fab.Configure(tbl, geom, rfabric.WithSnapshot(ts))
	if err != nil {
		return 0, err
	}
	agg, err := ev.Aggregate([]rfabric.AggSpec{{Kind: rfabric.Sum, Col: 2}})
	if err != nil {
		return 0, err
	}
	return agg.Values[0].Int, nil
}
