package rfabric

import (
	"fmt"
	"sync"
	"testing"
)

// TestGroupCacheWarmMatchesCold pins the cache's core contract: with the
// group cache on, repeating an RM query replays the resident group — the
// logical result is byte-identical to the cold run, the modeled cycles are
// strictly cheaper, and the counters account for every lookup.
func TestGroupCacheWarmMatchesCold(t *testing.T) {
	db := demoDB(t, 4000)
	db.SetGroupCache(DefaultGroupCacheConfig())
	const q = "SELECT id, price FROM items WHERE grp < 4"

	db.System().ResetState()
	cold, err := db.QueryOn(RM, q)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheWarm {
		t.Fatal("first run claimed a warm group")
	}
	db.System().ResetState()
	warm, err := db.QueryOn(RM, q)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheWarm {
		t.Fatal("second run did not replay the cached group")
	}
	if err := warm.EquivalentTo(cold, 0); err != nil {
		t.Fatalf("warm result diverged: %v", err)
	}
	if warm.RowsScanned != cold.RowsScanned || warm.Checksum != cold.Checksum {
		t.Fatalf("warm scan not byte-identical: scanned %d vs %d, checksum %#x vs %#x",
			warm.RowsScanned, cold.RowsScanned, warm.Checksum, cold.Checksum)
	}
	if warm.Breakdown.TotalCycles >= cold.Breakdown.TotalCycles {
		t.Fatalf("warm run (%d cycles) not cheaper than cold (%d)",
			warm.Breakdown.TotalCycles, cold.Breakdown.TotalCycles)
	}
	st := db.GroupCacheStats()
	if st.Hits != 1 || st.Misses != 1 || st.Installs != 1 || st.Entries == 0 {
		t.Fatalf("group cache stats: %+v", st)
	}

	// Off by default: a fresh DB never touches the cache.
	fresh := demoDB(t, 100)
	if _, err := fresh.QueryOn(RM, q); err != nil {
		t.Fatal(err)
	}
	if st := fresh.GroupCacheStats(); st.Hits != 0 && st.Misses != 0 {
		t.Fatalf("cache active without SetGroupCache: %+v", st)
	}
}

// TestGroupCacheInvalidatedByInsert pins the write path: an Insert through
// the façade bumps the table's epoch, so the next query re-records instead
// of serving the stale group — and sees the new row.
func TestGroupCacheInvalidatedByInsert(t *testing.T) {
	db := demoDB(t, 1000)
	db.SetGroupCache(DefaultGroupCacheConfig())
	const q = "SELECT id, price FROM items WHERE grp < 10"

	warmup := func() *Result {
		t.Helper()
		db.System().ResetState()
		res, err := db.QueryOn(RM, q)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	warmup()
	before := warmup()
	if !before.CacheWarm {
		t.Fatal("cache never warmed up")
	}
	if err := db.Insert("items", I64(10_000), I32(1), F64(1.0), Str("red"), DateV(8000)); err != nil {
		t.Fatal(err)
	}
	after := warmup()
	if after.CacheWarm {
		t.Fatal("stale group served after Insert")
	}
	if after.RowsScanned != before.RowsScanned+1 {
		t.Fatalf("post-insert scan saw %d rows, want %d", after.RowsScanned, before.RowsScanned+1)
	}
	if st := db.GroupCacheStats(); st.Invalidations == 0 {
		t.Fatalf("no invalidation counted: %+v", st)
	}
	if res := warmup(); !res.CacheWarm || res.RowsScanned != after.RowsScanned {
		t.Fatalf("re-recorded group wrong: warm=%v scanned=%d", res.CacheWarm, res.RowsScanned)
	}
}

// TestColumnarCopyInvalidatedByWrite is the regression test for the lazily
// built colstore: it used to be built once and never refreshed, so COL
// queries after a write returned stale data.
func TestColumnarCopyInvalidatedByWrite(t *testing.T) {
	db := demoDB(t, 500)
	const q = "SELECT id, price FROM items WHERE grp < 10"
	before, err := db.QueryOn(COL, q)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("items", I64(10_000), I32(1), F64(1.0), Str("red"), DateV(8000)); err != nil {
		t.Fatal(err)
	}
	after, err := db.QueryOn(COL, q)
	if err != nil {
		t.Fatal(err)
	}
	if after.RowsScanned != before.RowsScanned+1 {
		t.Fatalf("COL scan after Insert saw %d rows, want %d — stale columnar copy",
			after.RowsScanned, before.RowsScanned+1)
	}
	if after.RowsPassed != before.RowsPassed+1 {
		t.Fatalf("COL pass count after Insert: %d, want %d", after.RowsPassed, before.RowsPassed+1)
	}
	// Unchanged table: the copy is reused, not rebuilt (same result).
	again, err := db.QueryOn(COL, q)
	if err != nil {
		t.Fatal(err)
	}
	if err := again.EquivalentTo(after, 0); err != nil {
		t.Fatalf("repeat COL scan diverged: %v", err)
	}
}

// TestPlanCacheInvalidatedByDDLAndWrites pins the plan cache's epoch check:
// DDL and writes bump the catalog epoch, so a Prepare after either
// recompiles instead of serving the stale fragment.
func TestPlanCacheInvalidatedByDDLAndWrites(t *testing.T) {
	db := demoDB(t, 200)
	const q = "SELECT id FROM items WHERE grp = 1"

	p1, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	sch, _ := NewSchema(Column{Name: "x", Type: Int64, Width: 8})
	if _, err := db.CreateTable("side", sch, 16); err != nil {
		t.Fatal(err)
	}
	p2, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatal("stale fragment served across DDL")
	}
	st := db.PlanCache()
	if st.Invalidations != 1 || st.Misses != 2 {
		t.Fatalf("after DDL: %+v", st)
	}

	if err := db.Insert("side", I64(1)); err != nil {
		t.Fatal(err)
	}
	p3, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p2 {
		t.Fatal("stale fragment served across a write")
	}
	if st := db.PlanCache(); st.Invalidations != 2 {
		t.Fatalf("after write: %+v", st)
	}

	// No epoch movement: the fragment is reused.
	p4, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if p4 != p3 {
		t.Fatal("fresh fragment not reused")
	}
}

// TestPlanCacheConcurrentPrepareDDL stresses the plan cache and the group
// cache's epoch machinery under the race detector: one goroutine runs
// queries (the shared System is single-goroutine), while others churn DDL,
// writes, Prepare, and stats reads.
func TestPlanCacheConcurrentPrepareDDL(t *testing.T) {
	db := demoDB(t, 500)
	db.SetGroupCache(DefaultGroupCacheConfig())
	const q = "SELECT id, price FROM items WHERE grp < 5"

	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if _, err := db.QueryOn(RM, q); err != nil {
				t.Errorf("query: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		sch, _ := NewSchema(Column{Name: "x", Type: Int64, Width: 8})
		for i := 0; i < 50; i++ {
			name := fmt.Sprintf("side%02d", i)
			if _, err := db.CreateTable(name, sch, 16); err != nil {
				t.Errorf("ddl: %v", err)
				return
			}
			if err := db.Insert(name, I64(int64(i))); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
			if i < 16 { // demoDB reserves 16 spare rows
				if err := db.Insert("items", I64(int64(100_000+i)), I32(3), F64(2.5), Str("blue"), DateV(8001)); err != nil {
					t.Errorf("insert items: %v", err)
					return
				}
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if _, err := db.Prepare(q); err != nil {
				t.Errorf("prepare: %v", err)
				return
			}
			db.PlanCache()
			db.GroupCacheStats()
		}
	}()
	wg.Wait()

	// The final query must see every concurrent insert into items.
	res, err := db.QueryOn(RM, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsScanned != 516 {
		t.Fatalf("final scan saw %d rows, want 516", res.RowsScanned)
	}
}

// TestFeedbackEvictsMispricedPlan pins the q-error feedback loop: with an
// aggressive threshold every real estimation error fires, dropping the
// prepared fragment so the next preparation replans.
func TestFeedbackEvictsMispricedPlan(t *testing.T) {
	db := demoDB(t, 2000)
	db.SetStatements(NewStatStore())
	db.SetGroupCache(GroupCacheConfig{CapacityBytes: 64 << 20, QErrorEvictThreshold: 1.0001})
	// Heuristic selectivity for a range predicate is 1/3; the actual pass
	// rate of grp < 1 is 1/10 — guaranteed q-error above the threshold.
	const q = "SELECT id, price FROM items WHERE grp < 1"

	p, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if st := db.PlanCache(); st.Resident != 1 {
		t.Fatalf("fragment not resident: %+v", st)
	}
	if _, err := p.Run(RM); err != nil {
		t.Fatal(err)
	}
	st := db.PlanCache()
	if st.FeedbackEvictions == 0 {
		t.Fatalf("mispriced plan survived: %+v", st)
	}
	if st.Resident != 0 {
		t.Fatalf("evicted fragment still resident: %+v", st)
	}
	p2, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if p2 == p {
		t.Fatal("evicted fragment served again")
	}

	// Without the group cache the threshold is disarmed: no evictions.
	db2 := demoDB(t, 2000)
	db2.SetStatements(NewStatStore())
	p3, err := db2.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p3.Run(RM); err != nil {
		t.Fatal(err)
	}
	if st := db2.PlanCache(); st.FeedbackEvictions != 0 || st.Resident != 1 {
		t.Fatalf("feedback fired with the cache off: %+v", st)
	}
}

// TestFeedbackRechoosesPlan is the end-to-end feedback loop with injected
// selectivity skew: the index's uniform key-range statistics price
// `val <= 1000` as touching ~0.1% of a table whose keys span [0, 1e6], but
// the distribution is skewed — every row except one has val = 0, so the
// predicate actually passes nearly everything. The first AUTO run falls for
// it and picks IDX; the observed selectivity lands in the statement store,
// and the next AUTO run plans with the real value and abandons the index.
func TestFeedbackRechoosesPlan(t *testing.T) {
	db, err := Open(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sch, err := NewSchema(
		Column{Name: "id", Type: Int64, Width: 8},
		Column{Name: "val", Type: Int64, Width: 8},
		Column{Name: "price", Type: Float64, Width: 8},
	)
	if err != nil {
		t.Fatal(err)
	}
	const rows = 4000
	if _, err := db.CreateTable("skew", sch, rows); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		val := int64(0)
		if i == rows-1 {
			val = 1_000_000 // stretches the index key span
		}
		if err := db.Insert("skew", I64(int64(i)), I64(val), F64(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	db.SetStatements(NewStatStore())
	db.SetGroupCache(DefaultGroupCacheConfig())
	if _, err := db.CreateIndex("skew", "val"); err != nil {
		t.Fatal(err)
	}
	const q = "SELECT id, price FROM skew WHERE val <= 1000"

	first, err := db.QueryOn(AUTO, q)
	if err != nil {
		t.Fatal(err)
	}
	if first.Engine != "IDX" {
		t.Fatalf("index stats did not mis-price the skew: first run chose %s", first.Engine)
	}
	second, err := db.QueryOn(AUTO, q)
	if err != nil {
		t.Fatal(err)
	}
	if second.Engine == "IDX" {
		t.Fatalf("feedback did not re-choose: still on IDX after observing selectivity %.3f",
			float64(first.RowsPassed)/float64(first.RowsScanned))
	}
	if err := second.EquivalentTo(first, 0); err != nil {
		t.Fatalf("re-chosen plan diverged: %v", err)
	}
}
