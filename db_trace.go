package rfabric

import (
	"strings"

	"rfabric/internal/engine"
	"rfabric/internal/obs"
	"rfabric/internal/plan"
	"rfabric/internal/sql"
)

// Observability surface of the DB façade: a metrics registry every query
// publishes into, and per-query EXPLAIN ANALYZE traces whose span trees
// reconcile exactly with the modeled Breakdown.

// SetObserver attaches a metrics registry. Every subsequent query publishes
// rfabric_* series into it: per-query counters and cycle histograms keyed
// by engine kind and table, plus the DRAM, cache, and fabric counter deltas
// the run produced. A nil registry detaches the observer; reg.SetDisabled
// reduces publishing to a single atomic load per metric.
func (db *DB) SetObserver(reg *Registry) { db.reg = reg }

// Observer returns the attached registry (nil when none).
func (db *DB) Observer() *Registry { return db.reg }

// LastTrace returns the most recently captured query trace, or nil before
// the first traced query. The serve endpoint /debug/trace/last reads this.
func (db *DB) LastTrace() *Trace { return db.last.Load() }

// TraceOption configures a traced query.
type TraceOption func(*traceOpts)

type traceOpts struct {
	kind     EngineKind
	sample   bool
	interval uint64
}

// OnEngine routes the traced query to the chosen execution path instead of
// the default RM.
func OnEngine(kind EngineKind) TraceOption {
	return func(o *traceOpts) { o.kind = kind }
}

// WithTimeline additionally samples hardware state every everyCycles modeled
// cycles during the run — row-buffer hit rate, per-bank occupancy, cache
// miss ratio, fabric pipeline occupancy and stall, busy workers — and
// attaches the series to the returned Trace (and its Chrome-trace export).
// Zero means obs.DefaultTimelineInterval.
func WithTimeline(everyCycles uint64) TraceOption {
	return func(o *traceOpts) { o.sample = true; o.interval = everyCycles }
}

// QueryTraced is EXPLAIN ANALYZE: it parses, lowers, and executes the
// statement like Query, and additionally returns the span tree of the run —
// parse, plan (with the physical operator chain as one span per operator),
// engine dispatch, per-shard/per-morsel execution, and merge — with per-node
// modeled cycles, DRAM bytes, cache miss ratios, and row-buffer hit rates.
// The root span's AttributedCycles reconciles exactly with
// Result.Breakdown.TotalCycles. The trace is also stored for LastTrace.
func (db *DB) QueryTraced(query string, opts ...TraceOption) (*Result, *Trace, error) {
	o := traceOpts{kind: RM}
	for _, opt := range opts {
		opt(&o)
	}
	tr := obs.NewTracer("query")
	tr.Root().SetAttr("sql", query)

	psp := tr.Begin("parse")
	st, err := sql.Parse(query)
	if err != nil {
		return nil, nil, err
	}
	psp.SetAttr("table", st.Table)
	tr.End()

	if len(st.Joins) > 0 {
		tr.Begin("plan.logical")
		root, jp, sk, err := db.lowerJoin(st)
		if err != nil {
			return nil, nil, err
		}
		tr.End()
		return db.runJoinTraced(o, root, jp, sk, query, tr)
	}

	t, err := db.lookup(st.Table)
	if err != nil {
		return nil, nil, err
	}

	tr.Begin("plan.logical")
	root, err := sql.Lower(st, t.tbl.Schema())
	if err != nil {
		return nil, nil, err
	}
	q, sk, err := engine.FromPlan(root)
	if err != nil {
		return nil, nil, err
	}
	tr.End()

	return db.runTraced(o, t, q, sk, query, tr)
}

// ExecuteTraced is the Execute counterpart of QueryTraced, for callers that
// build logical queries directly. The kind argument overrides any OnEngine
// option.
func (db *DB) ExecuteTraced(kind EngineKind, tableName string, q Query, opts ...TraceOption) (*Result, *Trace, error) {
	t, err := db.lookup(tableName)
	if err != nil {
		return nil, nil, err
	}
	o := traceOpts{}
	for _, opt := range opts {
		opt(&o)
	}
	o.kind = kind
	tr := obs.NewTracer("query")
	return db.runTraced(o, t, q, engine.Sinks{}, "", tr)
}

func (db *DB) runTraced(o traceOpts, t *dbTable, q Query, sk engine.Sinks, text string, tr *obs.Tracer) (*Result, *Trace, error) {
	planSpan := attachPlanSpans(tr.Root(), planChain(q, t.tbl.Name(), sk), t.tbl.Schema())
	var tl *obs.Timeline
	if o.sample {
		tl = obs.NewTimeline(o.interval, db.sys.Cfg.DRAM.Banks)
		tr.AttachTimeline(tl)
		db.sys.AttachTimeline(tl)
		defer db.sys.DetachTimeline()
	}
	res, err := db.run(o.kind, t, q, sk, tr)
	if err != nil {
		return nil, nil, err
	}
	// The access path is only known after the run (AUTO prices it, RM may
	// route to PAR); stamp it onto the operator tree's Scan span.
	if sp := planSpan.Find("op.scan"); sp != nil {
		sp.SetAttr("source", res.Engine)
	}
	tl.Finish(res.Breakdown.TotalCycles)
	trace := &Trace{
		Query:       text,
		Engine:      res.Engine,
		TotalCycles: res.Breakdown.TotalCycles,
		Root:        tr.Root(),
		Timeline:    tl,
	}
	db.last.Store(trace)
	return res, trace, nil
}

// runJoinTraced is runTraced for join statements: the EXPLAIN spans render
// the lowered join tree (build chains nested under their join spans), and
// after the run each side's Scan span is stamped with the access path it
// actually got.
func (db *DB) runJoinTraced(o traceOpts, root *plan.Node, jp *engine.JoinPlan, sk engine.Sinks, text string, tr *obs.Tracer) (*Result, *Trace, error) {
	scans := attachJoinPlanSpans(tr.Root(), root)
	var tl *obs.Timeline
	if o.sample {
		tl = obs.NewTimeline(o.interval, db.sys.Cfg.DRAM.Banks)
		tr.AttachTimeline(tl)
		db.sys.AttachTimeline(tl)
		defer db.sys.DetachTimeline()
	}
	res, err := db.runJoin(o.kind, jp, sk, tr)
	if err != nil {
		return nil, nil, err
	}
	for _, s := range scans {
		if s.node.Source != "" {
			s.span.SetAttr("source", s.node.Source)
		}
	}
	tl.Finish(res.Breakdown.TotalCycles)
	trace := &Trace{
		Query:       text,
		Engine:      res.Engine,
		TotalCycles: res.Breakdown.TotalCycles,
		Root:        tr.Root(),
		Timeline:    tl,
	}
	db.last.Store(trace)
	return res, trace, nil
}

// scanSpan pairs an op.scan span with its plan node, so the source each side
// ran on can be stamped once the run has chosen it.
type scanSpan struct {
	span *obs.Span
	node *plan.Node
}

// attachJoinPlanSpans renders a join tree under plan.physical: the spine
// nests Input-wise like the single-table chain, and each op.join span
// additionally parents its build side's [Filter]→Scan chain. Spans carry no
// cycles, so the root's reconciliation is untouched.
func attachJoinPlanSpans(parent *obs.Span, root *plan.Node) []scanSpan {
	if parent == nil {
		return nil
	}
	top := parent.AddChild("plan.physical")
	var scans []scanSpan
	var attach func(sp *obs.Span, n *plan.Node)
	attach = func(sp *obs.Span, n *plan.Node) {
		cur := sp.AddChild("op." + strings.ToLower(n.Op.String()))
		cur.SetAttr("expr", n.Describe(nil))
		if n.Op == plan.OpScan {
			scans = append(scans, scanSpan{cur, n})
		}
		if n.Build != nil {
			attach(cur, n.Build)
		}
		if n.Input != nil {
			attach(cur, n.Input)
		}
	}
	attach(top, root)
	return scans
}

// planChain rebuilds the physical plan the run executes: the pipeline query
// plus its sinks. For QueryTraced this reproduces the lowered statement; for
// ExecuteTraced it derives the chain from the hand-built query.
func planChain(q Query, table string, sk engine.Sinks) *plan.Node {
	root := engine.PlanOf(q, table)
	if len(sk.Keys) > 0 {
		root = root.OrderBy(sk.Keys)
	}
	if sk.HasLimit {
		root = root.Limit(sk.Limit)
	}
	return root
}

// attachPlanSpans renders the operator chain under a plan.physical span, one
// nested child span per physical operator, outermost first. The spans carry
// no cycles — they are the EXPLAIN structure; attribution stays on the
// execution spans — so the root's reconciliation is untouched.
func attachPlanSpans(parent *obs.Span, root *plan.Node, sch *Schema) *obs.Span {
	if parent == nil {
		return nil
	}
	top := parent.AddChild("plan.physical")
	lines := strings.Split(root.Explain(sch), "\n")
	cur, i := top, 0
	root.Walk(func(n *plan.Node) {
		cur = cur.AddChild("op." + strings.ToLower(n.Op.String()))
		if i < len(lines) {
			cur.SetAttr("expr", strings.TrimPrefix(strings.TrimLeft(lines[i], " "), "└─ "))
		}
		i++
	})
	return top
}

// ExplainPlan parses and lowers the statement and returns its physical plan
// chain — EXPLAIN without ANALYZE. The Scan's source renders as "?" until a
// run prices it (or the caller stamps Scan().Source).
func (db *DB) ExplainPlan(query string) (*plan.Node, error) {
	st, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	return sql.LowerCatalog(st, db.schemaLookup)
}

// Explain renders the physical plan for a statement as an indented operator
// tree, the same shape QueryTraced attaches under plan.physical.
func (db *DB) Explain(query string) (string, error) {
	root, err := db.ExplainPlan(query)
	if err != nil {
		return "", err
	}
	t, err := db.lookup(root.Scan().Table)
	if err != nil {
		return "", err
	}
	return root.Explain(t.tbl.Schema()), nil
}
