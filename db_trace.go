package rfabric

import (
	"fmt"

	"rfabric/internal/obs"
	"rfabric/internal/sql"
)

// Observability surface of the DB façade: a metrics registry every query
// publishes into, and per-query EXPLAIN ANALYZE traces whose span trees
// reconcile exactly with the modeled Breakdown.

// SetObserver attaches a metrics registry. Every subsequent query publishes
// rfabric_* series into it: per-query counters and cycle histograms keyed
// by engine kind and table, plus the DRAM, cache, and fabric counter deltas
// the run produced. A nil registry detaches the observer; reg.SetDisabled
// reduces publishing to a single atomic load per metric.
func (db *DB) SetObserver(reg *Registry) { db.reg = reg }

// Observer returns the attached registry (nil when none).
func (db *DB) Observer() *Registry { return db.reg }

// LastTrace returns the most recently captured query trace, or nil before
// the first traced query. The serve endpoint /debug/trace/last reads this.
func (db *DB) LastTrace() *Trace { return db.last.Load() }

// TraceOption configures a traced query.
type TraceOption func(*traceOpts)

type traceOpts struct{ kind EngineKind }

// OnEngine routes the traced query to the chosen execution path instead of
// the default RM.
func OnEngine(kind EngineKind) TraceOption {
	return func(o *traceOpts) { o.kind = kind }
}

// QueryTraced is EXPLAIN ANALYZE: it parses, plans, and executes the
// statement like Query, and additionally returns the span tree of the run —
// parse, plan, engine dispatch, per-shard/per-morsel execution, and merge —
// with per-node modeled cycles, DRAM bytes, cache miss ratios, and
// row-buffer hit rates. The root span's AttributedCycles reconciles exactly
// with Result.Breakdown.TotalCycles. The trace is also stored for
// LastTrace.
func (db *DB) QueryTraced(query string, opts ...TraceOption) (*Result, *Trace, error) {
	o := traceOpts{kind: RM}
	for _, opt := range opts {
		opt(&o)
	}
	tr := obs.NewTracer("query")
	tr.Root().SetAttr("sql", query)

	psp := tr.Begin("parse")
	st, err := sql.Parse(query)
	if err != nil {
		return nil, nil, err
	}
	psp.SetAttr("table", st.Table)
	tr.End()

	t, ok := db.tables[st.Table]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrNoSuchTable, st.Table)
	}

	tr.Begin("plan.logical")
	q, err := sql.Plan(st, t.tbl.Schema())
	if err != nil {
		return nil, nil, err
	}
	tr.End()

	return db.runTraced(o.kind, t, q, query, tr)
}

// ExecuteTraced is the Execute counterpart of QueryTraced, for callers that
// build logical queries directly.
func (db *DB) ExecuteTraced(kind EngineKind, tableName string, q Query) (*Result, *Trace, error) {
	t, ok := db.tables[tableName]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrNoSuchTable, tableName)
	}
	tr := obs.NewTracer("query")
	return db.runTraced(kind, t, q, "", tr)
}

func (db *DB) runTraced(kind EngineKind, t *dbTable, q Query, text string, tr *obs.Tracer) (*Result, *Trace, error) {
	res, err := db.run(kind, t, q, tr)
	if err != nil {
		return nil, nil, err
	}
	trace := &Trace{
		Query:       text,
		Engine:      res.Engine,
		TotalCycles: res.Breakdown.TotalCycles,
		Root:        tr.Root(),
	}
	db.last.Store(trace)
	return res, trace, nil
}
