package rfabric

import (
	"strconv"
	"strings"
	"time"

	"rfabric/internal/engine"
	"rfabric/internal/obs"
	"rfabric/internal/plan"
	"rfabric/internal/sql"
)

// Observability surface of the DB façade: a metrics registry every query
// publishes into, and per-query EXPLAIN ANALYZE traces whose span trees
// reconcile exactly with the modeled Breakdown.

// SetObserver attaches a metrics registry. Every subsequent query publishes
// rfabric_* series into it: per-query counters and cycle histograms keyed
// by engine kind and table, plus the DRAM, cache, and fabric counter deltas
// the run produced. A nil registry detaches the observer; reg.SetDisabled
// reduces publishing to a single atomic load per metric.
func (db *DB) SetObserver(reg *Registry) { db.reg = reg }

// Observer returns the attached registry (nil when none).
func (db *DB) Observer() *Registry { return db.reg }

// SetWindows attaches a sliding-window telemetry aggregator. Every
// subsequent query execution folds its modeled cycles, bytes moved, cache
// traffic, real wall-clock, and heap-allocation delta into the current
// second's bucket — the rolling QPS/error-rate/p99 view /debug/windows.json
// serves and the SLO alert engine evaluates. Nil detaches; a disabled
// aggregator costs the query path one atomic load.
func (db *DB) SetWindows(w *obs.Windows) { db.win = w }

// Windows returns the attached sliding-window aggregator (nil when none).
func (db *DB) Windows() *obs.Windows { return db.win }

// LastTrace returns the most recently captured query trace, or nil before
// the first traced query. The serve endpoint /debug/trace/last reads this.
func (db *DB) LastTrace() *Trace { return db.last.Load() }

// TraceOption configures a traced query.
type TraceOption func(*traceOpts)

type traceOpts struct {
	kind     EngineKind
	sample   bool
	interval uint64
}

// OnEngine routes the traced query to the chosen execution path instead of
// the default RM.
func OnEngine(kind EngineKind) TraceOption {
	return func(o *traceOpts) { o.kind = kind }
}

// WithTimeline additionally samples hardware state every everyCycles modeled
// cycles during the run — row-buffer hit rate, per-bank occupancy, cache
// miss ratio, fabric pipeline occupancy and stall, busy workers — and
// attaches the series to the returned Trace (and its Chrome-trace export).
// Zero means obs.DefaultTimelineInterval.
func WithTimeline(everyCycles uint64) TraceOption {
	return func(o *traceOpts) { o.sample = true; o.interval = everyCycles }
}

// QueryTraced is EXPLAIN ANALYZE: it parses, lowers, and executes the
// statement like Query, and additionally returns the span tree of the run —
// parse, plan (with the physical operator chain as one span per operator),
// engine dispatch, per-shard/per-morsel execution, and merge — with per-node
// modeled cycles, DRAM bytes, cache miss ratios, and row-buffer hit rates.
// The root span's AttributedCycles reconciles exactly with
// Result.Breakdown.TotalCycles. The trace is also stored for LastTrace.
func (db *DB) QueryTraced(query string, opts ...TraceOption) (*Result, *Trace, error) {
	// Traced runs build their own span tree, so the statement context skips
	// the slow-capture tracer and hands finish the real trace instead.
	c := db.beginStatement(query, false)
	res, trace, err := db.queryTraced(query, c, opts...)
	if err != nil {
		c.finish(db, nil, err, nil)
	}
	return res, trace, err
}

func (db *DB) queryTraced(query string, c *stmtCtx, opts ...TraceOption) (*Result, *Trace, error) {
	o := traceOpts{kind: RM}
	for _, opt := range opts {
		opt(&o)
	}
	tr := obs.NewTracer("query")
	tr.Root().SetAttr("sql", query)

	psp := tr.Begin("parse")
	st, err := sql.Parse(query)
	if err != nil {
		return nil, nil, err
	}
	psp.SetAttr("table", st.Table)
	tr.End()

	if len(st.Joins) > 0 {
		tr.Begin("plan.logical")
		root, jp, sk, err := db.lowerJoin(st)
		if err != nil {
			return nil, nil, err
		}
		tr.End()
		return db.runJoinTraced(o, root, jp, sk, query, tr, c)
	}

	t, err := db.lookup(st.Table)
	if err != nil {
		return nil, nil, err
	}

	tr.Begin("plan.logical")
	root, err := sql.Lower(st, t.tbl.Schema())
	if err != nil {
		return nil, nil, err
	}
	q, sk, err := engine.FromPlan(root)
	if err != nil {
		return nil, nil, err
	}
	tr.End()

	return db.runTraced(o, t, q, sk, query, tr, c)
}

// ExecuteTraced is the Execute counterpart of QueryTraced, for callers that
// build logical queries directly. The kind argument overrides any OnEngine
// option.
func (db *DB) ExecuteTraced(kind EngineKind, tableName string, q Query, opts ...TraceOption) (*Result, *Trace, error) {
	t, err := db.lookup(tableName)
	if err != nil {
		return nil, nil, err
	}
	o := traceOpts{}
	for _, opt := range opts {
		opt(&o)
	}
	o.kind = kind
	tr := obs.NewTracer("query")
	return db.runTraced(o, t, q, engine.Sinks{}, "", tr, nil)
}

func (db *DB) runTraced(o traceOpts, t *dbTable, q Query, sk engine.Sinks, text string, tr *obs.Tracer, c *stmtCtx) (*Result, *Trace, error) {
	chain := planChain(q, t.tbl.Name(), sk)
	pairs := attachPlanSpans(tr.Root(), chain, t.tbl.Schema())
	var tl *obs.Timeline
	if o.sample {
		tl = obs.NewTimeline(o.interval, db.sys.Cfg.DRAM.Banks)
		tr.AttachTimeline(tl)
		db.sys.AttachTimeline(tl)
		defer db.sys.DetachTimeline()
	}
	wallStart, allocStart := time.Now(), obs.HeapAllocBytes()
	res, err := db.run(o.kind, t, q, sk, tr, c)
	if err != nil {
		return nil, nil, err
	}
	// The access path is only known after the run (AUTO prices it, RM may
	// route to PAR). Stamp the estimate the optimizer would price that path
	// with and the run's actuals onto the chain's Scan, then annotate every
	// operator span with its est/act rows — EXPLAIN ANALYZE proper.
	scan := chain.Scan()
	scan.Source = res.Engine
	scan.Offload = res.Offload
	scan.Est = db.estimateObserved(c, t, q, res)
	scan.Act = &plan.Act{
		RowsScanned: res.RowsScanned,
		RowsPassed:  res.RowsPassed,
		Cycles:      res.Breakdown.TotalCycles,
	}
	annotatePlanSpans(pairs, res, t.tbl.Schema())
	tl.Finish(res.Breakdown.TotalCycles)
	trace := &Trace{
		Query:       text,
		Engine:      res.Engine,
		TotalCycles: res.Breakdown.TotalCycles,
		WallNanos:   time.Since(wallStart).Nanoseconds(),
		AllocBytes:  obs.HeapAllocBytes() - allocStart,
		Root:        tr.Root(),
		Timeline:    tl,
	}
	db.last.Store(trace)
	c.noteSingle(db, t, q, res)
	c.finish(db, res, nil, trace)
	return res, trace, nil
}

// runJoinTraced is runTraced for join statements: the EXPLAIN spans render
// the lowered join tree (build chains nested under their join spans), and
// after the run each side's Scan span is stamped with the access path it
// actually got.
func (db *DB) runJoinTraced(o traceOpts, root *plan.Node, jp *engine.JoinPlan, sk engine.Sinks, text string, tr *obs.Tracer, c *stmtCtx) (*Result, *Trace, error) {
	pairs := attachJoinPlanSpans(tr.Root(), root)
	var tl *obs.Timeline
	if o.sample {
		tl = obs.NewTimeline(o.interval, db.sys.Cfg.DRAM.Banks)
		tr.AttachTimeline(tl)
		db.sys.AttachTimeline(tl)
		defer db.sys.DetachTimeline()
	}
	wallStart, allocStart := time.Now(), obs.HeapAllocBytes()
	res, err := db.runJoin(o.kind, jp, sk, tr)
	if err != nil {
		return nil, nil, err
	}
	db.fillJoinEstimates(o.kind, jp)
	annotatePlanSpans(pairs, res, nil)
	tl.Finish(res.Breakdown.TotalCycles)
	trace := &Trace{
		Query:       text,
		Engine:      res.Engine,
		TotalCycles: res.Breakdown.TotalCycles,
		WallNanos:   time.Since(wallStart).Nanoseconds(),
		AllocBytes:  obs.HeapAllocBytes() - allocStart,
		Root:        tr.Root(),
		Timeline:    tl,
	}
	db.last.Store(trace)
	c.noteJoin(db, o.kind, jp, res)
	c.finish(db, res, nil, trace)
	return res, trace, nil
}

// opSpan pairs an operator span with its plan node, so after the run each
// span can be annotated with the node's estimated-vs-actual numbers.
type opSpan struct {
	span *obs.Span
	node *plan.Node
}

// attachJoinPlanSpans renders a join tree under plan.physical: the spine
// nests Input-wise like the single-table chain, and each op.join span
// additionally parents its build side's [Filter]→Scan chain. Spans carry no
// cycles, so the root's reconciliation is untouched.
func attachJoinPlanSpans(parent *obs.Span, root *plan.Node) []opSpan {
	if parent == nil {
		return nil
	}
	top := parent.AddChild("plan.physical")
	var pairs []opSpan
	var attach func(sp *obs.Span, n *plan.Node)
	attach = func(sp *obs.Span, n *plan.Node) {
		cur := sp.AddChild("op." + strings.ToLower(n.Op.String()))
		cur.SetAttr("expr", n.Describe(nil))
		pairs = append(pairs, opSpan{cur, n})
		if n.Build != nil {
			attach(cur, n.Build)
		}
		if n.Input != nil {
			attach(cur, n.Input)
		}
	}
	attach(top, root)
	return pairs
}

// annotatePlanSpans writes the estimated-vs-actual row counts onto the
// operator spans after a run: each Scan carries the pricing block stamped on
// its node (per side for joins), each Filter derives its rows from the Scan
// it filters, and the consumption operators report the rows they emitted.
// This is annotation only — spans gain attributes, never cycles, so the
// root's reconciliation with Breakdown.TotalCycles is untouched.
func annotatePlanSpans(pairs []opSpan, res *Result, sch *Schema) {
	f0 := func(v float64) string { return strconv.FormatFloat(v, 'f', 0, 64) }
	f3 := func(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
	for _, p := range pairs {
		n, sp := p.node, p.span
		switch n.Op {
		case plan.OpScan:
			if n.Source != "" {
				sp.SetAttr("source", n.Source)
			}
			if n.Offload != "" {
				sp.SetAttr("offload", n.Offload)
			}
			if n.Est != nil {
				sp.SetAttr("est_rows", f0(n.Est.Rows))
				sp.SetAttr("est_cycles", f0(n.Est.Cycles))
			}
			if n.Act != nil {
				sp.SetAttr("act_rows", strconv.FormatInt(n.Act.RowsScanned, 10))
				sp.SetAttr("act_cycles", strconv.FormatUint(n.Act.Cycles, 10))
			}
			if n.Est != nil && n.Act != nil {
				sp.SetAttr("q_error", strconv.FormatFloat(
					plan.QError(n.Est.Cycles, float64(n.Act.Cycles)), 'f', 2, 64))
			}
			// Re-render the EXPLAIN line so the pricing block shows up in
			// the span tree exactly as Explain would print it.
			sp.SetAttr("expr", n.Describe(sch))
		case plan.OpFilter:
			// A Filter's rows in/out are its Scan's scanned/passed counts.
			if s := n.Input; s != nil && s.Op == plan.OpScan {
				if s.Est != nil {
					sp.SetAttr("est_rows", f0(s.Est.EstRowsOut()))
					sp.SetAttr("est_sel", f3(s.Est.Selectivity))
				}
				if s.Act != nil {
					sp.SetAttr("act_rows", strconv.FormatInt(s.Act.RowsPassed, 10))
					sp.SetAttr("act_sel", f3(s.Act.Selectivity()))
				}
			}
		case plan.OpProject:
			sp.SetAttr("act_rows", strconv.FormatInt(res.RowsPassed, 10))
		case plan.OpAggregate, plan.OpOrderBy, plan.OpLimit:
			sp.SetAttr("act_rows", strconv.Itoa(len(res.Groups)))
		}
	}
}

// estimateFor prices the access path a finished run actually used, so
// traced runs and the statement store report estimated-vs-actual even when
// the engine was chosen by the caller rather than the optimizer. Returns
// nil when the path cannot be priced (e.g. IDX with no usable index).
func (db *DB) estimateFor(t *dbTable, q Query, eng string) *plan.Est {
	db.mu.RLock()
	store, idx := t.col, t.idx
	db.mu.RUnlock()
	opt := &engine.Optimizer{Tbl: t.tbl, Sys: db.sys, Store: store, Index: idx}
	e, ok := opt.EstimateFor(eng, q)
	if !ok {
		return nil
	}
	return &plan.Est{
		Engine:      e.Engine,
		Cycles:      e.Cycles,
		Selectivity: e.Selectivity,
		Rows:        float64(t.tbl.NumRows()),
	}
}

// estimateObserved prices the access path a finished run actually used,
// under the same conditions the planner saw. Two details separate it from
// the cold estimateFor: the group cache is consulted only when the run
// really replayed a warm group — pricing after the run would otherwise see
// the group the run itself just installed and mislabel a cold run as warm,
// poisoning the q-error feedback — and the statement's feedback selectivity
// is applied when the loop is armed, so a converged estimate stops paying
// the heuristics' misprediction.
func (db *DB) estimateObserved(c *stmtCtx, t *dbTable, q Query, res *Result) *plan.Est {
	if res == nil {
		return nil
	}
	db.mu.RLock()
	store, idx := t.col, t.idx
	gc := db.gcache
	db.mu.RUnlock()
	opt := &engine.Optimizer{Tbl: t.tbl, Sys: db.sys, Store: store, Index: idx,
		Offload: db.offloadOn()}
	if res.CacheWarm {
		opt.Cache = gc
	}
	if c != nil && gc != nil {
		if sel, ok := db.stats.FeedbackSelectivity(c.fp); ok {
			opt.SelOverride = sel
		}
	}
	e, ok := opt.EstimateFor(res.Engine, q)
	if !ok {
		return nil
	}
	return &plan.Est{
		Engine:      e.Engine,
		Cycles:      e.Cycles,
		Selectivity: e.Selectivity,
		Rows:        float64(t.tbl.NumRows()),
		Warm:        e.Warm,
		Offloaded:   e.Offloaded,
	}
}

// fillJoinEstimates prices any join side still missing an estimate after a
// run (AUTO stamps its own during pricing). Each side is priced for the
// access path it actually got — its Scan node's stamped Source — so sides
// that fell back (IDX without a usable index runs ROW) and paths only
// priceable after the run (the first COL query materializes the columnar
// copy it is priced against) still report estimated-vs-actual.
func (db *DB) fillJoinEstimates(kind EngineKind, jp *engine.JoinPlan) {
	fill := func(side *engine.JoinSide) {
		if side.Node == nil || side.Node.Est != nil {
			return
		}
		t, err := db.lookup(side.Table)
		if err != nil {
			return
		}
		eng := side.Node.Source
		if eng == "" {
			eng = string(kind)
		}
		side.Node.Est = db.estimateFor(t, side.Query, eng)
	}
	fill(&jp.Probe)
	for k := range jp.Stages {
		fill(&jp.Stages[k].Side)
	}
}

// planChain rebuilds the physical plan the run executes: the pipeline query
// plus its sinks. For QueryTraced this reproduces the lowered statement; for
// ExecuteTraced it derives the chain from the hand-built query.
func planChain(q Query, table string, sk engine.Sinks) *plan.Node {
	root := engine.PlanOf(q, table)
	if len(sk.Keys) > 0 {
		root = root.OrderBy(sk.Keys)
	}
	if sk.HasLimit {
		root = root.Limit(sk.Limit)
	}
	return root
}

// attachPlanSpans renders the operator chain under a plan.physical span, one
// nested child span per physical operator, outermost first. The spans carry
// no cycles — they are the EXPLAIN structure; attribution stays on the
// execution spans — so the root's reconciliation is untouched.
func attachPlanSpans(parent *obs.Span, root *plan.Node, sch *Schema) []opSpan {
	if parent == nil {
		return nil
	}
	top := parent.AddChild("plan.physical")
	lines := strings.Split(root.Explain(sch), "\n")
	var pairs []opSpan
	cur, i := top, 0
	root.Walk(func(n *plan.Node) {
		cur = cur.AddChild("op." + strings.ToLower(n.Op.String()))
		if i < len(lines) {
			cur.SetAttr("expr", strings.TrimPrefix(strings.TrimLeft(lines[i], " "), "└─ "))
		}
		pairs = append(pairs, opSpan{cur, n})
		i++
	})
	return pairs
}

// ExplainPlan parses and lowers the statement and returns its physical plan
// chain — EXPLAIN without ANALYZE. The Scan's source renders as "?" until a
// run prices it (or the caller stamps Scan().Source).
func (db *DB) ExplainPlan(query string) (*plan.Node, error) {
	st, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	return sql.LowerCatalog(st, db.schemaLookup)
}

// Explain renders the physical plan for a statement as an indented operator
// tree, the same shape QueryTraced attaches under plan.physical.
func (db *DB) Explain(query string) (string, error) {
	root, err := db.ExplainPlan(query)
	if err != nil {
		return "", err
	}
	t, err := db.lookup(root.Scan().Table)
	if err != nil {
		return "", err
	}
	return root.Explain(t.tbl.Schema()), nil
}
