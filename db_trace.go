package rfabric

import (
	"fmt"

	"rfabric/internal/obs"
	"rfabric/internal/sql"
)

// Observability surface of the DB façade: a metrics registry every query
// publishes into, and per-query EXPLAIN ANALYZE traces whose span trees
// reconcile exactly with the modeled Breakdown.

// SetObserver attaches a metrics registry. Every subsequent query publishes
// rfabric_* series into it: per-query counters and cycle histograms keyed
// by engine kind and table, plus the DRAM, cache, and fabric counter deltas
// the run produced. A nil registry detaches the observer; reg.SetDisabled
// reduces publishing to a single atomic load per metric.
func (db *DB) SetObserver(reg *Registry) { db.reg = reg }

// Observer returns the attached registry (nil when none).
func (db *DB) Observer() *Registry { return db.reg }

// LastTrace returns the most recently captured query trace, or nil before
// the first traced query. The serve endpoint /debug/trace/last reads this.
func (db *DB) LastTrace() *Trace { return db.last.Load() }

// TraceOption configures a traced query.
type TraceOption func(*traceOpts)

type traceOpts struct {
	kind     EngineKind
	sample   bool
	interval uint64
}

// OnEngine routes the traced query to the chosen execution path instead of
// the default RM.
func OnEngine(kind EngineKind) TraceOption {
	return func(o *traceOpts) { o.kind = kind }
}

// WithTimeline additionally samples hardware state every everyCycles modeled
// cycles during the run — row-buffer hit rate, per-bank occupancy, cache
// miss ratio, fabric pipeline occupancy and stall, busy workers — and
// attaches the series to the returned Trace (and its Chrome-trace export).
// Zero means obs.DefaultTimelineInterval.
func WithTimeline(everyCycles uint64) TraceOption {
	return func(o *traceOpts) { o.sample = true; o.interval = everyCycles }
}

// QueryTraced is EXPLAIN ANALYZE: it parses, plans, and executes the
// statement like Query, and additionally returns the span tree of the run —
// parse, plan, engine dispatch, per-shard/per-morsel execution, and merge —
// with per-node modeled cycles, DRAM bytes, cache miss ratios, and
// row-buffer hit rates. The root span's AttributedCycles reconciles exactly
// with Result.Breakdown.TotalCycles. The trace is also stored for
// LastTrace.
func (db *DB) QueryTraced(query string, opts ...TraceOption) (*Result, *Trace, error) {
	o := traceOpts{kind: RM}
	for _, opt := range opts {
		opt(&o)
	}
	tr := obs.NewTracer("query")
	tr.Root().SetAttr("sql", query)

	psp := tr.Begin("parse")
	st, err := sql.Parse(query)
	if err != nil {
		return nil, nil, err
	}
	psp.SetAttr("table", st.Table)
	tr.End()

	t, ok := db.tables[st.Table]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrNoSuchTable, st.Table)
	}

	tr.Begin("plan.logical")
	q, err := sql.Plan(st, t.tbl.Schema())
	if err != nil {
		return nil, nil, err
	}
	tr.End()

	return db.runTraced(o, t, q, query, tr)
}

// ExecuteTraced is the Execute counterpart of QueryTraced, for callers that
// build logical queries directly. The kind argument overrides any OnEngine
// option.
func (db *DB) ExecuteTraced(kind EngineKind, tableName string, q Query, opts ...TraceOption) (*Result, *Trace, error) {
	t, ok := db.tables[tableName]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrNoSuchTable, tableName)
	}
	o := traceOpts{}
	for _, opt := range opts {
		opt(&o)
	}
	o.kind = kind
	tr := obs.NewTracer("query")
	return db.runTraced(o, t, q, "", tr)
}

func (db *DB) runTraced(o traceOpts, t *dbTable, q Query, text string, tr *obs.Tracer) (*Result, *Trace, error) {
	var tl *obs.Timeline
	if o.sample {
		tl = obs.NewTimeline(o.interval, db.sys.Cfg.DRAM.Banks)
		tr.AttachTimeline(tl)
		db.sys.AttachTimeline(tl)
		defer db.sys.DetachTimeline()
	}
	res, err := db.run(o.kind, t, q, tr)
	if err != nil {
		return nil, nil, err
	}
	tl.Finish(res.Breakdown.TotalCycles)
	trace := &Trace{
		Query:       text,
		Engine:      res.Engine,
		TotalCycles: res.Breakdown.TotalCycles,
		Root:        tr.Root(),
		Timeline:    tl,
	}
	db.last.Store(trace)
	return res, trace, nil
}
