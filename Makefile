GO ?= go

.PHONY: all build test race fuzz bench bench-wallclock vet lint

all: lint build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz smoke of the SQL front end; CI runs the same target.
fuzz:
	$(GO) test ./internal/sql -fuzz FuzzParseSQL -fuzztime=20s

bench:
	$(GO) test -bench=. -benchmem

# Scalar-vs-vectorized wall-clock comparison on the TPC-H scan benchmarks,
# plus the warm/cold group-cache pair.
bench-wallclock:
	$(GO) test ./internal/engine -run '^$$' -bench 'Wallclock|Sequence' -benchmem

vet:
	$(GO) vet ./...

# Static analysis: staticcheck when installed (go install
# honnef.co/go/tools/cmd/staticcheck@latest), always go vet.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; ran go vet only"; \
	fi
