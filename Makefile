GO ?= go

.PHONY: all build test race fuzz bench bench-wallclock vet

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz smoke of the SQL front end; CI runs the same target.
fuzz:
	$(GO) test ./internal/sql -fuzz FuzzParseSQL -fuzztime=10s

bench:
	$(GO) test -bench=. -benchmem

# Scalar-vs-vectorized wall-clock comparison on the TPC-H scan benchmarks.
bench-wallclock:
	$(GO) test ./internal/engine -run '^$$' -bench Wallclock -benchmem

vet:
	$(GO) vet ./...
