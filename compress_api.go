package rfabric

import "rfabric/internal/compress"

// Compression substrate (§III-D): the encodings that can — and the two that
// cannot — serve the fabric's scattered accesses.
type (
	// Codec describes one implemented encoding and whether a value can be
	// decoded from a computable offset (the fabric's requirement).
	Codec = compress.Codec
	// DictColumn is a dictionary-encoded fixed-width column.
	DictColumn = compress.DictColumn
	// DeltaColumn is a frame-of-reference bit-packed int64 column.
	DeltaColumn = compress.DeltaColumn
	// HuffmanBlob is canonical-Huffman data with a block index.
	HuffmanBlob = compress.HuffmanBlob
	// RLEColumn is a run-length encoded column (sequential decode only).
	RLEColumn = compress.RLEColumn
	// EncodedTable is a row table whose chosen columns are stored as
	// dictionary codes and flow through the fabric as such (§III-D).
	EncodedTable = compress.EncodedTable
)

// Codecs enumerates the implemented encodings with their fabric
// compatibility.
func Codecs() []Codec { return compress.Codecs() }

// EncodeDict dictionary-encodes a dense fixed-width column.
func EncodeDict(data []byte, width int) (*DictColumn, error) { return compress.EncodeDict(data, width) }

// EncodeDelta frame-of-reference-encodes int64 values.
func EncodeDelta(values []int64) *DeltaColumn { return compress.EncodeDelta(values) }

// EncodeHuffman Huffman-codes data with the given block size.
func EncodeHuffman(data []byte, blockLen int) (*HuffmanBlob, error) {
	return compress.EncodeHuffman(data, blockLen)
}

// EncodeRLE run-length-encodes a dense fixed-width column.
func EncodeRLE(data []byte, width int) (*RLEColumn, error) { return compress.EncodeRLE(data, width) }

// EncodeTableDict rewrites a table with the given columns
// dictionary-encoded; ephemeral views over the result ship codes.
func EncodeTableDict(src *Table, cols []int, baseAddr int64) (*EncodedTable, error) {
	return compress.EncodeTableDict(src, cols, baseAddr)
}

// EncodeLZ77 compresses data with the LZ-family contrast codec.
func EncodeLZ77(data []byte) []byte { return compress.EncodeLZ77(data) }

// DecodeLZ77 decompresses EncodeLZ77 output.
func DecodeLZ77(enc []byte) ([]byte, error) { return compress.DecodeLZ77(enc) }
