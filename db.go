package rfabric

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rfabric/internal/cache"
	"rfabric/internal/colstore"
	"rfabric/internal/engine"
	"rfabric/internal/fabric"
	"rfabric/internal/index"
	"rfabric/internal/obs"
	"rfabric/internal/plan"
	"rfabric/internal/sql"
	"rfabric/internal/table"
)

// DB is the convenience façade a downstream application uses: a catalog of
// row tables placed in one simulated system, queried through the mini-SQL
// dialect. Queries run on the Relational Memory path by default — the
// paper's thesis is that with the fabric present there is no reason to keep
// a second layout — but the two baselines stay available for comparison.
//
// The catalog is safe for concurrent use: CreateTable, CreateIndex, Prepare,
// and lookups take the DB's lock, so sessions may grow the schema while
// another goroutine queries. Query *execution* still follows the System's
// ownership rule — one goroutine drives the shared simulated machine at a
// time, except on the PAR path, which clones it per morsel. Wrap MVCC tables
// in a TxnManager for concurrent ingest (see the htap example).
type DB struct {
	sys *System

	mu     sync.RWMutex // guards tables, each dbTable's col/idx, and plans
	tables map[string]*dbTable
	plans  *planCache

	par *engine.ParallelConfig // nil: single-goroutine execution

	reg  *obs.Registry // nil: no metrics publishing
	win  *obs.Windows  // nil: no sliding-window telemetry
	last obs.LastTrace // most recent traced query, for /debug/trace/last

	stats         *obs.StatStore // nil: no per-statement statistics
	slow          *obs.SlowLog   // created lazily by SetSlowThreshold
	slowThreshold atomic.Uint64  // modeled cycles; 0 = slow log disarmed

	// gcache is the sequence-aware column-group cache (nil: off, the
	// paper's per-query ephemeral behaviour). Set by SetGroupCache; guarded
	// by mu alongside the catalog it caches over. gcfg carries the feedback
	// knobs that ride along with it.
	gcache *fabric.GroupCache
	gcfg   GroupCacheConfig

	// offload enables the fabric operator-offload layer (selection,
	// projection, grouped aggregation, and Bloom-filtered join probes run
	// near memory). Set by SetOffload; default off, preserving the
	// CPU-consumes-packed-chunks behaviour byte-for-byte.
	offload bool

	// catalogEpoch counts catalog mutations (CreateTable, CreateIndex,
	// Insert). Prepared statements record the epoch they compiled under and
	// recompile when it moves — the planCache's invalidation mechanism.
	catalogEpoch atomic.Uint64

	gcMu   sync.Mutex // serializes group-cache delta publication
	lastGC fabric.GroupCacheStats
}

type dbTable struct {
	tbl      *Table
	capacity int
	col      *colstore.Store // lazily materialized columnar copy
	// colVersion is the table mutation count the columnar copy was built
	// at; a moved version means the copy is stale and must be rebuilt.
	// This catches writers that bypass the façade (direct *Table handles),
	// which Insert's eager `col = nil` cannot see.
	colVersion uint64
	idx        *index.BTree // optional secondary index
}

// Open creates an empty database on a fresh simulated system.
func Open(cfg Config) (*DB, error) {
	sys, err := NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	return &DB{sys: sys, tables: map[string]*dbTable{}}, nil
}

// System exposes the underlying simulated machine (for stats and the
// lower-level APIs).
func (db *DB) System() *System { return db.sys }

// GroupCacheConfig parameterizes the sequence-aware column-group cache and
// the feedback loop that rides along with it.
type GroupCacheConfig struct {
	// CapacityBytes bounds the cache by modeled packed bytes (LRU
	// eviction of unpinned entries). Zero or negative disables the cache.
	CapacityBytes int64
	// QErrorEvictThreshold evicts a prepared statement's cached plan when
	// a run's cycle q-error exceeds it, so mispriced plans are re-planned
	// with observed-selectivity feedback. Zero or negative disarms
	// feedback eviction.
	QErrorEvictThreshold float64
}

// DefaultGroupCacheConfig is a 64 MB cache with feedback eviction at
// q-error 2 (estimate off by more than 2x in either direction).
func DefaultGroupCacheConfig() GroupCacheConfig {
	return GroupCacheConfig{CapacityBytes: 64 << 20, QErrorEvictThreshold: 2}
}

// SetGroupCache turns the sequence-aware column-group cache on (or, with a
// non-positive capacity, off). With the cache on, RM scans keep their packed
// column groups resident and replay them on later same-shaped queries, AUTO
// prices resident groups as warm, observed selectivities feed back into
// planning per statement fingerprint, and mispriced prepared plans are
// evicted by q-error. Default is off: execution and modeled costs are
// byte-identical to the per-query ephemeral behaviour.
func (db *DB) SetGroupCache(cfg GroupCacheConfig) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.gcfg = cfg
	if cfg.CapacityBytes <= 0 {
		db.gcache = nil
		return
	}
	db.gcache = fabric.NewGroupCache(cfg.CapacityBytes, db.sys.Arena)
}

// SetOffload turns the fabric operator-offload layer on or off. With it on,
// RM scans push selection and whole offloadable aggregations (grouped or
// not) into the fabric and ship only reduced results, join probes are
// pre-filtered near data against build-side Bloom filters, and AUTO prices
// the offloaded shape. The logical results are bit-identical either way;
// only where the work runs — and therefore bytes-to-CPU and modeled
// cycles — changes. Default is off.
func (db *DB) SetOffload(on bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.offload = on
}

// offloadOn returns the offload flag under the read lock.
func (db *DB) offloadOn() bool {
	db.mu.RLock()
	on := db.offload
	db.mu.RUnlock()
	return on
}

// groupCache returns the cache under the read lock (nil when off).
func (db *DB) groupCache() *fabric.GroupCache {
	db.mu.RLock()
	gc := db.gcache
	db.mu.RUnlock()
	return gc
}

// feedbackThreshold returns the armed q-error eviction threshold, or 0 when
// feedback is off (no group cache, or threshold disarmed).
func (db *DB) feedbackThreshold() float64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.gcache == nil || db.gcfg.QErrorEvictThreshold <= 0 {
		return 0
	}
	return db.gcfg.QErrorEvictThreshold
}

// GroupCacheStats snapshots the group cache's counters and occupancy.
// All-zero when the cache is off.
func (db *DB) GroupCacheStats() fabric.GroupCacheStats {
	return db.groupCache().Stats()
}

// TableOption configures CreateTable.
type TableOption func(*tableOpts)

type tableOpts struct{ mvcc bool }

// WithMVCC gives every row the two-timestamp MVCC header.
func WithMVCC() TableOption { return func(o *tableOpts) { o.mvcc = true } }

// CreateTable registers a new row table with room for capacity rows at a
// fixed place in the simulated address space.
func (db *DB) CreateTable(name string, schema *Schema, capacity int, opts ...TableOption) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[name]; dup {
		return nil, fmt.Errorf("rfabric: table %q already exists", name)
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("rfabric: capacity must be positive, got %d", capacity)
	}
	var o tableOpts
	for _, opt := range opts {
		opt(&o)
	}
	stride := schema.RowBytes()
	if o.mvcc {
		stride += table.MVCCHeaderBytes
	}
	base := db.sys.Arena.Alloc(int64(capacity * stride))
	tOpts := []table.Option{table.WithCapacity(capacity), table.WithBaseAddr(base)}
	if o.mvcc {
		tOpts = append(tOpts, table.WithMVCC())
	}
	tbl, err := table.New(name, schema, tOpts...)
	if err != nil {
		return nil, err
	}
	db.tables[name] = &dbTable{tbl: tbl, capacity: capacity}
	db.catalogEpoch.Add(1)
	return tbl, nil
}

// lookup fetches a catalog entry under the read lock.
func (db *DB) lookup(name string) (*dbTable, error) {
	db.mu.RLock()
	t, ok := db.tables[name]
	db.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchTable, name)
	}
	return t, nil
}

// Table returns a registered table.
func (db *DB) Table(name string) (*Table, error) {
	t, err := db.lookup(name)
	if err != nil {
		return nil, err
	}
	return t.tbl, nil
}

// TableNames lists the catalog in sorted order.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	db.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Insert appends one row, respecting the table's reserved capacity (the
// simulated address space behind it is fixed at creation).
func (db *DB) Insert(name string, vals ...Value) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchTable, name)
	}
	if t.tbl.NumRows() >= t.capacity {
		return fmt.Errorf("rfabric: table %q is at its reserved capacity of %d rows", name, t.capacity)
	}
	row, err := t.tbl.Append(1, vals...)
	if err == nil {
		t.col = nil // invalidate any columnar copy
		if t.idx != nil {
			if v, gerr := t.tbl.Get(row, t.idx.Column()); gerr == nil {
				t.idx.Insert(db.sys.Hier, v.Int, row)
			}
		}
		db.catalogEpoch.Add(1)
		db.gcache.Invalidate(t.tbl)
	}
	return err
}

// CreateIndex builds a B+tree over the named column and keeps it maintained
// on future inserts. The AUTO engine prices it as an access path.
func (db *DB) CreateIndex(tableName, column string) (*index.BTree, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[tableName]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchTable, tableName)
	}
	if t.idx != nil {
		return nil, fmt.Errorf("rfabric: table %q already has an index", tableName)
	}
	col, ok := t.tbl.Schema().Lookup(column)
	if !ok {
		return nil, fmt.Errorf("rfabric: unknown column %q", column)
	}
	idx, err := index.Build(t.tbl, col, db.sys.Arena)
	if err != nil {
		return nil, err
	}
	t.idx = idx
	db.catalogEpoch.Add(1)
	return idx, nil
}

// EngineKind picks which execution path a query runs on.
type EngineKind string

// Execution paths.
const (
	// RM is the default: Relational Memory's ephemeral column groups.
	RM EngineKind = "RM"
	// ROW is the volcano-style baseline over the base data.
	ROW EngineKind = "ROW"
	// COL is the column-at-a-time baseline; the first COL query converts
	// the table into a columnar copy (the duplication the paper removes).
	COL EngineKind = "COL"
	// AUTO runs the constructive optimizer (§III-B): it prices the access
	// paths with the model's cost formulas and takes the cheapest. A
	// columnar copy is considered only if one already exists.
	AUTO EngineKind = "AUTO"
	// PAR is the morsel-parallel executor: the table's row range splits
	// into fixed-size morsels that workers run on the RM path of private
	// System clones, merged deterministically. RM queries route here
	// automatically once SetParallel is called.
	PAR EngineKind = "PAR"
)

// SetParallel enables morsel-parallel execution: RM-path queries (the
// default for Query) run on the PAR executor with this configuration. Zero
// fields mean defaults (GOMAXPROCS workers, DefaultMorselRows morsels).
// Results are identical to single-goroutine RM execution up to float
// summation order, and identical across worker counts.
//
// Because PAR clones the simulated machine per worker rather than driving
// the DB's shared System, parallel queries may also run concurrently with
// each other — and, for MVCC tables, concurrently with writers when every
// query executes under TxnManager.ReadView and carries a Snapshot.
func (db *DB) SetParallel(cfg ParallelConfig) { db.par = &cfg }

// Query parses, plans, and executes the statement on the RM path.
func (db *DB) Query(query string) (*Result, error) {
	return db.QueryOn(RM, query)
}

// QueryOn parses, lowers, and executes the statement on the chosen path: the
// statement becomes a physical plan chain (internal/plan), the chain splits
// into the pipeline query plus its ORDER BY / LIMIT sinks, and the pipeline
// runs on the selected Source. When a statement store or slow log is
// attached, the call also records under its normalized fingerprint.
func (db *DB) QueryOn(kind EngineKind, query string) (*Result, error) {
	c := db.beginStatement(query, true)
	res, err := db.queryOn(kind, query, c)
	c.finish(db, res, err, nil)
	return res, err
}

func (db *DB) queryOn(kind EngineKind, query string, c *stmtCtx) (*Result, error) {
	st, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	if len(st.Joins) > 0 {
		_, jp, sk, err := db.lowerJoin(st)
		if err != nil {
			return nil, err
		}
		res, err := db.runJoin(kind, jp, sk, c.tracer())
		if err == nil {
			c.noteJoin(db, kind, jp, res)
		}
		return res, err
	}
	t, err := db.lookup(st.Table)
	if err != nil {
		return nil, err
	}
	root, err := sql.Lower(st, t.tbl.Schema())
	if err != nil {
		return nil, err
	}
	q, sk, err := engine.FromPlan(root)
	if err != nil {
		return nil, err
	}
	res, err := db.run(kind, t, q, sk, c.tracer(), c)
	if err == nil {
		c.noteSingle(db, t, q, res)
	}
	return res, err
}

// Execute runs an already-built logical query on the chosen path.
func (db *DB) Execute(kind EngineKind, tableName string, q Query) (*Result, error) {
	t, err := db.lookup(tableName)
	if err != nil {
		return nil, err
	}
	return db.run(kind, t, q, engine.Sinks{}, nil, nil)
}

// winCapture is the real-time side of one run — wall-clock and heap
// allocation marks taken only when sliding-window telemetry is attached, so
// the disabled path stays free of both.
type winCapture struct {
	on         bool
	wallStart  time.Time
	allocStart uint64
	gcStart    fabric.GroupCacheStats
}

// winBegin marks the start of a run for the windows. Costs nothing when the
// aggregator is absent or disabled.
func (db *DB) winBegin() winCapture {
	if !db.win.Enabled() {
		return winCapture{}
	}
	wc := winCapture{on: true, wallStart: time.Now(), allocStart: obs.HeapAllocBytes()}
	wc.gcStart = db.groupCache().Stats()
	return wc
}

// winEnd folds a finished run into the sliding windows: modeled cycles and
// bytes from the Breakdown, real wall-clock and allocation deltas from the
// marks, and the shared hierarchy's load/fill delta for the windowed cache
// miss ratio (PAR morsels run on clones, so their cache traffic reaches the
// windows through the merged Breakdown's bytes instead).
func (db *DB) winEnd(wc winCapture, hierStart cache.Stats, res *Result, err error) {
	if !wc.on {
		return
	}
	hd := db.sys.Hier.Stats().Delta(hierStart)
	s := obs.WindowSample{
		Err:         err != nil,
		WallNanos:   time.Since(wc.wallStart).Nanoseconds(),
		AllocBytes:  obs.HeapAllocBytes() - wc.allocStart,
		CacheLoads:  hd.Loads,
		CacheMisses: hd.DRAMFills,
	}
	if err == nil && res != nil {
		s.Cycles = res.Breakdown.TotalCycles
		s.BytesDRAM = res.Breakdown.BytesFromDRAM
		s.BytesCPU = res.Breakdown.BytesToCPU
	}
	if gc := db.groupCache(); gc != nil {
		gd := gc.Stats().Delta(wc.gcStart)
		s.GroupHits, s.GroupMisses = gd.Hits, gd.Misses
	}
	db.win.Record(s)
}

// publishGroupCache folds the group cache's counter movement since the last
// publication into the registry. The delta is serialized under gcMu so
// concurrent finishing queries never double-count.
func (db *DB) publishGroupCache() {
	gc := db.groupCache()
	if gc == nil {
		return
	}
	db.gcMu.Lock()
	cur := gc.Stats()
	d := cur.Delta(db.lastGC)
	db.lastGC = cur
	db.gcMu.Unlock()
	d.Publish(db.reg, nil)
}

// run is the measured entry point: it snapshots the simulated hardware
// counters, dispatches, and publishes the deltas plus per-query series into
// the observer registry and the sliding windows. AUTO's recursion goes
// through execute directly, so a query publishes exactly once no matter how
// it was routed.
func (db *DB) run(kind EngineKind, t *dbTable, q Query, sk engine.Sinks, tr *obs.Tracer, c *stmtCtx) (*Result, error) {
	regOn := db.reg != nil && !db.reg.Disabled()
	if !regOn && !db.win.Enabled() {
		// With no observer — or disabled ones — the query path carries no
		// observability work at all beyond these checks (two atomic loads).
		res, err := db.execute(kind, t, q, tr, c)
		if err == nil {
			applySinks(res, sk, tr)
		}
		return res, err
	}
	wc := db.winBegin()
	memStart := db.sys.Mem.Stats()
	hierStart := db.sys.Hier.Stats()
	fabStart := db.sys.Fab.Stats()
	res, err := db.execute(kind, t, q, tr, c)
	if err == nil {
		applySinks(res, sk, tr)
	}
	db.winEnd(wc, hierStart, res, err)
	if !regOn {
		return res, err
	}
	labels := obs.Labels{"engine": string(kind), "table": t.tbl.Name()}
	db.reg.Counter("rfabric_queries_total", labels).Add(1)
	if err != nil {
		db.reg.Counter("rfabric_query_errors_total", labels).Add(1)
	} else {
		db.reg.Counter("rfabric_query_cycles_total", labels).Add(res.Breakdown.TotalCycles)
		db.reg.Histogram("rfabric_query_cycles", labels).Observe(float64(res.Breakdown.TotalCycles))
		db.reg.Counter("rfabric_rows_scanned_total", labels).Add(uint64(res.RowsScanned))
		db.reg.Counter("rfabric_rows_passed_total", labels).Add(uint64(res.RowsPassed))
		// Latency distribution per resolved engine: AUTO and RM-routed-to-PAR
		// queries land under the engine that actually ran, so the p50/p95/p99
		// estimates compare execution paths rather than routing labels.
		db.reg.Histogram("rfabric_query_latency_cycles", obs.Labels{"engine": res.Engine}).
			Observe(float64(res.Breakdown.TotalCycles))
	}
	// Hardware counters move on the DB's shared System. PAR morsels run on
	// private clones whose traffic shows up in the query-level series via
	// the merged Breakdown instead.
	db.sys.Mem.Stats().Delta(memStart).Publish(db.reg, labels)
	db.sys.Hier.Stats().Delta(hierStart).Publish(db.reg, labels)
	db.sys.Fab.Stats().Delta(fabStart).Publish(db.reg, labels)
	db.publishGroupCache()
	return res, err
}

// execute dispatches by selecting a Source for the chosen access path and
// handing it to the shared pipeline (engine.Run). Only two paths sit outside
// that shape: AUTO, which prices the physical plan first and recurses with
// the chosen source stamped in, and PAR, the morsel executor that runs the
// RM source on private System clones. The statement context, when present,
// carries the fingerprint the feedback loop keys observed selectivities on.
func (db *DB) execute(kind EngineKind, t *dbTable, q Query, tr *obs.Tracer, c *stmtCtx) (*Result, error) {
	switch kind {
	case AUTO:
		db.mu.RLock()
		store, idx := t.col, t.idx
		db.mu.RUnlock()
		opt := &engine.Optimizer{Tbl: t.tbl, Sys: db.sys, Store: store, Index: idx,
			Cache: db.groupCache(), Offload: db.offloadOn()}
		root := engine.PlanOf(q, t.tbl.Name())
		sp := tr.Begin("plan")
		// Feedback: with the group cache on and history for this statement
		// fingerprint, plan with the observed selectivity instead of the
		// textbook heuristics — the StatStore half of the replanning loop.
		if c != nil && opt.Cache != nil {
			if sel, ok := db.stats.FeedbackSelectivity(c.fp); ok {
				opt.SelOverride = sel
				sp.SetAttr("feedback_sel", fmt.Sprintf("%.3f", sel))
			}
		}
		p, err := opt.ChoosePlan(root)
		if err != nil {
			tr.End()
			return nil, fmt.Errorf("rfabric: optimizing query: %w", err)
		}
		sp.SetAttr("chosen", p.Chosen)
		if est := root.Scan().Est; est != nil && est.Warm {
			sp.SetAttr("warm", "true")
		}
		tr.End()
		return db.execute(EngineKind(p.Chosen), t, q, tr, c)
	case PAR:
		var cfg engine.ParallelConfig
		if db.par != nil {
			cfg = *db.par
		}
		e := &engine.ParallelEngine{Tbl: t.tbl, Sys: db.sys, Par: cfg, Tracer: tr, Reg: db.reg}
		return e.Execute(q)
	case RM:
		if db.par != nil {
			return db.execute(PAR, t, q, tr, c)
		}
	}
	src, err := db.source(kind, t, tr)
	if err != nil {
		return nil, err
	}
	return engine.Run(src, q)
}

// source builds the engine Source for one access path. Each engine struct is
// only a Source now — the scan/consume loop lives in the shared pipeline.
func (db *DB) source(kind EngineKind, t *dbTable, tr *obs.Tracer) (engine.Source, error) {
	switch kind {
	case RM:
		return &engine.RMEngine{Tbl: t.tbl, Sys: db.sys, Tracer: tr, Cache: db.groupCache(),
			Offload: db.offloadOn()}, nil
	case ROW:
		return &engine.RowEngine{Tbl: t.tbl, Sys: db.sys, Tracer: tr}, nil
	case "IDX":
		db.mu.RLock()
		idx := t.idx
		db.mu.RUnlock()
		if idx == nil {
			return nil, errors.New("rfabric: no index on this table")
		}
		return &engine.IndexEngine{Tbl: t.tbl, Sys: db.sys, Idx: idx, Tracer: tr}, nil
	case COL:
		store, err := db.columnarCopy(t)
		if err != nil {
			return nil, err
		}
		return &engine.ColEngine{Store: store, Sys: db.sys, Tracer: tr}, nil
	default:
		return nil, fmt.Errorf("%w %q", ErrUnknownEngine, string(kind))
	}
}

// columnarCopy returns the table's columnar copy, materializing it on first
// use (the duplication the paper removes — kept as the COL baseline) and
// rebuilding it whenever the table's mutation version has moved since the
// build — writes through Insert and writes through a raw *Table handle both
// invalidate. Double-checked under the DB lock so a concurrent catalog
// writer cannot race the lazy build.
func (db *DB) columnarCopy(t *dbTable) (*colstore.Store, error) {
	db.mu.RLock()
	store, built := t.col, t.colVersion
	db.mu.RUnlock()
	if store != nil && built == t.tbl.Version() {
		return store, nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if t.col == nil || t.colVersion != t.tbl.Version() {
		// Snapshot the version before copying: a write that lands during
		// the build leaves the version ahead, forcing a rebuild next time.
		ver := t.tbl.Version()
		store, err := colstore.FromTable(t.tbl, db.sys.Arena)
		if err != nil {
			return nil, fmt.Errorf("rfabric: materializing columnar copy: %w", err)
		}
		t.col = store
		t.colVersion = ver
	}
	return t.col, nil
}

// schemaLookup resolves a table name to its schema — the catalog interface
// the join planner lowers against.
func (db *DB) schemaLookup(name string) (*Schema, error) {
	t, err := db.lookup(name)
	if err != nil {
		return nil, err
	}
	return t.tbl.Schema(), nil
}

// lowerJoin lowers a join statement against the catalog: the IR root (kept
// for EXPLAIN spans), the executable join plan, and its sinks.
func (db *DB) lowerJoin(st *sql.Stmt) (*plan.Node, *engine.JoinPlan, engine.Sinks, error) {
	root, err := sql.LowerCatalog(st, db.schemaLookup)
	if err != nil {
		return nil, nil, engine.Sinks{}, err
	}
	jp, sk, err := engine.FromJoinPlan(root, db.schemaLookup)
	if err != nil {
		return nil, nil, engine.Sinks{}, err
	}
	return root, jp, sk, nil
}

// runJoin is the measured entry point for join queries, the counterpart of
// run: counter snapshots around the dispatch, metrics labeled by the probe
// table.
func (db *DB) runJoin(kind EngineKind, jp *engine.JoinPlan, sk engine.Sinks, tr *obs.Tracer) (*Result, error) {
	regOn := db.reg != nil && !db.reg.Disabled()
	if !regOn && !db.win.Enabled() {
		res, err := db.executeJoin(kind, jp, tr)
		if err == nil {
			applySinks(res, sk, tr)
		}
		return res, err
	}
	wc := db.winBegin()
	memStart := db.sys.Mem.Stats()
	hierStart := db.sys.Hier.Stats()
	fabStart := db.sys.Fab.Stats()
	res, err := db.executeJoin(kind, jp, tr)
	if err == nil {
		applySinks(res, sk, tr)
	}
	db.winEnd(wc, hierStart, res, err)
	if !regOn {
		return res, err
	}
	labels := obs.Labels{"engine": string(kind), "table": jp.Probe.Table}
	db.reg.Counter("rfabric_queries_total", labels).Add(1)
	if err != nil {
		db.reg.Counter("rfabric_query_errors_total", labels).Add(1)
	} else {
		db.reg.Counter("rfabric_query_cycles_total", labels).Add(res.Breakdown.TotalCycles)
		db.reg.Histogram("rfabric_query_cycles", labels).Observe(float64(res.Breakdown.TotalCycles))
		db.reg.Counter("rfabric_rows_scanned_total", labels).Add(uint64(res.RowsScanned))
		db.reg.Counter("rfabric_rows_passed_total", labels).Add(uint64(res.RowsPassed))
		db.reg.Histogram("rfabric_query_latency_cycles", obs.Labels{"engine": res.Engine}).
			Observe(float64(res.Breakdown.TotalCycles))
	}
	db.sys.Mem.Stats().Delta(memStart).Publish(db.reg, labels)
	db.sys.Hier.Stats().Delta(hierStart).Publish(db.reg, labels)
	db.sys.Fab.Stats().Delta(fabStart).Publish(db.reg, labels)
	db.publishGroupCache()
	return res, err
}

// executeJoin dispatches a join plan. Every side is its own Source, so each
// runs on its own access path: the chosen kind applies to all sides, AUTO
// prices each side independently, and RM routes the probe to the morsel
// executor once SetParallel is called (builds run once on the shared System
// either way).
func (db *DB) executeJoin(kind EngineKind, p *engine.JoinPlan, tr *obs.Tracer) (*Result, error) {
	probeT, err := db.lookup(p.Probe.Table)
	if err != nil {
		return nil, err
	}
	buildTs := make([]*dbTable, len(p.Stages))
	for k := range p.Stages {
		if buildTs[k], err = db.lookup(p.Stages[k].Side.Table); err != nil {
			return nil, err
		}
	}

	probeKind := kind
	buildKinds := make([]EngineKind, len(p.Stages))
	for k := range buildKinds {
		buildKinds[k] = kind
	}
	if kind == AUTO {
		sp := tr.Begin("plan")
		if probeKind, err = db.priceJoinSide(probeT, &p.Probe); err != nil {
			tr.End()
			return nil, fmt.Errorf("rfabric: optimizing join probe: %w", err)
		}
		sp.SetAttr("probe", string(probeKind))
		if n := p.Probe.Node; n != nil && n.Est != nil {
			sp.SetAttr("probe_sel", fmt.Sprintf("%.3f", n.Est.Selectivity))
		}
		for k := range p.Stages {
			if buildKinds[k], err = db.priceJoinSide(buildTs[k], &p.Stages[k].Side); err != nil {
				tr.End()
				return nil, fmt.Errorf("rfabric: optimizing join build %d: %w", k, err)
			}
			sp.SetAttr(fmt.Sprintf("build_%d", k), string(buildKinds[k]))
			if n := p.Stages[k].Side.Node; n != nil && n.Est != nil {
				sp.SetAttr(fmt.Sprintf("build_%d_sel", k), fmt.Sprintf("%.3f", n.Est.Selectivity))
			}
		}
		tr.End()
	}
	if probeKind == RM && db.par != nil {
		probeKind = PAR
	}

	if probeKind == PAR {
		// The morsel executor probes on RM clones; build sides keep their
		// chosen kinds over the shared System.
		for k := range buildKinds {
			if buildKinds[k] == PAR {
				buildKinds[k] = RM
			}
		}
		builds, err := db.joinBuildSources(buildKinds, buildTs, p, tr)
		if err != nil {
			return nil, err
		}
		if p.Probe.Node != nil {
			p.Probe.Node.Source = string(PAR)
		}
		var cfg engine.ParallelConfig
		if db.par != nil {
			cfg = *db.par
		}
		e := &engine.ParallelJoinExec{Plan: p, ProbeTbl: probeT.tbl, Sys: db.sys,
			Par: cfg, Builds: builds, Offload: db.offloadOn(), Tracer: tr, Reg: db.reg}
		return e.Execute()
	}

	probe, err := db.joinSource(probeKind, probeT, &p.Probe, tr)
	if err != nil {
		return nil, err
	}
	builds, err := db.joinBuildSources(buildKinds, buildTs, p, tr)
	if err != nil {
		return nil, err
	}
	e := &engine.JoinExec{Plan: p, Probe: probe, Builds: builds}
	return e.Execute()
}

// priceJoinSide runs the constructive optimizer over one side's query in
// isolation: the side is a complete scan-shaped subplan, so the single-table
// cost formulas apply directly. The winning estimate is copied onto the
// side's own Scan node — the node EXPLAIN ANALYZE renders — so the pricing
// survives the throwaway tree ChoosePlan stamps it on.
func (db *DB) priceJoinSide(t *dbTable, side *engine.JoinSide) (EngineKind, error) {
	db.mu.RLock()
	store, idx := t.col, t.idx
	db.mu.RUnlock()
	opt := &engine.Optimizer{Tbl: t.tbl, Sys: db.sys, Store: store, Index: idx,
		Cache: db.groupCache(), Offload: db.offloadOn()}
	priced := engine.PlanOf(side.Query, side.Table)
	pc, err := opt.ChoosePlan(priced)
	if err != nil {
		return "", err
	}
	if side.Node != nil {
		side.Node.Est = priced.Scan().Est
	}
	return EngineKind(pc.Chosen), nil
}

// joinBuildSources builds one Source per build stage.
func (db *DB) joinBuildSources(kinds []EngineKind, ts []*dbTable, p *engine.JoinPlan, tr *obs.Tracer) ([]engine.Source, error) {
	builds := make([]engine.Source, len(p.Stages))
	for k := range p.Stages {
		src, err := db.joinSource(kinds[k], ts[k], &p.Stages[k].Side, tr)
		if err != nil {
			return nil, err
		}
		builds[k] = src
	}
	return builds, nil
}

// joinSource builds the Source for one join side and stamps the access path
// it actually got onto the side's Scan node. Join sides stream through the
// scalar pipeline's sink hook, so every engine with a batch path is pinned
// to ForceScalar. IDX falls back to ROW when the side's selection cannot use
// the index — a join side is an internal scan, not a user-chosen path.
func (db *DB) joinSource(kind EngineKind, t *dbTable, side *engine.JoinSide, tr *obs.Tracer) (engine.Source, error) {
	var src engine.Source
	switch kind {
	case RM:
		src = &engine.RMEngine{Tbl: t.tbl, Sys: db.sys, Tracer: tr, ForceScalar: true,
			Cache: db.groupCache(), Offload: db.offloadOn()}
	case ROW:
		src = &engine.RowEngine{Tbl: t.tbl, Sys: db.sys, Tracer: tr, ForceScalar: true}
	case "IDX":
		db.mu.RLock()
		idx := t.idx
		db.mu.RUnlock()
		if idx != nil && engine.IndexApplicable(idx, side.Query.Selection) {
			src = &engine.IndexEngine{Tbl: t.tbl, Sys: db.sys, Idx: idx, Tracer: tr}
		} else {
			src = &engine.RowEngine{Tbl: t.tbl, Sys: db.sys, Tracer: tr, ForceScalar: true}
		}
	case COL:
		store, err := db.columnarCopy(t)
		if err != nil {
			return nil, err
		}
		src = &engine.ColEngine{Store: store, Sys: db.sys, Tracer: tr, ForceScalar: true}
	default:
		return nil, fmt.Errorf("%w %q", ErrUnknownEngine, string(kind))
	}
	if side.Node != nil {
		side.Node.Source = src.Name()
	}
	return src, nil
}

// applySinks runs the plan's ORDER BY / LIMIT sinks over a finished result
// and, when the run is traced, attributes the modeled sort cycles to a sink
// span so the root still reconciles with Breakdown.TotalCycles.
func applySinks(res *Result, sk engine.Sinks, tr *obs.Tracer) {
	if sk.Empty() {
		return
	}
	cycles := engine.ApplySinks(res, sk)
	sp := tr.Root().Leaf("sink", cycles, 0)
	if len(sk.Keys) > 0 {
		sp.SetAttr("orderby_keys", fmt.Sprint(len(sk.Keys)))
	}
	if sk.HasLimit {
		sp.SetAttr("limit", fmt.Sprint(sk.Limit))
	}
}

// Configure builds an ephemeral view of the named columns over a registered
// table — the Fig. 3 API surface for callers that want the packed bytes
// rather than query results.
func (db *DB) Configure(tableName string, columns []string, opts ...ViewOption) (*Ephemeral, error) {
	t, ok := db.tables[tableName]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchTable, tableName)
	}
	geom, err := NewGeometryByName(t.tbl.Schema(), columns...)
	if err != nil {
		return nil, err
	}
	return db.sys.Fab.Configure(t.tbl, geom, opts...)
}

// CompileSQL exposes the parser/planner for callers driving engines
// directly.
func CompileSQL(query string, schema *Schema) (Query, error) {
	return sql.Compile(query, schema)
}

// ParseDate converts 'YYYY-MM-DD' into the day number DATE columns store.
func ParseDate(s string) (int32, error) { return sql.ParseDate(s) }

// FormatDate renders a DATE day number as 'YYYY-MM-DD'.
func FormatDate(day int32) string { return sql.FormatDate(day) }
