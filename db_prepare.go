package rfabric

import (
	"fmt"

	"rfabric/internal/sql"
)

// Plan caching. §III-B observes that with the fabric there are no buffered
// data layouts to manage, so the evaluation engine "can buffer more code
// fragments and reuse previously compiled code fragments more aggressively".
// Compilation here is parse+plan; a Prepared statement is the reusable
// fragment, and the DB keeps a cache keyed by query text so repeated ad-hoc
// queries reuse their fragments automatically.

// CompileCycles is the modeled cost of compiling one query fragment
// (parse, resolve, plan) — charged once per distinct query text.
const CompileCycles = 25_000

// Prepared is a compiled query fragment bound to a table.
type Prepared struct {
	db    *DB
	table string
	query Query
	text  string
}

// PlanCacheStats reports fragment-cache behaviour.
type PlanCacheStats struct {
	Hits     uint64
	Misses   uint64
	Resident int
	// CompileCyclesSpent is the total modeled compilation time; a cache hit
	// avoids CompileCycles of it.
	CompileCyclesSpent uint64
}

type planCache struct {
	frags map[string]*Prepared
	stats PlanCacheStats
}

// Prepare compiles the statement (or fetches its cached fragment) and
// returns the reusable Prepared.
func (db *DB) Prepare(query string) (*Prepared, error) {
	if db.plans == nil {
		db.plans = &planCache{frags: map[string]*Prepared{}}
	}
	if p, ok := db.plans.frags[query]; ok {
		db.plans.stats.Hits++
		return p, nil
	}
	db.plans.stats.Misses++
	db.plans.stats.CompileCyclesSpent += CompileCycles

	st, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	t, ok := db.tables[st.Table]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchTable, st.Table)
	}
	q, err := sql.Plan(st, t.tbl.Schema())
	if err != nil {
		return nil, err
	}
	p := &Prepared{db: db, table: st.Table, query: q, text: query}
	db.plans.frags[query] = p
	db.plans.stats.Resident = len(db.plans.frags)
	return p, nil
}

// Run executes the fragment on the chosen path.
func (p *Prepared) Run(kind EngineKind) (*Result, error) {
	t, ok := p.db.tables[p.table]
	if !ok {
		return nil, fmt.Errorf("%w: %q (dropped since preparation)", ErrNoSuchTable, p.table)
	}
	return p.db.run(kind, t, p.query, nil)
}

// Text returns the source text of the fragment.
func (p *Prepared) Text() string { return p.text }

// PlanCache returns the fragment-cache statistics.
func (db *DB) PlanCache() PlanCacheStats {
	if db.plans == nil {
		return PlanCacheStats{}
	}
	return db.plans.stats
}
