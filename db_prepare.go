package rfabric

import (
	"fmt"

	"rfabric/internal/engine"
	"rfabric/internal/sql"
)

// Plan caching. §III-B observes that with the fabric there are no buffered
// data layouts to manage, so the evaluation engine "can buffer more code
// fragments and reuse previously compiled code fragments more aggressively".
// Compilation here is parse+lower; a Prepared statement is the reusable
// fragment — the pipeline query plus its ORDER BY / LIMIT sinks — and the DB
// keeps a cache keyed by query text so repeated ad-hoc queries reuse their
// fragments automatically.

// CompileCycles is the modeled cost of compiling one query fragment
// (parse, resolve, lower) — charged once per distinct query text.
const CompileCycles = 25_000

// Prepared is a compiled query fragment bound to a table.
type Prepared struct {
	db    *DB
	table string
	query Query
	sinks engine.Sinks
	text  string
	// fp is the statement's normalized fingerprint — the key feedback
	// eviction matches against. epoch is the catalog epoch the fragment
	// compiled under; a moved epoch means the catalog changed (DDL or a
	// write) and the cached fragment is stale.
	fp    uint64
	epoch uint64
}

// PlanCacheStats reports fragment-cache behaviour.
type PlanCacheStats struct {
	Hits     uint64
	Misses   uint64
	Resident int
	// CompileCyclesSpent is the total modeled compilation time; a cache hit
	// avoids CompileCycles of it.
	CompileCyclesSpent uint64
	// Invalidations counts stale fragments dropped because the catalog
	// epoch moved under them (DDL or write paths).
	Invalidations uint64
	// FeedbackEvictions counts fragments evicted because a run's cycle
	// q-error exceeded the configured threshold — the replanning half of
	// the feedback loop.
	FeedbackEvictions uint64
}

type planCache struct {
	frags map[string]*Prepared
	stats PlanCacheStats
}

// Prepare compiles the statement (or fetches its cached fragment) and
// returns the reusable Prepared. Safe for concurrent use with queries and
// catalog growth: cache and catalog are consulted under the DB lock.
func (db *DB) Prepare(query string) (*Prepared, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.plans == nil {
		db.plans = &planCache{frags: map[string]*Prepared{}}
	}
	epoch := db.catalogEpoch.Load()
	if p, ok := db.plans.frags[query]; ok {
		if p.epoch == epoch {
			db.plans.stats.Hits++
			return p, nil
		}
		// The catalog moved under the fragment (DDL or a write): drop it
		// and recompile against the current schema and contents.
		delete(db.plans.frags, query)
		db.plans.stats.Invalidations++
	}
	db.plans.stats.Misses++
	db.plans.stats.CompileCyclesSpent += CompileCycles

	st, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	t, ok := db.tables[st.Table]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchTable, st.Table)
	}
	root, err := sql.Lower(st, t.tbl.Schema())
	if err != nil {
		return nil, err
	}
	q, sk, err := engine.FromPlan(root)
	if err != nil {
		return nil, err
	}
	_, fp := sql.Fingerprint(query)
	p := &Prepared{db: db, table: st.Table, query: q, sinks: sk, text: query,
		fp: fp, epoch: epoch}
	db.plans.frags[query] = p
	db.plans.stats.Resident = len(db.plans.frags)
	return p, nil
}

// evictPlan drops every cached fragment with the given statement
// fingerprint — feedback eviction for plans whose pricing proved wrong. The
// next Prepare recompiles, and AUTO replans it with observed-selectivity
// feedback from the statement store.
func (db *DB) evictPlan(fp uint64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.plans == nil {
		return
	}
	for text, p := range db.plans.frags {
		if p.fp == fp {
			delete(db.plans.frags, text)
			db.plans.stats.FeedbackEvictions++
		}
	}
	db.plans.stats.Resident = len(db.plans.frags)
}

// Run executes the fragment on the chosen path. Runs record into the DB's
// statement store under the fragment's source text, so prepared and ad-hoc
// executions of the same statement aggregate under one fingerprint.
func (p *Prepared) Run(kind EngineKind) (*Result, error) {
	t, err := p.db.lookup(p.table)
	if err != nil {
		return nil, fmt.Errorf("%w (dropped since preparation)", err)
	}
	c := p.db.beginStatement(p.text, true)
	res, err := p.db.run(kind, t, p.query, p.sinks, c.tracer(), c)
	if err == nil {
		c.noteSingle(p.db, t, p.query, res)
	}
	c.finish(p.db, res, err, nil)
	return res, err
}

// Text returns the source text of the fragment.
func (p *Prepared) Text() string { return p.text }

// PlanCache returns the fragment-cache statistics.
func (db *DB) PlanCache() PlanCacheStats {
	if db == nil {
		return PlanCacheStats{}
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.plans == nil {
		return PlanCacheStats{}
	}
	return db.plans.stats
}
