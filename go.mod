module rfabric

go 1.22
