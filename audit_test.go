package rfabric

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestAuditReplaysAllEnginesAndStatements runs the full optimizer audit at a
// small scale and checks its structural guarantees: every statement replays
// on every path, q-errors are well-formed, the statement store saw every
// replay, and both output formats render.
func TestAuditReplaysAllEnginesAndStatements(t *testing.T) {
	rep, err := RunAudit(DefaultConfig(), 3000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bad := rep.CheckShape(); len(bad) != 0 {
		t.Fatalf("audit shape violations: %v", bad)
	}
	if len(rep.Queries) != len(DefaultAuditSet()) {
		t.Fatalf("audit covered %d queries, want %d", len(rep.Queries), len(DefaultAuditSet()))
	}
	for _, q := range rep.Queries {
		var okRuns int
		for _, run := range q.Runs {
			if run.Error == "" {
				okRuns++
				if run.ActCycles == 0 {
					t.Errorf("%s/%s: zero actual cycles", q.Name, run.Engine)
				}
			}
		}
		// Every path must execute the audit set — that is what the
		// ship-date predicates and the IDX join fallback guarantee.
		if okRuns != len(AuditEngines) {
			t.Errorf("%s: only %d/%d paths ran cleanly: %+v", q.Name, okRuns, len(AuditEngines), q.Runs)
		}
		if q.MaxQError < 1 {
			t.Errorf("%s: no q-error recorded", q.Name)
		}
		// Every replay recorded its observed selectivity, so the feedback
		// repricing must have produced a verdict for every statement.
		switch q.AutoAfterFeedback {
		case "ROW", "COL", "RM", "IDX":
		default:
			t.Errorf("%s: AutoAfterFeedback = %q, want a serial engine name", q.Name, q.AutoAfterFeedback)
		}
	}
	// The statement store saw one fingerprint per audit statement (each
	// replayed len(AuditEngines) times, plus the rechoice repricings which
	// don't execute and so don't record).
	if len(rep.Statements) != len(DefaultAuditSet()) {
		t.Errorf("statement store holds %d fingerprints, want %d: %+v",
			len(rep.Statements), len(DefaultAuditSet()), rep.Statements)
	}
	for _, s := range rep.Statements {
		if s.Calls != uint64(len(AuditEngines)) {
			t.Errorf("statement %s recorded %d calls, want %d", s.Text, s.Calls, len(AuditEngines))
		}
		if s.QErrorSamples == 0 {
			t.Errorf("statement %s recorded no q-error samples", s.Text)
		}
	}

	var tbl bytes.Buffer
	rep.WriteTable(&tbl)
	for _, want := range []string{"Optimizer accuracy audit", "AUTO chose", "q_err"} {
		if !strings.Contains(tbl.String(), want) {
			t.Errorf("audit table lacks %q:\n%s", want, tbl.String())
		}
	}
	var js bytes.Buffer
	if err := rep.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var back AuditReport
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatalf("audit JSON does not round-trip: %v", err)
	}
	if back.MaxQError != rep.MaxQError || len(back.Queries) != len(rep.Queries) {
		t.Errorf("audit JSON round-trip diverged")
	}
}

// TestAuditRechoice pins the SelOverride re-pricing path: with the observed
// selectivity substituted, the optimizer still returns a valid engine name.
func TestAuditRechoice(t *testing.T) {
	db := tpchDB(t, 2000)
	got := db.rechoice(`SELECT l_orderkey FROM lineitem WHERE l_shipdate < DATE '1995-06-17'`, 0.4)
	switch got {
	case "ROW", "COL", "RM", "IDX":
	default:
		t.Fatalf("rechoice returned %q, want a serial engine name", got)
	}
}
