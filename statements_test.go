package rfabric

import (
	"testing"

	"rfabric/internal/obs"
	"rfabric/internal/tpch"
)

// Acceptance tests for the statement-statistics store and the
// estimated-vs-actual plan instrumentation: EXPLAIN ANALYZE's per-operator
// actual-row counts must reconcile with the Result the run returned, on
// every execution path, for single-table and multi-table statements alike.

// scanSpans collects every op.scan span in a trace, pre-order.
func scanSpans(s *obs.Span) []*obs.Span {
	var out []*obs.Span
	var walk func(*obs.Span)
	walk = func(s *obs.Span) {
		if s == nil {
			return
		}
		if s.Name == "op.scan" {
			out = append(out, s)
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(s)
	return out
}

func attrInt(t *testing.T, sp *obs.Span, key string) int64 {
	t.Helper()
	v, ok := sp.Attr(key)
	if !ok {
		t.Fatalf("span %s lacks attribute %q (attrs: %v)", sp.Name, key, sp.Attrs)
	}
	var n int64
	for _, c := range v {
		if c < '0' || c > '9' {
			t.Fatalf("span %s attr %s=%q is not an integer", sp.Name, key, v)
		}
		n = n*10 + int64(c-'0')
	}
	return n
}

// TestExplainAnalyzeActualsReconcile runs a filtered single-table statement
// as EXPLAIN ANALYZE on all six paths and checks the instrumentation
// contract: the Scan span's act_rows is exactly Result.RowsScanned, the
// Filter span's act_rows is exactly Result.RowsPassed, and the pricing block
// (est_rows/est_cycles/q_error) is present.
func TestExplainAnalyzeActualsReconcile(t *testing.T) {
	db := tpchDB(t, 3000)
	const q = `SELECT l_orderkey, l_quantity FROM lineitem WHERE l_shipdate < DATE '1995-06-17'`
	for _, kind := range joinEngineKinds {
		res, trace, err := db.QueryTraced(q, OnEngine(kind))
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		scans := scanSpans(trace.Root)
		if len(scans) != 1 {
			t.Fatalf("%s: want 1 op.scan span, got %d", kind, len(scans))
		}
		sp := scans[0]
		if got := attrInt(t, sp, "act_rows"); got != res.RowsScanned {
			t.Errorf("%s: op.scan act_rows=%d, Result.RowsScanned=%d", kind, got, res.RowsScanned)
		}
		if got := attrInt(t, sp, "act_cycles"); uint64(got) != res.Breakdown.TotalCycles {
			t.Errorf("%s: op.scan act_cycles=%d, TotalCycles=%d", kind, got, res.Breakdown.TotalCycles)
		}
		for _, key := range []string{"est_rows", "est_cycles", "q_error", "source"} {
			if _, ok := sp.Attr(key); !ok {
				t.Errorf("%s: op.scan span lacks %s", kind, key)
			}
		}
		filter := trace.Root.Find("op.filter")
		if filter == nil {
			t.Fatalf("%s: no op.filter span", kind)
		}
		if got := attrInt(t, filter, "act_rows"); got != res.RowsPassed {
			t.Errorf("%s: op.filter act_rows=%d, Result.RowsPassed=%d", kind, got, res.RowsPassed)
		}
	}
}

// TestExplainAnalyzeJoinActualsReconcile runs the Q3/Q5/Q10-class join
// statements as EXPLAIN ANALYZE on all six paths: every side's Scan span
// must carry est/act numbers, and the per-side act_rows must sum exactly to
// the Result's RowsScanned (probe scanned + each build scanned).
func TestExplainAnalyzeJoinActualsReconcile(t *testing.T) {
	db := tpchDB(t, 3000)
	queries := map[string]string{"Q3": tpch.Q3SQL, "Q5": tpch.Q5SQL, "Q10": tpch.Q10SQL}
	for name, q := range queries {
		for _, kind := range joinEngineKinds {
			res, trace, err := db.QueryTraced(q, OnEngine(kind))
			if err != nil {
				t.Fatalf("%s/%s: %v", name, kind, err)
			}
			scans := scanSpans(trace.Root)
			wantSides := 2
			if name == "Q10" {
				wantSides = 3
			}
			if len(scans) != wantSides {
				t.Fatalf("%s/%s: want %d op.scan spans, got %d", name, kind, wantSides, len(scans))
			}
			var sum int64
			for _, sp := range scans {
				sum += attrInt(t, sp, "act_rows")
				for _, key := range []string{"est_cycles", "act_cycles", "source"} {
					if _, ok := sp.Attr(key); !ok {
						t.Errorf("%s/%s: scan span lacks %s (attrs: %v)", name, kind, key, sp.Attrs)
					}
				}
			}
			if sum != res.RowsScanned {
				t.Errorf("%s/%s: per-side act_rows sum to %d, Result.RowsScanned=%d",
					name, kind, sum, res.RowsScanned)
			}
			if got := trace.Root.AttributedCycles(); got != res.Breakdown.TotalCycles {
				t.Errorf("%s/%s: instrumentation perturbed attribution: %d vs %d",
					name, kind, got, res.Breakdown.TotalCycles)
			}
		}
	}
}

// TestStatementStoreEndToEnd drives the statement store through the DB
// façade: literal variants collapse onto one fingerprint, prepared and
// ad-hoc runs of the same text aggregate together, join statements record
// estimated-vs-actual selectivity, and parse failures count as errors.
func TestStatementStoreEndToEnd(t *testing.T) {
	db := tpchDB(t, 2000)
	stats := obs.NewStatStore()
	db.SetStatements(stats)

	if _, err := db.Query(`SELECT SUM(l_quantity) FROM lineitem WHERE l_quantity < 24`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(`SELECT SUM(l_quantity) FROM lineitem WHERE l_quantity < 30`); err != nil {
		t.Fatal(err)
	}
	p, err := db.Prepare(`SELECT SUM(l_quantity) FROM lineitem WHERE l_quantity < 24`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(COL); err != nil {
		t.Fatal(err)
	}
	if _, err := db.QueryOn(AUTO, tpch.Q3SQL); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(`SELECT nope FROM lineitem`); err == nil {
		t.Fatal("expected an error for an unknown column")
	}

	recs := stats.Snapshot()
	byText := map[string]obs.StatementRecord{}
	for _, r := range recs {
		byText[r.Text] = r
	}
	agg, ok := byText["SELECT SUM ( l_quantity ) FROM lineitem WHERE l_quantity < ?"]
	if !ok {
		t.Fatalf("no aggregated fingerprint for the literal variants; have %d records: %+v", len(recs), byText)
	}
	if agg.Calls != 3 {
		t.Errorf("literal variants + prepared run: calls=%d, want 3", agg.Calls)
	}
	if agg.Engines["RM"] != 2 || agg.Engines["COL"] != 1 {
		t.Errorf("engine counts: %v, want RM:2 COL:1", agg.Engines)
	}
	if agg.QErrorSamples == 0 || agg.MeanQError < 1 {
		t.Errorf("aggregate statement recorded no q-error: %+v", agg)
	}

	var join, failed *obs.StatementRecord
	for i := range recs {
		switch {
		case recs[i].Errors > 0:
			failed = &recs[i]
		case recs[i].RowsScan > 2000: // join scans lineitem + orders
			join = &recs[i]
		}
	}
	if join == nil {
		t.Fatalf("no join statement record found: %+v", recs)
	}
	if join.QErrorSamples == 0 {
		t.Errorf("join statement recorded no q-error: %+v", join)
	}
	if join.MeanActSel <= 0 {
		t.Errorf("join statement recorded no actual selectivity: %+v", join)
	}
	if failed == nil || failed.Calls != 1 || failed.TotalCycles != 0 {
		t.Errorf("parse failure not recorded as an error-only call: %+v", failed)
	}
}

// TestSlowQueryLog arms the slow log with a threshold every query exceeds
// and checks that entries capture the full trace, and that QueryTraced's own
// trace is reused rather than re-captured.
func TestSlowQueryLog(t *testing.T) {
	db := tpchDB(t, 2000)
	db.SetSlowThreshold(1)

	if _, err := db.Query(`SELECT SUM(l_quantity) FROM lineitem WHERE l_quantity < 24`); err != nil {
		t.Fatal(err)
	}
	_, trace, err := db.QueryTraced(tpch.Q3SQL, OnEngine(AUTO))
	if err != nil {
		t.Fatal(err)
	}

	sl := db.SlowLog()
	if sl == nil {
		t.Fatal("SetSlowThreshold did not arm the slow log")
	}
	entries := sl.Entries()
	if len(entries) != 2 {
		t.Fatalf("slow log has %d entries, want 2", len(entries))
	}
	// Entries are newest-first: the traced join, then the plain query.
	if entries[0].Trace != trace {
		t.Errorf("traced run's slow entry does not reuse the returned trace")
	}
	if entries[0].Cycles <= entries[0].Threshold {
		t.Errorf("slow entry below threshold: %+v", entries[0])
	}
	plain := entries[1]
	if plain.Trace == nil || plain.Trace.Root == nil {
		t.Fatalf("plain query's slow entry has no captured trace: %+v", plain)
	}
	if plain.Trace.Root.Find("op.scan") != nil {
		// The capture tracer records execution spans, not the EXPLAIN chain;
		// this documents the distinction rather than requiring it.
		t.Logf("capture trace unexpectedly carries plan spans")
	}
	if _, ok := plain.Trace.Root.Attr("sql"); !ok {
		t.Errorf("capture trace lacks the sql attribute: %+v", plain.Trace.Root)
	}

	// Disarm: nothing further is captured.
	db.SetSlowThreshold(0)
	if _, err := db.Query(`SELECT SUM(l_tax) FROM lineitem`); err != nil {
		t.Fatal(err)
	}
	if got := sl.Total(); got != 2 {
		t.Errorf("disarmed slow log still captured: total=%d", got)
	}
}
