package rfabric

import (
	"strings"
	"testing"

	"rfabric/internal/tpch"
)

// tpchDB builds the multi-table TPC-H catalog at a small scale via the
// audit's NewTPCHDB builder: lineitem plus the orders/customer/part tables
// whose keys correlate with it, and a secondary index on l_shipdate so the
// IDX path has something to price.
func tpchDB(t *testing.T, lineitemRows int) *DB {
	t.Helper()
	db, err := NewTPCHDB(DefaultConfig(), lineitemRows, 1)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

var joinEngineKinds = []EngineKind{ROW, COL, RM, "IDX", PAR, AUTO}

// TestTPCHJoinQueriesAllEngines is the acceptance check: the Q3/Q5/Q10-class
// multi-table queries run end-to-end via SQL on every execution path and
// produce identical results.
func TestTPCHJoinQueriesAllEngines(t *testing.T) {
	db := tpchDB(t, 6000)
	queries := map[string]string{"Q3": tpch.Q3SQL, "Q5": tpch.Q5SQL, "Q10": tpch.Q10SQL}
	for name, q := range queries {
		t.Run(name, func(t *testing.T) {
			ref, err := db.QueryOn(ROW, q)
			if err != nil {
				t.Fatalf("ROW: %v", err)
			}
			if ref.RowsPassed == 0 || len(ref.Groups) == 0 {
				t.Fatalf("ROW produced an empty join result: %+v", ref)
			}
			for _, kind := range joinEngineKinds[1:] {
				res, err := db.QueryOn(kind, q)
				if err != nil {
					t.Fatalf("%s: %v", kind, err)
				}
				if err := ref.EquivalentTo(res, 1e-6); err != nil {
					t.Errorf("%s result diverges from ROW: %v", kind, err)
				}
			}
		})
	}
}

// TestTPCHQ3TracedReconciles runs Q3 as EXPLAIN ANALYZE on the serial and
// parallel paths: the span tree must attribute exactly the modeled total,
// with build and probe phases as separate spans, and each side's Scan span
// stamped with the access path it ran on.
func TestTPCHQ3TracedReconciles(t *testing.T) {
	db := tpchDB(t, 4000)
	for _, kind := range []EngineKind{RM, PAR, AUTO} {
		res, trace, err := db.QueryTraced(tpch.Q3SQL, OnEngine(kind))
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if res.Breakdown.TotalCycles == 0 {
			t.Fatalf("%s: zero modeled cycles", kind)
		}
		if got := trace.Root.AttributedCycles(); got != res.Breakdown.TotalCycles {
			t.Fatalf("%s: span tree attributes %d cycles, Breakdown.TotalCycles is %d",
				kind, got, res.Breakdown.TotalCycles)
		}
		if trace.Root.Find("build[0]") == nil {
			t.Errorf("%s: trace has no build[0] span", kind)
		}
		if trace.Root.Find("probe") == nil && trace.Root.Find("morsels") == nil {
			t.Errorf("%s: trace has neither probe nor morsels span", kind)
		}
		scan := trace.Root.Find("op.scan")
		if scan == nil {
			t.Fatalf("%s: trace has no op.scan span", kind)
		}
		if src, ok := scan.Attr("source"); !ok || src == "" {
			t.Errorf("%s: op.scan span lacks a source attribute", kind)
		}
	}
}

// TestExplainJoin renders a join statement's physical plan: the join
// operator appears with its key equality, and the build side's chain is
// indented under it.
func TestExplainJoin(t *testing.T) {
	db := tpchDB(t, 400)
	out, err := db.Explain(tpch.Q3SQL)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Join", "l_orderkey = o_orderkey", "Scan[lineitem", "Scan[orders", "Aggregate"} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN output lacks %q:\n%s", want, out)
		}
	}
}

// TestJoinOnParallelDB checks the RM→PAR rerouting: with SetParallel active,
// a default Query on a join statement lands on the morsel executor and still
// matches the serial result.
func TestJoinOnParallelDB(t *testing.T) {
	db := tpchDB(t, 3000)
	ref, err := db.QueryOn(ROW, tpch.Q3SQL)
	if err != nil {
		t.Fatal(err)
	}
	db.SetParallel(ParallelConfig{Workers: 4, MorselRows: 512})
	res, err := db.Query(tpch.Q3SQL)
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine != "PAR" {
		t.Errorf("parallel DB routed join to %s, want PAR", res.Engine)
	}
	if err := ref.EquivalentTo(res, 1e-6); err != nil {
		t.Errorf("PAR join diverges from ROW: %v", err)
	}
}
