package rfabric

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"rfabric/internal/engine"
	"rfabric/internal/obs"
	"rfabric/internal/plan"
	"rfabric/internal/sql"
	"rfabric/internal/tpch"
)

// Optimizer accuracy audit: replay a statement set across every execution
// path, comparing the cost model's estimates against what each path
// actually did. The report answers the accountability questions the
// statement store raises — where is the cost model wrong (q-error), did
// AUTO pick the path that actually won, and would it have chosen
// differently with the selectivity it observed instead of the textbook
// heuristic it assumed.

// AuditEngines is the audit's replay order. COL runs before AUTO so the
// columnar copy it materializes is an access path AUTO can price, matching
// a warmed-up system.
var AuditEngines = []EngineKind{ROW, COL, RM, "IDX", PAR, AUTO}

// AuditRun is one (statement, engine) replay.
type AuditRun struct {
	Engine string `json:"engine"`        // requested path
	Ran    string `json:"ran,omitempty"` // resolved path (AUTO's choice, RM→PAR reroute)
	// EstCycles is the cost model's pricing of the resolved path; absent
	// when the path is unpriceable (IDX without a usable index).
	EstCycles float64 `json:"est_cycles,omitempty"`
	ActCycles uint64  `json:"act_cycles,omitempty"`
	// QError is max(est/act, act/est) over modeled cycles — 1.0 is a
	// perfect prediction.
	QError float64 `json:"q_error,omitempty"`
	EstSel float64 `json:"est_selectivity,omitempty"`
	ActSel float64 `json:"act_selectivity,omitempty"`
	// Offload names the fabric offload program the run carried ("agg",
	// "group-agg", "dict-scan", "semi-join", combinations); empty when the
	// run consumed packed chunks CPU-side.
	Offload string `json:"offload,omitempty"`
	Error   string `json:"error,omitempty"`
}

// AuditQuery is one statement's replay across all engines plus the
// optimizer verdicts derived from it.
type AuditQuery struct {
	Name        string     `json:"name"`
	SQL         string     `json:"sql"`
	Fingerprint string     `json:"fingerprint"`
	Runs        []AuditRun `json:"runs"`
	// AutoChose is the path AUTO resolved to; BestSerial the serial path
	// with the lowest actual cycles. They disagree on a misprediction.
	AutoChose   string `json:"auto_chose,omitempty"`
	BestSerial  string `json:"best_serial,omitempty"`
	AutoOptimal bool   `json:"auto_optimal"`
	// Rechoice is what AUTO would pick re-priced with the selectivity the
	// run observed (SelOverride) instead of the textbook heuristic.
	Rechoice string `json:"rechoice_with_observed_sel,omitempty"`
	// AutoAfterFeedback is AUTO's choice re-planned with the mean observed
	// selectivity the statement store accumulated for this fingerprint over
	// the replay — the automatic feedback path (StatStore → SelOverride)
	// rather than Rechoice's single-run injection.
	AutoAfterFeedback string  `json:"auto_after_feedback,omitempty"`
	MaxQError         float64 `json:"max_q_error,omitempty"`
}

// AuditReport is the full audit artifact (rfbench -audit).
type AuditReport struct {
	LineitemRows   int                   `json:"lineitem_rows"`
	Seed           int64                 `json:"seed"`
	Queries        []AuditQuery          `json:"queries"`
	Mispredictions int                   `json:"mispredictions"`
	MaxQError      float64               `json:"max_q_error"`
	Statements     []obs.StatementRecord `json:"statements"`
}

// AuditStatement names one statement of the replay set.
type AuditStatement struct {
	Name string
	SQL  string
}

// DefaultAuditSet is the TPC-H replay: the single-table statements behind
// the paper's Figure 7 plus the Q3/Q5/Q10-class joins, all with a
// ship-date predicate the secondary index can serve.
func DefaultAuditSet() []AuditStatement {
	return []AuditStatement{
		{"projection", `SELECT l_orderkey, l_extendedprice, l_quantity FROM lineitem WHERE l_shipdate < DATE '1995-06-17'`},
		{"q1", `SELECT l_returnflag, SUM(l_quantity), SUM(l_extendedprice), COUNT(*) FROM lineitem WHERE l_shipdate <= DATE '1998-09-02' GROUP BY l_returnflag`},
		{"q6", `SELECT SUM(l_extendedprice * l_discount) FROM lineitem WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01' AND l_quantity < 24`},
		{"q3-join", tpch.Q3SQL},
		{"q5-join", tpch.Q5SQL},
		{"q10-join", tpch.Q10SQL},
	}
}

// NewTPCHDB builds the multi-table TPC-H catalog the audit (and the join
// test suite) replays: lineitem plus the orders/customer/part tables whose
// keys correlate with it, and a secondary index on l_shipdate so the IDX
// path has something to price.
func NewTPCHDB(cfg Config, lineitemRows int, seed int64) (*DB, error) {
	db, err := Open(cfg)
	if err != nil {
		return nil, err
	}
	li, err := db.CreateTable("lineitem", tpch.LineitemSchema(), lineitemRows)
	if err != nil {
		return nil, err
	}
	if err := tpch.Generate(li, lineitemRows, seed); err != nil {
		return nil, err
	}
	nOrders := tpch.OrdersFor(lineitemRows)
	ord, err := db.CreateTable("orders", tpch.OrdersSchema(), nOrders)
	if err != nil {
		return nil, err
	}
	if err := tpch.GenerateOrders(ord, nOrders, seed+1); err != nil {
		return nil, err
	}
	nCust := tpch.CustomersFor(nOrders)
	cust, err := db.CreateTable("customer", tpch.CustomerSchema(), nCust)
	if err != nil {
		return nil, err
	}
	if err := tpch.GenerateCustomer(cust, nCust, seed+2); err != nil {
		return nil, err
	}
	const nPart = 300 // a prefix of the part-key domain: dangling l_partkey drops out
	part, err := db.CreateTable("part", tpch.PartSchema(), nPart)
	if err != nil {
		return nil, err
	}
	if err := tpch.GeneratePart(part, nPart, seed+3); err != nil {
		return nil, err
	}
	if _, err := db.CreateIndex("lineitem", "l_shipdate"); err != nil {
		return nil, err
	}
	return db, nil
}

// RunAudit builds a TPC-H database and replays the default statement set
// across all engines, with a statement store attached so the report also
// carries the pg_stat_statements view of the replay.
func RunAudit(cfg Config, lineitemRows int, seed int64) (*AuditReport, error) {
	db, err := NewTPCHDB(cfg, lineitemRows, seed)
	if err != nil {
		return nil, err
	}
	return db.Audit(DefaultAuditSet(), lineitemRows, seed)
}

// Audit replays the given statements across AuditEngines on this database.
func (db *DB) Audit(set []AuditStatement, lineitemRows int, seed int64) (*AuditReport, error) {
	stats := db.stats
	if stats == nil {
		stats = obs.NewStatStore()
		db.SetStatements(stats)
	}
	rep := &AuditReport{LineitemRows: lineitemRows, Seed: seed}
	for _, stmt := range set {
		_, fp := sql.Fingerprint(stmt.SQL)
		aq := AuditQuery{Name: stmt.Name, SQL: stmt.SQL, Fingerprint: fmt.Sprintf("%016x", fp)}
		bestCycles := uint64(math.MaxUint64)
		var autoSel float64
		for _, kind := range AuditEngines {
			run := db.auditOne(kind, stmt.SQL)
			aq.Runs = append(aq.Runs, run)
			if run.Error != "" {
				continue
			}
			if run.QError > aq.MaxQError {
				aq.MaxQError = run.QError
			}
			switch kind {
			case ROW, COL, RM, "IDX":
				if run.ActCycles < bestCycles {
					bestCycles = run.ActCycles
					aq.BestSerial = run.Ran
				}
			case AUTO:
				aq.AutoChose = run.Ran
				autoSel = run.ActSel
			}
		}
		aq.AutoOptimal = aq.AutoChose != "" && aq.AutoChose == aq.BestSerial
		if !aq.AutoOptimal {
			rep.Mispredictions++
		}
		if autoSel > 0 {
			aq.Rechoice = db.rechoice(stmt.SQL, autoSel)
		}
		if sel, ok := stats.FeedbackSelectivity(fp); ok {
			aq.AutoAfterFeedback = db.rechoice(stmt.SQL, sel)
		}
		if aq.MaxQError > rep.MaxQError {
			rep.MaxQError = aq.MaxQError
		}
		rep.Queries = append(rep.Queries, aq)
	}
	rep.Statements = stats.Snapshot()
	return rep, nil
}

// auditOne replays one statement on one path and extracts the
// estimated-vs-actual pair the instrumentation stamped.
func (db *DB) auditOne(kind EngineKind, text string) AuditRun {
	run := AuditRun{Engine: string(kind)}
	fail := func(err error) AuditRun {
		run.Error = err.Error()
		return run
	}
	st, err := sql.Parse(text)
	if err != nil {
		return fail(err)
	}
	if len(st.Joins) > 0 {
		_, jp, sk, err := db.lowerJoin(st)
		if err != nil {
			return fail(err)
		}
		c := db.beginStatement(text, true)
		res, err := db.runJoin(kind, jp, sk, c.tracer())
		if err == nil {
			c.noteJoin(db, kind, jp, res)
		}
		c.finish(db, res, err, nil)
		if err != nil {
			return fail(err)
		}
		db.fillJoinEstimates(kind, jp)
		run.Ran = res.Engine
		run.ActCycles = res.Breakdown.TotalCycles
		run.Offload = res.Offload
		total, priced := 0.0, true
		side := func(n *plan.Node) {
			if n == nil || n.Est == nil {
				priced = false
				return
			}
			total += n.Est.Cycles
		}
		side(jp.Probe.Node)
		for k := range jp.Stages {
			side(jp.Stages[k].Side.Node)
		}
		if priced {
			run.EstCycles = total
			run.QError = plan.QError(total, float64(run.ActCycles))
		}
		if n := jp.Probe.Node; n != nil && n.Est != nil && n.Act != nil && n.Act.RowsScanned > 0 {
			run.EstSel = n.Est.Selectivity
			run.ActSel = n.Act.Selectivity()
		}
		return run
	}
	t, err := db.lookup(st.Table)
	if err != nil {
		return fail(err)
	}
	root, err := sql.Lower(st, t.tbl.Schema())
	if err != nil {
		return fail(err)
	}
	q, sk, err := engine.FromPlan(root)
	if err != nil {
		return fail(err)
	}
	c := db.beginStatement(text, true)
	res, err := db.run(kind, t, q, sk, c.tracer(), c)
	if err == nil {
		c.noteSingle(db, t, q, res)
	}
	c.finish(db, res, err, nil)
	if err != nil {
		return fail(err)
	}
	run.Ran = res.Engine
	run.ActCycles = res.Breakdown.TotalCycles
	run.Offload = res.Offload
	if est := db.estimateFor(t, q, res.Engine); est != nil {
		run.EstCycles = est.Cycles
		run.EstSel = est.Selectivity
		run.QError = plan.QError(est.Cycles, float64(run.ActCycles))
	}
	if res.RowsScanned > 0 {
		run.ActSel = float64(res.RowsPassed) / float64(res.RowsScanned)
	}
	return run
}

// rechoice re-runs the constructive optimizer with the observed selectivity
// substituted for the heuristic (SelOverride) and returns the path it would
// now choose. For joins the probe side is re-priced — it dominates the cost
// and is where the heuristic's error concentrates.
func (db *DB) rechoice(text string, observedSel float64) string {
	st, err := sql.Parse(text)
	if err != nil {
		return ""
	}
	var tableName string
	var q Query
	if len(st.Joins) > 0 {
		_, jp, _, err := db.lowerJoin(st)
		if err != nil {
			return ""
		}
		tableName, q = jp.Probe.Table, jp.Probe.Query
	} else {
		t, err := db.lookup(st.Table)
		if err != nil {
			return ""
		}
		root, err := sql.Lower(st, t.tbl.Schema())
		if err != nil {
			return ""
		}
		if q, _, err = engine.FromPlan(root); err != nil {
			return ""
		}
		tableName = st.Table
	}
	t, err := db.lookup(tableName)
	if err != nil {
		return ""
	}
	db.mu.RLock()
	store, idx := t.col, t.idx
	db.mu.RUnlock()
	opt := &engine.Optimizer{Tbl: t.tbl, Sys: db.sys, Store: store, Index: idx, SelOverride: observedSel}
	p, err := opt.Choose(q)
	if err != nil {
		return ""
	}
	return p.Chosen
}

// WriteJSON emits the report as indented JSON.
func (r *AuditReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteTable renders the misprediction report.
func (r *AuditReport) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "Optimizer accuracy audit — TPC-H lineitem %d rows, seed %d\n", r.LineitemRows, r.Seed)
	fmt.Fprintf(w, "mispredictions: %d/%d   worst q-error: %.2f\n", r.Mispredictions, len(r.Queries), r.MaxQError)
	for _, q := range r.Queries {
		fmt.Fprintf(w, "\n%s  [%s]\n", q.Name, q.Fingerprint)
		fmt.Fprintf(w, "  %-6s %-6s %14s %14s %8s %8s %8s\n",
			"engine", "ran", "est_cycles", "act_cycles", "q_err", "est_sel", "act_sel")
		for _, run := range q.Runs {
			if run.Error != "" {
				fmt.Fprintf(w, "  %-6s error: %s\n", run.Engine, run.Error)
				continue
			}
			fmt.Fprintf(w, "  %-6s %-6s %14.0f %14d %8.2f %8.3f %8.3f\n",
				run.Engine, run.Ran, run.EstCycles, run.ActCycles, run.QError, run.EstSel, run.ActSel)
		}
		verdict := "OPTIMAL"
		if !q.AutoOptimal {
			verdict = fmt.Sprintf("MISPREDICTED (best serial: %s)", q.BestSerial)
		}
		fmt.Fprintf(w, "  AUTO chose %s — %s", q.AutoChose, verdict)
		if q.Rechoice != "" && q.Rechoice != q.AutoChose {
			fmt.Fprintf(w, "; with observed selectivity it would choose %s", q.Rechoice)
		}
		fmt.Fprintln(w)
		if q.AutoAfterFeedback != "" {
			fmt.Fprintf(w, "  after StatStore feedback AUTO plans %s\n", q.AutoAfterFeedback)
		}
	}
}

// CheckShape verifies the audit's structural claims: every statement ran on
// every path (or recorded why not), AUTO always resolved, and every
// successful run with an estimate produced a finite q-error ≥ 1.
func (r *AuditReport) CheckShape() []string {
	var bad []string
	for _, q := range r.Queries {
		if len(q.Runs) != len(AuditEngines) {
			bad = append(bad, fmt.Sprintf("%s: %d runs, want %d", q.Name, len(q.Runs), len(AuditEngines)))
		}
		if q.AutoChose == "" {
			bad = append(bad, fmt.Sprintf("%s: AUTO did not resolve", q.Name))
		}
		for _, run := range q.Runs {
			if run.Error != "" {
				continue
			}
			if run.EstCycles > 0 && (run.QError < 1 || math.IsInf(run.QError, 0) || math.IsNaN(run.QError)) {
				bad = append(bad, fmt.Sprintf("%s/%s: degenerate q-error %v", q.Name, run.Engine, run.QError))
			}
		}
	}
	if len(r.Statements) == 0 {
		bad = append(bad, "audit recorded no statement statistics")
	}
	return bad
}
