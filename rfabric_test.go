package rfabric

import (
	"strings"
	"testing"
)

func demoSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Column{Name: "id", Type: Int64, Width: 8},
		Column{Name: "grp", Type: Int32, Width: 4},
		Column{Name: "price", Type: Float64, Width: 8},
		Column{Name: "tag", Type: Char, Width: 4},
		Column{Name: "day", Type: Date, Width: 4},
	)
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	return s
}

func demoDB(t *testing.T, rows int) *DB {
	t.Helper()
	db, err := Open(DefaultConfig())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := db.CreateTable("items", demoSchema(t), rows+16); err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	tags := []string{"red", "blue"}
	for i := 0; i < rows; i++ {
		err := db.Insert("items",
			I64(int64(i)),
			I32(int32(i%10)),
			F64(float64(i)*1.5),
			Str(tags[i%2]),
			DateV(int32(8000+i%1000)),
		)
		if err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	return db
}

func TestDBQueryAcrossEngines(t *testing.T) {
	db := demoDB(t, 2000)
	const q = "SELECT id, price FROM items WHERE grp < 3 AND tag = 'red'"
	var ref *Result
	for _, kind := range []EngineKind{ROW, COL, RM} {
		db.System().ResetState()
		res, err := db.QueryOn(kind, q)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if res.RowsPassed == 0 || res.RowsPassed == res.RowsScanned {
			t.Fatalf("%s: degenerate selectivity %d/%d", kind, res.RowsPassed, res.RowsScanned)
		}
		if ref == nil {
			ref = res
		} else if err := res.EquivalentTo(ref, 0); err != nil {
			t.Errorf("%s disagrees: %v", kind, err)
		}
	}
}

func TestDBAggregationQuery(t *testing.T) {
	db := demoDB(t, 500)
	res, err := db.Query("SELECT COUNT(*), SUM(price), AVG(price), MIN(price), MAX(price) FROM items WHERE grp = 0")
	if err != nil {
		t.Fatal(err)
	}
	if res.Aggs[0].Int != 50 {
		t.Errorf("COUNT = %s, want 50", res.Aggs[0])
	}
	if res.Aggs[3].Float != 0 || res.Aggs[4].Float != 735 {
		t.Errorf("MIN/MAX = %s/%s", res.Aggs[3], res.Aggs[4])
	}
}

func TestDBGroupByQuery(t *testing.T) {
	db := demoDB(t, 300)
	res, err := db.Query("SELECT tag, COUNT(*) FROM items GROUP BY tag")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 2 {
		t.Fatalf("groups = %d", len(res.Groups))
	}
	// Sorted by key: blue before red.
	if res.Groups[0].Key[0].String() != "blue" || res.Groups[0].Count != 150 {
		t.Errorf("group 0 = %s/%d", res.Groups[0].Key[0], res.Groups[0].Count)
	}
}

// TestDBOrderByStableTiesAndLimitZero runs the sink operators end to end
// through the SQL front door. 4000 rows at branch=i%11 give branches 0–6 a
// count of 364 and branches 7–10 a count of 363, so a descending sort on
// COUNT has two tie classes; the stable sort must keep each class in its
// group-discovery (ascending branch) order.
func TestDBOrderByStableTiesAndLimitZero(t *testing.T) {
	db := itemsDB(t, 4000)
	res, err := db.Query("SELECT branch, COUNT(*) FROM items GROUP BY branch ORDER BY 2 DESC")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 11 {
		t.Fatalf("groups = %d", len(res.Groups))
	}
	for i, g := range res.Groups {
		wantBranch, wantCount := int64(i), int64(364)
		if i >= 7 {
			wantCount = 363
		}
		if g.Key[0].Int != wantBranch || g.Count != wantCount {
			t.Errorf("group %d = branch %d count %d, want branch %d count %d",
				i, g.Key[0].Int, g.Count, wantBranch, wantCount)
		}
	}

	lim, err := db.QueryOn(ROW, "SELECT branch, COUNT(*) FROM items GROUP BY branch ORDER BY 2 DESC LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(lim.Groups) != 3 || lim.Groups[0].Key[0].Int != 0 {
		t.Errorf("LIMIT 3 groups = %+v", lim.Groups)
	}

	zero, err := db.Query("SELECT branch, COUNT(*) FROM items GROUP BY branch LIMIT 0")
	if err != nil {
		t.Fatal(err)
	}
	if len(zero.Groups) != 0 {
		t.Errorf("LIMIT 0 returned %d groups", len(zero.Groups))
	}
}

func TestDBCapacityEnforced(t *testing.T) {
	db, _ := Open(DefaultConfig())
	if _, err := db.CreateTable("tiny", demoSchema(t), 2); err != nil {
		t.Fatal(err)
	}
	row := []Value{I64(1), I32(1), F64(1), Str("x"), DateV(1)}
	for i := 0; i < 2; i++ {
		if err := db.Insert("tiny", row...); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Insert("tiny", row...); err == nil {
		t.Error("insert past reserved capacity accepted")
	}
}

func TestDBCatalog(t *testing.T) {
	db := demoDB(t, 1)
	if _, err := db.CreateTable("items", demoSchema(t), 1); err == nil {
		t.Error("duplicate table accepted")
	}
	if _, err := db.CreateTable("zero", demoSchema(t), 0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := db.Table("missing"); err == nil {
		t.Error("unknown table lookup succeeded")
	}
	if _, err := db.Query("SELECT id FROM missing"); err == nil {
		t.Error("query against unknown table succeeded")
	}
	if _, err := db.QueryOn(EngineKind("JET"), "SELECT id FROM items"); err == nil {
		t.Error("unknown engine kind accepted")
	}
	names := db.TableNames()
	if len(names) != 1 || names[0] != "items" {
		t.Errorf("TableNames = %v", names)
	}
}

func TestDBColumnarCopyInvalidatedByInsert(t *testing.T) {
	db := demoDB(t, 100)
	q := "SELECT COUNT(*) FROM items"
	before, err := db.QueryOn(COL, q)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("items", I64(999), I32(1), F64(0), Str("x"), DateV(1)); err != nil {
		t.Fatal(err)
	}
	after, err := db.QueryOn(COL, q)
	if err != nil {
		t.Fatal(err)
	}
	if after.Aggs[0].Int != before.Aggs[0].Int+1 {
		t.Errorf("COL count %d after insert, want %d — stale columnar copy", after.Aggs[0].Int, before.Aggs[0].Int+1)
	}
}

func TestDBConfigureEphemeral(t *testing.T) {
	db := demoDB(t, 64)
	ev, err := db.Configure("items", []string{"id", "price"})
	if err != nil {
		t.Fatal(err)
	}
	packed := ev.Materialize()
	if len(packed) != 64*16 {
		t.Errorf("packed bytes = %d, want %d", len(packed), 64*16)
	}
	if _, err := db.Configure("items", []string{"nope"}); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := db.Configure("nope", []string{"id"}); err == nil {
		t.Error("unknown table accepted")
	}
}

func TestDBSQLErrorsSurface(t *testing.T) {
	db := demoDB(t, 1)
	for _, q := range []string{
		"SELEC id FROM items",
		"SELECT id FROM items WHERE price = 'text'",
		"SELECT nope FROM items",
	} {
		if _, err := db.Query(q); err == nil {
			t.Errorf("Query(%q) succeeded", q)
		}
	}
}

func TestCompileSQLAndExecute(t *testing.T) {
	db := demoDB(t, 100)
	q, err := CompileSQL("SELECT id FROM items WHERE day >= DATE '1991-11-27'", demoSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Execute(RM, "items", q)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsPassed == 0 {
		t.Error("date predicate matched nothing")
	}
}

func TestDateHelpers(t *testing.T) {
	day, err := ParseDate("1994-01-01")
	if err != nil || day != 8766 {
		t.Errorf("ParseDate = %d, %v", day, err)
	}
	if got := FormatDate(8766); got != "1994-01-01" {
		t.Errorf("FormatDate = %q", got)
	}
}

func TestPublicCompressionFacade(t *testing.T) {
	if got := len(Codecs()); got != 5 {
		t.Errorf("Codecs() = %d entries", got)
	}
	d, err := EncodeDict([]byte("aabb"), 2)
	if err != nil || d.Cardinality() != 2 {
		t.Errorf("EncodeDict: %v", err)
	}
	enc := EncodeLZ77([]byte(strings.Repeat("fabric", 20)))
	dec, err := DecodeLZ77(enc)
	if err != nil || string(dec) != strings.Repeat("fabric", 20) {
		t.Errorf("LZ77 round trip failed: %v", err)
	}
	delta := EncodeDelta([]int64{10, 11, 12})
	if v, _ := delta.At(2); v != 12 {
		t.Errorf("delta At(2) = %d", v)
	}
	h, err := EncodeHuffman([]byte("mississippi"), 4)
	if err != nil {
		t.Fatal(err)
	}
	if all, _ := h.DecodeAll(); string(all) != "mississippi" {
		t.Error("huffman round trip failed")
	}
	r, err := EncodeRLE([]byte{1, 1, 2}, 1)
	if err != nil || r.Runs() != 2 {
		t.Errorf("EncodeRLE: %v", err)
	}
}

func TestPublicStorageFacade(t *testing.T) {
	db := demoDB(t, 200)
	tbl, _ := db.Table("items")
	dev, err := NewStorageDevice(DefaultStorageConfig())
	if err != nil {
		t.Fatal(err)
	}
	ps, err := StoreTable(dev, tbl, true)
	if err != nil {
		t.Fatal(err)
	}
	geom, err := NewGeometryByName(tbl.Schema(), "id", "price")
	if err != nil {
		t.Fatal(err)
	}
	near, err := ps.ScanNearStorage(geom, Conjunction{{Col: 1, Op: Lt, Operand: I32(5)}})
	if err != nil {
		t.Fatal(err)
	}
	host, err := ps.ScanHost(geom, Conjunction{{Col: 1, Op: Lt, Operand: I32(5)}})
	if err != nil {
		t.Fatal(err)
	}
	if string(near.Packed) != string(host.Packed) {
		t.Error("storage scans disagree through the public API")
	}
	if near.BytesToHost >= host.BytesToHost {
		t.Error("near-storage scan shipped no less than the host scan")
	}
}

func TestTxnManagerFacade(t *testing.T) {
	db, _ := Open(DefaultConfig())
	tbl, err := db.CreateTable("acct", demoSchema(t), 100, WithMVCC())
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := NewTxnManager(tbl)
	if err != nil {
		t.Fatal(err)
	}
	txn := mgr.Begin()
	if err := txn.Insert(I64(1), I32(1), F64(1), Str("a"), DateV(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	// RM query at the fresh snapshot sees the row.
	snap := mgr.Now()
	q := Query{Projection: []int{0}, Snapshot: &snap}
	res, err := db.Execute(RM, "acct", q)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsPassed != 1 {
		t.Errorf("rows at snapshot = %d, want 1", res.RowsPassed)
	}
}

func TestDBAutoEngine(t *testing.T) {
	db := demoDB(t, 3000)
	// Without a columnar copy AUTO must still answer (ROW or RM).
	res, err := db.QueryOn(AUTO, "SELECT id FROM items WHERE grp = 3")
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine == "COL" {
		t.Error("AUTO used a columnar copy that does not exist")
	}
	// Force a copy into existence, then AUTO may use it.
	if _, err := db.QueryOn(COL, "SELECT id FROM items"); err != nil {
		t.Fatal(err)
	}
	res2, err := db.QueryOn(AUTO, "SELECT id FROM items WHERE grp = 3")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := db.QueryOn(ROW, "SELECT id FROM items WHERE grp = 3")
	if err != nil {
		t.Fatal(err)
	}
	if err := res2.EquivalentTo(ref, 0); err != nil {
		t.Errorf("AUTO result diverges: %v", err)
	}
}

func TestPlanCacheReusesFragments(t *testing.T) {
	db := demoDB(t, 200)
	const q = "SELECT id FROM items WHERE grp = 1"
	p1, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("same text compiled twice")
	}
	st := db.PlanCache()
	if st.Hits != 1 || st.Misses != 1 || st.Resident != 1 {
		t.Errorf("cache stats: %+v", st)
	}
	if st.CompileCyclesSpent != CompileCycles {
		t.Errorf("compile cycles: %d", st.CompileCyclesSpent)
	}
	res, err := p1.Run(RM)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := db.QueryOn(RM, q)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.EquivalentTo(direct, 0); err != nil {
		t.Errorf("prepared run diverges: %v", err)
	}
	if _, err := db.Prepare("SELECT nope FROM items"); err == nil {
		t.Error("bad query compiled")
	}
}

func TestPublicJoinFacade(t *testing.T) {
	db, _ := Open(DefaultConfig())
	oSchema, _ := NewSchema(
		Column{Name: "o_id", Type: Int64, Width: 8},
		Column{Name: "o_total", Type: Float64, Width: 8},
	)
	iSchema, _ := NewSchema(
		Column{Name: "i_order", Type: Int64, Width: 8},
		Column{Name: "i_qty", Type: Int32, Width: 4},
	)
	orders, err := db.CreateTable("orders", oSchema, 100)
	if err != nil {
		t.Fatal(err)
	}
	items, err := db.CreateTable("items", iSchema, 300)
	if err != nil {
		t.Fatal(err)
	}
	for o := 0; o < 100; o++ {
		if err := db.Insert("orders", I64(int64(o)), F64(float64(o))); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < o%4; k++ {
			if err := db.Insert("items", I64(int64(o)), I32(int32(k))); err != nil {
				t.Fatal(err)
			}
		}
	}
	l := JoinInput{On: 0, Projection: []int{1}}
	r := JoinInput{On: 0, Projection: []int{1}}
	row, err := HashJoinRow(db.System(), items, orders, l, r)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := HashJoinRM(db.System(), items, orders, l, r)
	if err != nil {
		t.Fatal(err)
	}
	if row.Matches != rm.Matches || row.Checksum != rm.Checksum {
		t.Errorf("public join paths disagree: %d vs %d", row.Matches, rm.Matches)
	}
	if row.Matches != 150 { // sum over o of o%4 = 25*(0+1+2+3)
		t.Errorf("matches = %d, want 150", row.Matches)
	}
}

func TestPublicShardFacade(t *testing.T) {
	sch := demoSchema(t)
	st, err := NewShardedTable("s", sch, 0, []int64{500}, 1000, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if err := st.Insert(I64(int64(i)), I32(int32(i%5)), F64(float64(i)), Str("x"), DateV(1)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := st.Execute(Query{
		Projection: []int{0},
		Selection:  Conjunction{{Col: 0, Op: Lt, Operand: I64(100)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ShardsTouched != 1 || res.RowsPassed != 100 {
		t.Errorf("sharded query: touched=%d rows=%d", res.ShardsTouched, res.RowsPassed)
	}
}

func TestPublicIndexFacade(t *testing.T) {
	db := demoDB(t, 1000)
	tbl, _ := db.Table("items")
	idx, err := BuildIndex(db.System(), tbl, 0)
	if err != nil {
		t.Fatal(err)
	}
	rows := idx.Lookup(db.System().Hier, 77)
	if len(rows) != 1 {
		t.Fatalf("Lookup(77) = %v", rows)
	}
	v, _ := tbl.Get(rows[0], 0)
	if v.Int != 77 {
		t.Errorf("indexed row has id %d", v.Int)
	}
}

func TestPublicMatrixFacade(t *testing.T) {
	sys, _ := NewSystem(DefaultConfig())
	m, err := NewMatrix(sys, 50, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Set(10, 3, 1.5); err != nil {
		t.Fatal(err)
	}
	s, err := m.SliceColsFabric(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.At(10, 1) != 1.5 {
		t.Errorf("slice element = %v", s.At(10, 1))
	}
}

func TestDBIndexAndAutoRouting(t *testing.T) {
	db := demoDB(t, 20_000)
	if _, err := db.CreateIndex("items", "id"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("items", "id"); err == nil {
		t.Error("duplicate index accepted")
	}
	// A point query on the indexed column should route to the index and
	// still agree with a scan.
	const q = "SELECT price FROM items WHERE id = 777"
	ref, err := db.QueryOn(ROW, q)
	if err != nil {
		t.Fatal(err)
	}
	auto, err := db.QueryOn(AUTO, q)
	if err != nil {
		t.Fatal(err)
	}
	if auto.Engine != "IDX" {
		t.Errorf("point query on indexed column routed to %s", auto.Engine)
	}
	if err := auto.EquivalentTo(ref, 0); err != nil {
		t.Errorf("indexed execution diverges: %v", err)
	}
	// Index is maintained across inserts.
	if err := db.Insert("items", I64(777_777), I32(1), F64(9.5), Str("red"), DateV(1)); err != nil {
		t.Fatal(err)
	}
	got, err := db.QueryOn(AUTO, "SELECT price FROM items WHERE id = 777777")
	if err != nil {
		t.Fatal(err)
	}
	if got.RowsPassed != 1 {
		t.Errorf("freshly inserted row invisible to the index path (rows=%d)", got.RowsPassed)
	}
}
