package rfabric

import (
	"rfabric/internal/colstore"
	"rfabric/internal/engine"
	"rfabric/internal/index"
	"rfabric/internal/shard"
)

// Joins (§III-B's full query engine over the same base data).
type (
	// JoinInput describes one side of an equi-join.
	JoinInput = engine.JoinInput
	// JoinResult is a join outcome with its modeled cost.
	JoinResult = engine.JoinResult
)

// HashJoinRow joins two row tables tuple-at-a-time (left probes, right
// builds).
func HashJoinRow(sys *System, left, right *Table, l, r JoinInput) (*JoinResult, error) {
	return engine.HashJoinRow(sys, left, right, l, r)
}

// HashJoinRM joins two tables through ephemeral views: each side's needed
// columns are packed and shipped by the fabric.
func HashJoinRM(sys *System, left, right *Table, l, r JoinInput) (*JoinResult, error) {
	return engine.HashJoinRM(sys, left, right, l, r)
}

// HashJoinCol joins two columnar copies.
func HashJoinCol(sys *System, left, right *colstore.Store, l, r JoinInput) (*JoinResult, error) {
	return engine.HashJoinCol(sys, left, right, l, r)
}

// Sharding (§III-A: horizontal partitioning composed with the fabric).
type (
	// ShardedTable is a range-sharded table over fabric-equipped nodes.
	ShardedTable = shard.Table
	// ShardedResult is a merged sharded-query outcome.
	ShardedResult = shard.Result
)

// NewShardedTable creates len(bounds)+1 shards on keyCol, each with its own
// simulated system.
func NewShardedTable(name string, schema *Schema, keyCol int, bounds []int64, capacityPerShard int, cfg Config) (*ShardedTable, error) {
	return shard.New(name, schema, keyCol, bounds, capacityPerShard, cfg)
}

// Indexes (§III-A's residual role: point queries and small ranges).
type (
	// BTree is a B+tree over a numeric column of a row table.
	BTree = index.BTree
)

// BuildIndex bulk-loads a B+tree over column col of tbl; node addresses
// come from the system's arena so traversals are cost-modeled.
func BuildIndex(sys *System, tbl *Table, col int) (*BTree, error) {
	return index.Build(tbl, col, sys.Arena)
}
