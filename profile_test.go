package rfabric

import (
	"bytes"
	"encoding/json"
	"math"
	"sort"
	"testing"

	"rfabric/internal/obs"
	"rfabric/internal/tpch"
)

// Tests for the profiling surface: the Chrome-trace export of a traced query
// must be valid JSON whose root event reconciles exactly with the modeled
// Breakdown, and the sampled timeline must be deterministic — same query,
// same seed, byte-identical artifact — including under PAR at a fixed
// worker count.

const profileRows = 4000

func tracedDB(t *testing.T) *DB {
	t.Helper()
	db, err := Open(DefaultConfig())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	tbl, err := db.CreateTable("lineitem", tpch.LineitemSchema(), profileRows)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := tpch.Generate(tbl, profileRows, 1); err != nil {
		t.Fatalf("generate: %v", err)
	}
	return db
}

// chromeDoc is the subset of the Chrome Trace Event Format the assertions
// read back.
type chromeDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   uint64         `json:"ts"`
		Dur  uint64         `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData"`
}

func TestTracedQ6ChromeExportReconciles(t *testing.T) {
	db := tracedDB(t)
	res, trace, err := db.ExecuteTraced(RM, "lineitem", tpch.Q6(), WithTimeline(0))
	if err != nil {
		t.Fatalf("traced Q6: %v", err)
	}

	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome export has no events")
	}

	// The root complete event spans the whole query: its duration is the
	// reconciliation claim — exactly Breakdown.TotalCycles.
	var rootDur uint64
	var found bool
	var counters, completes int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			completes++
			if ev.Name == "query" && !found {
				found = true
				rootDur = ev.Dur
				if ev.Ts != 0 {
					t.Errorf("root event starts at ts=%d, want 0", ev.Ts)
				}
			}
			if ev.Ts+ev.Dur > res.Breakdown.TotalCycles {
				t.Errorf("event %q [%d, %d] overruns total %d",
					ev.Name, ev.Ts, ev.Ts+ev.Dur, res.Breakdown.TotalCycles)
			}
		case "C":
			counters++
		}
	}
	if !found {
		t.Fatal("no root \"query\" complete event in chrome export")
	}
	if rootDur != res.Breakdown.TotalCycles {
		t.Errorf("root event dur=%d, want Breakdown.TotalCycles=%d", rootDur, res.Breakdown.TotalCycles)
	}
	if completes < 3 {
		t.Errorf("only %d complete events; expected parse/plan/execute children", completes)
	}
	if counters == 0 {
		t.Error("WithTimeline produced no counter events")
	}
	if tc, ok := doc.OtherData["total_cycles"].(float64); !ok || uint64(tc) != res.Breakdown.TotalCycles {
		t.Errorf("otherData.total_cycles = %v, want %d", doc.OtherData["total_cycles"], res.Breakdown.TotalCycles)
	}

	// The timeline itself covered the run: samples exist and the last one
	// ends at the total.
	if trace.Timeline == nil {
		t.Fatal("trace has no timeline")
	}
	samples := trace.Timeline.Samples()
	if len(samples) == 0 {
		t.Fatal("timeline has no samples")
	}
	if last := samples[len(samples)-1]; last.Cycle != res.Breakdown.TotalCycles {
		t.Errorf("last sample at cycle %d, want %d", last.Cycle, res.Breakdown.TotalCycles)
	}
}

// chromeAndTimelineJSON renders both artifacts of one traced run.
func chromeAndTimelineJSON(t *testing.T, db *DB, kind EngineKind) (chrome, timeline []byte) {
	t.Helper()
	_, trace, err := db.ExecuteTraced(kind, "lineitem", tpch.Q6(), WithTimeline(0))
	if err != nil {
		t.Fatalf("traced Q6 on %s: %v", kind, err)
	}
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	tl, err := json.Marshal(trace.Timeline)
	if err != nil {
		t.Fatalf("marshal timeline: %v", err)
	}
	return buf.Bytes(), tl
}

func TestTimelineDeterminism(t *testing.T) {
	for _, kind := range []EngineKind{RM, ROW, PAR} {
		t.Run(string(kind), func(t *testing.T) {
			mk := func() *DB {
				db := tracedDB(t)
				if kind == PAR {
					// A fixed pool keeps the schedule — and so the worker
					// lanes of the export — independent of the host.
					db.SetParallel(ParallelConfig{Workers: 4, MorselRows: 512})
				}
				return db
			}
			c1, tl1 := chromeAndTimelineJSON(t, mk(), kind)
			c2, tl2 := chromeAndTimelineJSON(t, mk(), kind)
			if !bytes.Equal(tl1, tl2) {
				t.Errorf("timeline JSON differs across identical runs:\n%s\nvs\n%s", tl1, tl2)
			}
			if !bytes.Equal(c1, c2) {
				t.Error("chrome trace JSON differs across identical runs")
			}
		})
	}
}

// TestParTimelineHasWorkerLanes checks that a PAR run's export resolves
// per-worker activity: worker slices on the timeline and morsel events on
// per-worker chrome lanes.
func TestParTimelineHasWorkerLanes(t *testing.T) {
	db := tracedDB(t)
	db.SetParallel(ParallelConfig{Workers: 4, MorselRows: 512})
	_, trace, err := db.ExecuteTraced(PAR, "lineitem", tpch.Q6(), WithTimeline(0))
	if err != nil {
		t.Fatalf("traced PAR Q6: %v", err)
	}
	slices := trace.Timeline.WorkerSlices()
	if len(slices) == 0 {
		t.Fatal("PAR timeline recorded no worker slices")
	}
	workers := map[int]bool{}
	for _, s := range slices {
		workers[s.Worker] = true
	}
	if len(workers) < 2 {
		t.Errorf("morsels landed on %d worker(s), want ≥2 with 4 workers", len(workers))
	}

	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export: %v", err)
	}
	lanes := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Tid >= 10 {
			lanes[ev.Tid] = true
		}
	}
	if len(lanes) < 2 {
		t.Errorf("chrome export has %d worker lanes, want ≥2", len(lanes))
	}
}

// TestQuantileAccuracy feeds a known distribution through the bucketed
// histogram and checks the interpolated quantiles against the exact
// percentiles: with powers-of-4 buckets the estimate must land within one
// bucket's span of the truth.
func TestQuantileAccuracy(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("rfabric_test_latency", nil)
	var vals []float64
	// A deterministic skewed distribution spanning several buckets.
	x := uint64(12345)
	for i := 0; i < 5000; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		v := float64(300 + x%200_000)
		vals = append(vals, v)
		h.Observe(v)
	}
	sort.Float64s(vals)

	for _, q := range []float64{0.50, 0.95, 0.99} {
		exact := vals[int(q*float64(len(vals)-1))]
		est := h.Quantile(q)
		// The estimate can only be off within the bucket holding the exact
		// value; powers-of-4 bounds mean that bucket spans [b, 4b).
		if est < exact/4 || est > exact*4 {
			t.Errorf("q=%.2f: estimate %.0f not within the bucket of exact %.0f", q, est, exact)
		}
		if math.IsNaN(est) || est <= 0 {
			t.Errorf("q=%.2f: degenerate estimate %v", q, est)
		}
	}

	// Monotonicity across quantiles.
	if !(h.Quantile(0.5) <= h.Quantile(0.95) && h.Quantile(0.95) <= h.Quantile(0.99)) {
		t.Error("quantile estimates not monotone")
	}

	// Edge cases: empty histogram and out-of-range q.
	empty := reg.Histogram("rfabric_test_empty", nil)
	if v := empty.Quantile(0.99); v != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", v)
	}
	if v := h.Quantile(1.5); v < h.Quantile(0.99) {
		t.Errorf("clamped q>1 returned %v, below p99", v)
	}
}

// TestDisabledObserverMatchesNilObserver pins the query hot path: running
// with a disabled registry and disabled windows attached must not allocate
// more than running with no observability at all. Both configurations always
// execute — so the race build still covers the gated code paths — and only
// the allocation comparison is withheld under -race, whose instrumentation
// perturbs AllocsPerRun.
func TestDisabledObserverMatchesNilObserver(t *testing.T) {
	run := func(db *DB) float64 {
		q := tpch.Q6()
		return testing.AllocsPerRun(10, func() {
			if _, err := db.Execute(RM, "lineitem", q); err != nil {
				t.Fatalf("Q6: %v", err)
			}
		})
	}
	bare := tracedDB(t)
	nilAllocs := run(bare)

	observed := tracedDB(t)
	reg := obs.NewRegistry()
	reg.SetDisabled(true)
	observed.SetObserver(reg)
	win := obs.NewWindows(10)
	win.SetDisabled(true)
	observed.SetWindows(win)
	disabledAllocs := run(observed)

	if raceEnabled {
		t.Logf("race build: paths exercised, alloc comparison skipped (nil=%.1f disabled=%.1f)",
			nilAllocs, disabledAllocs)
		return
	}
	if disabledAllocs > nilAllocs {
		t.Errorf("disabled observability costs %.1f allocs/query vs %.1f with none", disabledAllocs, nilAllocs)
	}
	if got := win.Snapshot(0).Queries; got != 0 {
		t.Errorf("disabled windows recorded %d queries, want 0", got)
	}
}
