// Concurrency tests for the morsel-parallel path: an HTAP stress run pits
// parallel analytical queries against MVCC writers under the race detector,
// and determinism tests pin the guarantee that worker count never changes a
// result. All of them lean on the ownership rule System.Clone documents:
// the DB's shared System is never driven by two goroutines — PAR gives every
// morsel a private clone, and writers only touch the table heap under the
// TxnManager's lock.
package rfabric

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// htapDB builds an MVCC accounts table loaded with `accounts` rows of
// balance 1000 each, wrapped in a transaction manager.
func htapDB(t *testing.T, accounts, capacity int) (*DB, *TxnManager) {
	t.Helper()
	schema, err := NewSchema(
		Column{Name: "id", Type: Int64, Width: 8},
		Column{Name: "branch", Type: Int32, Width: 4},
		Column{Name: "balance", Type: Int64, Width: 8},
	)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable("accounts", schema, capacity, WithMVCC())
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := NewTxnManager(tbl)
	if err != nil {
		t.Fatal(err)
	}
	load := mgr.Begin()
	for i := 0; i < accounts; i++ {
		if err := load.Insert(I64(int64(i)), I32(int32(i%8)), I64(1000)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := load.Commit(); err != nil {
		t.Fatal(err)
	}
	return db, mgr
}

// transferOnce moves a random amount between two live account versions, or
// reports a write-write conflict (which the stress test tolerates).
func transferOnce(mgr *TxnManager, rng *rand.Rand) error {
	tbl := mgr.Table()
	txn := mgr.Begin()
	defer txn.Abort()

	// Pick two live versions under the manager's read lock: the table heap
	// may not be scanned while a commit is appending to it.
	var from, to int
	err := mgr.ReadView(func(uint64) error {
		pick := func() (int, error) {
			for tries := 0; tries < 64; tries++ {
				r := rng.Intn(tbl.NumRows())
				if tbl.VisibleAt(r, txn.ReadTS()) {
					if _, end := tbl.Timestamps(r); end == ^uint64(0) {
						return r, nil
					}
				}
			}
			return 0, errors.New("no live row version found")
		}
		var err error
		if from, err = pick(); err != nil {
			return err
		}
		to, err = pick()
		return err
	})
	if err != nil {
		return err
	}
	if from == to {
		return nil
	}

	read := func(row int) ([]Value, error) {
		vals := make([]Value, 3)
		for c := range vals {
			v, err := txn.Get(row, c)
			if err != nil {
				return nil, err
			}
			vals[c] = v
		}
		return vals, nil
	}
	fromVals, err := read(from)
	if err != nil {
		return ErrTxnConflict
	}
	toVals, err := read(to)
	if err != nil {
		return ErrTxnConflict
	}
	amount := int64(rng.Intn(50) + 1)
	fromVals[2] = I64(fromVals[2].Int - amount)
	toVals[2] = I64(toVals[2].Int + amount)
	if err := txn.Update(from, fromVals...); err != nil {
		return ErrTxnConflict
	}
	if err := txn.Update(to, toVals...); err != nil {
		return ErrTxnConflict
	}
	if _, err := txn.Commit(); err != nil {
		return ErrTxnConflict
	}
	return nil
}

// ErrTxnConflict marks a transfer the stress test retries away.
var ErrTxnConflict = errors.New("write-write conflict")

// TestHTAPParallelStress runs parallel analytical queries concurrently with
// MVCC writers — and with each other — under `go test -race`. Every
// snapshot must see exactly `accounts` live versions summing to the loaded
// total: transfers conserve money, so any other answer means a reader saw a
// torn commit.
func TestHTAPParallelStress(t *testing.T) {
	const (
		accounts  = 200
		writers   = 2
		transfers = 120
		readers   = 2
		sweeps    = 60
	)
	db, mgr := htapDB(t, accounts, accounts+2*writers*transfers+64)
	db.SetParallel(ParallelConfig{Workers: 4, MorselRows: 64})

	errc := make(chan error, writers+readers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < transfers; i++ {
				if err := transferOnce(mgr, rng); err != nil && !errors.Is(err, ErrTxnConflict) {
					errc <- fmt.Errorf("writer: %w", err)
					return
				}
			}
		}(int64(w + 1))
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < sweeps; i++ {
				err := mgr.ReadView(func(ts uint64) error {
					snap := ts
					q := Query{
						Aggregates: []AggTerm{
							{Kind: Count, Arg: ColRef{Col: 2}},
							{Kind: Sum, Arg: ColRef{Col: 2}},
						},
						Snapshot: &snap,
					}
					res, err := db.Execute(RM, "accounts", q)
					if err != nil {
						return err
					}
					if res.Aggs[0].Int != accounts {
						return fmt.Errorf("snapshot %d: %d live versions, want %d", ts, res.Aggs[0].Int, accounts)
					}
					if got, want := res.Aggs[1].Float, float64(accounts)*1000; got != want {
						return fmt.Errorf("snapshot %d: total balance %v, want %v — isolation broken", ts, got, want)
					}
					return nil
				})
				if err != nil {
					errc <- fmt.Errorf("reader: %w", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestConcurrentParallelQueries runs many db.Query calls at once on the
// parallel path — read-only concurrency over one DB — and checks they all
// return the single-goroutine answer.
func TestConcurrentParallelQueries(t *testing.T) {
	db := itemsDB(t, 5000)
	sqlStmt := "SELECT COUNT(qty), SUM(price * 2), MIN(price), MAX(qty) FROM items WHERE qty < 70"

	want, err := db.Query(sqlStmt) // single-goroutine RM baseline
	if err != nil {
		t.Fatal(err)
	}
	db.SetParallel(ParallelConfig{Workers: 3, MorselRows: 256})

	const goroutines, perG = 4, 25
	errc := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				res, err := db.Query(sqlStmt)
				if err != nil {
					errc <- err
					return
				}
				if err := want.EquivalentTo(res, 1e-9); err != nil {
					errc <- fmt.Errorf("concurrent result drifted: %w", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestDBWorkerCountDeterminism pins the DB-level guarantee SetParallel
// documents: 1 worker and 8 workers produce byte-identical results — rows,
// checksum, aggregates, groups, and every breakdown component except the
// modeled makespan.
func TestDBWorkerCountDeterminism(t *testing.T) {
	db := itemsDB(t, 4000)
	stmts := []string{
		"SELECT id, price FROM items WHERE qty < 40",
		"SELECT COUNT(*), SUM(price * (1 - qty)), AVG(price), MIN(price), MAX(price) FROM items WHERE qty < 80",
		"SELECT branch, COUNT(*), SUM(price) FROM items GROUP BY branch",
	}
	for _, stmt := range stmts {
		db.SetParallel(ParallelConfig{Workers: 1})
		one, err := db.Query(stmt)
		if err != nil {
			t.Fatalf("%s (1 worker): %v", stmt, err)
		}
		db.SetParallel(ParallelConfig{Workers: 8})
		eight, err := db.Query(stmt)
		if err != nil {
			t.Fatalf("%s (8 workers): %v", stmt, err)
		}
		if err := one.EquivalentTo(eight, 0); err != nil {
			t.Errorf("%s: workers changed the result: %v", stmt, err)
		}
		a, b := one.Breakdown, eight.Breakdown
		a.TotalCycles, b.TotalCycles = 0, 0
		if a != b {
			t.Errorf("%s: breakdown drifts with workers:\n  %+v\nvs %+v", stmt, one.Breakdown, eight.Breakdown)
		}
		if eight.Breakdown.TotalCycles > one.Breakdown.TotalCycles {
			t.Errorf("%s: makespan grew with workers: %d -> %d",
				stmt, one.Breakdown.TotalCycles, eight.Breakdown.TotalCycles)
		}
	}
}

// TestTracedWorkerCountDeterminism pins the guarantee that tracing never
// perturbs the PAR path: across a worker sweep, traced queries return
// byte-identical results to each other and to the untraced run, every
// breakdown component except the modeled makespan matches, each span tree
// reconciles with its own breakdown, and the per-morsel detail subtrees are
// identical — morsel boundaries and partials depend only on MorselRows. The
// only worker-dependent detail metadata is the schedule placement (the
// worker/start_cycles attrs on each morsel root), which describes the list
// schedule and so varies with the pool size by design; it is stripped
// before the comparison.
func TestTracedWorkerCountDeterminism(t *testing.T) {
	db := itemsDB(t, 4000)
	stmts := []string{
		"SELECT id, price FROM items WHERE qty < 40",
		"SELECT COUNT(*), SUM(price * (1 - qty)), AVG(price), MIN(price), MAX(price) FROM items WHERE qty < 80",
		"SELECT branch, COUNT(*), SUM(price) FROM items GROUP BY branch",
	}
	for _, stmt := range stmts {
		var base *Result
		var baseMorsels []byte
		for _, workers := range []int{1, 2, 3, 8} {
			db.SetParallel(ParallelConfig{Workers: workers, MorselRows: 256})
			res, trace, err := db.QueryTraced(stmt)
			if err != nil {
				t.Fatalf("%s (%d workers): %v", stmt, workers, err)
			}
			untraced, err := db.Query(stmt)
			if err != nil {
				t.Fatalf("%s (%d workers, untraced): %v", stmt, workers, err)
			}
			if err := res.EquivalentTo(untraced, 0); err != nil {
				t.Errorf("%s (%d workers): tracing changed the result: %v", stmt, workers, err)
			}
			if res.Breakdown != untraced.Breakdown {
				t.Errorf("%s (%d workers): tracing changed the breakdown:\n  %+v\nvs %+v",
					stmt, workers, res.Breakdown, untraced.Breakdown)
			}
			if got := trace.Root.AttributedCycles(); got != res.Breakdown.TotalCycles {
				t.Errorf("%s (%d workers): span tree attributes %d cycles, breakdown says %d",
					stmt, workers, got, res.Breakdown.TotalCycles)
			}
			detail := trace.Root.Find("morsels")
			if detail == nil {
				t.Fatalf("%s (%d workers): trace has no morsels subtree", stmt, workers)
			}
			for _, m := range detail.Children {
				if _, ok := m.Attr("worker"); !ok {
					t.Errorf("%s (%d workers): morsel root %s has no schedule placement", stmt, workers, m.Name)
				}
				stripScheduleAttrs(m)
			}
			morsels, err := json.Marshal(detail)
			if err != nil {
				t.Fatal(err)
			}
			if base == nil {
				base, baseMorsels = res, morsels
				continue
			}
			if err := base.EquivalentTo(res, 0); err != nil {
				t.Errorf("%s: workers changed the traced result: %v", stmt, err)
			}
			a, b := base.Breakdown, res.Breakdown
			a.TotalCycles, b.TotalCycles = 0, 0
			if a != b {
				t.Errorf("%s: traced breakdown drifts with workers:\n  %+v\nvs %+v",
					stmt, base.Breakdown, res.Breakdown)
			}
			if !bytes.Equal(morsels, baseMorsels) {
				t.Errorf("%s (%d workers): per-morsel span subtree drifted with worker count", stmt, workers)
			}
		}
	}
}

// TestConcurrentCreateTableAndColumnarQueries pits catalog growth against
// the COL path under the race detector: one goroutine queries on the
// columnar copy — whose first run lazily materializes the copy through the
// shared Arena — while writers create tables, insert into them, and list the
// catalog. The querier stays single so the shared System keeps its one-owner
// rule; the contention under test is the catalog map, the per-table lazy
// columnar copy, and the address arena.
func TestConcurrentCreateTableAndColumnarQueries(t *testing.T) {
	db := itemsDB(t, 2000)
	stmt := "SELECT COUNT(*), SUM(price), MIN(price), MAX(qty) FROM items WHERE qty < 50"
	want, err := db.QueryOn(ROW, stmt) // baseline before any columnar copy exists
	if err != nil {
		t.Fatal(err)
	}

	schema, err := NewSchema(
		Column{Name: "k", Type: Int64, Width: 8},
		Column{Name: "v", Type: Float64, Width: 8},
	)
	if err != nil {
		t.Fatal(err)
	}

	const creators, tablesPerCreator, sweeps = 3, 15, 40
	errc := make(chan error, creators+1)
	var wg sync.WaitGroup
	for c := 0; c < creators; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < tablesPerCreator; i++ {
				name := fmt.Sprintf("scratch_%d_%d", c, i)
				if _, err := db.CreateTable(name, schema, 4); err != nil {
					errc <- fmt.Errorf("creator %d: %w", c, err)
					return
				}
				if err := db.Insert(name, I64(int64(i)), F64(float64(i))); err != nil {
					errc <- fmt.Errorf("creator %d: %w", c, err)
					return
				}
				if _, err := db.Table(name); err != nil {
					errc <- fmt.Errorf("creator %d: %w", c, err)
					return
				}
				db.TableNames()
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < sweeps; i++ {
			res, err := db.QueryOn(COL, stmt)
			if err != nil {
				errc <- fmt.Errorf("querier: %w", err)
				return
			}
			if err := want.EquivalentTo(res, 0); err != nil {
				errc <- fmt.Errorf("querier: catalog growth changed the answer: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if got := creators*tablesPerCreator + 1; len(db.TableNames()) != got {
		t.Errorf("catalog holds %d tables, want %d", len(db.TableNames()), got)
	}
}

// itemsDB builds a plain (non-MVCC) items table for the read-only tests.
// stripScheduleAttrs removes the worker-count-dependent schedule placement
// from a morsel sub-root so the rest of the subtree can be compared
// byte-for-byte across worker sweeps.
func stripScheduleAttrs(s *Span) {
	kept := s.Attrs[:0]
	for _, a := range s.Attrs {
		if a.Key == "worker" || a.Key == "start_cycles" {
			continue
		}
		kept = append(kept, a)
	}
	s.Attrs = kept
}

func itemsDB(t *testing.T, rows int) *DB {
	t.Helper()
	schema, err := NewSchema(
		Column{Name: "id", Type: Int64, Width: 8},
		Column{Name: "branch", Type: Int32, Width: 4},
		Column{Name: "price", Type: Float64, Width: 8},
		Column{Name: "qty", Type: Int64, Width: 8},
	)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("items", schema, rows); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		err := db.Insert("items",
			I64(int64(i)), I32(int32(i%11)), F64(float64(i%131)/4), I64(int64(i%100)))
		if err != nil {
			t.Fatal(err)
		}
	}
	return db
}
