package rfabric

import "rfabric/internal/storage"

// Relational Storage (§IV-D): the disk-tier instance of the fabric.
type (
	// StorageDevice is the simulated flash device.
	StorageDevice = storage.Device
	// StorageDeviceConfig sizes the device and its timing model.
	StorageDeviceConfig = storage.DeviceConfig
	// PageStore is a row table laid out on a device.
	PageStore = storage.PageStore
	// StorageScanResult is the outcome of a storage-tier scan.
	StorageScanResult = storage.ScanResult
)

// DefaultStorageConfig returns a small NVMe-class device model.
func DefaultStorageConfig() StorageDeviceConfig { return storage.DefaultDeviceConfig() }

// NewStorageDevice creates an empty simulated flash device.
func NewStorageDevice(cfg StorageDeviceConfig) (*StorageDevice, error) {
	return storage.NewDevice(cfg)
}

// StoreTable writes a (non-MVCC) row table onto the device, optionally
// compressing each page.
func StoreTable(dev *StorageDevice, tbl *Table, compressPages bool) (*PageStore, error) {
	return storage.StoreTable(dev, tbl, compressPages)
}
