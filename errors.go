package rfabric

import "errors"

// Sentinel errors for the DB façade's failure modes. Call sites wrap them
// with %w and the offending name, so callers branch with errors.Is while
// messages stay specific:
//
//	if _, err := db.Query(q); errors.Is(err, rfabric.ErrNoSuchTable) { ... }
var (
	// ErrNoSuchTable reports a statement naming a table the catalog does
	// not hold.
	ErrNoSuchTable = errors.New("rfabric: no such table")
	// ErrUnknownEngine reports an EngineKind the executor does not
	// recognize.
	ErrUnknownEngine = errors.New("rfabric: unknown engine kind")
)
