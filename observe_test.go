package rfabric

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rfabric/internal/obs"
	"rfabric/internal/tpch"
)

// lineitemDB builds a TPC-H lineitem table at a small scale.
func lineitemDB(t *testing.T, rows int) *DB {
	t.Helper()
	db, err := Open(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable("lineitem", tpch.LineitemSchema(), rows)
	if err != nil {
		t.Fatal(err)
	}
	if err := tpch.Generate(tbl, rows, 1); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestTracedQ6Reconciles is the issue's acceptance check: a traced TPC-H Q6
// run on RM produces a span tree whose attributed cycles reconcile exactly
// with Breakdown.TotalCycles, with the pipeline and stall leaves in place.
func TestTracedQ6Reconciles(t *testing.T) {
	db := lineitemDB(t, 20_000)
	res, trace, err := db.ExecuteTraced(RM, "lineitem", tpch.Q6())
	if err != nil {
		t.Fatal(err)
	}
	if res.Breakdown.TotalCycles == 0 {
		t.Fatal("Q6 reported zero modeled cycles")
	}
	if got := trace.Root.AttributedCycles(); got != res.Breakdown.TotalCycles {
		t.Fatalf("span tree attributes %d cycles, Breakdown.TotalCycles is %d",
			got, res.Breakdown.TotalCycles)
	}
	if trace.TotalCycles != res.Breakdown.TotalCycles {
		t.Fatalf("trace total %d != breakdown total %d", trace.TotalCycles, res.Breakdown.TotalCycles)
	}
	exec := trace.Root.Find("RM.execute")
	if exec == nil {
		t.Fatal("trace has no RM.execute span")
	}
	if _, ok := exec.Attr("cache_miss_ratio"); !ok {
		t.Error("RM.execute span lacks cache_miss_ratio annotation")
	}
	if _, ok := exec.Attr("row_buffer_hit_rate"); !ok {
		t.Error("RM.execute span lacks row_buffer_hit_rate annotation")
	}
	var sb strings.Builder
	trace.Render(&sb)
	rendered := sb.String()
	for _, want := range []string{"RM.execute", "fabric.configure", "total_cycles="} {
		if !strings.Contains(rendered, want) {
			t.Errorf("rendered trace lacks %q:\n%s", want, rendered)
		}
	}
	if db.LastTrace() != trace {
		t.Error("LastTrace does not hold the traced query")
	}
}

// TestQueryTracedParsePlanSpans checks the SQL entry point emits the parse
// and plan spans and threads the statement text through the trace.
func TestQueryTracedParsePlanSpans(t *testing.T) {
	db := lineitemDB(t, 2_000)
	sql := "SELECT SUM(l_extendedprice * l_discount) FROM lineitem WHERE l_quantity < 24"
	res, trace, err := db.QueryTraced(sql)
	if err != nil {
		t.Fatal(err)
	}
	if trace.Query != sql {
		t.Errorf("trace query = %q, want the statement text", trace.Query)
	}
	for _, name := range []string{"parse", "plan.logical", "RM.execute"} {
		if trace.Root.Find(name) == nil {
			t.Errorf("trace lacks %q span", name)
		}
	}
	if got := trace.Root.AttributedCycles(); got != res.Breakdown.TotalCycles {
		t.Errorf("span tree attributes %d cycles, breakdown says %d", got, res.Breakdown.TotalCycles)
	}
}

// TestTracedOperatorTreeAndSinks pins the EXPLAIN surface of the plan IR: a
// traced query carries the physical operator chain as one span per operator
// (with the priced access path stamped on the Scan), the ORDER BY / LIMIT
// sinks run after the pipeline with their modeled sort cycles attributed to
// a sink span, and the root still reconciles with the breakdown.
func TestTracedOperatorTreeAndSinks(t *testing.T) {
	db := lineitemDB(t, 5_000)
	stmt := "SELECT l_returnflag, COUNT(*), SUM(l_quantity) FROM lineitem " +
		"WHERE l_quantity < 30 GROUP BY l_returnflag ORDER BY 3 DESC LIMIT 2"
	res, trace, err := db.QueryTraced(stmt)
	if err != nil {
		t.Fatal(err)
	}
	phys := trace.Root.Find("plan.physical")
	if phys == nil {
		t.Fatal("trace lacks plan.physical span")
	}
	for _, op := range []string{"op.limit", "op.orderby", "op.aggregate", "op.filter", "op.scan"} {
		sp := phys.Find(op)
		if sp == nil {
			t.Fatalf("operator tree lacks %s span", op)
		}
		if _, ok := sp.Attr("expr"); !ok {
			t.Errorf("%s span lacks its EXPLAIN line", op)
		}
	}
	if src, _ := phys.Find("op.scan").Attr("source"); src != res.Engine {
		t.Errorf("scan span source = %q, run used %q", src, res.Engine)
	}
	sink := trace.Root.Find("sink")
	if sink == nil {
		t.Fatal("trace lacks sink span")
	}
	if sink.Cycles == 0 {
		t.Error("sort sink attributed no cycles")
	}
	if lim, _ := sink.Attr("limit"); lim != "2" {
		t.Errorf("sink limit attr = %q", lim)
	}
	if got := trace.Root.AttributedCycles(); got != res.Breakdown.TotalCycles {
		t.Errorf("span tree attributes %d cycles, breakdown says %d", got, res.Breakdown.TotalCycles)
	}
	if len(res.Groups) != 2 {
		t.Fatalf("LIMIT 2 returned %d groups", len(res.Groups))
	}
	if res.Groups[0].Aggs[1].Float < res.Groups[1].Aggs[1].Float {
		t.Errorf("groups not sorted descending: %v then %v", res.Groups[0].Aggs[1], res.Groups[1].Aggs[1])
	}
}

// TestDBExplain checks the EXPLAIN-without-ANALYZE entry point renders the
// lowered operator chain.
func TestDBExplain(t *testing.T) {
	db := lineitemDB(t, 100)
	out, err := db.Explain("SELECT l_returnflag, COUNT(*) FROM lineitem GROUP BY l_returnflag ORDER BY l_returnflag LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Limit[3]", "OrderBy[l_returnflag]", "Aggregate[group=(l_returnflag)", "Scan[lineitem source=?"} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN output lacks %q:\n%s", want, out)
		}
	}
}

// TestObserverMetricsServe is the issue's live-export acceptance check:
// after one query through an observed DB, /metrics serves Prometheus text
// with dram, cache, and fabric series populated, and /debug/trace/last
// serves the trace.
func TestObserverMetricsServe(t *testing.T) {
	db := lineitemDB(t, 5_000)
	reg := NewRegistry()
	db.SetObserver(reg)

	_, trace, err := db.ExecuteTraced(RM, "lineitem", tpch.Q6())
	if err != nil {
		t.Fatal(err)
	}
	var last obs.LastTrace
	last.Store(trace)

	srv := httptest.NewServer(obs.NewMux(reg, &last))
	defer srv.Close()

	body := get(t, srv.URL+"/metrics")
	for _, series := range []string{
		"rfabric_queries_total",
		"rfabric_query_cycles_total",
		"rfabric_dram_accesses_total",
		"rfabric_dram_bytes_read_total",
		"rfabric_cache_loads_total",
		"rfabric_fabric_bytes_shipped_total",
		`engine="RM"`,
		`table="lineitem"`,
	} {
		if !strings.Contains(body, series) {
			t.Errorf("/metrics lacks %s\ngot:\n%s", series, body)
		}
	}
	traceBody := get(t, srv.URL+"/debug/trace/last")
	if !strings.Contains(traceBody, "RM.execute") {
		t.Errorf("/debug/trace/last lacks the engine span:\n%s", traceBody)
	}
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestSentinelErrors pins the errors.Is contracts of the DB façade.
func TestSentinelErrors(t *testing.T) {
	db, err := Open(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("SELECT x FROM ghost"); !errors.Is(err, ErrNoSuchTable) {
		t.Errorf("Query on missing table: got %v, want ErrNoSuchTable", err)
	}
	if _, err := db.Table("ghost"); !errors.Is(err, ErrNoSuchTable) {
		t.Errorf("Table lookup: got %v, want ErrNoSuchTable", err)
	}
	if err := db.Insert("ghost", I64(1)); !errors.Is(err, ErrNoSuchTable) {
		t.Errorf("Insert: got %v, want ErrNoSuchTable", err)
	}
	if _, err := db.CreateIndex("ghost", "x"); !errors.Is(err, ErrNoSuchTable) {
		t.Errorf("CreateIndex: got %v, want ErrNoSuchTable", err)
	}
	if _, err := db.Execute("BOGUS", "ghost", Query{}); !errors.Is(err, ErrNoSuchTable) {
		t.Errorf("Execute on missing table: got %v, want ErrNoSuchTable", err)
	}
	if _, _, err := db.QueryTraced("SELECT x FROM ghost"); !errors.Is(err, ErrNoSuchTable) {
		t.Errorf("QueryTraced: got %v, want ErrNoSuchTable", err)
	}

	schema, err := NewSchema(Column{Name: "x", Type: Int64, Width: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("t", schema, 4); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("t", I64(1)); err != nil {
		t.Fatal(err)
	}
	q := Query{Projection: []int{0}}
	if _, err := db.Execute("BOGUS", "t", q); !errors.Is(err, ErrUnknownEngine) {
		t.Errorf("Execute on bogus engine: got %v, want ErrUnknownEngine", err)
	}
	if _, err := db.Execute(RM, "t", q); err != nil {
		t.Errorf("Execute on RM: %v", err)
	}
}
