//go:build race

package rfabric

// raceEnabled reports whether the race detector is compiled in; alloc-count
// assertions skip under it, since the race runtime perturbs AllocsPerRun.
const raceEnabled = true
