package rfabric

import "rfabric/internal/tensor"

// Matrix slicing through the fabric (§VII Q1): row-major matrices whose
// column blocks are served as ephemeral views.
type (
	// Matrix is a dense row-major float64 matrix in simulated memory.
	Matrix = tensor.Matrix
	// MatrixSlice is a dense column-block copy with its modeled cost.
	MatrixSlice = tensor.Slice
)

// NewMatrix allocates a rows×cols matrix on the system.
func NewMatrix(sys *System, rows, cols int) (*Matrix, error) {
	return tensor.NewMatrix(sys, rows, cols)
}
