package colstore

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"rfabric/internal/dram"
	"rfabric/internal/geometry"
	"rfabric/internal/table"
)

func testTable(t *testing.T, rows int) *table.Table {
	t.Helper()
	sch := geometry.MustSchema(
		geometry.Column{Name: "id", Type: geometry.Int64, Width: 8},
		geometry.Column{Name: "name", Type: geometry.Char, Width: 7},
		geometry.Column{Name: "qty", Type: geometry.Int32, Width: 4},
	)
	tbl := table.MustNew("t", sch, table.WithCapacity(rows))
	rng := rand.New(rand.NewSource(5))
	for r := 0; r < rows; r++ {
		tbl.MustAppend(0,
			table.I64(rng.Int63()),
			table.Str(string(rune('a'+r%26))),
			table.I32(rng.Int31()),
		)
	}
	return tbl
}

func TestFromTableValues(t *testing.T) {
	tbl := testTable(t, 100)
	arena := dram.MustArena(0, 64)
	s, err := FromTable(tbl, arena)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumRows() != 100 {
		t.Fatalf("rows = %d", s.NumRows())
	}
	for r := 0; r < 100; r++ {
		for c := 0; c < 3; c++ {
			got, err := s.Get(r, c)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(tbl.MustGet(r, c)) {
				t.Errorf("row %d col %d: %s != %s", r, c, got, tbl.MustGet(r, c))
			}
		}
	}
}

func TestFromTableDropsMVCCHeaders(t *testing.T) {
	sch := geometry.MustSchema(geometry.Column{Name: "id", Type: geometry.Int64, Width: 8})
	tbl := table.MustNew("t", sch, table.WithMVCC())
	tbl.MustAppend(5, table.I64(42))
	arena := dram.MustArena(0, 64)
	s, err := FromTable(tbl, arena)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.SizeBytes(); got != 8 {
		t.Errorf("columnar copy is %d bytes, want 8 (header dropped)", got)
	}
	v, err := s.Get(0, 0)
	if err != nil || v.Int != 42 {
		t.Errorf("Get = %v, %v", v, err)
	}
}

func TestAddressesDisjointAndStaggered(t *testing.T) {
	tbl := testTable(t, 512)
	arena := dram.MustArena(0, 64)
	s, err := FromTable(tbl, arena)
	if err != nil {
		t.Fatal(err)
	}
	mem := dram.MustNew(dram.DefaultConfig())
	banks := map[int]bool{}
	var prevEnd int64 = -1
	for c := 0; c < 3; c++ {
		start := s.ColumnAddr(c)
		if start <= prevEnd {
			t.Errorf("column %d range overlaps previous", c)
		}
		prevEnd = start + int64(len(s.ColumnData(c)))
		banks[mem.BankOf(start)] = true
	}
	if len(banks) < 2 {
		t.Errorf("column bases share a bank phase (%d distinct banks)", len(banks))
	}
}

func TestValueAddr(t *testing.T) {
	tbl := testTable(t, 10)
	arena := dram.MustArena(0, 64)
	s, _ := FromTable(tbl, arena)
	if got, want := s.ValueAddr(2, 3), s.ColumnAddr(2)+12; got != want {
		t.Errorf("ValueAddr = %d, want %d", got, want)
	}
}

func TestGetBounds(t *testing.T) {
	tbl := testTable(t, 5)
	arena := dram.MustArena(0, 64)
	s, _ := FromTable(tbl, arena)
	if _, err := s.Get(5, 0); err == nil {
		t.Error("row out of range accepted")
	}
	if _, err := s.Get(0, 3); err == nil {
		t.Error("column out of range accepted")
	}
}

func TestValidation(t *testing.T) {
	arena := dram.MustArena(0, 64)
	if _, err := FromTable(nil, arena); err == nil {
		t.Error("nil table accepted")
	}
	if _, err := FromTable(testTable(t, 1), nil); err == nil {
		t.Error("nil arena accepted")
	}
}

func TestSizeBytesMatchesTablePayload(t *testing.T) {
	tbl := testTable(t, 64)
	arena := dram.MustArena(0, 64)
	s, _ := FromTable(tbl, arena)
	if got, want := s.SizeBytes(), 64*tbl.Schema().RowBytes(); got != want {
		t.Errorf("SizeBytes = %d, want %d", got, want)
	}
}

// TestColumnDataProperty: the dense array of each column equals the
// concatenation of that column's bytes across rows.
func TestColumnDataProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := rng.Intn(100) + 1
		sch := geometry.MustSchema(
			geometry.Column{Name: "a", Type: geometry.Int32, Width: 4},
			geometry.Column{Name: "b", Type: geometry.Float64, Width: 8},
		)
		tbl := table.MustNew("t", sch, table.WithCapacity(rows))
		for r := 0; r < rows; r++ {
			tbl.MustAppend(0, table.I32(rng.Int31()), table.F64(rng.Float64()))
		}
		arena := dram.MustArena(0, 64)
		s, err := FromTable(tbl, arena)
		if err != nil {
			return false
		}
		for c := 0; c < 2; c++ {
			w := sch.Column(c).Width
			var want []byte
			for r := 0; r < rows; r++ {
				p := tbl.RowPayload(r)
				want = append(want, p[sch.Offset(c):sch.Offset(c)+w]...)
			}
			if !bytes.Equal(s.ColumnData(c), want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
