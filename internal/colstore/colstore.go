// Package colstore materializes the columnar shadow copy of a row table that
// the COL baseline scans. This is exactly the layout-conversion world the
// paper departs from: a second full copy of the data, per-attribute dense
// arrays, paid for with conversion time and kept only for the read-only
// baseline (Relational Fabric, ICDE 2023, §I, §V "we custom implement ... an
// in-memory column-store following the column-at-a-time processing model").
package colstore

import (
	"errors"
	"fmt"

	"rfabric/internal/dram"
	"rfabric/internal/geometry"
	"rfabric/internal/table"
)

// Store holds one dense array per column of the source schema.
type Store struct {
	schema *geometry.Schema
	rows   int
	cols   [][]byte // cols[c] is rows*width(c) bytes
	addrs  []int64  // simulated base address per column array
}

// FromTable converts a row table into per-column arrays, allocating each
// array's simulated address from arena. MVCC headers are dropped: the
// baseline column store is a read-only analytical copy.
func FromTable(t *table.Table, arena *dram.Arena) (*Store, error) {
	if t == nil {
		return nil, errors.New("colstore: nil table")
	}
	if arena == nil {
		return nil, errors.New("colstore: nil arena")
	}
	s := &Store{schema: t.Schema(), rows: t.NumRows()}
	nc := s.schema.NumColumns()
	s.cols = make([][]byte, nc)
	s.addrs = make([]int64, nc)
	for c := 0; c < nc; c++ {
		w := s.schema.Column(c).Width
		s.cols[c] = make([]byte, s.rows*w)
		// Stagger each array by one extra cache line: column lengths are
		// usually multiples of large powers of two, and back-to-back bases
		// would give every array the same DRAM bank phase — an allocator
		// artifact real systems avoid and that would serialize concurrent
		// per-column misses onto one bank.
		s.addrs[c] = arena.Alloc(int64(s.rows*w) + 64)
	}
	for r := 0; r < t.NumRows(); r++ {
		payload := t.RowPayload(r)
		for c := 0; c < nc; c++ {
			w := s.schema.Column(c).Width
			copy(s.cols[c][r*w:(r+1)*w], payload[s.schema.Offset(c):s.schema.Offset(c)+w])
		}
	}
	return s, nil
}

// Schema returns the source schema.
func (s *Store) Schema() *geometry.Schema { return s.schema }

// NumRows returns the row count.
func (s *Store) NumRows() int { return s.rows }

// ColumnData returns the dense array of column c without copying.
func (s *Store) ColumnData(c int) []byte { return s.cols[c] }

// ColumnAddr returns the simulated base address of column c's array.
func (s *Store) ColumnAddr(c int) int64 { return s.addrs[c] }

// ValueAddr returns the simulated address of row r within column c.
func (s *Store) ValueAddr(c, r int) int64 {
	return s.addrs[c] + int64(r*s.schema.Column(c).Width)
}

// Get decodes the value at row r of column c.
func (s *Store) Get(r, c int) (table.Value, error) {
	if r < 0 || r >= s.rows {
		return table.Value{}, fmt.Errorf("colstore: row %d out of range [0,%d)", r, s.rows)
	}
	if c < 0 || c >= s.schema.NumColumns() {
		return table.Value{}, fmt.Errorf("colstore: column %d out of range [0,%d)", c, s.schema.NumColumns())
	}
	w := s.schema.Column(c).Width
	// Reuse the row codec by slicing the dense array at the value.
	row := s.cols[c][r*w : (r+1)*w]
	vals, err := decodeSingle(s.schema.Column(c), row)
	if err != nil {
		return table.Value{}, err
	}
	return vals, nil
}

func decodeSingle(col geometry.Column, raw []byte) (table.Value, error) {
	// A single-column schema lets us reuse table.DecodeRow.
	sch, err := geometry.NewSchema(col)
	if err != nil {
		return table.Value{}, err
	}
	vals, err := table.DecodeRow(sch, raw)
	if err != nil {
		return table.Value{}, err
	}
	return vals[0], nil
}

// SizeBytes returns the total bytes across all column arrays — the space
// amplification of keeping the second copy.
func (s *Store) SizeBytes() int {
	total := 0
	for _, c := range s.cols {
		total += len(c)
	}
	return total
}
