// Package shard implements horizontal partitioning over fabric-equipped
// nodes. The paper keeps horizontal partitioning a physical-design-time
// decision but argues it composes naturally with the fabric (§III-A: "the
// data system can request the desired column group on a sharding key range,
// and the Relational Fabric will directly return the corresponding data").
// A sharded table routes rows by a range-partitioned key; queries prune to
// the shards their key-range predicates touch, scatter execution across a
// bounded worker pool (each shard on its own simulated system — its node),
// and gather-merge. Modeled time is the makespan of scheduling the touched
// shards onto the pool plus the coordinator's merge cost: with enough
// workers that is the slowest touched shard, the nodes working in parallel.
package shard

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"rfabric/internal/engine"
	"rfabric/internal/expr"
	"rfabric/internal/geometry"
	"rfabric/internal/obs"
	"rfabric/internal/table"
)

// Table is a range-sharded table: shard i holds keys in
// [bounds[i-1], bounds[i]), with implicit -inf and +inf at the ends.
type Table struct {
	name   string
	schema *geometry.Schema
	keyCol int
	bounds []int64 // len = shards-1, ascending upper bounds (exclusive)
	nodes  []*node

	// Workers bounds the coordinator's scatter pool: how many shards
	// execute concurrently (each on its own node's private System). Zero or
	// negative means runtime.GOMAXPROCS(0). Results are identical for every
	// value; only modeled coordinator time and wall-clock time change.
	Workers int

	// Tracer, when set, receives a span whose schedule/merge leaves
	// reconcile with Result.Cycles; per-shard sub-traces hang under a
	// Detail subtree (their modeled time overlaps the makespan). Each
	// touched shard gets its own private tracer, adopted in shard order
	// after the workers join, so tracing never perturbs determinism.
	Tracer *obs.Tracer
	// Reg, when set, receives rfabric_shard_* series describing each run.
	Reg *obs.Registry
}

type node struct {
	sys *engine.System
	tbl *table.Table
}

// New creates a sharded table with len(bounds)+1 shards, each with its own
// simulated system and capacity rows of reserved space.
func New(name string, schema *geometry.Schema, keyCol int, bounds []int64, capacityPerShard int, cfg engine.SystemConfig) (*Table, error) {
	if schema == nil {
		return nil, errors.New("shard: nil schema")
	}
	if keyCol < 0 || keyCol >= schema.NumColumns() {
		return nil, fmt.Errorf("shard: key column %d out of range", keyCol)
	}
	switch schema.Column(keyCol).Type {
	case geometry.Int64, geometry.Int32, geometry.Date:
	default:
		return nil, fmt.Errorf("shard: key column type %s is not range-shardable", schema.Column(keyCol).Type)
	}
	if capacityPerShard <= 0 {
		return nil, fmt.Errorf("shard: capacity per shard must be positive, got %d", capacityPerShard)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i-1] >= bounds[i] {
			return nil, fmt.Errorf("shard: bounds not strictly ascending at %d", i)
		}
	}
	st := &Table{name: name, schema: schema, keyCol: keyCol, bounds: append([]int64(nil), bounds...)}
	for i := 0; i <= len(bounds); i++ {
		sys, err := engine.NewSystem(cfg)
		if err != nil {
			return nil, err
		}
		base := sys.Arena.Alloc(int64(capacityPerShard * schema.RowBytes()))
		tbl, err := table.New(fmt.Sprintf("%s.shard%d", name, i), schema,
			table.WithCapacity(capacityPerShard), table.WithBaseAddr(base))
		if err != nil {
			return nil, err
		}
		st.nodes = append(st.nodes, &node{sys: sys, tbl: tbl})
	}
	return st, nil
}

// NumShards returns the shard count.
func (t *Table) NumShards() int { return len(t.nodes) }

// ShardRows returns per-shard row counts.
func (t *Table) ShardRows() []int {
	out := make([]int, len(t.nodes))
	for i, n := range t.nodes {
		out[i] = n.tbl.NumRows()
	}
	return out
}

// shardOf routes a key.
func (t *Table) shardOf(key int64) int {
	return sort.Search(len(t.bounds), func(i int) bool { return key < t.bounds[i] })
}

// Insert routes one row by its sharding key.
func (t *Table) Insert(vals ...table.Value) error {
	if len(vals) != t.schema.NumColumns() {
		return fmt.Errorf("shard: got %d values for %d columns", len(vals), t.schema.NumColumns())
	}
	key := vals[t.keyCol]
	switch key.Type {
	case geometry.Int64, geometry.Int32, geometry.Date:
	default:
		return fmt.Errorf("shard: key value has type %s", key.Type)
	}
	_, err := t.nodes[t.shardOf(key.Int)].tbl.Append(1, vals...)
	return err
}

// keyRange extracts the [lo, hi] bounds the conjunction imposes on the
// sharding key; open ends are ±inf.
func (t *Table) keyRange(sel expr.Conjunction) (lo, hi int64) {
	lo, hi = math.MinInt64, math.MaxInt64
	for _, p := range sel {
		if p.Col != t.keyCol {
			continue
		}
		v := p.Operand.Int
		switch p.Op {
		case expr.Eq:
			if v > lo {
				lo = v
			}
			if v < hi {
				hi = v
			}
		case expr.Ge:
			if v > lo {
				lo = v
			}
		case expr.Gt:
			if v+1 > lo {
				lo = v + 1
			}
		case expr.Le:
			if v < hi {
				hi = v
			}
		case expr.Lt:
			if v-1 < hi {
				hi = v - 1
			}
		}
	}
	return lo, hi
}

// prune returns the shards whose key range intersects [lo, hi].
func (t *Table) prune(lo, hi int64) []int {
	if lo > hi {
		return nil
	}
	first := t.shardOf(lo)
	last := t.shardOf(hi)
	out := make([]int, 0, last-first+1)
	for s := first; s <= last; s++ {
		out = append(out, s)
	}
	return out
}

// Result is the merged outcome of a sharded query.
type Result struct {
	RowsPassed    int64
	Checksum      uint64
	Aggs          []table.Value
	Groups        []engine.GroupRow
	ShardsTouched int
	// Cycles is the modeled time: the makespan of scheduling the touched
	// shards' executions onto the coordinator's worker pool plus a
	// per-shard merge charge. With at least as many workers as touched
	// shards this is the slowest shard (the nodes run fully in parallel);
	// with one worker it degenerates to the sum of shards.
	Cycles uint64
}

// mergeCyclesPerShard is the coordinator's cost to fold one shard's reply.
const mergeCyclesPerShard = 200

// Execute runs the query on the RM path of every shard the selection cannot
// rule out and merges the results. AVG aggregates are rejected: they do not
// merge from per-shard finals (rewrite as SUM and COUNT).
func (t *Table) Execute(q engine.Query) (*Result, error) {
	if err := q.Validate(t.schema); err != nil {
		return nil, err
	}
	for _, a := range q.Aggregates {
		if a.Kind == expr.Avg {
			return nil, errors.New("shard: AVG does not merge across shards; query SUM and COUNT instead")
		}
	}
	lo, hi := t.keyRange(q.Selection)
	touched := t.prune(lo, hi)

	sp := t.Tracer.Begin("SHARD.execute")
	defer t.Tracer.End()
	sp.SetAttr("engine", "SHARD")
	sp.SetAttr("table", t.name)

	workers := t.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(touched) {
		workers = len(touched)
	}

	// Per-shard tracers: each worker writes only its own slot; sub-roots
	// are adopted in shard order after the join so the span tree is
	// deterministic under any scheduling.
	var tracers []*obs.Tracer
	if sp != nil {
		tracers = make([]*obs.Tracer, len(touched))
		for i, s := range touched {
			tracers[i] = obs.NewTracer(fmt.Sprintf("shard[%d]", s))
		}
	}

	// Scatter: workers pull touched shards off a shared counter and run
	// each on its node's private System. Race-clean by ownership — shard s
	// appears once in touched, and nodes[s].sys is driven only by the
	// worker holding index s.
	results := make([]*engine.Result, len(touched))
	errs := make([]error, len(touched))
	run := func(i int) {
		n := t.nodes[touched[i]]
		n.sys.ResetState()
		eng := &engine.RMEngine{Tbl: n.tbl, Sys: n.sys, PushSelection: true}
		if tracers != nil {
			eng.Tracer = tracers[i]
		}
		results[i], errs[i] = eng.Execute(q)
	}
	if workers <= 1 {
		for i := range touched {
			run(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(touched) {
						return
					}
					run(i)
				}
			}()
		}
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", touched[i], err)
		}
	}

	// Gather: fold partials in shard order so the merge is deterministic
	// regardless of scheduling. Scalar aggregate merges are initialized up
	// front so a fully-pruned key range still yields COUNT=0/SUM=0 exactly
	// like a single-node run over zero qualifying rows.
	out := &Result{ShardsTouched: len(touched)}
	var mergedAggs []*aggMerge
	if len(q.Aggregates) > 0 && len(q.GroupBy) == 0 {
		mergedAggs = newAggMerges(q)
	}
	groups := map[string]*groupMerge{}

	perShard := make([]uint64, len(touched))
	for i, r := range results {
		out.RowsPassed += r.RowsPassed
		out.Checksum += r.Checksum
		perShard[i] = r.Breakdown.TotalCycles
		for j, v := range r.Aggs {
			mergedAggs[j].fold(v, r.RowsPassed)
		}
		for _, g := range r.Groups {
			k := groupKey(g.Key)
			gm, ok := groups[k]
			if !ok {
				gm = &groupMerge{key: g.Key, aggs: newAggMerges(q)}
				groups[k] = gm
			}
			gm.count += g.Count
			for j, v := range g.Aggs {
				gm.aggs[j].fold(v, g.Count)
			}
		}
	}
	out.Cycles = engine.ScheduleCycles(perShard, workers) +
		uint64(len(touched))*mergeCyclesPerShard
	if sp != nil {
		mergeCharge := uint64(len(touched)) * mergeCyclesPerShard
		sp.Leaf("schedule.makespan", out.Cycles-mergeCharge, 0)
		sp.Leaf("merge", mergeCharge, 0)
		sp.SetAttr("workers", strconv.Itoa(workers))
		sp.SetAttr("shards_touched", strconv.Itoa(len(touched)))
		sp.SetAttr("shards_total", strconv.Itoa(len(t.nodes)))
		detail := sp.AddChild("shards")
		detail.Detail = true
		// Replay the deterministic list schedule to place each shard on a
		// worker lane (see engine.ScheduleAssignments).
		workerOf, starts, _ := engine.ScheduleAssignments(perShard, workers)
		tl := t.Tracer.Timeline()
		for i, tr := range tracers {
			root := tr.Root()
			root.SetAttr("worker", strconv.Itoa(workerOf[i]))
			root.SetAttr("start_cycles", strconv.FormatUint(starts[i], 10))
			detail.Adopt(root)
			tl.AddWorkerSlice(workerOf[i], fmt.Sprintf("shard[%d]", touched[i]), starts[i], perShard[i])
		}
		// Shards ran on their nodes' private Systems, which the timeline does
		// not hook, so the coordinator drives the clock across the makespan.
		tl.TickThrough(out.Cycles)
	}
	if t.Reg != nil {
		labels := obs.Labels{"table": t.name}
		t.Reg.Counter("rfabric_shard_queries_total", labels).Add(1)
		t.Reg.Counter("rfabric_shard_shards_touched_total", labels).Add(uint64(len(touched)))
		t.Reg.Counter("rfabric_shard_shards_pruned_total", labels).Add(uint64(len(t.nodes) - len(touched)))
		t.Reg.Counter("rfabric_shard_cycles_total", labels).Add(out.Cycles)
	}

	if mergedAggs != nil {
		out.Aggs = make([]table.Value, len(mergedAggs))
		for i, m := range mergedAggs {
			out.Aggs[i] = m.result()
		}
	}
	if len(groups) > 0 {
		for _, gm := range groups {
			row := engine.GroupRow{Key: gm.key, Count: gm.count, Aggs: make([]table.Value, len(gm.aggs))}
			for i, m := range gm.aggs {
				row.Aggs[i] = m.result()
			}
			out.Groups = append(out.Groups, row)
		}
		sort.Slice(out.Groups, func(i, j int) bool {
			a, b := out.Groups[i].Key, out.Groups[j].Key
			for k := range a {
				if c := a[k].Compare(b[k]); c != 0 {
					return c < 0
				}
			}
			return false
		})
	}
	return out, nil
}

type groupMerge struct {
	key   []table.Value
	count int64
	aggs  []*aggMerge
}

func groupKey(vals []table.Value) string {
	s := ""
	for _, v := range vals {
		s += v.String() + "\x00"
	}
	return s
}

// aggMerge folds per-shard final aggregate values.
type aggMerge struct {
	kind  expr.AggKind
	sumI  int64
	sumF  float64
	isInt bool
	minV  table.Value
	maxV  table.Value
	any   bool
}

func newAggMerges(q engine.Query) []*aggMerge {
	out := make([]*aggMerge, len(q.Aggregates))
	for i, a := range q.Aggregates {
		out[i] = &aggMerge{kind: a.Kind}
	}
	return out
}

// fold merges one shard's final value; rows is how many rows contributed to
// it on that shard. A shard whose range was scanned but passed zero rows
// reports MIN/MAX as F64(0) (the engines' zero-row convention), which must
// not participate in the merge — otherwise a spurious 0 wins against
// all-positive or all-negative minima.
func (m *aggMerge) fold(v table.Value, rows int64) {
	switch m.kind {
	case expr.Count:
		m.isInt = true
		m.sumI += v.Int
	case expr.Sum:
		if v.Type == geometry.Float64 {
			m.sumF += v.Float
		} else {
			m.isInt = true
			m.sumI += v.Int
		}
	case expr.Min:
		if rows == 0 {
			return
		}
		if !m.any || v.Compare(m.minV) < 0 {
			m.minV = v
		}
	case expr.Max:
		if rows == 0 {
			return
		}
		if !m.any || v.Compare(m.maxV) > 0 {
			m.maxV = v
		}
	}
	m.any = true
}

func (m *aggMerge) result() table.Value {
	switch m.kind {
	case expr.Count:
		return table.I64(m.sumI)
	case expr.Sum:
		if m.isInt {
			return table.I64(m.sumI)
		}
		return table.F64(m.sumF)
	case expr.Min:
		if !m.any {
			return table.F64(0) // zero-row convention, matches single-node MIN
		}
		return m.minV
	case expr.Max:
		if !m.any {
			return table.F64(0) // zero-row convention, matches single-node MAX
		}
		return m.maxV
	default:
		return table.Value{}
	}
}
