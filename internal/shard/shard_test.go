package shard

import (
	"math/rand"
	"testing"

	"rfabric/internal/engine"
	"rfabric/internal/expr"
	"rfabric/internal/geometry"
	"rfabric/internal/table"
)

func testSchema() *geometry.Schema {
	return geometry.MustSchema(
		geometry.Column{Name: "id", Type: geometry.Int64, Width: 8},
		geometry.Column{Name: "grp", Type: geometry.Int32, Width: 4},
		geometry.Column{Name: "amount", Type: geometry.Float64, Width: 8},
		geometry.Column{Name: "tag", Type: geometry.Char, Width: 4},
	)
}

// newSharded builds 4 shards over id: (-inf,250), [250,500), [500,750), [750,inf).
func newSharded(t *testing.T, rows int) *Table {
	t.Helper()
	st, err := New("t", testSchema(), 0, []int64{250, 500, 750}, rows, engine.DefaultSystemConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	tags := []string{"a", "b"}
	for i := 0; i < rows; i++ {
		err := st.Insert(
			table.I64(int64(i%1000)),
			table.I32(int32(i%7)),
			table.F64(float64(i)),
			table.Str(tags[rng.Intn(2)]),
		)
		if err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func TestRoutingSpreadsRows(t *testing.T) {
	st := newSharded(t, 2000)
	rows := st.ShardRows()
	if len(rows) != 4 {
		t.Fatalf("shards = %d", len(rows))
	}
	total := 0
	for s, n := range rows {
		if n == 0 {
			t.Errorf("shard %d is empty", s)
		}
		total += n
	}
	if total != 2000 {
		t.Errorf("rows lost in routing: %d", total)
	}
}

func TestRoutingIsByKeyRange(t *testing.T) {
	st, err := New("t", testSchema(), 0, []int64{100}, 10, engine.DefaultSystemConfig())
	if err != nil {
		t.Fatal(err)
	}
	_ = st.Insert(table.I64(99), table.I32(0), table.F64(0), table.Str("x"))
	_ = st.Insert(table.I64(100), table.I32(0), table.F64(0), table.Str("x"))
	rows := st.ShardRows()
	if rows[0] != 1 || rows[1] != 1 {
		t.Errorf("routing wrong: %v", rows)
	}
}

func TestScanMatchesUnsharded(t *testing.T) {
	st := newSharded(t, 1200)
	q := engine.Query{
		Projection: []int{0, 2},
		Selection:  expr.Conjunction{{Col: 1, Op: expr.Lt, Operand: table.I32(4)}},
	}
	got, err := st.Execute(q)
	if err != nil {
		t.Fatal(err)
	}

	// Unsharded reference: one table with all the rows.
	sys := engine.MustSystem(engine.DefaultSystemConfig())
	ref := table.MustNew("ref", testSchema(),
		table.WithCapacity(1200), table.WithBaseAddr(sys.Arena.Alloc(int64(1200*testSchema().RowBytes()))))
	rng := rand.New(rand.NewSource(23))
	tags := []string{"a", "b"}
	for i := 0; i < 1200; i++ {
		ref.MustAppend(1, table.I64(int64(i%1000)), table.I32(int32(i%7)), table.F64(float64(i)), table.Str(tags[rng.Intn(2)]))
	}
	want, err := (&engine.RMEngine{Tbl: ref, Sys: sys, PushSelection: true}).Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if got.RowsPassed != want.RowsPassed || got.Checksum != want.Checksum {
		t.Errorf("sharded scan diverges: %d/%#x vs %d/%#x",
			got.RowsPassed, got.Checksum, want.RowsPassed, want.Checksum)
	}
	if got.ShardsTouched != 4 {
		t.Errorf("unpruned scan touched %d shards", got.ShardsTouched)
	}
}

func TestPruning(t *testing.T) {
	st := newSharded(t, 2000)
	q := engine.Query{
		Projection: []int{0},
		Selection: expr.Conjunction{
			{Col: 0, Op: expr.Ge, Operand: table.I64(300)},
			{Col: 0, Op: expr.Lt, Operand: table.I64(400)},
		},
	}
	res, err := st.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.ShardsTouched != 1 {
		t.Errorf("key range [300,400) touched %d shards, want 1", res.ShardsTouched)
	}
	if res.RowsPassed == 0 {
		t.Error("pruned query found nothing")
	}

	full, err := st.Execute(engine.Query{Projection: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles >= full.Cycles {
		t.Errorf("pruned query (%d cycles) not cheaper than full scan (%d)", res.Cycles, full.Cycles)
	}
}

func TestPruneToNothing(t *testing.T) {
	st := newSharded(t, 100)
	q := engine.Query{
		Projection: []int{0},
		Selection: expr.Conjunction{
			{Col: 0, Op: expr.Gt, Operand: table.I64(500)},
			{Col: 0, Op: expr.Lt, Operand: table.I64(400)},
		},
	}
	res, err := st.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.ShardsTouched != 0 || res.RowsPassed != 0 {
		t.Errorf("contradictory range executed: %+v", res)
	}
}

func TestShardedAggregation(t *testing.T) {
	st := newSharded(t, 1000)
	q := engine.Query{
		Aggregates: []engine.AggTerm{
			{Kind: expr.Count},
			{Kind: expr.Sum, Arg: expr.ColRef{Col: 2}},
			{Kind: expr.Min, Arg: expr.ColRef{Col: 2}},
			{Kind: expr.Max, Arg: expr.ColRef{Col: 2}},
		},
	}
	res, err := st.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Aggs[0].Int != 1000 {
		t.Errorf("COUNT = %s", res.Aggs[0])
	}
	// Sum of 0..999 = 499500.
	if res.Aggs[1].Float != 499500 {
		t.Errorf("SUM = %s", res.Aggs[1])
	}
	if res.Aggs[2].Float != 0 || res.Aggs[3].Float != 999 {
		t.Errorf("MIN/MAX = %s/%s", res.Aggs[2], res.Aggs[3])
	}
}

func TestShardedGroupBy(t *testing.T) {
	st := newSharded(t, 1400)
	q := engine.Query{
		GroupBy:    []int{1},
		Aggregates: []engine.AggTerm{{Kind: expr.Count}},
	}
	res, err := st.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 7 {
		t.Fatalf("groups = %d, want 7", len(res.Groups))
	}
	var total int64
	for _, g := range res.Groups {
		total += g.Count
		if g.Count != 200 {
			t.Errorf("group %s count = %d, want 200", g.Key[0], g.Count)
		}
	}
	if total != 1400 {
		t.Errorf("grouped counts sum to %d", total)
	}
}

func TestAvgRejected(t *testing.T) {
	st := newSharded(t, 10)
	q := engine.Query{Aggregates: []engine.AggTerm{{Kind: expr.Avg, Arg: expr.ColRef{Col: 2}}}}
	if _, err := st.Execute(q); err == nil {
		t.Error("AVG accepted; it cannot merge from per-shard finals")
	}
}

func TestNewValidation(t *testing.T) {
	cfg := engine.DefaultSystemConfig()
	if _, err := New("t", nil, 0, nil, 10, cfg); err == nil {
		t.Error("nil schema accepted")
	}
	if _, err := New("t", testSchema(), 3, nil, 10, cfg); err == nil {
		t.Error("CHAR key accepted")
	}
	if _, err := New("t", testSchema(), 0, []int64{5, 5}, 10, cfg); err == nil {
		t.Error("non-ascending bounds accepted")
	}
	if _, err := New("t", testSchema(), 0, nil, 0, cfg); err == nil {
		t.Error("zero capacity accepted")
	}
	st, err := New("t", testSchema(), 0, nil, 10, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumShards() != 1 {
		t.Errorf("no bounds should mean one shard, got %d", st.NumShards())
	}
	if err := st.Insert(table.I64(1)); err == nil {
		t.Error("short row accepted")
	}
}

// TestShardedEqualsUnshardedProperty: for random queries (projection,
// selection, plain aggregation), scatter/gather over shards produces
// exactly the single-table result.
func TestShardedEqualsUnshardedProperty(t *testing.T) {
	const rows = 600
	st := newSharded(t, rows)
	sys := engine.MustSystem(engine.DefaultSystemConfig())
	ref := table.MustNew("ref", testSchema(),
		table.WithCapacity(rows), table.WithBaseAddr(sys.Arena.Alloc(int64(rows*testSchema().RowBytes()))))
	rng := rand.New(rand.NewSource(23))
	tags := []string{"a", "b"}
	for i := 0; i < rows; i++ {
		ref.MustAppend(1, table.I64(int64(i%1000)), table.I32(int32(i%7)), table.F64(float64(i)), table.Str(tags[rng.Intn(2)]))
	}

	qrng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		var q engine.Query
		if qrng.Intn(2) == 0 {
			q.Projection = []int{qrng.Intn(3)}
		} else {
			q.Aggregates = []engine.AggTerm{
				{Kind: expr.Count},
				{Kind: expr.Sum, Arg: expr.ColRef{Col: 2}},
			}
		}
		for p := 0; p < qrng.Intn(3); p++ {
			col := qrng.Intn(3)
			var operand table.Value
			switch col {
			case 0:
				operand = table.I64(int64(qrng.Intn(1000)))
			case 1:
				operand = table.I32(int32(qrng.Intn(7)))
			default:
				operand = table.F64(float64(qrng.Intn(600)))
			}
			q.Selection = append(q.Selection, expr.Predicate{
				Col: col, Op: expr.CmpOp(qrng.Intn(6)), Operand: operand,
			})
		}
		got, err := st.Execute(q)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sys.ResetState()
		want, err := (&engine.RMEngine{Tbl: ref, Sys: sys, PushSelection: true}).Execute(q)
		if err != nil {
			t.Fatalf("trial %d ref: %v", trial, err)
		}
		if got.RowsPassed != want.RowsPassed || got.Checksum != want.Checksum {
			t.Fatalf("trial %d (%+v): sharded %d/%#x vs single %d/%#x",
				trial, q, got.RowsPassed, got.Checksum, want.RowsPassed, want.Checksum)
		}
		if len(q.Aggregates) > 0 {
			for i := range q.Aggregates {
				if !got.Aggs[i].Equal(want.Aggs[i]) {
					// SUM over shards adds in a different order; allow tiny drift.
					if got.Aggs[i].Type == want.Aggs[i].Type && got.Aggs[i].Type == geometry.Float64 {
						d := got.Aggs[i].Float - want.Aggs[i].Float
						if d < 1e-6 && d > -1e-6 {
							continue
						}
					}
					t.Fatalf("trial %d agg %d: %s vs %s", trial, i, got.Aggs[i], want.Aggs[i])
				}
			}
		}
	}
}

// TestMinMaxSkipEmptyShards: a shard that is touched but passes zero rows
// reports MIN/MAX as F64(0) (the engines' zero-row convention); the merge
// must skip those partials or a spurious 0 beats all-positive minima and
// all-negative maxima.
func TestMinMaxSkipEmptyShards(t *testing.T) {
	st, err := New("t", testSchema(), 0, []int64{250, 500, 750}, 100, engine.DefaultSystemConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Shard 0: amounts 40..49 — none qualify below.
	for i := 0; i < 10; i++ {
		if err := st.Insert(table.I64(int64(i)), table.I32(0), table.F64(float64(40+i)), table.Str("a")); err != nil {
			t.Fatal(err)
		}
	}
	// Shard 2: amounts 500..509 — all qualify.
	for i := 0; i < 10; i++ {
		if err := st.Insert(table.I64(int64(500+i)), table.I32(0), table.F64(float64(500+i)), table.Str("b")); err != nil {
			t.Fatal(err)
		}
	}

	q := engine.Query{
		Selection: expr.Conjunction{{Col: 2, Op: expr.Ge, Operand: table.F64(100)}},
		Aggregates: []engine.AggTerm{
			{Kind: expr.Min, Arg: expr.ColRef{Col: 2}},
			{Kind: expr.Max, Arg: expr.ColRef{Col: 2}},
		},
	}
	res, err := st.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.ShardsTouched != 4 {
		t.Fatalf("touched %d shards, want all 4 (no key predicate)", res.ShardsTouched)
	}
	if res.Aggs[0].Float != 500 {
		t.Errorf("MIN = %s, want 500 (zero-row shard must not contribute 0)", res.Aggs[0])
	}
	if res.Aggs[1].Float != 509 {
		t.Errorf("MAX = %s, want 509", res.Aggs[1])
	}

	// The mirror case: all qualifying values negative, MAX must not be 0.
	st2, err := New("t2", testSchema(), 0, []int64{250}, 100, engine.DefaultSystemConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := st2.Insert(table.I64(int64(i)), table.I32(0), table.F64(float64(-50+i)), table.Str("a")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if err := st2.Insert(table.I64(int64(300+i)), table.I32(0), table.F64(float64(100+i)), table.Str("b")); err != nil {
			t.Fatal(err)
		}
	}
	q2 := engine.Query{
		Selection:  expr.Conjunction{{Col: 2, Op: expr.Lt, Operand: table.F64(0)}},
		Aggregates: []engine.AggTerm{{Kind: expr.Max, Arg: expr.ColRef{Col: 2}}},
	}
	res2, err := st2.Execute(q2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Aggs[0].Float != -41 {
		t.Errorf("MAX over negatives = %s, want -41", res2.Aggs[0])
	}
}

// TestAggregatesOnFullyPrunedRange: a key range that prunes every shard must
// return the same aggregate values as a single-node run whose selection
// passes zero rows — COUNT=0 and SUM/MIN/MAX=0.0, not nil.
func TestAggregatesOnFullyPrunedRange(t *testing.T) {
	st := newSharded(t, 200)
	q := engine.Query{
		Selection: expr.Conjunction{
			{Col: 0, Op: expr.Gt, Operand: table.I64(500)},
			{Col: 0, Op: expr.Lt, Operand: table.I64(400)},
		},
		Aggregates: []engine.AggTerm{
			{Kind: expr.Count},
			{Kind: expr.Sum, Arg: expr.ColRef{Col: 2}},
			{Kind: expr.Min, Arg: expr.ColRef{Col: 2}},
			{Kind: expr.Max, Arg: expr.ColRef{Col: 2}},
		},
	}
	res, err := st.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.ShardsTouched != 0 {
		t.Fatalf("contradictory range touched %d shards", res.ShardsTouched)
	}

	// Single-node reference: same query over the same rows in one table.
	sys := engine.MustSystem(engine.DefaultSystemConfig())
	ref := table.MustNew("ref", testSchema(),
		table.WithCapacity(200), table.WithBaseAddr(sys.Arena.Alloc(int64(200*testSchema().RowBytes()))))
	rng := rand.New(rand.NewSource(23))
	tags := []string{"a", "b"}
	for i := 0; i < 200; i++ {
		ref.MustAppend(1, table.I64(int64(i%1000)), table.I32(int32(i%7)), table.F64(float64(i)), table.Str(tags[rng.Intn(2)]))
	}
	want, err := (&engine.RMEngine{Tbl: ref, Sys: sys, PushSelection: true}).Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Aggs) != len(want.Aggs) {
		t.Fatalf("aggregate count %d vs single-node %d", len(res.Aggs), len(want.Aggs))
	}
	for i := range want.Aggs {
		if !res.Aggs[i].Equal(want.Aggs[i]) {
			t.Errorf("aggregate %d: sharded %s vs single-node %s", i, res.Aggs[i], want.Aggs[i])
		}
	}
}

// TestWorkerCountEquivalence: scatter/gather results are identical for
// every pool size, and the modeled makespan never grows with more workers.
func TestWorkerCountEquivalence(t *testing.T) {
	st := newSharded(t, 1600)
	queries := []engine.Query{
		{Projection: []int{0, 2}},
		{Aggregates: []engine.AggTerm{
			{Kind: expr.Count},
			{Kind: expr.Sum, Arg: expr.ColRef{Col: 2}},
			{Kind: expr.Min, Arg: expr.ColRef{Col: 2}},
			{Kind: expr.Max, Arg: expr.ColRef{Col: 2}},
		}},
		{GroupBy: []int{1}, Aggregates: []engine.AggTerm{{Kind: expr.Count}}},
	}
	for qi, q := range queries {
		var base *Result
		var prevCycles uint64
		for _, workers := range []int{1, 2, 4, 8} {
			st.Workers = workers
			res, err := st.Execute(q)
			if err != nil {
				t.Fatalf("query %d workers %d: %v", qi, workers, err)
			}
			if base == nil {
				base, prevCycles = res, res.Cycles
				continue
			}
			if res.RowsPassed != base.RowsPassed || res.Checksum != base.Checksum {
				t.Fatalf("query %d: workers=%d changed rows/checksum: %d/%#x vs %d/%#x",
					qi, workers, res.RowsPassed, res.Checksum, base.RowsPassed, base.Checksum)
			}
			for i := range base.Aggs {
				if !res.Aggs[i].Equal(base.Aggs[i]) {
					t.Fatalf("query %d: workers=%d changed aggregate %d: %s vs %s",
						qi, workers, i, res.Aggs[i], base.Aggs[i])
				}
			}
			if len(res.Groups) != len(base.Groups) {
				t.Fatalf("query %d: workers=%d changed group count", qi, workers)
			}
			for g := range base.Groups {
				if res.Groups[g].Count != base.Groups[g].Count || !res.Groups[g].Key[0].Equal(base.Groups[g].Key[0]) {
					t.Fatalf("query %d: workers=%d changed group %d", qi, workers, g)
				}
			}
			if res.Cycles > prevCycles {
				t.Fatalf("query %d: modeled cycles grew from %d to %d at workers=%d",
					qi, prevCycles, res.Cycles, workers)
			}
			prevCycles = res.Cycles
		}
		st.Workers = 0
	}
}
