package geometry

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Column{Name: "key", Type: Int64, Width: 8},
		Column{Name: "name", Type: Char, Width: 12},
		Column{Name: "qty", Type: Int32, Width: 4},
		Column{Name: "price", Type: Float64, Width: 8},
		Column{Name: "day", Type: Date, Width: 4},
	)
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	return s
}

func TestSchemaLayout(t *testing.T) {
	s := testSchema(t)
	if got, want := s.RowBytes(), 8+12+4+8+4; got != want {
		t.Errorf("RowBytes = %d, want %d", got, want)
	}
	wantOffsets := []int{0, 8, 20, 24, 32}
	for i, want := range wantOffsets {
		if got := s.Offset(i); got != want {
			t.Errorf("Offset(%d) = %d, want %d", i, got, want)
		}
	}
	if got := s.NumColumns(); got != 5 {
		t.Errorf("NumColumns = %d, want 5", got)
	}
}

func TestSchemaLookup(t *testing.T) {
	s := testSchema(t)
	for i, name := range []string{"key", "name", "qty", "price", "day"} {
		got, ok := s.Lookup(name)
		if !ok || got != i {
			t.Errorf("Lookup(%q) = %d,%v want %d,true", name, got, ok, i)
		}
	}
	if _, ok := s.Lookup("nope"); ok {
		t.Error("Lookup of unknown column succeeded")
	}
	if got := s.ColumnNames(); !reflect.DeepEqual(got, []string{"key", "name", "qty", "price", "day"}) {
		t.Errorf("ColumnNames = %v", got)
	}
}

func TestSchemaValidation(t *testing.T) {
	cases := []struct {
		name string
		cols []Column
	}{
		{"empty", nil},
		{"empty name", []Column{{Name: "", Type: Int64, Width: 8}}},
		{"wrong int64 width", []Column{{Name: "a", Type: Int64, Width: 4}}},
		{"wrong int32 width", []Column{{Name: "a", Type: Int32, Width: 8}}},
		{"wrong float width", []Column{{Name: "a", Type: Float64, Width: 4}}},
		{"zero char width", []Column{{Name: "a", Type: Char, Width: 0}}},
		{"duplicate names", []Column{{Name: "a", Type: Int64, Width: 8}, {Name: "a", Type: Int32, Width: 4}}},
	}
	for _, tc := range cases {
		if _, err := NewSchema(tc.cols...); err == nil {
			t.Errorf("%s: NewSchema accepted invalid input", tc.name)
		}
	}
}

func TestColumnTypeStrings(t *testing.T) {
	pairs := map[ColumnType]string{
		Int64: "BIGINT", Int32: "INT", Float64: "DOUBLE", Char: "CHAR", Date: "DATE",
	}
	for ct, want := range pairs {
		if got := ct.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", uint8(ct), got, want)
		}
	}
	if got := ColumnType(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown type string = %q", got)
	}
}

func TestGeometryBasics(t *testing.T) {
	s := testSchema(t)
	g, err := NewGeometry(s, 0, 3)
	if err != nil {
		t.Fatalf("NewGeometry: %v", err)
	}
	if got := g.PackedWidth(); got != 16 {
		t.Errorf("PackedWidth = %d, want 16", got)
	}
	if got := g.PackedOffset(1); got != 8 {
		t.Errorf("PackedOffset(1) = %d, want 8", got)
	}
	if !g.Contains(3) || g.Contains(1) {
		t.Error("Contains wrong")
	}
	if got := g.Position(3); got != 1 {
		t.Errorf("Position(3) = %d, want 1", got)
	}
	if got := g.Position(2); got != -1 {
		t.Errorf("Position(2) = %d, want -1", got)
	}
	if got := g.Selectivity(); got != 16.0/36.0 {
		t.Errorf("Selectivity = %v, want %v", got, 16.0/36.0)
	}
	if got := g.String(); got != "(key, price)" {
		t.Errorf("String = %q", got)
	}
}

func TestGeometryByName(t *testing.T) {
	s := testSchema(t)
	g, err := NewGeometryByName(s, "price", "key")
	if err != nil {
		t.Fatalf("NewGeometryByName: %v", err)
	}
	if !reflect.DeepEqual(g.Columns(), []int{3, 0}) {
		t.Errorf("Columns = %v, want [3 0]", g.Columns())
	}
	if _, err := NewGeometryByName(s, "missing"); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestGeometryValidation(t *testing.T) {
	s := testSchema(t)
	if _, err := NewGeometry(nil, 0); err == nil {
		t.Error("nil schema accepted")
	}
	if _, err := NewGeometry(s); err == nil {
		t.Error("empty column group accepted")
	}
	if _, err := NewGeometry(s, 5); err == nil {
		t.Error("out-of-range column accepted")
	}
	if _, err := NewGeometry(s, -1); err == nil {
		t.Error("negative column accepted")
	}
	if _, err := NewGeometry(s, 1, 1); err == nil {
		t.Error("duplicate column accepted")
	}
}

func TestStridesMergeAdjacent(t *testing.T) {
	s := testSchema(t)
	// Columns 0 and 1 are physically adjacent (offsets 0 and 8): one stride.
	g := MustGeometry(s, 1, 0) // order must not matter for strides
	strides := g.Strides()
	if len(strides) != 1 {
		t.Fatalf("adjacent columns produced %d strides: %v", len(strides), strides)
	}
	if strides[0] != (Stride{Offset: 0, Width: 20}) {
		t.Errorf("merged stride = %+v", strides[0])
	}

	// Columns 0 and 3 are not adjacent: two strides.
	g2 := MustGeometry(s, 0, 3)
	if got := g2.Strides(); len(got) != 2 {
		t.Errorf("non-adjacent columns produced %d strides: %v", len(got), got)
	}
}

// TestStridesCoverGeometryProperty: for random schemas and geometries, the
// merged strides must cover exactly the selected columns' byte ranges —
// every selected byte in some stride, no stride byte outside a selected
// column, and strides sorted, disjoint, and non-adjacent.
func TestStridesCoverGeometryProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nCols := 1 + rng.Intn(12)
		cols := make([]Column, nCols)
		for i := range cols {
			switch rng.Intn(4) {
			case 0:
				cols[i] = Column{Name: colName(i), Type: Int64, Width: 8}
			case 1:
				cols[i] = Column{Name: colName(i), Type: Int32, Width: 4}
			case 2:
				cols[i] = Column{Name: colName(i), Type: Float64, Width: 8}
			default:
				cols[i] = Column{Name: colName(i), Type: Char, Width: 1 + rng.Intn(20)}
			}
		}
		s, err := NewSchema(cols...)
		if err != nil {
			return false
		}
		// Random non-empty subset.
		var pick []int
		for i := range cols {
			if rng.Intn(2) == 0 {
				pick = append(pick, i)
			}
		}
		if len(pick) == 0 {
			pick = []int{rng.Intn(nCols)}
		}
		rng.Shuffle(len(pick), func(i, j int) { pick[i], pick[j] = pick[j], pick[i] })
		g, err := NewGeometry(s, pick...)
		if err != nil {
			return false
		}

		selected := make([]bool, s.RowBytes())
		for _, c := range pick {
			for b := s.Offset(c); b < s.Offset(c)+s.Column(c).Width; b++ {
				selected[b] = true
			}
		}
		covered := make([]bool, s.RowBytes())
		prevEnd := -1
		for _, st := range g.Strides() {
			if st.Offset <= prevEnd {
				return false // unsorted or overlapping/adjacent
			}
			prevEnd = st.Offset + st.Width - 1
			for b := st.Offset; b < st.Offset+st.Width; b++ {
				if b >= len(selected) || !selected[b] || covered[b] {
					return false
				}
				covered[b] = true
			}
		}
		for b, want := range selected {
			if covered[b] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func colName(i int) string {
	return string(rune('a'+i%26)) + string(rune('0'+i/26))
}

// TestPackedOffsetsProperty: packed offsets are the prefix sums of the
// selected columns' widths, and the last offset plus width equals
// PackedWidth.
func TestPackedOffsetsProperty(t *testing.T) {
	s := testSchema(t)
	check := func(a, b, c uint8) bool {
		idx := []int{int(a) % 5, int(b) % 5, int(c) % 5}
		seen := map[int]bool{}
		var cols []int
		for _, i := range idx {
			if !seen[i] {
				seen[i] = true
				cols = append(cols, i)
			}
		}
		g, err := NewGeometry(s, cols...)
		if err != nil {
			return false
		}
		sum := 0
		for i, c := range cols {
			if g.PackedOffset(i) != sum {
				return false
			}
			sum += s.Column(c).Width
		}
		return sum == g.PackedWidth()
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}
