// Package geometry describes data geometries: arbitrary subsets of a
// relational table expressed as byte offsets and widths within a fixed-width
// row. A geometry is the contract between the query layer and Relational
// Memory — it tells the fabric exactly which bytes of every row must be
// packed densely and shipped to the CPU, mirroring the paper's "ephemeral
// columns" abstraction (Relational Fabric, ICDE 2023, §II).
package geometry

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ColumnType enumerates the fixed-width value types supported by base tables.
type ColumnType uint8

const (
	// Int64 is an 8-byte signed integer column.
	Int64 ColumnType = iota
	// Int32 is a 4-byte signed integer column.
	Int32
	// Float64 is an 8-byte IEEE-754 column.
	Float64
	// Char is a fixed-width byte-string column; its width is per-column.
	Char
	// Date is a 4-byte day number (days since 1970-01-01).
	Date
)

// String returns the SQL-ish name of the type.
func (t ColumnType) String() string {
	switch t {
	case Int64:
		return "BIGINT"
	case Int32:
		return "INT"
	case Float64:
		return "DOUBLE"
	case Char:
		return "CHAR"
	case Date:
		return "DATE"
	default:
		return fmt.Sprintf("ColumnType(%d)", uint8(t))
	}
}

// FixedWidth returns the byte width of the type, or 0 when the width is
// per-column (Char).
func (t ColumnType) FixedWidth() int {
	switch t {
	case Int64, Float64:
		return 8
	case Int32, Date:
		return 4
	default:
		return 0
	}
}

// Column describes one attribute of a relational schema.
type Column struct {
	Name  string
	Type  ColumnType
	Width int // byte width; for Char columns, the declared length
}

// Validate reports whether the column definition is internally consistent.
func (c Column) Validate() error {
	if c.Name == "" {
		return errors.New("geometry: column has empty name")
	}
	if w := c.Type.FixedWidth(); w != 0 && c.Width != w {
		return fmt.Errorf("geometry: column %q: type %s requires width %d, got %d", c.Name, c.Type, w, c.Width)
	}
	if c.Width <= 0 {
		return fmt.Errorf("geometry: column %q has non-positive width %d", c.Name, c.Width)
	}
	return nil
}

// Schema is an ordered list of columns plus the derived physical row layout.
// The zero value is an empty schema; build one with NewSchema.
type Schema struct {
	cols     []Column
	offsets  []int
	byName   map[string]int
	rowBytes int
}

// NewSchema lays out the given columns back to back in declaration order and
// returns the resulting schema. Offsets are byte positions within a row.
func NewSchema(cols ...Column) (*Schema, error) {
	if len(cols) == 0 {
		return nil, errors.New("geometry: schema needs at least one column")
	}
	s := &Schema{
		cols:    make([]Column, len(cols)),
		offsets: make([]int, len(cols)),
		byName:  make(map[string]int, len(cols)),
	}
	off := 0
	for i, c := range cols {
		if err := c.Validate(); err != nil {
			return nil, err
		}
		if _, dup := s.byName[c.Name]; dup {
			return nil, fmt.Errorf("geometry: duplicate column name %q", c.Name)
		}
		s.cols[i] = c
		s.offsets[i] = off
		s.byName[c.Name] = i
		off += c.Width
	}
	s.rowBytes = off
	return s, nil
}

// MustSchema is NewSchema that panics on error; for tests and fixtures.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// NumColumns returns the number of columns in the schema.
func (s *Schema) NumColumns() int { return len(s.cols) }

// RowBytes returns the physical width of one row in bytes.
func (s *Schema) RowBytes() int { return s.rowBytes }

// Column returns the i-th column definition.
func (s *Schema) Column(i int) Column { return s.cols[i] }

// Offset returns the byte offset of the i-th column within a row.
func (s *Schema) Offset(i int) int { return s.offsets[i] }

// Lookup returns the index of the named column.
func (s *Schema) Lookup(name string) (int, bool) {
	i, ok := s.byName[name]
	return i, ok
}

// ColumnNames returns the names in declaration order.
func (s *Schema) ColumnNames() []string {
	names := make([]string, len(s.cols))
	for i, c := range s.cols {
		names[i] = c.Name
	}
	return names
}

// String renders the schema as a CREATE TABLE-ish column list.
func (s *Schema) String() string {
	var b strings.Builder
	for i, c := range s.cols {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s(%d)@%d", c.Name, c.Type, c.Width, s.offsets[i])
	}
	return b.String()
}

// Geometry identifies an arbitrary column group of a schema: the ordered set
// of column indices an ephemeral variable exposes. Order matters — it is the
// order in which the fabric packs the bytes of each qualifying row.
type Geometry struct {
	schema *Schema
	cols   []int
	width  int // packed bytes per row
}

// NewGeometry builds a geometry over schema from column indices.
// Indices must be valid and distinct; order is preserved.
func NewGeometry(schema *Schema, cols ...int) (*Geometry, error) {
	if schema == nil {
		return nil, errors.New("geometry: nil schema")
	}
	if len(cols) == 0 {
		return nil, errors.New("geometry: empty column group")
	}
	seen := make(map[int]bool, len(cols))
	g := &Geometry{schema: schema, cols: make([]int, len(cols))}
	for i, c := range cols {
		if c < 0 || c >= schema.NumColumns() {
			return nil, fmt.Errorf("geometry: column index %d out of range [0,%d)", c, schema.NumColumns())
		}
		if seen[c] {
			return nil, fmt.Errorf("geometry: duplicate column index %d", c)
		}
		seen[c] = true
		g.cols[i] = c
		g.width += schema.Column(c).Width
	}
	return g, nil
}

// NewGeometryByName builds a geometry from column names.
func NewGeometryByName(schema *Schema, names ...string) (*Geometry, error) {
	idx := make([]int, len(names))
	for i, n := range names {
		c, ok := schema.Lookup(n)
		if !ok {
			return nil, fmt.Errorf("geometry: unknown column %q", n)
		}
		idx[i] = c
	}
	return NewGeometry(schema, idx...)
}

// MustGeometry is NewGeometry that panics on error; for tests and fixtures.
func MustGeometry(schema *Schema, cols ...int) *Geometry {
	g, err := NewGeometry(schema, cols...)
	if err != nil {
		panic(err)
	}
	return g
}

// Schema returns the schema the geometry selects from.
func (g *Geometry) Schema() *Schema { return g.schema }

// Columns returns the selected column indices in pack order.
// The caller must not modify the returned slice.
func (g *Geometry) Columns() []int { return g.cols }

// NumColumns returns how many columns the geometry selects.
func (g *Geometry) NumColumns() int { return len(g.cols) }

// PackedWidth returns the bytes one row occupies after fabric packing.
func (g *Geometry) PackedWidth() int { return g.width }

// PackedOffset returns the byte offset of the i-th selected column within a
// packed row.
func (g *Geometry) PackedOffset(i int) int {
	off := 0
	for j := 0; j < i; j++ {
		off += g.schema.Column(g.cols[j]).Width
	}
	return off
}

// Contains reports whether the geometry selects schema column c.
func (g *Geometry) Contains(c int) bool {
	for _, x := range g.cols {
		if x == c {
			return true
		}
	}
	return false
}

// Position returns the pack-order position of schema column c, or -1.
func (g *Geometry) Position(c int) int {
	for i, x := range g.cols {
		if x == c {
			return i
		}
	}
	return -1
}

// Selectivity returns the fraction of each base row the geometry ships:
// packed width over full row width. This is the data-movement reduction the
// fabric delivers for a pure projection.
func (g *Geometry) Selectivity() float64 {
	return float64(g.width) / float64(g.schema.RowBytes())
}

// Strides returns the per-row byte ranges (offset, width) the fabric must
// gather, merged so that adjacent selected columns become a single range.
// The fabric hardware uses these as its access-stride program (§IV-A:
// "receives the intended access stride of the query").
func (g *Geometry) Strides() []Stride {
	sorted := append([]int(nil), g.cols...)
	sort.Ints(sorted)
	var out []Stride
	for _, c := range sorted {
		off := g.schema.Offset(c)
		w := g.schema.Column(c).Width
		if n := len(out); n > 0 && out[n-1].Offset+out[n-1].Width == off {
			out[n-1].Width += w
			continue
		}
		out = append(out, Stride{Offset: off, Width: w})
	}
	return out
}

// String renders the geometry as its column-name list.
func (g *Geometry) String() string {
	names := make([]string, len(g.cols))
	for i, c := range g.cols {
		names[i] = g.schema.Column(c).Name
	}
	return "(" + strings.Join(names, ", ") + ")"
}

// Stride is one contiguous byte range within a row that the fabric gathers.
type Stride struct {
	Offset int
	Width  int
}
