package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// The Write* formatters are what rfbench prints and EXPERIMENTS.md records;
// exercise them against real (small) runs.
func TestWriteTableFormatters(t *testing.T) {
	opt := quickOptions()
	opt.MicroRows = 8_000

	var buf bytes.Buffer
	f5, err := Figure5(opt)
	if err != nil {
		t.Fatal(err)
	}
	f5.WriteTable(&buf)
	if !strings.Contains(buf.String(), "projectivity") || strings.Count(buf.String(), "\n") < 12 {
		t.Errorf("figure 5 table malformed:\n%s", buf.String())
	}

	buf.Reset()
	f7, err := Figure7(opt, Q6)
	if err != nil {
		t.Fatal(err)
	}
	f7.WriteTable(&buf)
	if !strings.Contains(buf.String(), "Q6") || !strings.Contains(buf.String(), "MB") {
		t.Errorf("figure 7 table malformed:\n%s", buf.String())
	}

	buf.Reset()
	abl, err := AblationMVCC(opt, 2_000)
	if err != nil {
		t.Fatal(err)
	}
	abl.WriteTable(&buf)
	if !strings.Contains(buf.String(), "ABL-MVCC") {
		t.Errorf("ablation table malformed:\n%s", buf.String())
	}

	buf.Reset()
	comp, err := AblationCompression(opt, 2_000)
	if err != nil {
		t.Fatal(err)
	}
	comp.WriteTable(&buf)
	if !strings.Contains(buf.String(), "dictionary(l_shipmode)") {
		t.Errorf("compression table malformed:\n%s", buf.String())
	}

	buf.Reset()
	st, err := AblationStorage(opt, 1_000)
	if err != nil {
		t.Fatal(err)
	}
	st.WriteTable(&buf)
	if !strings.Contains(buf.String(), "near-storage") {
		t.Errorf("storage table malformed:\n%s", buf.String())
	}
}

func TestPaperScaleOptionsShape(t *testing.T) {
	o := PaperScaleOptions()
	if o.MicroRows <= DefaultOptions().MicroRows {
		t.Error("paper scale not larger than default")
	}
	if o.Fig7TargetMB[len(o.Fig7TargetMB)-1] != 128 {
		t.Errorf("paper scale tops out at %d MiB, want 128", o.Fig7TargetMB[len(o.Fig7TargetMB)-1])
	}
}

func TestFigure6GridSymmetrySanity(t *testing.T) {
	opt := quickOptions()
	opt.MicroRows = 8_000
	r, err := Figure6(opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	r.WriteTable(&buf)
	if !strings.Contains(buf.String(), "Figure 6a") || !strings.Contains(buf.String(), "Figure 6b") {
		t.Error("grid output missing a heatmap")
	}
	// Raw cycles are recorded for every cell.
	for s := 0; s < 10; s++ {
		for p := 0; p < 10; p++ {
			if r.CyclesRM[s][p] == 0 || r.CyclesRow[s][p] == 0 || r.CyclesCol[s][p] == 0 {
				t.Fatalf("cell (%d,%d) has zero cycles", s+1, p+1)
			}
		}
	}
}
