package experiments

import "math/rand"

// newRand returns the deterministic source all experiment generators share.
func newRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
