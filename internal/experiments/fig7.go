package experiments

import (
	"fmt"
	"io"

	"rfabric/internal/colstore"
	"rfabric/internal/engine"
	"rfabric/internal/table"
	"rfabric/internal/tpch"
)

// TPCHQuery selects which practical query a Figure 7 run executes.
type TPCHQuery int

// The two queries of Figure 7.
const (
	Q1 TPCHQuery = iota
	Q6
)

// String returns the query label.
func (q TPCHQuery) String() string {
	if q == Q1 {
		return "Q1"
	}
	return "Q6"
}

// Query returns the engine-level query definition.
func (q TPCHQuery) Query() engine.Query {
	if q == Q1 {
		return tpch.Q1()
	}
	return tpch.Q6()
}

// Fig7Point is one data size of the Figure 7 sweep.
type Fig7Point struct {
	TargetBytes int // bytes of the query's needed columns (paper's x label)
	TableBytes  int // total base-table bytes
	Rows        int
	Cycles      map[string]uint64
	RowsPassed  int64
}

// Fig7Result is the full sweep for one query.
type Fig7Result struct {
	Query  TPCHQuery
	Points []Fig7Point
}

// Figure7 reproduces the practical-query experiment (§V "RM Shows Stable
// Performance for Practical Queries"): TPC-H Q1 or Q6 over lineitem tables
// sized so the query's target columns occupy each entry of opt.Fig7TargetMB.
func Figure7(opt Options, which TPCHQuery) (*Fig7Result, error) {
	q := which.Query()
	res := &Fig7Result{Query: which}
	for _, mb := range opt.Fig7TargetMB {
		target := mb << 20
		rows := tpch.RowsForTargetBytes(q, target)
		pt, err := runFig7Point(opt, q, rows, target)
		if err != nil {
			return nil, fmt.Errorf("figure 7 %s target %d MiB: %w", which, mb, err)
		}
		res.Points = append(res.Points, *pt)
	}
	return res, nil
}

func runFig7Point(opt Options, q engine.Query, rows, target int) (*Fig7Point, error) {
	sys, err := engine.NewSystem(opt.System)
	if err != nil {
		return nil, err
	}
	sch := tpch.LineitemSchema()
	base := sys.Arena.Alloc(int64(rows * sch.RowBytes()))
	tbl, err := table.New("lineitem", sch, table.WithCapacity(rows), table.WithBaseAddr(base))
	if err != nil {
		return nil, err
	}
	if err := tpch.Generate(tbl, rows, opt.Seed); err != nil {
		return nil, err
	}
	store, err := colstore.FromTable(tbl, sys.Arena)
	if err != nil {
		return nil, err
	}
	f := &fixture{sys: sys, tbl: tbl, store: store}
	all, err := f.runAll(q)
	if err != nil {
		return nil, err
	}
	pt := &Fig7Point{
		TargetBytes: target,
		TableBytes:  tbl.SizeBytes(),
		Rows:        rows,
		Cycles:      map[string]uint64{},
		RowsPassed:  all["RM"].RowsPassed,
	}
	for name, r := range all {
		pt.Cycles[name] = r.Breakdown.TotalCycles
	}
	return pt, nil
}

// WriteTable renders the sweep like the paper's series.
func (r *Fig7Result) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "Figure 7 (%s) — execution cycles vs data size\n", r.Query)
	fmt.Fprintf(w, "%-10s %-10s %-10s %14s %14s %14s %10s\n",
		"target", "table", "rows", "ROW(cyc)", "COL(cyc)", "RM(cyc)", "passed")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%-10s %-10s %-10d %14d %14d %14d %10d\n",
			fmtMB(p.TargetBytes), fmtMB(p.TableBytes), p.Rows,
			p.Cycles["ROW"], p.Cycles["COL"], p.Cycles["RM"], p.RowsPassed)
	}
}

func fmtMB(b int) string {
	return fmt.Sprintf("%.0fMB", float64(b)/(1<<20))
}

// CheckShape verifies the paper's qualitative claims.
//
// Q6 (data-movement-bound): RM is fastest at every size, ROW slowest.
// Q1 (CPU-bound): the three engines stay within a 2x band, and RM is never
// slower than ROW.
func (r *Fig7Result) CheckShape() []string {
	var bad []string
	for _, p := range r.Points {
		row, col, rm := p.Cycles["ROW"], p.Cycles["COL"], p.Cycles["RM"]
		switch r.Query {
		case Q6:
			if rm >= col {
				bad = append(bad, fmt.Sprintf("%s target %s: RM (%d) not faster than COL (%d)", r.Query, fmtMB(p.TargetBytes), rm, col))
			}
			if col >= row {
				bad = append(bad, fmt.Sprintf("%s target %s: COL (%d) not faster than ROW (%d)", r.Query, fmtMB(p.TargetBytes), col, row))
			}
		case Q1:
			if rm > row {
				bad = append(bad, fmt.Sprintf("%s target %s: RM (%d) slower than ROW (%d)", r.Query, fmtMB(p.TargetBytes), rm, row))
			}
			hi, lo := row, row
			for _, c := range []uint64{col, rm} {
				if c > hi {
					hi = c
				}
				if c < lo {
					lo = c
				}
			}
			if float64(hi)/float64(lo) > 2.0 {
				bad = append(bad, fmt.Sprintf("%s target %s: engines spread %.2fx exceeds CPU-bound band", r.Query, fmtMB(p.TargetBytes), float64(hi)/float64(lo)))
			}
		}
	}
	return bad
}
