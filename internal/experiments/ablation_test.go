package experiments

import "testing"

func ablOptions() Options {
	opt := DefaultOptions()
	opt.MicroRows = 12_000
	return opt
}

func TestAblationPrefetchStreams(t *testing.T) {
	r, err := AblationPrefetchStreams(ablOptions(), []int{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	few := r.Points[0].Cycles["COL"]
	many := r.Points[1].Cycles["COL"]
	if few <= many {
		t.Errorf("COL with 2 streams (%d) should be slower than with 8 (%d)", few, many)
	}
}

func TestAblationFabricBuffer(t *testing.T) {
	opt := ablOptions()
	opt.MicroRows = 24_000 // enough rows that a small buffer needs many refills
	r, err := AblationFabricBuffer(opt, []int{64 << 10, 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	small := r.Points[0].Cycles["RM"]
	large := r.Points[1].Cycles["RM"]
	if small <= large {
		t.Errorf("32K buffer (%d) should cost more refills than 8M (%d)", small, large)
	}
}

func TestAblationFabricClock(t *testing.T) {
	r, err := AblationFabricClock(ablOptions(), []int{1, 30})
	if err != nil {
		t.Fatal(err)
	}
	fast := r.Points[0].Cycles["RM"]
	slow := r.Points[1].Cycles["RM"]
	if slow <= fast {
		t.Errorf("1:30 fabric (%d) should be slower than 1:1 (%d)", slow, fast)
	}
}

func TestAblationDRAMBanks(t *testing.T) {
	r, err := AblationDRAMBanks(ablOptions(), []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	one := r.Points[0].Cycles["COL"]
	eight := r.Points[1].Cycles["COL"]
	if one <= eight {
		t.Errorf("single-bank COL (%d) should be slower than 8-bank (%d)", one, eight)
	}
}

func TestAblationMVCC(t *testing.T) {
	r, err := AblationMVCC(ablOptions(), 8_000)
	if err != nil {
		t.Fatal(err)
	}
	sw := r.Points[0].Cycles["ROW"]
	hw := r.Points[1].Cycles["RM"]
	if hw >= sw {
		t.Errorf("hardware visibility filtering (%d) should beat software (%d)", hw, sw)
	}
}

func TestAblationPushdown(t *testing.T) {
	r, err := AblationPushdown(ablOptions(), 10_000)
	if err != nil {
		t.Fatal(err)
	}
	proj := r.Points[0]
	sel := r.Points[1]
	agg := r.Points[2]
	if sel.BytesToCPU >= proj.BytesToCPU {
		t.Errorf("selection pushdown shipped %d bytes, projection-only %d", sel.BytesToCPU, proj.BytesToCPU)
	}
	if agg.BytesToCPU >= sel.BytesToCPU {
		t.Errorf("aggregation pushdown shipped %d bytes, selection %d", agg.BytesToCPU, sel.BytesToCPU)
	}
	// Pushdown must never slow the query down.
	if agg.Cycles["RM"] > proj.Cycles["RM"]*11/10 {
		t.Errorf("aggregation pushdown (%d) slower than projection-only (%d)", agg.Cycles["RM"], proj.Cycles["RM"])
	}
}

func TestAblationIndex(t *testing.T) {
	r, err := AblationIndex(ablOptions(), 12_000)
	if err != nil {
		t.Fatal(err)
	}
	point := r.Points[0].Cycles["IDX"]
	rmScan := r.Points[2].Cycles["RM"]
	if point*50 > rmScan {
		t.Errorf("index point lookup (%d) not clearly below the RM scan (%d)", point, rmScan)
	}
	// At 1% range the index must win; the RM scan cost is flat.
	idx1 := r.Points[3].Cycles["IDX"]
	rm1 := r.Points[4].Cycles["RM"]
	if idx1 >= rm1 {
		t.Errorf("1%% range via index (%d) should beat the scan (%d)", idx1, rm1)
	}
}

func TestAblationRMC(t *testing.T) {
	r, err := AblationRMC(ablOptions(), 10_000)
	if err != nil {
		t.Fatal(err)
	}
	discrete := r.Points[0].Cycles["RM"]
	integrated := r.Points[1].Cycles["RM"]
	if integrated > discrete {
		t.Errorf("integrated controller (%d) slower than discrete PL (%d)", integrated, discrete)
	}
}

func TestAblationCompression(t *testing.T) {
	r, err := AblationCompression(ablOptions(), 5_000)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]CompressionPoint{}
	for _, p := range r.Points {
		byName[p.Codec] = p
	}
	if p := byName["dictionary(l_shipmode)"]; !p.RandomAccess || p.Ratio < 5 {
		t.Errorf("dictionary point: %+v", p)
	}
	if p := byName["delta(l_orderkey)"]; !p.RandomAccess || p.Ratio < 4 {
		t.Errorf("delta point: %+v", p)
	}
	if p := byName["rle(l_linestatus)"]; p.RandomAccess {
		t.Errorf("RLE reported fabric-compatible: %+v", p)
	}
	if p := byName["lz77(l_comment)"]; p.RandomAccess || p.Ratio < 2 {
		t.Errorf("lz77 point: %+v", p)
	}
}

func TestAblationStorage(t *testing.T) {
	r, err := AblationStorage(ablOptions(), 4_000)
	if err != nil {
		t.Fatal(err)
	}
	nearRaw := r.Points[0]
	hostRaw := r.Points[1]
	if nearRaw.Cycles >= hostRaw.Cycles {
		t.Errorf("near-storage (%d) not faster than host (%d)", nearRaw.Cycles, hostRaw.Cycles)
	}
	if nearRaw.BytesToHost >= hostRaw.BytesToHost {
		t.Errorf("near-storage shipped %d bytes, host %d", nearRaw.BytesToHost, hostRaw.BytesToHost)
	}
}
