package experiments

import (
	"fmt"
	"io"

	"rfabric/internal/engine"
	"rfabric/internal/expr"
	"rfabric/internal/table"
)

// fig6Cols is the schema width of the Figure 6 microbenchmark: wide enough
// for 10 projected plus 10 selection columns with no overlap.
const fig6Cols = 20

// Fig6Result is the full projection×selection grid. Indices are
// [selection-1][projection-1]; values are speedups of RM over the named
// baseline (baseline cycles / RM cycles, > 1 means RM is faster).
type Fig6Result struct {
	Rows       int
	VsRow      [10][10]float64
	VsCol      [10][10]float64
	CyclesRow  [10][10]uint64
	CyclesCol  [10][10]uint64
	CyclesRM   [10][10]uint64
	PassedRows int64
}

// Figure6 reproduces the projection-selection grid (§V "RM Offers Optimal
// Projection-Selection Queries"): queries project 1–10 columns and carry
// 1–10 single-column predicates. The predicates are satisfied by every row —
// the grid measures access-path cost as a function of how many columns a
// query touches, not selectivity.
func Figure6(opt Options) (*Fig6Result, error) {
	f, err := newMicroFixture(opt, fig6Cols, opt.MicroRows)
	if err != nil {
		return nil, err
	}
	res := &Fig6Result{Rows: opt.MicroRows}
	for s := 1; s <= 10; s++ {
		for p := 1; p <= 10; p++ {
			q := engine.Query{
				Projection: seq(0, p),
				Selection:  alwaysTrue(seq(10, s)),
			}
			all, err := f.runAll(q)
			if err != nil {
				return nil, fmt.Errorf("figure 6 p=%d s=%d: %w", p, s, err)
			}
			res.PassedRows = all["RM"].RowsPassed
			rm := all["RM"].Breakdown.TotalCycles
			res.CyclesRow[s-1][p-1] = all["ROW"].Breakdown.TotalCycles
			res.CyclesCol[s-1][p-1] = all["COL"].Breakdown.TotalCycles
			res.CyclesRM[s-1][p-1] = rm
			res.VsRow[s-1][p-1] = float64(all["ROW"].Breakdown.TotalCycles) / float64(rm)
			res.VsCol[s-1][p-1] = float64(all["COL"].Breakdown.TotalCycles) / float64(rm)
		}
	}
	return res, nil
}

// seq returns [start, start+n) column indices.
func seq(start, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = start + i
	}
	return out
}

// alwaysTrue builds one pass-everything predicate per column: values are in
// [0,1000), compared >= 0.
func alwaysTrue(cols []int) expr.Conjunction {
	preds := make(expr.Conjunction, len(cols))
	for i, c := range cols {
		preds[i] = expr.Predicate{Col: c, Op: expr.Ge, Operand: table.I32(0)}
	}
	return preds
}

// WriteTable renders both heatmaps in the paper's orientation (selection
// count on the y-axis growing upward, projection count on the x-axis).
func (r *Fig6Result) WriteTable(w io.Writer) {
	writeGrid(w, "Figure 6a — speedup of RM vs ROW", &r.VsRow, r.Rows)
	fmt.Fprintln(w)
	writeGrid(w, "Figure 6b — speedup of RM vs COL", &r.VsCol, r.Rows)
}

func writeGrid(w io.Writer, title string, g *[10][10]float64, rows int) {
	fmt.Fprintf(w, "%s (%d rows; >1 means RM faster)\n", title, rows)
	fmt.Fprintf(w, "%5s", "sel\\p")
	for p := 1; p <= 10; p++ {
		fmt.Fprintf(w, "%6d", p)
	}
	fmt.Fprintln(w)
	for s := 10; s >= 1; s-- {
		fmt.Fprintf(w, "%5d", s)
		for p := 1; p <= 10; p++ {
			fmt.Fprintf(w, "%6.2f", g[s-1][p-1])
		}
		fmt.Fprintln(w)
	}
}

// CheckShape verifies the paper's qualitative claims:
//
//  1. RM beats ROW in every cell (Fig. 6a is uniformly > 1);
//  2. COL beats RM when the total touched columns are few (cell 1,1 < 1);
//  3. RM beats COL when many columns are touched (cell 10,10 > 1).
func (r *Fig6Result) CheckShape() []string {
	var bad []string
	for s := 1; s <= 10; s++ {
		for p := 1; p <= 10; p++ {
			if r.VsRow[s-1][p-1] <= 1 {
				bad = append(bad, fmt.Sprintf("p=%d s=%d: RM/ROW speedup %.3f <= 1", p, s, r.VsRow[s-1][p-1]))
			}
		}
	}
	if r.VsCol[0][0] >= 1 {
		bad = append(bad, fmt.Sprintf("p=1 s=1: COL should beat RM, speedup %.3f", r.VsCol[0][0]))
	}
	if r.VsCol[9][9] <= 1 {
		bad = append(bad, fmt.Sprintf("p=10 s=10: RM should beat COL, speedup %.3f", r.VsCol[9][9]))
	}
	return bad
}
