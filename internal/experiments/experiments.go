// Package experiments regenerates every figure of the paper's evaluation
// (ICDE 2023, §V): Figure 5 (projectivity sweep), Figures 6a/6b
// (projection×selection speedup heatmaps), and Figures 7a/7b (TPC-H Q1 and
// Q6 across data sizes), plus the ablation sweeps DESIGN.md calls out. The
// same entry points back both the testing.B benchmarks and the rfbench CLI.
package experiments

import (
	"fmt"

	"rfabric/internal/colstore"
	"rfabric/internal/engine"
	"rfabric/internal/geometry"
	"rfabric/internal/table"
)

// Options parameterizes a figure run. The zero value is not usable; start
// from DefaultOptions.
type Options struct {
	// System is the simulated platform.
	System engine.SystemConfig
	// Seed drives the deterministic data generators.
	Seed int64
	// MicroRows is the row count of the Figure 5/6 microbenchmark tables.
	MicroRows int
	// Fig7TargetMB lists the target-column sizes (in MiB) swept by the
	// Figure 7 experiments — the paper's x-axis.
	Fig7TargetMB []int
	// ParWorkers lists the coordinator worker-pool sizes swept by the
	// parallel-speedup experiment.
	ParWorkers []int
}

// DefaultOptions returns laptop-scale settings: tables several times the
// simulated L2 so the memory hierarchy is exercised, small enough that
// `go test -bench=.` stays fast. PaperScaleOptions widens the Figure 7
// sweep to the published sizes.
func DefaultOptions() Options {
	return Options{
		System:       engine.DefaultSystemConfig(),
		Seed:         1,
		MicroRows:    96_000, // 16 cols x 4 B = 6 MB base table
		Fig7TargetMB: []int{2, 4, 8, 16},
		ParWorkers:   []int{1, 2, 4, 8},
	}
}

// PaperScaleOptions mirrors the paper's full Figure 7 sweep (target columns
// 2–128 MiB, tables up to ≈700 MB). Expect multi-minute runs and several
// GB of resident memory.
func PaperScaleOptions() Options {
	o := DefaultOptions()
	o.MicroRows = 1 << 20
	o.Fig7TargetMB = []int{2, 4, 8, 16, 32, 64, 128}
	return o
}

// fixture is one placed dataset: a row table in simulated memory plus its
// columnar copy for the COL baseline.
type fixture struct {
	sys   *engine.System
	tbl   *table.Table
	store *colstore.Store
}

// newMicroFixture builds the Figure 5/6 style table: cols int32 columns of
// uniform values in [0,1000), placed at the bottom of a fresh system's
// address space.
func newMicroFixture(opt Options, cols, rows int) (*fixture, error) {
	sys, err := engine.NewSystem(opt.System)
	if err != nil {
		return nil, err
	}
	defs := make([]geometry.Column, cols)
	for i := range defs {
		defs[i] = geometry.Column{Name: fmt.Sprintf("c%02d", i), Type: geometry.Int32, Width: 4}
	}
	sch, err := geometry.NewSchema(defs...)
	if err != nil {
		return nil, err
	}
	base := sys.Arena.Alloc(int64(rows * sch.RowBytes()))
	tbl, err := table.New("micro", sch, table.WithCapacity(rows), table.WithBaseAddr(base))
	if err != nil {
		return nil, err
	}
	rng := newRand(opt.Seed)
	buf := make([]byte, sch.RowBytes())
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			putUint32(buf[c*4:], uint32(rng.Intn(1000)))
		}
		if _, err := tbl.AppendRaw(1, buf); err != nil {
			return nil, err
		}
	}
	store, err := colstore.FromTable(tbl, sys.Arena)
	if err != nil {
		return nil, err
	}
	return &fixture{sys: sys, tbl: tbl, store: store}, nil
}

func putUint32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

// enginesFor returns the three paper engines over a fixture.
func (f *fixture) engines() (*engine.RowEngine, *engine.ColEngine, *engine.RMEngine) {
	return &engine.RowEngine{Tbl: f.tbl, Sys: f.sys},
		&engine.ColEngine{Store: f.store, Sys: f.sys},
		&engine.RMEngine{Tbl: f.tbl, Sys: f.sys}
}

// runAll executes q on ROW, COL, and RM with cold caches each, verifies the
// results agree, and returns the three results keyed by engine name.
func (f *fixture) runAll(q engine.Query) (map[string]*engine.Result, error) {
	row, col, rm := f.engines()
	out := make(map[string]*engine.Result, 3)
	var ref *engine.Result
	for _, e := range []engine.Executor{row, col, rm} {
		f.sys.ResetState()
		r, err := e.Execute(q)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.Name(), err)
		}
		if ref == nil {
			ref = r
		} else if err := r.EquivalentTo(ref, 1e-9); err != nil {
			return nil, fmt.Errorf("%s result diverged from %s: %w", r.Engine, ref.Engine, err)
		}
		out[e.Name()] = r
	}
	return out, nil
}
