package experiments

import (
	"fmt"
	"io"
	"time"

	"rfabric/internal/colstore"
	"rfabric/internal/engine"
	"rfabric/internal/geometry"
	"rfabric/internal/sql"
	"rfabric/internal/table"
	"rfabric/internal/tpch"
)

// JoinParallelPoint is one worker count of the parallel join sweep.
type JoinParallelPoint struct {
	Workers   int
	Cycles    uint64
	WallNanos int64
	Speedup   float64 // modeled, vs the 1-worker run
}

// JoinResult is the hash-join experiment: the Q3-class lineitem ⋈ orders
// query lowered from SQL and executed through every serial access path plus
// the morsel-parallel executor. All paths must produce the same groups; the
// cycle map records how the layouts compare when every build and probe byte
// is charged through the memory hierarchy.
type JoinResult struct {
	Rows       int // lineitem (probe) rows
	OrdersRows int // orders (build) rows
	Groups     int
	Cycles     map[string]uint64 // row, rm, col — serial JoinExec per source
	Parallel   []JoinParallelPoint
}

// JoinQ3 builds lineitem and orders in one simulated system, lowers
// tpch.Q3SQL through the catalog lowerer, and runs the resulting JoinPlan
// with ROW, RM, and COL sources serially and RM sources under the
// morsel-parallel executor for each entry of workers.
func JoinQ3(opt Options, rows int, workers []int) (*JoinResult, error) {
	sys, err := engine.NewSystem(opt.System)
	if err != nil {
		return nil, err
	}
	mk := func(name string, sch *geometry.Schema, n int, gen func(*table.Table, int, int64) error, seed int64) (*table.Table, error) {
		tbl, err := table.New(name, sch,
			table.WithCapacity(n),
			table.WithBaseAddr(sys.Arena.Alloc(int64(n*sch.RowBytes()))))
		if err != nil {
			return nil, err
		}
		return tbl, gen(tbl, n, seed)
	}
	li, err := mk("lineitem", tpch.LineitemSchema(), rows, tpch.Generate, opt.Seed)
	if err != nil {
		return nil, err
	}
	nOrders := tpch.OrdersFor(rows)
	ord, err := mk("orders", tpch.OrdersSchema(), nOrders, tpch.GenerateOrders, opt.Seed+1)
	if err != nil {
		return nil, err
	}
	lookup := func(name string) (*geometry.Schema, error) {
		switch name {
		case "lineitem":
			return li.Schema(), nil
		case "orders":
			return ord.Schema(), nil
		}
		return nil, fmt.Errorf("join experiment: unknown table %q", name)
	}

	st, err := sql.Parse(tpch.Q3SQL)
	if err != nil {
		return nil, err
	}
	root, err := sql.LowerCatalog(st, lookup)
	if err != nil {
		return nil, err
	}
	jp, _, err := engine.FromJoinPlan(root, lookup)
	if err != nil {
		return nil, err
	}
	byName := func(name string) *table.Table {
		if name == "orders" {
			return ord
		}
		return li
	}

	res := &JoinResult{Rows: rows, OrdersRows: nOrders, Cycles: map[string]uint64{}}
	var baseline *engine.Result
	runSerial := func(label string, probe engine.Source, builds []engine.Source) error {
		sys.ResetState()
		r, err := (&engine.JoinExec{Plan: jp, Probe: probe, Builds: builds}).Execute()
		if err != nil {
			return fmt.Errorf("join %s: %w", label, err)
		}
		if baseline == nil {
			baseline = r
			res.Groups = len(r.Groups)
		} else if err := baseline.EquivalentTo(r, 1e-9); err != nil {
			return fmt.Errorf("join %s diverged: %w", label, err)
		}
		res.Cycles[label] = r.Breakdown.TotalCycles
		return nil
	}

	rowSrc := func(t *table.Table) engine.Source {
		return &engine.RowEngine{Tbl: t, Sys: sys, ForceScalar: true}
	}
	rmSrc := func(t *table.Table) engine.Source {
		return &engine.RMEngine{Tbl: t, Sys: sys, ForceScalar: true}
	}
	if err := runSerial("row", rowSrc(byName(jp.Probe.Table)), buildSources(jp, byName, rowSrc)); err != nil {
		return nil, err
	}
	if err := runSerial("rm", rmSrc(byName(jp.Probe.Table)), buildSources(jp, byName, rmSrc)); err != nil {
		return nil, err
	}
	colSrc := func(t *table.Table) engine.Source {
		store, err := colstore.FromTable(t, sys.Arena)
		if err != nil {
			panic(err) // arena exhaustion at experiment scale is a setup bug
		}
		return &engine.ColEngine{Store: store, Sys: sys, ForceScalar: true}
	}
	if err := runSerial("col", colSrc(byName(jp.Probe.Table)), buildSources(jp, byName, colSrc)); err != nil {
		return nil, err
	}

	var base uint64
	for _, w := range workers {
		sys.ResetState()
		start := time.Now()
		r, err := (&engine.ParallelJoinExec{
			Plan:     jp,
			ProbeTbl: byName(jp.Probe.Table),
			Sys:      sys,
			Par:      engine.ParallelConfig{Workers: w},
			Builds:   buildSources(jp, byName, rmSrc),
		}).Execute()
		if err != nil {
			return nil, fmt.Errorf("join par %d workers: %w", w, err)
		}
		wall := time.Since(start)
		if err := baseline.EquivalentTo(r, 1e-9); err != nil {
			return nil, fmt.Errorf("join par %d workers diverged: %w", w, err)
		}
		if base == 0 {
			base = r.Breakdown.TotalCycles
		}
		res.Parallel = append(res.Parallel, JoinParallelPoint{
			Workers:   w,
			Cycles:    r.Breakdown.TotalCycles,
			WallNanos: wall.Nanoseconds(),
			Speedup:   float64(base) / float64(r.Breakdown.TotalCycles),
		})
	}
	return res, nil
}

// buildSources makes one source per join stage, in stage order.
func buildSources(jp *engine.JoinPlan, byName func(string) *table.Table, mk func(*table.Table) engine.Source) []engine.Source {
	out := make([]engine.Source, len(jp.Stages))
	for i, stg := range jp.Stages {
		out[i] = mk(byName(stg.Side.Table))
	}
	return out
}

// WriteTable renders the experiment.
func (r *JoinResult) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "Hash join — Q3-class lineitem ⋈ orders, %d ⋈ %d rows, %d groups\n",
		r.Rows, r.OrdersRows, r.Groups)
	fmt.Fprintf(w, "%-8s %14s\n", "source", "cycles")
	for _, k := range []string{"row", "rm", "col"} {
		fmt.Fprintf(w, "%-8s %14d\n", k, r.Cycles[k])
	}
	fmt.Fprintf(w, "%-8s %14s %10s %12s\n", "workers", "cycles", "speedup", "wall(us)")
	for _, p := range r.Parallel {
		fmt.Fprintf(w, "%-8d %14d %9.2fx %12.1f\n",
			p.Workers, p.Cycles, p.Speedup, float64(p.WallNanos)/1e3)
	}
}

// CheckShape verifies the join claims: every path agreed (enforced during
// the run), the join produced work, and the modeled parallel makespan never
// grows as workers are added.
func (r *JoinResult) CheckShape() []string {
	var bad []string
	if r.Groups == 0 {
		bad = append(bad, "join: zero result groups — the build side never matched")
	}
	for i := 1; i < len(r.Parallel); i++ {
		prev, cur := r.Parallel[i-1], r.Parallel[i]
		if cur.Workers > prev.Workers && cur.Cycles > prev.Cycles {
			bad = append(bad, fmt.Sprintf("join: cycles grew from %d to %d going from %d to %d workers",
				prev.Cycles, cur.Cycles, prev.Workers, cur.Workers))
		}
	}
	return bad
}
