package experiments

import (
	"fmt"

	"rfabric/internal/engine"
	"rfabric/internal/expr"
	"rfabric/internal/index"
	"rfabric/internal/table"
)

// AblationRMC models §IV-C's next step: integrating Relational Memory into
// the memory controller. Against the discrete (programmable-logic) instance,
// the integrated controller runs at core-complex clocks (lower CPU:fabric
// ratio), loses the device-aperture surcharge on delivered lines, and
// re-arms its gather window without a PL handshake. The sweep reports the
// same Q6-style scan on both design points.
func AblationRMC(opt Options, rows int) (*AblationResult, error) {
	q := engine.Query{Projection: seq(0, 4)}
	res := &AblationResult{Name: "ABL-RMC", Knob: "discrete RM vs memory-controller integration"}

	run := func(label string, cfg engine.SystemConfig) error {
		o := opt
		o.System = cfg
		f, err := newMicroFixture(o, 16, rows)
		if err != nil {
			return err
		}
		f.sys.ResetState()
		r, err := (&engine.RMEngine{Tbl: f.tbl, Sys: f.sys}).Execute(q)
		if err != nil {
			return err
		}
		res.Points = append(res.Points, AblationPoint{
			Setting:    label,
			Cycles:     map[string]uint64{"RM": r.Breakdown.TotalCycles},
			BytesToCPU: r.Breakdown.BytesToCPU,
		})
		return nil
	}

	discrete := opt.System
	if err := run("discrete-RM(PL)", discrete); err != nil {
		return nil, err
	}
	rmc := opt.System
	rmc.Fabric.ClockRatio = 3   // controller clock domain, not 100 MHz PL
	rmc.Fabric.RefillCycles = 0 // window re-arms in the controller
	rmc.Cache.FabricHitCycles = 0
	if err := run("RMC(integrated)", rmc); err != nil {
		return nil, err
	}
	return res, nil
}

// AblationIndex quantifies §III-A's residual role for indexes: a point
// query answered by a B+tree traversal versus the same query as a fabric
// scan and a row scan, and a range query where the fabric scan competes
// with the index.
func AblationIndex(opt Options, rows int) (*AblationResult, error) {
	sys, err := engine.NewSystem(opt.System)
	if err != nil {
		return nil, err
	}
	sch := wide16Schema()
	base := sys.Arena.Alloc(int64(rows * sch.RowBytes()))
	tbl, err := table.New("t", sch, table.WithCapacity(rows), table.WithBaseAddr(base))
	if err != nil {
		return nil, err
	}
	rng := newRand(opt.Seed)
	// The key column is a random permutation: a secondary (unclustered)
	// index, so range lookups fetch scattered rows — the honest case.
	perm := rng.Perm(rows)
	vals := make([]table.Value, sch.NumColumns())
	for r := 0; r < rows; r++ {
		vals[0] = table.I32(int32(perm[r]))
		for c := 1; c < len(vals); c++ {
			vals[c] = table.I32(int32(rng.Intn(1000)))
		}
		if _, err := tbl.Append(1, vals...); err != nil {
			return nil, err
		}
	}
	idx, err := index.Build(tbl, 0, sys.Arena)
	if err != nil {
		return nil, err
	}

	res := &AblationResult{Name: "ABL-INDEX", Knob: "point/range access path"}
	probe := int32(rows / 2)

	// Point query via the index: traverse, then fetch the row's columns.
	sys.ResetState()
	hierStart := sys.Hier.Stats()
	matches := idx.Lookup(sys.Hier, int64(probe))
	for _, r := range matches {
		sys.Hier.Load(tbl.ColumnAddr(r, 5))
		sys.Hier.Load(tbl.ColumnAddr(r, 9))
	}
	idxCycles := sys.Hier.Stats().Cycles - hierStart.Cycles
	if len(matches) != 1 {
		return nil, fmt.Errorf("index point lookup found %d rows, want 1", len(matches))
	}
	res.Points = append(res.Points, AblationPoint{
		Setting: "point/index",
		Cycles:  map[string]uint64{"IDX": idxCycles},
	})

	// The same point query as scans.
	pointQ := engine.Query{
		Projection: []int{5, 9},
		Selection:  expr.Conjunction{{Col: 0, Op: expr.Eq, Operand: table.I32(probe)}},
	}
	for _, e := range []engine.Executor{
		&engine.RowEngine{Tbl: tbl, Sys: sys},
		&engine.RMEngine{Tbl: tbl, Sys: sys},
	} {
		sys.ResetState()
		r, err := e.Execute(pointQ)
		if err != nil {
			return nil, err
		}
		if r.RowsPassed != 1 {
			return nil, fmt.Errorf("%s point query matched %d rows", e.Name(), r.RowsPassed)
		}
		res.Points = append(res.Points, AblationPoint{
			Setting: "point/" + e.Name(),
			Cycles:  map[string]uint64{e.Name(): r.Breakdown.TotalCycles},
		})
	}

	// Range queries at growing selectivity: the index walks leaves and
	// fetches scattered rows; the fabric's cost is a flat scan. Somewhere
	// between a few percent and a few tens of percent the fabric takes
	// over — §III-A's division of labour, measured.
	for _, pct := range []int{1, 10, 30} {
		lo := int32(rows / 4)
		hi := lo + int32(rows*pct/100) - 1
		sys.ResetState()
		hierStart = sys.Hier.Stats()
		rangeRows := idx.Range(sys.Hier, int64(lo), int64(hi))
		for _, r := range rangeRows {
			sys.Hier.Load(tbl.ColumnAddr(r, 5))
			sys.Hier.Load(tbl.ColumnAddr(r, 9))
		}
		res.Points = append(res.Points, AblationPoint{
			Setting: fmt.Sprintf("range%d%%/index", pct),
			Cycles:  map[string]uint64{"IDX": sys.Hier.Stats().Cycles - hierStart.Cycles},
		})
		rangeQ := engine.Query{
			Projection: []int{5, 9},
			Selection: expr.Conjunction{
				{Col: 0, Op: expr.Ge, Operand: table.I32(lo)},
				{Col: 0, Op: expr.Le, Operand: table.I32(hi)},
			},
		}
		sys.ResetState()
		rm, err := (&engine.RMEngine{Tbl: tbl, Sys: sys, PushSelection: true}).Execute(rangeQ)
		if err != nil {
			return nil, err
		}
		if int(rm.RowsPassed) != len(rangeRows) {
			return nil, fmt.Errorf("range mismatch: index %d rows, RM %d", len(rangeRows), rm.RowsPassed)
		}
		res.Points = append(res.Points, AblationPoint{
			Setting: fmt.Sprintf("range%d%%/RM", pct),
			Cycles:  map[string]uint64{"RM": rm.Breakdown.TotalCycles},
		})
	}
	return res, nil
}
