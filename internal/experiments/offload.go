package experiments

import (
	"fmt"
	"io"

	"rfabric/internal/compress"
	"rfabric/internal/engine"
	"rfabric/internal/expr"
	"rfabric/internal/fabric"
	"rfabric/internal/geometry"
	"rfabric/internal/sql"
	"rfabric/internal/table"
	"rfabric/internal/tpch"
)

// OffloadPoint is one cell of the operator-offload ablation grid: a query
// class run with the offload layer on or off, over raw or
// dictionary-encoded storage.
type OffloadPoint struct {
	// Query names the query class: group-agg, dict-scan, or join.
	Query string `json:"query"`
	// Setting is "cpu" or "offload" plus the storage encoding, e.g.
	// "offload/dict".
	Setting string `json:"setting"`
	// Program is the fabric offload program that ran ("group-agg", "agg",
	// "semi-join", ...); empty when the query was consumed CPU-side.
	Program string `json:"program"`
	// TotalCycles is the modeled end-to-end cost.
	TotalCycles uint64 `json:"total_cycles"`
	// BytesToCPU is the traffic that crossed from the hierarchy into the
	// core — the quantity the offload layer exists to reduce.
	BytesToCPU uint64 `json:"bytes_to_cpu"`
	// Groups is the result cardinality (aggregate terms when ungrouped).
	Groups int `json:"groups"`
	// RowsFiltered counts probe rows the fabric dropped before shipping
	// (Bloom semi-join rejections plus dictionary code-filter rejections).
	RowsFiltered uint64 `json:"rows_filtered"`
}

// OffloadResult is the offload on/off × encoded/raw ablation: the same
// grouped aggregation, compressed scan, and Q3-class join executed with the
// work consumed CPU-side and with it offloaded to the fabric. Every
// offload/CPU pair is verified equivalent during the run, so the points
// differ only in where the work happened and what had to move.
type OffloadResult struct {
	Rows   int            `json:"rows"`
	Points []OffloadPoint `json:"points"`
}

func (r *OffloadResult) point(q string) map[string]*OffloadPoint {
	out := map[string]*OffloadPoint{}
	for i := range r.Points {
		if r.Points[i].Query == q {
			out[r.Points[i].Setting] = &r.Points[i]
		}
	}
	return out
}

// AblationOffload runs the grid. rows sizes the base tables; the join pair
// uses rows probe-side lineitems.
func AblationOffload(opt Options, rows int) (*OffloadResult, error) {
	res := &OffloadResult{Rows: rows}
	if err := offloadAggPoints(opt, rows, res); err != nil {
		return nil, err
	}
	if err := offloadDictScanPoints(opt, rows, res); err != nil {
		return nil, err
	}
	if err := offloadJoinPoints(opt, rows, res); err != nil {
		return nil, err
	}
	return res, nil
}

// offloadFixture builds (k INT64, mode CHAR(8), qty INT32, price FLOAT64)
// with a low-cardinality mode column, plus its dictionary-encoded twin.
func offloadFixture(opt Options, rows int) (*engine.System, *table.Table, *compress.EncodedTable, error) {
	sys, err := engine.NewSystem(opt.System)
	if err != nil {
		return nil, nil, nil, err
	}
	sch := geometry.MustSchema(
		geometry.Column{Name: "k", Type: geometry.Int64, Width: 8},
		geometry.Column{Name: "mode", Type: geometry.Char, Width: 8},
		geometry.Column{Name: "qty", Type: geometry.Int32, Width: 4},
		geometry.Column{Name: "price", Type: geometry.Float64, Width: 8},
	)
	tbl, err := table.New("offload", sch, table.WithCapacity(rows),
		table.WithBaseAddr(sys.Arena.Alloc(int64(rows*sch.RowBytes()))))
	if err != nil {
		return nil, nil, nil, err
	}
	modes := []string{"AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB", "REG"}
	rng := newRand(opt.Seed)
	for r := 0; r < rows; r++ {
		if _, err := tbl.Append(1,
			table.I64(int64(r)),
			table.Str(modes[rng.Intn(len(modes))]),
			table.I32(int32(rng.Intn(100))),
			table.F64(float64(rng.Intn(10_000))/100),
		); err != nil {
			return nil, nil, nil, err
		}
	}
	enc, err := compress.EncodeTableDict(tbl, []int{1},
		sys.Arena.Alloc(int64(rows*sch.RowBytes())))
	if err != nil {
		return nil, nil, nil, err
	}
	return sys, tbl, enc, nil
}

// runOffloadPoint executes q on one engine configuration with cold state and
// records a grid cell, returning the result for equivalence checks.
func runOffloadPoint(res *OffloadResult, sys *engine.System, rm *engine.RMEngine,
	q engine.Query, query, setting string) (*engine.Result, error) {
	sys.ResetState()
	before := sys.Fab.Stats()
	r, err := rm.Execute(q)
	if err != nil {
		return nil, fmt.Errorf("offload %s/%s: %w", query, setting, err)
	}
	after := sys.Fab.Stats()
	groups := len(r.Groups)
	if groups == 0 {
		groups = len(r.Aggs)
	}
	res.Points = append(res.Points, OffloadPoint{
		Query:       query,
		Setting:     setting,
		Program:     r.Offload,
		TotalCycles: r.Breakdown.TotalCycles,
		BytesToCPU:  r.Breakdown.BytesToCPU,
		Groups:      groups,
		RowsFiltered: (after.RowsSemiFiltered - before.RowsSemiFiltered) +
			(after.RowsCodeFiltered - before.RowsCodeFiltered),
	})
	return r, nil
}

// offloadAggPoints is the grouped-aggregation quadrant: SELECT mode,
// SUM(price), COUNT(*) WHERE qty < 70 GROUP BY mode, consumed CPU-side
// versus folded on-fabric, over raw rows and over dictionary codes. The
// offloaded runs must be bit-identical to their CPU counterparts — the
// fabric's fold mirrors the consumer's accumulator exactly.
func offloadAggPoints(opt Options, rows int, res *OffloadResult) error {
	sys, tbl, enc, err := offloadFixture(opt, rows)
	if err != nil {
		return err
	}
	q := engine.Query{
		Selection:  expr.Conjunction{{Col: 2, Op: expr.Lt, Operand: table.I32(70)}},
		GroupBy:    []int{1},
		Aggregates: []engine.AggTerm{{Kind: expr.Sum, Arg: expr.ColRef{Col: 3}}, {Kind: expr.Count}},
	}
	for _, c := range []struct {
		storage string
		tbl     *table.Table
	}{{"raw", tbl}, {"dict", enc.Table}} {
		cpu, err := runOffloadPoint(res, sys,
			&engine.RMEngine{Tbl: c.tbl, Sys: sys, PushSelection: true},
			q, "group-agg", "cpu/"+c.storage)
		if err != nil {
			return err
		}
		off, err := runOffloadPoint(res, sys,
			&engine.RMEngine{Tbl: c.tbl, Sys: sys, Offload: true},
			q, "group-agg", "offload/"+c.storage)
		if err != nil {
			return err
		}
		if err := cpu.EquivalentTo(off, 0); err != nil {
			return fmt.Errorf("offload group-agg/%s diverged from CPU-side: %w", c.storage, err)
		}
	}
	return nil
}

// offloadDictScanPoints is the compression-aware scan pair: a value-domain
// predicate over the mode column answered by a CPU-side scan of raw rows
// versus a fabric code-domain filter over the encoded table (the predicate
// is translated once against the dictionary; rows are filtered by stored
// code without decompression).
func offloadDictScanPoints(opt Options, rows int, res *OffloadResult) error {
	sys, tbl, enc, err := offloadFixture(opt, rows)
	if err != nil {
		return err
	}
	// mode <> 'AIR' keeps most rows, and grouping by qty makes the CPU-side
	// cell do real per-row consumption — otherwise both cells are bound by
	// the same fabric gather cost and the comparison measures noise. qty is
	// stored identically in both tables, so the grouped results must match
	// bit for bit even though one scan filtered in the code domain.
	match := func(v table.Value) bool { return v.String() != "AIR" }
	q := engine.Query{
		GroupBy:    []int{2},
		Aggregates: []engine.AggTerm{{Kind: expr.Sum, Arg: expr.ColRef{Col: 3}}, {Kind: expr.Count}},
	}

	qCPU := q
	qCPU.Selection = expr.Conjunction{{Col: 1, Op: expr.Ne, Operand: table.Str("AIR")}}
	cpu, err := runOffloadPoint(res, sys,
		&engine.RMEngine{Tbl: tbl, Sys: sys, PushSelection: true},
		qCPU, "dict-scan", "cpu/raw")
	if err != nil {
		return err
	}

	codes, entries, err := enc.MatchCodes(1, match)
	if err != nil {
		return err
	}
	off, err := runOffloadPoint(res, sys,
		&engine.RMEngine{Tbl: enc.Table, Sys: sys, Offload: true,
			DictFilters: []fabric.DictFilter{{Col: 1, Codes: codes, Entries: entries}}},
		q, "dict-scan", "offload/dict")
	if err != nil {
		return err
	}
	// The value-domain predicate must select exactly the dictionary-matched
	// modes, or the two cells measured different queries.
	if err := cpu.EquivalentTo(off, 0); err != nil {
		return fmt.Errorf("dict-scan offload diverged from CPU-side: %w", err)
	}
	return nil
}

// offloadJoinPoints runs the Q3-class lineitem ⋈ orders join with a plain
// RM probe versus a probe whose scan the build side arms with a Bloom
// semi-join filter: fabric-rejected probe rows never ship, false positives
// are re-checked CPU-side, and the grouped result is unchanged.
func offloadJoinPoints(opt Options, rows int, res *OffloadResult) error {
	sys, err := engine.NewSystem(opt.System)
	if err != nil {
		return err
	}
	mk := func(name string, sch *geometry.Schema, n int,
		gen func(*table.Table, int, int64) error, seed int64) (*table.Table, error) {
		t, err := table.New(name, sch, table.WithCapacity(n),
			table.WithBaseAddr(sys.Arena.Alloc(int64(n*sch.RowBytes()))))
		if err != nil {
			return nil, err
		}
		return t, gen(t, n, seed)
	}
	li, err := mk("lineitem", tpch.LineitemSchema(), rows, tpch.Generate, opt.Seed)
	if err != nil {
		return err
	}
	ord, err := mk("orders", tpch.OrdersSchema(), tpch.OrdersFor(rows), tpch.GenerateOrders, opt.Seed+1)
	if err != nil {
		return err
	}
	lookup := func(name string) (*geometry.Schema, error) {
		switch name {
		case "lineitem":
			return li.Schema(), nil
		case "orders":
			return ord.Schema(), nil
		}
		return nil, fmt.Errorf("offload join: unknown table %q", name)
	}
	st, err := sql.Parse(tpch.Q3SQL)
	if err != nil {
		return err
	}
	root, err := sql.LowerCatalog(st, lookup)
	if err != nil {
		return err
	}
	jp, _, err := engine.FromJoinPlan(root, lookup)
	if err != nil {
		return err
	}
	byName := func(name string) *table.Table {
		if name == "orders" {
			return ord
		}
		return li
	}

	runJoin := func(setting string, offload bool) (*engine.Result, error) {
		sys.ResetState()
		before := sys.Fab.Stats()
		r, err := (&engine.JoinExec{
			Plan:  jp,
			Probe: &engine.RMEngine{Tbl: byName(jp.Probe.Table), Sys: sys, ForceScalar: true, Offload: offload},
			Builds: buildSources(jp, byName, func(t *table.Table) engine.Source {
				return &engine.RMEngine{Tbl: t, Sys: sys, ForceScalar: true}
			}),
		}).Execute()
		if err != nil {
			return nil, fmt.Errorf("offload join/%s: %w", setting, err)
		}
		after := sys.Fab.Stats()
		res.Points = append(res.Points, OffloadPoint{
			Query:        "join",
			Setting:      setting,
			Program:      r.Offload,
			TotalCycles:  r.Breakdown.TotalCycles,
			BytesToCPU:   r.Breakdown.BytesToCPU,
			Groups:       len(r.Groups),
			RowsFiltered: after.RowsSemiFiltered - before.RowsSemiFiltered,
		})
		return r, nil
	}
	plain, err := runJoin("cpu/raw", false)
	if err != nil {
		return err
	}
	bloom, err := runJoin("offload/raw", true)
	if err != nil {
		return err
	}
	if err := plain.EquivalentTo(bloom, 1e-9); err != nil {
		return fmt.Errorf("Bloom-filtered join diverged from unfiltered: %w", err)
	}
	return nil
}

// WriteTable renders the grid.
func (r *OffloadResult) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "Operator offload ablation — %d rows\n", r.Rows)
	fmt.Fprintf(w, "%-10s %-13s %-10s %14s %12s %8s %10s\n",
		"query", "setting", "program", "cycles", "bytesToCPU", "groups", "filtered")
	for _, p := range r.Points {
		prog := p.Program
		if prog == "" {
			prog = "-"
		}
		fmt.Fprintf(w, "%-10s %-13s %-10s %14d %12d %8d %10d\n",
			p.Query, p.Setting, prog, p.TotalCycles, p.BytesToCPU, p.Groups, p.RowsFiltered)
	}
}

// CheckShape verifies the offload layer's economic claims: every offloaded
// cell strictly reduces both bytes-to-CPU and total modeled cycles against
// its CPU-side counterpart, the fabric actually ran an offload program where
// one was requested, and the filtering cells dropped rows on-fabric.
func (r *OffloadResult) CheckShape() []string {
	var bad []string
	pair := func(q, cpu, off string) (*OffloadPoint, *OffloadPoint) {
		pts := r.point(q)
		c, o := pts[cpu], pts[off]
		if c == nil || o == nil {
			bad = append(bad, fmt.Sprintf("offload: %s missing %s/%s points", q, cpu, off))
			return nil, nil
		}
		if o.Program == "" {
			bad = append(bad, fmt.Sprintf("offload: %s %s ran without an offload program", q, off))
		}
		if c.Program != "" && q != "join" {
			bad = append(bad, fmt.Sprintf("offload: %s %s claims program %q on the CPU-side run", q, cpu, c.Program))
		}
		if o.BytesToCPU >= c.BytesToCPU {
			bad = append(bad, fmt.Sprintf("offload: %s moved %d bytes to CPU offloaded vs %d CPU-side — no reduction",
				q, o.BytesToCPU, c.BytesToCPU))
		}
		if o.TotalCycles >= c.TotalCycles {
			bad = append(bad, fmt.Sprintf("offload: %s cost %d cycles offloaded vs %d CPU-side — no reduction",
				q, o.TotalCycles, c.TotalCycles))
		}
		if o.Groups != c.Groups {
			bad = append(bad, fmt.Sprintf("offload: %s cardinality changed (%d vs %d groups)", q, o.Groups, c.Groups))
		}
		return c, o
	}
	pair("group-agg", "cpu/raw", "offload/raw")
	pair("group-agg", "cpu/dict", "offload/dict")
	if _, o := pair("dict-scan", "cpu/raw", "offload/dict"); o != nil && o.RowsFiltered == 0 {
		bad = append(bad, "offload: dict-scan rejected no rows in the code domain")
	}
	if _, o := pair("join", "cpu/raw", "offload/raw"); o != nil && o.RowsFiltered == 0 {
		bad = append(bad, "offload: Bloom semi-join dropped no probe rows")
	}
	return bad
}
