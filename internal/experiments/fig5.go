package experiments

import (
	"fmt"
	"io"

	"rfabric/internal/engine"
)

// Fig5Point is one projectivity level of Figure 5.
type Fig5Point struct {
	Projectivity int
	Columns      []int // projected column indices
	Cycles       map[string]uint64
	// Normalized holds each engine's cycles divided by ROW's at the same
	// projectivity, the paper's y-axis convention (ROW ≡ 1.0).
	Normalized map[string]float64
}

// Fig5Result is the full Figure 5 sweep.
type Fig5Result struct {
	Rows   int
	Points []Fig5Point
}

// fig5Columns spreads p projected columns evenly over a 16-column schema,
// exercising the scattered column-group geometry the fabric gathers.
func fig5Columns(p, total int) []int {
	cols := make([]int, p)
	for k := 0; k < p; k++ {
		cols[k] = k * total / p
	}
	return cols
}

// Figure5 reproduces the projectivity sweep: a projection-only scan over
// 64-byte rows of 16 four-byte columns, projectivity 1–11, on ROW vs COL
// vs RM (§V "RM Shines for Queries with High Projectivity").
func Figure5(opt Options) (*Fig5Result, error) {
	const totalCols = 16
	f, err := newMicroFixture(opt, totalCols, opt.MicroRows)
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{Rows: opt.MicroRows}
	for p := 1; p <= 11; p++ {
		cols := fig5Columns(p, totalCols)
		q := engine.Query{Projection: cols}
		all, err := f.runAll(q)
		if err != nil {
			return nil, fmt.Errorf("figure 5 projectivity %d: %w", p, err)
		}
		pt := Fig5Point{
			Projectivity: p,
			Columns:      cols,
			Cycles:       map[string]uint64{},
			Normalized:   map[string]float64{},
		}
		rowCycles := all["ROW"].Breakdown.TotalCycles
		for name, r := range all {
			pt.Cycles[name] = r.Breakdown.TotalCycles
			pt.Normalized[name] = float64(r.Breakdown.TotalCycles) / float64(rowCycles)
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// WriteTable renders the sweep in the paper's series order.
func (r *Fig5Result) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "Figure 5 — normalized execution time vs projectivity (%d rows, 64 B rows of 16 x 4 B columns)\n", r.Rows)
	fmt.Fprintf(w, "%-13s %10s %10s %10s   %8s %8s %8s\n", "projectivity", "ROW(cyc)", "COL(cyc)", "RM(cyc)", "ROW", "COL", "RM")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%-13d %10d %10d %10d   %8.3f %8.3f %8.3f\n",
			p.Projectivity, p.Cycles["ROW"], p.Cycles["COL"], p.Cycles["RM"],
			p.Normalized["ROW"], p.Normalized["COL"], p.Normalized["RM"])
	}
}

// CheckShape verifies the paper's qualitative claims and returns the
// violations found (empty = the shape reproduces):
//
//  1. RM outperforms ROW at every projectivity;
//  2. COL outperforms RM at low projectivity (≤ 3);
//  3. RM outperforms COL at high projectivity (≥ 6).
func (r *Fig5Result) CheckShape() []string {
	var bad []string
	for _, p := range r.Points {
		if p.Cycles["RM"] >= p.Cycles["ROW"] {
			bad = append(bad, fmt.Sprintf("projectivity %d: RM (%d) not faster than ROW (%d)", p.Projectivity, p.Cycles["RM"], p.Cycles["ROW"]))
		}
		if p.Projectivity <= 3 && p.Cycles["COL"] >= p.Cycles["RM"] {
			bad = append(bad, fmt.Sprintf("projectivity %d: COL (%d) should beat RM (%d)", p.Projectivity, p.Cycles["COL"], p.Cycles["RM"]))
		}
		if p.Projectivity >= 6 && p.Cycles["RM"] >= p.Cycles["COL"] {
			bad = append(bad, fmt.Sprintf("projectivity %d: RM (%d) should beat COL (%d)", p.Projectivity, p.Cycles["RM"], p.Cycles["COL"]))
		}
	}
	return bad
}
