package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestSequenceWarmBeatsCold(t *testing.T) {
	r, err := Sequence(quickOptions(), 24_000, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range r.CheckShape() {
		t.Error(v)
	}
	if len(r.Steps) != 6 {
		t.Fatalf("got %d steps, want 6", len(r.Steps))
	}
	// The warm total must beat cold by a real margin, not rounding noise.
	if ratio := float64(r.ColdTotalCycles) / float64(r.WarmTotalCycles); ratio < 1.05 {
		t.Errorf("warm speedup %.3fx is not a measurable saving", ratio)
	}
	// The warm join replays both sides out of the buffer: DRAM traffic must
	// collapse, not merely shrink.
	if r.JoinWarmDRAMBytes*2 >= r.JoinColdDRAMBytes {
		t.Errorf("warm join still moved %d of %d cold DRAM bytes",
			r.JoinWarmDRAMBytes, r.JoinColdDRAMBytes)
	}

	var b bytes.Buffer
	r.WriteTable(&b)
	for _, want := range []string{"Sequence-aware caching", "scan totals", "Q3-class join", "group cache:"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("sequence table lacks %q:\n%s", want, b.String())
		}
	}
}

func TestSequenceDeterministic(t *testing.T) {
	a, err := Sequence(quickOptions(), 12_000, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sequence(quickOptions(), 12_000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.ColdTotalCycles != b.ColdTotalCycles || a.WarmTotalCycles != b.WarmTotalCycles ||
		a.JoinColdCycles != b.JoinColdCycles || a.JoinWarmCycles != b.JoinWarmCycles {
		t.Fatalf("sequence runs diverged: %+v vs %+v", a, b)
	}
}
