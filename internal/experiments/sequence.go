package experiments

import (
	"fmt"
	"io"

	"rfabric/internal/engine"
	"rfabric/internal/expr"
	"rfabric/internal/fabric"
	"rfabric/internal/geometry"
	"rfabric/internal/sql"
	"rfabric/internal/table"
	"rfabric/internal/tpch"
)

// sequenceCacheBytes is the group-cache capacity for the sequence
// experiment — comfortably larger than the lineitem and orders groups
// together so eviction never muddies the warm/cold comparison.
const sequenceCacheBytes = 64 << 20

// SequenceStep is one query of the shifting-predicate sequence: the same
// scan shape (same needed columns, hence the same column group) with the
// ship-date window slid forward each step.
type SequenceStep struct {
	Step       int    `json:"step"`
	Window     string `json:"window"` // shifting l_shipdate range, for the table
	ColdCycles uint64 `json:"cold_cycles"`
	WarmCycles uint64 `json:"warm_cycles"`
	Warm       bool   `json:"warm"` // cached run replayed a resident group
	RowsPassed int64  `json:"rows_passed"`
}

// SequenceResult is the sequence-aware caching experiment: a run of
// same-shaped scans with shifting predicates plus a Q3-class join, each
// executed cold (per-query ephemeral groups, the paper's behaviour) and
// against a persistent group cache. Results must match byte-for-byte; only
// the modeled producer cycles differ, because a warm group replays out of
// the delivery buffer instead of re-gathering strides from DRAM.
type SequenceResult struct {
	Rows            int            `json:"rows"`
	OrdersRows      int            `json:"orders_rows"`
	Steps           []SequenceStep `json:"steps"`
	ColdTotalCycles uint64         `json:"cold_total_cycles"`
	WarmTotalCycles uint64         `json:"warm_total_cycles"`
	JoinColdCycles  uint64         `json:"join_cold_cycles"`
	JoinWarmCycles  uint64         `json:"join_warm_cycles"`
	// The Q3-class join is consumer-bound under the scalar join pipeline, so
	// its end-to-end cycles tie; the warm win is on the producer side — no
	// DRAM gathers, chunks replayed out of the delivery buffer.
	JoinColdProducerCycles uint64 `json:"join_cold_producer_cycles"`
	JoinWarmProducerCycles uint64 `json:"join_warm_producer_cycles"`
	JoinColdDRAMBytes      uint64 `json:"join_cold_dram_bytes"`
	JoinWarmDRAMBytes      uint64 `json:"join_warm_dram_bytes"`
	JoinSources            int    `json:"join_sources"` // probe + build sides
	GroupHits       uint64         `json:"group_hits"`
	GroupMisses     uint64         `json:"group_misses"`
	CachedBytes     uint64         `json:"cached_bytes"`
}

// sequenceQuery is the Q6-class scan with its ship-date window slid forward
// by step months. The needed columns never change, so every step addresses
// the same column group; only the CPU-evaluated constants move.
func sequenceQuery(step int) engine.Query {
	lo := int32(tpch.Date1994 + step*30)
	hi := lo + 365
	return engine.Query{
		Selection: expr.Conjunction{
			{Col: tpch.LShipDate, Op: expr.Ge, Operand: table.DateV(lo)},
			{Col: tpch.LShipDate, Op: expr.Lt, Operand: table.DateV(hi)},
			{Col: tpch.LDiscount, Op: expr.Ge, Operand: table.F64(0.049)},
			{Col: tpch.LDiscount, Op: expr.Le, Operand: table.F64(0.071)},
			{Col: tpch.LQuantity, Op: expr.Lt, Operand: table.F64(24)},
		},
		Aggregates: []engine.AggTerm{
			{Kind: expr.Sum, Arg: expr.Binary{Op: expr.Mul, L: expr.ColRef{Col: tpch.LExtendedPrice}, R: expr.ColRef{Col: tpch.LDiscount}}},
		},
	}
}

// Sequence runs the sequence-aware caching experiment: steps same-shaped
// Q6-class scans with shifting predicates over lineitem, then the Q3-class
// lineitem ⋈ orders join, comparing a cold RM engine against one backed by
// a persistent group cache on the same simulated system.
func Sequence(opt Options, rows, steps int) (*SequenceResult, error) {
	if steps < 2 {
		steps = 2
	}
	sys, err := engine.NewSystem(opt.System)
	if err != nil {
		return nil, err
	}
	mk := func(name string, n int, gen func(*table.Table, int, int64) error, seed int64) (*table.Table, error) {
		var sch = tpch.LineitemSchema()
		if name == "orders" {
			sch = tpch.OrdersSchema()
		}
		tbl, err := table.New(name, sch,
			table.WithCapacity(n),
			table.WithBaseAddr(sys.Arena.Alloc(int64(n*sch.RowBytes()))))
		if err != nil {
			return nil, err
		}
		return tbl, gen(tbl, n, seed)
	}
	li, err := mk("lineitem", rows, tpch.Generate, opt.Seed)
	if err != nil {
		return nil, err
	}
	nOrders := tpch.OrdersFor(rows)
	ord, err := mk("orders", nOrders, tpch.GenerateOrders, opt.Seed+1)
	if err != nil {
		return nil, err
	}

	cache := fabric.NewGroupCache(sequenceCacheBytes, sys.Arena)
	cold := &engine.RMEngine{Tbl: li, Sys: sys}
	warm := &engine.RMEngine{Tbl: li, Sys: sys, Cache: cache}

	res := &SequenceResult{Rows: rows, OrdersRows: nOrders}
	for k := 0; k < steps; k++ {
		q := sequenceQuery(k)
		sys.ResetState()
		cr, err := cold.Execute(q)
		if err != nil {
			return nil, fmt.Errorf("sequence step %d cold: %w", k, err)
		}
		sys.ResetState()
		wr, err := warm.Execute(q)
		if err != nil {
			return nil, fmt.Errorf("sequence step %d warm: %w", k, err)
		}
		if err := wr.EquivalentTo(cr, 1e-9); err != nil {
			return nil, fmt.Errorf("sequence step %d warm diverged from cold: %w", k, err)
		}
		lo := tpch.Date1994 + k*30
		res.Steps = append(res.Steps, SequenceStep{
			Step:       k,
			Window:     fmt.Sprintf("[%d,%d)", lo, lo+365),
			ColdCycles: cr.Breakdown.TotalCycles,
			WarmCycles: wr.Breakdown.TotalCycles,
			Warm:       wr.CacheWarm,
			RowsPassed: wr.RowsPassed,
		})
		res.ColdTotalCycles += cr.Breakdown.TotalCycles
		res.WarmTotalCycles += wr.Breakdown.TotalCycles
	}

	// Q3-class join: the first cached run installs both sides' groups (its
	// modeled cost equals the uncached run — recording charges nothing), the
	// second replays them warm.
	jp, err := sequenceJoinPlan(li, ord)
	if err != nil {
		return nil, err
	}
	byName := func(name string) *table.Table {
		if name == "orders" {
			return ord
		}
		return li
	}
	cachedSrc := func(t *table.Table) engine.Source {
		return &engine.RMEngine{Tbl: t, Sys: sys, ForceScalar: true, Cache: cache}
	}
	res.JoinSources = 1 + len(jp.Stages)
	runJoin := func() (*engine.Result, error) {
		sys.ResetState()
		return (&engine.JoinExec{
			Plan:   jp,
			Probe:  cachedSrc(byName(jp.Probe.Table)),
			Builds: buildSources(jp, byName, cachedSrc),
		}).Execute()
	}
	jc, err := runJoin()
	if err != nil {
		return nil, fmt.Errorf("sequence join cold: %w", err)
	}
	jw, err := runJoin()
	if err != nil {
		return nil, fmt.Errorf("sequence join warm: %w", err)
	}
	if err := jw.EquivalentTo(jc, 1e-9); err != nil {
		return nil, fmt.Errorf("sequence join warm diverged from cold: %w", err)
	}
	res.JoinColdCycles = jc.Breakdown.TotalCycles
	res.JoinWarmCycles = jw.Breakdown.TotalCycles
	res.JoinColdProducerCycles = jc.Breakdown.ProducerCycles
	res.JoinWarmProducerCycles = jw.Breakdown.ProducerCycles
	res.JoinColdDRAMBytes = jc.Breakdown.BytesFromDRAM
	res.JoinWarmDRAMBytes = jw.Breakdown.BytesFromDRAM

	st := cache.Stats()
	res.GroupHits = st.Hits
	res.GroupMisses = st.Misses
	res.CachedBytes = st.BytesCached
	return res, nil
}

// sequenceJoinPlan lowers tpch.Q3SQL against the two placed tables.
func sequenceJoinPlan(li, ord *table.Table) (*engine.JoinPlan, error) {
	lookup := func(name string) (*geometry.Schema, error) {
		switch name {
		case "lineitem":
			return li.Schema(), nil
		case "orders":
			return ord.Schema(), nil
		}
		return nil, fmt.Errorf("sequence experiment: unknown table %q", name)
	}
	st, err := sql.Parse(tpch.Q3SQL)
	if err != nil {
		return nil, err
	}
	root, err := sql.LowerCatalog(st, lookup)
	if err != nil {
		return nil, err
	}
	jp, _, err := engine.FromJoinPlan(root, lookup)
	if err != nil {
		return nil, err
	}
	return jp, nil
}

// WriteTable renders the sequence.
func (r *SequenceResult) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "Sequence-aware caching — %d lineitem rows, shifting ship-date scans + Q3-class join\n", r.Rows)
	fmt.Fprintf(w, "%-6s %-16s %14s %14s %8s %10s\n", "step", "window", "cold(cyc)", "warm(cyc)", "warm?", "passed")
	for _, s := range r.Steps {
		mark := "miss"
		if s.Warm {
			mark = "hit"
		}
		fmt.Fprintf(w, "%-6d %-16s %14d %14d %8s %10d\n",
			s.Step, s.Window, s.ColdCycles, s.WarmCycles, mark, s.RowsPassed)
	}
	fmt.Fprintf(w, "%-23s %14d %14d %8.2fx\n", "scan totals",
		r.ColdTotalCycles, r.WarmTotalCycles, ratio(r.ColdTotalCycles, r.WarmTotalCycles))
	fmt.Fprintf(w, "%-23s %14d %14d %8.2fx\n", "Q3-class join",
		r.JoinColdCycles, r.JoinWarmCycles, ratio(r.JoinColdCycles, r.JoinWarmCycles))
	fmt.Fprintf(w, "%-23s %14d %14d %8.2fx\n", "  join producer",
		r.JoinColdProducerCycles, r.JoinWarmProducerCycles, ratio(r.JoinColdProducerCycles, r.JoinWarmProducerCycles))
	fmt.Fprintf(w, "%-23s %14d %14d %8.2fx\n", "  join DRAM bytes",
		r.JoinColdDRAMBytes, r.JoinWarmDRAMBytes, ratio(r.JoinColdDRAMBytes, r.JoinWarmDRAMBytes))
	fmt.Fprintf(w, "group cache: %d hits, %d misses, %s resident\n",
		r.GroupHits, r.GroupMisses, fmtMB(int(r.CachedBytes)))
}

func ratio(cold, warm uint64) float64 {
	if warm == 0 {
		return 0
	}
	return float64(cold) / float64(warm)
}

// CheckShape verifies the caching claims: the first cached run costs exactly
// the cold run (recording is free in the model), every later step replays
// warm and beats cold, totals and the join follow, and the cache counters
// account for every lookup.
func (r *SequenceResult) CheckShape() []string {
	var bad []string
	for i, s := range r.Steps {
		if i == 0 {
			if s.Warm {
				bad = append(bad, "sequence: step 0 claimed a warm hit against an empty cache")
			}
			if s.WarmCycles != s.ColdCycles {
				bad = append(bad, fmt.Sprintf("sequence: step 0 miss cost %d cycles, cold cost %d — recording must be free", s.WarmCycles, s.ColdCycles))
			}
			continue
		}
		if !s.Warm {
			bad = append(bad, fmt.Sprintf("sequence: step %d did not replay the cached group", s.Step))
		}
		if s.WarmCycles >= s.ColdCycles {
			bad = append(bad, fmt.Sprintf("sequence: step %d warm (%d) not cheaper than cold (%d)", s.Step, s.WarmCycles, s.ColdCycles))
		}
	}
	if r.WarmTotalCycles >= r.ColdTotalCycles {
		bad = append(bad, fmt.Sprintf("sequence: warm total %d not below cold total %d", r.WarmTotalCycles, r.ColdTotalCycles))
	}
	if r.JoinWarmCycles > r.JoinColdCycles {
		bad = append(bad, fmt.Sprintf("sequence: warm join (%d) costlier than cold join (%d)", r.JoinWarmCycles, r.JoinColdCycles))
	}
	if r.JoinWarmProducerCycles >= r.JoinColdProducerCycles {
		bad = append(bad, fmt.Sprintf("sequence: warm join producer (%d) not cheaper than cold (%d)", r.JoinWarmProducerCycles, r.JoinColdProducerCycles))
	}
	if r.JoinWarmDRAMBytes >= r.JoinColdDRAMBytes {
		bad = append(bad, fmt.Sprintf("sequence: warm join moved %d DRAM bytes, cold moved %d — replay must not re-gather", r.JoinWarmDRAMBytes, r.JoinColdDRAMBytes))
	}
	wantHits := uint64(len(r.Steps)-1) + uint64(r.JoinSources)
	wantMisses := uint64(1 + r.JoinSources)
	if r.GroupHits != wantHits || r.GroupMisses != wantMisses {
		bad = append(bad, fmt.Sprintf("sequence: cache saw %d hits / %d misses, want %d / %d",
			r.GroupHits, r.GroupMisses, wantHits, wantMisses))
	}
	return bad
}
