package experiments

import (
	"fmt"

	"rfabric/internal/compress"
	"rfabric/internal/engine"
	"rfabric/internal/geometry"
	"rfabric/internal/storage"
	"rfabric/internal/table"
	"rfabric/internal/tpch"
)

// CompressionPoint reports one codec over one column.
type CompressionPoint struct {
	Codec        string
	ColumnBytes  int
	EncodedBytes int
	Ratio        float64
	RandomAccess bool
}

// CompressionResult is the §III-D study: how each implemented encoding
// compresses representative lineitem columns and whether it can serve the
// fabric's scattered accesses.
type CompressionResult struct {
	Points []CompressionPoint
}

// AblationCompression encodes lineitem's shipdate column (sorted-ish dates:
// delta-friendly), shipmode column (low cardinality: dictionary/RLE
// friendly), and comment column (text: huffman/LZ friendly) with every
// codec that applies.
func AblationCompression(opt Options, rows int) (*CompressionResult, error) {
	tbl, err := tpch.NewLineitem(rows, opt.Seed)
	if err != nil {
		return nil, err
	}
	sch := tbl.Schema()
	colBytes := func(col int) []byte {
		w := sch.Column(col).Width
		out := make([]byte, 0, rows*w)
		for r := 0; r < rows; r++ {
			p := tbl.RowPayload(r)
			out = append(out, p[sch.Offset(col):sch.Offset(col)+w]...)
		}
		return out
	}
	res := &CompressionResult{}
	add := func(codec string, raw, encoded int, random bool) {
		res.Points = append(res.Points, CompressionPoint{
			Codec:        codec,
			ColumnBytes:  raw,
			EncodedBytes: encoded,
			Ratio:        float64(raw) / float64(encoded),
			RandomAccess: random,
		})
	}

	// Dictionary over l_shipmode (7 distinct values).
	mode := colBytes(tpch.LShipMode)
	dict, err := compress.EncodeDict(mode, sch.Column(tpch.LShipMode).Width)
	if err != nil {
		return nil, err
	}
	add("dictionary(l_shipmode)", len(mode), dict.EncodedSize(), true)

	// Delta over l_orderkey (monotone-ish int64).
	keys := make([]int64, rows)
	for r := 0; r < rows; r++ {
		v, err := tbl.Get(r, tpch.LOrderKey)
		if err != nil {
			return nil, err
		}
		keys[r] = v.Int
	}
	delta := compress.EncodeDelta(keys)
	add("delta(l_orderkey)", rows*8, delta.EncodedSize(), true)

	// Huffman over l_comment text.
	comment := colBytes(tpch.LComment)
	huff, err := compress.EncodeHuffman(comment, 4096)
	if err != nil {
		return nil, err
	}
	add("huffman(l_comment)", len(comment), huff.EncodedSize(), true)

	// RLE over l_linestatus (long runs are rare in row order, so the ratio
	// is honest, not cherry-picked).
	status := colBytes(tpch.LLineStatus)
	rle, err := compress.EncodeRLE(status, 1)
	if err != nil {
		return nil, err
	}
	add("rle(l_linestatus)", len(status), rle.EncodedSize(), false)

	// LZ77 over l_comment.
	lz := compress.EncodeLZ77(comment)
	add("lz77(l_comment)", len(comment), len(lz), false)

	// The through-fabric payoff: project the two wide text columns of a
	// dictionary-encoded copy and compare shipped bytes against the raw
	// table — §III-D's claim that encodings "benefit any groups of columns
	// requested by ephemeral columns".
	sys, err := engine.NewSystem(opt.System)
	if err != nil {
		return nil, err
	}
	base := sys.Arena.Alloc(int64(rows * sch.RowBytes()))
	placed, err := table.New("lineitem", sch, table.WithCapacity(rows), table.WithBaseAddr(base))
	if err != nil {
		return nil, err
	}
	if err := tpch.Generate(placed, rows, opt.Seed); err != nil {
		return nil, err
	}
	encoded, err := compress.EncodeTableDict(placed, []int{tpch.LShipInstruct, tpch.LShipMode},
		sys.Arena.Alloc(int64(rows*sch.RowBytes())))
	if err != nil {
		return nil, err
	}
	ship := func(tbl *table.Table, cols ...int) (int, error) {
		geom, err := geometry.NewGeometry(tbl.Schema(), cols...)
		if err != nil {
			return 0, err
		}
		ev, err := sys.Fab.Configure(tbl, geom)
		if err != nil {
			return 0, err
		}
		before := sys.Fab.Stats().BytesShipped
		ev.Materialize()
		return int(sys.Fab.Stats().BytesShipped - before), nil
	}
	rawBytes, err := ship(placed, tpch.LShipInstruct, tpch.LShipMode)
	if err != nil {
		return nil, err
	}
	encBytes, err := ship(encoded.Table, tpch.LShipInstruct, tpch.LShipMode)
	if err != nil {
		return nil, err
	}
	add("fabric-ship(raw strings)", rawBytes, rawBytes, true)
	add("fabric-ship(dict codes)", rawBytes, encBytes+encoded.DictionaryBytes(), true)

	return res, nil
}

// WriteTable renders the codec study.
func (r *CompressionResult) WriteTable(w interface{ Write([]byte) (int, error) }) {
	fmt.Fprintf(w, "Ablation ABL-COMPRESS — codecs over lineitem columns (§III-D)\n")
	fmt.Fprintf(w, "  %-24s %12s %12s %8s %s\n", "codec(column)", "raw", "encoded", "ratio", "fabric-compatible")
	for _, p := range r.Points {
		fmt.Fprintf(w, "  %-24s %12d %12d %8.2f %v\n", p.Codec, p.ColumnBytes, p.EncodedBytes, p.Ratio, p.RandomAccess)
	}
}

// StoragePoint is one storage-tier configuration.
type StoragePoint struct {
	Setting     string
	Cycles      uint64
	BytesToHost uint64
}

// StorageResult is the §IV-D study: Relational Storage's near-storage
// projection+selection+decompression against the host-side baseline, on
// TPC-H Q6's access pattern.
type StorageResult struct {
	Points []StoragePoint
}

// AblationStorage runs Q6's geometry and predicates over a lineitem table
// stored on the flash model, raw and page-compressed, near-storage and on
// the host.
func AblationStorage(opt Options, rows int) (*StorageResult, error) {
	tbl, err := tpch.NewLineitem(rows, opt.Seed)
	if err != nil {
		return nil, err
	}
	q := tpch.Q6()
	geom, err := geometry.NewGeometry(tbl.Schema(), q.NeededColumns()...)
	if err != nil {
		return nil, err
	}
	res := &StorageResult{}
	var reference []byte
	for _, compressed := range []bool{false, true} {
		dev, err := storage.NewDevice(storage.DefaultDeviceConfig())
		if err != nil {
			return nil, err
		}
		ps, err := storage.StoreTable(dev, tbl, compressed)
		if err != nil {
			return nil, err
		}
		near, err := ps.ScanNearStorage(geom, q.Selection)
		if err != nil {
			return nil, err
		}
		host, err := ps.ScanHost(geom, q.Selection)
		if err != nil {
			return nil, err
		}
		if string(near.Packed) != string(host.Packed) {
			return nil, fmt.Errorf("storage: near-storage and host scans disagree (compressed=%v)", compressed)
		}
		if reference == nil {
			reference = near.Packed
		} else if string(reference) != string(near.Packed) {
			return nil, fmt.Errorf("storage: compressed layout changed the result")
		}
		label := "raw"
		if compressed {
			label = "lz77-pages"
		}
		res.Points = append(res.Points,
			StoragePoint{Setting: label + "/near-storage", Cycles: near.Cycles, BytesToHost: near.BytesToHost},
			StoragePoint{Setting: label + "/host", Cycles: host.Cycles, BytesToHost: host.BytesToHost},
		)
	}
	return res, nil
}

// WriteTable renders the storage study.
func (r *StorageResult) WriteTable(w interface{ Write([]byte) (int, error) }) {
	fmt.Fprintf(w, "Ablation ABL-STORAGE — Relational Storage vs host-side scan (Q6 pattern, §IV-D)\n")
	fmt.Fprintf(w, "  %-24s %14s %14s\n", "setting", "cycles", "bytes-to-host")
	for _, p := range r.Points {
		fmt.Fprintf(w, "  %-24s %14d %14d\n", p.Setting, p.Cycles, p.BytesToHost)
	}
}
