package experiments

import (
	"fmt"
	"io"

	"rfabric/internal/engine"
	"rfabric/internal/expr"
	"rfabric/internal/geometry"
	"rfabric/internal/table"
	"rfabric/internal/tpch"
)

// AblationPoint is one setting of an ablation sweep.
type AblationPoint struct {
	Setting string
	Cycles  map[string]uint64
	// BytesToCPU is filled by sweeps where data movement is the point.
	BytesToCPU uint64
}

// AblationResult is one full sweep.
type AblationResult struct {
	Name   string
	Knob   string
	Points []AblationPoint
}

// WriteTable renders the sweep.
func (r *AblationResult) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "Ablation %s — sweep of %s\n", r.Name, r.Knob)
	for _, p := range r.Points {
		fmt.Fprintf(w, "  %-16s", p.Setting)
		for _, name := range []string{"ROW", "COL", "RM", "IDX"} {
			if c, ok := p.Cycles[name]; ok {
				fmt.Fprintf(w, " %s=%-12d", name, c)
			}
		}
		if p.BytesToCPU > 0 {
			fmt.Fprintf(w, " bytesToCPU=%d", p.BytesToCPU)
		}
		fmt.Fprintln(w)
	}
}

// AblationPrefetchStreams sweeps the prefetcher's stream budget, the
// mechanism behind COL's ≤4-column advantage in Figure 5. The query touches
// 8 columns; with generous stream budgets COL recovers, with 1 stream it
// collapses.
func AblationPrefetchStreams(opt Options, streams []int) (*AblationResult, error) {
	res := &AblationResult{Name: "ABL-PREFETCH", Knob: "prefetcher stream budget"}
	q := engine.Query{Projection: seq(0, 8)}
	for _, n := range streams {
		o := opt
		o.System.Cache.Prefetch.Streams = n
		f, err := newMicroFixture(o, 16, o.MicroRows)
		if err != nil {
			return nil, err
		}
		all, err := f.runAll(q)
		if err != nil {
			return nil, fmt.Errorf("streams=%d: %w", n, err)
		}
		res.Points = append(res.Points, AblationPoint{
			Setting: fmt.Sprintf("streams=%d", n),
			Cycles:  cyclesOf(all),
		})
	}
	return res, nil
}

// AblationFabricBuffer sweeps the on-fabric data memory (the paper's
// prototype has 2 MB, refilled when full, §V).
func AblationFabricBuffer(opt Options, bufferBytes []int) (*AblationResult, error) {
	res := &AblationResult{Name: "ABL-BUFFER", Knob: "fabric buffer bytes"}
	// A wide geometry so realistic buffer sizes need multiple refills.
	q := engine.Query{Projection: seq(0, 12)}
	for _, b := range bufferBytes {
		o := opt
		o.System.Fabric.BufferBytes = b
		f, err := newMicroFixture(o, 16, o.MicroRows)
		if err != nil {
			return nil, err
		}
		f.sys.ResetState()
		rm := &engine.RMEngine{Tbl: f.tbl, Sys: f.sys}
		r, err := rm.Execute(q)
		if err != nil {
			return nil, fmt.Errorf("buffer=%d: %w", b, err)
		}
		res.Points = append(res.Points, AblationPoint{
			Setting: fmt.Sprintf("buffer=%dKiB", b>>10),
			Cycles:  map[string]uint64{"RM": r.Breakdown.TotalCycles},
		})
	}
	return res, nil
}

// AblationFabricClock sweeps the CPU:fabric clock ratio (the prototype runs
// the programmable logic at 100 MHz against 1.5 GHz cores, ratio 15).
func AblationFabricClock(opt Options, ratios []int) (*AblationResult, error) {
	res := &AblationResult{Name: "ABL-CLOCK", Knob: "CPU cycles per fabric cycle"}
	q := engine.Query{Projection: seq(0, 2)}
	for _, cr := range ratios {
		o := opt
		o.System.Fabric.ClockRatio = cr
		f, err := newMicroFixture(o, 16, o.MicroRows)
		if err != nil {
			return nil, err
		}
		f.sys.ResetState()
		rm := &engine.RMEngine{Tbl: f.tbl, Sys: f.sys}
		r, err := rm.Execute(q)
		if err != nil {
			return nil, fmt.Errorf("ratio=%d: %w", cr, err)
		}
		res.Points = append(res.Points, AblationPoint{
			Setting: fmt.Sprintf("ratio=1:%d", cr),
			Cycles:  map[string]uint64{"RM": r.Breakdown.TotalCycles},
		})
	}
	return res, nil
}

// AblationDRAMBanks sweeps bank-level parallelism, which bounds how well the
// fabric overlaps its gathers.
func AblationDRAMBanks(opt Options, banks []int) (*AblationResult, error) {
	res := &AblationResult{Name: "ABL-BANKS", Knob: "DRAM banks"}
	q := engine.Query{Projection: seq(0, 6)}
	for _, b := range banks {
		o := opt
		o.System.DRAM.Banks = b
		f, err := newMicroFixture(o, 16, o.MicroRows)
		if err != nil {
			return nil, err
		}
		all, err := f.runAll(q)
		if err != nil {
			return nil, fmt.Errorf("banks=%d: %w", b, err)
		}
		res.Points = append(res.Points, AblationPoint{
			Setting: fmt.Sprintf("banks=%d", b),
			Cycles:  cyclesOf(all),
		})
	}
	return res, nil
}

// AblationMVCC compares hardware timestamp filtering (in the fabric,
// §III-C) against the software visibility check the row engine performs,
// over a versioned table where a third of the versions are dead.
func AblationMVCC(opt Options, rows int) (*AblationResult, error) {
	sys, err := engine.NewSystem(opt.System)
	if err != nil {
		return nil, err
	}
	sch := wide16Schema()
	base := sys.Arena.Alloc(int64(rows * (sch.RowBytes() + table.MVCCHeaderBytes)))
	tbl, err := table.New("versions", sch, table.WithMVCC(), table.WithCapacity(rows), table.WithBaseAddr(base))
	if err != nil {
		return nil, err
	}
	rng := newRand(opt.Seed)
	vals := make([]table.Value, sch.NumColumns())
	for r := 0; r < rows; r++ {
		for c := range vals {
			vals[c] = table.I32(int32(rng.Intn(1000)))
		}
		if _, err := tbl.Append(1, vals...); err != nil {
			return nil, err
		}
	}
	for r := 0; r < rows; r += 3 {
		if err := tbl.SetEndTS(r, 5); err != nil {
			return nil, err
		}
	}

	snap := uint64(7)
	q := engine.Query{Projection: []int{0, 4, 8}, Snapshot: &snap}

	res := &AblationResult{Name: "ABL-MVCC", Knob: "visibility filtering location"}
	sys.ResetState()
	row, err := (&engine.RowEngine{Tbl: tbl, Sys: sys}).Execute(q)
	if err != nil {
		return nil, err
	}
	sys.ResetState()
	rm, err := (&engine.RMEngine{Tbl: tbl, Sys: sys}).Execute(q)
	if err != nil {
		return nil, err
	}
	if err := rm.EquivalentTo(row, 0); err != nil {
		return nil, fmt.Errorf("hardware and software visibility disagree: %w", err)
	}
	res.Points = append(res.Points,
		AblationPoint{Setting: "software(ROW)", Cycles: map[string]uint64{"ROW": row.Breakdown.TotalCycles}},
		AblationPoint{Setting: "hardware(RM)", Cycles: map[string]uint64{"RM": rm.Breakdown.TotalCycles}},
	)
	return res, nil
}

// AblationPushdown compares the three RM operating points on TPC-H Q6:
// projection-only (the paper's prototype), selection pushdown, and
// selection+aggregation pushdown (§IV-B). Aggregation pushdown is measured
// on the plain-column sum the hardware supports.
func AblationPushdown(opt Options, rows int) (*AblationResult, error) {
	sys, err := engine.NewSystem(opt.System)
	if err != nil {
		return nil, err
	}
	sch := tpch.LineitemSchema()
	base := sys.Arena.Alloc(int64(rows * sch.RowBytes()))
	tbl, err := table.New("lineitem", sch, table.WithCapacity(rows), table.WithBaseAddr(base))
	if err != nil {
		return nil, err
	}
	if err := tpch.Generate(tbl, rows, opt.Seed); err != nil {
		return nil, err
	}
	q := tpch.Q6()
	// The plain-column variant sums l_extendedprice so the fabric can fold
	// it without arithmetic.
	qPlain := q
	qPlain.Aggregates = []engine.AggTerm{
		{Kind: expr.Count},
		{Kind: expr.Sum, Arg: expr.ColRef{Col: tpch.LExtendedPrice}},
	}

	res := &AblationResult{Name: "ABL-PUSHDOWN", Knob: "fabric operator pushdown"}
	run := func(label string, e *engine.RMEngine, query engine.Query) error {
		sys.ResetState()
		r, err := e.Execute(query)
		if err != nil {
			return err
		}
		res.Points = append(res.Points, AblationPoint{
			Setting:    label,
			Cycles:     map[string]uint64{"RM": r.Breakdown.TotalCycles},
			BytesToCPU: r.Breakdown.BytesToCPU,
		})
		return nil
	}
	if err := run("projection-only", &engine.RMEngine{Tbl: tbl, Sys: sys}, q); err != nil {
		return nil, err
	}
	if err := run("+selection", &engine.RMEngine{Tbl: tbl, Sys: sys, PushSelection: true}, q); err != nil {
		return nil, err
	}
	if err := run("+aggregation", &engine.RMEngine{Tbl: tbl, Sys: sys, PushSelection: true, PushAggregation: true}, qPlain); err != nil {
		return nil, err
	}
	return res, nil
}

func cyclesOf(all map[string]*engine.Result) map[string]uint64 {
	out := make(map[string]uint64, len(all))
	for name, r := range all {
		out[name] = r.Breakdown.TotalCycles
	}
	return out
}

func wide16Schema() *geometry.Schema {
	defs := make([]geometry.Column, 16)
	for i := range defs {
		defs[i] = geometry.Column{Name: fmt.Sprintf("c%02d", i), Type: geometry.Int32, Width: 4}
	}
	return geometry.MustSchema(defs...)
}
