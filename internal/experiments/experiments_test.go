package experiments

import (
	"testing"
)

// quickOptions shrinks the sweeps so the shape tests run in seconds while
// the tables still exceed the simulated L2.
func quickOptions() Options {
	opt := DefaultOptions()
	opt.MicroRows = 48_000
	opt.Fig7TargetMB = []int{1, 2}
	return opt
}

func TestFigure5ReproducesPaperShape(t *testing.T) {
	r, err := Figure5(quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 11 {
		t.Fatalf("got %d projectivity points, want 11", len(r.Points))
	}
	for _, v := range r.CheckShape() {
		t.Error(v)
	}
	// The paper's RM curve is flat-ish: the spread across projectivities
	// should stay well under the COL curve's spread.
	lo, hi := r.Points[0].Normalized["RM"], r.Points[0].Normalized["RM"]
	for _, p := range r.Points {
		n := p.Normalized["RM"]
		if n < lo {
			lo = n
		}
		if n > hi {
			hi = n
		}
	}
	if hi/lo > 2.0 {
		t.Errorf("RM normalized time varies %.2fx across projectivity; paper's curve is nearly flat", hi/lo)
	}
}

func TestFigure6ReproducesPaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full 10x10 grid; skipped with -short")
	}
	opt := quickOptions()
	opt.MicroRows = 24_000
	r, err := Figure6(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range r.CheckShape() {
		t.Error(v)
	}
	if r.PassedRows != int64(opt.MicroRows) {
		t.Errorf("grid predicates must pass every row; passed %d of %d", r.PassedRows, opt.MicroRows)
	}
}

func TestFigure7Q1ReproducesPaperShape(t *testing.T) {
	r, err := Figure7(quickOptions(), Q1)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range r.CheckShape() {
		t.Error(v)
	}
}

func TestFigure7Q6ReproducesPaperShape(t *testing.T) {
	r, err := Figure7(quickOptions(), Q6)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range r.CheckShape() {
		t.Error(v)
	}
	// Q6 should be selective: roughly 2 % of rows qualify.
	for _, p := range r.Points {
		sel := float64(p.RowsPassed) / float64(p.Rows)
		if sel < 0.005 || sel > 0.06 {
			t.Errorf("Q6 selectivity %.4f at %d rows outside the TPC-H ballpark (~0.019)", sel, p.Rows)
		}
	}
}

func TestFigure7ScalesLinearly(t *testing.T) {
	opt := quickOptions()
	opt.Fig7TargetMB = []int{1, 4}
	r, err := Figure7(opt, Q6)
	if err != nil {
		t.Fatal(err)
	}
	// 4x the data should take roughly 4x the cycles on every engine (the
	// paper's log-log series are straight lines).
	for _, name := range []string{"ROW", "COL", "RM"} {
		ratio := float64(r.Points[1].Cycles[name]) / float64(r.Points[0].Cycles[name])
		if ratio < 3.0 || ratio > 5.5 {
			t.Errorf("%s scaled %.2fx for 4x data; expected near-linear scaling", name, ratio)
		}
	}
}

func TestAblationOffloadShape(t *testing.T) {
	r, err := AblationOffload(quickOptions(), 12_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range r.CheckShape() {
		t.Error(v)
	}
	if len(r.Points) != 8 {
		t.Errorf("got %d grid points, want 8", len(r.Points))
	}
}
