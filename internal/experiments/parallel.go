package experiments

import (
	"fmt"
	"io"
	"time"

	"rfabric/internal/shard"
	"rfabric/internal/table"
	"rfabric/internal/tpch"
)

// ParallelPoint is one worker count of the parallel-speedup sweep.
type ParallelPoint struct {
	Workers    int
	Cycles     uint64 // modeled makespan + merge cost
	WallNanos  int64  // wall-clock time of the scatter/gather run
	RowsPassed int64
	Checksum   uint64
	Speedup    float64 // modeled, vs the 1-worker run
}

// ParallelResult is the morsel/shard parallelism experiment: TPC-H Q6 over
// a lineitem table hash-free range-sharded on l_orderkey, executed with a
// growing coordinator worker pool. The logical result must not move at all;
// the modeled makespan must fall toward the slowest shard.
type ParallelResult struct {
	Shards int
	Rows   int
	Points []ParallelPoint
}

// ParallelSpeedup runs Q6 over `rows` lineitem rows split across `shards`
// equal key ranges, once per entry of `workers`. Q6 carries no l_orderkey
// predicate, so every shard is touched and the scatter phase has the full
// fan-out to schedule.
func ParallelSpeedup(opt Options, shards, rows int, workers []int) (*ParallelResult, error) {
	if shards < 2 {
		return nil, fmt.Errorf("parallel speedup: need at least 2 shards, got %d", shards)
	}
	// Reference rows come from the standard generator; the sharded table
	// routes them by key range. Keys run 1..rows/4+1 (four lines per order).
	ref, err := tpch.NewLineitem(rows, opt.Seed)
	if err != nil {
		return nil, err
	}
	maxKey := int64(rows/4 + 1)
	bounds := make([]int64, shards-1)
	for i := range bounds {
		bounds[i] = maxKey * int64(i+1) / int64(shards)
	}
	st, err := shard.New("lineitem", tpch.LineitemSchema(), 0, bounds, rows, opt.System)
	if err != nil {
		return nil, err
	}
	cols := ref.Schema().NumColumns()
	row := make([]table.Value, cols)
	for r := 0; r < ref.NumRows(); r++ {
		for c := 0; c < cols; c++ {
			v, err := ref.Get(r, c)
			if err != nil {
				return nil, err
			}
			row[c] = v
		}
		if err := st.Insert(row...); err != nil {
			return nil, err
		}
	}

	q := tpch.Q6()
	res := &ParallelResult{Shards: shards, Rows: rows}
	var base *shard.Result
	for _, w := range workers {
		st.Workers = w
		start := time.Now()
		r, err := st.Execute(q)
		if err != nil {
			return nil, fmt.Errorf("parallel speedup: %d workers: %w", w, err)
		}
		wall := time.Since(start)
		if base == nil {
			base = r
		} else if r.RowsPassed != base.RowsPassed || r.Checksum != base.Checksum {
			return nil, fmt.Errorf("parallel speedup: %d workers changed the result: rows %d/%d checksum %#x/%#x",
				w, r.RowsPassed, base.RowsPassed, r.Checksum, base.Checksum)
		}
		res.Points = append(res.Points, ParallelPoint{
			Workers:    w,
			Cycles:     r.Cycles,
			WallNanos:  wall.Nanoseconds(),
			RowsPassed: r.RowsPassed,
			Checksum:   r.Checksum,
			Speedup:    float64(base.Cycles) / float64(r.Cycles),
		})
	}
	return res, nil
}

// WriteTable renders the sweep.
func (r *ParallelResult) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "Parallel speedup — TPC-H Q6, %d rows over %d shards\n", r.Rows, r.Shards)
	fmt.Fprintf(w, "%-8s %14s %10s %12s %10s %18s\n",
		"workers", "cycles", "speedup", "wall(us)", "passed", "checksum")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%-8d %14d %9.2fx %12.1f %10d %#18x\n",
			p.Workers, p.Cycles, p.Speedup, float64(p.WallNanos)/1e3, p.RowsPassed, p.Checksum)
	}
}

// CheckShape verifies the parallelism claims: the result is bit-identical
// across worker counts (enforced during the run) and the modeled makespan
// never grows as workers are added.
func (r *ParallelResult) CheckShape() []string {
	var bad []string
	for i := 1; i < len(r.Points); i++ {
		prev, cur := r.Points[i-1], r.Points[i]
		if cur.Workers > prev.Workers && cur.Cycles > prev.Cycles {
			bad = append(bad, fmt.Sprintf("parallel: cycles grew from %d to %d going from %d to %d workers",
				prev.Cycles, cur.Cycles, prev.Workers, cur.Workers))
		}
	}
	return bad
}
