// Package mvcc layers multi-version concurrency control over row tables,
// following the paper's design (ICDE 2023, §III-C): the row-oriented base
// data is the single source of truth, updates append new row versions, and
// every version carries two timestamps — begin of validity and end of
// validity — that the fabric compares in hardware to ship only the versions
// visible to a query's snapshot. Transactions get snapshot isolation with
// first-committer-wins write-write conflict detection.
package mvcc

import (
	"errors"
	"fmt"
	"sync"

	"rfabric/internal/table"
)

// Common errors.
var (
	ErrConflict    = errors.New("mvcc: write-write conflict")
	ErrTxnFinished = errors.New("mvcc: transaction already committed or aborted")
	ErrNoMVCC      = errors.New("mvcc: table was created without MVCC headers")
)

// Manager coordinates transactions over one MVCC table. It is safe for
// concurrent use.
type Manager struct {
	mu     sync.RWMutex
	tbl    *table.Table
	clock  uint64 // last issued timestamp; commit timestamps are clock+1...
	nextID uint64
}

// NewManager wraps an MVCC table.
func NewManager(tbl *table.Table) (*Manager, error) {
	if tbl == nil {
		return nil, errors.New("mvcc: nil table")
	}
	if !tbl.HasMVCC() {
		return nil, ErrNoMVCC
	}
	return &Manager{tbl: tbl}, nil
}

// Table returns the underlying table. Use ReadView to access it safely
// while writers are active.
func (m *Manager) Table() *table.Table { return m.tbl }

// Now returns the current logical time: a snapshot taken at Now sees every
// committed transaction.
func (m *Manager) Now() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.clock
}

// ReadView runs fn with a read lock held and the freshest snapshot
// timestamp. The fabric's ephemeral views and software scans both read the
// table heap directly, so concurrent readers must bracket their scans with
// a view while writers are active.
func (m *Manager) ReadView(fn func(snapshot uint64) error) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return fn(m.clock)
}

// Begin starts a transaction with a snapshot of everything committed so far.
func (m *Manager) Begin() *Txn {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID++
	return &Txn{
		mgr:    m,
		id:     m.nextID,
		readTS: m.clock,
	}
}

// Txn is one snapshot-isolation transaction. Its write set buffers until
// Commit; reads see the snapshot plus the transaction's own writes is NOT
// provided — reads are snapshot-only, which the examples respect.
// A Txn is not safe for concurrent use.
type Txn struct {
	mgr      *Manager
	id       uint64
	readTS   uint64
	inserts  [][]table.Value
	updates  []pendingUpdate
	deletes  []int
	finished bool
}

type pendingUpdate struct {
	row  int
	vals []table.Value
}

// ID returns the transaction id.
func (t *Txn) ID() uint64 { return t.id }

// ReadTS returns the snapshot timestamp the transaction reads at.
func (t *Txn) ReadTS() uint64 { return t.readTS }

// Insert buffers a new row.
func (t *Txn) Insert(vals ...table.Value) error {
	if t.finished {
		return ErrTxnFinished
	}
	cp := make([]table.Value, len(vals))
	copy(cp, vals)
	t.inserts = append(t.inserts, cp)
	return nil
}

// Update buffers a full-row replacement of the version at row index row.
// The row must be visible to the transaction's snapshot.
func (t *Txn) Update(row int, vals ...table.Value) error {
	if t.finished {
		return ErrTxnFinished
	}
	if !t.visible(row) {
		return fmt.Errorf("mvcc: txn %d updates row %d invisible at ts %d", t.id, row, t.readTS)
	}
	cp := make([]table.Value, len(vals))
	copy(cp, vals)
	t.updates = append(t.updates, pendingUpdate{row: row, vals: cp})
	return nil
}

// Delete buffers a deletion of the version at row index row.
func (t *Txn) Delete(row int) error {
	if t.finished {
		return ErrTxnFinished
	}
	if !t.visible(row) {
		return fmt.Errorf("mvcc: txn %d deletes row %d invisible at ts %d", t.id, row, t.readTS)
	}
	t.deletes = append(t.deletes, row)
	return nil
}

func (t *Txn) visible(row int) bool {
	t.mgr.mu.RLock()
	defer t.mgr.mu.RUnlock()
	if row < 0 || row >= t.mgr.tbl.NumRows() {
		return false
	}
	return t.mgr.tbl.VisibleAt(row, t.readTS)
}

// Get reads column col of row at the transaction's snapshot.
func (t *Txn) Get(row, col int) (table.Value, error) {
	t.mgr.mu.RLock()
	defer t.mgr.mu.RUnlock()
	if !t.mgr.tbl.VisibleAt(row, t.readTS) {
		return table.Value{}, fmt.Errorf("mvcc: row %d not visible at ts %d", row, t.readTS)
	}
	return t.mgr.tbl.Get(row, col)
}

// Commit validates the write set (first-committer-wins: any touched row
// version ended after our snapshot aborts us) and applies it atomically
// with a single commit timestamp.
func (t *Txn) Commit() (uint64, error) {
	if t.finished {
		return 0, ErrTxnFinished
	}
	t.finished = true
	m := t.mgr
	m.mu.Lock()
	defer m.mu.Unlock()

	// Validation: every row we update or delete must still be the live
	// version. A concurrent committer that ended it wins.
	for _, u := range t.updates {
		if _, end := m.tbl.Timestamps(u.row); end != table.InfinityTS {
			return 0, fmt.Errorf("%w: row %d ended at %d (txn %d read at %d)", ErrConflict, u.row, end, t.id, t.readTS)
		}
	}
	for _, d := range t.deletes {
		if _, end := m.tbl.Timestamps(d); end != table.InfinityTS {
			return 0, fmt.Errorf("%w: row %d ended at %d (txn %d read at %d)", ErrConflict, d, end, t.id, t.readTS)
		}
	}

	commitTS := m.clock + 1
	for _, vals := range t.inserts {
		if _, err := m.tbl.Append(commitTS, vals...); err != nil {
			return 0, fmt.Errorf("mvcc: applying insert: %w", err)
		}
	}
	for _, u := range t.updates {
		if _, err := m.tbl.Update(u.row, commitTS, u.vals...); err != nil {
			return 0, fmt.Errorf("mvcc: applying update: %w", err)
		}
	}
	for _, d := range t.deletes {
		if err := m.tbl.SetEndTS(d, commitTS); err != nil {
			return 0, fmt.Errorf("mvcc: applying delete: %w", err)
		}
	}
	m.clock = commitTS
	return commitTS, nil
}

// Abort discards the write set.
func (t *Txn) Abort() {
	t.finished = true
	t.inserts = nil
	t.updates = nil
	t.deletes = nil
}

// VisibleRows returns the row indices visible at snapshot ts — the software
// twin of the fabric's hardware visibility filter, used by baselines and by
// tests that cross-check the fabric.
func (m *Manager) VisibleRows(ts uint64) []int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []int
	for r := 0; r < m.tbl.NumRows(); r++ {
		if m.tbl.VisibleAt(r, ts) {
			out = append(out, r)
		}
	}
	return out
}
