package mvcc

import (
	"errors"
	"sync"
	"testing"

	"rfabric/internal/geometry"
	"rfabric/internal/table"
)

func newManager(t *testing.T) *Manager {
	t.Helper()
	sch := geometry.MustSchema(
		geometry.Column{Name: "id", Type: geometry.Int64, Width: 8},
		geometry.Column{Name: "val", Type: geometry.Int64, Width: 8},
	)
	tbl := table.MustNew("t", sch, table.WithMVCC())
	m, err := NewManager(tbl)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	return m
}

func TestManagerRequiresMVCC(t *testing.T) {
	sch := geometry.MustSchema(geometry.Column{Name: "id", Type: geometry.Int64, Width: 8})
	plain := table.MustNew("t", sch)
	if _, err := NewManager(plain); !errors.Is(err, ErrNoMVCC) {
		t.Errorf("NewManager on plain table: %v, want ErrNoMVCC", err)
	}
	if _, err := NewManager(nil); err == nil {
		t.Error("nil table accepted")
	}
}

func TestInsertVisibleAfterCommit(t *testing.T) {
	m := newManager(t)
	txn := m.Begin()
	if err := txn.Insert(table.I64(1), table.I64(100)); err != nil {
		t.Fatal(err)
	}
	// Not visible before commit (nothing is even in the table).
	if m.Table().NumRows() != 0 {
		t.Error("insert applied before commit")
	}
	ts, err := txn.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if ts != 1 {
		t.Errorf("first commit ts = %d, want 1", ts)
	}
	if !m.Table().VisibleAt(0, ts) {
		t.Error("committed row invisible at its commit ts")
	}
	if m.Table().VisibleAt(0, ts-1) {
		t.Error("committed row visible before its commit ts")
	}
}

func TestSnapshotIsolationReadersDontSeeLaterCommits(t *testing.T) {
	m := newManager(t)
	t1 := m.Begin()
	if err := t1.Insert(table.I64(1), table.I64(100)); err != nil {
		t.Fatal(err)
	}
	if _, err := t1.Commit(); err != nil {
		t.Fatal(err)
	}

	reader := m.Begin() // snapshot at ts 1

	t2 := m.Begin()
	if err := t2.Update(0, table.I64(1), table.I64(999)); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Commit(); err != nil {
		t.Fatal(err)
	}

	// The reader still sees the old version.
	v, err := reader.Get(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v.Int != 100 {
		t.Errorf("reader saw %d, want the snapshot value 100", v.Int)
	}
	// A fresh transaction sees the new version (in the appended row).
	fresh := m.Begin()
	if _, err := fresh.Get(0, 1); err == nil {
		t.Error("fresh txn still sees the superseded version")
	}
	v2, err := fresh.Get(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Int != 999 {
		t.Errorf("fresh txn saw %d, want 999", v2.Int)
	}
}

func TestWriteWriteConflictFirstCommitterWins(t *testing.T) {
	m := newManager(t)
	setup := m.Begin()
	if err := setup.Insert(table.I64(1), table.I64(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := setup.Commit(); err != nil {
		t.Fatal(err)
	}

	a := m.Begin()
	b := m.Begin()
	if err := a.Update(0, table.I64(1), table.I64(10)); err != nil {
		t.Fatal(err)
	}
	if err := b.Update(0, table.I64(1), table.I64(20)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Commit(); err != nil {
		t.Fatalf("first committer failed: %v", err)
	}
	if _, err := b.Commit(); !errors.Is(err, ErrConflict) {
		t.Errorf("second committer: %v, want ErrConflict", err)
	}
}

func TestDeleteConflict(t *testing.T) {
	m := newManager(t)
	setup := m.Begin()
	_ = setup.Insert(table.I64(1), table.I64(0))
	if _, err := setup.Commit(); err != nil {
		t.Fatal(err)
	}
	a := m.Begin()
	b := m.Begin()
	if err := a.Delete(0); err != nil {
		t.Fatal(err)
	}
	if err := b.Delete(0); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Commit(); !errors.Is(err, ErrConflict) {
		t.Errorf("conflicting delete: %v, want ErrConflict", err)
	}
}

func TestAbortDiscardsWrites(t *testing.T) {
	m := newManager(t)
	txn := m.Begin()
	_ = txn.Insert(table.I64(1), table.I64(1))
	txn.Abort()
	if m.Table().NumRows() != 0 {
		t.Error("aborted insert reached the table")
	}
	if _, err := txn.Commit(); !errors.Is(err, ErrTxnFinished) {
		t.Errorf("commit after abort: %v, want ErrTxnFinished", err)
	}
	if err := txn.Insert(table.I64(2), table.I64(2)); !errors.Is(err, ErrTxnFinished) {
		t.Errorf("insert after abort: %v, want ErrTxnFinished", err)
	}
}

func TestUpdateInvisibleRowRejected(t *testing.T) {
	m := newManager(t)
	setup := m.Begin()
	_ = setup.Insert(table.I64(1), table.I64(0))
	if _, err := setup.Commit(); err != nil {
		t.Fatal(err)
	}
	// A transaction that began before the insert committed cannot update it.
	// (Simulate by deleting then trying to update the dead version.)
	del := m.Begin()
	if err := del.Delete(0); err != nil {
		t.Fatal(err)
	}
	if _, err := del.Commit(); err != nil {
		t.Fatal(err)
	}
	late := m.Begin()
	if err := late.Update(0, table.I64(1), table.I64(5)); err == nil {
		t.Error("update of a dead version accepted")
	}
}

func TestVisibleRows(t *testing.T) {
	m := newManager(t)
	for i := 0; i < 3; i++ {
		txn := m.Begin()
		_ = txn.Insert(table.I64(int64(i)), table.I64(0))
		if _, err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	del := m.Begin()
	if err := del.Delete(1); err != nil {
		t.Fatal(err)
	}
	if _, err := del.Commit(); err != nil {
		t.Fatal(err)
	}
	now := m.Now()
	vis := m.VisibleRows(now)
	if len(vis) != 2 || vis[0] != 0 || vis[1] != 2 {
		t.Errorf("VisibleRows(%d) = %v, want [0 2]", now, vis)
	}
	// At ts 3 (before the delete committed at 4) all three are visible.
	if got := m.VisibleRows(3); len(got) != 3 {
		t.Errorf("VisibleRows(3) = %v, want 3 rows", got)
	}
}

func TestConcurrentTransfersPreserveInvariant(t *testing.T) {
	m := newManager(t)
	const accounts = 50
	setup := m.Begin()
	for i := 0; i < accounts; i++ {
		_ = setup.Insert(table.I64(int64(i)), table.I64(100))
	}
	if _, err := setup.Commit(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				txn := m.Begin()
				rows := m.VisibleRows(txn.ReadTS())
				from := rows[(seed+i)%len(rows)]
				to := rows[(seed+i*7+1)%len(rows)]
				if from == to {
					txn.Abort()
					continue
				}
				fv, err1 := txn.Get(from, 1)
				tv, err2 := txn.Get(to, 1)
				if err1 != nil || err2 != nil {
					txn.Abort()
					continue
				}
				_ = txn.Update(from, table.I64(int64(from)), table.I64(fv.Int-1))
				_ = txn.Update(to, table.I64(int64(to)), table.I64(tv.Int+1))
				_, _ = txn.Commit() // conflicts are fine; they must just not corrupt
			}
		}(w)
	}
	wg.Wait()

	var total int64
	err := m.ReadView(func(ts uint64) error {
		for _, r := range m.VisibleRows(ts) {
			v, err := m.Table().Get(r, 1)
			if err != nil {
				return err
			}
			total += v.Int
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != accounts*100 {
		t.Errorf("total balance %d after concurrent transfers, want %d", total, accounts*100)
	}
}
