package engine

import (
	"errors"
	"fmt"

	"rfabric/internal/obs"
	"rfabric/internal/table"
)

// RowEngine is the row-oriented access path — the paper's ROW baseline.
// Every visited row pulls its full cache line(s) through the hierarchy
// whether or not the query needs the other attributes, which is precisely
// the pollution Relational Memory removes. As a Source it contributes the
// N-ary heap's layout and charges; the scan and consume loops live in the
// shared pipeline.
type RowEngine struct {
	Tbl *table.Table
	Sys *System

	// Tracer, when set, receives a span for this execution with leaves
	// that reconcile with the Breakdown. Nil means no tracing overhead.
	Tracer *obs.Tracer

	// ForceScalar pins execution to the tuple-at-a-time interpreter even for
	// query shapes the batch path handles. The two paths charge identical
	// modeled costs; the knob exists for equivalence tests and wall-clock
	// benchmarks.
	ForceScalar bool

	// scratch is the engine-owned batch workspace, allocated on first
	// vectorized execution and reused so steady-state scans allocate nothing
	// per batch.
	scratch *scanScratch
}

// Name implements Executor.
func (e *RowEngine) Name() string { return "ROW" }

func (e *RowEngine) tableLabel() string {
	if e.Tbl == nil {
		return ""
	}
	return e.Tbl.Name()
}

func (e *RowEngine) sysTracer() (*System, *obs.Tracer) { return e.Sys, e.Tracer }

// Execute runs q and returns its result with the modeled cost.
func (e *RowEngine) Execute(q Query) (*Result, error) { return Run(e, q) }

// openScan implements Source: the base heap is one strided segment whose
// per-row cost is the volcano iterator overhead plus an extract per touched
// column, with the MVCC header touch when the table versions rows.
func (e *RowEngine) openScan(q Query, _ *obs.Span) (*scan, error) {
	if e.Tbl == nil || e.Sys == nil {
		return nil, errors.New("engine: RowEngine needs a table and a system")
	}
	sch := e.Tbl.Schema()
	if err := q.Validate(sch); err != nil {
		return nil, err
	}
	if q.Snapshot != nil && !e.Tbl.HasMVCC() {
		return nil, fmt.Errorf("engine: snapshot query over table %q without MVCC", e.Tbl.Name())
	}

	s := &scan{
		sch:         sch,
		perRow:      VolcanoNextCycles,
		predCycles:  PredEvalCycles,
		fetchCycles: ExtractCycles,
		tickPerRow:  true,
		cpuSel:      q.Selection,
	}
	if e.Tbl.HasMVCC() {
		s.mvccTbl = e.Tbl
	}

	rows := e.Tbl.NumRows()
	payloadOff := 0
	if e.Tbl.HasMVCC() {
		payloadOff = table.MVCCHeaderBytes
	}
	seg := segment{
		data:       e.Tbl.Data(),
		baseAddr:   e.Tbl.BaseAddr(),
		stride:     e.Tbl.RowStride(),
		payloadOff: payloadOff,
		rows:       rows,
		sourceRows: int64(rows),
	}
	s.segs = func(*pipeRun) segIter { return oneShotIter(seg) }

	tbl := e.Tbl
	colOff := make([]int, sch.NumColumns())
	for i := range colOff {
		colOff[i] = sch.Offset(i)
	}
	s.colAt = func(_ *segment, row, col int) (int64, []byte) {
		return tbl.ColumnAddr(row, col), tbl.RowPayload(row)[colOff[col]:]
	}

	if !e.ForceScalar && rows <= vecRowLimit {
		if prog, ok := compileScanProg(q, sch, q.Selection, nil, sch.Offset, rowVecCharges); ok {
			s.prog = prog
			if e.scratch == nil {
				e.scratch = &scanScratch{}
			}
			s.scratch = e.scratch
		}
	}
	return s, nil
}
