package engine

import (
	"errors"
	"fmt"

	"rfabric/internal/obs"
	"rfabric/internal/table"
)

// RowEngine executes queries tuple-at-a-time over the row-oriented base
// table — the paper's ROW baseline. Every row pulls its full cache line(s)
// through the hierarchy whether or not the query needs the other attributes,
// which is precisely the pollution Relational Memory removes.
type RowEngine struct {
	Tbl *table.Table
	Sys *System

	// Tracer, when set, receives a span for this execution with leaves
	// that reconcile with the Breakdown. Nil means no tracing overhead.
	Tracer *obs.Tracer
}

// Name implements Executor.
func (e *RowEngine) Name() string { return "ROW" }

// Execute runs q and returns its result with the modeled cost.
func (e *RowEngine) Execute(q Query) (*Result, error) {
	if e.Tbl == nil || e.Sys == nil {
		return nil, errors.New("engine: RowEngine needs a table and a system")
	}
	sch := e.Tbl.Schema()
	if err := q.Validate(sch); err != nil {
		return nil, err
	}
	if q.Snapshot != nil && !e.Tbl.HasMVCC() {
		return nil, fmt.Errorf("engine: snapshot query over table %q without MVCC", e.Tbl.Name())
	}

	sp := beginEngineSpan(e.Tracer, e.Name(), e.Tbl.Name())
	defer e.Tracer.End()

	memStart := e.Sys.Mem.Stats()
	hierStart := e.Sys.Hier.Stats()
	var compute uint64
	cons := newConsumer(q, sch, &compute)

	// Per-row lazily fetched value cache, epoch-invalidated.
	numCols := sch.NumColumns()
	vals := make([]table.Value, numCols)
	fetchedAt := make([]int64, numCols)
	for i := range fetchedAt {
		fetchedAt[i] = -1
	}
	var epoch int64

	rows := e.Tbl.NumRows()
	var scanned int64
	tk := newTicker(e.Tracer)
	for r := 0; r < rows; r++ {
		if tk.tl != nil {
			tk.advance(e.Sys.Hier.Stats().Cycles - hierStart.Cycles + compute)
		}
		compute += VolcanoNextCycles
		scanned++
		epoch++

		if e.Tbl.HasMVCC() {
			// The software path must read the row header to check
			// visibility — one more touch of the row's first line.
			e.Sys.Hier.Load(e.Tbl.RowAddr(r))
			if q.Snapshot != nil {
				compute += TSCheckSoftwareCycles
				if !e.Tbl.VisibleAt(r, *q.Snapshot) {
					continue
				}
			}
		}

		payload := e.Tbl.RowPayload(r)
		fetch := func(col int) table.Value {
			if fetchedAt[col] == epoch {
				return vals[col]
			}
			e.Sys.Hier.Load(e.Tbl.ColumnAddr(r, col))
			compute += ExtractCycles
			v := table.DecodeColumn(sch.Column(col), payload[sch.Offset(col):])
			vals[col] = v
			fetchedAt[col] = epoch
			return v
		}

		pass := true
		for _, p := range q.Selection {
			compute += PredEvalCycles
			if !p.Eval(fetch(p.Col)) {
				pass = false
				break
			}
		}
		if !pass {
			continue
		}
		cons.consumeRow(fetch)
	}

	res := cons.finish(e.Name(), scanned)
	tk.advance(e.Sys.Hier.Stats().Cycles - hierStart.Cycles + compute)
	res.Breakdown = demandBreakdown(e.Sys, memStart, hierStart, compute)
	finishDemandSpan(sp, e.Sys, memStart, hierStart, res)
	return res, nil
}
