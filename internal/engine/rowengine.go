package engine

import (
	"errors"
	"fmt"

	"rfabric/internal/geometry"
	"rfabric/internal/obs"
	"rfabric/internal/table"
)

// RowEngine executes queries tuple-at-a-time over the row-oriented base
// table — the paper's ROW baseline. Every row pulls its full cache line(s)
// through the hierarchy whether or not the query needs the other attributes,
// which is precisely the pollution Relational Memory removes.
type RowEngine struct {
	Tbl *table.Table
	Sys *System

	// Tracer, when set, receives a span for this execution with leaves
	// that reconcile with the Breakdown. Nil means no tracing overhead.
	Tracer *obs.Tracer

	// ForceScalar pins execution to the tuple-at-a-time interpreter even for
	// query shapes the batch path handles. The two paths charge identical
	// modeled costs; the knob exists for equivalence tests and wall-clock
	// benchmarks.
	ForceScalar bool

	// scratch is the engine-owned batch workspace, allocated on first
	// vectorized execution and reused so steady-state scans allocate nothing
	// per batch.
	scratch *scanScratch
}

// Name implements Executor.
func (e *RowEngine) Name() string { return "ROW" }

// Execute runs q and returns its result with the modeled cost.
func (e *RowEngine) Execute(q Query) (*Result, error) {
	if e.Tbl == nil || e.Sys == nil {
		return nil, errors.New("engine: RowEngine needs a table and a system")
	}
	sch := e.Tbl.Schema()
	if err := q.Validate(sch); err != nil {
		return nil, err
	}
	if q.Snapshot != nil && !e.Tbl.HasMVCC() {
		return nil, fmt.Errorf("engine: snapshot query over table %q without MVCC", e.Tbl.Name())
	}

	sp := beginEngineSpan(e.Tracer, e.Name(), e.Tbl.Name())
	defer e.Tracer.End()

	if !e.ForceScalar && e.Tbl.NumRows() <= vecRowLimit {
		if prog, ok := compileScanProg(q, sch, q.Selection, nil, sch.Offset, rowVecCharges); ok {
			return e.executeVectorized(q, prog, sp)
		}
	}

	memStart := e.Sys.Mem.Stats()
	hierStart := e.Sys.Hier.Stats()
	var compute uint64
	cons := newConsumer(q, sch, &compute)

	// Per-row lazily fetched value cache, epoch-invalidated. The fetch
	// closure is defined once outside the row loop (capturing the row cursor
	// and payload variables) so it does not allocate per row, and the column
	// metadata the hot path needs is hoisted into flat arrays.
	numCols := sch.NumColumns()
	vals := make([]table.Value, numCols)
	fetchedAt := make([]int64, numCols)
	colDef := make([]geometry.Column, numCols)
	colOff := make([]int, numCols)
	for i := range fetchedAt {
		fetchedAt[i] = -1
		colDef[i] = sch.Column(i)
		colOff[i] = sch.Offset(i)
	}
	var epoch int64
	var row int
	var payload []byte
	fetch := func(col int) table.Value {
		if fetchedAt[col] == epoch {
			return vals[col]
		}
		e.Sys.Hier.Load(e.Tbl.ColumnAddr(row, col))
		compute += ExtractCycles
		v := table.DecodeColumn(colDef[col], payload[colOff[col]:])
		vals[col] = v
		fetchedAt[col] = epoch
		return v
	}

	rows := e.Tbl.NumRows()
	var scanned int64
	tk := newTicker(e.Tracer)
	for r := 0; r < rows; r++ {
		if tk.tl != nil {
			tk.advance(e.Sys.Hier.Stats().Cycles - hierStart.Cycles + compute)
		}
		compute += VolcanoNextCycles
		scanned++
		epoch++

		if e.Tbl.HasMVCC() {
			// The software path must read the row header to check
			// visibility — one more touch of the row's first line.
			e.Sys.Hier.Load(e.Tbl.RowAddr(r))
			if q.Snapshot != nil {
				compute += TSCheckSoftwareCycles
				if !e.Tbl.VisibleAt(r, *q.Snapshot) {
					continue
				}
			}
		}

		row = r
		payload = e.Tbl.RowPayload(r)

		pass := true
		for _, p := range q.Selection {
			compute += PredEvalCycles
			if !p.Eval(fetch(p.Col)) {
				pass = false
				break
			}
		}
		if !pass {
			continue
		}
		cons.consumeRow(fetch)
	}

	res := cons.finish(e.Name(), scanned)
	tk.advance(e.Sys.Hier.Stats().Cycles - hierStart.Cycles + compute)
	res.Breakdown = demandBreakdown(e.Sys, memStart, hierStart, compute)
	finishDemandSpan(sp, e.Sys, memStart, hierStart, res)
	return res, nil
}
