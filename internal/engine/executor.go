package engine

// Executor is the common face of the execution paths. All executors of the
// same logical data produce equivalent Results; only their Breakdown
// differs. Every single-table executor is also a Source — Execute is just
// Run(engine, q) through the shared pipeline.
type Executor interface {
	// Name returns the engine's short label (ROW, COL, RM, IDX).
	Name() string
	// Execute runs the query and returns its result with the modeled cost.
	Execute(q Query) (*Result, error)
}

var (
	_ Executor = (*RowEngine)(nil)
	_ Executor = (*ColEngine)(nil)
	_ Executor = (*RMEngine)(nil)
	_ Executor = (*IndexEngine)(nil)

	_ Source = (*RowEngine)(nil)
	_ Source = (*ColEngine)(nil)
	_ Source = (*RMEngine)(nil)
	_ Source = (*IndexEngine)(nil)
)
