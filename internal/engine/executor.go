package engine

// Executor is the common face of the three execution paths. All executors
// of the same logical data produce equivalent Results; only their Breakdown
// differs.
type Executor interface {
	// Name returns the engine's short label (ROW, COL, RM).
	Name() string
	// Execute runs the query and returns its result with the modeled cost.
	Execute(q Query) (*Result, error)
}

var (
	_ Executor = (*RowEngine)(nil)
	_ Executor = (*ColEngine)(nil)
	_ Executor = (*RMEngine)(nil)
)
