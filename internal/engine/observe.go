package engine

import (
	"fmt"
	"strconv"

	"rfabric/internal/cache"
	"rfabric/internal/dram"
	"rfabric/internal/obs"
)

// Span construction for the execution engines. Every engine lays out its
// span so that the span's AttributedCycles reconciles exactly with the
// run's Breakdown.TotalCycles:
//
//   - demand paths (ROW, COL, IDX) attribute `compute`, `memory.demand`,
//     and whatever the DRAM occupancy floor added on top as
//     `dram.bandwidth_stall`;
//   - the pipeline path (RM) attributes `pipeline` (the per-chunk
//     producer/consumer maxima) plus the same stall leaf;
//   - parallel paths (PAR, sharded tables) attribute `schedule.makespan`
//     and `merge`, and hang the per-morsel/per-shard sub-traces under a
//     Detail subtree — their cycles overlap the makespan rather than
//     adding to it, and each sub-root reconciles with its own partial.

// finishDemandSpan attaches attribution leaves and cache/DRAM annotations
// for a demand-path run. Nil-safe on sp.
func finishDemandSpan(sp *obs.Span, sys *System, memStart dram.Stats, hierStart cache.Stats, res *Result) {
	if sp == nil {
		return
	}
	b := res.Breakdown
	sp.Leaf("compute", b.ComputeCycles, 0)
	sp.Leaf("memory.demand", b.MemDemandCycles, b.BytesToCPU)
	if stall := b.TotalCycles - b.CPUCycles(); stall > 0 {
		sp.Leaf("dram.bandwidth_stall", stall, 0)
	}
	annotateRun(sp, sys, memStart, hierStart, res)
}

// finishPipelineSpan attaches attribution leaves and annotations for an RM
// pipeline run. Nil-safe on sp.
func finishPipelineSpan(sp *obs.Span, sys *System, memStart dram.Stats, hierStart cache.Stats, res *Result) {
	if sp == nil {
		return
	}
	b := res.Breakdown
	sp.Leaf("pipeline", b.PipelineCycles, b.BytesToCPU)
	if stall := b.TotalCycles - b.PipelineCycles; stall > 0 {
		sp.Leaf("dram.bandwidth_stall", stall, 0)
	}
	sp.SetAttr("producer_cycles", strconv.FormatUint(b.ProducerCycles, 10))
	annotateRun(sp, sys, memStart, hierStart, res)
}

// annotateRun records the per-node EXPLAIN ANALYZE numbers: row counts,
// DRAM bytes, cache miss ratio, and row-buffer hit rate over the run's
// stats window.
func annotateRun(sp *obs.Span, sys *System, memStart dram.Stats, hierStart cache.Stats, res *Result) {
	memD := sys.Mem.Stats().Delta(memStart)
	hierD := sys.Hier.Stats().Delta(hierStart)
	sp.SetAttr("rows_scanned", strconv.FormatInt(res.RowsScanned, 10))
	sp.SetAttr("rows_passed", strconv.FormatInt(res.RowsPassed, 10))
	sp.SetAttr("dram_bytes", strconv.FormatUint(res.Breakdown.BytesFromDRAM, 10))
	sp.SetAttr("cache_miss_ratio", formatRatio(hierD.MissRatio()))
	sp.SetAttr("row_buffer_hit_rate", formatRatio(memD.RowBufferHitRate()))
}

func formatRatio(v float64) string {
	return strconv.FormatFloat(v, 'f', 4, 64)
}

// beginEngineSpan opens an engine-dispatch span annotated with the engine
// kind and table; the companion finish helpers close the attribution.
func beginEngineSpan(tr *obs.Tracer, engine, tbl string) *obs.Span {
	sp := tr.Begin(engine + ".execute")
	sp.SetAttr("engine", engine)
	if tbl != "" {
		sp.SetAttr("table", tbl)
	}
	return sp
}

// morselSpanName labels one morsel's sub-trace.
func morselSpanName(i int) string { return fmt.Sprintf("morsel[%d]", i) }

// ticker drives a traced run's Timeline clock from the engine's natural
// progress points. Engines feed it the cumulative cycles charged so far
// (demand-path: hierarchy cycles + compute; pipeline: the running pipeline
// total) and it forwards monotone deltas to the sampler. With no timeline
// attached the per-iteration cost is one nil check on tk.tl.
type ticker struct {
	tl   *obs.Timeline
	last uint64
}

func newTicker(tr *obs.Tracer) ticker { return ticker{tl: tr.Timeline()} }

// advance moves the timeline clock to charged cumulative cycles.
func (t *ticker) advance(charged uint64) {
	if t.tl == nil || charged <= t.last {
		return
	}
	t.tl.Tick(charged - t.last)
	t.last = charged
}
