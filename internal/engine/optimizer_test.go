package engine

import (
	"testing"

	"rfabric/internal/expr"
	"rfabric/internal/table"
)

// optimizerQueries is a diverse workload: narrow and wide projections,
// selective and pass-through predicates, aggregation.
func optimizerQueries() map[string]Query {
	return map[string]Query{
		"narrow-scan": {Projection: []int{3}},
		"two-col":     {Projection: []int{0, 8}},
		"wide-scan":   {Projection: []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}},
		"selective": {
			Projection: []int{2, 9},
			Selection:  expr.Conjunction{{Col: 5, Op: expr.Lt, Operand: table.I32(100)}},
		},
		"agg": {
			Selection:  expr.Conjunction{{Col: 1, Op: expr.Lt, Operand: table.I32(500)}},
			Aggregates: []AggTerm{{Kind: expr.Count}, {Kind: expr.Sum, Arg: expr.ColRef{Col: 4}}},
		},
	}
}

// TestOptimizerTracksMeasuredBest: the constructed plan's engine must
// measure within 1.4x of the actually fastest engine on every workload —
// the constructive optimization claim of §III-B, with modeling slack.
func TestOptimizerTracksMeasuredBest(t *testing.T) {
	f := newFixture(t, 16, 20_000, false)
	opt := &Optimizer{Tbl: f.tbl, Sys: f.sys, Store: f.store}

	for name, q := range optimizerQueries() {
		plan, err := opt.Choose(q)
		if err != nil {
			t.Fatalf("%s: Choose: %v", name, err)
		}

		measured := map[string]uint64{}
		for _, e := range []Executor{
			&RowEngine{Tbl: f.tbl, Sys: f.sys},
			&ColEngine{Store: f.store, Sys: f.sys},
			&RMEngine{Tbl: f.tbl, Sys: f.sys},
		} {
			f.sys.ResetState()
			r, err := e.Execute(q)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, e.Name(), err)
			}
			measured[e.Name()] = r.Breakdown.TotalCycles
		}
		best := ""
		for eng, c := range measured {
			if best == "" || c < measured[best] {
				best = eng
			}
		}
		chosen := measured[plan.Chosen]
		slack := float64(chosen) / float64(measured[best])
		t.Logf("%s: chose %s (%.2fx of best %s) — %s", name, plan.Chosen, slack, best, plan)
		if slack > 1.4 {
			t.Errorf("%s: optimizer chose %s at %.2fx of the best (%s)", name, plan.Chosen, slack, best)
		}
	}
}

func TestOptimizerWithoutColumnarCopy(t *testing.T) {
	f := newFixture(t, 8, 2_000, false)
	opt := &Optimizer{Tbl: f.tbl, Sys: f.sys} // no Store
	plan, err := opt.Choose(Query{Projection: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Chosen == "COL" {
		t.Error("optimizer chose the columnar copy it does not have")
	}
	found := false
	for _, e := range plan.Estimates {
		if e.Engine == "COL" {
			found = true
			if e.Available {
				t.Error("COL reported available without a copy")
			}
			if e.Reason == "" {
				t.Error("unavailable path has no reason")
			}
		}
	}
	if !found {
		t.Error("COL estimate missing from the plan")
	}
}

func TestOptimizerSnapshotForcesFabricOrRow(t *testing.T) {
	f := newFixture(t, 8, 2_000, true)
	opt := &Optimizer{Tbl: f.tbl, Sys: f.sys, Store: f.store}
	ts := uint64(1)
	plan, err := opt.Choose(Query{Projection: []int{0, 1, 2, 3, 4}, Snapshot: &ts})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Chosen == "COL" {
		t.Error("optimizer chose the versionless columnar copy for a snapshot query")
	}
}

func TestOptimizerValidation(t *testing.T) {
	f := newFixture(t, 4, 10, false)
	opt := &Optimizer{Tbl: f.tbl, Sys: f.sys}
	if _, err := opt.Choose(Query{}); err == nil {
		t.Error("empty query accepted")
	}
	bad := &Optimizer{}
	if _, err := bad.Choose(Query{Projection: []int{0}}); err == nil {
		t.Error("optimizer without table accepted")
	}
}
