package engine

import (
	"fmt"

	"rfabric/internal/cache"
	"rfabric/internal/colstore"
	"rfabric/internal/dram"
	"rfabric/internal/expr"
	"rfabric/internal/fabric"
	"rfabric/internal/geometry"
	"rfabric/internal/table"
)

// The shared operator pipeline. Every access path executes here: the
// scalar interpreter below drives any opened scan row-at-a-time, and
// pipeline_vec.go holds its batch twin. The loops are written once and
// parameterized by the scan the source opened — per-touch charge
// constants, segment layout, addressing, MVCC policy, pipeline accounting —
// so ROW, COL, RM, and IDX differ only in what a touched byte costs and
// where it comes from, never in how the operators run.

// pipeRun is one execution's measured window: the hardware-counter
// baselines plus the running compute charge and timeline ticker. Sources'
// prepare hooks charge through it (index descent, COL bitmap passes).
type pipeRun struct {
	memStart  dram.Stats
	hierStart cache.Stats
	fabStart  fabric.Stats
	compute   uint64
	tk        ticker
	ids       []int // prepare's explicit row-id list, if any
}

// run dispatches an opened scan to its execution mode.
func (s *scan) run(q Query) (*Result, error) {
	if s.direct != nil {
		return s.direct()
	}
	if s.prog != nil {
		if s.colVec != nil {
			return s.runColVec(q)
		}
		return s.runVec(q)
	}
	return s.runScalar(q)
}

// begin opens the measured window: everything charged from here on is the
// query's modeled cost.
func (s *scan) begin() *pipeRun {
	pr := &pipeRun{memStart: s.sys.Mem.Stats(), hierStart: s.sys.Hier.Stats()}
	if s.pipelined {
		pr.fabStart = s.sys.Fab.Stats()
	}
	pr.tk = newTicker(s.tracer)
	return pr
}

// finishRun closes the measured window: breakdown, final timeline tick,
// span attribution.
func (s *scan) finishRun(pr *pipeRun, res *Result, pipeline, producer uint64) (*Result, error) {
	res.CacheWarm = s.warm
	if s.offload != "" {
		res.Offload = s.offload
		s.sp.SetAttr("offload", s.offload)
	}
	if s.pipelined {
		fabD := s.sys.Fab.Stats().Delta(pr.fabStart)
		res.Breakdown = pipelineBreakdown(s.sys, pr.memStart, pr.hierStart, pr.compute, pipeline, producer, fabD.BytesShipped)
		finishPipelineSpan(s.sp, s.sys, pr.memStart, pr.hierStart, res)
		s.sp.SetAttr("fabric_chunks", fmt.Sprint(fabD.Chunks))
		s.sp.SetAttr("fabric_bytes_gathered", fmt.Sprint(fabD.BytesGathered))
		return res, nil
	}
	pr.tk.advance(s.sys.Hier.Stats().Cycles - pr.hierStart.Cycles + pr.compute)
	res.Breakdown = demandBreakdown(s.sys, pr.memStart, pr.hierStart, pr.compute)
	finishDemandSpan(s.sp, s.sys, pr.memStart, pr.hierStart, res)
	return res, nil
}

// runScalar is the interpreted pipeline: for each segment the source
// delivers, visit each row (dense or by explicit id), pay the iterator
// overhead, check visibility, evaluate the CPU-resident predicates with
// short-circuit, touch the visit-list columns, and fold survivors into the
// consumer. Per-row fetches are cached by epoch so a column is loaded and
// charged at most once per row, whichever operator touches it first.
func (s *scan) runScalar(q Query) (*Result, error) {
	pr := s.begin()
	var cons *consumer
	if s.sink == nil {
		cons = newConsumer(q, s.sch, &pr.compute)
	}
	var rowsSunk int64

	// Per-row lazily fetched value cache, epoch-invalidated. The fetch
	// closure is defined once (capturing the row and segment cursors) so
	// the row loop does not allocate, and the column metadata the hot path
	// needs is hoisted into a flat array.
	numCols := s.sch.NumColumns()
	vals := make([]table.Value, numCols)
	fetchedAt := make([]int64, numCols)
	colDef := make([]geometry.Column, numCols)
	for i := range fetchedAt {
		fetchedAt[i] = -1
		colDef[i] = s.sch.Column(i)
	}
	var epoch int64
	var row int
	var seg segment
	fetch := func(col int) table.Value {
		if fetchedAt[col] == epoch {
			return vals[col]
		}
		addr, src := s.colAt(&seg, row, col)
		s.sys.Hier.Load(addr)
		pr.compute += s.fetchCycles
		v := table.DecodeColumn(colDef[col], src)
		vals[col] = v
		fetchedAt[col] = epoch
		return v
	}

	if s.prepare != nil {
		ids, err := s.prepare(pr)
		if err != nil {
			return nil, err
		}
		pr.ids = ids
	}

	var pipeline, producer uint64
	var scanned int64
	next := s.segs(pr)
	for {
		hierBefore := s.sys.Hier.Stats().Cycles
		computeBefore := pr.compute

		var ok bool
		seg, ok = next()
		if !ok {
			break
		}
		scanned += seg.sourceRows

		n := seg.rows
		if seg.ids != nil {
			n = len(seg.ids)
		}
		for i := 0; i < n; i++ {
			r := i
			if seg.ids != nil {
				r = seg.ids[i]
			}
			if s.tickPerRow && pr.tk.tl != nil {
				pr.tk.advance(s.sys.Hier.Stats().Cycles - pr.hierStart.Cycles + pr.compute)
			}
			pr.compute += s.perRow
			epoch++

			if s.mvccTbl != nil {
				// The software path must read the row header to check
				// visibility — one more touch of the row's first line.
				s.sys.Hier.Load(s.mvccTbl.RowAddr(r))
				if q.Snapshot != nil {
					pr.compute += TSCheckSoftwareCycles
					if !s.mvccTbl.VisibleAt(r, *q.Snapshot) {
						continue
					}
				}
			}

			row = r
			pass := true
			for _, p := range s.cpuSel {
				pr.compute += s.predCycles
				if !p.Eval(fetch(p.Col)) {
					pass = false
					break
				}
			}
			if !pass {
				continue
			}
			// Explicit visit list (COL's reconstruction order): touch every
			// consumed column before folding, so the access pattern is
			// deterministic row-major interleaving.
			for _, c := range s.visit {
				fetch(c)
			}
			if s.sink != nil {
				s.sink(pr, fetch)
				rowsSunk++
			} else {
				cons.consumeRow(fetch)
			}
		}

		if s.pipelined {
			consumer := (s.sys.Hier.Stats().Cycles - hierBefore) + (pr.compute - computeBefore)
			producer += seg.producer
			if seg.producer > consumer {
				pipeline += seg.producer
			} else {
				pipeline += consumer
			}
			pr.tk.advance(pipeline)
		}
	}

	var res *Result
	if s.sink != nil {
		res = &Result{Engine: s.name, RowsScanned: scanned, RowsPassed: rowsSunk}
	} else {
		res = cons.finish(s.name, scanned)
	}
	return s.finishRun(pr, res, pipeline, producer)
}

// oneShotIter yields a single segment then stops — the iterator shape of
// every non-chunked source.
func oneShotIter(seg segment) segIter {
	done := false
	return func() (segment, bool) {
		if done {
			return segment{}, false
		}
		done = true
		return seg, true
	}
}

// colBitmapSelect runs the decomposed layout's selection: one full-column
// pass per predicate, MonetDB-style — each pass streams the entire column
// (dense, prefetch-friendly) and materializes a full-length match bitmap,
// which the next pass ANDs into. This is the materialized-intermediate
// discipline of true column-at-a-time processing; it trades extra value
// touches for perfectly sequential access. The returned row-id list is the
// qualifying set in row order.
func colBitmapSelect(pr *pipeRun, sys *System, store *colstore.Store, sch *geometry.Schema, selection expr.Conjunction) []int {
	rows := store.NumRows()
	var bitmap []bool
	var bitmapAddr int64
	if len(selection) > 0 {
		// The match bitmap is itself a memory-resident intermediate; every
		// pass streams it alongside the predicate column.
		bitmapAddr = sys.Arena.Alloc(int64(rows))
	}
	for pi, p := range selection {
		col := p.Col
		w := sch.Column(col).Width
		data := store.ColumnData(col)
		if pi == 0 {
			// The first pass only writes the bitmap (streaming store); later
			// passes read-modify-write it and pay the load.
			bitmap = make([]bool, rows)
			for r := 0; r < rows; r++ {
				if pr.tk.tl != nil {
					pr.tk.advance(sys.Hier.Stats().Cycles - pr.hierStart.Cycles + pr.compute)
				}
				sys.Hier.Load(store.ValueAddr(col, r))
				pr.compute += VectorOpCycles + MaterializeCycles
				bitmap[r] = p.Eval(table.DecodeColumn(sch.Column(col), data[r*w:]))
			}
			continue
		}
		for r := 0; r < rows; r++ {
			if pr.tk.tl != nil {
				pr.tk.advance(sys.Hier.Stats().Cycles - pr.hierStart.Cycles + pr.compute)
			}
			sys.Hier.Load(store.ValueAddr(col, r))
			sys.Hier.Load(bitmapAddr + int64(r))
			pr.compute += VectorOpCycles + MaterializeCycles
			if bitmap[r] {
				bitmap[r] = p.Eval(table.DecodeColumn(sch.Column(col), data[r*w:]))
			}
		}
	}
	sel := make([]int, 0, rows)
	if bitmap == nil {
		for r := 0; r < rows; r++ {
			sel = append(sel, r)
		}
	} else {
		for r, ok := range bitmap {
			if ok {
				sel = append(sel, r)
			}
		}
		pr.compute += uint64(len(sel) * MaterializeCycles)
	}
	return sel
}

