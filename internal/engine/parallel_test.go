package engine

import (
	"testing"

	"rfabric/internal/expr"
	"rfabric/internal/geometry"
	"rfabric/internal/table"
)

func parallelFixture(t *testing.T, rows int) (*System, *table.Table) {
	t.Helper()
	sch, err := geometry.NewSchema(
		geometry.Column{Name: "id", Type: geometry.Int64, Width: 8},
		geometry.Column{Name: "val", Type: geometry.Float64, Width: 8},
		geometry.Column{Name: "grp", Type: geometry.Int32, Width: 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	sys := MustSystem(DefaultSystemConfig())
	base := sys.Arena.Alloc(int64(rows * sch.RowBytes()))
	tbl := table.MustNew("par", sch, table.WithCapacity(rows), table.WithBaseAddr(base))
	for i := 0; i < rows; i++ {
		tbl.MustAppend(1, table.I64(int64(i)), table.F64(float64(i%97)/3), table.I32(int32(i%5)))
	}
	return sys, tbl
}

// TestParallelDeterministicAcrossWorkers asserts the tentpole guarantee:
// the result — rows, checksum, aggregates, groups — and every breakdown
// component except the makespan are identical for every worker count,
// because morsel boundaries and per-morsel machine state do not depend on
// scheduling. TotalCycles is the one field that may change: it models the
// parallel hardware, so it shrinks (never grows) as workers are added.
func TestParallelDeterministicAcrossWorkers(t *testing.T) {
	sys, tbl := parallelFixture(t, 10_000)
	queries := []Query{
		{Projection: []int{0, 1}, Selection: expr.Conjunction{{Col: 0, Op: expr.Lt, Operand: table.I64(7000)}}},
		{Aggregates: []AggTerm{
			{Kind: expr.Count},
			{Kind: expr.Sum, Arg: expr.ColRef{Col: 1}},
			{Kind: expr.Avg, Arg: expr.ColRef{Col: 1}},
			{Kind: expr.Min, Arg: expr.ColRef{Col: 1}},
			{Kind: expr.Max, Arg: expr.ColRef{Col: 1}},
		}},
		{GroupBy: []int{2}, Aggregates: []AggTerm{
			{Kind: expr.Sum, Arg: expr.ColRef{Col: 1}},
			{Kind: expr.Avg, Arg: expr.ColRef{Col: 1}},
		}},
	}
	for qi, q := range queries {
		var base *Result
		prevTotal := uint64(0)
		for _, workers := range []int{1, 2, 3, 8} {
			e := &ParallelEngine{Tbl: tbl, Sys: sys, Par: ParallelConfig{Workers: workers, MorselRows: 512}}
			r, err := e.Execute(q)
			if err != nil {
				t.Fatalf("query %d workers %d: %v", qi, workers, err)
			}
			if base == nil {
				base = r
				prevTotal = r.Breakdown.TotalCycles
				continue
			}
			if err := base.EquivalentTo(r, 0); err != nil {
				t.Fatalf("query %d: workers=1 vs workers=%d differ: %v", qi, workers, err)
			}
			a, b := base.Breakdown, r.Breakdown
			a.TotalCycles, b.TotalCycles = 0, 0
			if a != b {
				t.Fatalf("query %d: breakdown drifts with workers=%d:\n  %+v\nvs %+v",
					qi, workers, base.Breakdown, r.Breakdown)
			}
			if r.Breakdown.TotalCycles > prevTotal {
				t.Fatalf("query %d: makespan grew from %d to %d with workers=%d",
					qi, prevTotal, r.Breakdown.TotalCycles, workers)
			}
			prevTotal = r.Breakdown.TotalCycles
		}
	}
}

// TestParallelMatchesRM checks PAR against the single-goroutine RM engine.
func TestParallelMatchesRM(t *testing.T) {
	sys, tbl := parallelFixture(t, 5000)
	q := Query{
		Selection: expr.Conjunction{{Col: 2, Op: expr.Ne, Operand: table.I32(3)}},
		Aggregates: []AggTerm{
			{Kind: expr.Count},
			{Kind: expr.Sum, Arg: expr.ColRef{Col: 1}},
			{Kind: expr.Avg, Arg: expr.ColRef{Col: 1}},
		},
	}
	rm, err := (&RMEngine{Tbl: tbl, Sys: sys}).Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	sys.ResetState()
	par, err := (&ParallelEngine{Tbl: tbl, Sys: sys, Par: ParallelConfig{Workers: 4, MorselRows: 256}}).Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := rm.EquivalentTo(par, 1e-9); err != nil {
		t.Fatalf("PAR disagrees with RM: %v", err)
	}
}

// TestParallelEmptyTable asserts the empty-aggregate shape matches the
// engines' zero-row conventions: COUNT=0 (integral), SUM/MIN/MAX/AVG=0.0.
func TestParallelEmptyTable(t *testing.T) {
	sys, tbl := parallelFixture(t, 0)
	q := Query{Aggregates: []AggTerm{
		{Kind: expr.Count, Arg: expr.ColRef{Col: 0}},
		{Kind: expr.Sum, Arg: expr.ColRef{Col: 1}},
		{Kind: expr.Min, Arg: expr.ColRef{Col: 1}},
		{Kind: expr.Avg, Arg: expr.ColRef{Col: 1}},
	}}
	r, err := (&ParallelEngine{Tbl: tbl, Sys: sys, Par: ParallelConfig{Workers: 4}}).Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	want := []table.Value{table.I64(0), table.F64(0), table.F64(0), table.F64(0)}
	if len(r.Aggs) != len(want) {
		t.Fatalf("got %d aggregates, want %d", len(r.Aggs), len(want))
	}
	for i, w := range want {
		if !r.Aggs[i].Equal(w) {
			t.Errorf("aggregate %d: got %s, want %s", i, r.Aggs[i], w)
		}
	}
	if r.RowsPassed != 0 || r.RowsScanned != 0 {
		t.Errorf("rows: scanned=%d passed=%d, want 0/0", r.RowsScanned, r.RowsPassed)
	}
}

// TestParallelCycleSpeedup asserts the cost model rewards workers: the
// makespan at 8 workers must undercut the single-worker sum substantially
// on a uniform scan.
func TestParallelCycleSpeedup(t *testing.T) {
	sys, tbl := parallelFixture(t, 20_000)
	q := Query{Aggregates: []AggTerm{{Kind: expr.Sum, Arg: expr.ColRef{Col: 1}}}}
	run := func(workers int) uint64 {
		e := &ParallelEngine{Tbl: tbl, Sys: sys, Par: ParallelConfig{Workers: workers, MorselRows: 1024}}
		r, err := e.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		return r.Breakdown.TotalCycles
	}
	one, eight := run(1), run(8)
	if speedup := float64(one) / float64(eight); speedup < 1.5 {
		t.Fatalf("modeled speedup %0.2fx at 8 workers (1w=%d cycles, 8w=%d cycles), want > 1.5x",
			speedup, one, eight)
	}
}

func TestScheduleCycles(t *testing.T) {
	cases := []struct {
		parts   []uint64
		workers int
		want    uint64
	}{
		{nil, 4, 0},
		{[]uint64{10, 20, 30}, 1, 60},             // one worker: the sum
		{[]uint64{10, 20, 30}, 3, 30},             // enough workers: the max
		{[]uint64{10, 20, 30}, 100, 30},           // workers clamp to parts
		{[]uint64{10, 10, 10, 10}, 2, 20},         // even split
		{[]uint64{30, 10, 10, 10}, 2, 30},         // greedy balances around the big part
		{[]uint64{5, 5, 5, 5, 5, 5, 5, 5}, 0, 40}, // workers<1 clamps to 1
	}
	for i, c := range cases {
		if got := ScheduleCycles(c.parts, c.workers); got != c.want {
			t.Errorf("case %d: ScheduleCycles(%v, %d) = %d, want %d", i, c.parts, c.workers, got, c.want)
		}
	}
}
