package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"rfabric/internal/colstore"
	"rfabric/internal/expr"
	"rfabric/internal/geometry"
	"rfabric/internal/table"
)

// TestEngineEquivalence is the DESIGN §6 invariant as a property test: for
// randomized schemas, data, and queries, every execution path — ROW, COL,
// RM (with and without pushdown), and the morsel-parallel PAR executor —
// returns the same rows, aggregates, groups, and checksum. MVCC trials run
// the same property at random snapshots over versioned tables (COL sits
// those out by design: the columnar copy has no version headers).
func TestEngineEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(20230417))
	const plainTrials, mvccTrials = 70, 50
	for i := 0; i < plainTrials; i++ {
		t.Run(fmt.Sprintf("plain/%03d", i), func(t *testing.T) { equivalenceTrial(t, rng, false) })
	}
	for i := 0; i < mvccTrials; i++ {
		t.Run(fmt.Sprintf("mvcc/%03d", i), func(t *testing.T) { equivalenceTrial(t, rng, true) })
	}
}

func equivalenceTrial(t *testing.T, rng *rand.Rand, mvcc bool) {
	t.Helper()
	sch := genSchema(rng)
	sys := MustSystem(DefaultSystemConfig())

	rows := 1 + rng.Intn(400)
	stride := sch.RowBytes()
	if mvcc {
		stride += table.MVCCHeaderBytes
	}
	base := sys.Arena.Alloc(int64(rows * stride))
	opts := []table.Option{table.WithCapacity(rows), table.WithBaseAddr(base)}
	if mvcc {
		opts = append(opts, table.WithMVCC())
	}
	tbl, err := table.New("prop", sch, opts...)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rows; r++ {
		vals := make([]table.Value, sch.NumColumns())
		for c := range vals {
			vals[c] = genValue(rng, sch.Column(c))
		}
		begin := uint64(1 + rng.Intn(3))
		idx := tbl.MustAppend(begin, vals...)
		if mvcc && rng.Intn(4) == 0 {
			if err := tbl.SetEndTS(idx, begin+uint64(1+rng.Intn(3))); err != nil {
				t.Fatal(err)
			}
		}
	}

	var snapshot *uint64
	if mvcc {
		ts := uint64(rng.Intn(6))
		snapshot = &ts
	}
	q := genQuery(rng, sch, snapshot)
	if err := q.Validate(sch); err != nil {
		t.Fatalf("generated query invalid: %v\nquery: %+v", err, q)
	}

	push := rng.Intn(2) == 1
	pushAgg := rng.Intn(2) == 1
	engines := []Executor{
		&RowEngine{Tbl: tbl, Sys: sys},
		&RMEngine{Tbl: tbl, Sys: sys},
		&RMEngine{Tbl: tbl, Sys: sys, PushSelection: true, PushAggregation: pushAgg},
		&ParallelEngine{
			Tbl: tbl, Sys: sys,
			Par:           ParallelConfig{Workers: 1 + rng.Intn(8), MorselRows: 16 + rng.Intn(96)},
			PushSelection: push,
		},
	}
	if !mvcc {
		store, err := colstore.FromTable(tbl, sys.Arena)
		if err != nil {
			t.Fatal(err)
		}
		engines = append(engines, &ColEngine{Store: store, Sys: sys})
	}

	var baseline *Result
	for _, e := range engines {
		sys.ResetState()
		r, err := e.Execute(q)
		if err != nil {
			t.Fatalf("%s: %v\nquery: %+v", e.Name(), err, q)
		}
		if baseline == nil {
			baseline = r
			continue
		}
		if err := baseline.EquivalentTo(r, 1e-9); err != nil {
			t.Fatalf("%s disagrees with %s: %v\nquery: %+v\nrows=%d mvcc=%v snapshot=%v",
				r.Engine, baseline.Engine, err, q, rows, mvcc, snapshot)
		}
	}
}

// genSchema builds a 3-6 column schema. Column 0 is always BIGINT so every
// schema has a numeric aggregate target; the rest draw from all five types.
func genSchema(rng *rand.Rand) *geometry.Schema {
	n := 3 + rng.Intn(4)
	cols := make([]geometry.Column, n)
	cols[0] = geometry.Column{Name: "c00", Type: geometry.Int64, Width: 8}
	for i := 1; i < n; i++ {
		name := fmt.Sprintf("c%02d", i)
		switch rng.Intn(5) {
		case 0:
			cols[i] = geometry.Column{Name: name, Type: geometry.Int64, Width: 8}
		case 1:
			cols[i] = geometry.Column{Name: name, Type: geometry.Int32, Width: 4}
		case 2:
			cols[i] = geometry.Column{Name: name, Type: geometry.Float64, Width: 8}
		case 3:
			cols[i] = geometry.Column{Name: name, Type: geometry.Char, Width: 8}
		case 4:
			cols[i] = geometry.Column{Name: name, Type: geometry.Date, Width: 4}
		}
	}
	sch, err := geometry.NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return sch
}

var genWords = []string{"ash", "birch", "cedar", "fir", "oak", "pine"}

// genValue draws a value typed for col from a small domain, so predicates
// and group keys hit often.
func genValue(rng *rand.Rand, col geometry.Column) table.Value {
	switch col.Type {
	case geometry.Int64:
		return table.I64(int64(rng.Intn(100)))
	case geometry.Int32:
		return table.I32(int32(rng.Intn(100)))
	case geometry.Float64:
		return table.F64(float64(rng.Intn(1000)) / 8)
	case geometry.Char:
		return table.Str(genWords[rng.Intn(len(genWords))])
	case geometry.Date:
		return table.DateV(int32(rng.Intn(100)))
	default:
		panic("genValue: unknown type")
	}
}

// genQuery builds a random valid query: one of projection scan, scalar
// aggregation, or grouped aggregation, with 0-2 predicates.
func genQuery(rng *rand.Rand, sch *geometry.Schema, snapshot *uint64) Query {
	q := Query{Snapshot: snapshot}
	var numeric []int
	for c := 0; c < sch.NumColumns(); c++ {
		if sch.Column(c).Type != geometry.Char {
			numeric = append(numeric, c)
		}
	}

	for i := rng.Intn(3); i > 0; i-- {
		c := rng.Intn(sch.NumColumns())
		ops := []expr.CmpOp{expr.Lt, expr.Le, expr.Eq, expr.Ne, expr.Ge, expr.Gt}
		q.Selection = append(q.Selection, expr.Predicate{
			Col: c, Op: ops[rng.Intn(len(ops))], Operand: genValue(rng, sch.Column(c)),
		})
	}

	switch rng.Intn(3) {
	case 0: // projection scan
		for c := 0; c < sch.NumColumns(); c++ {
			if rng.Intn(2) == 0 {
				q.Projection = append(q.Projection, c)
			}
		}
		if len(q.Projection) == 0 {
			q.Projection = []int{rng.Intn(sch.NumColumns())}
		}
	case 1: // scalar aggregation
		q.Aggregates = genAggs(rng, numeric)
	case 2: // grouped aggregation
		q.GroupBy = []int{rng.Intn(sch.NumColumns())}
		q.Aggregates = genAggs(rng, numeric)
	}
	if len(q.NeededColumns()) == 0 {
		// A bare COUNT(*) touches no columns, and the RM path cannot
		// configure an empty column group; give the count an argument.
		q.Aggregates[0] = AggTerm{Kind: expr.Count, Arg: expr.ColRef{Col: numeric[0]}}
	}
	return q
}

// genAggs draws 1-3 aggregate terms over numeric columns; arguments are
// plain references or derived expressions like Q6's price*discount.
func genAggs(rng *rand.Rand, numeric []int) []AggTerm {
	n := 1 + rng.Intn(3)
	out := make([]AggTerm, n)
	for i := range out {
		kinds := []expr.AggKind{expr.Count, expr.Sum, expr.Avg, expr.Min, expr.Max}
		kind := kinds[rng.Intn(len(kinds))]
		if kind == expr.Count && rng.Intn(2) == 0 {
			out[i] = AggTerm{Kind: expr.Count} // COUNT(*)
			continue
		}
		var arg expr.Scalar = expr.ColRef{Col: numeric[rng.Intn(len(numeric))]}
		if rng.Intn(3) == 0 {
			ops := []expr.BinOp{expr.Add, expr.Sub, expr.Mul}
			arg = expr.Binary{
				Op: ops[rng.Intn(len(ops))],
				L:  arg,
				R:  expr.Const{V: float64(1 + rng.Intn(4))},
			}
		}
		out[i] = AggTerm{Kind: kind, Arg: arg}
	}
	return out
}
