package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"rfabric/internal/colstore"
	"rfabric/internal/expr"
	"rfabric/internal/geometry"
	"rfabric/internal/obs"
	"rfabric/internal/plan"
	"rfabric/internal/table"
)

// TestEngineEquivalence is the DESIGN §6 invariant as a property test: for
// randomized schemas, data, and queries, every execution path — ROW, COL,
// RM (with and without pushdown), and the morsel-parallel PAR executor —
// returns the same rows, aggregates, groups, and checksum. MVCC trials run
// the same property at random snapshots over versioned tables (COL sits
// those out by design: the columnar copy has no version headers).
func TestEngineEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(20230417))
	const plainTrials, mvccTrials = 70, 50
	for i := 0; i < plainTrials; i++ {
		t.Run(fmt.Sprintf("plain/%03d", i), func(t *testing.T) { equivalenceTrial(t, rng, false) })
	}
	for i := 0; i < mvccTrials; i++ {
		t.Run(fmt.Sprintf("mvcc/%03d", i), func(t *testing.T) { equivalenceTrial(t, rng, true) })
	}
}

func equivalenceTrial(t *testing.T, rng *rand.Rand, mvcc bool) {
	t.Helper()
	sch := genSchema(rng)
	sys := MustSystem(DefaultSystemConfig())

	rows := 1 + rng.Intn(400)
	stride := sch.RowBytes()
	if mvcc {
		stride += table.MVCCHeaderBytes
	}
	base := sys.Arena.Alloc(int64(rows * stride))
	opts := []table.Option{table.WithCapacity(rows), table.WithBaseAddr(base)}
	if mvcc {
		opts = append(opts, table.WithMVCC())
	}
	tbl, err := table.New("prop", sch, opts...)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rows; r++ {
		vals := make([]table.Value, sch.NumColumns())
		for c := range vals {
			vals[c] = genValue(rng, sch.Column(c))
		}
		begin := uint64(1 + rng.Intn(3))
		idx := tbl.MustAppend(begin, vals...)
		if mvcc && rng.Intn(4) == 0 {
			if err := tbl.SetEndTS(idx, begin+uint64(1+rng.Intn(3))); err != nil {
				t.Fatal(err)
			}
		}
	}

	var snapshot *uint64
	if mvcc {
		ts := uint64(rng.Intn(6))
		snapshot = &ts
	}
	q := genQuery(rng, sch, snapshot)
	if err := q.Validate(sch); err != nil {
		t.Fatalf("generated query invalid: %v\nquery: %+v", err, q)
	}

	push := rng.Intn(2) == 1
	pushAgg := rng.Intn(2) == 1
	engines := []Executor{
		&RowEngine{Tbl: tbl, Sys: sys},
		&RMEngine{Tbl: tbl, Sys: sys},
		&RMEngine{Tbl: tbl, Sys: sys, PushSelection: true, PushAggregation: pushAgg},
		&RMEngine{Tbl: tbl, Sys: sys, Offload: true},
		&ParallelEngine{
			Tbl: tbl, Sys: sys,
			Par:           ParallelConfig{Workers: 1 + rng.Intn(8), MorselRows: 16 + rng.Intn(96)},
			PushSelection: push,
		},
	}
	if !mvcc {
		store, err := colstore.FromTable(tbl, sys.Arena)
		if err != nil {
			t.Fatal(err)
		}
		engines = append(engines, &ColEngine{Store: store, Sys: sys})
	}

	var baseline *Result
	for _, e := range engines {
		sys.ResetState()
		r, err := e.Execute(q)
		if err != nil {
			t.Fatalf("%s: %v\nquery: %+v", e.Name(), err, q)
		}
		if baseline == nil {
			baseline = r
			continue
		}
		// The offload layer's contract is stronger than float-epsilon
		// equivalence: a fabric-side fold must reproduce the CPU-side result
		// bit-for-bit (same float adds in the same row order), so the
		// offloading RM path is held to zero tolerance against ROW.
		tol := 1e-9
		if rm, ok := e.(*RMEngine); ok && rm.Offload {
			tol = 0
		}
		if err := baseline.EquivalentTo(r, tol); err != nil {
			t.Fatalf("%s disagrees with %s: %v\nquery: %+v\nrows=%d mvcc=%v snapshot=%v",
				r.Engine, baseline.Engine, err, q, rows, mvcc, snapshot)
		}
	}
}

// genSchema builds a 3-6 column schema. Column 0 is always BIGINT so every
// schema has a numeric aggregate target; the rest draw from all five types.
func genSchema(rng *rand.Rand) *geometry.Schema {
	n := 3 + rng.Intn(4)
	cols := make([]geometry.Column, n)
	cols[0] = geometry.Column{Name: "c00", Type: geometry.Int64, Width: 8}
	for i := 1; i < n; i++ {
		name := fmt.Sprintf("c%02d", i)
		switch rng.Intn(5) {
		case 0:
			cols[i] = geometry.Column{Name: name, Type: geometry.Int64, Width: 8}
		case 1:
			cols[i] = geometry.Column{Name: name, Type: geometry.Int32, Width: 4}
		case 2:
			cols[i] = geometry.Column{Name: name, Type: geometry.Float64, Width: 8}
		case 3:
			cols[i] = geometry.Column{Name: name, Type: geometry.Char, Width: 8}
		case 4:
			cols[i] = geometry.Column{Name: name, Type: geometry.Date, Width: 4}
		}
	}
	sch, err := geometry.NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return sch
}

var genWords = []string{"ash", "birch", "cedar", "fir", "oak", "pine"}

// genValue draws a value typed for col from a small domain, so predicates
// and group keys hit often.
func genValue(rng *rand.Rand, col geometry.Column) table.Value {
	switch col.Type {
	case geometry.Int64:
		return table.I64(int64(rng.Intn(100)))
	case geometry.Int32:
		return table.I32(int32(rng.Intn(100)))
	case geometry.Float64:
		return table.F64(float64(rng.Intn(1000)) / 8)
	case geometry.Char:
		return table.Str(genWords[rng.Intn(len(genWords))])
	case geometry.Date:
		return table.DateV(int32(rng.Intn(100)))
	default:
		panic("genValue: unknown type")
	}
}

// genQuery builds a random valid query: one of projection scan, scalar
// aggregation, or grouped aggregation, with 0-2 predicates.
func genQuery(rng *rand.Rand, sch *geometry.Schema, snapshot *uint64) Query {
	q := Query{Snapshot: snapshot}
	var numeric []int
	for c := 0; c < sch.NumColumns(); c++ {
		if sch.Column(c).Type != geometry.Char {
			numeric = append(numeric, c)
		}
	}

	for i := rng.Intn(3); i > 0; i-- {
		c := rng.Intn(sch.NumColumns())
		ops := []expr.CmpOp{expr.Lt, expr.Le, expr.Eq, expr.Ne, expr.Ge, expr.Gt}
		q.Selection = append(q.Selection, expr.Predicate{
			Col: c, Op: ops[rng.Intn(len(ops))], Operand: genValue(rng, sch.Column(c)),
		})
	}

	switch rng.Intn(3) {
	case 0: // projection scan
		for c := 0; c < sch.NumColumns(); c++ {
			if rng.Intn(2) == 0 {
				q.Projection = append(q.Projection, c)
			}
		}
		if len(q.Projection) == 0 {
			q.Projection = []int{rng.Intn(sch.NumColumns())}
		}
	case 1: // scalar aggregation
		q.Aggregates = genAggs(rng, numeric)
	case 2: // grouped aggregation
		q.GroupBy = []int{rng.Intn(sch.NumColumns())}
		q.Aggregates = genAggs(rng, numeric)
	}
	if len(q.NeededColumns()) == 0 {
		// A bare COUNT(*) touches no columns, and the RM path cannot
		// configure an empty column group; give the count an argument.
		q.Aggregates[0] = AggTerm{Kind: expr.Count, Arg: expr.ColRef{Col: numeric[0]}}
	}
	return q
}

// genAggs draws 1-3 aggregate terms over numeric columns; arguments are
// plain references or derived expressions like Q6's price*discount.
func genAggs(rng *rand.Rand, numeric []int) []AggTerm {
	n := 1 + rng.Intn(3)
	out := make([]AggTerm, n)
	for i := range out {
		kinds := []expr.AggKind{expr.Count, expr.Sum, expr.Avg, expr.Min, expr.Max}
		kind := kinds[rng.Intn(len(kinds))]
		if kind == expr.Count && rng.Intn(2) == 0 {
			out[i] = AggTerm{Kind: expr.Count} // COUNT(*)
			continue
		}
		var arg expr.Scalar = expr.ColRef{Col: numeric[rng.Intn(len(numeric))]}
		if rng.Intn(3) == 0 {
			ops := []expr.BinOp{expr.Add, expr.Sub, expr.Mul}
			arg = expr.Binary{
				Op: ops[rng.Intn(len(ops))],
				L:  arg,
				R:  expr.Const{V: float64(1 + rng.Intn(4))},
			}
		}
		out[i] = AggTerm{Kind: kind, Arg: arg}
	}
	return out
}

// TestJoinEngineEquivalence extends the equivalence property to two-table
// joins: for randomized schemas, data, key columns, selections, and
// consumption shapes — including empty build or probe sides, duplicate keys,
// and MVCC snapshots — every join execution path (ROW, COL, RM, PAR) returns
// the same result, and every run's span tree reconciles exactly with its
// Breakdown.TotalCycles.
func TestJoinEngineEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(79220301))
	const plainTrials, mvccTrials = 70, 40
	for i := 0; i < plainTrials; i++ {
		t.Run(fmt.Sprintf("plain/%03d", i), func(t *testing.T) { joinEquivalenceTrial(t, rng, false) })
	}
	for i := 0; i < mvccTrials; i++ {
		t.Run(fmt.Sprintf("mvcc/%03d", i), func(t *testing.T) { joinEquivalenceTrial(t, rng, true) })
	}
}

func joinEquivalenceTrial(t *testing.T, rng *rand.Rand, mvcc bool) {
	t.Helper()
	sys := MustSystem(DefaultSystemConfig())
	probeSch, buildSch := genSchema(rng), genSchema(rng)
	probeTbl := genJoinTable(t, sys, "probe", probeSch, genJoinRows(rng), mvcc, rng)
	buildTbl := genJoinTable(t, sys, "build", buildSch, genJoinRows(rng), mvcc, rng)

	var snapshot *uint64
	if mvcc {
		ts := uint64(rng.Intn(6))
		snapshot = &ts
	}
	root := genJoinTree(rng, probeSch, buildSch, snapshot)
	lookup := func(name string) (*geometry.Schema, error) {
		if name == "probe" {
			return probeSch, nil
		}
		return buildSch, nil
	}
	jp, _, err := FromJoinPlan(root, lookup)
	if err != nil {
		t.Fatalf("lowering generated join: %v\nplan:\n%s", err, root.Explain(nil))
	}

	workers := 1 + rng.Intn(8)
	morselRows := 16 + rng.Intn(96)
	type joinRun struct {
		name string
		run  func(tr *obs.Tracer) (*Result, error)
	}
	runs := []joinRun{
		{"ROW", func(tr *obs.Tracer) (*Result, error) {
			return (&JoinExec{Plan: jp,
				Probe:  &RowEngine{Tbl: probeTbl, Sys: sys, Tracer: tr, ForceScalar: true},
				Builds: []Source{&RowEngine{Tbl: buildTbl, Sys: sys, Tracer: tr, ForceScalar: true}}}).Execute()
		}},
		{"RM", func(tr *obs.Tracer) (*Result, error) {
			return (&JoinExec{Plan: jp,
				Probe:  &RMEngine{Tbl: probeTbl, Sys: sys, Tracer: tr, ForceScalar: true},
				Builds: []Source{&RMEngine{Tbl: buildTbl, Sys: sys, Tracer: tr, ForceScalar: true}}}).Execute()
		}},
		{"PAR", func(tr *obs.Tracer) (*Result, error) {
			return (&ParallelJoinExec{Plan: jp, ProbeTbl: probeTbl, Sys: sys,
				Par:    ParallelConfig{Workers: workers, MorselRows: morselRows},
				Builds: []Source{&RMEngine{Tbl: buildTbl, Sys: sys, Tracer: tr, ForceScalar: true}},
				Tracer: tr}).Execute()
		}},
	}
	if !mvcc {
		probeStore, err := colstore.FromTable(probeTbl, sys.Arena)
		if err != nil {
			t.Fatal(err)
		}
		buildStore, err := colstore.FromTable(buildTbl, sys.Arena)
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, joinRun{"COL", func(tr *obs.Tracer) (*Result, error) {
			return (&JoinExec{Plan: jp,
				Probe:  &ColEngine{Store: probeStore, Sys: sys, Tracer: tr, ForceScalar: true},
				Builds: []Source{&ColEngine{Store: buildStore, Sys: sys, Tracer: tr, ForceScalar: true}}}).Execute()
		}})
	}

	var baseline *Result
	for _, jr := range runs {
		sys.ResetState()
		tr := obs.NewTracer("query")
		res, err := jr.run(tr)
		if err != nil {
			t.Fatalf("%s: %v\nplan:\n%s", jr.name, err, root.Explain(nil))
		}
		if got := tr.Root().AttributedCycles(); got != res.Breakdown.TotalCycles {
			t.Fatalf("%s: span tree attributes %d cycles, Breakdown.TotalCycles is %d\nplan:\n%s",
				jr.name, got, res.Breakdown.TotalCycles, root.Explain(nil))
		}
		if baseline == nil {
			baseline = res
			continue
		}
		if err := baseline.EquivalentTo(res, 1e-9); err != nil {
			t.Fatalf("%s disagrees with %s: %v\nplan:\n%s\nprobe rows=%d build rows=%d snapshot=%v",
				res.Engine, baseline.Engine, err, root.Explain(nil),
				probeTbl.NumRows(), buildTbl.NumRows(), snapshot)
		}
	}
}

// genJoinRows draws a side's row count, empty roughly one trial in twelve so
// zero-row build and probe sides stay covered.
func genJoinRows(rng *rand.Rand) int {
	if rng.Intn(12) == 0 {
		return 0
	}
	return 1 + rng.Intn(250)
}

// genJoinTable builds and fills one join side. Values draw from genValue's
// small domains, so duplicate join keys are common.
func genJoinTable(t *testing.T, sys *System, name string, sch *geometry.Schema, rows int, mvcc bool, rng *rand.Rand) *table.Table {
	t.Helper()
	stride := sch.RowBytes()
	if mvcc {
		stride += table.MVCCHeaderBytes
	}
	cap := rows
	if cap < 1 {
		cap = 1
	}
	base := sys.Arena.Alloc(int64(cap * stride))
	opts := []table.Option{table.WithCapacity(cap), table.WithBaseAddr(base)}
	if mvcc {
		opts = append(opts, table.WithMVCC())
	}
	tbl, err := table.New(name, sch, opts...)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rows; r++ {
		vals := make([]table.Value, sch.NumColumns())
		for c := range vals {
			vals[c] = genValue(rng, sch.Column(c))
		}
		begin := uint64(1 + rng.Intn(3))
		idx := tbl.MustAppend(begin, vals...)
		if mvcc && rng.Intn(4) == 0 {
			if err := tbl.SetEndTS(idx, begin+uint64(1+rng.Intn(3))); err != nil {
				t.Fatal(err)
			}
		}
	}
	return tbl
}

// genJoinTree builds a random valid two-table join plan: key columns of a
// shared type family, 0-2 pushed-down predicates per side, and a consumption
// that is a combined projection, a scalar aggregation, or a grouped
// aggregation with one or two keys.
func genJoinTree(rng *rand.Rand, probeSch, buildSch *geometry.Schema, snapshot *uint64) *plan.Node {
	family := func(t geometry.ColumnType) int {
		switch t {
		case geometry.Float64:
			return 1
		case geometry.Char:
			return 2
		default:
			return 0
		}
	}
	byFamily := func(sch *geometry.Schema) map[int][]int {
		m := map[int][]int{}
		for c := 0; c < sch.NumColumns(); c++ {
			f := family(sch.Column(c).Type)
			m[f] = append(m[f], c)
		}
		return m
	}
	pf, bf := byFamily(probeSch), byFamily(buildSch)
	var shared []int
	for f := range pf {
		if len(bf[f]) > 0 {
			shared = append(shared, f)
		}
	}
	sort.Ints(shared) // deterministic order for the rng draw
	f := shared[rng.Intn(len(shared))]
	pk := pf[f][rng.Intn(len(pf[f]))]
	bk := bf[f][rng.Intn(len(bf[f]))]

	genSideSel := func(sch *geometry.Schema) expr.Conjunction {
		var sel expr.Conjunction
		for i := rng.Intn(3); i > 0; i-- {
			c := rng.Intn(sch.NumColumns())
			ops := []expr.CmpOp{expr.Lt, expr.Le, expr.Eq, expr.Ne, expr.Ge, expr.Gt}
			sel = append(sel, expr.Predicate{
				Col: c, Op: ops[rng.Intn(len(ops))], Operand: genValue(rng, sch.Column(c)),
			})
		}
		return sel
	}
	mkChain := func(name string, sch *geometry.Schema) *plan.Node {
		scan := plan.NewScan(name, "", nil)
		scan.Snapshot = snapshot
		scan.Sch = sch
		n := scan
		if sel := genSideSel(sch); len(sel) > 0 {
			n = n.Filter(sel)
			n.Sch = sch
		}
		return n
	}

	root := mkChain("probe", probeSch).Join(mkChain("build", buildSch), pk, bk)

	total := probeSch.NumColumns() + buildSch.NumColumns()
	var numeric []int
	isChar := func(c int) bool {
		if c < probeSch.NumColumns() {
			return probeSch.Column(c).Type == geometry.Char
		}
		return buildSch.Column(c-probeSch.NumColumns()).Type == geometry.Char
	}
	for c := 0; c < total; c++ {
		if !isChar(c) {
			numeric = append(numeric, c)
		}
	}
	switch rng.Intn(3) {
	case 0: // combined projection
		var cols []int
		for c := 0; c < total; c++ {
			if rng.Intn(2) == 0 {
				cols = append(cols, c)
			}
		}
		if len(cols) == 0 {
			cols = []int{rng.Intn(total)}
		}
		root = root.Project(cols)
	case 1: // scalar aggregation
		root = root.Aggregate(nil, toPlanAggs(genAggs(rng, numeric)))
	case 2: // grouped aggregation, one or two keys (multi-key GROUP BY)
		keys := []int{rng.Intn(total)}
		if rng.Intn(2) == 0 {
			k2 := rng.Intn(total)
			if k2 != keys[0] {
				keys = append(keys, k2)
			}
		}
		root = root.Aggregate(keys, toPlanAggs(genAggs(rng, numeric)))
	}
	return root
}

func toPlanAggs(terms []AggTerm) []plan.Agg {
	out := make([]plan.Agg, len(terms))
	for i, a := range terms {
		out[i] = plan.Agg{Kind: a.Kind, Arg: a.Arg}
	}
	return out
}
