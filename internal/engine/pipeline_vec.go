package engine

import (
	"math"

	"rfabric/internal/colstore"
	"rfabric/internal/geometry"
	"rfabric/internal/vec"
)

// The batch executor: the vectorized twin of runScalar in pipeline.go.
// It processes vecBatchRows rows per iteration in four stages — visibility,
// bulk decode, selection refinement, charge replay — then consumes the
// survivors through typed kernels. The charge-replay stage issues the exact
// Hier.Load sequence and compute charges of the scalar interpreter (the
// per-row short-circuit outcome decided by the recorded fail depth selects
// a precompiled load program), so modeled cycles, Breakdown, spans, and
// timelines are byte-identical; only wall-clock time and allocations
// change. Like the scalar pipeline it is written once and parameterized by
// the opened scan: ROW feeds it one strided segment (with MVCC replay and
// per-row ticks), RM feeds it fabric chunks with pipeline accounting. COL's
// decomposed layout has its own driver, runColVec, below.

// runVec drives the compiled batch program over strided segments.
func (s *scan) runVec(q Query) (*Result, error) {
	pr := s.begin()
	prog := s.prog
	sc := s.scratch
	sc.ensure(prog)

	snapped := s.mvccTbl != nil && q.Snapshot != nil
	var snapTS uint64
	if snapped {
		snapTS = *q.Snapshot
	}

	var aggs []vec.AggState
	if len(prog.aggs) > 0 {
		aggs = make([]vec.AggState, len(prog.aggs))
	}
	var checksum uint64
	var passed, scanned int64
	var pipeline, producer uint64
	last := len(prog.preds)

	next := s.segs(pr)
	for {
		hierBefore := s.sys.Hier.Stats().Cycles
		computeBefore := pr.compute

		seg, ok := next()
		if !ok {
			break
		}
		scanned += seg.sourceRows

		for sub := 0; sub < seg.rows; sub += vecBatchRows {
			n := seg.rows - sub
			if n > vecBatchRows {
				n = vecBatchRows
			}
			vis := sc.vis[:n]
			if snapped {
				vec.VisibleMask(vis, seg.data, seg.stride, sub, snapTS)
			}
			byteBase := sub*seg.stride + seg.payloadOff
			sc.decodeSlots(prog, seg.data, byteBase, seg.stride, n)
			sel := sc.sel[:0]
			if snapped {
				for i := 0; i < n; i++ {
					if vis[i] {
						sel = append(sel, int32(i))
					}
				}
			} else {
				for i := 0; i < n; i++ {
					sel = append(sel, int32(i))
				}
			}
			sel = sc.refine(prog, seg.data, byteBase, seg.stride, n, sel)

			// Charge replay, row-major like the scalar loop: tick, iterator
			// overhead, MVCC header touch, then the outcome's load program.
			fail := sc.fail[:n]
			rowAddr := seg.baseAddr + int64(sub)*int64(seg.stride)
			for i := 0; i < n; i++ {
				if s.tickPerRow && pr.tk.tl != nil {
					pr.tk.advance(s.sys.Hier.Stats().Cycles - pr.hierStart.Cycles + pr.compute)
				}
				pr.compute += s.perRow
				if s.mvccTbl != nil {
					s.sys.Hier.Load(rowAddr)
					if snapped {
						pr.compute += TSCheckSoftwareCycles
						if !vis[i] {
							rowAddr += int64(seg.stride)
							continue
						}
					}
				}
				idx := last
				if fail[i] >= 0 {
					idx = int(fail[i])
				}
				payloadAddr := rowAddr + int64(seg.payloadOff)
				for _, off := range prog.loadOffs[idx] {
					s.sys.Hier.Load(payloadAddr + off)
				}
				pr.compute += prog.charge[idx]
				rowAddr += int64(seg.stride)
			}

			passed += int64(len(sel))
			sc.consume(prog, seg.data, byteBase, seg.stride, sel, &checksum, aggs)
		}

		if s.pipelined {
			consumer := (s.sys.Hier.Stats().Cycles - hierBefore) + (pr.compute - computeBefore)
			producer += seg.producer
			if seg.producer > consumer {
				pipeline += seg.producer
			} else {
				pipeline += consumer
			}
			pr.tk.advance(pipeline)
		}
	}

	res := assembleVecResult(s.name, q, aggs, scanned, passed, checksum)
	return s.finishRun(pr, res, pipeline, producer)
}

// colVecLayout is the decomposed-layout batch driver's view of the column
// store: dense per-column arrays addressed by (column, row) rather than a
// strided row region, so selection runs as bitmap passes and reconstruction
// as gathers.
type colVecLayout struct {
	store *colstore.Store
}

// runColVec is the decomposed layout's batch scan: bitmap selection passes
// over dense columns, then batched tuple reconstruction over the qualifying
// row ids.
func (s *scan) runColVec(q Query) (*Result, error) {
	pr := s.begin()
	prog := s.prog
	sc := s.scratch
	sc.ensure(prog)
	store := s.colVec.store
	sch := s.sch
	rows := store.NumRows()

	var bitmap []bool
	var bitmapAddr int64
	if len(q.Selection) > 0 {
		bitmapAddr = s.sys.Arena.Alloc(int64(rows))
		bitmap = make([]bool, rows)
	}
	for pi, p := range q.Selection {
		cdef := sch.Column(p.Col)
		w := cdef.Width
		data := store.ColumnData(p.Col)
		valBase := store.ColumnAddr(p.Col)
		refinePass := pi > 0
		var opB []byte
		if cdef.Type == geometry.Char {
			opB = vec.TrimPad(p.Operand.Bytes)
		}
		for base := 0; base < rows; base += vecBatchRows {
			n := rows - base
			if n > vecBatchRows {
				n = vecBatchRows
			}
			// Exact scalar pass order per row: tick, value load, bitmap
			// load (later passes), charge.
			addr := valBase + int64(base*w)
			for i := 0; i < n; i++ {
				if pr.tk.tl != nil {
					pr.tk.advance(s.sys.Hier.Stats().Cycles - pr.hierStart.Cycles + pr.compute)
				}
				s.sys.Hier.Load(addr)
				if refinePass {
					s.sys.Hier.Load(bitmapAddr + int64(base+i))
				}
				pr.compute += VectorOpCycles + MaterializeCycles
				addr += int64(w)
			}
			dst := bitmap[base : base+n]
			switch cdef.Type {
			case geometry.Int64:
				vec.DecodeI64(sc.pred[:n], data, base*w, w, n)
				vec.CmpBitmapI64(dst, sc.pred[:n], p.Op, p.Operand.Int, refinePass)
			case geometry.Int32, geometry.Date:
				vec.DecodeI32(sc.pred[:n], data, base*w, w, n)
				vec.CmpBitmapI64(dst, sc.pred[:n], p.Op, p.Operand.Int, refinePass)
			case geometry.Float64:
				vec.DecodeF64(sc.out[:n], data, base*w, w, n)
				vec.CmpBitmapF64(dst, sc.out[:n], p.Op, p.Operand.Float, refinePass)
			case geometry.Char:
				vec.CmpBitmapChar(dst, data, w, base, p.Op, opB, refinePass)
			}
		}
	}

	var sel32 []int32
	if bitmap != nil {
		sel32 = make([]int32, 0, rows)
		for r, ok := range bitmap {
			if ok {
				sel32 = append(sel32, int32(r))
			}
		}
		pr.compute += uint64(len(sel32) * MaterializeCycles)
	}

	// Reconstruction: the pass program (index len(preds)==0 here — compile
	// saw no CPU predicates) is the consumed columns in declared order.
	loads := prog.loadSlots[len(prog.preds)]
	passCharge := prog.charge[len(prog.preds)]
	var aggs []vec.AggState
	if len(prog.aggs) > 0 {
		aggs = make([]vec.AggState, len(prog.aggs))
	}
	var checksum uint64
	var passed int64

	process := func(group []int32) {
		m := len(group)
		for _, r := range group {
			if pr.tk.tl != nil {
				pr.tk.advance(s.sys.Hier.Stats().Cycles - pr.hierStart.Cycles + pr.compute)
			}
			for _, si := range loads {
				sl := &prog.slots[si]
				s.sys.Hier.Load(store.ValueAddr(sl.col, int(r)))
			}
			pr.compute += passCharge
		}
		for _, si := range loads {
			sl := &prog.slots[si]
			cdata := store.ColumnData(sl.col)
			switch sl.kind {
			case slotI64:
				vec.GatherI64(sc.i64[sl.lane][:m], cdata, sl.width, group)
			case slotI32:
				vec.GatherI32(sc.i64[sl.lane][:m], cdata, sl.width, group)
			case slotF64:
				vec.GatherF64(sc.f64[sl.lane][:m], cdata, sl.width, group)
			}
		}
		idsel := sc.iota[:m]
		if prog.aggs == nil {
			for i, col := range prog.projCols {
				si := prog.projSlot[i]
				sl := &prog.slots[si]
				switch sl.kind {
				case slotI64, slotI32:
					checksum += vec.ChecksumI64(col, sc.i64[sl.lane], idsel)
				case slotF64:
					checksum += vec.ChecksumF64(col, sc.f64[sl.lane], idsel)
				case slotChar:
					checksum += vec.ChecksumCharGather(col, store.ColumnData(col), sl.width, group)
				}
			}
		} else {
			sc.foldAggs(prog, idsel, aggs, func(si int32, dst []float64, s2 []int32) {
				sl := &prog.slots[si]
				if sl.kind == slotF64 {
					vec.CompactLaneF64(dst, sc.f64[sl.lane], s2)
				} else {
					vec.CompactLaneI64(dst, sc.i64[sl.lane], s2)
				}
			})
		}
		passed += int64(m)
	}

	if bitmap == nil {
		for base := 0; base < rows; base += vecBatchRows {
			n := rows - base
			if n > vecBatchRows {
				n = vecBatchRows
			}
			group := sc.sel[:0]
			for i := 0; i < n; i++ {
				group = append(group, int32(base+i))
			}
			process(group)
		}
	} else {
		for s0 := 0; s0 < len(sel32); s0 += vecBatchRows {
			s1 := s0 + vecBatchRows
			if s1 > len(sel32) {
				s1 = len(sel32)
			}
			process(sel32[s0:s1])
		}
	}

	res := assembleVecResult(s.name, q, aggs, int64(rows), passed, checksum)
	return s.finishRun(pr, res, 0, 0)
}

// vecRowLimit guards the int32 selection representation; tables past it use
// the scalar paths (none of the reproduction's workloads come close).
const vecRowLimit = math.MaxInt32
