package engine

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"rfabric/internal/colstore"
	"rfabric/internal/expr"
	"rfabric/internal/geometry"
	"rfabric/internal/mvcc"
	"rfabric/internal/plan"
	"rfabric/internal/table"
)

// joinFixture: an orders table and a lineitems table with a foreign key.
type joinFixture struct {
	sys              *System
	orders, items    *table.Table
	ordersC, itemsC  *colstore.Store
	expectedMatches  int64
	expectedPerOrder map[int64]int
}

func newJoinFixture(t *testing.T, orders, itemsPerOrder int, mvcc bool) *joinFixture {
	t.Helper()
	sys := MustSystem(DefaultSystemConfig())

	oSchema := geometry.MustSchema(
		geometry.Column{Name: "o_id", Type: geometry.Int64, Width: 8},
		geometry.Column{Name: "o_region", Type: geometry.Int32, Width: 4},
		geometry.Column{Name: "o_total", Type: geometry.Float64, Width: 8},
	)
	iSchema := geometry.MustSchema(
		geometry.Column{Name: "i_order", Type: geometry.Int64, Width: 8},
		geometry.Column{Name: "i_qty", Type: geometry.Int32, Width: 4},
		geometry.Column{Name: "i_price", Type: geometry.Float64, Width: 8},
	)

	var opts []table.Option
	if mvcc {
		opts = append(opts, table.WithMVCC())
	}
	f := &joinFixture{sys: sys, expectedPerOrder: map[int64]int{}}

	oStride := oSchema.RowBytes()
	iStride := iSchema.RowBytes()
	if mvcc {
		oStride += table.MVCCHeaderBytes
		iStride += table.MVCCHeaderBytes
	}
	f.orders = table.MustNew("orders", oSchema,
		append(append([]table.Option{}, opts...), table.WithBaseAddr(sys.Arena.Alloc(int64(orders*oStride))), table.WithCapacity(orders))...)
	f.items = table.MustNew("items", iSchema,
		append(append([]table.Option{}, opts...), table.WithBaseAddr(sys.Arena.Alloc(int64(orders*itemsPerOrder*iStride))), table.WithCapacity(orders*itemsPerOrder))...)

	rng := rand.New(rand.NewSource(17))
	for o := 0; o < orders; o++ {
		f.orders.MustAppend(1, table.I64(int64(o)), table.I32(int32(o%4)), table.F64(float64(o)))
		n := rng.Intn(itemsPerOrder + 1)
		f.expectedPerOrder[int64(o)] = n
		for k := 0; k < n; k++ {
			f.items.MustAppend(1, table.I64(int64(o)), table.I32(int32(rng.Intn(10))), table.F64(rng.Float64()*100))
		}
	}
	for _, n := range f.expectedPerOrder {
		f.expectedMatches += int64(n)
	}

	var err error
	f.ordersC, err = colstore.FromTable(f.orders, sys.Arena)
	if err != nil {
		t.Fatal(err)
	}
	f.itemsC, err = colstore.FromTable(f.items, sys.Arena)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func joinInputs() (JoinInput, JoinInput) {
	left := JoinInput{On: 0, Projection: []int{1, 2}}  // items side probes
	right := JoinInput{On: 0, Projection: []int{1, 2}} // orders side builds
	return left, right
}

func TestHashJoinEnginesAgree(t *testing.T) {
	f := newJoinFixture(t, 300, 4, false)
	// Probe with items (left), build on orders (right).
	left := JoinInput{On: 0, Projection: []int{1, 2}}
	right := JoinInput{On: 0, Projection: []int{1, 2}}

	f.sys.ResetState()
	row, err := HashJoinRow(f.sys, f.items, f.orders, left, right)
	if err != nil {
		t.Fatal(err)
	}
	if row.Matches != f.expectedMatches {
		t.Fatalf("ROW matches = %d, want %d", row.Matches, f.expectedMatches)
	}

	f.sys.ResetState()
	col, err := HashJoinCol(f.sys, f.itemsC, f.ordersC, left, right)
	if err != nil {
		t.Fatal(err)
	}
	f.sys.ResetState()
	rm, err := HashJoinRM(f.sys, f.items, f.orders, left, right)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*JoinResult{col, rm} {
		if r.Matches != row.Matches || r.Checksum != row.Checksum {
			t.Errorf("%s join diverges: matches %d/%d checksum %#x/%#x",
				r.Engine, r.Matches, row.Matches, r.Checksum, row.Checksum)
		}
	}
}

func TestHashJoinWithSelection(t *testing.T) {
	f := newJoinFixture(t, 200, 3, false)
	left := JoinInput{
		On:         0,
		Projection: []int{2},
		Selection:  expr.Conjunction{{Col: 1, Op: expr.Lt, Operand: table.I32(5)}},
	}
	right := JoinInput{
		On:         0,
		Projection: []int{2},
		Selection:  expr.Conjunction{{Col: 1, Op: expr.Eq, Operand: table.I32(2)}},
	}
	f.sys.ResetState()
	row, err := HashJoinRow(f.sys, f.items, f.orders, left, right)
	if err != nil {
		t.Fatal(err)
	}
	if row.Matches == 0 || row.Matches == f.expectedMatches {
		t.Fatalf("selection not effective: %d of %d", row.Matches, f.expectedMatches)
	}
	f.sys.ResetState()
	rm, err := HashJoinRM(f.sys, f.items, f.orders, left, right)
	if err != nil {
		t.Fatal(err)
	}
	if rm.Matches != row.Matches || rm.Checksum != row.Checksum {
		t.Errorf("RM join with selection diverges")
	}
}

func TestHashJoinMVCCSnapshot(t *testing.T) {
	f := newJoinFixture(t, 100, 2, true)
	// Kill half the items at ts 5.
	for r := 0; r < f.items.NumRows(); r += 2 {
		if err := f.items.SetEndTS(r, 5); err != nil {
			t.Fatal(err)
		}
	}
	ts4, ts9 := uint64(4), uint64(9)
	left, right := joinInputs()

	for _, ts := range []*uint64{&ts4, &ts9} {
		l, r := left, right
		l.Snapshot, r.Snapshot = ts, ts
		f.sys.ResetState()
		row, err := HashJoinRow(f.sys, f.items, f.orders, l, r)
		if err != nil {
			t.Fatal(err)
		}
		f.sys.ResetState()
		rm, err := HashJoinRM(f.sys, f.items, f.orders, l, r)
		if err != nil {
			t.Fatal(err)
		}
		if rm.Matches != row.Matches || rm.Checksum != row.Checksum {
			t.Errorf("snapshot %d: RM join diverges (%d vs %d)", *ts, rm.Matches, row.Matches)
		}
	}
	// The later snapshot must see fewer matches.
	l, r := joinInputs()
	l.Snapshot, r.Snapshot = &ts9, &ts9
	f.sys.ResetState()
	later, _ := HashJoinRow(f.sys, f.items, f.orders, l, r)
	l.Snapshot, r.Snapshot = &ts4, &ts4
	f.sys.ResetState()
	earlier, _ := HashJoinRow(f.sys, f.items, f.orders, l, r)
	if later.Matches >= earlier.Matches {
		t.Errorf("snapshot 9 sees %d matches, snapshot 4 sees %d — deletes invisible", later.Matches, earlier.Matches)
	}
}

func TestHashJoinValidation(t *testing.T) {
	f := newJoinFixture(t, 10, 1, false)
	left, right := joinInputs()

	bad := left
	bad.On = 99
	if _, err := HashJoinRow(f.sys, f.items, f.orders, bad, right); err == nil {
		t.Error("out-of-range join column accepted")
	}
	bad = left
	bad.Projection = nil
	if _, err := HashJoinRow(f.sys, f.items, f.orders, bad, right); err == nil {
		t.Error("empty projection accepted")
	}
	ts := uint64(1)
	bad = left
	bad.Snapshot = &ts
	if _, err := HashJoinRow(f.sys, f.items, f.orders, bad, right); err == nil {
		t.Error("snapshot over non-MVCC table accepted")
	}
	if _, err := HashJoinCol(f.sys, f.itemsC, f.ordersC, bad, right); err == nil {
		t.Error("COL join accepted a snapshot")
	}
}

func TestHashJoinEmptySides(t *testing.T) {
	f := newJoinFixture(t, 50, 2, false)
	left, right := joinInputs()
	empty := table.MustNew("empty", f.orders.Schema())
	f.sys.ResetState()
	r, err := HashJoinRow(f.sys, f.items, empty, left, right)
	if err != nil {
		t.Fatal(err)
	}
	if r.Matches != 0 {
		t.Errorf("join against empty build side matched %d", r.Matches)
	}
}

func TestHashJoinRMShipsLessThanROW(t *testing.T) {
	f := newJoinFixture(t, 2000, 3, false)
	left, right := joinInputs()
	f.sys.ResetState()
	row, err := HashJoinRow(f.sys, f.items, f.orders, left, right)
	if err != nil {
		t.Fatal(err)
	}
	f.sys.ResetState()
	rm, err := HashJoinRM(f.sys, f.items, f.orders, left, right)
	if err != nil {
		t.Fatal(err)
	}
	if rm.Breakdown.BytesToCPU >= row.Breakdown.BytesToCPU {
		t.Errorf("RM join shipped %d bytes, ROW moved %d", rm.Breakdown.BytesToCPU, row.Breakdown.BytesToCPU)
	}
}

// --- plan-IR join edge cases -------------------------------------------------

// mkJoinTable allocates a table for the plan-IR edge-case tests.
func mkJoinTable(t *testing.T, sys *System, name string, sch *geometry.Schema, capacity int, mvcc bool) *table.Table {
	t.Helper()
	stride := sch.RowBytes()
	if mvcc {
		stride += table.MVCCHeaderBytes
	}
	opts := []table.Option{
		table.WithCapacity(capacity),
		table.WithBaseAddr(sys.Arena.Alloc(int64(capacity * stride))),
	}
	if mvcc {
		opts = append(opts, table.WithMVCC())
	}
	return table.MustNew(name, sch, opts...)
}

// simpleJoinPlan lowers probe ⋈ build on (pk = bk) with a COUNT consumer, the
// shape the edge-case tests count matches through.
func simpleJoinPlan(t *testing.T, probe, build *table.Table, pk, bk, countCol int, snapshot *uint64) *JoinPlan {
	t.Helper()
	ps := plan.NewScan(probe.Name(), "", nil)
	ps.Snapshot = snapshot
	root := ps.Join(plan.NewScan(build.Name(), "", nil), pk, bk)
	root = root.Aggregate(nil, []plan.Agg{{Kind: expr.Count, Arg: expr.ColRef{Col: countCol}}})
	jp, _, err := FromJoinPlan(root, func(name string) (*geometry.Schema, error) {
		if name == probe.Name() {
			return probe.Schema(), nil
		}
		return build.Schema(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return jp
}

func countJoin(t *testing.T, jp *JoinPlan, probe, build *table.Table, sys *System) int64 {
	t.Helper()
	sys.ResetState()
	res, err := (&JoinExec{Plan: jp,
		Probe:  &RowEngine{Tbl: probe, Sys: sys, ForceScalar: true},
		Builds: []Source{&RowEngine{Tbl: build, Sys: sys, ForceScalar: true}}}).Execute()
	if err != nil {
		t.Fatal(err)
	}
	return res.Aggs[0].Int
}

// TestJoinCharKeysEmbeddedNUL pins CHAR key equality semantics: trailing NUL
// padding is insignificant (keys join across CHAR widths), embedded NULs are
// significant ("a\x00b" is not "ab"), and a bare "a" differs from both.
func TestJoinCharKeysEmbeddedNUL(t *testing.T) {
	sys := MustSystem(DefaultSystemConfig())
	probeSch := geometry.MustSchema(
		geometry.Column{Name: "k", Type: geometry.Char, Width: 8},
		geometry.Column{Name: "v", Type: geometry.Int64, Width: 8},
	)
	buildSch := geometry.MustSchema(
		geometry.Column{Name: "id", Type: geometry.Char, Width: 4},
		geometry.Column{Name: "w", Type: geometry.Int64, Width: 8},
	)
	probe := mkJoinTable(t, sys, "pchar", probeSch, 8, false)
	build := mkJoinTable(t, sys, "bchar", buildSch, 8, false)

	for i, k := range []string{"ab", "a\x00b", "a", "ab"} {
		probe.MustAppend(1, table.Str(k), table.I64(int64(i)))
	}
	// One build row per distinct key; "ab" appears twice so duplicates on the
	// build side multiply matches.
	for i, k := range []string{"ab", "ab", "a\x00b", "zz"} {
		build.MustAppend(1, table.Str(k), table.I64(int64(i)))
	}

	jp := simpleJoinPlan(t, probe, build, 0, 0, 1, nil)
	// probe "ab" ×2 rows match build "ab" ×2 → 4; probe "a\x00b" matches its
	// build twin → 1; probe "a" matches nothing.
	if got := countJoin(t, jp, probe, build, sys); got != 5 {
		t.Errorf("CHAR key join counted %d matches, want 5", got)
	}
}

// TestJoinFloatKeys pins float key semantics: NaN never matches (either
// side), and -0 joins +0.
func TestJoinFloatKeys(t *testing.T) {
	sys := MustSystem(DefaultSystemConfig())
	sch := geometry.MustSchema(
		geometry.Column{Name: "k", Type: geometry.Float64, Width: 8},
		geometry.Column{Name: "v", Type: geometry.Int64, Width: 8},
	)
	bsch := geometry.MustSchema(
		geometry.Column{Name: "id", Type: geometry.Float64, Width: 8},
		geometry.Column{Name: "w", Type: geometry.Int64, Width: 8},
	)
	probe := mkJoinTable(t, sys, "pfloat", sch, 8, false)
	build := mkJoinTable(t, sys, "bfloat", bsch, 8, false)

	negZero := math.Copysign(0, -1)
	for i, k := range []float64{math.NaN(), 0.0, 1.5, 2.5} {
		probe.MustAppend(1, table.F64(k), table.I64(int64(i)))
	}
	for i, k := range []float64{math.NaN(), negZero, 1.5} {
		build.MustAppend(1, table.F64(k), table.I64(int64(i)))
	}

	jp := simpleJoinPlan(t, probe, build, 0, 0, 1, nil)
	// +0 matches -0, 1.5 matches 1.5; the NaNs on both sides match nothing.
	if got := countJoin(t, jp, probe, build, sys); got != 2 {
		t.Errorf("float key join counted %d matches, want 2", got)
	}
}

// TestJoinZeroRowSides runs the join with an empty probe, an empty build,
// and both empty, on the serial and the morsel-parallel executor.
func TestJoinZeroRowSides(t *testing.T) {
	sys := MustSystem(DefaultSystemConfig())
	sch := geometry.MustSchema(
		geometry.Column{Name: "k", Type: geometry.Int64, Width: 8},
		geometry.Column{Name: "v", Type: geometry.Float64, Width: 8},
	)
	bsch := geometry.MustSchema(
		geometry.Column{Name: "id", Type: geometry.Int64, Width: 8},
		geometry.Column{Name: "w", Type: geometry.Float64, Width: 8},
	)
	fill := func(tbl *table.Table, rows int) {
		for i := 0; i < rows; i++ {
			tbl.MustAppend(1, table.I64(int64(i%5)), table.F64(float64(i)))
		}
	}
	cases := []struct{ probeRows, buildRows int }{{0, 20}, {20, 0}, {0, 0}}
	for _, tc := range cases {
		probe := mkJoinTable(t, sys, "pzero", sch, 32, false)
		build := mkJoinTable(t, sys, "bzero", bsch, 32, false)
		fill(probe, tc.probeRows)
		fill(build, tc.buildRows)
		jp := simpleJoinPlan(t, probe, build, 0, 0, 1, nil)
		if got := countJoin(t, jp, probe, build, sys); got != 0 {
			t.Errorf("probe=%d build=%d: counted %d matches, want 0", tc.probeRows, tc.buildRows, got)
		}
		sys.ResetState()
		res, err := (&ParallelJoinExec{Plan: jp, ProbeTbl: probe, Sys: sys,
			Par:    ParallelConfig{Workers: 3, MorselRows: 8},
			Builds: []Source{&RMEngine{Tbl: build, Sys: sys, ForceScalar: true}}}).Execute()
		if err != nil {
			t.Fatalf("probe=%d build=%d: PAR: %v", tc.probeRows, tc.buildRows, err)
		}
		if res.Aggs[0].Int != 0 {
			t.Errorf("probe=%d build=%d: PAR counted %d matches, want 0", tc.probeRows, tc.buildRows, res.Aggs[0].Int)
		}
	}
}

// TestJoinBuildLargerThanProbe inverts the usual shape: the build side dwarfs
// the probe side, with heavy key duplication, and the match count must still
// be exact (probe rows × per-key build multiplicity).
func TestJoinBuildLargerThanProbe(t *testing.T) {
	sys := MustSystem(DefaultSystemConfig())
	sch := geometry.MustSchema(
		geometry.Column{Name: "k", Type: geometry.Int64, Width: 8},
		geometry.Column{Name: "v", Type: geometry.Float64, Width: 8},
	)
	bsch := geometry.MustSchema(
		geometry.Column{Name: "id", Type: geometry.Int64, Width: 8},
		geometry.Column{Name: "w", Type: geometry.Float64, Width: 8},
	)
	const probeRows, buildRows, keys = 40, 4000, 20
	probe := mkJoinTable(t, sys, "psmall", sch, probeRows, false)
	build := mkJoinTable(t, sys, "bbig", bsch, buildRows, false)
	for i := 0; i < probeRows; i++ {
		probe.MustAppend(1, table.I64(int64(i%(2*keys))), table.F64(float64(i)))
	}
	for i := 0; i < buildRows; i++ {
		build.MustAppend(1, table.I64(int64(i%keys)), table.F64(float64(i)))
	}
	// Probe keys 0..19 hit (multiplicity buildRows/keys each), 20..39 miss.
	perKey := int64(buildRows / keys)
	var want int64
	for i := 0; i < probeRows; i++ {
		if i%(2*keys) < keys {
			want += perKey
		}
	}
	jp := simpleJoinPlan(t, probe, build, 0, 0, 1, nil)
	if got := countJoin(t, jp, probe, build, sys); got != want {
		t.Errorf("big-build join counted %d matches, want %d", got, want)
	}
}

// TestJoinHTAPStress is the race-detector HTAP check for joins: writers
// append MVCC probe rows through the transaction manager while a reader runs
// snapshot joins under read views. Every probe row matches exactly one build
// row, so the join count at a snapshot must equal the single-table visible
// row count at that snapshot.
func TestJoinHTAPStress(t *testing.T) {
	sys := MustSystem(DefaultSystemConfig())
	sch := geometry.MustSchema(
		geometry.Column{Name: "k", Type: geometry.Int64, Width: 8},
		geometry.Column{Name: "v", Type: geometry.Float64, Width: 8},
	)
	bsch := geometry.MustSchema(
		geometry.Column{Name: "id", Type: geometry.Int64, Width: 8},
		geometry.Column{Name: "w", Type: geometry.Float64, Width: 8},
	)
	const dimRows, seedRows, writers, txns, perTxn, sweeps = 16, 64, 2, 40, 3, 40
	probe := mkJoinTable(t, sys, "phtap", sch, seedRows+writers*txns*perTxn+8, true)
	build := mkJoinTable(t, sys, "bhtap", bsch, dimRows, false)
	for i := 0; i < dimRows; i++ {
		build.MustAppend(1, table.I64(int64(i)), table.F64(float64(i)))
	}
	mgr, err := mvcc.NewManager(probe)
	if err != nil {
		t.Fatal(err)
	}
	load := mgr.Begin()
	for i := 0; i < seedRows; i++ {
		if err := load.Insert(table.I64(int64(i%dimRows)), table.F64(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := load.Commit(); err != nil {
		t.Fatal(err)
	}

	errc := make(chan error, writers+1)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < txns; i++ {
				txn := mgr.Begin()
				for r := 0; r < perTxn; r++ {
					if err := txn.Insert(table.I64(int64(rng.Intn(dimRows))), table.F64(rng.Float64())); err != nil {
						txn.Abort()
						errc <- err
						return
					}
				}
				if _, err := txn.Commit(); err != nil {
					errc <- err
					return
				}
			}
		}(int64(w + 1))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < sweeps; i++ {
			parallel := i%2 == 1
			err := mgr.ReadView(func(ts uint64) error {
				snap := ts
				jp := simpleJoinPlan(t, probe, build, 0, 0, 1, &snap)
				var res *Result
				var err error
				if parallel {
					res, err = (&ParallelJoinExec{Plan: jp, ProbeTbl: probe, Sys: sys,
						Par:    ParallelConfig{Workers: 3, MorselRows: 32},
						Builds: []Source{&RMEngine{Tbl: build, Sys: sys, ForceScalar: true}}}).Execute()
				} else {
					res, err = (&JoinExec{Plan: jp,
						Probe:  &RowEngine{Tbl: probe, Sys: sys, ForceScalar: true},
						Builds: []Source{&RowEngine{Tbl: build, Sys: sys, ForceScalar: true}}}).Execute()
				}
				if err != nil {
					return err
				}
				visible, err := Run(&RowEngine{Tbl: probe, Sys: sys, ForceScalar: true}, Query{
					Aggregates: []AggTerm{{Kind: expr.Count, Arg: expr.ColRef{Col: 0}}},
					Snapshot:   &snap,
				})
				if err != nil {
					return err
				}
				if res.Aggs[0].Int != visible.Aggs[0].Int {
					return fmt.Errorf("snapshot %d: join count %d != visible rows %d — torn read",
						ts, res.Aggs[0].Int, visible.Aggs[0].Int)
				}
				return nil
			})
			if err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
