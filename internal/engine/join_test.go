package engine

import (
	"math/rand"
	"testing"

	"rfabric/internal/colstore"
	"rfabric/internal/expr"
	"rfabric/internal/geometry"
	"rfabric/internal/table"
)

// joinFixture: an orders table and a lineitems table with a foreign key.
type joinFixture struct {
	sys              *System
	orders, items    *table.Table
	ordersC, itemsC  *colstore.Store
	expectedMatches  int64
	expectedPerOrder map[int64]int
}

func newJoinFixture(t *testing.T, orders, itemsPerOrder int, mvcc bool) *joinFixture {
	t.Helper()
	sys := MustSystem(DefaultSystemConfig())

	oSchema := geometry.MustSchema(
		geometry.Column{Name: "o_id", Type: geometry.Int64, Width: 8},
		geometry.Column{Name: "o_region", Type: geometry.Int32, Width: 4},
		geometry.Column{Name: "o_total", Type: geometry.Float64, Width: 8},
	)
	iSchema := geometry.MustSchema(
		geometry.Column{Name: "i_order", Type: geometry.Int64, Width: 8},
		geometry.Column{Name: "i_qty", Type: geometry.Int32, Width: 4},
		geometry.Column{Name: "i_price", Type: geometry.Float64, Width: 8},
	)

	var opts []table.Option
	if mvcc {
		opts = append(opts, table.WithMVCC())
	}
	f := &joinFixture{sys: sys, expectedPerOrder: map[int64]int{}}

	oStride := oSchema.RowBytes()
	iStride := iSchema.RowBytes()
	if mvcc {
		oStride += table.MVCCHeaderBytes
		iStride += table.MVCCHeaderBytes
	}
	f.orders = table.MustNew("orders", oSchema,
		append(append([]table.Option{}, opts...), table.WithBaseAddr(sys.Arena.Alloc(int64(orders*oStride))), table.WithCapacity(orders))...)
	f.items = table.MustNew("items", iSchema,
		append(append([]table.Option{}, opts...), table.WithBaseAddr(sys.Arena.Alloc(int64(orders*itemsPerOrder*iStride))), table.WithCapacity(orders*itemsPerOrder))...)

	rng := rand.New(rand.NewSource(17))
	for o := 0; o < orders; o++ {
		f.orders.MustAppend(1, table.I64(int64(o)), table.I32(int32(o%4)), table.F64(float64(o)))
		n := rng.Intn(itemsPerOrder + 1)
		f.expectedPerOrder[int64(o)] = n
		for k := 0; k < n; k++ {
			f.items.MustAppend(1, table.I64(int64(o)), table.I32(int32(rng.Intn(10))), table.F64(rng.Float64()*100))
		}
	}
	for _, n := range f.expectedPerOrder {
		f.expectedMatches += int64(n)
	}

	var err error
	f.ordersC, err = colstore.FromTable(f.orders, sys.Arena)
	if err != nil {
		t.Fatal(err)
	}
	f.itemsC, err = colstore.FromTable(f.items, sys.Arena)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func joinInputs() (JoinInput, JoinInput) {
	left := JoinInput{On: 0, Projection: []int{1, 2}}  // items side probes
	right := JoinInput{On: 0, Projection: []int{1, 2}} // orders side builds
	return left, right
}

func TestHashJoinEnginesAgree(t *testing.T) {
	f := newJoinFixture(t, 300, 4, false)
	// Probe with items (left), build on orders (right).
	left := JoinInput{On: 0, Projection: []int{1, 2}}
	right := JoinInput{On: 0, Projection: []int{1, 2}}

	f.sys.ResetState()
	row, err := HashJoinRow(f.sys, f.items, f.orders, left, right)
	if err != nil {
		t.Fatal(err)
	}
	if row.Matches != f.expectedMatches {
		t.Fatalf("ROW matches = %d, want %d", row.Matches, f.expectedMatches)
	}

	f.sys.ResetState()
	col, err := HashJoinCol(f.sys, f.itemsC, f.ordersC, left, right)
	if err != nil {
		t.Fatal(err)
	}
	f.sys.ResetState()
	rm, err := HashJoinRM(f.sys, f.items, f.orders, left, right)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*JoinResult{col, rm} {
		if r.Matches != row.Matches || r.Checksum != row.Checksum {
			t.Errorf("%s join diverges: matches %d/%d checksum %#x/%#x",
				r.Engine, r.Matches, row.Matches, r.Checksum, row.Checksum)
		}
	}
}

func TestHashJoinWithSelection(t *testing.T) {
	f := newJoinFixture(t, 200, 3, false)
	left := JoinInput{
		On:         0,
		Projection: []int{2},
		Selection:  expr.Conjunction{{Col: 1, Op: expr.Lt, Operand: table.I32(5)}},
	}
	right := JoinInput{
		On:         0,
		Projection: []int{2},
		Selection:  expr.Conjunction{{Col: 1, Op: expr.Eq, Operand: table.I32(2)}},
	}
	f.sys.ResetState()
	row, err := HashJoinRow(f.sys, f.items, f.orders, left, right)
	if err != nil {
		t.Fatal(err)
	}
	if row.Matches == 0 || row.Matches == f.expectedMatches {
		t.Fatalf("selection not effective: %d of %d", row.Matches, f.expectedMatches)
	}
	f.sys.ResetState()
	rm, err := HashJoinRM(f.sys, f.items, f.orders, left, right)
	if err != nil {
		t.Fatal(err)
	}
	if rm.Matches != row.Matches || rm.Checksum != row.Checksum {
		t.Errorf("RM join with selection diverges")
	}
}

func TestHashJoinMVCCSnapshot(t *testing.T) {
	f := newJoinFixture(t, 100, 2, true)
	// Kill half the items at ts 5.
	for r := 0; r < f.items.NumRows(); r += 2 {
		if err := f.items.SetEndTS(r, 5); err != nil {
			t.Fatal(err)
		}
	}
	ts4, ts9 := uint64(4), uint64(9)
	left, right := joinInputs()

	for _, ts := range []*uint64{&ts4, &ts9} {
		l, r := left, right
		l.Snapshot, r.Snapshot = ts, ts
		f.sys.ResetState()
		row, err := HashJoinRow(f.sys, f.items, f.orders, l, r)
		if err != nil {
			t.Fatal(err)
		}
		f.sys.ResetState()
		rm, err := HashJoinRM(f.sys, f.items, f.orders, l, r)
		if err != nil {
			t.Fatal(err)
		}
		if rm.Matches != row.Matches || rm.Checksum != row.Checksum {
			t.Errorf("snapshot %d: RM join diverges (%d vs %d)", *ts, rm.Matches, row.Matches)
		}
	}
	// The later snapshot must see fewer matches.
	l, r := joinInputs()
	l.Snapshot, r.Snapshot = &ts9, &ts9
	f.sys.ResetState()
	later, _ := HashJoinRow(f.sys, f.items, f.orders, l, r)
	l.Snapshot, r.Snapshot = &ts4, &ts4
	f.sys.ResetState()
	earlier, _ := HashJoinRow(f.sys, f.items, f.orders, l, r)
	if later.Matches >= earlier.Matches {
		t.Errorf("snapshot 9 sees %d matches, snapshot 4 sees %d — deletes invisible", later.Matches, earlier.Matches)
	}
}

func TestHashJoinValidation(t *testing.T) {
	f := newJoinFixture(t, 10, 1, false)
	left, right := joinInputs()

	bad := left
	bad.On = 99
	if _, err := HashJoinRow(f.sys, f.items, f.orders, bad, right); err == nil {
		t.Error("out-of-range join column accepted")
	}
	bad = left
	bad.Projection = nil
	if _, err := HashJoinRow(f.sys, f.items, f.orders, bad, right); err == nil {
		t.Error("empty projection accepted")
	}
	ts := uint64(1)
	bad = left
	bad.Snapshot = &ts
	if _, err := HashJoinRow(f.sys, f.items, f.orders, bad, right); err == nil {
		t.Error("snapshot over non-MVCC table accepted")
	}
	if _, err := HashJoinCol(f.sys, f.itemsC, f.ordersC, bad, right); err == nil {
		t.Error("COL join accepted a snapshot")
	}
}

func TestHashJoinEmptySides(t *testing.T) {
	f := newJoinFixture(t, 50, 2, false)
	left, right := joinInputs()
	empty := table.MustNew("empty", f.orders.Schema())
	f.sys.ResetState()
	r, err := HashJoinRow(f.sys, f.items, empty, left, right)
	if err != nil {
		t.Fatal(err)
	}
	if r.Matches != 0 {
		t.Errorf("join against empty build side matched %d", r.Matches)
	}
}

func TestHashJoinRMShipsLessThanROW(t *testing.T) {
	f := newJoinFixture(t, 2000, 3, false)
	left, right := joinInputs()
	f.sys.ResetState()
	row, err := HashJoinRow(f.sys, f.items, f.orders, left, right)
	if err != nil {
		t.Fatal(err)
	}
	f.sys.ResetState()
	rm, err := HashJoinRM(f.sys, f.items, f.orders, left, right)
	if err != nil {
		t.Fatal(err)
	}
	if rm.Breakdown.BytesToCPU >= row.Breakdown.BytesToCPU {
		t.Errorf("RM join shipped %d bytes, ROW moved %d", rm.Breakdown.BytesToCPU, row.Breakdown.BytesToCPU)
	}
}
