package engine

import (
	"math/rand"
	"testing"

	"rfabric/internal/colstore"
	"rfabric/internal/expr"
	"rfabric/internal/geometry"
	"rfabric/internal/table"
)

// testFixture builds a System, a populated row table, and its columnar copy.
type testFixture struct {
	sys   *System
	tbl   *table.Table
	store *colstore.Store
}

func wideSchema(t *testing.T, cols int) *geometry.Schema {
	t.Helper()
	defs := make([]geometry.Column, cols)
	for i := range defs {
		defs[i] = geometry.Column{Name: colName(i), Type: geometry.Int32, Width: 4}
	}
	return geometry.MustSchema(defs...)
}

func colName(i int) string {
	return string(rune('a'+i%26)) + string(rune('0'+i/26))
}

func newFixture(t *testing.T, cols, rows int, mvcc bool) *testFixture {
	t.Helper()
	sys := MustSystem(DefaultSystemConfig())
	sch := wideSchema(t, cols)
	var opts []table.Option
	if mvcc {
		opts = append(opts, table.WithMVCC())
	}
	tbl := table.MustNew("t", sch, opts...)
	rng := rand.New(rand.NewSource(42))
	for r := 0; r < rows; r++ {
		vals := make([]table.Value, cols)
		for c := range vals {
			vals[c] = table.I32(int32(rng.Intn(1000)))
		}
		tbl.MustAppend(1, vals...)
	}
	// Place the table, then the column arrays, in the simulated space.
	base := sys.Arena.Alloc(int64(tbl.SizeBytes()))
	tbl2 := relocate(t, tbl, base)
	store, err := colstore.FromTable(tbl2, sys.Arena)
	if err != nil {
		t.Fatalf("colstore.FromTable: %v", err)
	}
	return &testFixture{sys: sys, tbl: tbl2, store: store}
}

// relocate rebuilds the table at the given base address. Tables take their
// base address at construction; fixtures allocate after load for simplicity.
func relocate(t *testing.T, src *table.Table, base int64) *table.Table {
	t.Helper()
	var opts []table.Option
	if src.HasMVCC() {
		opts = append(opts, table.WithMVCC())
	}
	opts = append(opts, table.WithBaseAddr(base), table.WithCapacity(src.NumRows()))
	dst := table.MustNew(src.Name(), src.Schema(), opts...)
	for r := 0; r < src.NumRows(); r++ {
		b, _ := src.Timestamps(r)
		if _, err := dst.AppendRaw(b, src.RowPayload(r)); err != nil {
			t.Fatalf("AppendRaw: %v", err)
		}
	}
	return dst
}

func engines(f *testFixture) []Executor {
	return []Executor{
		&RowEngine{Tbl: f.tbl, Sys: f.sys},
		&ColEngine{Store: f.store, Sys: f.sys},
		&RMEngine{Tbl: f.tbl, Sys: f.sys},
		&RMEngine{Tbl: f.tbl, Sys: f.sys, PushSelection: true},
	}
}

func mustExec(t *testing.T, e Executor, q Query) *Result {
	t.Helper()
	r, err := e.Execute(q)
	if err != nil {
		t.Fatalf("%s.Execute: %v", e.Name(), err)
	}
	return r
}

func TestEnginesAgreeOnProjectionScan(t *testing.T) {
	f := newFixture(t, 16, 3000, false)
	for _, proj := range [][]int{{0}, {3, 7}, {0, 5, 10, 15}, {1, 2, 3, 4, 5, 6, 7, 8}} {
		q := Query{Projection: proj}
		ref := mustExec(t, &RowEngine{Tbl: f.tbl, Sys: f.sys}, q)
		if ref.RowsPassed != 3000 {
			t.Fatalf("projection %v: ROW passed %d rows, want 3000", proj, ref.RowsPassed)
		}
		for _, e := range engines(f) {
			f.sys.ResetState()
			got := mustExec(t, e, q)
			if err := got.EquivalentTo(ref, 0); err != nil {
				t.Errorf("projection %v: %s disagrees with ROW: %v", proj, e.Name(), err)
			}
		}
	}
}

func TestEnginesAgreeOnSelection(t *testing.T) {
	f := newFixture(t, 16, 3000, false)
	q := Query{
		Projection: []int{2, 9},
		Selection: expr.Conjunction{
			{Col: 4, Op: expr.Lt, Operand: table.I32(500)},
			{Col: 11, Op: expr.Ge, Operand: table.I32(250)},
		},
	}
	ref := mustExec(t, &RowEngine{Tbl: f.tbl, Sys: f.sys}, q)
	if ref.RowsPassed == 0 || ref.RowsPassed == ref.RowsScanned {
		t.Fatalf("selection not selective: %d of %d", ref.RowsPassed, ref.RowsScanned)
	}
	for _, e := range engines(f) {
		f.sys.ResetState()
		got := mustExec(t, e, q)
		if err := got.EquivalentTo(ref, 0); err != nil {
			t.Errorf("%s disagrees with ROW: %v", e.Name(), err)
		}
	}
}

func TestEnginesAgreeOnAggregation(t *testing.T) {
	f := newFixture(t, 8, 2000, false)
	q := Query{
		Selection: expr.Conjunction{{Col: 0, Op: expr.Lt, Operand: table.I32(700)}},
		Aggregates: []AggTerm{
			{Kind: expr.Count},
			{Kind: expr.Sum, Arg: expr.ColRef{Col: 3}},
			{Kind: expr.Min, Arg: expr.ColRef{Col: 5}},
			{Kind: expr.Max, Arg: expr.ColRef{Col: 5}},
			{Kind: expr.Sum, Arg: expr.Binary{Op: expr.Mul, L: expr.ColRef{Col: 1}, R: expr.ColRef{Col: 2}}},
		},
	}
	ref := mustExec(t, &RowEngine{Tbl: f.tbl, Sys: f.sys}, q)
	for _, e := range engines(f) {
		f.sys.ResetState()
		got := mustExec(t, e, q)
		if err := got.EquivalentTo(ref, 1e-9); err != nil {
			t.Errorf("%s disagrees with ROW: %v", e.Name(), err)
		}
	}
	// Pushed aggregation must agree too (plain-column terms only).
	qPlain := Query{
		Selection:  q.Selection,
		Aggregates: []AggTerm{{Kind: expr.Count}, {Kind: expr.Sum, Arg: expr.ColRef{Col: 3}}},
	}
	refPlain := mustExec(t, &RowEngine{Tbl: f.tbl, Sys: f.sys}, qPlain)
	f.sys.ResetState()
	push := mustExec(t, &RMEngine{Tbl: f.tbl, Sys: f.sys, PushSelection: true, PushAggregation: true}, qPlain)
	if err := push.EquivalentTo(refPlain, 1e-9); err != nil {
		t.Errorf("pushed aggregation disagrees with ROW: %v", err)
	}
}

func TestEnginesAgreeOnGroupBy(t *testing.T) {
	f := newFixture(t, 8, 2000, false)
	// Group by a low-cardinality derived column: col0 % buckets is not
	// expressible, so group directly on a column with many repeats by
	// bucketing at load time — instead, group on col 7 which has 1000
	// distinct values; correctness matters more than cardinality here.
	q := Query{
		GroupBy: []int{7},
		Aggregates: []AggTerm{
			{Kind: expr.Count},
			{Kind: expr.Sum, Arg: expr.ColRef{Col: 1}},
			{Kind: expr.Avg, Arg: expr.ColRef{Col: 2}},
		},
	}
	ref := mustExec(t, &RowEngine{Tbl: f.tbl, Sys: f.sys}, q)
	if len(ref.Groups) < 2 {
		t.Fatalf("expected multiple groups, got %d", len(ref.Groups))
	}
	for _, e := range engines(f) {
		f.sys.ResetState()
		got := mustExec(t, e, q)
		if err := got.EquivalentTo(ref, 1e-9); err != nil {
			t.Errorf("%s disagrees with ROW: %v", e.Name(), err)
		}
	}
}

func TestRMSnapshotMatchesRowSnapshot(t *testing.T) {
	f := newFixture(t, 6, 500, true)
	// End some versions and add newer ones at ts=5.
	for r := 0; r < 500; r += 3 {
		if err := f.tbl.SetEndTS(r, 5); err != nil {
			t.Fatalf("SetEndTS: %v", err)
		}
	}
	for r := 0; r < 50; r++ {
		f.tbl.MustAppend(5,
			table.I32(1), table.I32(2), table.I32(3), table.I32(4), table.I32(5), table.I32(6))
	}

	for _, ts := range []uint64{1, 4, 5, 10} {
		snap := ts
		q := Query{Projection: []int{0, 2}, Snapshot: &snap}
		ref := mustExec(t, &RowEngine{Tbl: f.tbl, Sys: f.sys}, q)
		f.sys.ResetState()
		rm := mustExec(t, &RMEngine{Tbl: f.tbl, Sys: f.sys}, q)
		if err := rm.EquivalentTo(ref, 0); err != nil {
			t.Errorf("snapshot %d: RM disagrees with ROW: %v", ts, err)
		}
	}
}

func TestColEngineRejectsSnapshot(t *testing.T) {
	f := newFixture(t, 4, 10, false)
	ts := uint64(1)
	if _, err := (&ColEngine{Store: f.store, Sys: f.sys}).Execute(Query{Projection: []int{0}, Snapshot: &ts}); err == nil {
		t.Fatal("ColEngine accepted a snapshot query over a point-in-time copy")
	}
}

func TestBreakdownSanity(t *testing.T) {
	f := newFixture(t, 16, 5000, false)
	q := Query{Projection: []int{0, 8}}

	row := mustExec(t, &RowEngine{Tbl: f.tbl, Sys: f.sys}, q)
	f.sys.ResetState()
	rm := mustExec(t, &RMEngine{Tbl: f.tbl, Sys: f.sys}, q)

	if row.Breakdown.TotalCycles == 0 || rm.Breakdown.TotalCycles == 0 {
		t.Fatal("zero modeled time")
	}
	if rm.Breakdown.BytesToCPU >= row.Breakdown.BytesToCPU {
		t.Errorf("RM shipped %d bytes to CPU, ROW %d — fabric should ship less",
			rm.Breakdown.BytesToCPU, row.Breakdown.BytesToCPU)
	}
	if rm.Breakdown.TotalCycles >= row.Breakdown.TotalCycles {
		t.Errorf("RM total %d >= ROW total %d — RM should beat ROW on a 2-of-16-column scan",
			rm.Breakdown.TotalCycles, row.Breakdown.TotalCycles)
	}
}
