package engine

import (
	"errors"
	"fmt"
	"math"

	"rfabric/internal/expr"
	"rfabric/internal/index"
	"rfabric/internal/obs"
	"rfabric/internal/table"
)

// IndexEngine is the access path for queries whose selection pins the
// indexed column: the B+tree yields candidate rows, the remaining
// predicates and the projection are evaluated row-wise on just those rows.
// This is the paper's residual role for indexes (§III-A) turned into an
// access path the constructive optimizer can price against the fabric. As
// a Source it contributes the tree descent (the prepare hook) and the
// candidate-row addressing; the scan and consume loops live in the shared
// pipeline.
type IndexEngine struct {
	Tbl *table.Table
	Sys *System
	Idx *index.BTree

	// Tracer, when set, receives a span for this execution with leaves
	// that reconcile with the Breakdown. Nil means no tracing overhead.
	Tracer *obs.Tracer
}

// Name implements Executor.
func (e *IndexEngine) Name() string { return "IDX" }

func (e *IndexEngine) tableLabel() string {
	if e.Tbl == nil {
		return ""
	}
	return e.Tbl.Name()
}

func (e *IndexEngine) sysTracer() (*System, *obs.Tracer) { return e.Sys, e.Tracer }

// indexBounds extracts the [lo, hi] range the selection imposes on the
// indexed column; ok is false when the selection does not constrain it.
func indexBounds(sel expr.Conjunction, col int) (lo, hi int64, ok bool) {
	lo, hi = math.MinInt64, math.MaxInt64
	for _, p := range sel {
		if p.Col != col {
			continue
		}
		v := p.Operand.Int
		switch p.Op {
		case expr.Eq:
			if v > lo {
				lo = v
			}
			if v < hi {
				hi = v
			}
			ok = true
		case expr.Ge:
			if v > lo {
				lo = v
			}
			ok = true
		case expr.Gt:
			if v+1 > lo {
				lo = v + 1
			}
			ok = true
		case expr.Le:
			if v < hi {
				hi = v
			}
			ok = true
		case expr.Lt:
			if v-1 < hi {
				hi = v - 1
			}
			ok = true
		}
	}
	return lo, hi, ok
}

// IndexApplicable reports whether a selection constrains the indexed
// column — the precondition for routing a scan through IndexEngine. The DB
// façade uses it to decide per join side whether the index path applies or
// the side must fall back to the base heap.
func IndexApplicable(idx *index.BTree, sel expr.Conjunction) bool {
	if idx == nil {
		return false
	}
	_, _, ok := indexBounds(sel, idx.Column())
	return ok
}

// Execute runs q through the index. It fails when the selection does not
// constrain the indexed column — the optimizer never routes such queries
// here.
func (e *IndexEngine) Execute(q Query) (*Result, error) { return Run(e, q) }

// openScan implements Source: descend the tree inside the measured window
// (the prepare hook), then visit the candidate rows through the base
// heap's addressing, re-checking every predicate for correctness.
func (e *IndexEngine) openScan(q Query, _ *obs.Span) (*scan, error) {
	if e.Tbl == nil || e.Sys == nil || e.Idx == nil {
		return nil, errors.New("engine: IndexEngine needs a table, a system, and an index")
	}
	sch := e.Tbl.Schema()
	if err := q.Validate(sch); err != nil {
		return nil, err
	}
	if q.Snapshot != nil && !e.Tbl.HasMVCC() {
		return nil, fmt.Errorf("engine: snapshot query over table %q without MVCC", e.Tbl.Name())
	}
	lo, hi, ok := indexBounds(q.Selection, e.Idx.Column())
	if !ok {
		return nil, fmt.Errorf("engine: selection does not constrain indexed column %q",
			sch.Column(e.Idx.Column()).Name)
	}

	// Residual predicates (the index already enforced the key range, but
	// equal-column predicates may be tighter than [lo,hi] alone — re-check
	// everything for correctness). No per-row iterator overhead: candidates
	// arrive as a materialized id list.
	s := &scan{
		sch:         sch,
		predCycles:  PredEvalCycles,
		fetchCycles: ExtractCycles,
		tickPerRow:  true,
		cpuSel:      q.Selection,
	}
	if e.Tbl.HasMVCC() {
		s.mvccTbl = e.Tbl
	}

	s.prepare = func(*pipeRun) ([]int, error) {
		return e.Idx.Range(e.Sys.Hier, lo, hi), nil
	}
	s.segs = func(pr *pipeRun) segIter {
		return oneShotIter(segment{ids: pr.ids, sourceRows: int64(len(pr.ids))})
	}

	tbl := e.Tbl
	s.colAt = func(_ *segment, row, col int) (int64, []byte) {
		return tbl.ColumnAddr(row, col), tbl.RowPayload(row)[sch.Offset(col):]
	}
	return s, nil
}

// estimateIDX prices the index path for the optimizer: tree descent plus a
// scattered fetch per candidate row.
func (o *Optimizer) estimateIDX(q Query) Estimate {
	if o.Index == nil {
		return Estimate{Engine: "IDX", Available: false, Reason: "no index exists on this table"}
	}
	if _, _, ok := indexBounds(q.Selection, o.Index.Column()); !ok {
		return Estimate{Engine: "IDX", Available: false,
			Reason: "selection does not constrain the indexed column"}
	}
	cfg := o.Sys.Cfg
	n := float64(o.Tbl.NumRows())

	// The index's own statistics give a far better candidate estimate than
	// the generic heuristics: equality hits entries/distinct rows; a range
	// hits its fraction of the key span.
	lo, hi, _ := indexBounds(q.Selection, o.Index.Column())
	min, max := o.Index.KeyRange()
	if lo < min {
		lo = min
	}
	if hi > max {
		hi = max
	}
	var candidates float64
	switch {
	case o.SelOverride > 0:
		// Observed-selectivity override (the audit's feedback hook) replaces
		// the index statistics the same way it replaces the heuristics.
		candidates = o.SelOverride * n
	case lo > hi:
		candidates = 0
	case lo == hi:
		candidates = float64(o.Index.Entries()) / float64(maxi(o.Index.DistinctKeys(), 1))
	default:
		span := float64(max-min) + 1
		candidates = float64(o.Index.Entries()) * (float64(hi-lo) + 1) / span
	}
	sel := candidates / maxf(n, 1)

	// Descent: height * ~3 node lines, mostly L2-resident after warmup;
	// price them as L2 hits.
	cost := float64(o.Index.Height()*3) * float64(cfg.Cache.L2.HitCycles)
	cost += candidates / 64 * 3 * float64(cfg.Cache.L2.HitCycles)
	// Scattered row fetches: unclustered, so charge an overlapped miss per
	// candidate row plus per-column extraction and consumption.
	perRow := float64(cfg.Cache.OverlapMissCycles + cfg.Cache.L2.HitCycles)
	perRow += float64(len(q.consumedColumns())+len(q.Selection)) * (ExtractCycles + PredEvalCycles)
	cost += candidates * perRow
	cost += candidates * consumeCostPerRow(q)
	return Estimate{Engine: "IDX", Cycles: cost, Selectivity: sel, Available: true}
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
