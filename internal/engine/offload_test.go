package engine

import (
	"math/rand"
	"testing"

	"rfabric/internal/compress"
	"rfabric/internal/expr"
	"rfabric/internal/fabric"
	"rfabric/internal/geometry"
	"rfabric/internal/obs"
	"rfabric/internal/table"
)

// TestOffloadReducesBytesToCPU is the offload layer's economic claim as a
// unit assertion: for a grouped aggregation the fabric can fold in place,
// offloading must strictly reduce both the bytes crossing to the CPU and
// the total modeled cycles versus shipping packed chunks for CPU-side
// consumption — while returning the identical Result.
func TestOffloadReducesBytesToCPU(t *testing.T) {
	f := newFixture(t, 6, 4000, false)
	q := Query{
		Selection:  expr.Conjunction{{Col: 1, Op: expr.Lt, Operand: table.I32(700)}},
		GroupBy:    []int{2},
		Aggregates: []AggTerm{{Kind: expr.Sum, Arg: expr.ColRef{Col: 3}}, {Kind: expr.Count}},
	}

	f.sys.ResetState()
	cpu, err := (&RMEngine{Tbl: f.tbl, Sys: f.sys, PushSelection: true}).Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	f.sys.ResetState()
	off, err := (&RMEngine{Tbl: f.tbl, Sys: f.sys, Offload: true}).Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := cpu.EquivalentTo(off, 0); err != nil {
		t.Fatalf("offloaded result differs from CPU-side: %v", err)
	}
	if off.Offload != "group-agg" {
		t.Errorf("Offload = %q, want group-agg", off.Offload)
	}
	if off.Breakdown.BytesToCPU >= cpu.Breakdown.BytesToCPU {
		t.Errorf("offload moved %d bytes to CPU, CPU-side %d — no reduction",
			off.Breakdown.BytesToCPU, cpu.Breakdown.BytesToCPU)
	}
	if off.Breakdown.TotalCycles >= cpu.Breakdown.TotalCycles {
		t.Errorf("offload cost %d cycles, CPU-side %d — no reduction",
			off.Breakdown.TotalCycles, cpu.Breakdown.TotalCycles)
	}
}

// TestOffloadedScanSpanReconciliation pins the trace contract on the offload
// path: every modeled cycle of an offloaded grouped aggregation is
// attributed to a span, so the root reconciles exactly with the breakdown.
func TestOffloadedScanSpanReconciliation(t *testing.T) {
	f := newFixture(t, 5, 2000, false)
	q := Query{
		Selection:  expr.Conjunction{{Col: 0, Op: expr.Lt, Operand: table.I32(800)}},
		GroupBy:    []int{1},
		Aggregates: []AggTerm{{Kind: expr.Min, Arg: expr.ColRef{Col: 2}}, {Kind: expr.Count}},
	}
	tr := obs.NewTracer("query")
	res, err := (&RMEngine{Tbl: f.tbl, Sys: f.sys, Offload: true, Tracer: tr}).Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Offload == "" {
		t.Fatal("query did not offload")
	}
	if got := tr.Root().AttributedCycles(); got != res.Breakdown.TotalCycles {
		t.Errorf("root span attributes %d cycles, breakdown totals %d", got, res.Breakdown.TotalCycles)
	}
}

// encodedEngineFixture builds a dictionary-encoded table on an engine System:
// (id INT64, mode CHAR(8) dict-encoded, qty INT32), plus the raw original
// for reference results.
func encodedEngineFixture(t *testing.T, rows int) (*System, *table.Table, *compress.EncodedTable) {
	t.Helper()
	sys := MustSystem(DefaultSystemConfig())
	sch := geometry.MustSchema(
		geometry.Column{Name: "id", Type: geometry.Int64, Width: 8},
		geometry.Column{Name: "mode", Type: geometry.Char, Width: 8},
		geometry.Column{Name: "qty", Type: geometry.Int32, Width: 4},
	)
	src := table.MustNew("enc", sch, table.WithCapacity(rows),
		table.WithBaseAddr(sys.Arena.Alloc(int64(rows*sch.RowBytes()))))
	modes := []string{"AIR", "RAIL", "SHIP", "TRUCK", "MAIL"}
	rng := rand.New(rand.NewSource(99))
	for r := 0; r < rows; r++ {
		src.MustAppend(1, table.I64(int64(r)), table.Str(modes[rng.Intn(len(modes))]),
			table.I32(rng.Int31n(100)))
	}
	enc, err := compress.EncodeTableDict(src, []int{1}, sys.Arena.Alloc(int64(rows*sch.RowBytes())))
	if err != nil {
		t.Fatal(err)
	}
	return sys, src, enc
}

// TestDictFilteredOffloadScan is the compression-aware scan end to end at the
// engine layer: a value-domain predicate on a dictionary-encoded column is
// translated once into the code domain, the fabric filters rows by stored
// code without CPU-side decompression, the dictionary-translation decode
// cycles land on the fabric's meter inside the traced producer cycles, and
// the span tree still reconciles exactly.
func TestDictFilteredOffloadScan(t *testing.T) {
	const rows = 3000
	sys, src, enc := encodedEngineFixture(t, rows)

	codes, entries, err := enc.MatchCodes(1, func(v table.Value) bool {
		s := v.String()
		return s == "SHIP" || s == "RAIL"
	})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{
		GroupBy:    []int{1},
		Aggregates: []AggTerm{{Kind: expr.Sum, Arg: expr.ColRef{Col: 2}}, {Kind: expr.Count}},
	}

	decodedBefore := sys.Fab.Stats().EntriesDecoded
	tr := obs.NewTracer("query")
	rm := &RMEngine{Tbl: enc.Table, Sys: sys, Offload: true, Tracer: tr,
		DictFilters: []fabric.DictFilter{{Col: 1, Codes: codes, Entries: entries}}}
	res, err := rm.Execute(q)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: CPU-side scan of the raw table with the value-domain
	// predicate, grouped the same way but over decoded values. Compare group
	// count and per-group row totals keyed by decoded mode.
	want := map[string]int64{}
	var qualify int64
	for r := 0; r < rows; r++ {
		v, _ := src.Get(r, 1)
		s := v.String()
		if s != "SHIP" && s != "RAIL" {
			continue
		}
		qualify++
		want[s]++
	}
	var got int64
	for _, g := range res.Groups {
		// The offloaded scan grouped by the stored code; decode it back.
		mode, err := enc.Decode(1, g.Key[0])
		if err != nil {
			t.Fatal(err)
		}
		if g.Count != want[mode.String()] {
			t.Errorf("group %s: %d rows, want %d", mode, g.Count, want[mode.String()])
		}
		got += g.Count
	}
	if got != qualify {
		t.Errorf("offloaded scan qualified %d rows, want %d", got, qualify)
	}
	if len(res.Groups) != len(want) {
		t.Errorf("%d groups, want %d", len(res.Groups), len(want))
	}

	// Decode cycles are attributed to the fabric, once per dictionary entry.
	st := sys.Fab.Stats()
	if st.EntriesDecoded-decodedBefore != uint64(entries) {
		t.Errorf("fabric decoded %d entries, want %d", st.EntriesDecoded-decodedBefore, entries)
	}
	if st.RowsCodeFiltered != uint64(rows)-uint64(qualify) {
		t.Errorf("RowsCodeFiltered = %d, want %d", st.RowsCodeFiltered, uint64(rows)-uint64(qualify))
	}
	if res.Offload != "group-agg" {
		t.Errorf("Offload = %q, want group-agg", res.Offload)
	}
	if got := tr.Root().AttributedCycles(); got != res.Breakdown.TotalCycles {
		t.Errorf("root span attributes %d cycles, breakdown totals %d", got, res.Breakdown.TotalCycles)
	}
}

// TestJoinBloomPrefilterMatchesUnfiltered verifies the Bloom semi-join wired
// through the join executors is invisible to results: the pre-filtered probe
// returns exactly the unfiltered rows (false positives are re-checked CPU-
// side; false negatives are impossible), and the parallel path agrees too.
func TestJoinBloomPrefilterMatchesUnfiltered(t *testing.T) {
	f := newJoinPlanFixture(t, 2500, 50, 21)
	p := q3ClassPlan(f, t)

	f.sys.ResetState()
	plain, err := (&JoinExec{
		Plan:   p,
		Probe:  &RMEngine{Tbl: f.fact, Sys: f.sys, ForceScalar: true},
		Builds: []Source{&RowEngine{Tbl: f.dim, Sys: f.sys, ForceScalar: true}},
	}).Execute()
	if err != nil {
		t.Fatal(err)
	}

	f.sys.ResetState()
	filtered, err := (&JoinExec{
		Plan:   p,
		Probe:  &RMEngine{Tbl: f.fact, Sys: f.sys, ForceScalar: true, Offload: true},
		Builds: []Source{&RowEngine{Tbl: f.dim, Sys: f.sys, ForceScalar: true}},
	}).Execute()
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.EquivalentTo(filtered, 1e-9); err != nil {
		t.Fatalf("Bloom-filtered join disagrees with unfiltered: %v", err)
	}
	if st := f.sys.Fab.Stats(); st.RowsSemiFiltered == 0 {
		t.Error("Bloom pre-filter dropped no probe rows — filter not wired")
	}

	f.sys.ResetState()
	par, err := (&ParallelJoinExec{
		Plan: p, ProbeTbl: f.fact, Sys: f.sys,
		Par:     ParallelConfig{Workers: 4, MorselRows: 128},
		Builds:  []Source{&RowEngine{Tbl: f.dim, Sys: f.sys, ForceScalar: true}},
		Offload: true,
	}).Execute()
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.EquivalentTo(par, 1e-9); err != nil {
		t.Fatalf("parallel Bloom-filtered join disagrees: %v", err)
	}
}

// TestOptimizerPricesOffload pins that pricing and dispatch share one gate:
// when the optimizer is told the offload layer is on, its RM estimate for an
// offloadable aggregation is marked Offloaded and is cheaper than the same
// estimate without offload (the consumer's chunk-walk collapses to reading
// the reduced result).
func TestOptimizerPricesOffload(t *testing.T) {
	f := newFixture(t, 6, 4000, false)
	q := Query{
		Selection:  expr.Conjunction{{Col: 1, Op: expr.Lt, Operand: table.I32(500)}},
		GroupBy:    []int{2},
		Aggregates: []AggTerm{{Kind: expr.Sum, Arg: expr.ColRef{Col: 3}}, {Kind: expr.Count}},
	}
	base := &Optimizer{Tbl: f.tbl, Sys: f.sys}
	cpuEst, ok := base.EstimateFor("RM", q)
	if !ok {
		t.Fatal("RM not priceable")
	}
	if cpuEst.Offloaded {
		t.Error("offload-off estimate marked Offloaded")
	}
	offOpt := &Optimizer{Tbl: f.tbl, Sys: f.sys, Offload: true}
	offEst, ok := offOpt.EstimateFor("RM", q)
	if !ok {
		t.Fatal("RM not priceable with offload")
	}
	if !offEst.Offloaded {
		t.Fatal("offload-on estimate not marked Offloaded")
	}
	if offEst.Cycles >= cpuEst.Cycles {
		t.Errorf("offloaded estimate %f >= CPU-side %f — pricing sees no benefit",
			offEst.Cycles, cpuEst.Cycles)
	}
	// A pure projection cannot offload: the gate must agree with dispatch.
	proj := Query{Projection: []int{0, 1}}
	if est, ok := offOpt.EstimateFor("RM", proj); ok && est.Offloaded {
		t.Error("projection estimate marked Offloaded — dispatch would not offload it")
	}
}
