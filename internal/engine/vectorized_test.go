package engine

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"rfabric/internal/colstore"
	"rfabric/internal/expr"
	"rfabric/internal/geometry"
	"rfabric/internal/table"
)

// The vectorized scan paths promise more than result equivalence: the
// charge-replay loop must issue the exact Load sequence and compute charges
// of the scalar interpreter, so the full modeled Breakdown and the cache
// hierarchy statistics must match bit for bit. Because the RM path allocates
// fabric delivery windows from the system arena per execution, comparing two
// executions exactly requires two identically built (system, table) pairs —
// a shared system would hand the second run different addresses.

// vecFixture is one deterministic (system, table, column store) build.
type vecFixture struct {
	sys   *System
	tbl   *table.Table
	store *colstore.Store
}

// buildVecFixture reconstructs the identical fixture for a seed. Two calls
// with the same arguments produce byte-identical tables at identical
// simulated addresses on independent systems.
func buildVecFixture(t *testing.T, seed int64, mvcc bool, rows int, wantStore bool) *vecFixture {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sch := genSchema(rng)
	sys := MustSystem(DefaultSystemConfig())
	stride := sch.RowBytes()
	if mvcc {
		stride += table.MVCCHeaderBytes
	}
	base := sys.Arena.Alloc(int64(rows * stride))
	opts := []table.Option{table.WithCapacity(rows), table.WithBaseAddr(base)}
	if mvcc {
		opts = append(opts, table.WithMVCC())
	}
	tbl, err := table.New("vecprop", sch, opts...)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rows; r++ {
		vals := make([]table.Value, sch.NumColumns())
		for c := range vals {
			vals[c] = genValue(rng, sch.Column(c))
		}
		begin := uint64(1 + rng.Intn(3))
		idx := tbl.MustAppend(begin, vals...)
		if mvcc && rng.Intn(4) == 0 {
			if err := tbl.SetEndTS(idx, begin+uint64(1+rng.Intn(3))); err != nil {
				t.Fatal(err)
			}
		}
	}
	fx := &vecFixture{sys: sys, tbl: tbl}
	if wantStore {
		store, err := colstore.FromTable(tbl, sys.Arena)
		if err != nil {
			t.Fatal(err)
		}
		fx.store = store
	}
	return fx
}

// requireExactMatch compares two results down to modeled cycles and float
// bits, plus the two systems' cache hierarchy statistics.
func requireExactMatch(t *testing.T, name string, scalar, vector *Result, scalarSys, vectorSys *System) {
	t.Helper()
	fail := func(format string, args ...any) {
		t.Fatalf("%s: scalar/vectorized mismatch: %s", name, fmt.Sprintf(format, args...))
	}
	if scalar.RowsScanned != vector.RowsScanned {
		fail("RowsScanned %d != %d", scalar.RowsScanned, vector.RowsScanned)
	}
	if scalar.RowsPassed != vector.RowsPassed {
		fail("RowsPassed %d != %d", scalar.RowsPassed, vector.RowsPassed)
	}
	if scalar.Checksum != vector.Checksum {
		fail("Checksum %#x != %#x", scalar.Checksum, vector.Checksum)
	}
	if len(scalar.Aggs) != len(vector.Aggs) {
		fail("Aggs len %d != %d", len(scalar.Aggs), len(vector.Aggs))
	}
	for i := range scalar.Aggs {
		a, b := scalar.Aggs[i], vector.Aggs[i]
		if a.Type != b.Type || a.Int != b.Int ||
			math.Float64bits(a.Float) != math.Float64bits(b.Float) {
			fail("Aggs[%d] %+v != %+v", i, a, b)
		}
	}
	if scalar.Breakdown != vector.Breakdown {
		fail("Breakdown\nscalar: %+v\nvector: %+v", scalar.Breakdown, vector.Breakdown)
	}
	if s, v := scalarSys.Hier.Stats(), vectorSys.Hier.Stats(); s != v {
		fail("hierarchy stats\nscalar: %+v\nvector: %+v", s, v)
	}
}

// TestVectorizedMatchesScalarExactly is the charge-replay property test: for
// randomized schemas, data, and queries, the batch path of every engine
// produces the identical Result — checksum, float-bit-exact aggregates, and
// the complete modeled Breakdown — and drives the cache hierarchy through the
// identical state trajectory.
func TestVectorizedMatchesScalarExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(20230805))
	const plainTrials, mvccTrials = 40, 30
	for i := 0; i < plainTrials; i++ {
		t.Run(fmt.Sprintf("plain/%03d", i), func(t *testing.T) {
			vectorizedTrial(t, rng, false)
		})
	}
	for i := 0; i < mvccTrials; i++ {
		t.Run(fmt.Sprintf("mvcc/%03d", i), func(t *testing.T) {
			vectorizedTrial(t, rng, true)
		})
	}
}

func vectorizedTrial(t *testing.T, rng *rand.Rand, mvcc bool) {
	t.Helper()
	seed := rng.Int63()
	rows := 1 + rng.Intn(3000)

	// The query must come from fixture-independent randomness, drawn against
	// the schema both fixtures share.
	qrng := rand.New(rand.NewSource(seed ^ 0x5eed))
	schRng := rand.New(rand.NewSource(seed))
	sch := genSchema(schRng)
	var snapshot *uint64
	if mvcc {
		ts := uint64(qrng.Intn(6))
		snapshot = &ts
	}
	q := genQuery(qrng, sch, snapshot)
	if err := q.Validate(sch); err != nil {
		t.Fatalf("generated query invalid: %v", err)
	}

	type variant struct {
		name  string
		build func(fx *vecFixture, forceScalar bool) Executor
	}
	variants := []variant{
		{"ROW", func(fx *vecFixture, fs bool) Executor {
			return &RowEngine{Tbl: fx.tbl, Sys: fx.sys, ForceScalar: fs}
		}},
		{"RM", func(fx *vecFixture, fs bool) Executor {
			return &RMEngine{Tbl: fx.tbl, Sys: fx.sys, ForceScalar: fs}
		}},
		{"RM-push", func(fx *vecFixture, fs bool) Executor {
			return &RMEngine{Tbl: fx.tbl, Sys: fx.sys, PushSelection: true, ForceScalar: fs}
		}},
		{"PAR", func(fx *vecFixture, fs bool) Executor {
			return &ParallelEngine{Tbl: fx.tbl, Sys: fx.sys,
				Par: ParallelConfig{Workers: 4, MorselRows: 256}, ForceScalar: fs}
		}},
	}
	if !mvcc {
		variants = append(variants, variant{"COL", func(fx *vecFixture, fs bool) Executor {
			return &ColEngine{Store: fx.store, Sys: fx.sys, ForceScalar: fs}
		}})
	}

	for _, v := range variants {
		// Fresh twin fixtures per variant: each Execute consumes arena
		// addresses (fabric windows), so runs must not share a system.
		scalarFx := buildVecFixture(t, seed, mvcc, rows, v.name == "COL")
		vectorFx := buildVecFixture(t, seed, mvcc, rows, v.name == "COL")
		rs, err := v.build(scalarFx, true).Execute(q)
		if err != nil {
			t.Fatalf("%s scalar: %v\nquery: %+v", v.name, err, q)
		}
		rv, err := v.build(vectorFx, false).Execute(q)
		if err != nil {
			t.Fatalf("%s vectorized: %v\nquery: %+v", v.name, err, q)
		}
		requireExactMatch(t, v.name, rs, rv, scalarFx.sys, vectorFx.sys)
	}
}

// TestVectorizedBoundaryValues drives the kernels through the value-domain
// corners where scalar semantics are easy to miss: CHAR operands with
// trailing and embedded NULs, NaN floats on both sides of a predicate,
// extreme integers, and negative 32-bit values (sign extension).
func TestVectorizedBoundaryValues(t *testing.T) {
	cols := []geometry.Column{
		{Name: "i64", Type: geometry.Int64, Width: 8},
		{Name: "f64", Type: geometry.Float64, Width: 8},
		{Name: "ch", Type: geometry.Char, Width: 6},
		{Name: "i32", Type: geometry.Int32, Width: 4},
	}
	sch, err := geometry.NewSchema(cols...)
	if err != nil {
		t.Fatal(err)
	}
	nan := math.NaN()
	rowsData := [][]table.Value{
		{table.I64(math.MaxInt64), table.F64(nan), table.Str("oak"), table.I32(-1)},
		{table.I64(math.MinInt64), table.F64(0), table.Str(""), table.I32(math.MinInt32)},
		{table.I64(0), table.F64(math.Inf(1)), table.Str("oak\x00x"), table.I32(math.MaxInt32)},
		{table.I64(-1), table.F64(math.Inf(-1)), table.Str("oakum"), table.I32(0)},
		{table.I64(1), table.F64(-0.0), table.Str("o"), table.I32(7)},
	}
	queries := []Query{
		{Projection: []int{0, 1, 2, 3}},
		{Projection: []int{2}, Selection: expr.Conjunction{
			{Col: 2, Op: expr.Eq, Operand: table.Str("oak")}}},
		{Projection: []int{0}, Selection: expr.Conjunction{
			{Col: 2, Op: expr.Ge, Operand: table.Str("")}}},
		{Projection: []int{1}, Selection: expr.Conjunction{
			{Col: 1, Op: expr.Le, Operand: table.F64(nan)}}},
		{Projection: []int{3}, Selection: expr.Conjunction{
			{Col: 3, Op: expr.Lt, Operand: table.I32(0)},
			{Col: 0, Op: expr.Ne, Operand: table.I64(0)}}},
		{Aggregates: []AggTerm{
			{Kind: expr.Sum, Arg: expr.ColRef{Col: 1}},
			{Kind: expr.Min, Arg: expr.ColRef{Col: 0}},
			{Kind: expr.Max, Arg: expr.ColRef{Col: 3}},
			{Kind: expr.Sum, Arg: expr.Binary{Op: expr.Mul,
				L: expr.ColRef{Col: 1}, R: expr.ColRef{Col: 3}}},
		}},
	}

	build := func() (*System, *table.Table) {
		sys := MustSystem(DefaultSystemConfig())
		base := sys.Arena.Alloc(int64(len(rowsData) * sch.RowBytes()))
		tbl := table.MustNew("edge", sch, table.WithBaseAddr(base))
		for _, vals := range rowsData {
			tbl.MustAppend(0, vals...)
		}
		return sys, tbl
	}

	for qi, q := range queries {
		for _, engineName := range []string{"ROW", "RM"} {
			scalarSys, scalarTbl := build()
			vectorSys, vectorTbl := build()
			var es, ev Executor
			if engineName == "ROW" {
				es = &RowEngine{Tbl: scalarTbl, Sys: scalarSys, ForceScalar: true}
				ev = &RowEngine{Tbl: vectorTbl, Sys: vectorSys}
			} else {
				es = &RMEngine{Tbl: scalarTbl, Sys: scalarSys, ForceScalar: true}
				ev = &RMEngine{Tbl: vectorTbl, Sys: vectorSys}
			}
			rs, err := es.Execute(q)
			if err != nil {
				t.Fatalf("query %d %s scalar: %v", qi, engineName, err)
			}
			rv, err := ev.Execute(q)
			if err != nil {
				t.Fatalf("query %d %s vectorized: %v", qi, engineName, err)
			}
			requireExactMatch(t, fmt.Sprintf("query %d %s", qi, engineName),
				rs, rv, scalarSys, vectorSys)
		}
	}
}

// TestVectorizedScanAllocsConstant pins the zero-alloc batch property: once
// the engine's scratch is warm, the allocations of a full-table scan do not
// grow with the row count — i.e. the per-batch steady state allocates
// nothing (a 16k-row table runs 4x the batches of a 4k-row one).
func TestVectorizedScanAllocsConstant(t *testing.T) {
	build := func(rows int) (*System, *table.Table) {
		rng := rand.New(rand.NewSource(7))
		sys := MustSystem(DefaultSystemConfig())
		sch := genSchema(rng)
		base := sys.Arena.Alloc(int64(rows * sch.RowBytes()))
		tbl := table.MustNew("alloc", sch, table.WithCapacity(rows), table.WithBaseAddr(base))
		for r := 0; r < rows; r++ {
			vals := make([]table.Value, sch.NumColumns())
			for c := range vals {
				vals[c] = genValue(rng, sch.Column(c))
			}
			tbl.MustAppend(0, vals...)
		}
		return sys, tbl
	}
	q := Query{
		Projection: []int{0},
		Selection:  expr.Conjunction{{Col: 0, Op: expr.Lt, Operand: table.I64(50)}},
	}

	measure := func(rows int) float64 {
		sys, tbl := build(rows)
		eng := &RowEngine{Tbl: tbl, Sys: sys}
		if _, err := eng.Execute(q); err != nil { // warm the scratch
			t.Fatal(err)
		}
		return testing.AllocsPerRun(5, func() {
			sys.ResetState()
			if _, err := eng.Execute(q); err != nil {
				t.Fatal(err)
			}
		})
	}

	small := measure(4 * 1024)
	large := measure(16 * 1024)
	if large > small {
		t.Fatalf("vectorized scan allocations grow with rows: %.1f allocs at 4k rows, %.1f at 16k", small, large)
	}
}
