package engine

import (
	"fmt"
	"math"

	"rfabric/internal/fabric"
	"rfabric/internal/geometry"
	"rfabric/internal/obs"
	"rfabric/internal/table"
	"rfabric/internal/vec"
)

// The batch executors below are the vectorized twins of the scalar loops in
// rowengine.go, rmengine.go, and colengine.go. Each processes vecBatchRows
// rows per iteration in four stages — visibility, bulk decode, selection
// refinement, charge replay — then consumes the survivors through typed
// kernels. The charge-replay stage issues the exact Hier.Load sequence and
// compute charges of the scalar interpreter (the per-row short-circuit
// outcome decided by the recorded fail depth selects a precompiled load
// program), so modeled cycles, Breakdown, spans, and timelines are
// byte-identical; only wall-clock time and allocations change.

// executeVectorized is RowEngine's batch scan.
func (e *RowEngine) executeVectorized(q Query, prog *scanProg, sp *obs.Span) (*Result, error) {
	memStart := e.Sys.Mem.Stats()
	hierStart := e.Sys.Hier.Stats()
	var compute uint64

	if e.scratch == nil {
		e.scratch = &scanScratch{}
	}
	sc := e.scratch
	sc.ensure(prog)

	data := e.Tbl.Data()
	stride := e.Tbl.RowStride()
	mvcc := e.Tbl.HasMVCC()
	payloadOff := 0
	if mvcc {
		payloadOff = table.MVCCHeaderBytes
	}
	rows := e.Tbl.NumRows()
	baseAddr := e.Tbl.BaseAddr()
	snapped := mvcc && q.Snapshot != nil
	var snapTS uint64
	if snapped {
		snapTS = *q.Snapshot
	}

	var aggs []vec.AggState
	if len(prog.aggs) > 0 {
		aggs = make([]vec.AggState, len(prog.aggs))
	}
	var checksum uint64
	var passed int64
	tk := newTicker(e.Tracer)
	last := len(prog.preds)

	for base := 0; base < rows; base += vecBatchRows {
		n := rows - base
		if n > vecBatchRows {
			n = vecBatchRows
		}
		vis := sc.vis[:n]
		if snapped {
			vec.VisibleMask(vis, data, stride, base, snapTS)
		}
		byteBase := base*stride + payloadOff
		sc.decodeSlots(prog, data, byteBase, stride, n)
		sel := sc.sel[:0]
		if snapped {
			for i := 0; i < n; i++ {
				if vis[i] {
					sel = append(sel, int32(i))
				}
			}
		} else {
			for i := 0; i < n; i++ {
				sel = append(sel, int32(i))
			}
		}
		sel = sc.refine(prog, data, byteBase, stride, n, sel)

		// Charge replay, row-major like the scalar loop: tick, iterator
		// overhead, MVCC header touch, then the outcome's load program.
		fail := sc.fail[:n]
		rowAddr := baseAddr + int64(base)*int64(stride)
		for i := 0; i < n; i++ {
			if tk.tl != nil {
				tk.advance(e.Sys.Hier.Stats().Cycles - hierStart.Cycles + compute)
			}
			compute += VolcanoNextCycles
			if mvcc {
				e.Sys.Hier.Load(rowAddr)
				if snapped {
					compute += TSCheckSoftwareCycles
					if !vis[i] {
						rowAddr += int64(stride)
						continue
					}
				}
			}
			idx := last
			if fail[i] >= 0 {
				idx = int(fail[i])
			}
			payloadAddr := rowAddr + int64(payloadOff)
			for _, off := range prog.loadOffs[idx] {
				e.Sys.Hier.Load(payloadAddr + off)
			}
			compute += prog.charge[idx]
			rowAddr += int64(stride)
		}

		passed += int64(len(sel))
		sc.consume(prog, data, byteBase, stride, sel, &checksum, aggs)
	}

	res := assembleVecResult(e.Name(), q, aggs, int64(rows), passed, checksum)
	tk.advance(e.Sys.Hier.Stats().Cycles - hierStart.Cycles + compute)
	res.Breakdown = demandBreakdown(e.Sys, memStart, hierStart, compute)
	finishDemandSpan(sp, e.Sys, memStart, hierStart, res)
	return res, nil
}

// executeConsumeVectorized is RMEngine's batch consumer over fabric chunks.
// Batches never span chunks, so the per-chunk producer/consumer pipeline
// accounting sees the same per-chunk deltas as the scalar consumer.
func (e *RMEngine) executeConsumeVectorized(q Query, ev *fabric.Ephemeral, prog *scanProg, sp *obs.Span) (*Result, error) {
	memStart := e.Sys.Mem.Stats()
	hierStart := e.Sys.Hier.Stats()
	fabStart := e.Sys.Fab.Stats()
	var compute uint64

	if e.scratch == nil {
		e.scratch = &scanScratch{}
	}
	sc := e.scratch
	sc.ensure(prog)

	packed := ev.PackedWidth()
	lineBytes := int64(e.Sys.Hier.LineBytes())
	var aggs []vec.AggState
	if len(prog.aggs) > 0 {
		aggs = make([]vec.AggState, len(prog.aggs))
	}
	var checksum uint64
	var passed, scanned int64
	var pipeline, producer uint64
	tk := newTicker(e.Tracer)
	last := len(prog.preds)

	ev.Reset()
	for {
		hierBefore := e.Sys.Hier.Stats().Cycles
		computeBefore := compute

		ch, ok := ev.Next()
		if !ok {
			break
		}
		scanned += int64(ch.SourceRows)

		lines := (len(ch.Data) + int(lineBytes) - 1) / int(lineBytes)
		for i := 0; i < lines; i++ {
			e.Sys.Hier.FillFromFabric(ch.BaseAddr + int64(i)*lineBytes)
		}

		for sub := 0; sub < ch.Rows; sub += vecBatchRows {
			n := ch.Rows - sub
			if n > vecBatchRows {
				n = vecBatchRows
			}
			byteBase := sub * packed
			sc.decodeSlots(prog, ch.Data, byteBase, packed, n)
			sel := sc.sel[:0]
			for i := 0; i < n; i++ {
				sel = append(sel, int32(i))
			}
			sel = sc.refine(prog, ch.Data, byteBase, packed, n, sel)

			fail := sc.fail[:n]
			rowAddr := ch.BaseAddr + int64(byteBase)
			for i := 0; i < n; i++ {
				idx := last
				if fail[i] >= 0 {
					idx = int(fail[i])
				}
				for _, off := range prog.loadOffs[idx] {
					e.Sys.Hier.Load(rowAddr + off)
				}
				compute += prog.charge[idx]
				rowAddr += int64(packed)
			}

			passed += int64(len(sel))
			sc.consume(prog, ch.Data, byteBase, packed, sel, &checksum, aggs)
		}

		consumer := (e.Sys.Hier.Stats().Cycles - hierBefore) + (compute - computeBefore)
		producer += ch.ProducerCycles
		if ch.ProducerCycles > consumer {
			pipeline += ch.ProducerCycles
		} else {
			pipeline += consumer
		}
		tk.advance(pipeline)
	}

	res := assembleVecResult(e.Name(), q, aggs, scanned, passed, checksum)
	fabD := e.Sys.Fab.Stats().Delta(fabStart)
	res.Breakdown = pipelineBreakdown(e.Sys, memStart, hierStart, compute, pipeline, producer, fabD.BytesShipped)
	finishPipelineSpan(sp, e.Sys, memStart, hierStart, res)
	sp.SetAttr("fabric_chunks", fmt.Sprint(fabD.Chunks))
	sp.SetAttr("fabric_bytes_gathered", fmt.Sprint(fabD.BytesGathered))
	return res, nil
}

// executeVectorized is ColEngine's batch scan: bitmap selection passes over
// dense columns, then batched tuple reconstruction over the qualifying
// row ids.
func (e *ColEngine) executeVectorized(q Query, prog *scanProg, sp *obs.Span) (*Result, error) {
	sch := e.Store.Schema()
	memStart := e.Sys.Mem.Stats()
	hierStart := e.Sys.Hier.Stats()
	var compute uint64

	if e.scratch == nil {
		e.scratch = &scanScratch{}
	}
	sc := e.scratch
	sc.ensure(prog)
	tk := newTicker(e.Tracer)
	rows := e.Store.NumRows()

	var bitmap []bool
	var bitmapAddr int64
	if len(q.Selection) > 0 {
		bitmapAddr = e.Sys.Arena.Alloc(int64(rows))
		bitmap = make([]bool, rows)
	}
	for pi, p := range q.Selection {
		cdef := sch.Column(p.Col)
		w := cdef.Width
		data := e.Store.ColumnData(p.Col)
		valBase := e.Store.ColumnAddr(p.Col)
		refinePass := pi > 0
		var opB []byte
		if cdef.Type == geometry.Char {
			opB = vec.TrimPad(p.Operand.Bytes)
		}
		for base := 0; base < rows; base += vecBatchRows {
			n := rows - base
			if n > vecBatchRows {
				n = vecBatchRows
			}
			// Exact scalar pass order per row: tick, value load, bitmap
			// load (later passes), charge.
			addr := valBase + int64(base*w)
			for i := 0; i < n; i++ {
				if tk.tl != nil {
					tk.advance(e.Sys.Hier.Stats().Cycles - hierStart.Cycles + compute)
				}
				e.Sys.Hier.Load(addr)
				if refinePass {
					e.Sys.Hier.Load(bitmapAddr + int64(base+i))
				}
				compute += VectorOpCycles + MaterializeCycles
				addr += int64(w)
			}
			dst := bitmap[base : base+n]
			switch cdef.Type {
			case geometry.Int64:
				vec.DecodeI64(sc.pred[:n], data, base*w, w, n)
				vec.CmpBitmapI64(dst, sc.pred[:n], p.Op, p.Operand.Int, refinePass)
			case geometry.Int32, geometry.Date:
				vec.DecodeI32(sc.pred[:n], data, base*w, w, n)
				vec.CmpBitmapI64(dst, sc.pred[:n], p.Op, p.Operand.Int, refinePass)
			case geometry.Float64:
				vec.DecodeF64(sc.out[:n], data, base*w, w, n)
				vec.CmpBitmapF64(dst, sc.out[:n], p.Op, p.Operand.Float, refinePass)
			case geometry.Char:
				vec.CmpBitmapChar(dst, data, w, base, p.Op, opB, refinePass)
			}
		}
	}

	var sel32 []int32
	if bitmap != nil {
		sel32 = make([]int32, 0, rows)
		for r, ok := range bitmap {
			if ok {
				sel32 = append(sel32, int32(r))
			}
		}
		compute += uint64(len(sel32) * MaterializeCycles)
	}

	// Reconstruction: the pass program (index len(preds)==0 here — compile
	// saw no CPU predicates) is the consumed columns in declared order.
	loads := prog.loadSlots[len(prog.preds)]
	passCharge := prog.charge[len(prog.preds)]
	var aggs []vec.AggState
	if len(prog.aggs) > 0 {
		aggs = make([]vec.AggState, len(prog.aggs))
	}
	var checksum uint64
	var passed int64

	process := func(group []int32) {
		m := len(group)
		for _, r := range group {
			if tk.tl != nil {
				tk.advance(e.Sys.Hier.Stats().Cycles - hierStart.Cycles + compute)
			}
			for _, si := range loads {
				sl := &prog.slots[si]
				e.Sys.Hier.Load(e.Store.ValueAddr(sl.col, int(r)))
			}
			compute += passCharge
		}
		for _, si := range loads {
			sl := &prog.slots[si]
			cdata := e.Store.ColumnData(sl.col)
			switch sl.kind {
			case slotI64:
				vec.GatherI64(sc.i64[sl.lane][:m], cdata, sl.width, group)
			case slotI32:
				vec.GatherI32(sc.i64[sl.lane][:m], cdata, sl.width, group)
			case slotF64:
				vec.GatherF64(sc.f64[sl.lane][:m], cdata, sl.width, group)
			}
		}
		idsel := sc.iota[:m]
		if prog.aggs == nil {
			for i, col := range prog.projCols {
				si := prog.projSlot[i]
				sl := &prog.slots[si]
				switch sl.kind {
				case slotI64, slotI32:
					checksum += vec.ChecksumI64(col, sc.i64[sl.lane], idsel)
				case slotF64:
					checksum += vec.ChecksumF64(col, sc.f64[sl.lane], idsel)
				case slotChar:
					checksum += vec.ChecksumCharGather(col, e.Store.ColumnData(col), sl.width, group)
				}
			}
		} else {
			sc.foldAggs(prog, idsel, aggs, func(si int32, dst []float64, s2 []int32) {
				sl := &prog.slots[si]
				if sl.kind == slotF64 {
					vec.CompactLaneF64(dst, sc.f64[sl.lane], s2)
				} else {
					vec.CompactLaneI64(dst, sc.i64[sl.lane], s2)
				}
			})
		}
		passed += int64(m)
	}

	if bitmap == nil {
		for base := 0; base < rows; base += vecBatchRows {
			n := rows - base
			if n > vecBatchRows {
				n = vecBatchRows
			}
			group := sc.sel[:0]
			for i := 0; i < n; i++ {
				group = append(group, int32(base+i))
			}
			process(group)
		}
	} else {
		for s0 := 0; s0 < len(sel32); s0 += vecBatchRows {
			s1 := s0 + vecBatchRows
			if s1 > len(sel32) {
				s1 = len(sel32)
			}
			process(sel32[s0:s1])
		}
	}

	res := assembleVecResult(e.Name(), q, aggs, int64(rows), passed, checksum)
	tk.advance(e.Sys.Hier.Stats().Cycles - hierStart.Cycles + compute)
	res.Breakdown = demandBreakdown(e.Sys, memStart, hierStart, compute)
	finishDemandSpan(sp, e.Sys, memStart, hierStart, res)
	return res, nil
}

// vecRowLimit guards the int32 selection representation; tables past it use
// the scalar paths (none of the reproduction's workloads come close).
const vecRowLimit = math.MaxInt32
