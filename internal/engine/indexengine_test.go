package engine

import (
	"testing"

	"rfabric/internal/expr"
	"rfabric/internal/index"
	"rfabric/internal/table"
)

func newIndexedFixture(t *testing.T, rows int) (*testFixture, *index.BTree) {
	t.Helper()
	f := newFixture(t, 8, rows, false)
	idx, err := index.Build(f.tbl, 0, f.sys.Arena)
	if err != nil {
		t.Fatal(err)
	}
	return f, idx
}

func TestIndexEngineMatchesRowEngine(t *testing.T) {
	f, idx := newIndexedFixture(t, 4000)
	queries := []Query{
		{Projection: []int{3, 5}, Selection: expr.Conjunction{{Col: 0, Op: expr.Eq, Operand: table.I32(500)}}},
		{Projection: []int{1}, Selection: expr.Conjunction{
			{Col: 0, Op: expr.Ge, Operand: table.I32(100)},
			{Col: 0, Op: expr.Lt, Operand: table.I32(140)},
		}},
		{Projection: []int{1}, Selection: expr.Conjunction{
			{Col: 0, Op: expr.Le, Operand: table.I32(50)},
			{Col: 4, Op: expr.Gt, Operand: table.I32(300)}, // residual predicate
		}},
		{Selection: expr.Conjunction{{Col: 0, Op: expr.Lt, Operand: table.I32(200)}},
			Aggregates: []AggTerm{{Kind: expr.Count}, {Kind: expr.Sum, Arg: expr.ColRef{Col: 2}}}},
	}
	for i, q := range queries {
		f.sys.ResetState()
		ref := mustExec(t, &RowEngine{Tbl: f.tbl, Sys: f.sys}, q)
		f.sys.ResetState()
		got := mustExec(t, &IndexEngine{Tbl: f.tbl, Sys: f.sys, Idx: idx}, q)
		if err := got.EquivalentTo(ref, 1e-9); err != nil {
			t.Errorf("query %d: IDX diverges from ROW: %v", i, err)
		}
	}
}

func TestIndexEngineRequiresIndexedPredicate(t *testing.T) {
	f, idx := newIndexedFixture(t, 100)
	e := &IndexEngine{Tbl: f.tbl, Sys: f.sys, Idx: idx}
	if _, err := e.Execute(Query{Projection: []int{1}}); err == nil {
		t.Error("unconstrained query accepted")
	}
	if _, err := e.Execute(Query{Projection: []int{1},
		Selection: expr.Conjunction{{Col: 3, Op: expr.Eq, Operand: table.I32(1)}}}); err == nil {
		t.Error("query constraining a different column accepted")
	}
}

func TestIndexEngineBeatsScanOnPointQueries(t *testing.T) {
	f, idx := newIndexedFixture(t, 30_000)
	q := Query{Projection: []int{3}, Selection: expr.Conjunction{{Col: 0, Op: expr.Eq, Operand: table.I32(123)}}}
	f.sys.ResetState()
	viaIndex := mustExec(t, &IndexEngine{Tbl: f.tbl, Sys: f.sys, Idx: idx}, q)
	f.sys.ResetState()
	viaScan := mustExec(t, &RMEngine{Tbl: f.tbl, Sys: f.sys}, q)
	if viaIndex.Breakdown.TotalCycles*10 > viaScan.Breakdown.TotalCycles {
		t.Errorf("index path (%d cycles) not clearly below the scan (%d)",
			viaIndex.Breakdown.TotalCycles, viaScan.Breakdown.TotalCycles)
	}
}

func TestOptimizerRoutesPointQueriesToIndex(t *testing.T) {
	f, idx := newIndexedFixture(t, 30_000)
	opt := &Optimizer{Tbl: f.tbl, Sys: f.sys, Store: f.store, Index: idx}

	point := Query{Projection: []int{3}, Selection: expr.Conjunction{{Col: 0, Op: expr.Eq, Operand: table.I32(7)}}}
	plan, err := opt.Choose(point)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Chosen != "IDX" {
		t.Errorf("point query routed to %s (%s)", plan.Chosen, plan)
	}

	// A full scan must not use the index.
	scan := Query{Projection: []int{0, 1, 2, 3, 4, 5, 6, 7}}
	plan, err = opt.Choose(scan)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Chosen == "IDX" {
		t.Errorf("full scan routed to the index (%s)", plan)
	}
}
