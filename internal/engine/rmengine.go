package engine

import (
	"errors"
	"fmt"

	"rfabric/internal/expr"
	"rfabric/internal/fabric"
	"rfabric/internal/geometry"
	"rfabric/internal/obs"
	"rfabric/internal/table"
)

// RMEngine executes queries over Relational Memory: it configures an
// ephemeral view of exactly the columns the query needs and consumes the
// packed chunks the fabric delivers. The consumer is vectorized — the packed
// layout is precisely the "optimal layout" the paper argues every query
// should see (§II).
type RMEngine struct {
	Tbl *table.Table
	Sys *System

	// PushSelection evaluates the query's predicates inside the fabric
	// (§IV-B); only qualifying rows are shipped. When false the predicates
	// run vectorized on the CPU over packed data, matching the paper's
	// projection-only prototype (§V).
	PushSelection bool
	// PushAggregation computes plain-column aggregates inside the fabric
	// and ships only the results (§IV-B). Derived aggregate expressions
	// always run on the CPU.
	PushAggregation bool

	// Tracer, when set, receives a span for this execution with leaves
	// that reconcile with the Breakdown. Nil means no tracing overhead.
	Tracer *obs.Tracer

	// ForceScalar pins the chunk consumer to the tuple-at-a-time
	// interpreter. The two paths charge identical modeled costs; the knob
	// exists for equivalence tests and wall-clock benchmarks.
	ForceScalar bool

	// scratch is the engine-owned batch workspace, allocated on first
	// vectorized execution and reused so steady-state scans allocate nothing
	// per batch.
	scratch *scanScratch
}

// Name implements Executor.
func (e *RMEngine) Name() string { return "RM" }

// Execute runs q and returns its result with the modeled cost.
func (e *RMEngine) Execute(q Query) (*Result, error) {
	if e.Tbl == nil || e.Sys == nil {
		return nil, errors.New("engine: RMEngine needs a table and a system")
	}
	sch := e.Tbl.Schema()
	if err := q.Validate(sch); err != nil {
		return nil, err
	}
	if q.Snapshot != nil && !e.Tbl.HasMVCC() {
		return nil, fmt.Errorf("engine: snapshot query over table %q without MVCC", e.Tbl.Name())
	}

	sp := beginEngineSpan(e.Tracer, e.Name(), e.Tbl.Name())
	defer e.Tracer.End()

	geom, err := geometry.NewGeometry(sch, q.NeededColumns()...)
	if err != nil {
		return nil, err
	}
	var opts []fabric.ViewOption
	if q.Snapshot != nil {
		opts = append(opts, fabric.WithSnapshot(*q.Snapshot))
	}
	if e.PushSelection && len(q.Selection) > 0 {
		opts = append(opts, fabric.WithSelection(q.Selection))
	}
	cfg := sp.AddChild("fabric.configure")
	ev, err := e.Sys.Fab.Configure(e.Tbl, geom, opts...)
	if err != nil {
		return nil, err
	}
	cfg.SetAttr("columns", fmt.Sprint(geom.Columns()))
	cfg.SetAttr("packed_width", fmt.Sprint(ev.PackedWidth()))

	if e.PushAggregation && len(q.GroupBy) == 0 && len(q.Aggregates) > 0 && e.PushSelection {
		if specs, ok := pushableAggs(q.Aggregates); ok {
			sp.SetAttr("pushdown", "aggregation")
			return e.executePushedAggregation(q, ev, specs, sp)
		}
	}
	if e.PushSelection && len(q.Selection) > 0 {
		sp.SetAttr("pushdown", "selection")
	}
	if !e.ForceScalar {
		// When selection is pushed down the CPU sees only qualifying rows
		// and evaluates no predicates.
		cpuSel := q.Selection
		if e.PushSelection {
			cpuSel = nil
		}
		offFor := func(col int) int {
			for i, c := range geom.Columns() {
				if c == col {
					return geom.PackedOffset(i)
				}
			}
			panic(fmt.Sprintf("engine: column %d not in RM geometry", col))
		}
		if prog, ok := compileScanProg(q, sch, cpuSel, nil, offFor, rmVecCharges); ok {
			return e.executeConsumeVectorized(q, ev, prog, sp)
		}
	}
	return e.executeConsume(q, ev, geom, sp)
}

// pushableAggs converts aggregate terms to fabric specs when every term is
// COUNT(*) or a plain-column aggregate — the only shapes simple enough for
// the hardware.
func pushableAggs(terms []AggTerm) ([]expr.AggSpec, bool) {
	specs := make([]expr.AggSpec, len(terms))
	for i, t := range terms {
		if t.Arg == nil {
			specs[i] = expr.AggSpec{Kind: expr.Count}
			continue
		}
		ref, ok := t.Arg.(expr.ColRef)
		if !ok {
			return nil, false
		}
		specs[i] = expr.AggSpec{Kind: t.Kind, Col: ref.Col}
	}
	return specs, true
}

// executePushedAggregation ships only the aggregate results to the CPU.
func (e *RMEngine) executePushedAggregation(q Query, ev *fabric.Ephemeral, specs []expr.AggSpec, sp *obs.Span) (*Result, error) {
	memStart := e.Sys.Mem.Stats()
	hierStart := e.Sys.Hier.Stats()
	agg, err := ev.Aggregate(specs)
	if err != nil {
		return nil, err
	}
	tk := newTicker(e.Tracer)
	tk.advance(agg.ProducerCycles)
	res := &Result{
		Engine:      e.Name(),
		RowsScanned: int64(agg.RowsScanned),
		RowsPassed:  int64(agg.RowsQualified),
		Aggs:        make([]table.Value, len(agg.Values)),
	}
	for i, v := range agg.Values {
		res.Aggs[i] = normalizeAggValue(q.Aggregates[i].Kind, v)
	}
	res.Breakdown = pipelineBreakdown(e.Sys, memStart, hierStart, 0, agg.ProducerCycles, agg.ProducerCycles, uint64(len(agg.Values)*8))
	finishPipelineSpan(sp, e.Sys, memStart, hierStart, res)
	return res, nil
}

// normalizeAggValue converts fabric integer aggregates to the float64
// convention the software engines report, keeping COUNT integral.
func normalizeAggValue(kind expr.AggKind, v table.Value) table.Value {
	if kind == expr.Count {
		return v
	}
	if v.Type == geometry.Float64 {
		return v
	}
	return table.F64(float64(v.Int))
}

// executeConsume runs the chunked producer/consumer pipeline.
func (e *RMEngine) executeConsume(q Query, ev *fabric.Ephemeral, geom *geometry.Geometry, sp *obs.Span) (*Result, error) {
	sch := e.Tbl.Schema()
	memStart := e.Sys.Mem.Stats()
	hierStart := e.Sys.Hier.Stats()
	fabStart := e.Sys.Fab.Stats()

	var compute uint64
	cons := newConsumer(q, sch, &compute)

	// Packed-layout accessors, hoisted into flat arrays indexed by schema
	// column (only the geometry's columns are ever fetched).
	packed := ev.PackedWidth()
	lineBytes := int64(e.Sys.Hier.LineBytes())
	numCols := sch.NumColumns()
	offs := make([]int, numCols)
	for i, c := range geom.Columns() {
		offs[c] = geom.PackedOffset(i)
	}
	colDef := make([]geometry.Column, numCols)
	for i := range colDef {
		colDef[i] = sch.Column(i)
	}

	selectOnCPU := !e.PushSelection && len(q.Selection) > 0

	// Per-row lazily fetched value cache over the packed layout,
	// epoch-invalidated — packed rows are accessed exactly like Fig. 3's
	// cg[i].field: row-wise over a dense single stream. The fetch closure is
	// defined once, capturing the chunk and row cursors, so the row loop
	// does not allocate.
	vals := make([]table.Value, numCols)
	fetchedAt := make([]int64, numCols)
	for i := range fetchedAt {
		fetchedAt[i] = -1
	}
	var epoch int64
	var ch fabric.Chunk
	var row int
	fetch := func(col int) table.Value {
		if fetchedAt[col] == epoch {
			return vals[col]
		}
		off := offs[col]
		w := colDef[col].Width
		e.Sys.Hier.Load(ch.BaseAddr + int64(row*packed+off))
		compute += VectorOpCycles
		v := table.DecodeColumn(colDef[col], ch.Data[row*packed+off:row*packed+off+w])
		vals[col] = v
		fetchedAt[col] = epoch
		return v
	}

	var pipeline, producer uint64
	var scanned int64
	tk := newTicker(e.Tracer)

	ev.Reset()
	for {
		hierBefore := e.Sys.Hier.Stats().Cycles
		computeBefore := compute

		var ok bool
		ch, ok = ev.Next()
		if !ok {
			break
		}
		scanned += int64(ch.SourceRows)

		// The fabric delivers the chunk's packed lines toward the CPU.
		lines := (len(ch.Data) + int(lineBytes) - 1) / int(lineBytes)
		for i := 0; i < lines; i++ {
			e.Sys.Hier.FillFromFabric(ch.BaseAddr + int64(i)*lineBytes)
		}

		for r := 0; r < ch.Rows; r++ {
			epoch++
			row = r
			if selectOnCPU {
				pass := true
				for _, p := range q.Selection {
					compute += VectorOpCycles
					if !p.Eval(fetch(p.Col)) {
						pass = false
						break
					}
				}
				if !pass {
					continue
				}
			}
			cons.consumeRow(fetch)
		}

		consumer := (e.Sys.Hier.Stats().Cycles - hierBefore) + (compute - computeBefore)
		producer += ch.ProducerCycles
		if ch.ProducerCycles > consumer {
			pipeline += ch.ProducerCycles
		} else {
			pipeline += consumer
		}
		tk.advance(pipeline)
	}

	res := cons.finish(e.Name(), scanned)
	fabD := e.Sys.Fab.Stats().Delta(fabStart)
	res.Breakdown = pipelineBreakdown(e.Sys, memStart, hierStart, compute, pipeline, producer, fabD.BytesShipped)
	finishPipelineSpan(sp, e.Sys, memStart, hierStart, res)
	sp.SetAttr("fabric_chunks", fmt.Sprint(fabD.Chunks))
	sp.SetAttr("fabric_bytes_gathered", fmt.Sprint(fabD.BytesGathered))
	return res, nil
}
