package engine

import (
	"errors"
	"fmt"

	"rfabric/internal/expr"
	"rfabric/internal/fabric"
	"rfabric/internal/geometry"
	"rfabric/internal/obs"
	"rfabric/internal/table"
)

// RMEngine is the Relational Memory access path: it configures an ephemeral
// view of exactly the columns the query needs and delivers the packed
// chunks the fabric produces as the pipeline's segments — the packed layout
// is precisely the "optimal layout" the paper argues every query should see
// (§II). As a Source it contributes chunk delivery, packed addressing, and
// the producer/consumer pipeline accounting; the scan and consume loops
// live in the shared pipeline.
type RMEngine struct {
	Tbl *table.Table
	Sys *System

	// PushSelection evaluates the query's predicates inside the fabric
	// (§IV-B); only qualifying rows are shipped. When false the predicates
	// run vectorized on the CPU over packed data, matching the paper's
	// projection-only prototype (§V).
	PushSelection bool
	// PushAggregation computes plain-column aggregates inside the fabric
	// and ships only the results (§IV-B). Derived aggregate expressions
	// always run on the CPU.
	PushAggregation bool
	// Offload enables the full operator-offload layer: selection,
	// projection, grouped aggregation, and any attached semi-join or
	// dictionary filters all run fabric-side. It implies PushSelection and
	// PushAggregation.
	Offload bool

	// SemiJoin, when set, pre-filters the scan's rows against a build-side
	// Bloom filter inside the fabric, so probe rows that cannot join never
	// ship (the join executor attaches this for Bloom-filtered probes).
	SemiJoin *fabric.SemiJoin
	// DictFilters push code-domain predicates over dictionary-encoded
	// columns: rows are filtered by stored code, no CPU-side decompression.
	DictFilters []fabric.DictFilter

	// Tracer, when set, receives a span for this execution with leaves
	// that reconcile with the Breakdown. Nil means no tracing overhead.
	Tracer *obs.Tracer

	// ForceScalar pins the chunk consumer to the tuple-at-a-time
	// interpreter. The two paths charge identical modeled costs; the knob
	// exists for equivalence tests and wall-clock benchmarks.
	ForceScalar bool

	// Cache, when set, makes column groups persistent across queries: a
	// scan first tries to replay a resident group (buffer hits instead of
	// DRAM gathers), and on a miss records the chunks it delivers so the
	// next same-shaped query runs warm. Nil preserves the paper's
	// per-query ephemeral behaviour exactly.
	Cache *fabric.GroupCache

	// scratch is the engine-owned batch workspace, allocated on first
	// vectorized execution and reused so steady-state scans allocate nothing
	// per batch.
	scratch *scanScratch
}

// Name implements Executor.
func (e *RMEngine) Name() string { return "RM" }

func (e *RMEngine) tableLabel() string {
	if e.Tbl == nil {
		return ""
	}
	return e.Tbl.Name()
}

func (e *RMEngine) sysTracer() (*System, *obs.Tracer) { return e.Sys, e.Tracer }

// Execute runs q and returns its result with the modeled cost.
func (e *RMEngine) Execute(q Query) (*Result, error) { return Run(e, q) }

// openScan implements Source: configure the ephemeral view, then describe
// the chunked pipeline — or, when the whole aggregation is pushable, hand
// the pipeline a direct mode that ships only the aggregate results.
func (e *RMEngine) openScan(q Query, sp *obs.Span) (*scan, error) {
	if e.Tbl == nil || e.Sys == nil {
		return nil, errors.New("engine: RMEngine needs a table and a system")
	}
	sch := e.Tbl.Schema()
	if err := q.Validate(sch); err != nil {
		return nil, err
	}
	if q.Snapshot != nil && !e.Tbl.HasMVCC() {
		return nil, fmt.Errorf("engine: snapshot query over table %q without MVCC", e.Tbl.Name())
	}

	geom, err := geometry.NewGeometry(sch, q.NeededColumns()...)
	if err != nil {
		return nil, err
	}

	pushSel := e.PushSelection || e.Offload
	pushAgg := e.PushAggregation || e.Offload

	// A whole-query offload ships only reduced results — there is no column
	// group to cache or replay, so it bypasses the group cache. Grouped and
	// ungrouped aggregations both qualify; the program descriptor decides.
	var off *fabric.Offload
	if pushAgg && pushSel {
		off, _ = offloadProgram(q)
	}

	// The group cache key includes the predicates the fabric evaluated: a
	// pushed selection changes which rows the packed group contains. Semi-
	// join and dictionary filters change the shipped row set the same way
	// but are per-query state, so filtered scans bypass the cache too.
	var pushedPreds expr.Conjunction
	if pushSel && len(q.Selection) > 0 {
		pushedPreds = q.Selection
	}
	filtered := e.SemiJoin != nil || len(e.DictFilters) > 0

	s := &scan{sch: sch}
	lineBytes := int64(e.Sys.Hier.LineBytes())

	var entry *fabric.GroupEntry
	if e.Cache != nil && off == nil && !filtered {
		entry, _ = e.Cache.Acquire(e.Tbl, geom, q.Snapshot, pushedPreds)
	}

	var packed int
	if entry != nil {
		// Warm path: the group is resident — no ephemeral view, no DRAM
		// gathers. Chunks replay out of the persistent delivery buffer at
		// datapath beat rate, filling hierarchy lines from the fabric side
		// exactly like a cold delivery so the consumer's accounting (and
		// the logical result) is byte-identical.
		packed = entry.PackedWidth()
		sp.SetAttr("group_cache", "hit")
		sp.SetAttr("columns", fmt.Sprint(geom.Columns()))
		sp.SetAttr("packed_width", fmt.Sprint(packed))
		s.warm = true
		cache, data, base := e.Cache, entry.Data(), entry.BaseAddr()
		chunks := entry.Chunks()
		s.segs = func(*pipeRun) segIter {
			i := 0
			released := false
			return func() (segment, bool) {
				if i >= len(chunks) {
					if !released {
						released = true
						cache.Release(entry)
					}
					return segment{}, false
				}
				ch := chunks[i]
				i++
				producer := e.Sys.Fab.ReplayChunk(ch.Rows, ch.Len)
				addr := base + int64(ch.Off)
				lines := (ch.Len + int(lineBytes) - 1) / int(lineBytes)
				for l := 0; l < lines; l++ {
					e.Sys.Hier.FillFromFabric(addr + int64(l)*lineBytes)
				}
				return segment{
					data:       data[ch.Off : ch.Off+ch.Len],
					baseAddr:   addr,
					stride:     packed,
					rows:       ch.Rows,
					sourceRows: int64(ch.SourceRows),
					producer:   producer,
				}, true
			}
		}
	} else {
		var opts []fabric.ViewOption
		if q.Snapshot != nil {
			opts = append(opts, fabric.WithSnapshot(*q.Snapshot))
		}
		if len(pushedPreds) > 0 {
			opts = append(opts, fabric.WithSelection(pushedPreds))
		}
		for _, f := range e.DictFilters {
			opts = append(opts, fabric.WithDictFilter(f))
		}
		if e.SemiJoin != nil {
			opts = append(opts, fabric.WithSemiJoin(e.SemiJoin))
		}
		cfg := sp.AddChild("fabric.configure")
		ev, err := e.Sys.Fab.Configure(e.Tbl, geom, opts...)
		if err != nil {
			return nil, err
		}
		cfg.SetAttr("columns", fmt.Sprint(geom.Columns()))
		cfg.SetAttr("packed_width", fmt.Sprint(ev.PackedWidth()))

		if off != nil {
			sp.SetAttr("pushdown", "aggregation")
			s.direct = func() (*Result, error) {
				return runOffload(e.Sys, e.Tracer, sp, e.Name(), q, ev, off)
			}
			return s, nil
		}
		s.offload = e.offloadLabel()

		packed = ev.PackedWidth()
		var rec *fabric.GroupRecorder
		if e.Cache != nil && !filtered {
			sp.SetAttr("group_cache", "miss")
			rec = e.Cache.NewRecorder(e.Tbl, geom, q.Snapshot, pushedPreds, packed, int(lineBytes))
		}

		// Each fabric chunk is one pipeline segment; delivering it fills
		// the hierarchy's lines from the fabric side and carries the
		// producer's cycles for the max(producer, consumer) pipeline
		// accounting. Chunk data overlays one rotating delivery window, so
		// the recorder copies each chunk before the next overwrites it.
		s.segs = func(*pipeRun) segIter {
			ev.Reset()
			return func() (segment, bool) {
				ch, ok := ev.Next()
				if !ok {
					rec.Install()
					return segment{}, false
				}
				rec.Add(ch.Data, ch.Rows, ch.SourceRows)
				lines := (len(ch.Data) + int(lineBytes) - 1) / int(lineBytes)
				for i := 0; i < lines; i++ {
					e.Sys.Hier.FillFromFabric(ch.BaseAddr + int64(i)*lineBytes)
				}
				return segment{
					data:       ch.Data,
					baseAddr:   ch.BaseAddr,
					stride:     packed,
					rows:       ch.Rows,
					sourceRows: int64(ch.SourceRows),
					producer:   ch.ProducerCycles,
				}, true
			}
		}
	}

	if len(pushedPreds) > 0 {
		sp.SetAttr("pushdown", "selection")
	}

	// When selection is pushed down the CPU sees only qualifying rows and
	// evaluates no predicates.
	cpuSel := q.Selection
	if pushSel {
		cpuSel = nil
	}
	s.cpuSel = cpuSel
	s.predCycles = VectorOpCycles
	s.fetchCycles = VectorOpCycles
	s.pipelined = true

	// Packed-layout addressing, hoisted into a flat array indexed by schema
	// column (only the geometry's columns are ever fetched) — packed rows
	// are accessed exactly like Fig. 3's cg[i].field: row-wise over a dense
	// single stream.
	offs := make([]int, sch.NumColumns())
	for i, c := range geom.Columns() {
		offs[c] = geom.PackedOffset(i)
	}
	s.colAt = func(seg *segment, row, col int) (int64, []byte) {
		off := row*packed + offs[col]
		return seg.baseAddr + int64(off), seg.data[off:]
	}

	if !e.ForceScalar {
		offFor := func(col int) int {
			for i, c := range geom.Columns() {
				if c == col {
					return geom.PackedOffset(i)
				}
			}
			panic(fmt.Sprintf("engine: column %d not in RM geometry", col))
		}
		if prog, ok := compileScanProg(q, sch, cpuSel, nil, offFor, rmVecCharges); ok {
			s.prog = prog
			if e.scratch == nil {
				e.scratch = &scanScratch{}
			}
			s.scratch = e.scratch
		}
	}
	return s, nil
}

// offloadLabel names the filter programs attached to a pipelined scan (the
// whole-query aggregation offload labels itself through its descriptor).
func (e *RMEngine) offloadLabel() string {
	label := ""
	if len(e.DictFilters) > 0 {
		label = "dict-scan"
	}
	if e.SemiJoin != nil {
		if label != "" {
			label += "+semi-join"
		} else {
			label = "semi-join"
		}
	}
	return label
}
