package engine

import (
	"math/bits"
	"sort"

	"rfabric/internal/plan"
)

// This file bridges the engine to the physical plan IR in internal/plan:
// lowering a logical Query to an operator chain, extracting the executable
// Query and sink operators back out, pricing a plan's access paths, and
// running the sinks over grouped output.

// PlanOf lowers a logical Query to the physical plan IR: a Scan over the
// columns the query touches, a Filter when it selects, and the consumption
// shape (Project or Aggregate). The scan's source is left for the optimizer
// (or the caller's dispatch) to stamp.
func PlanOf(q Query, table string) *plan.Node {
	scan := plan.NewScan(table, "", q.NeededColumns())
	scan.Snapshot = q.Snapshot
	root := scan
	if len(q.Selection) > 0 {
		root = root.Filter(q.Selection)
	}
	if len(q.Aggregates) > 0 {
		aggs := make([]plan.Agg, len(q.Aggregates))
		for i, a := range q.Aggregates {
			aggs[i] = plan.Agg{Kind: a.Kind, Arg: a.Arg}
		}
		root = root.Aggregate(q.GroupBy, aggs)
	} else {
		root = root.Project(q.Projection)
	}
	return root
}

// Sinks are the plan operators that run over the pipeline's grouped output
// rather than inside it: a deterministic sort and a row limit.
type Sinks struct {
	Keys     []plan.SortKey
	Limit    int64
	HasLimit bool
}

// Empty reports whether there is no sink work to do.
func (s Sinks) Empty() bool { return len(s.Keys) == 0 && !s.HasLimit }

// FromPlan validates an IR chain and splits it into the Query the pipeline
// executes and the sinks that run over its output.
func FromPlan(root *plan.Node) (Query, Sinks, error) {
	var q Query
	var sk Sinks
	if err := root.Validate(); err != nil {
		return q, sk, err
	}
	for cur := root; cur != nil; cur = cur.Input {
		switch cur.Op {
		case plan.OpScan:
			q.Snapshot = cur.Snapshot
		case plan.OpFilter:
			q.Selection = cur.Preds
		case plan.OpProject:
			q.Projection = cur.Cols
		case plan.OpAggregate:
			q.GroupBy = cur.GroupBy
			q.Aggregates = make([]AggTerm, len(cur.Aggs))
			for i, a := range cur.Aggs {
				q.Aggregates[i] = AggTerm{Kind: a.Kind, Arg: a.Arg}
			}
		case plan.OpOrderBy:
			sk.Keys = cur.Keys
		case plan.OpLimit:
			sk.Limit = cur.N
			sk.HasLimit = true
		}
	}
	return q, sk, nil
}

// ChoosePlan prices the plan's access paths, stamps the winner — and the
// estimate it won with — on the Scan node, and returns the decision. This is
// the constructive optimizer's IR entry point; Choose remains for callers
// holding a raw Query.
func (o *Optimizer) ChoosePlan(root *plan.Node) (*Plan, error) {
	q, _, err := FromPlan(root)
	if err != nil {
		return nil, err
	}
	p, err := o.Choose(q)
	if err != nil {
		return nil, err
	}
	scan := root.Scan()
	scan.Source = p.Chosen
	chosen := p.Estimates[0]
	scan.Est = &plan.Est{
		Engine:      chosen.Engine,
		Cycles:      chosen.Cycles,
		Selectivity: chosen.Selectivity,
		Rows:        float64(o.Tbl.NumRows()),
		Warm:        chosen.Warm,
		Offloaded:   chosen.Offloaded,
	}
	if chosen.Offloaded {
		if off, ok := offloadProgram(q); ok {
			scan.Offload = off.Describe()
		}
	}
	return p, nil
}

// ApplySinks runs the sink operators over a grouped result in place: a
// stable sort by the plan's keys (ties keep the pipeline's deterministic
// key order, so output order is reproducible across engines), then the
// limit. It charges n·⌈log₂n⌉·SortCmpCycles of modeled compute for the
// sort, adds it to the result's breakdown, and returns the charge so traced
// runs can attribute it.
func ApplySinks(res *Result, sk Sinks) uint64 {
	if sk.Empty() {
		return 0
	}
	var cycles uint64
	if len(sk.Keys) > 0 {
		n := len(res.Groups)
		sort.SliceStable(res.Groups, func(i, j int) bool {
			a, b := &res.Groups[i], &res.Groups[j]
			for _, k := range sk.Keys {
				var c int
				if k.Key >= 0 {
					c = a.Key[k.Key].Compare(b.Key[k.Key])
				} else {
					c = a.Aggs[k.Agg].Compare(b.Aggs[k.Agg])
				}
				if k.Desc {
					c = -c
				}
				if c != 0 {
					return c < 0
				}
			}
			return false
		})
		if n > 1 {
			cycles = uint64(n) * uint64(bits.Len(uint(n-1))) * SortCmpCycles
		}
		res.Breakdown.ComputeCycles += cycles
		res.Breakdown.TotalCycles += cycles
	}
	if sk.HasLimit && int64(len(res.Groups)) > sk.Limit {
		res.Groups = res.Groups[:sk.Limit]
	}
	return cycles
}
