package engine

import (
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"rfabric/internal/expr"
	"rfabric/internal/obs"
	"rfabric/internal/table"
)

// DefaultMorselRows is the morsel size when ParallelConfig leaves it zero:
// large enough that per-morsel fixed costs (view configuration, merge)
// amortize, small enough that an 8-worker run on laptop-scale tables load
// balances.
const DefaultMorselRows = 8192

// MergeCyclesPerPartial is the coordinator's modeled cost to fold one
// morsel's partial result into the final one.
const MergeCyclesPerPartial = 200

// ParallelConfig parameterizes the morsel-parallel executor. The zero value
// means "defaults": GOMAXPROCS workers, DefaultMorselRows-row morsels.
type ParallelConfig struct {
	// Workers is the goroutine count; 0 or negative means
	// runtime.GOMAXPROCS(0).
	Workers int
	// MorselRows is the row-range granularity workers pull; 0 or negative
	// means DefaultMorselRows. Morsel boundaries depend only on this value,
	// never on Workers, which is what makes results deterministic across
	// worker counts.
	MorselRows int
}

func (c ParallelConfig) normalized() ParallelConfig {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MorselRows <= 0 {
		c.MorselRows = DefaultMorselRows
	}
	return c
}

// ParallelEngine executes a query morsel-at-a-time: the table's row range is
// split into fixed-size morsels, workers pull morsels from a shared counter
// and run each on the RM path of a worker-private System clone, and the
// coordinator merges the partial results in morsel order.
//
// Determinism: morsel boundaries depend only on MorselRows, every morsel
// runs on an identically-initialized machine clone, and the merge folds
// partials in morsel order — so the result (rows, aggregates, groups,
// checksum, and the modeled breakdown) is identical for any Workers value.
// Only wall-clock time changes with Workers.
//
// Race-cleanness: each goroutine clones the parent System per morsel and
// never shares simulated hardware; the parent System and table are only
// read. Callers that mutate the table concurrently must serialize against
// Execute (e.g. via mvcc.Manager.ReadView).
type ParallelEngine struct {
	Tbl *table.Table
	Sys *System
	Par ParallelConfig

	// PushSelection and PushAggregation configure the per-morsel RM engines
	// exactly like RMEngine's fields.
	PushSelection   bool
	PushAggregation bool

	// ForceScalar pins the per-morsel consumers to the tuple-at-a-time
	// interpreter, like RMEngine's field.
	ForceScalar bool

	// Tracer, when set, receives a span whose schedule/merge leaves
	// reconcile with the Breakdown; per-morsel sub-traces hang under a
	// Detail subtree (their modeled time overlaps the makespan). Each
	// morsel gets its own private tracer, adopted in morsel order after
	// the workers join, so tracing never perturbs determinism.
	Tracer *obs.Tracer
	// Reg, when set, receives rfabric_par_* series describing the run.
	Reg *obs.Registry
}

// Name implements Executor.
func (e *ParallelEngine) Name() string { return "PAR" }

// Execute runs q across morsels and returns the merged result.
func (e *ParallelEngine) Execute(q Query) (*Result, error) {
	if e.Tbl == nil || e.Sys == nil {
		return nil, errors.New("engine: ParallelEngine needs a table and a system")
	}
	if err := q.Validate(e.Tbl.Schema()); err != nil {
		return nil, err
	}
	if q.Snapshot != nil && !e.Tbl.HasMVCC() {
		return nil, fmt.Errorf("engine: snapshot query over table %q without MVCC", e.Tbl.Name())
	}

	par := e.Par.normalized()
	rows := e.Tbl.NumRows()
	numMorsels := (rows + par.MorselRows - 1) / par.MorselRows
	if numMorsels == 0 {
		numMorsels = 1 // one empty morsel gives the empty result its shape
	}
	workers := par.Workers
	if workers > numMorsels {
		workers = numMorsels
	}

	sp := beginEngineSpan(e.Tracer, e.Name(), e.Tbl.Name())
	defer e.Tracer.End()

	parts := make([]*Result, numMorsels)
	errs := make([]error, numMorsels)
	// Per-morsel tracers: each worker writes only its own slot, and the
	// sub-roots are adopted in morsel order after the join, keeping the
	// span tree deterministic under any scheduling.
	var tracers []*obs.Tracer
	if sp != nil {
		tracers = make([]*obs.Tracer, numMorsels)
		for i := range tracers {
			tracers[i] = obs.NewTracer(morselSpanName(i))
		}
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= numMorsels {
					return
				}
				var tr *obs.Tracer
				if tracers != nil {
					tr = tracers[i]
				}
				parts[i], errs[i] = e.runMorsel(q, i, par.MorselRows, rows, tr)
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("engine: morsel %d: %w", i, err)
		}
	}
	res, err := mergePartials(e.Name(), q, parts, workers)
	if err != nil {
		return nil, err
	}
	if sp != nil {
		mergeCharge := uint64(len(parts)) * MergeCyclesPerPartial
		sp.Leaf("schedule.makespan", res.Breakdown.TotalCycles-mergeCharge, 0)
		sp.Leaf("merge", mergeCharge, 0)
		sp.SetAttr("workers", strconv.Itoa(workers))
		sp.SetAttr("morsels", strconv.Itoa(numMorsels))
		sp.SetAttr("morsel_rows", strconv.Itoa(par.MorselRows))
		detail := sp.AddChild("morsels")
		detail.Detail = true
		// Replay the deterministic list schedule to place each morsel on a
		// worker lane; the placement feeds the Chrome-trace worker lanes and
		// the timeline's busy-worker series.
		partTotals := make([]uint64, len(parts))
		for i, p := range parts {
			partTotals[i] = p.Breakdown.TotalCycles
		}
		workerOf, starts, _ := ScheduleAssignments(partTotals, workers)
		tl := e.Tracer.Timeline()
		for i, tr := range tracers {
			root := tr.Root()
			root.SetAttr("worker", strconv.Itoa(workerOf[i]))
			root.SetAttr("start_cycles", strconv.FormatUint(starts[i], 10))
			detail.Adopt(root)
			tl.AddWorkerSlice(workerOf[i], morselSpanName(i), starts[i], partTotals[i])
		}
		// Morsels ran on System clones, which the timeline does not hook, so
		// the coordinator drives the clock across the makespan itself.
		tl.TickThrough(res.Breakdown.TotalCycles)
	}
	if e.Reg != nil {
		labels := obs.Labels{"table": e.Tbl.Name()}
		e.Reg.Counter("rfabric_par_queries_total", labels).Add(1)
		e.Reg.Counter("rfabric_par_morsels_total", labels).Add(uint64(numMorsels))
		e.Reg.Counter("rfabric_par_makespan_cycles_total", labels).Add(res.Breakdown.TotalCycles)
		e.Reg.Histogram("rfabric_par_morsel_cycles", labels).Observe(float64(res.Breakdown.TotalCycles) / float64(numMorsels))
	}
	return res, nil
}

// runMorsel executes one morsel on a fresh System clone. Cloning per morsel
// (not per worker) keeps the partial independent of which worker ran it and
// how many morsels that worker had already run, which the determinism
// guarantee needs: arena allocations for delivery windows would otherwise
// drift with scheduling.
func (e *ParallelEngine) runMorsel(q Query, i, morselRows, totalRows int, tr *obs.Tracer) (*Result, error) {
	lo := i * morselRows
	hi := lo + morselRows
	if hi > totalRows {
		hi = totalRows
	}
	if lo > totalRows {
		lo = totalRows
	}
	slice, err := e.Tbl.Slice(lo, hi)
	if err != nil {
		return nil, err
	}
	sys, err := e.Sys.Clone()
	if err != nil {
		return nil, err
	}
	eng := &RMEngine{Tbl: slice, Sys: sys, PushSelection: e.PushSelection, PushAggregation: e.PushAggregation, Tracer: tr, ForceScalar: e.ForceScalar}
	return eng.Execute(q)
}

// mergePartials folds per-morsel results in morsel order. Row counts and
// the checksum add commutatively; scalar and per-group aggregates fold
// through partialAgg (AVG merges weighted by contributing rows); groups
// hash-merge and re-sort. The modeled time is the makespan of scheduling
// the morsels on `workers` executors plus a per-partial merge charge.
func mergePartials(name string, q Query, parts []*Result, workers int) (*Result, error) {
	out := &Result{Engine: name}
	scalarAggs := len(q.Aggregates) > 0 && len(q.GroupBy) == 0
	var merged []*partialAgg
	if scalarAggs {
		merged = newPartialAggs(q)
	}
	type groupAcc struct {
		key   []table.Value
		count int64
		aggs  []*partialAgg
	}
	groups := map[string]*groupAcc{}

	partTotals := make([]uint64, len(parts))
	for i, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("engine: missing partial result for morsel %d", i)
		}
		out.RowsScanned += p.RowsScanned
		out.RowsPassed += p.RowsPassed
		out.Checksum += p.Checksum
		b := p.Breakdown
		out.Breakdown.ComputeCycles += b.ComputeCycles
		out.Breakdown.MemDemandCycles += b.MemDemandCycles
		out.Breakdown.ProducerCycles += b.ProducerCycles
		out.Breakdown.BytesFromDRAM += b.BytesFromDRAM
		out.Breakdown.BytesToCPU += b.BytesToCPU
		out.Breakdown.PipelineCycles += b.PipelineCycles
		partTotals[i] = b.TotalCycles
		if scalarAggs {
			for j, v := range p.Aggs {
				merged[j].fold(v, p.RowsPassed)
			}
		}
		for _, g := range p.Groups {
			k := string(groupMergeKey(g.Key))
			acc, ok := groups[k]
			if !ok {
				acc = &groupAcc{key: g.Key, aggs: newPartialAggs(q)}
				groups[k] = acc
			}
			acc.count += g.Count
			for j, v := range g.Aggs {
				acc.aggs[j].fold(v, g.Count)
			}
		}
	}
	out.Breakdown.TotalCycles = ScheduleCycles(partTotals, workers) +
		uint64(len(parts))*MergeCyclesPerPartial

	if scalarAggs {
		out.Aggs = make([]table.Value, len(merged))
		for i, m := range merged {
			out.Aggs[i] = m.result()
		}
	}
	if len(groups) > 0 {
		for _, acc := range groups {
			row := GroupRow{Key: acc.key, Count: acc.count, Aggs: make([]table.Value, len(acc.aggs))}
			for i, m := range acc.aggs {
				row.Aggs[i] = m.result()
			}
			out.Groups = append(out.Groups, row)
		}
		sortGroups(out.Groups)
	}
	return out, nil
}

// groupMergeKey serializes a group key for hash-merging partials.
func groupMergeKey(vals []table.Value) []byte {
	var buf []byte
	for _, v := range vals {
		buf = appendKey(buf, v)
	}
	return buf
}

// partialAgg folds per-partial final aggregate values. Engine partials
// follow the aggAcc convention: COUNT is integral, everything else is
// float64; MIN/MAX/AVG over zero rows are F64(0), so zero-row partials must
// be skipped (MIN/MAX) or weighted zero (AVG) rather than folded.
type partialAgg struct {
	kind expr.AggKind
	sumI int64
	sumF float64
	n    int64 // AVG weight: rows that contributed
	minV float64
	maxV float64
	any  bool
}

func newPartialAggs(q Query) []*partialAgg {
	out := make([]*partialAgg, len(q.Aggregates))
	for i, a := range q.Aggregates {
		out[i] = &partialAgg{kind: a.Kind}
	}
	return out
}

// fold merges one partial value; rows is how many rows contributed to it.
func (m *partialAgg) fold(v table.Value, rows int64) {
	switch m.kind {
	case expr.Count:
		m.sumI += v.Int
	case expr.Sum:
		m.sumF += v.Float
	case expr.Avg:
		m.sumF += v.Float * float64(rows)
		m.n += rows
	case expr.Min:
		if rows == 0 {
			return
		}
		if !m.any || v.Float < m.minV {
			m.minV = v.Float
		}
		m.any = true
	case expr.Max:
		if rows == 0 {
			return
		}
		if !m.any || v.Float > m.maxV {
			m.maxV = v.Float
		}
		m.any = true
	}
}

// result matches aggAcc.result's conventions, including the zero-row cases.
func (m *partialAgg) result() table.Value {
	switch m.kind {
	case expr.Count:
		return table.I64(m.sumI)
	case expr.Sum:
		return table.F64(m.sumF)
	case expr.Avg:
		if m.n == 0 {
			return table.F64(0)
		}
		return table.F64(m.sumF / float64(m.n))
	case expr.Min:
		return table.F64(m.minV)
	case expr.Max:
		return table.F64(m.maxV)
	default:
		return table.Value{}
	}
}

// ScheduleCycles models running parts on `workers` parallel executors with
// greedy list scheduling: each part, in submission order, goes to the
// least-loaded worker, and the result is the makespan (the busiest worker's
// total). With one worker it degenerates to the sum; with workers >= parts
// it is the largest part. This is how the cost model rewards parallelism:
// deterministic in the parts and worker count, independent of actual
// goroutine interleaving.
func ScheduleCycles(parts []uint64, workers int) uint64 {
	_, _, makespan := ScheduleAssignments(parts, workers)
	return makespan
}

// ScheduleAssignments runs the same greedy list schedule as ScheduleCycles
// and additionally reports the placement: workerOf[i] is the worker part i
// ran on and starts[i] its start offset on that worker's lane. The timeline
// sampler and the Chrome-trace exporter use the placement to reconstruct
// per-worker busy/idle state deterministically.
func ScheduleAssignments(parts []uint64, workers int) (workerOf []int, starts []uint64, makespan uint64) {
	if len(parts) == 0 {
		return nil, nil, 0
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(parts) {
		workers = len(parts)
	}
	load := make([]uint64, workers)
	workerOf = make([]int, len(parts))
	starts = make([]uint64, len(parts))
	for pi, p := range parts {
		mi := 0
		for i := 1; i < workers; i++ {
			if load[i] < load[mi] {
				mi = i
			}
		}
		workerOf[pi] = mi
		starts[pi] = load[mi]
		load[mi] += p
	}
	for _, l := range load {
		if l > makespan {
			makespan = l
		}
	}
	return workerOf, starts, makespan
}
