package engine

import (
	"rfabric/internal/expr"
	"rfabric/internal/geometry"
	"rfabric/internal/table"
	"rfabric/internal/vec"
)

// The vectorized scan path splits each engine's hot loop into batch stages:
// bulk decode of the touched columns into typed lanes, predicate kernels
// that refine a selection vector (recording where each dropped row failed),
// a charge-replay loop that issues the *exact* per-row Hier.Load sequence
// and compute charges of the scalar interpreter, and consumption kernels
// over the surviving selection. The modeled cost depends only on the
// ordered Load sequence and the compute totals, and the replay reproduces
// both — same order, same counts — so Breakdown, spans, and timelines are
// unchanged; only wall-clock time and allocations drop.
//
// scanProg is the per-query compilation of that plan: the distinct columns
// the scan touches ("slots", in first-touch order), the predicate operands
// pre-unboxed per type, and — for every short-circuit outcome (failed at
// predicate d, or passed) — the slots the scalar path would have loaded and
// the constant compute charge it would have accumulated.

// vecBatchRows is the engines' batch width.
const vecBatchRows = vec.BatchRows

type slotKind uint8

const (
	slotI64 slotKind = iota
	slotI32
	slotF64
	slotChar
)

// vecSlot is one distinct column the scan touches.
type vecSlot struct {
	col   int
	kind  slotKind
	off   int64 // byte offset within the addressing unit (payload / packed row)
	width int
	lane  int // index into the scratch lane pools; -1 for CHAR (read in place)
}

// vecPred is one predicate with its operand pre-unboxed.
type vecPred struct {
	slot int
	op   expr.CmpOp
	opI  int64
	opF  float64
	opB  []byte // TrimPad-ed CHAR operand
}

// vecAgg is one aggregate term. simple >= 0 folds straight from that slot's
// lane; otherwise the term's scalar tree is evaluated over compacted lanes.
type vecAgg struct {
	term   AggTerm
	simple int
}

// vecCharges parameterizes the per-engine scalar cost constants the replay
// reproduces.
type vecCharges struct {
	perRow   uint64 // charged per visited row (VolcanoNextCycles for ROW, 0 for RM/COL)
	predEval uint64 // per predicate evaluation
	fetch    uint64 // per first column touch of a row
}

var (
	rowVecCharges = vecCharges{perRow: VolcanoNextCycles, predEval: PredEvalCycles, fetch: ExtractCycles}
	rmVecCharges  = vecCharges{perRow: 0, predEval: VectorOpCycles, fetch: VectorOpCycles}
	colVecCharges = vecCharges{perRow: 0, predEval: 0, fetch: VectorOpCycles}
)

type scanProg struct {
	slots []vecSlot
	preds []vecPred

	// loadSlots[d] / loadOffs[d] is the ordered first-touch load program of
	// a row that fails at predicate d (d < len(preds)) or passes
	// (d == len(preds)): slot indices and their byte offsets within the
	// addressing unit. charge[d] is the matching constant compute charge
	// (predicate evals + column fetches + consumption for the pass case).
	loadSlots [][]int32
	loadOffs  [][]int64
	charge    []uint64
	perRow    uint64

	// Consumption shape: projCols/projSlot enumerate projection entries
	// (duplicates included — each entry is charged and folded); aggs hold
	// aggregate terms.
	projCols []int
	projSlot []int32
	aggs     []vecAgg

	nI64, nF64 int // lane counts by type
	evalDepth  int // scratch lanes needed by derived scalar evaluation
}

// compileScanProg builds the batch plan for a query over sch, with sel as
// the predicates the CPU evaluates (empty when pushed down) and offFor
// giving each column's byte offset within the scan's addressing unit.
// consumeVisit, when non-nil, overrides the pass outcome's column visit
// order (the COL engine explicitly touches every consumed column before
// consuming; ROW and RM touch lazily in consumption order). ok is false
// when the query shape must stay on the scalar path (group-by, or a scalar
// expression form the lane evaluator does not know).
func compileScanProg(q Query, sch *geometry.Schema, sel expr.Conjunction, consumeVisit []int, offFor func(col int) int, ch vecCharges) (*scanProg, bool) {
	if len(q.GroupBy) > 0 {
		return nil, false
	}
	p := &scanProg{perRow: ch.perRow}

	slotOf := make(map[int]int, sch.NumColumns())
	addSlot := func(col int) int {
		if si, ok := slotOf[col]; ok {
			return si
		}
		c := sch.Column(col)
		s := vecSlot{col: col, off: int64(offFor(col)), width: c.Width, lane: -1}
		switch c.Type {
		case geometry.Int64:
			s.kind = slotI64
			s.lane = p.nI64
			p.nI64++
		case geometry.Int32, geometry.Date:
			s.kind = slotI32
			s.lane = p.nI64
			p.nI64++
		case geometry.Float64:
			s.kind = slotF64
			s.lane = p.nF64
			p.nF64++
		case geometry.Char:
			s.kind = slotChar
		}
		slotOf[col] = len(p.slots)
		p.slots = append(p.slots, s)
		return len(p.slots) - 1
	}

	// Predicates, with the per-fail-depth load programs built as the scalar
	// short-circuit would first-touch columns.
	touched := make(map[int]bool, sch.NumColumns())
	var slotsSeq []int32
	touch := func(col int) {
		if !touched[col] {
			touched[col] = true
			slotsSeq = append(slotsSeq, int32(addSlot(col)))
		}
	}
	snap := func() ([]int32, []int64) {
		s := append([]int32(nil), slotsSeq...)
		offs := make([]int64, len(s))
		for i, si := range s {
			offs[i] = p.slots[si].off
		}
		return s, offs
	}
	for d, pr := range sel {
		touch(pr.Col)
		si := slotOf[pr.Col]
		vp := vecPred{slot: si, op: pr.Op}
		switch p.slots[si].kind {
		case slotI64, slotI32:
			vp.opI = pr.Operand.Int
		case slotF64:
			vp.opF = pr.Operand.Float
		case slotChar:
			vp.opB = vec.TrimPad(pr.Operand.Bytes)
		}
		p.preds = append(p.preds, vp)
		ls, lo := snap()
		p.loadSlots = append(p.loadSlots, ls)
		p.loadOffs = append(p.loadOffs, lo)
		p.charge = append(p.charge, uint64(d+1)*ch.predEval+uint64(len(ls))*ch.fetch)
	}

	// Pass outcome: consumed columns in scalar visit order, then the
	// consumption charge. An explicit visit list (COL) touches everything
	// up front; the shape loops below then find their columns pre-touched.
	for _, col := range consumeVisit {
		touch(col)
	}
	var consumeCharge uint64
	if len(q.Aggregates) == 0 {
		for _, col := range q.Projection {
			touch(col)
			p.projCols = append(p.projCols, col)
			p.projSlot = append(p.projSlot, int32(slotOf[col]))
			consumeCharge += ChecksumCycles
		}
	} else {
		for _, t := range q.Aggregates {
			a := vecAgg{term: t, simple: -1}
			consumeCharge += AggAddCycles
			if t.Arg != nil {
				consumeCharge += uint64(t.Arg.Ops() * ScalarOpCycles)
				for _, col := range t.Arg.Columns() {
					touch(col)
				}
				if ref, ok := t.Arg.(expr.ColRef); ok {
					a.simple = slotOf[ref.Col]
				} else {
					d, ok := scalarDepth(t.Arg)
					if !ok {
						return nil, false
					}
					if d > p.evalDepth {
						p.evalDepth = d
					}
				}
			}
			p.aggs = append(p.aggs, a)
		}
	}
	ls, lo := snap()
	p.loadSlots = append(p.loadSlots, ls)
	p.loadOffs = append(p.loadOffs, lo)
	p.charge = append(p.charge,
		uint64(len(sel))*ch.predEval+uint64(len(ls))*ch.fetch+consumeCharge)
	return p, true
}

// scalarDepth returns the scratch-lane depth a scalar tree needs, and
// whether the lane evaluator understands every node.
func scalarDepth(s expr.Scalar) (int, bool) {
	switch t := s.(type) {
	case expr.ColRef, expr.Const:
		return 0, true
	case expr.Binary:
		dl, okL := scalarDepth(t.L)
		dr, okR := scalarDepth(t.R)
		if !okL || !okR {
			return 0, false
		}
		d := dl
		if dr > d {
			d = dr
		}
		return d + 1, true
	default:
		return 0, false
	}
}

// scanScratch is the reusable per-engine batch workspace. Engines own one
// lazily and reuse it across executions, so the steady-state batch loop
// allocates nothing.
type scanScratch struct {
	i64  [][]int64
	f64  [][]float64
	tmp  [][]float64 // derived-scalar evaluation lanes, one per tree level
	out  []float64   // compacted derived-scalar results
	pred []int64     // integer decode buffer for COL bitmap passes
	sel  []int32
	fail []int16
	vis  []bool
	iota []int32 // identity selection for compacted kernels
}

// ensure grows the scratch to fit prog.
func (s *scanScratch) ensure(p *scanProg) {
	for len(s.i64) < p.nI64 {
		s.i64 = append(s.i64, make([]int64, vecBatchRows))
	}
	for len(s.f64) < p.nF64 {
		s.f64 = append(s.f64, make([]float64, vecBatchRows))
	}
	for len(s.tmp) < p.evalDepth {
		s.tmp = append(s.tmp, make([]float64, vecBatchRows))
	}
	if s.out == nil {
		s.out = make([]float64, vecBatchRows)
		s.pred = make([]int64, vecBatchRows)
		s.sel = make([]int32, 0, vecBatchRows)
		s.fail = make([]int16, vecBatchRows)
		s.vis = make([]bool, vecBatchRows)
		s.iota = make([]int32, vecBatchRows)
		for i := range s.iota {
			s.iota[i] = int32(i)
		}
	}
}

// lane returns the typed lane backing slot si, valid for the current batch.
func (s *scanScratch) laneI64(p *scanProg, si int32) []int64 { return s.i64[p.slots[si].lane] }
func (s *scanScratch) laneF64(p *scanProg, si int32) []float64 {
	return s.f64[p.slots[si].lane]
}

// decodeSlots bulk-decodes every numeric slot's lane for a batch of n rows
// whose addressing unit starts at byte base of src and advances by stride.
func (s *scanScratch) decodeSlots(p *scanProg, src []byte, base, stride, n int) {
	for i := range p.slots {
		sl := &p.slots[i]
		off := base + int(sl.off)
		switch sl.kind {
		case slotI64:
			vec.DecodeI64(s.i64[sl.lane][:n], src, off, stride, n)
		case slotI32:
			vec.DecodeI32(s.i64[sl.lane][:n], src, off, stride, n)
		case slotF64:
			vec.DecodeF64(s.f64[sl.lane][:n], src, off, stride, n)
		}
	}
}

// refine runs the predicate kernels over a decoded batch, narrowing sel and
// recording each dropped row's failing depth. CHAR predicates read src in
// place at (base + slot.off + row*stride).
func (s *scanScratch) refine(p *scanProg, src []byte, base, stride, n int, sel []int32) []int32 {
	fail := s.fail[:n]
	for i := range fail {
		fail[i] = -1
	}
	for k := range p.preds {
		pr := &p.preds[k]
		sl := &p.slots[pr.slot]
		switch sl.kind {
		case slotI64, slotI32:
			sel = vec.FilterI64(s.i64[sl.lane][:n], pr.op, pr.opI, sel, fail, int16(k))
		case slotF64:
			sel = vec.FilterF64(s.f64[sl.lane][:n], pr.op, pr.opF, sel, fail, int16(k))
		case slotChar:
			sel = vec.FilterChar(src, base+int(sl.off), stride, sl.width, pr.op, pr.opB, sel, fail, int16(k))
		}
	}
	return sel
}

// consume folds the surviving selection of one decoded batch into the
// query's output: projection checksums or aggregate states. CHAR columns
// are hashed in place from src.
func (s *scanScratch) consume(p *scanProg, src []byte, base, stride int, sel []int32, checksum *uint64, aggs []vec.AggState) {
	if len(sel) == 0 {
		return
	}
	if p.aggs == nil {
		for i, col := range p.projCols {
			si := p.projSlot[i]
			sl := &p.slots[si]
			switch sl.kind {
			case slotI64, slotI32:
				*checksum += vec.ChecksumI64(col, s.laneI64(p, si), sel)
			case slotF64:
				*checksum += vec.ChecksumF64(col, s.laneF64(p, si), sel)
			case slotChar:
				*checksum += vec.ChecksumChar(col, src, base+int(sl.off), stride, sl.width, sel)
			}
		}
		return
	}
	s.foldAggs(p, sel, aggs, func(si int32, dst []float64, sel []int32) {
		sl := &p.slots[si]
		if sl.kind == slotF64 {
			vec.CompactLaneF64(dst, s.laneF64(p, si), sel)
		} else {
			vec.CompactLaneI64(dst, s.laneI64(p, si), sel)
		}
	})
}

// foldAggs folds sel into the aggregate states. compact widens one slot's
// selected lanes into a compacted float vector (layout-specific for COL).
func (s *scanScratch) foldAggs(p *scanProg, sel []int32, aggs []vec.AggState, compact func(si int32, dst []float64, sel []int32)) {
	for ti := range p.aggs {
		a := &p.aggs[ti]
		st := &aggs[ti]
		if a.term.Arg == nil {
			st.AddCount(int64(len(sel)))
			continue
		}
		if a.simple >= 0 {
			si := int32(a.simple)
			if p.slots[si].kind == slotF64 {
				vec.AddF64(st, s.laneF64(p, si), sel)
			} else {
				vec.AddI64(st, s.laneI64(p, si), sel)
			}
			continue
		}
		out := s.out[:len(sel)]
		s.evalScalar(p, a.term.Arg, out, sel, 0, compact)
		vec.AddVals(st, out)
	}
}

// evalScalar evaluates a derived scalar tree over the selection into dst,
// compacted. Per-row operation order matches Scalar.EvalF (left subtree,
// right subtree, combine) so float results are bit-identical.
func (s *scanScratch) evalScalar(p *scanProg, sc expr.Scalar, dst []float64, sel []int32, level int, compact func(si int32, dst []float64, sel []int32)) {
	switch t := sc.(type) {
	case expr.ColRef:
		si := p.slotIndex(t.Col)
		compact(si, dst, sel)
	case expr.Const:
		vec.FillF64(dst, t.V)
	case expr.Binary:
		s.evalScalar(p, t.L, dst, sel, level, compact)
		tmp := s.tmp[level][:len(dst)]
		s.evalScalar(p, t.R, tmp, sel, level+1, compact)
		switch t.Op {
		case expr.Add:
			vec.AddLanes(dst, tmp)
		case expr.Sub:
			vec.SubLanes(dst, tmp)
		case expr.Mul:
			vec.MulLanes(dst, tmp)
		}
	}
}

// slotIndex resolves a column to its slot; compile guarantees presence.
func (p *scanProg) slotIndex(col int) int32 {
	for i := range p.slots {
		if p.slots[i].col == col {
			return int32(i)
		}
	}
	panic("engine: vectorized scan references an uncompiled column")
}

// assembleVecResult builds the Result the scalar consumer would have built
// for a non-grouped query.
func assembleVecResult(name string, q Query, aggs []vec.AggState, scanned, passed int64, checksum uint64) *Result {
	r := &Result{Engine: name, RowsScanned: scanned, RowsPassed: passed, Checksum: checksum}
	if len(q.Aggregates) > 0 {
		r.Aggs = make([]table.Value, len(q.Aggregates))
		for i := range aggs {
			acc := aggAcc{term: q.Aggregates[i], count: aggs[i].Count, sum: aggs[i].Sum,
				min: aggs[i].Min, max: aggs[i].Max, any: aggs[i].Any}
			r.Aggs[i] = acc.result()
		}
	}
	return r
}
