package engine

// CPU cost constants, in CPU cycles. They are the only tuning knobs on the
// processor side of the performance model; the memory side comes entirely
// from the cache/DRAM simulation. The ratios encode the paper's framing:
// the ROW baseline is a volcano-style tuple-at-a-time interpreter (per-tuple
// iterator overhead), while the COL and RM engines run vectorized
// column-at-a-time loops (per-value costs only) — §V "an in-memory row-store
// following the volcano-style processing model (tuple-at-a-time) and an
// in-memory column-store following the column-at-a-time processing model".
const (
	// VolcanoNextCycles is the per-row interpretation overhead of the
	// tuple-at-a-time iterator chain (virtual dispatch, tuple bookkeeping).
	VolcanoNextCycles = 8
	// ExtractCycles is charged when the row engine pulls one attribute out
	// of a row buffer.
	ExtractCycles = 2
	// VectorOpCycles is the amortized per-value cost of a vectorized
	// primitive (compare, add, copy) in the COL and RM engines.
	VectorOpCycles = 1
	// PredEvalCycles is the per-predicate evaluation cost in the row
	// engine's interpreted filter.
	PredEvalCycles = 2
	// TSCheckSoftwareCycles is the per-row software MVCC visibility check in
	// the row engine (the fabric does this in hardware instead, §III-C).
	TSCheckSoftwareCycles = 2
	// ChecksumCycles is the per-value cost of folding a projected value into
	// the scan consumer.
	ChecksumCycles = 1
	// AggAddCycles is the per-term cost of folding one row into an
	// aggregate.
	AggAddCycles = 1
	// ScalarOpCycles is the cost per arithmetic operation of a derived
	// aggregate expression.
	ScalarOpCycles = 1
	// MaterializeCycles is the per-value cost of writing column-at-a-time
	// intermediates (row-id vectors, reconstructed tuples) in the COL
	// engine — the "tuple reconstruction cost" of §II.
	MaterializeCycles = 1
	// HashGroupCycles is the per-row cost of hashing group keys and probing
	// the aggregation hash table (hash, probe, key compare, pointer chase).
	HashGroupCycles = 40
	// SortCmpCycles is the per-comparison cost of the ORDER BY sink over
	// grouped output (compare, swap amortized). The sink charges
	// n·⌈log₂n⌉·SortCmpCycles for n groups.
	SortCmpCycles = 4
	// VectorSize is the batch width of the vectorized engines.
	VectorSize = 1024
)
