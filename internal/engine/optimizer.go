package engine

import (
	"errors"
	"fmt"
	"sort"

	"rfabric/internal/colstore"
	"rfabric/internal/expr"
	"rfabric/internal/fabric"
	"rfabric/internal/geometry"
	"rfabric/internal/index"
	"rfabric/internal/table"
)

// The paper argues Relational Fabric turns query optimization from a
// combinatorial search over materialized layouts into *construction*: since
// any geometry is available on demand, the optimizer merely prices the
// access paths and takes the cheapest (§III-B "instead of solving a
// combinatorial problem, we can now construct the fastest solution"). This
// file implements that constructive optimizer: closed-form cost formulas
// derived from the performance model, evaluated without executing anything.

// Estimate is one access path's predicted cost.
type Estimate struct {
	Engine string
	// Cycles is the predicted modeled execution time.
	Cycles float64
	// Selectivity is the fraction of rows assumed to survive selection.
	Selectivity float64
	// Available reports whether the path can run (e.g. COL needs an
	// existing columnar copy; it is the layout duplication the fabric
	// removes, so the optimizer never asks for one to be built).
	Available bool
	// Reason explains unavailability.
	Reason string
	// Warm marks an RM estimate priced against a resident column group in
	// the fabric group cache: buffer replay instead of DRAM gathers.
	Warm bool
	// Offloaded marks an RM estimate priced for a fabric operator offload:
	// the aggregation folds near memory and only the reduced result ships,
	// so the consumer term collapses and bytes-to-CPU dominates the
	// comparison against CPU-side paths.
	Offloaded bool
}

// Plan is the optimizer's decision.
type Plan struct {
	Chosen    string
	Estimates []Estimate // sorted by predicted cycles, available paths first
}

// estimateSelectivity applies the classic textbook heuristics: equality
// selects 10 %, a range predicate a third, conjuncts multiply, floored so a
// plan never assumes a free scan.
func estimateSelectivity(q Query) float64 {
	sel := 1.0
	for _, p := range q.Selection {
		switch p.Op {
		case expr.Eq:
			sel *= 0.1
		case expr.Ne:
			sel *= 0.9
		default: // range comparisons
			sel *= 1.0 / 3.0
		}
	}
	if sel < 0.005 {
		sel = 0.005
	}
	return sel
}

// consumeCostPerRow prices the consumer work shared by every engine:
// checksum folding or aggregation, including group hashing.
func consumeCostPerRow(q Query) float64 {
	if len(q.Aggregates) == 0 {
		return float64(len(q.Projection) * ChecksumCycles)
	}
	c := 0.0
	if len(q.GroupBy) > 0 {
		c += HashGroupCycles
	}
	for _, a := range q.Aggregates {
		c += AggAddCycles
		if a.Arg != nil {
			c += float64(a.Arg.Ops() * ScalarOpCycles)
		}
	}
	return c
}

// Optimizer prices access paths for one table on one system configuration.
type Optimizer struct {
	Tbl *table.Table
	Sys *System
	// Store is the columnar copy, if one happens to exist.
	Store *colstore.Store
	// Index is a B+tree over one of the table's columns, if one exists.
	Index *index.BTree
	// SelOverride, when positive, replaces the textbook selectivity
	// heuristics with an observed value — the feedback hook the optimizer
	// audit uses to ask "what would you have chosen knowing the real
	// selectivity?". Zero means use the heuristics.
	SelOverride float64
	// Cache, when set, lets the RM formula price a resident column group
	// as warm: the producer streams packed bytes out of the persistent
	// buffer instead of gathering from DRAM. Nil always prices cold.
	Cache *fabric.GroupCache
	// Offload, when set, prices RM's operator-offload path for queries whose
	// aggregation shape the fabric can run (offloadProgram): the consumer
	// collapses to reading the reduced result. The same Source-contract
	// predicate gates execution, so pricing and dispatch cannot disagree.
	Offload bool
}

// selectivity returns the selectivity this optimizer plans with: the
// observed override when one is set, the textbook heuristics otherwise.
func (o *Optimizer) selectivity(q Query) float64 {
	if o.SelOverride > 0 {
		return o.SelOverride
	}
	return estimateSelectivity(q)
}

// Choose prices every path and returns the constructed plan.
func (o *Optimizer) Choose(q Query) (*Plan, error) {
	if o.Tbl == nil || o.Sys == nil {
		return nil, errors.New("engine: optimizer needs a table and a system")
	}
	if err := q.Validate(o.Tbl.Schema()); err != nil {
		return nil, err
	}
	ests := []Estimate{
		o.estimateROW(q),
		o.estimateCOL(q),
		o.estimateRM(q),
		o.estimateIDX(q),
	}
	sort.Slice(ests, func(i, j int) bool {
		if ests[i].Available != ests[j].Available {
			return ests[i].Available
		}
		return ests[i].Cycles < ests[j].Cycles
	})
	if !ests[0].Available {
		return nil, errors.New("engine: no access path available")
	}
	return &Plan{Chosen: ests[0].Engine, Estimates: ests}, nil
}

// EstimateFor prices one specific access path — the counterpart of Choose
// for runs where the caller (not the optimizer) picked the engine, so
// EXPLAIN ANALYZE and the statement store can still report estimated-vs-
// actual for ROW/COL/RM/IDX/PAR runs. PAR prices with the RM formulas: the
// optimizer prices the access path (where the bytes come from), not the
// parallel schedule, so PAR's q-error exposes exactly the speedup the
// morsel executor achieves over the single-stream model. AUTO returns the
// cheapest path, as Choose would.
func (o *Optimizer) EstimateFor(engine string, q Query) (Estimate, bool) {
	if o.Tbl == nil || o.Sys == nil {
		return Estimate{}, false
	}
	if err := q.Validate(o.Tbl.Schema()); err != nil {
		return Estimate{}, false
	}
	var e Estimate
	switch engine {
	case "ROW":
		e = o.estimateROW(q)
	case "COL":
		e = o.estimateCOL(q)
	case "RM":
		e = o.estimateRM(q)
	case "PAR":
		e = o.estimateRM(q)
		e.Engine = "PAR"
	case "IDX":
		e = o.estimateIDX(q)
	case "AUTO":
		p, err := o.Choose(q)
		if err != nil {
			return Estimate{}, false
		}
		return p.Estimates[0], true
	default:
		return Estimate{}, false
	}
	return e, e.Available
}

func (o *Optimizer) estimateROW(q Query) Estimate {
	cfg := o.Sys.Cfg
	n := float64(o.Tbl.NumRows())
	sel := o.selectivity(q)
	lineBytes := float64(cfg.Cache.L1.LineBytes)
	rowStride := float64(o.Tbl.RowStride())

	// CPU: volcano overhead, predicate evaluation, per-column extraction on
	// survivors, consumption.
	cpu := n * VolcanoNextCycles
	cpu += n * float64(len(q.Selection)) * (PredEvalCycles + ExtractCycles + float64(cfg.Cache.L1.HitCycles))
	consumed := float64(len(q.consumedColumns()))
	cpu += n * sel * consumed * (ExtractCycles + float64(cfg.Cache.L1.HitCycles))
	cpu += n * sel * consumeCostPerRow(q)
	if o.Tbl.HasMVCC() {
		cpu += n * TSCheckSoftwareCycles
	}

	// Memory: the scan streams the whole heap; the prefetcher covers the
	// single stream, so line transitions cost ~an L2 hit.
	linesPerRow := rowStride / lineBytes
	mem := n * linesPerRow * float64(cfg.Cache.L2.HitCycles)

	floor := n * rowStride / cfg.DRAM.BandwidthBytesPerCycle
	return Estimate{Engine: "ROW", Cycles: maxf(cpu+mem, floor), Selectivity: sel, Available: true}
}

func (o *Optimizer) estimateCOL(q Query) Estimate {
	if o.Store == nil {
		return Estimate{Engine: "COL", Available: false,
			Reason: "no columnar copy exists (the duplication Relational Fabric removes)"}
	}
	if q.Snapshot != nil {
		return Estimate{Engine: "COL", Available: false, Reason: "columnar copy has no version history"}
	}
	sch := o.Store.Schema()
	cfg := o.Sys.Cfg
	n := float64(o.Store.NumRows())
	sel := o.selectivity(q)
	lineBytes := float64(cfg.Cache.L1.LineBytes)

	// Selection: full-column passes with bitmap intermediates.
	cpu := 0.0
	var bytesTouched float64
	for i, p := range q.Selection {
		w := float64(sch.Column(p.Col).Width)
		cpu += n * (VectorOpCycles + MaterializeCycles + float64(cfg.Cache.L1.HitCycles))
		cpu += n * (w / lineBytes) * float64(cfg.Cache.L2.HitCycles) // prefetched stream
		bytesTouched += n * w
		if i > 0 {
			cpu += n * float64(cfg.Cache.L1.HitCycles) // bitmap read-modify-write
		}
	}

	// Reconstruction: row-major gather across consumed arrays on survivors.
	consumed := q.consumedColumns()
	streams := len(consumed)
	perLine := float64(cfg.Cache.L2.HitCycles) // covered by prefetch
	if streams > cfg.Cache.Prefetch.Streams {
		perLine = float64(cfg.Cache.OverlapMissCycles + cfg.Cache.L2.HitCycles)
	}
	for _, c := range consumed {
		w := float64(sch.Column(c).Width)
		cpu += n * sel * (VectorOpCycles + float64(cfg.Cache.L1.HitCycles))
		cpu += n * sel * (w / lineBytes) * perLine
		bytesTouched += n * sel * w
	}
	cpu += n * sel * consumeCostPerRow(q)

	floor := bytesTouched / cfg.DRAM.BandwidthBytesPerCycle
	return Estimate{Engine: "COL", Cycles: maxf(cpu, floor), Selectivity: sel, Available: true}
}

func (o *Optimizer) estimateRM(q Query) Estimate {
	sch := o.Tbl.Schema()
	cfg := o.Sys.Cfg
	n := float64(o.Tbl.NumRows())
	sel := o.selectivity(q)
	lineBytes := float64(cfg.Cache.L1.LineBytes)

	geom, err := geometry.NewGeometry(sch, q.NeededColumns()...)
	if err != nil {
		return Estimate{Engine: "RM", Available: false, Reason: err.Error()}
	}
	gatherPerRow := estimateGatherBytes(o.Tbl, geom, cfg.DRAM.BurstBytes)

	// Producer: datapath row/beat rate plus refill handshakes, floored by
	// fabric-port bandwidth.
	ratio := float64(cfg.Fabric.ClockRatio)
	rowRate := n / float64(cfg.Fabric.RowsPerCycle) * ratio
	beatRate := n * gatherPerRow / float64(cfg.Fabric.BeatBytes) * ratio
	producer := maxf(rowRate, beatRate)
	packed := float64(geom.PackedWidth())
	chunks := n * packed / float64(cfg.Fabric.BufferBytes)
	producer += (chunks + 1) * float64(cfg.Fabric.RefillCycles)
	fabricFloor := n * gatherPerRow / (cfg.DRAM.BandwidthBytesPerCycle * float64(cfg.DRAM.FabricPorts))

	// Offloaded scans ship no column group, so they bypass the cache both
	// here and in dispatch.
	offloaded := false
	if o.Offload {
		_, offloaded = offloadProgram(q)
	}

	// Warm pricing: with the group resident, the producer replays already
	// packed bytes across the datapath at beat rate plus one refill
	// handshake per cached chunk — no DRAM gathers, no row-rate packing,
	// no fabric-port bandwidth floor. The DB's RM path never pushes
	// selection, so the probe keys on projection geometry alone.
	warm := false
	if o.Cache != nil && !offloaded {
		if info, ok := o.Cache.Peek(o.Tbl, geom, q.Snapshot, nil); ok {
			warm = true
			producer = float64(info.Bytes)/float64(cfg.Fabric.BeatBytes)*ratio +
				float64(info.Chunks)*float64(cfg.Fabric.RefillCycles)
			fabricFloor = 0
		}
	}

	// Consumer: vectorized over packed rows; selection short-circuits on
	// the first failing predicate (assume ~1.3 evaluated on average when
	// selective), survivors consume.
	evalPerRow := float64(len(q.Selection))
	if evalPerRow > 1 && sel < 0.5 {
		evalPerRow = 1.3
	}
	consumer := n * evalPerRow * (2*VectorOpCycles + float64(cfg.Cache.L1.HitCycles))
	consumer += n * sel * float64(len(q.consumedColumns())) * (VectorOpCycles + float64(cfg.Cache.L1.HitCycles))
	consumer += n * sel * consumeCostPerRow(q)
	consumer += n * packed / lineBytes * float64(cfg.Cache.L2.HitCycles+cfg.Cache.FabricHitCycles)

	// Offload pricing: selection and the whole fold run fabric-side; the
	// grouping datapath serializes at AggregateCycles per qualifying row,
	// and the CPU only reads the reduced result — the packed-line shipping
	// term (bytes-to-CPU) disappears entirely.
	if offloaded {
		if len(q.GroupBy) > 0 {
			producer += n * sel * float64(cfg.Fabric.AggregateCycles) * ratio
		}
		consumer = float64(len(q.GroupBy)+len(q.Aggregates)) * float64(cfg.Cache.L1.HitCycles)
	}

	cycles := maxf(maxf(producer, consumer), fabricFloor)
	return Estimate{Engine: "RM", Cycles: cycles, Selectivity: sel, Available: true, Warm: warm, Offloaded: offloaded}
}

// estimateGatherBytes mirrors the fabric's stride coalescing to predict
// burst-rounded bytes per row.
func estimateGatherBytes(tbl *table.Table, geom *geometry.Geometry, burst int) float64 {
	payloadOff := 0
	if tbl.HasMVCC() {
		payloadOff = table.MVCCHeaderBytes
	}
	sch := tbl.Schema()
	type rng struct{ off, w int }
	var ranges []rng
	if tbl.HasMVCC() {
		ranges = append(ranges, rng{0, table.MVCCHeaderBytes})
	}
	cols := append([]int(nil), geom.Columns()...)
	sort.Ints(cols)
	for _, c := range cols {
		ranges = append(ranges, rng{payloadOff + sch.Offset(c), sch.Column(c).Width})
	}
	var merged []rng
	for _, r := range ranges {
		if n := len(merged); n > 0 && r.off-(merged[n-1].off+merged[n-1].w) < burst {
			merged[n-1].w = r.off + r.w - merged[n-1].off
			continue
		}
		merged = append(merged, r)
	}
	total := 0
	for _, r := range merged {
		first := r.off &^ (burst - 1)
		last := (r.off + r.w - 1) &^ (burst - 1)
		total += last - first + burst
	}
	return float64(total)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// String renders the plan for diagnostics.
func (p *Plan) String() string {
	s := "plan: " + p.Chosen
	for _, e := range p.Estimates {
		if e.Available {
			s += fmt.Sprintf(" | %s≈%.0f sel=%.3f", e.Engine, e.Cycles, e.Selectivity)
			if e.Warm {
				s += " warm"
			}
			if e.Offloaded {
				s += " offload"
			}
		} else {
			s += fmt.Sprintf(" | %s(unavailable)", e.Engine)
		}
	}
	return s
}
