// Package engine implements the query-execution paths the paper compares
// (ICDE 2023, §V) as access-path Sources plugged into one shared operator
// pipeline: a volcano-style tuple-at-a-time path over the row-oriented base
// data (ROW), a column-at-a-time path over a materialized columnar copy
// (COL), a path over Relational Memory's ephemeral views (RM), and a B+tree
// path for selections that pin an indexed column (IDX). Each Source
// describes only where a query's bytes live and what each touched byte
// costs; the scan and consume loops — scalar interpreter and vectorized
// batch executor alike — live once, in pipeline.go and pipeline_vec.go. All
// paths run the same logical queries, produce identical results, and charge
// their work to a shared performance model (simulated CPU cycles + the
// cache/DRAM hierarchy), so their relative execution times reproduce the
// paper's figures. physplan.go bridges to the physical plan IR in
// internal/plan (lowering, pricing, sink operators).
package engine

import (
	"errors"
	"fmt"

	"rfabric/internal/expr"
	"rfabric/internal/geometry"
)

// AggTerm is one output aggregate. Arg may be any scalar expression
// (TPC-H Q1 uses derived terms like extendedprice*(1-discount)); it is nil
// for COUNT(*).
type AggTerm struct {
	Kind expr.AggKind
	Arg  expr.Scalar
}

// Format renders the term against a schema.
func (a AggTerm) Format(s *geometry.Schema) string {
	if a.Arg == nil {
		return a.Kind.String() + "(*)"
	}
	return fmt.Sprintf("%s(%s)", a.Kind, a.Arg.Format(s))
}

// Query is the logical query all engines execute.
//
// Exactly one consumption shape applies:
//   - Aggregates empty: a projection scan — every value of Projection for
//     every qualifying row is folded into an order-insensitive checksum
//     (the microbenchmark consumer behind Figures 5 and 6).
//   - Aggregates set, GroupBy empty: scalar aggregation (TPC-H Q6).
//   - Aggregates and GroupBy set: hash aggregation (TPC-H Q1).
type Query struct {
	Projection []int
	Selection  expr.Conjunction
	GroupBy    []int
	Aggregates []AggTerm
	// Snapshot, when non-nil, runs the query at that MVCC snapshot. Only
	// meaningful for tables created with MVCC headers.
	Snapshot *uint64
}

// Validate checks the query against a schema.
func (q Query) Validate(s *geometry.Schema) error {
	if len(q.Projection) == 0 && len(q.Aggregates) == 0 {
		return errors.New("engine: query consumes nothing (no projection, no aggregates)")
	}
	for _, c := range q.Projection {
		if c < 0 || c >= s.NumColumns() {
			return fmt.Errorf("engine: projection column %d out of range [0,%d)", c, s.NumColumns())
		}
	}
	if err := q.Selection.Validate(s); err != nil {
		return err
	}
	for _, c := range q.GroupBy {
		if c < 0 || c >= s.NumColumns() {
			return fmt.Errorf("engine: group-by column %d out of range [0,%d)", c, s.NumColumns())
		}
	}
	if len(q.GroupBy) > 0 && len(q.Aggregates) == 0 {
		return errors.New("engine: GROUP BY without aggregates")
	}
	for _, a := range q.Aggregates {
		if a.Arg == nil {
			if a.Kind != expr.Count {
				return fmt.Errorf("engine: %s aggregate needs an argument", a.Kind)
			}
			continue
		}
		if err := expr.ValidateScalar(a.Arg, s); err != nil {
			return err
		}
	}
	return nil
}

// NeededColumns returns the distinct schema columns the query touches, in
// ascending order grouped as: projection (in declared order), then
// selection, group-by, and aggregate-argument columns not already present.
// This is the geometry the RM engine configures.
func (q Query) NeededColumns() []int {
	seen := map[int]bool{}
	var out []int
	add := func(c int) {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	for _, c := range q.Projection {
		add(c)
	}
	for _, c := range q.Selection.Columns() {
		add(c)
	}
	for _, c := range q.GroupBy {
		add(c)
	}
	for _, a := range q.Aggregates {
		if a.Arg != nil {
			for _, c := range a.Arg.Columns() {
				add(c)
			}
		}
	}
	return out
}

// consumedColumns returns the columns read after selection passes:
// projection plus group-by plus aggregate arguments.
func (q Query) consumedColumns() []int {
	seen := map[int]bool{}
	var out []int
	add := func(c int) {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	for _, c := range q.Projection {
		add(c)
	}
	for _, c := range q.GroupBy {
		add(c)
	}
	for _, a := range q.Aggregates {
		if a.Arg != nil {
			for _, c := range a.Arg.Columns() {
				add(c)
			}
		}
	}
	return out
}
