package engine

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"rfabric/internal/table"
)

// Breakdown is the modeled cost of one query execution.
type Breakdown struct {
	// ComputeCycles is the CPU work charged by the engine's loops.
	ComputeCycles uint64
	// MemDemandCycles is the latency the cache hierarchy exposed to the CPU.
	MemDemandCycles uint64
	// ProducerCycles is fabric-side production time (RM engine only).
	ProducerCycles uint64
	// BytesFromDRAM is all data the run moved out of memory (demand,
	// prefetch, and fabric gathers).
	BytesFromDRAM uint64
	// BytesToCPU is the data that crossed into the cache hierarchy:
	// demand/prefetch lines for ROW and COL, packed fabric lines for RM.
	BytesToCPU uint64
	// PipelineCycles is the producer/consumer pipeline total before the
	// bandwidth floor (RM and PAR paths only; zero on demand paths). It is
	// what trace spans attribute as "pipeline", with TotalCycles -
	// PipelineCycles left as the bandwidth stall.
	PipelineCycles uint64
	// TotalCycles is the modeled execution time: the CPU path and producer
	// pipeline combined, floored by DRAM bandwidth occupancy.
	TotalCycles uint64
}

// CPUCycles returns the demand-path total (compute + exposed memory).
func (b Breakdown) CPUCycles() uint64 { return b.ComputeCycles + b.MemDemandCycles }

// GroupRow is one output row of a grouped aggregation.
type GroupRow struct {
	Key   []table.Value
	Aggs  []table.Value
	Count int64
}

// Result is the outcome of one query execution.
type Result struct {
	Engine      string
	RowsScanned int64
	RowsPassed  int64
	// Checksum is the order-insensitive fold of every consumed projected
	// value (projection scans only). Engines producing the same logical
	// result produce the same checksum.
	Checksum uint64
	// Aggs holds scalar aggregation results (no GROUP BY).
	Aggs []table.Value
	// Groups holds grouped results sorted by key.
	Groups    []GroupRow
	Breakdown Breakdown
	// CacheWarm reports that the run consumed a resident column group out
	// of the fabric group cache instead of gathering from DRAM (RM engine
	// with a GroupCache attached only). The logical result is identical
	// either way; only the modeled cost differs.
	CacheWarm bool
	// Offload names the fabric operator program this run pushed near memory
	// ("agg", "group-agg", "semi-join", "dict-scan", or combinations); empty
	// when every operator ran CPU-side. The logical result is identical
	// either way; only where the work was charged differs.
	Offload string
}

// EquivalentTo reports whether two results agree logically: same pass
// counts, checksums, aggregates (within eps for floats), and groups.
func (r *Result) EquivalentTo(o *Result, eps float64) error {
	if r.RowsPassed != o.RowsPassed {
		return fmt.Errorf("rows passed: %d vs %d", r.RowsPassed, o.RowsPassed)
	}
	if r.Checksum != o.Checksum {
		return fmt.Errorf("checksum: %#x vs %#x", r.Checksum, o.Checksum)
	}
	if len(r.Aggs) != len(o.Aggs) {
		return fmt.Errorf("aggregate count: %d vs %d", len(r.Aggs), len(o.Aggs))
	}
	for i := range r.Aggs {
		if err := valuesClose(r.Aggs[i], o.Aggs[i], eps); err != nil {
			return fmt.Errorf("aggregate %d: %w", i, err)
		}
	}
	if len(r.Groups) != len(o.Groups) {
		return fmt.Errorf("group count: %d vs %d", len(r.Groups), len(o.Groups))
	}
	for g := range r.Groups {
		a, b := r.Groups[g], o.Groups[g]
		if a.Count != b.Count {
			return fmt.Errorf("group %d count: %d vs %d", g, a.Count, b.Count)
		}
		for i := range a.Key {
			if !a.Key[i].Equal(b.Key[i]) {
				return fmt.Errorf("group %d key %d: %s vs %s", g, i, a.Key[i], b.Key[i])
			}
		}
		for i := range a.Aggs {
			if err := valuesClose(a.Aggs[i], b.Aggs[i], eps); err != nil {
				return fmt.Errorf("group %d aggregate %d: %w", g, i, err)
			}
		}
	}
	return nil
}

func valuesClose(a, b table.Value, eps float64) error {
	if a.Type != b.Type {
		return fmt.Errorf("type %s vs %s", a.Type, b.Type)
	}
	switch {
	case a.Equal(b):
		return nil
	case eps > 0:
		av, bv := a.Float, b.Float
		if a.Type != b.Type {
			return fmt.Errorf("type %s vs %s", a.Type, b.Type)
		}
		if av == 0 && bv == 0 {
			return nil
		}
		if math.Abs(av-bv) <= eps*math.Max(math.Abs(av), math.Abs(bv)) {
			return nil
		}
	}
	return fmt.Errorf("%s vs %s", a, b)
}

// String renders a compact summary.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: scanned=%d passed=%d cycles=%d", r.Engine, r.RowsScanned, r.RowsPassed, r.Breakdown.TotalCycles)
	if len(r.Aggs) > 0 {
		parts := make([]string, len(r.Aggs))
		for i, v := range r.Aggs {
			parts[i] = v.String()
		}
		fmt.Fprintf(&b, " aggs=[%s]", strings.Join(parts, ", "))
	}
	if len(r.Groups) > 0 {
		fmt.Fprintf(&b, " groups=%d", len(r.Groups))
	}
	return b.String()
}

// sortGroups orders grouped output by key bytes so every engine emits the
// same order.
func sortGroups(groups []GroupRow) {
	sort.Slice(groups, func(i, j int) bool {
		a, b := groups[i].Key, groups[j].Key
		for k := range a {
			if c := a[k].Compare(b[k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
}
