package engine

import (
	"testing"

	"rfabric/internal/expr"
	"rfabric/internal/plan"
	"rfabric/internal/table"
)

func TestPlanOfRoundTrip(t *testing.T) {
	snap := uint64(7)
	q := Query{
		Selection:  expr.Conjunction{{Col: 1, Op: expr.Lt, Operand: table.F64(5)}},
		GroupBy:    []int{2},
		Aggregates: []AggTerm{{Kind: expr.Count}, {Kind: expr.Sum, Arg: expr.ColRef{Col: 1}}},
		Snapshot:   &snap,
	}
	root := PlanOf(q, "items")
	if err := root.Validate(); err != nil {
		t.Fatal(err)
	}
	got, sk, err := FromPlan(root)
	if err != nil {
		t.Fatal(err)
	}
	if !sk.Empty() {
		t.Errorf("unexpected sinks: %+v", sk)
	}
	if got.Snapshot == nil || *got.Snapshot != snap {
		t.Errorf("snapshot lost in round trip")
	}
	if len(got.Selection) != 1 || len(got.GroupBy) != 1 || len(got.Aggregates) != 2 {
		t.Errorf("round trip mangled query: %+v", got)
	}
	if root.Scan().Table != "items" {
		t.Errorf("scan table = %q", root.Scan().Table)
	}
}

func TestFromPlanExtractsSinks(t *testing.T) {
	q := Query{
		GroupBy:    []int{0},
		Aggregates: []AggTerm{{Kind: expr.Count}},
	}
	root := PlanOf(q, "t").
		OrderBy([]plan.SortKey{{Key: -1, Agg: 0, Desc: true}}).
		Limit(2)
	_, sk, err := FromPlan(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(sk.Keys) != 1 || !sk.Keys[0].Desc || !sk.HasLimit || sk.Limit != 2 {
		t.Errorf("sinks = %+v", sk)
	}
}

func sinkResult() *Result {
	return &Result{
		Groups: []GroupRow{
			{Key: []table.Value{table.I64(1)}, Aggs: []table.Value{table.F64(10)}, Count: 2},
			{Key: []table.Value{table.I64(2)}, Aggs: []table.Value{table.F64(30)}, Count: 1},
			{Key: []table.Value{table.I64(3)}, Aggs: []table.Value{table.F64(10)}, Count: 3},
		},
	}
}

func TestApplySinksSortAndLimit(t *testing.T) {
	res := sinkResult()
	cycles := ApplySinks(res, Sinks{Keys: []plan.SortKey{{Key: -1, Agg: 0, Desc: true}}})
	if cycles == 0 {
		t.Errorf("sort over %d groups charged nothing", len(res.Groups))
	}
	if res.Breakdown.ComputeCycles != cycles || res.Breakdown.TotalCycles != cycles {
		t.Errorf("sink cycles not added to breakdown: %+v", res.Breakdown)
	}
	// 30 first; the two ties (both 10) keep their key order — stable sort.
	if res.Groups[0].Aggs[0].Float != 30 {
		t.Errorf("descending sort: first agg = %v", res.Groups[0].Aggs[0])
	}
	if res.Groups[1].Key[0].Int != 1 || res.Groups[2].Key[0].Int != 3 {
		t.Errorf("ties not stable: keys %v, %v", res.Groups[1].Key[0], res.Groups[2].Key[0])
	}

	res2 := sinkResult()
	ApplySinks(res2, Sinks{Limit: 1, HasLimit: true})
	if len(res2.Groups) != 1 || res2.Groups[0].Key[0].Int != 1 {
		t.Errorf("limit: groups = %+v", res2.Groups)
	}
}

func TestApplySinksLimitZero(t *testing.T) {
	res := sinkResult()
	cycles := ApplySinks(res, Sinks{Limit: 0, HasLimit: true})
	if cycles != 0 {
		t.Errorf("LIMIT 0 charged %d cycles", cycles)
	}
	if len(res.Groups) != 0 {
		t.Errorf("LIMIT 0 left %d groups", len(res.Groups))
	}
}

func TestApplySinksEmptyNoCharge(t *testing.T) {
	res := sinkResult()
	if cycles := ApplySinks(res, Sinks{}); cycles != 0 {
		t.Errorf("empty sinks charged %d cycles", cycles)
	}
	if len(res.Groups) != 3 {
		t.Errorf("empty sinks mutated groups")
	}
}

func TestChoosePlanStampsSource(t *testing.T) {
	fx := newFixture(t, 4, 512, false)
	o := &Optimizer{Tbl: fx.tbl, Sys: fx.sys}
	tbl := fx.tbl
	q := Query{Projection: []int{0, 1}}
	root := PlanOf(q, tbl.Name())
	p, err := o.ChoosePlan(root)
	if err != nil {
		t.Fatal(err)
	}
	if root.Scan().Source == "" || root.Scan().Source != p.Chosen {
		t.Errorf("scan source %q vs chosen %q", root.Scan().Source, p.Chosen)
	}
}
