package engine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rfabric/internal/expr"
	"rfabric/internal/table"
)

func TestEmptyTable(t *testing.T) {
	f := newFixture(t, 8, 0, false)
	q := Query{Projection: []int{0, 3}}
	for _, e := range engines(f) {
		f.sys.ResetState()
		r := mustExec(t, e, q)
		if r.RowsScanned != 0 || r.RowsPassed != 0 || r.Checksum != 0 {
			t.Errorf("%s on empty table: %+v", e.Name(), r)
		}
	}
}

func TestSingleRow(t *testing.T) {
	f := newFixture(t, 8, 1, false)
	q := Query{Projection: []int{7}}
	ref := mustExec(t, &RowEngine{Tbl: f.tbl, Sys: f.sys}, q)
	for _, e := range engines(f) {
		f.sys.ResetState()
		if err := mustExec(t, e, q).EquivalentTo(ref, 0); err != nil {
			t.Errorf("%s: %v", e.Name(), err)
		}
	}
}

func TestSelectionEliminatingEverything(t *testing.T) {
	f := newFixture(t, 8, 500, false)
	q := Query{
		Projection: []int{0},
		Selection:  expr.Conjunction{{Col: 1, Op: expr.Gt, Operand: table.I32(10_000)}},
	}
	for _, e := range engines(f) {
		f.sys.ResetState()
		r := mustExec(t, e, q)
		if r.RowsPassed != 0 {
			t.Errorf("%s passed %d rows through an impossible predicate", e.Name(), r.RowsPassed)
		}
	}
}

func TestValidationErrorsAcrossEngines(t *testing.T) {
	f := newFixture(t, 4, 10, false)
	bad := []Query{
		{},                      // consumes nothing
		{Projection: []int{99}}, // column out of range
		{GroupBy: []int{0}},     // group-by without aggregates
		{Projection: []int{0}, Selection: expr.Conjunction{{Col: 0, Op: expr.Lt, Operand: table.F64(1)}}}, // type mismatch
		{Aggregates: []AggTerm{{Kind: expr.Sum}}},                                                         // SUM without argument
	}
	for i, q := range bad {
		for _, e := range engines(f) {
			if _, err := e.Execute(q); err == nil {
				t.Errorf("query %d accepted by %s", i, e.Name())
			}
		}
	}
}

func TestRMNeverShipsMoreThanROWTouches(t *testing.T) {
	f := newFixture(t, 16, 8000, false)
	queries := []Query{
		{Projection: []int{0}},
		{Projection: []int{1, 5, 9, 13}},
		{Projection: []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}},
		{Projection: []int{2}, Selection: expr.Conjunction{{Col: 8, Op: expr.Lt, Operand: table.I32(500)}}},
	}
	for i, q := range queries {
		f.sys.ResetState()
		row := mustExec(t, &RowEngine{Tbl: f.tbl, Sys: f.sys}, q)
		f.sys.ResetState()
		rm := mustExec(t, &RMEngine{Tbl: f.tbl, Sys: f.sys}, q)
		if rm.Breakdown.BytesToCPU > row.Breakdown.BytesToCPU {
			t.Errorf("query %d: RM shipped %d bytes to the CPU, ROW moved %d — the fabric must never ship more",
				i, rm.Breakdown.BytesToCPU, row.Breakdown.BytesToCPU)
		}
	}
}

func TestBreakdownTotalsAreConsistent(t *testing.T) {
	f := newFixture(t, 16, 4000, false)
	q := Query{Projection: []int{0, 4, 8}}
	for _, e := range engines(f) {
		f.sys.ResetState()
		r := mustExec(t, e, q)
		b := r.Breakdown
		if b.TotalCycles == 0 {
			t.Errorf("%s: zero total", e.Name())
		}
		if e.Name() != "RM" && b.TotalCycles < b.ComputeCycles {
			t.Errorf("%s: total %d below compute %d", e.Name(), b.TotalCycles, b.ComputeCycles)
		}
		if b.BytesFromDRAM == 0 {
			t.Errorf("%s: no DRAM traffic for a cold scan", e.Name())
		}
	}
}

func TestChecksumOrderInsensitive(t *testing.T) {
	// Two engines visiting rows in different orders must produce the same
	// checksum; simulate by building two tables with permuted row order.
	f1 := newFixture(t, 4, 300, false)
	// Permute rows into a second table.
	perm := rand.New(rand.NewSource(1)).Perm(300)
	f2 := newFixture(t, 4, 0, false)
	for _, r := range perm {
		if _, err := f2.tbl.AppendRaw(1, f1.tbl.RowPayload(r)); err != nil {
			t.Fatal(err)
		}
	}
	q := Query{Projection: []int{0, 2}}
	a := mustExec(t, &RowEngine{Tbl: f1.tbl, Sys: f1.sys}, q)
	b := mustExec(t, &RowEngine{Tbl: f2.tbl, Sys: f2.sys}, q)
	if a.Checksum != b.Checksum {
		t.Error("checksum depends on row order")
	}
}

func TestRMSmallBufferManyChunksStillAgrees(t *testing.T) {
	cfg := DefaultSystemConfig()
	cfg.Fabric.BufferBytes = 512
	sys := MustSystem(cfg)
	f := newFixture(t, 8, 2000, false)
	// Rebuild RM on the small-buffer system, sharing the same data.
	tbl := relocate(t, f.tbl, sys.Arena.Alloc(int64(f.tbl.SizeBytes())))
	q := Query{
		Projection: []int{0, 3, 6},
		Selection:  expr.Conjunction{{Col: 1, Op: expr.Ge, Operand: table.I32(300)}},
	}
	ref := mustExec(t, &RowEngine{Tbl: f.tbl, Sys: f.sys}, q)
	rm := mustExec(t, &RMEngine{Tbl: tbl, Sys: sys}, q)
	if err := rm.EquivalentTo(ref, 0); err != nil {
		t.Errorf("chunked RM diverges: %v", err)
	}
	if sys.Fab.Stats().Chunks < 10 {
		t.Errorf("expected many refills, got %d", sys.Fab.Stats().Chunks)
	}
}

// TestEnginesAgreeProperty: random queries over a random table agree across
// all engines — the repository's central correctness invariant.
func TestEnginesAgreeProperty(t *testing.T) {
	f := newFixture(t, 10, 800, false)
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var proj []int
		for c := 0; c < 10; c++ {
			if rng.Intn(3) == 0 {
				proj = append(proj, c)
			}
		}
		if len(proj) == 0 {
			proj = []int{rng.Intn(10)}
		}
		var sel expr.Conjunction
		for p := 0; p < rng.Intn(3); p++ {
			sel = append(sel, expr.Predicate{
				Col:     rng.Intn(10),
				Op:      expr.CmpOp(rng.Intn(6)),
				Operand: table.I32(int32(rng.Intn(1000))),
			})
		}
		q := Query{Projection: proj, Selection: sel}
		f.sys.ResetState()
		ref, err := (&RowEngine{Tbl: f.tbl, Sys: f.sys}).Execute(q)
		if err != nil {
			return false
		}
		for _, e := range engines(f) {
			f.sys.ResetState()
			r, err := e.Execute(q)
			if err != nil {
				return false
			}
			if r.EquivalentTo(ref, 0) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGroupByMultipleKeysWithSnapshot(t *testing.T) {
	f := newFixture(t, 6, 900, true)
	// End a third of the versions at ts 3.
	for r := 0; r < 900; r += 3 {
		if err := f.tbl.SetEndTS(r, 3); err != nil {
			t.Fatal(err)
		}
	}
	snap := uint64(2)
	q := Query{
		GroupBy:    []int{0, 1},
		Aggregates: []AggTerm{{Kind: expr.Count}, {Kind: expr.Max, Arg: expr.ColRef{Col: 2}}},
		Snapshot:   &snap,
	}
	ref := mustExec(t, &RowEngine{Tbl: f.tbl, Sys: f.sys}, q)
	f.sys.ResetState()
	rm := mustExec(t, &RMEngine{Tbl: f.tbl, Sys: f.sys}, q)
	if err := rm.EquivalentTo(ref, 1e-9); err != nil {
		t.Errorf("grouped snapshot query diverges: %v", err)
	}
	var total int64
	for _, g := range ref.Groups {
		total += g.Count
		if len(g.Key) != 2 {
			t.Fatalf("group key arity %d", len(g.Key))
		}
	}
	if total != ref.RowsPassed {
		t.Errorf("group counts (%d) do not cover passed rows (%d)", total, ref.RowsPassed)
	}
	// The later snapshot sees more versions dead... verify snapshots differ.
	snap2 := uint64(5)
	q.Snapshot = &snap2
	f.sys.ResetState()
	later := mustExec(t, &RowEngine{Tbl: f.tbl, Sys: f.sys}, q)
	if later.RowsPassed >= ref.RowsPassed {
		t.Errorf("snapshot 5 passed %d rows, snapshot 2 passed %d", later.RowsPassed, ref.RowsPassed)
	}
}

func TestAvgOverEmptySelection(t *testing.T) {
	f := newFixture(t, 4, 100, false)
	q := Query{
		Selection:  expr.Conjunction{{Col: 0, Op: expr.Gt, Operand: table.I32(99_999)}},
		Aggregates: []AggTerm{{Kind: expr.Avg, Arg: expr.ColRef{Col: 1}}, {Kind: expr.Count}},
	}
	for _, e := range engines(f) {
		f.sys.ResetState()
		r := mustExec(t, e, q)
		if r.Aggs[0].Float != 0 || r.Aggs[1].Int != 0 {
			t.Errorf("%s: empty AVG/COUNT = %s/%s", e.Name(), r.Aggs[0], r.Aggs[1])
		}
	}
}
