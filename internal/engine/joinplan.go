package engine

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"sync"
	"sync/atomic"

	"rfabric/internal/expr"
	"rfabric/internal/fabric"
	"rfabric/internal/geometry"
	"rfabric/internal/obs"
	"rfabric/internal/plan"
	"rfabric/internal/table"
)

// Join execution over the shared pipeline. A plan.Node join tree lowers to
// a JoinPlan: one probe side plus a list of build stages, each side a full
// Source-backed subplan with its own selection, snapshot, and needed
// columns. Execution streams every side through the scalar pipeline's sink
// hook — build rows into per-stage hash tables, probe rows through a
// multi-stage probe that folds matched combined rows straight into the
// consumer — so every build and probe byte flows through Hier.Load, each
// phase closes its own span, and the run's root span reconciles exactly
// with the summed Breakdown.TotalCycles.

// JoinSide is one input of a join: the table it reads, the side-local
// query the pipeline executes over it (projection = every column the join
// fetches from this side, selection = the side's pushed-down predicates),
// and the side's Scan node for source stamping and EXPLAIN.
type JoinSide struct {
	Table string
	Query Query
	Node  *plan.Node
}

// JoinStage is one build side of a left-deep join spine. BuildKey indexes
// the build table's schema; ProbeKey indexes the combined namespace of the
// sides joined before this stage.
type JoinStage struct {
	Side     JoinSide
	BuildKey int
	ProbeKey int
}

// JoinPlan is an executable join: probe side, build stages innermost-first,
// the combined output namespace, and the consumption query over it.
// Construct it with FromJoinPlan.
type JoinPlan struct {
	Probe   JoinSide
	Stages  []JoinStage
	Schema  *geometry.Schema
	Offsets []int // Offsets[i]: combined start of side i (0 = probe, 1+k = stage k)
	Consume Query

	// colSide/colSlot map each combined column to its owning side and the
	// fetch slot within it (probe-local column, or build-entry position).
	colSide []int
	colSlot []int
}

// JoinSchema concatenates per-table schemas into one combined namespace.
// Column names stay bare when globally unique and qualify to "table.column"
// otherwise. The returned offsets give each table's starting index.
func JoinSchema(tables []string, schemas []*geometry.Schema) (*geometry.Schema, []int, error) {
	if len(tables) != len(schemas) {
		return nil, nil, errors.New("engine: JoinSchema needs one schema per table")
	}
	count := map[string]int{}
	for _, s := range schemas {
		for i := 0; i < s.NumColumns(); i++ {
			count[s.Column(i).Name]++
		}
	}
	var cols []geometry.Column
	offsets := make([]int, len(tables))
	for ti, s := range schemas {
		offsets[ti] = len(cols)
		for i := 0; i < s.NumColumns(); i++ {
			c := s.Column(i)
			if count[c.Name] > 1 {
				c.Name = tables[ti] + "." + c.Name
			}
			cols = append(cols, c)
		}
	}
	sch, err := geometry.NewSchema(cols...)
	if err != nil {
		return nil, nil, fmt.Errorf("engine: combined join schema: %w", err)
	}
	return sch, offsets, nil
}

// keyFamily buckets column types into join-compatible families: integral
// (BIGINT/INT/DATE join across widths), float, and CHAR.
func keyFamily(t geometry.ColumnType) int {
	switch t {
	case geometry.Float64:
		return 1
	case geometry.Char:
		return 2
	default:
		return 0
	}
}

// joinKeyTo appends v's canonical join-key encoding, or reports false when
// the value can never match (NaN, per SQL equality). Integral values encode
// by value; floats by bits with -0 normalized to +0; CHAR by
// trailing-NUL-trimmed bytes (embedded NULs are significant).
func joinKeyTo(dst []byte, v table.Value) ([]byte, bool) {
	switch v.Type {
	case geometry.Float64:
		f := v.Float
		if math.IsNaN(f) {
			return dst, false
		}
		if f == 0 {
			f = 0 // collapse -0 onto +0
		}
		bits := math.Float64bits(f)
		for i := 0; i < 8; i++ {
			dst = append(dst, byte(bits>>(8*uint(i))))
		}
	case geometry.Char:
		b := v.Bytes
		end := len(b)
		for end > 0 && b[end-1] == 0 {
			end--
		}
		dst = append(dst, b[:end]...)
	default:
		u := uint64(v.Int)
		for i := 0; i < 8; i++ {
			dst = append(dst, byte(u>>(8*uint(i))))
		}
	}
	return dst, true
}

// sideChain unpacks one side's [Filter]→Scan chain.
func sideChain(n *plan.Node) (scan *plan.Node, sel expr.Conjunction, err error) {
	cur := n
	var preds expr.Conjunction
	if cur.Op == plan.OpFilter {
		preds = cur.Preds
		cur = cur.Input
	}
	if cur == nil || cur.Op != plan.OpScan {
		return nil, nil, errors.New("engine: join side must be a [Filter]→Scan chain")
	}
	return cur, preds, nil
}

// FromJoinPlan validates a join tree and lowers it to an executable
// JoinPlan plus its sinks. lookup resolves a table name to its schema.
func FromJoinPlan(root *plan.Node, lookup func(string) (*geometry.Schema, error)) (*JoinPlan, Sinks, error) {
	var sk Sinks
	if err := root.Validate(); err != nil {
		return nil, sk, err
	}
	cur := root
	if cur.Op == plan.OpLimit {
		sk.Limit = cur.N
		sk.HasLimit = true
		cur = cur.Input
	}
	if cur.Op == plan.OpOrderBy {
		sk.Keys = cur.Keys
		cur = cur.Input
	}
	consumeNode := cur // Project or Aggregate, per Validate

	spine := consumeNode.Input.Joins() // outermost-first
	inner := spine[len(spine)-1]

	// Collect sides in combined order: probe, then builds innermost-first.
	sideScans := make([]*plan.Node, 0, len(spine)+1)
	sideSels := make([]expr.Conjunction, 0, len(spine)+1)
	scan, preds, err := sideChain(inner.Input)
	if err != nil {
		return nil, sk, err
	}
	sideScans, sideSels = append(sideScans, scan), append(sideSels, preds)
	for i := len(spine) - 1; i >= 0; i-- {
		scan, preds, err := sideChain(spine[i].Build)
		if err != nil {
			return nil, sk, err
		}
		sideScans, sideSels = append(sideScans, scan), append(sideSels, preds)
	}

	tables := make([]string, len(sideScans))
	schemas := make([]*geometry.Schema, len(sideScans))
	for i, s := range sideScans {
		tables[i] = s.Table
		sch, err := lookup(s.Table)
		if err != nil {
			return nil, sk, err
		}
		schemas[i] = sch
	}
	combined, offsets, err := JoinSchema(tables, schemas)
	if err != nil {
		return nil, sk, err
	}

	p := &JoinPlan{Schema: combined, Offsets: offsets}
	switch consumeNode.Op {
	case plan.OpProject:
		p.Consume.Projection = consumeNode.Cols
	case plan.OpAggregate:
		p.Consume.GroupBy = consumeNode.GroupBy
		p.Consume.Aggregates = make([]AggTerm, len(consumeNode.Aggs))
		for i, a := range consumeNode.Aggs {
			p.Consume.Aggregates[i] = AggTerm{Kind: a.Kind, Arg: a.Arg}
		}
	}
	if err := p.Consume.Validate(combined); err != nil {
		return nil, sk, err
	}

	// Distribute the consumed combined columns onto their owning sides,
	// then add each stage's keys; a side's projection is exactly what the
	// join will fetch from it.
	needed := make([][]int, len(sideScans))
	seen := make([]map[int]bool, len(sideScans))
	for i := range seen {
		seen[i] = map[int]bool{}
	}
	sideOf := func(c int) int {
		s := 0
		for i := 1; i < len(offsets); i++ {
			if c >= offsets[i] {
				s = i
			}
		}
		return s
	}
	addNeeded := func(c int) {
		s := sideOf(c)
		local := c - offsets[s]
		if !seen[s][local] {
			seen[s][local] = true
			needed[s] = append(needed[s], local)
		}
	}
	for _, c := range p.Consume.consumedColumns() {
		addNeeded(c)
	}
	p.Stages = make([]JoinStage, len(spine))
	for k := range p.Stages {
		j := spine[len(spine)-1-k] // stage k = (k+1)'th innermost join
		bsch := schemas[k+1]
		if j.BuildKey >= bsch.NumColumns() {
			return nil, sk, fmt.Errorf("engine: join build key %d out of range for table %q", j.BuildKey, tables[k+1])
		}
		if j.ProbeKey >= offsets[k+1] {
			return nil, sk, fmt.Errorf("engine: join probe key %d not resolved by the sides joined before table %q", j.ProbeKey, tables[k+1])
		}
		pf := keyFamily(combined.Column(j.ProbeKey).Type)
		bf := keyFamily(bsch.Column(j.BuildKey).Type)
		if pf != bf {
			return nil, sk, fmt.Errorf("engine: join keys %q and %q have incompatible types",
				combined.Column(j.ProbeKey).Name, bsch.Column(j.BuildKey).Name)
		}
		addNeeded(j.ProbeKey)
		if !seen[k+1][j.BuildKey] {
			seen[k+1][j.BuildKey] = true
			needed[k+1] = append(needed[k+1], j.BuildKey)
		}
		p.Stages[k].BuildKey = j.BuildKey
		p.Stages[k].ProbeKey = j.ProbeKey
	}

	mkSide := func(i int) (JoinSide, error) {
		q := Query{Projection: needed[i], Selection: sideSels[i], Snapshot: sideScans[i].Snapshot}
		if err := q.Validate(schemas[i]); err != nil {
			return JoinSide{}, fmt.Errorf("engine: join side %q: %w", tables[i], err)
		}
		if len(sideScans[i].Cols) == 0 {
			sideScans[i].Cols = q.NeededColumns()
		}
		return JoinSide{Table: tables[i], Query: q, Node: sideScans[i]}, nil
	}
	if p.Probe, err = mkSide(0); err != nil {
		return nil, sk, err
	}
	for k := range p.Stages {
		if p.Stages[k].Side, err = mkSide(k + 1); err != nil {
			return nil, sk, err
		}
	}
	p.layout()
	return p, sk, nil
}

// layout computes (once) the combined-column → (side, slot) mapping the
// probe's combined fetch uses.
func (p *JoinPlan) layout() ([]int, []int) {
	if p.colSide != nil {
		return p.colSide, p.colSlot
	}
	n := p.Schema.NumColumns()
	side := make([]int, n)
	slot := make([]int, n)
	for c := 0; c < n; c++ {
		s := 0
		for i := 1; i < len(p.Offsets); i++ {
			if c >= p.Offsets[i] {
				s = i
			}
		}
		side[c] = s
		if s == 0 {
			slot[c] = c
			continue
		}
		slot[c] = -1
		local := c - p.Offsets[s]
		for i, pc := range p.Stages[s-1].Side.Query.Projection {
			if pc == local {
				slot[c] = i
				break
			}
		}
	}
	p.colSide, p.colSlot = side, slot
	return side, slot
}

// runSink streams one join side through the scalar pipeline, handing every
// qualifying row to sink instead of a consumer. The side's span and
// breakdown close like any scan's, so join phases reconcile side by side.
// Sources must be constructed with ForceScalar where the engine has a batch
// path — the batch executors have no sink hook.
func runSink(src Source, q Query, label string, sink func(pr *pipeRun, fetch func(col int) table.Value)) (*Result, error) {
	sys, tr := src.sysTracer()
	sp := tr.Begin(label)
	sp.SetAttr("engine", src.Name())
	if t := src.tableLabel(); t != "" {
		sp.SetAttr("table", t)
	}
	defer tr.End()
	s, err := src.openScan(q, sp)
	if err != nil {
		return nil, err
	}
	if s.direct != nil || s.prog != nil {
		return nil, errors.New("engine: sink scan requires the scalar pipeline (construct the source with ForceScalar)")
	}
	s.name = src.Name()
	s.sys = sys
	s.tracer = tr
	s.sp = sp
	s.sink = sink
	return s.runScalar(q)
}

// copyValue detaches a value from source-owned buffers (fabric chunk data,
// base-heap rows) so build entries stay valid across chunk resets and
// concurrent writers.
func copyValue(v table.Value) table.Value {
	if v.Type == geometry.Char && v.Bytes != nil {
		b := make([]byte, len(v.Bytes))
		copy(b, v.Bytes)
		v.Bytes = b
	}
	return v
}

// buildJoinTables streams each build side into its stage's hash table,
// charging HashBuildCycles per inserted row inside the side's measured
// window. Entries hold the side projection's values in order.
func buildJoinTables(p *JoinPlan, builds []Source) ([]map[string][][]table.Value, []*Result, error) {
	if len(builds) != len(p.Stages) {
		return nil, nil, fmt.Errorf("engine: join plan has %d stages but %d build sources", len(p.Stages), len(builds))
	}
	p.layout()
	tables := make([]map[string][][]table.Value, len(p.Stages))
	results := make([]*Result, len(p.Stages))
	for k := range p.Stages {
		stage := &p.Stages[k]
		proj := stage.Side.Query.Projection
		keySlot := -1
		for i, c := range proj {
			if c == stage.BuildKey {
				keySlot = i
				break
			}
		}
		if keySlot < 0 {
			return nil, nil, fmt.Errorf("engine: stage %d build key %d missing from side projection", k, stage.BuildKey)
		}
		tbl := make(map[string][][]table.Value)
		var keyBuf []byte
		ks := keySlot
		res, err := runSink(builds[k], stage.Side.Query, fmt.Sprintf("build[%d]", k), func(pr *pipeRun, fetch func(int) table.Value) {
			pr.compute += HashBuildCycles
			entry := make([]table.Value, len(proj))
			for i, c := range proj {
				entry[i] = copyValue(fetch(c))
			}
			var ok bool
			keyBuf, ok = joinKeyTo(keyBuf[:0], entry[ks])
			if !ok {
				return // NaN keys never match
			}
			tbl[string(keyBuf)] = append(tbl[string(keyBuf)], entry)
		})
		if err != nil {
			return nil, nil, err
		}
		tables[k] = tbl
		results[k] = res
	}
	return tables, results, nil
}

// probeSemiJoin builds the fabric-side Bloom pre-filter for an offloaded
// probe scan from stage 0's finished hash table: every build key enters the
// filter, and the fabric drops probe rows whose key cannot be present before
// they ship. Stage 0's probe key is always probe-local (FromJoinPlan
// validates ProbeKey < Offsets[1]), so it addresses the probe table
// directly. The filter is populated during the build side's existing
// HashBuildCycles pass — inserting into a Bloom filter rides the same
// per-row hashing work, so no extra cycles are charged.
func probeSemiJoin(p *JoinPlan, tables []map[string][][]table.Value) *fabric.SemiJoin {
	if len(p.Stages) == 0 || len(tables) == 0 {
		return nil
	}
	bl := fabric.NewBloom(len(tables[0]))
	for k := range tables[0] {
		bl.Add([]byte(k))
	}
	return &fabric.SemiJoin{
		Col:    p.Stages[0].ProbeKey,
		Key:    joinKeyTo,
		Filter: bl,
	}
}

// newJoinProber returns the probe-side sink: for each probe row it walks
// the stages in order, looking up each stage's hash table by the combined
// row's probe-key value, and folds every fully matched combined row into
// cons. Consumer folding cycles land in the probe's measured window.
func newJoinProber(p *JoinPlan, tables []map[string][][]table.Value, cons *consumer, fold *uint64) func(pr *pipeRun, fetch func(col int) table.Value) {
	colSide, colSlot := p.layout()
	current := make([][]table.Value, len(p.Stages))
	var keyBuf []byte
	var probeFetch func(int) table.Value
	var pr *pipeRun
	combinedFetch := func(col int) table.Value {
		s := colSide[col]
		if s == 0 {
			return probeFetch(colSlot[col])
		}
		return current[s-1][colSlot[col]]
	}
	var descend func(stage int)
	descend = func(stage int) {
		if stage == len(p.Stages) {
			before := *fold
			cons.consumeRow(combinedFetch)
			pr.compute += *fold - before
			return
		}
		pr.compute += HashProbeCycles
		var ok bool
		keyBuf, ok = joinKeyTo(keyBuf[:0], combinedFetch(p.Stages[stage].ProbeKey))
		if !ok {
			return
		}
		for _, entry := range tables[stage][string(keyBuf)] {
			current[stage] = entry
			descend(stage + 1)
		}
	}
	return func(run *pipeRun, fetch func(col int) table.Value) {
		pr, probeFetch = run, fetch
		descend(0)
	}
}

func addBreakdown(dst *Breakdown, b Breakdown) {
	dst.ComputeCycles += b.ComputeCycles
	dst.MemDemandCycles += b.MemDemandCycles
	dst.ProducerCycles += b.ProducerCycles
	dst.BytesFromDRAM += b.BytesFromDRAM
	dst.BytesToCPU += b.BytesToCPU
	dst.PipelineCycles += b.PipelineCycles
	dst.TotalCycles += b.TotalCycles
}

// JoinExec executes a JoinPlan single-goroutine: build phases run first,
// then the probe side streams once — never materialized — through the
// multi-stage prober. Every side is a Source, so RM can feed either side a
// packed column group while ROW probes the base heap, and each phase's span
// reconciles with its share of the summed Breakdown.
type JoinExec struct {
	Plan   *JoinPlan
	Probe  Source
	Builds []Source // one per stage, in stage order
}

// Execute runs the join and returns the consumed result; RowsPassed is the
// join cardinality reaching the consumer.
func (e *JoinExec) Execute() (*Result, error) {
	p := e.Plan
	if p == nil || e.Probe == nil {
		return nil, errors.New("engine: JoinExec needs a plan and a probe source")
	}
	_, tr := e.Probe.sysTracer()
	name := e.Probe.Name()
	sp := beginEngineSpan(tr, name, p.Probe.Table)
	sp.SetAttr("join_stages", strconv.Itoa(len(p.Stages)))
	defer tr.End()

	tables, buildRes, err := buildJoinTables(p, e.Builds)
	if err != nil {
		return nil, err
	}

	// An offloaded RM probe gets the build side's Bloom filter pushed into
	// the fabric: probe chunks are pre-filtered near data, so rows that
	// cannot join never cross to the CPU.
	if rm, ok := e.Probe.(*RMEngine); ok && rm.Offload && rm.SemiJoin == nil {
		if semi := probeSemiJoin(p, tables); semi != nil {
			rm.SemiJoin = semi
			sp.SetAttr("probe_filter", "bloom")
		}
	}

	var fold uint64
	cons := newConsumer(p.Consume, p.Schema, &fold)
	probeRes, err := runSink(e.Probe, p.Probe.Query, "probe", newJoinProber(p, tables, cons, &fold))
	if err != nil {
		return nil, err
	}

	res := cons.finish(name, probeRes.RowsScanned)
	res.Breakdown = probeRes.Breakdown
	res.Offload = probeRes.Offload
	stampSideAct(p.Probe.Node, probeRes)
	for k, br := range buildRes {
		res.RowsScanned += br.RowsScanned
		addBreakdown(&res.Breakdown, br.Breakdown)
		stampSideAct(p.Stages[k].Side.Node, br)
	}
	return res, nil
}

// stampSideAct records what one join side actually did onto its Scan node,
// the per-side half of the estimated-vs-actual pair EXPLAIN ANALYZE renders.
func stampSideAct(n *plan.Node, r *Result) {
	if n == nil || r == nil {
		return
	}
	n.Act = &plan.Act{
		RowsScanned: r.RowsScanned,
		RowsPassed:  r.RowsPassed,
		Cycles:      r.Breakdown.TotalCycles,
	}
}

// ParallelJoinExec is the morsel-parallel join: build sides run once on the
// shared System, then the probe table's row range splits into fixed-size
// morsels that workers stream on RM sources of private System clones,
// probing the shared read-only hash tables. Partials merge in morsel order,
// so results are deterministic for any worker count, exactly like
// ParallelEngine.
type ParallelJoinExec struct {
	Plan     *JoinPlan
	ProbeTbl *table.Table
	Sys      *System
	Par      ParallelConfig
	Builds   []Source // build sources over the shared System, in stage order

	// Offload runs each morsel's probe scan in offload mode with the build
	// side's Bloom filter pushed into the worker's fabric, pre-filtering
	// probe chunks near data.
	Offload bool

	Tracer *obs.Tracer
	Reg    *obs.Registry
}

// Execute runs the parallel join and returns the merged result.
func (e *ParallelJoinExec) Execute() (*Result, error) {
	p := e.Plan
	if p == nil || e.ProbeTbl == nil || e.Sys == nil {
		return nil, errors.New("engine: ParallelJoinExec needs a plan, a probe table, and a system")
	}
	par := e.Par.normalized()
	sp := beginEngineSpan(e.Tracer, "PAR", p.Probe.Table)
	sp.SetAttr("join_stages", strconv.Itoa(len(p.Stages)))
	defer e.Tracer.End()

	tables, buildRes, err := buildJoinTables(p, e.Builds)
	if err != nil {
		return nil, err
	}

	// The Bloom filter is built once and shared read-only by every worker's
	// fabric; the Key closure is stateless, so concurrent probes are safe.
	var semi *fabric.SemiJoin
	if e.Offload {
		if semi = probeSemiJoin(p, tables); semi != nil {
			sp.SetAttr("probe_filter", "bloom")
		}
	}

	rows := e.ProbeTbl.NumRows()
	numMorsels := (rows + par.MorselRows - 1) / par.MorselRows
	if numMorsels == 0 {
		numMorsels = 1
	}
	workers := par.Workers
	if workers > numMorsels {
		workers = numMorsels
	}

	parts := make([]*Result, numMorsels)
	passed := make([]int64, numMorsels) // per-morsel probe rows surviving selection
	errs := make([]error, numMorsels)
	var tracers []*obs.Tracer
	if sp != nil {
		tracers = make([]*obs.Tracer, numMorsels)
		for i := range tracers {
			tracers[i] = obs.NewTracer(morselSpanName(i))
		}
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= numMorsels {
					return
				}
				var tr *obs.Tracer
				if tracers != nil {
					tr = tracers[i]
				}
				parts[i], passed[i], errs[i] = e.runMorsel(tables, semi, i, par.MorselRows, rows, tr)
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("engine: join morsel %d: %w", i, err)
		}
	}
	res, err := mergePartials("PAR", p.Consume, parts, workers)
	if err != nil {
		return nil, err
	}
	if len(parts) > 0 {
		res.Offload = parts[0].Offload
	}
	probeTotal := res.Breakdown.TotalCycles
	if p.Probe.Node != nil {
		var probePassed int64
		for _, n := range passed {
			probePassed += n
		}
		p.Probe.Node.Act = &plan.Act{
			RowsScanned: res.RowsScanned,
			RowsPassed:  probePassed,
			Cycles:      probeTotal,
		}
	}
	for k, br := range buildRes {
		res.RowsScanned += br.RowsScanned
		addBreakdown(&res.Breakdown, br.Breakdown)
		stampSideAct(p.Stages[k].Side.Node, br)
	}
	if sp != nil {
		mergeCharge := uint64(len(parts)) * MergeCyclesPerPartial
		sp.Leaf("schedule.makespan", probeTotal-mergeCharge, 0)
		sp.Leaf("merge", mergeCharge, 0)
		sp.SetAttr("workers", strconv.Itoa(workers))
		sp.SetAttr("morsels", strconv.Itoa(numMorsels))
		sp.SetAttr("morsel_rows", strconv.Itoa(par.MorselRows))
		detail := sp.AddChild("morsels")
		detail.Detail = true
		partTotals := make([]uint64, len(parts))
		for i, pt := range parts {
			partTotals[i] = pt.Breakdown.TotalCycles
		}
		workerOf, starts, _ := ScheduleAssignments(partTotals, workers)
		tl := e.Tracer.Timeline()
		for i, tr := range tracers {
			root := tr.Root()
			root.SetAttr("worker", strconv.Itoa(workerOf[i]))
			root.SetAttr("start_cycles", strconv.FormatUint(starts[i], 10))
			detail.Adopt(root)
			tl.AddWorkerSlice(workerOf[i], morselSpanName(i), starts[i], partTotals[i])
		}
		tl.TickThrough(res.Breakdown.TotalCycles)
	}
	if e.Reg != nil {
		labels := obs.Labels{"table": p.Probe.Table}
		e.Reg.Counter("rfabric_par_queries_total", labels).Add(1)
		e.Reg.Counter("rfabric_par_morsels_total", labels).Add(uint64(numMorsels))
		e.Reg.Counter("rfabric_par_makespan_cycles_total", labels).Add(res.Breakdown.TotalCycles)
		e.Reg.Histogram("rfabric_par_morsel_cycles", labels).Observe(float64(res.Breakdown.TotalCycles) / float64(numMorsels))
	}
	return res, nil
}

// runMorsel probes one probe-table slice on a fresh System clone, folding
// matches into a morsel-private consumer whose partial the coordinator
// merges in morsel order.
func (e *ParallelJoinExec) runMorsel(tables []map[string][][]table.Value, semi *fabric.SemiJoin, i, morselRows, totalRows int, tr *obs.Tracer) (*Result, int64, error) {
	lo := i * morselRows
	hi := lo + morselRows
	if hi > totalRows {
		hi = totalRows
	}
	if lo > totalRows {
		lo = totalRows
	}
	slice, err := e.ProbeTbl.Slice(lo, hi)
	if err != nil {
		return nil, 0, err
	}
	sys, err := e.Sys.Clone()
	if err != nil {
		return nil, 0, err
	}
	src := &RMEngine{Tbl: slice, Sys: sys, Tracer: tr, ForceScalar: true, Offload: e.Offload, SemiJoin: semi}
	var fold uint64
	cons := newConsumer(e.Plan.Consume, e.Plan.Schema, &fold)
	probeRes, err := runSink(src, e.Plan.Probe.Query, "probe", newJoinProber(e.Plan, tables, cons, &fold))
	if err != nil {
		return nil, 0, err
	}
	part := cons.finish("RM", probeRes.RowsScanned)
	part.Breakdown = probeRes.Breakdown
	// The morsel's probe-side survivor count rides back separately: the
	// partial's RowsPassed is the join output cardinality, not the probe
	// side's own selectivity, and the coordinator stamps the summed probe
	// actuals onto the probe Scan node after the barrier.
	return part, probeRes.RowsPassed, nil
}
