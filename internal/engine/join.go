package engine

import (
	"errors"
	"fmt"

	"rfabric/internal/colstore"
	"rfabric/internal/expr"
	"rfabric/internal/fabric"
	"rfabric/internal/geometry"
	"rfabric/internal/table"
)

// Join support. The paper's evaluation stops at single-table scans, but its
// architecture section envisions a full query engine over the fabric
// (§III-B: a "novel full-fledged hybrid query engine ... working on the
// same base data"). This file provides the equi-hash-join each execution
// path needs for that: build on the right input, probe with the left, with
// every byte of both inputs flowing through the path's native access
// method — volcano row fetches, columnar arrays, or ephemeral views.

// JoinInput describes one side of an equi-join.
type JoinInput struct {
	// On is the equality column (schema index of this side's table).
	On int
	// Projection is the columns this side contributes to the output.
	Projection []int
	// Selection filters this side before the join.
	Selection expr.Conjunction
	// Snapshot applies MVCC visibility (tables with headers only).
	Snapshot *uint64
}

// Validate checks the input against its schema.
func (in JoinInput) Validate(s *geometry.Schema) error {
	if in.On < 0 || in.On >= s.NumColumns() {
		return fmt.Errorf("engine: join column %d out of range [0,%d)", in.On, s.NumColumns())
	}
	switch s.Column(in.On).Type {
	case geometry.Char:
		return errors.New("engine: joins on CHAR columns are not supported")
	}
	if len(in.Projection) == 0 {
		return errors.New("engine: join side projects nothing")
	}
	for _, c := range in.Projection {
		if c < 0 || c >= s.NumColumns() {
			return fmt.Errorf("engine: join projection column %d out of range", c)
		}
	}
	return in.Selection.Validate(s)
}

// neededColumns returns the side's touched columns: join key, projection,
// selection.
func (in JoinInput) neededColumns() []int {
	seen := map[int]bool{}
	var out []int
	add := func(c int) {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	add(in.On)
	for _, c := range in.Projection {
		add(c)
	}
	for _, c := range in.Selection.Columns() {
		add(c)
	}
	return out
}

// JoinResult is the outcome of one join execution.
type JoinResult struct {
	Engine string
	// Matches is the join cardinality.
	Matches int64
	// Checksum is an order-insensitive fold over every output pair's
	// projected values; all engines produce the same value for the same
	// logical result.
	Checksum  uint64
	Breakdown Breakdown
}

// Join cost constants (CPU cycles).
const (
	// HashBuildCycles is charged per build-side row inserted.
	HashBuildCycles = 16
	// HashProbeCycles is charged per probe-side lookup.
	HashProbeCycles = 10
)

// joinRow is one build-side entry: the key and the side's projected hash.
type joinRow struct {
	hash uint64
}

// rowReader abstracts how an execution path surfaces qualifying rows of one
// input: it invokes yield with a fetcher over the side's schema for every
// row that passes selection and visibility.
type rowReader func(yield func(fetch func(col int) table.Value)) error

// runJoin executes build+probe given the two sides' readers.
func runJoin(name string, left, right JoinInput, readLeft, readRight rowReader, compute *uint64) (*JoinResult, error) {

	// Build on the right.
	build := make(map[int64][]joinRow)
	err := readRight(func(fetch func(col int) table.Value) {
		*compute += HashBuildCycles
		key := fetch(right.On).Int
		var h uint64
		for _, c := range right.Projection {
			h += hashValue(c+1024, fetch(c)) // offset right columns' ids
		}
		build[key] = append(build[key], joinRow{hash: h})
	})
	if err != nil {
		return nil, err
	}

	// Probe with the left.
	res := &JoinResult{Engine: name}
	err = readLeft(func(fetch func(col int) table.Value) {
		*compute += HashProbeCycles
		key := fetch(left.On).Int
		entries, ok := build[key]
		if !ok {
			return
		}
		var lh uint64
		for _, c := range left.Projection {
			lh += hashValue(c, fetch(c))
		}
		for _, e := range entries {
			res.Matches++
			res.Checksum += mix64(lh) + mix64(e.hash)
			*compute += ChecksumCycles
		}
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// mix64 is a finalizer so pair checksums don't cancel across pairs.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// HashJoinRow runs the join tuple-at-a-time over two row tables.
func HashJoinRow(sys *System, leftTbl, rightTbl *table.Table, left, right JoinInput) (*JoinResult, error) {
	if err := validateJoin(sys, leftTbl, rightTbl, left, right); err != nil {
		return nil, err
	}
	memStart := sys.Mem.Stats()
	hierStart := sys.Hier.Stats()
	var compute uint64

	reader := func(tbl *table.Table, in JoinInput) rowReader {
		return func(yield func(fetch func(col int) table.Value)) error {
			sch := tbl.Schema()
			for r := 0; r < tbl.NumRows(); r++ {
				compute += VolcanoNextCycles
				if tbl.HasMVCC() {
					sys.Hier.Load(tbl.RowAddr(r))
					if in.Snapshot != nil {
						compute += TSCheckSoftwareCycles
						if !tbl.VisibleAt(r, *in.Snapshot) {
							continue
						}
					}
				}
				payload := tbl.RowPayload(r)
				row := r
				fetch := func(col int) table.Value {
					sys.Hier.Load(tbl.ColumnAddr(row, col))
					compute += ExtractCycles
					return table.DecodeColumn(sch.Column(col), payload[sch.Offset(col):])
				}
				pass := true
				for _, p := range in.Selection {
					compute += PredEvalCycles
					if !p.Eval(fetch(p.Col)) {
						pass = false
						break
					}
				}
				if pass {
					yield(fetch)
				}
			}
			return nil
		}
	}

	res, err := runJoin("ROW", left, right, reader(leftTbl, left), reader(rightTbl, right), &compute)
	if err != nil {
		return nil, err
	}
	res.Breakdown = demandBreakdown(sys, memStart, hierStart, compute)
	return res, nil
}

// HashJoinCol runs the join over two columnar copies.
func HashJoinCol(sys *System, leftStore, rightStore *colstore.Store, left, right JoinInput) (*JoinResult, error) {
	if sys == nil || leftStore == nil || rightStore == nil {
		return nil, errors.New("engine: HashJoinCol needs a system and two stores")
	}
	if left.Snapshot != nil || right.Snapshot != nil {
		return nil, errors.New("engine: columnar copies do not support MVCC snapshots")
	}
	if err := left.Validate(leftStore.Schema()); err != nil {
		return nil, err
	}
	if err := right.Validate(rightStore.Schema()); err != nil {
		return nil, err
	}
	memStart := sys.Mem.Stats()
	hierStart := sys.Hier.Stats()
	var compute uint64

	reader := func(store *colstore.Store, in JoinInput) rowReader {
		return func(yield func(fetch func(col int) table.Value)) error {
			sch := store.Schema()
			for r := 0; r < store.NumRows(); r++ {
				row := r
				fetch := func(col int) table.Value {
					w := sch.Column(col).Width
					sys.Hier.Load(store.ValueAddr(col, row))
					compute += VectorOpCycles
					return table.DecodeColumn(sch.Column(col), store.ColumnData(col)[row*w:])
				}
				pass := true
				for _, p := range in.Selection {
					compute += VectorOpCycles
					if !p.Eval(fetch(p.Col)) {
						pass = false
						break
					}
				}
				if pass {
					yield(fetch)
				}
			}
			return nil
		}
	}

	res, err := runJoin("COL", left, right, reader(leftStore, left), reader(rightStore, right), &compute)
	if err != nil {
		return nil, err
	}
	res.Breakdown = demandBreakdown(sys, memStart, hierStart, compute)
	return res, nil
}

// HashJoinRM runs the join over two ephemeral views: each side's needed
// columns are packed and shipped by the fabric, and the CPU builds/probes
// over dense data — the paper's "same base data, any processing layout".
func HashJoinRM(sys *System, leftTbl, rightTbl *table.Table, left, right JoinInput) (*JoinResult, error) {
	if err := validateJoin(sys, leftTbl, rightTbl, left, right); err != nil {
		return nil, err
	}
	memStart := sys.Mem.Stats()
	hierStart := sys.Hier.Stats()
	fabStart := sys.Fab.Stats()
	var compute uint64
	var pipeline, producer uint64

	reader := func(tbl *table.Table, in JoinInput) (rowReader, error) {
		geom, err := geometry.NewGeometry(tbl.Schema(), in.neededColumns()...)
		if err != nil {
			return nil, err
		}
		var opts []fabric.ViewOption
		if in.Snapshot != nil {
			opts = append(opts, fabric.WithSnapshot(*in.Snapshot))
		}
		if len(in.Selection) > 0 {
			opts = append(opts, fabric.WithSelection(in.Selection))
		}
		ev, err := sys.Fab.Configure(tbl, geom, opts...)
		if err != nil {
			return nil, err
		}
		sch := tbl.Schema()
		packed := ev.PackedWidth()
		offs := map[int]int{}
		for i, c := range geom.Columns() {
			offs[c] = geom.PackedOffset(i)
		}
		lineBytes := int64(sys.Hier.LineBytes())
		return func(yield func(fetch func(col int) table.Value)) error {
			ev.Reset()
			for {
				before := sys.Hier.Stats().Cycles
				computeBefore := compute
				ch, ok := ev.Next()
				if !ok {
					return nil
				}
				lines := (len(ch.Data) + int(lineBytes) - 1) / int(lineBytes)
				for i := 0; i < lines; i++ {
					sys.Hier.FillFromFabric(ch.BaseAddr + int64(i)*lineBytes)
				}
				for r := 0; r < ch.Rows; r++ {
					row := r
					fetch := func(col int) table.Value {
						off := offs[col]
						w := sch.Column(col).Width
						sys.Hier.Load(ch.BaseAddr + int64(row*packed+off))
						compute += VectorOpCycles
						return table.DecodeColumn(sch.Column(col), ch.Data[row*packed+off:row*packed+off+w])
					}
					yield(fetch)
				}
				consumer := (sys.Hier.Stats().Cycles - before) + (compute - computeBefore)
				producer += ch.ProducerCycles
				if ch.ProducerCycles > consumer {
					pipeline += ch.ProducerCycles
				} else {
					pipeline += consumer
				}
			}
		}, nil
	}

	readLeft, err := reader(leftTbl, left)
	if err != nil {
		return nil, err
	}
	readRight, err := reader(rightTbl, right)
	if err != nil {
		return nil, err
	}
	res, err := runJoin("RM", left, right, readLeft, readRight, &compute)
	if err != nil {
		return nil, err
	}
	shipped := sys.Fab.Stats().BytesShipped - fabStart.BytesShipped
	res.Breakdown = pipelineBreakdown(sys, memStart, hierStart, compute, pipeline, producer, shipped)
	return res, nil
}

func validateJoin(sys *System, leftTbl, rightTbl *table.Table, left, right JoinInput) error {
	if sys == nil || leftTbl == nil || rightTbl == nil {
		return errors.New("engine: join needs a system and two tables")
	}
	if err := left.Validate(leftTbl.Schema()); err != nil {
		return fmt.Errorf("left: %w", err)
	}
	if err := right.Validate(rightTbl.Schema()); err != nil {
		return fmt.Errorf("right: %w", err)
	}
	if left.Snapshot != nil && !leftTbl.HasMVCC() {
		return errors.New("engine: left snapshot over a table without MVCC")
	}
	if right.Snapshot != nil && !rightTbl.HasMVCC() {
		return errors.New("engine: right snapshot over a table without MVCC")
	}
	return nil
}
