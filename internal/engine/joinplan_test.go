package engine

import (
	"math/rand"
	"testing"

	"rfabric/internal/expr"
	"rfabric/internal/geometry"
	"rfabric/internal/obs"
	"rfabric/internal/plan"
	"rfabric/internal/table"
)

// joinPlanFixture holds two correlated tables on one System: a fact table
// (fk BIGINT, val DOUBLE, tag CHAR(4)) and a dimension (id BIGINT, w INT).
type joinPlanFixture struct {
	sys  *System
	fact *table.Table
	dim  *table.Table
}

func factSchema() *geometry.Schema {
	return geometry.MustSchema(
		geometry.Column{Name: "fk", Type: geometry.Int64, Width: 8},
		geometry.Column{Name: "val", Type: geometry.Float64, Width: 8},
		geometry.Column{Name: "tag", Type: geometry.Char, Width: 4},
	)
}

func dimSchema() *geometry.Schema {
	return geometry.MustSchema(
		geometry.Column{Name: "id", Type: geometry.Int64, Width: 8},
		geometry.Column{Name: "w", Type: geometry.Int32, Width: 4},
	)
}

// buildJoinTable materializes rows into a relocated table on sys's arena.
func buildJoinTable(t *testing.T, sys *System, name string, sch *geometry.Schema, rows [][]table.Value, mvcc bool) *table.Table {
	t.Helper()
	var opts []table.Option
	if mvcc {
		opts = append(opts, table.WithMVCC())
	}
	tbl := table.MustNew(name, sch, opts...)
	for _, vals := range rows {
		tbl.MustAppend(1, vals...)
	}
	base := sys.Arena.Alloc(int64(tbl.SizeBytes()))
	return relocate(t, tbl, base)
}

func newJoinPlanFixture(t *testing.T, factRows, dimRows int, seed int64) *joinPlanFixture {
	t.Helper()
	sys := MustSystem(DefaultSystemConfig())
	rng := rand.New(rand.NewSource(seed))
	tags := []string{"AA", "BB", "CC"}
	fr := make([][]table.Value, factRows)
	for i := range fr {
		fr[i] = []table.Value{
			table.I64(int64(rng.Intn(dimRows + 2))), // some keys dangle
			table.F64(float64(rng.Intn(1000)) / 10),
			table.Str(tags[rng.Intn(len(tags))]),
		}
	}
	dr := make([][]table.Value, dimRows)
	for i := range dr {
		dr[i] = []table.Value{
			table.I64(int64(i % (dimRows/2 + 1))), // duplicate keys
			table.I32(int32(rng.Intn(5))),
		}
	}
	return &joinPlanFixture{
		sys:  sys,
		fact: buildJoinTable(t, sys, "fact", factSchema(), fr, false),
		dim:  buildJoinTable(t, sys, "dim", dimSchema(), dr, false),
	}
}

func (f *joinPlanFixture) lookup(name string) (*geometry.Schema, error) {
	switch name {
	case "fact":
		return f.fact.Schema(), nil
	default:
		return f.dim.Schema(), nil
	}
}

// materialize reads every row of a table into boxed values.
func materialize(tbl *table.Table) [][]table.Value {
	sch := tbl.Schema()
	out := make([][]table.Value, tbl.NumRows())
	for r := range out {
		row := make([]table.Value, sch.NumColumns())
		payload := tbl.RowPayload(r)
		for c := range row {
			row[c] = table.DecodeColumn(sch.Column(c), payload[sch.Offset(c):])
		}
		out[r] = row
	}
	return out
}

// referenceJoin nested-loops the join plan over materialized tables and
// folds the matches through the same consumer the engines use, producing
// the ground-truth Result shape.
func referenceJoin(p *JoinPlan, probe [][]table.Value, builds ...[][]table.Value) *Result {
	passes := func(row []table.Value, sel expr.Conjunction) bool {
		for _, pr := range sel {
			if !pr.Eval(row[pr.Col]) {
				return false
			}
		}
		return true
	}
	match := func(a, b table.Value) bool {
		ka, okA := joinKeyTo(nil, a)
		kb, okB := joinKeyTo(nil, b)
		return okA && okB && string(ka) == string(kb)
	}
	var fold uint64
	cons := newConsumer(p.Consume, p.Schema, &fold)
	var descend func(stage int, combined []table.Value)
	descend = func(stage int, combined []table.Value) {
		if stage == len(p.Stages) {
			cons.consumeRow(func(c int) table.Value { return combined[c] })
			return
		}
		st := p.Stages[stage]
		for _, brow := range builds[stage] {
			if !passes(brow, st.Side.Query.Selection) {
				continue
			}
			if !match(combined[st.ProbeKey], brow[st.BuildKey]) {
				continue
			}
			descend(stage+1, append(combined[:len(combined):len(combined)], brow...))
		}
	}
	for _, prow := range probe {
		if !passes(prow, p.Probe.Query.Selection) {
			continue
		}
		descend(0, prow)
	}
	return cons.finish("REF", 0)
}

// q3ClassPlan builds fact ⋈ dim with a selection on each side and grouped
// aggregation over the combined namespace. Combined columns: fact(0..2)
// ++ dim(3..4).
func q3ClassPlan(f *joinPlanFixture, t *testing.T) *JoinPlan {
	t.Helper()
	probe := plan.NewScan("fact", "", nil).
		Filter(expr.Conjunction{{Col: 1, Op: expr.Lt, Operand: table.F64(80)}})
	build := plan.NewScan("dim", "", nil).
		Filter(expr.Conjunction{{Col: 1, Op: expr.Ge, Operand: table.I32(1)}})
	root := probe.Join(build, 0, 0).
		Aggregate([]int{4}, []plan.Agg{
			{Kind: expr.Sum, Arg: expr.ColRef{Col: 1}},
			{Kind: expr.Count},
		})
	p, sk, err := FromJoinPlan(root, f.lookup)
	if err != nil {
		t.Fatalf("FromJoinPlan: %v", err)
	}
	if !sk.Empty() {
		t.Fatalf("unexpected sinks: %+v", sk)
	}
	return p
}

func TestJoinExecMatchesReference(t *testing.T) {
	f := newJoinPlanFixture(t, 2000, 60, 7)
	p := q3ClassPlan(f, t)
	ref := referenceJoin(p, materialize(f.fact), materialize(f.dim))
	if ref.RowsPassed == 0 {
		t.Fatal("reference join produced no rows; fixture is too sparse")
	}

	probes := map[string]func() Source{
		"ROW": func() Source { return &RowEngine{Tbl: f.fact, Sys: f.sys, ForceScalar: true} },
		"RM":  func() Source { return &RMEngine{Tbl: f.fact, Sys: f.sys, ForceScalar: true} },
	}
	for name, mk := range probes {
		f.sys.ResetState()
		ex := &JoinExec{
			Plan:   p,
			Probe:  mk(),
			Builds: []Source{&RowEngine{Tbl: f.dim, Sys: f.sys, ForceScalar: true}},
		}
		got, err := ex.Execute()
		if err != nil {
			t.Fatalf("%s probe: %v", name, err)
		}
		if err := got.EquivalentTo(ref, 1e-9); err != nil {
			t.Errorf("%s probe disagrees with reference: %v", name, err)
		}
		wantScanned := int64(f.fact.NumRows() + f.dim.NumRows())
		if got.RowsScanned != wantScanned {
			t.Errorf("%s probe scanned %d rows, want %d", name, got.RowsScanned, wantScanned)
		}
	}
}

func TestJoinExecSpanReconciliation(t *testing.T) {
	f := newJoinPlanFixture(t, 1200, 40, 11)
	p := q3ClassPlan(f, t)
	tr := obs.NewTracer("join")
	ex := &JoinExec{
		Plan:   p,
		Probe:  &RowEngine{Tbl: f.fact, Sys: f.sys, Tracer: tr, ForceScalar: true},
		Builds: []Source{&RowEngine{Tbl: f.dim, Sys: f.sys, Tracer: tr, ForceScalar: true}},
	}
	res, err := ex.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Root().AttributedCycles(); got != res.Breakdown.TotalCycles {
		t.Errorf("root span attributes %d cycles, breakdown totals %d", got, res.Breakdown.TotalCycles)
	}
}

func TestParallelJoinExecMatchesSerial(t *testing.T) {
	f := newJoinPlanFixture(t, 3000, 80, 13)
	p := q3ClassPlan(f, t)

	f.sys.ResetState()
	serial := &JoinExec{
		Plan:   p,
		Probe:  &RMEngine{Tbl: f.fact, Sys: f.sys, ForceScalar: true},
		Builds: []Source{&RMEngine{Tbl: f.dim, Sys: f.sys, ForceScalar: true}},
	}
	want, err := serial.Execute()
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 3, 8} {
		f.sys.ResetState()
		tr := obs.NewTracer("parjoin")
		par := &ParallelJoinExec{
			Plan:     p,
			ProbeTbl: f.fact,
			Sys:      f.sys,
			Par:      ParallelConfig{Workers: workers, MorselRows: 512},
			Builds:   []Source{&RMEngine{Tbl: f.dim, Sys: f.sys, Tracer: tr, ForceScalar: true}},
			Tracer:   tr,
		}
		got, err := par.Execute()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := got.EquivalentTo(want, 1e-9); err != nil {
			t.Errorf("workers=%d disagrees with serial join: %v", workers, err)
		}
		if got.RowsScanned != want.RowsScanned {
			t.Errorf("workers=%d scanned %d rows, want %d", workers, got.RowsScanned, want.RowsScanned)
		}
		if at := tr.Root().AttributedCycles(); at != got.Breakdown.TotalCycles {
			t.Errorf("workers=%d: root span attributes %d cycles, breakdown totals %d", workers, at, got.Breakdown.TotalCycles)
		}
	}

	// Reproducibility: the same configuration yields the same modeled cost
	// regardless of goroutine interleaving. (Across worker counts only the
	// makespan changes — the cost model rewards parallelism.)
	run := func() uint64 {
		f.sys.ResetState()
		r, err := (&ParallelJoinExec{Plan: p, ProbeTbl: f.fact, Sys: f.sys,
			Par:    ParallelConfig{Workers: 4, MorselRows: 512},
			Builds: []Source{&RMEngine{Tbl: f.dim, Sys: f.sys, ForceScalar: true}}}).Execute()
		if err != nil {
			t.Fatal(err)
		}
		return r.Breakdown.TotalCycles
	}
	if a, b := run(), run(); a != b {
		t.Errorf("modeled cycles differ across identical runs: %d vs %d", a, b)
	}
}

func TestFromJoinPlanRejectsBadTrees(t *testing.T) {
	f := newJoinPlanFixture(t, 10, 5, 1)
	cases := []struct {
		name string
		root *plan.Node
	}{
		{"key type mismatch", plan.NewScan("fact", "", nil).
			Join(plan.NewScan("dim", "", nil), 1 /* val: float */, 0 /* id: int */).
			Aggregate([]int{4}, []plan.Agg{{Kind: expr.Count}})},
		{"probe key in build range", plan.NewScan("fact", "", nil).
			Join(plan.NewScan("dim", "", nil), 3, 0).
			Aggregate([]int{4}, []plan.Agg{{Kind: expr.Count}})},
		{"build key out of range", plan.NewScan("fact", "", nil).
			Join(plan.NewScan("dim", "", nil), 0, 9).
			Aggregate([]int{4}, []plan.Agg{{Kind: expr.Count}})},
	}
	for _, tc := range cases {
		if _, _, err := FromJoinPlan(tc.root, f.lookup); err == nil {
			t.Errorf("%s: FromJoinPlan accepted an invalid tree", tc.name)
		}
	}
}

func TestJoinSchemaQualifiesDuplicates(t *testing.T) {
	a := geometry.MustSchema(
		geometry.Column{Name: "id", Type: geometry.Int64, Width: 8},
		geometry.Column{Name: "x", Type: geometry.Int32, Width: 4},
	)
	b := geometry.MustSchema(
		geometry.Column{Name: "id", Type: geometry.Int64, Width: 8},
		geometry.Column{Name: "y", Type: geometry.Int32, Width: 4},
	)
	sch, offs, err := JoinSchema([]string{"l", "r"}, []*geometry.Schema{a, b})
	if err != nil {
		t.Fatal(err)
	}
	wantNames := []string{"l.id", "x", "r.id", "y"}
	for i, w := range wantNames {
		if got := sch.Column(i).Name; got != w {
			t.Errorf("column %d named %q, want %q", i, got, w)
		}
	}
	if offs[0] != 0 || offs[1] != 2 {
		t.Errorf("offsets = %v, want [0 2]", offs)
	}
}
