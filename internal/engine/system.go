package engine

import (
	"rfabric/internal/cache"
	"rfabric/internal/dram"
	"rfabric/internal/fabric"
	"rfabric/internal/obs"
)

// SystemConfig bundles the full simulated platform: DRAM, cache hierarchy,
// and the fabric device.
type SystemConfig struct {
	DRAM   dram.Config
	Cache  cache.HierarchyConfig
	Fabric fabric.Config
}

// DefaultSystemConfig mirrors the paper's target platform proportions (§V).
func DefaultSystemConfig() SystemConfig {
	return SystemConfig{
		DRAM:   dram.DefaultConfig(),
		Cache:  cache.DefaultHierarchy(),
		Fabric: fabric.DefaultConfig(),
	}
}

// System is one simulated machine instance: a DRAM module shared by the CPU
// cache hierarchy and the fabric engine, plus an address arena for placing
// tables, column arrays, and delivery windows. Engines executing on the same
// System share cache and DRAM state, like processes on one machine; the
// experiment harness builds a fresh System per measured run.
type System struct {
	Cfg   SystemConfig
	Mem   *dram.Module
	Hier  *cache.Hierarchy
	Fab   *fabric.Engine
	Arena *dram.Arena
}

// NewSystem builds a machine from cfg.
func NewSystem(cfg SystemConfig) (*System, error) {
	mem, err := dram.New(cfg.DRAM)
	if err != nil {
		return nil, err
	}
	hier, err := cache.NewHierarchy(cfg.Cache, mem)
	if err != nil {
		return nil, err
	}
	arena, err := dram.NewArena(0, int64(cfg.DRAM.LineBytes))
	if err != nil {
		return nil, err
	}
	fab, err := fabric.New(cfg.Fabric, mem, arena)
	if err != nil {
		return nil, err
	}
	return &System{Cfg: cfg, Mem: mem, Hier: hier, Fab: fab, Arena: arena}, nil
}

// MustSystem is NewSystem panicking on error, for fixtures.
func MustSystem(cfg SystemConfig) *System {
	s, err := NewSystem(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// AttachTimeline points every hardware layer's sampler hook at tl for the
// duration of one traced query. Pass nil (or call DetachTimeline) to stop
// sampling. Clones made while attached do not inherit the hook.
func (s *System) AttachTimeline(tl *obs.Timeline) {
	s.Mem.SetTimeline(tl)
	s.Hier.SetTimeline(tl)
	s.Fab.SetTimeline(tl)
}

// DetachTimeline removes the sampler hooks installed by AttachTimeline.
func (s *System) DetachTimeline() { s.AttachTimeline(nil) }

// ResetState flushes caches, DRAM row buffers, and all statistics, keeping
// allocations. Call it between measured runs on a shared System.
func (s *System) ResetState() {
	s.Hier.Reset()
	s.Mem.Reset()
	s.Fab.ResetStats()
}

// Clone builds an independent machine with the same configuration: fresh
// DRAM module, cold caches, fresh fabric engine, zero statistics. The
// clone's arena starts at the parent arena's next free address, so objects
// placed in the parent (tables, column arrays) never collide with the
// clone's own allocations (fabric delivery windows).
//
// Ownership rule: a System and everything hanging off it (Mem, Hier, Fab)
// is single-goroutine state — none of it is safe for concurrent use.
// Concurrent executors must each own a clone and never share one; the
// parent may be read (Cfg, Arena.Next) but not driven while clones run.
// `go test -race ./...` enforces this throughout the repository.
func (s *System) Clone() (*System, error) {
	mem := s.Mem.Clone()
	hier, err := s.Hier.Clone(mem)
	if err != nil {
		return nil, err
	}
	arena, err := dram.NewArena(s.Arena.Next(), int64(s.Cfg.DRAM.LineBytes))
	if err != nil {
		return nil, err
	}
	fab, err := s.Fab.Clone(mem, arena)
	if err != nil {
		return nil, err
	}
	return &System{Cfg: s.Cfg, Mem: mem, Hier: hier, Fab: fab, Arena: arena}, nil
}
