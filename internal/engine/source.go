package engine

import (
	"rfabric/internal/expr"
	"rfabric/internal/fabric"
	"rfabric/internal/geometry"
	"rfabric/internal/obs"
	"rfabric/internal/table"
)

// A Source is an access path: it knows where a query's bytes live and what
// each touched byte costs — nothing else. Opening a source against a query
// yields a scan plan (layout, per-touch charges, optional compiled batch
// program) that the shared pipeline in pipeline.go / pipeline_vec.go
// executes. The engines (ROW, COL, RM, IDX) are Sources; every scan and
// consume loop lives once, in the pipeline, parameterized by the scan the
// source opened.
//
// The contract a source's openScan must honor:
//
//   - validate the query against its schema and fail without charging;
//   - do all cost-free setup (fabric configuration, vectorized program
//     compilation) before returning — the pipeline captures the hardware
//     counters only after open succeeds;
//   - describe every modeled charge declaratively: perRow / predCycles /
//     fetchCycles constants, the segment iterator, the colAt addressing
//     function, and (for work that must run inside the measured window,
//     like index descent or COL's bitmap passes) a prepare hook.
type Source interface {
	// Name is the access path's short label (ROW, COL, RM, IDX).
	Name() string
	// tableLabel names the base table for the engine span ("" when the
	// path reads a derived structure with no table of its own).
	tableLabel() string
	// sysTracer exposes the simulated machine and the optional tracer.
	sysTracer() (*System, *obs.Tracer)
	// openScan validates q and builds the scan the pipeline will drive.
	openScan(q Query, sp *obs.Span) (*scan, error)
}

// Run executes q by opening the source's scan and driving it through the
// shared pipeline. This is the single execution entry point behind every
// engine's Execute method and the DB façade's dispatch.
func Run(src Source, q Query) (*Result, error) {
	sys, tr := src.sysTracer()
	sp := beginEngineSpan(tr, src.Name(), src.tableLabel())
	defer tr.End()
	s, err := src.openScan(q, sp)
	if err != nil {
		return nil, err
	}
	s.name = src.Name()
	s.sys = sys
	s.tracer = tr
	s.sp = sp
	return s.run(q)
}

// segment is one contiguous delivery of rows from a source: the whole base
// heap (ROW), the column store's row range (COL), one fabric chunk (RM), or
// an index candidate list (IDX).
type segment struct {
	// data/baseAddr/stride describe a dense row-major region: data holds
	// the encoded rows, baseAddr is the simulated address of data[0], and
	// each row occupies stride bytes. payloadOff is the byte offset of the
	// column payload within a row (the MVCC header size on ROW heaps).
	// Sources with non-strided layouts (COL, IDX) leave these zero and
	// address through the scan's colAt hook instead.
	data       []byte
	baseAddr   int64
	stride     int
	payloadOff int

	// rows is the dense row count; ids, when non-nil, is the explicit
	// visit list (index candidates, COL's qualifying row ids) and takes
	// precedence over rows.
	rows int
	ids  []int

	// sourceRows is how many source rows this segment accounts for in
	// Result.RowsScanned.
	sourceRows int64
	// producer is the fabric-side production time of this segment
	// (pipelined sources only).
	producer uint64
}

// segIter yields segments; it is created inside the measured window so
// resets and per-segment gathers charge to the run.
type segIter func() (segment, bool)

// scan is an opened access path: everything the shared pipeline needs to
// execute a query over one source. Exactly one of three modes applies:
// direct (the source computed the result itself, e.g. fabric aggregation
// pushdown), batch (prog compiled — the vectorized executor replays the
// scalar charge sequence), or scalar (the interpreted loop).
type scan struct {
	// Filled by Run.
	name   string
	sys    *System
	tracer *obs.Tracer
	sp     *obs.Span

	sch *geometry.Schema

	// direct bypasses the pipeline: the source produces the Result under
	// its own accounting (it still runs inside the measured window).
	direct func() (*Result, error)

	// prog, when non-nil, routes execution to the batch path. colStore
	// marks the decomposed-layout variant (bitmap selection passes over
	// dense column arrays instead of strided decode).
	prog    *scanProg
	scratch *scanScratch

	// Per-touch charge constants (the source's cost model).
	perRow      uint64 // charged per visited row (volcano iterator overhead)
	predCycles  uint64 // per predicate evaluation
	fetchCycles uint64 // per first touch of a column in a row

	// Behavior flags.
	tickPerRow bool   // advance the timeline clock per row (demand paths)
	pipelined  bool   // per-segment producer/consumer pipeline accounting (RM)
	warm       bool   // segments replay a cached column group (sets Result.CacheWarm)
	offload    string // fabric operator program label (sets Result.Offload)

	// mvccTbl, when non-nil, makes the pipeline touch each row's version
	// header; with q.Snapshot set it also pays the software visibility
	// check and skips invisible rows.
	mvccTbl *table.Table

	// cpuSel is the predicate set the pipeline evaluates (nil when the
	// source pushed selection down); visit lists columns to touch before
	// consumption (COL's explicit reconstruction order).
	cpuSel expr.Conjunction
	visit  []int

	// prepare runs inside the measured window before iteration and may
	// return an explicit row-id list for the (single) segment: index
	// descent, COL's full-column bitmap selection passes.
	prepare func(pr *pipeRun) ([]int, error)

	// segs builds the segment iterator (called inside the measured
	// window; RM resets the ephemeral view here).
	segs func(pr *pipeRun) segIter

	// colAt resolves (segment, row, column) to the value's simulated
	// address and its encoded bytes — the one place a source's physical
	// layout meets the pipeline's fetch path.
	colAt func(seg *segment, row, col int) (int64, []byte)

	// colVec, when non-nil alongside prog, is the decomposed-layout batch
	// driver's view of the column store (COL only).
	colVec *colVecLayout

	// sink, when non-nil, replaces the consumer: every qualifying row is
	// handed to it instead of being folded into a Result. The join executor
	// streams each side through the scalar pipeline this way, so every
	// build/probe byte still flows through Hier.Load and the side's span
	// and breakdown reconcile like any other scan. Sink scans report
	// RowsPassed (rows delivered) but no checksum/aggregates.
	sink func(pr *pipeRun, fetch func(col int) table.Value)
}

// offloadProgram converts a query's aggregation shape into a fabric operator
// program when every term is COUNT(*) or a plain-column aggregate — the only
// shapes simple enough for the hardware datapath. Grouped and ungrouped
// shapes both qualify; derived aggregate expressions do not. This lives on
// the Source contract (not inside one engine) so any access path — and the
// optimizer pricing them — sees the same definition of "offloadable".
func offloadProgram(q Query) (*fabric.Offload, bool) {
	if len(q.Aggregates) == 0 {
		return nil, false
	}
	specs, ok := pushableAggs(q.Aggregates)
	if !ok {
		return nil, false
	}
	return &fabric.Offload{GroupBy: q.GroupBy, Aggs: specs}, true
}

// pushableAggs converts aggregate terms to fabric specs when every term is
// COUNT(*) or a plain-column aggregate.
func pushableAggs(terms []AggTerm) ([]expr.AggSpec, bool) {
	specs := make([]expr.AggSpec, len(terms))
	for i, t := range terms {
		if t.Arg == nil {
			specs[i] = expr.AggSpec{Kind: expr.Count}
			continue
		}
		ref, ok := t.Arg.(expr.ColRef)
		if !ok {
			return nil, false
		}
		specs[i] = expr.AggSpec{Kind: t.Kind, Col: ref.Col}
	}
	return specs, true
}

// normalizeAggValue converts fabric integer aggregates to the float64
// convention the software engines report, keeping COUNT integral.
func normalizeAggValue(kind expr.AggKind, v table.Value) table.Value {
	if kind == expr.Count {
		return v
	}
	if v.Type == geometry.Float64 {
		return v
	}
	return table.F64(float64(v.Int))
}

// runOffload is the direct mode behind an offloaded aggregation: the fabric
// runs the whole program (selection, projection, grouping, folding) and
// ships only the reduced result, so there is no pipeline to drive — just
// the producer's time and the result bytes. Grouped fold states convert
// through the same accumulator logic the CPU consumer uses, so the Result
// is bit-identical to a CPU-side execution of the same query.
func runOffload(sys *System, tracer *obs.Tracer, sp *obs.Span, name string, q Query, ev *fabric.Ephemeral, off *fabric.Offload) (*Result, error) {
	memStart := sys.Mem.Stats()
	hierStart := sys.Hier.Stats()
	or, err := ev.RunOffload(off)
	if err != nil {
		return nil, err
	}
	tk := newTicker(tracer)
	tk.advance(or.ProducerCycles)
	res := &Result{
		Engine:      name,
		RowsScanned: int64(or.RowsScanned),
		RowsPassed:  int64(or.RowsQualified),
		Offload:     off.Describe(),
	}
	if !off.Grouped() {
		res.Aggs = make([]table.Value, len(or.Values))
		for i, v := range or.Values {
			res.Aggs[i] = normalizeAggValue(q.Aggregates[i].Kind, v)
		}
	} else {
		res.Groups = make([]GroupRow, len(or.Groups))
		for i, g := range or.Groups {
			row := GroupRow{Key: g.Key, Count: g.Rows, Aggs: make([]table.Value, len(g.Accs))}
			for j, st := range g.Accs {
				acc := aggAcc{
					term:  q.Aggregates[j],
					count: st.Count,
					sum:   st.Sum,
					min:   st.Min,
					max:   st.Max,
					any:   st.Any,
				}
				row.Aggs[j] = acc.result()
			}
			res.Groups[i] = row
		}
		sortGroups(res.Groups)
	}
	sp.SetAttr("offload", off.Describe())
	res.Breakdown = pipelineBreakdown(sys, memStart, hierStart, 0, or.ProducerCycles, or.ProducerCycles, uint64(or.ResultBytes))
	finishPipelineSpan(sp, sys, memStart, hierStart, res)
	return res, nil
}
