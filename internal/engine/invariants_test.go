package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"rfabric/internal/colstore"
	"rfabric/internal/index"
	"rfabric/internal/obs"
	"rfabric/internal/table"
)

// TestBreakdownInvariants property-checks the cost model across randomized
// schemas, data, and queries on every execution path:
//
//   - demand paths (ROW, COL, IDX): BytesToCPU never exceeds BytesFromDRAM
//     (the hierarchy cannot deliver more than memory produced), and
//     TotalCycles is at least both the demand path (compute + exposed
//     memory latency) and the DRAM occupancy floor;
//   - the RM pipeline: TotalCycles is at least the pipeline total, which is
//     at least the producer's share;
//   - every path: the trace's root span AttributedCycles reconciles exactly
//     with Breakdown.TotalCycles.
func TestBreakdownInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(8_112_358))
	for i := 0; i < 60; i++ {
		t.Run(fmt.Sprintf("%03d", i), func(t *testing.T) { invariantTrial(t, rng) })
	}
}

func invariantTrial(t *testing.T, rng *rand.Rand) {
	t.Helper()
	sch := genSchema(rng)
	sys := MustSystem(DefaultSystemConfig())

	rows := 1 + rng.Intn(400)
	base := sys.Arena.Alloc(int64(rows * sch.RowBytes()))
	tbl, err := table.New("prop", sch, table.WithCapacity(rows), table.WithBaseAddr(base))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rows; r++ {
		vals := make([]table.Value, sch.NumColumns())
		for c := range vals {
			vals[c] = genValue(rng, sch.Column(c))
		}
		tbl.MustAppend(1, vals...)
	}
	q := genQuery(rng, sch, nil)
	if err := q.Validate(sch); err != nil {
		t.Fatalf("generated query invalid: %v", err)
	}

	store, err := colstore.FromTable(tbl, sys.Arena)
	if err != nil {
		t.Fatal(err)
	}

	type run struct {
		name   string
		demand bool
		exec   func(tr *obs.Tracer) (*Result, error)
	}
	runs := []run{
		{"ROW", true, func(tr *obs.Tracer) (*Result, error) {
			return (&RowEngine{Tbl: tbl, Sys: sys, Tracer: tr}).Execute(q)
		}},
		{"COL", true, func(tr *obs.Tracer) (*Result, error) {
			return (&ColEngine{Store: store, Sys: sys, Tracer: tr}).Execute(q)
		}},
		{"RM", false, func(tr *obs.Tracer) (*Result, error) {
			return (&RMEngine{Tbl: tbl, Sys: sys, Tracer: tr}).Execute(q)
		}},
		{"RM+push", false, func(tr *obs.Tracer) (*Result, error) {
			return (&RMEngine{Tbl: tbl, Sys: sys, PushSelection: true, PushAggregation: true, Tracer: tr}).Execute(q)
		}},
		{"RM+offload", false, func(tr *obs.Tracer) (*Result, error) {
			return (&RMEngine{Tbl: tbl, Sys: sys, Offload: true, Tracer: tr}).Execute(q)
		}},
	}
	if _, _, constrained := indexBounds(q.Selection, 0); constrained {
		idx, err := index.Build(tbl, 0, sys.Arena)
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, run{"IDX", true, func(tr *obs.Tracer) (*Result, error) {
			return (&IndexEngine{Tbl: tbl, Sys: sys, Idx: idx, Tracer: tr}).Execute(q)
		}})
	}
	parWorkers := 1 + rng.Intn(8)
	runs = append(runs, run{"PAR", false, func(tr *obs.Tracer) (*Result, error) {
		e := &ParallelEngine{
			Tbl: tbl, Sys: sys,
			Par:    ParallelConfig{Workers: parWorkers, MorselRows: 16 + rng.Intn(96)},
			Tracer: tr,
		}
		return e.Execute(q)
	}})

	for _, rn := range runs {
		sys.ResetState()
		tr := obs.NewTracer("query")
		res, err := rn.exec(tr)
		if err != nil {
			t.Fatalf("%s: %v\nquery: %+v", rn.name, err, q)
		}
		b := res.Breakdown
		if rn.demand {
			if b.BytesToCPU > b.BytesFromDRAM {
				t.Errorf("%s: BytesToCPU %d > BytesFromDRAM %d", rn.name, b.BytesToCPU, b.BytesFromDRAM)
			}
			if b.TotalCycles < b.CPUCycles() {
				t.Errorf("%s: TotalCycles %d < demand path %d", rn.name, b.TotalCycles, b.CPUCycles())
			}
			if floor := sys.Mem.OccupancyCycles(b.BytesFromDRAM); b.TotalCycles < floor {
				t.Errorf("%s: TotalCycles %d < occupancy floor %d", rn.name, b.TotalCycles, floor)
			}
		} else if rn.name != "PAR" {
			// PAR's total is a makespan over workers; the summed morsel
			// pipeline legitimately exceeds it, so only single-system
			// pipeline runs get these bounds.
			if b.TotalCycles < b.PipelineCycles {
				t.Errorf("%s: TotalCycles %d < PipelineCycles %d", rn.name, b.TotalCycles, b.PipelineCycles)
			}
			if b.PipelineCycles < b.ProducerCycles {
				t.Errorf("%s: PipelineCycles %d < ProducerCycles %d", rn.name, b.PipelineCycles, b.ProducerCycles)
			}
		}
		if got := tr.Root().AttributedCycles(); got != b.TotalCycles {
			t.Errorf("%s: span tree attributes %d cycles, Breakdown.TotalCycles is %d",
				rn.name, got, b.TotalCycles)
		}
	}
}
