package engine

import (
	"fmt"
	"math"

	"rfabric/internal/expr"
	"rfabric/internal/geometry"
	"rfabric/internal/table"
	"rfabric/internal/vec"
)

// hashValue folds one projected value into the order-insensitive checksum.
// The encoding is canonical (type-directed), so all engines produce the same
// hash for the same logical value regardless of physical layout. The hash
// itself lives in internal/vec so the batch checksum kernels share one
// definition with this boxed-value path.
func hashValue(col int, v table.Value) uint64 {
	switch v.Type {
	case geometry.Float64:
		return vec.HashF64(col, v.Float)
	case geometry.Char:
		return vec.HashChar(col, v.Bytes)
	default:
		return vec.HashI64(col, v.Int)
	}
}

// aggAcc folds rows for one AggTerm. Numeric results are kept in float64 so
// every engine (and the fabric pushdown) reports comparable values.
type aggAcc struct {
	term  AggTerm
	count int64
	sum   float64
	min   float64
	max   float64
	any   bool
}

func (a *aggAcc) add(x float64) {
	a.count++
	a.sum += x
	if !a.any || x < a.min {
		a.min = x
	}
	if !a.any || x > a.max {
		a.max = x
	}
	a.any = true
}

func (a *aggAcc) result() table.Value {
	switch a.term.Kind {
	case expr.Count:
		return table.I64(a.count)
	case expr.Sum:
		return table.F64(a.sum)
	case expr.Avg:
		if a.count == 0 {
			return table.F64(0)
		}
		return table.F64(a.sum / float64(a.count))
	case expr.Min:
		return table.F64(a.min)
	case expr.Max:
		return table.F64(a.max)
	default:
		panic(fmt.Sprintf("engine: unknown aggregate kind %d", uint8(a.term.Kind)))
	}
}

type groupState struct {
	key   []table.Value
	accs  []aggAcc
	count int64
}

// consumer folds qualifying rows into the query's output shape and charges
// consumption CPU cycles to the engine's compute counter.
type consumer struct {
	q       Query
	schema  *geometry.Schema
	compute *uint64

	rowsPassed int64
	checksum   uint64
	accs       []aggAcc
	groups     map[string]*groupState
	keyBuf     []byte
}

func newConsumer(q Query, schema *geometry.Schema, compute *uint64) *consumer {
	c := &consumer{q: q, schema: schema, compute: compute}
	if len(q.Aggregates) > 0 && len(q.GroupBy) == 0 {
		c.accs = make([]aggAcc, len(q.Aggregates))
		for i := range c.accs {
			c.accs[i].term = q.Aggregates[i]
		}
	}
	if len(q.GroupBy) > 0 {
		c.groups = make(map[string]*groupState)
	}
	return c
}

// consumeRow folds one qualifying row. fetch returns the (already loaded and
// charged) value of a schema column; the consumer charges only its own
// folding work.
func (c *consumer) consumeRow(fetch func(col int) table.Value) {
	c.rowsPassed++
	if len(c.q.Aggregates) == 0 {
		for _, col := range c.q.Projection {
			c.checksum += hashValue(col, fetch(col))
			*c.compute += ChecksumCycles
		}
		return
	}

	var accs []aggAcc
	if c.groups == nil {
		accs = c.accs
	} else {
		c.keyBuf = c.keyBuf[:0]
		keyVals := make([]table.Value, len(c.q.GroupBy))
		for i, col := range c.q.GroupBy {
			v := fetch(col)
			keyVals[i] = v
			c.keyBuf = appendKey(c.keyBuf, v)
		}
		*c.compute += HashGroupCycles
		g, ok := c.groups[string(c.keyBuf)]
		if !ok {
			g = &groupState{key: keyVals, accs: make([]aggAcc, len(c.q.Aggregates))}
			for i := range g.accs {
				g.accs[i].term = c.q.Aggregates[i]
			}
			c.groups[string(c.keyBuf)] = g
		}
		g.count++
		accs = g.accs
	}

	for i := range accs {
		t := &accs[i]
		*c.compute += AggAddCycles
		if t.term.Arg == nil {
			t.count++
			continue
		}
		*c.compute += uint64(t.term.Arg.Ops() * ScalarOpCycles)
		t.add(t.term.Arg.EvalF(fetch))
	}
}

func appendKey(dst []byte, v table.Value) []byte {
	switch v.Type {
	case geometry.Float64:
		bits := math.Float64bits(v.Float)
		for i := 0; i < 8; i++ {
			dst = append(dst, byte(bits>>(8*uint(i))))
		}
	case geometry.Char:
		// Trim trailing NUL padding only — embedded NULs are significant,
		// matching table.Value equality semantics.
		b := v.Bytes
		end := len(b)
		for end > 0 && b[end-1] == 0 {
			end--
		}
		dst = append(dst, b[:end]...)
		dst = append(dst, 0xff) // separator
	default:
		u := uint64(v.Int)
		for i := 0; i < 8; i++ {
			dst = append(dst, byte(u>>(8*uint(i))))
		}
	}
	return dst
}

// finish assembles the result shape (without the cost breakdown).
func (c *consumer) finish(engineName string, rowsScanned int64) *Result {
	r := &Result{
		Engine:      engineName,
		RowsScanned: rowsScanned,
		RowsPassed:  c.rowsPassed,
		Checksum:    c.checksum,
	}
	if c.accs != nil {
		r.Aggs = make([]table.Value, len(c.accs))
		for i := range c.accs {
			r.Aggs[i] = c.accs[i].result()
		}
	}
	if c.groups != nil {
		for _, g := range c.groups {
			row := GroupRow{Key: g.key, Count: g.count, Aggs: make([]table.Value, len(g.accs))}
			for i := range g.accs {
				row.Aggs[i] = g.accs[i].result()
			}
			r.Groups = append(r.Groups, row)
		}
		sortGroups(r.Groups)
	}
	return r
}
