package engine

import (
	"errors"

	"rfabric/internal/colstore"
	"rfabric/internal/obs"
)

// ColEngine is the column-at-a-time access path over a materialized
// columnar copy — the paper's COL baseline (§V). Selection runs as
// full-column passes that narrow a row-id vector; consumption then
// reconstructs tuples by reading every consumed column at each qualifying
// row id. That reconstruction is the layout's Achilles' heel: it reads the
// consumed arrays in interleaved row-major order, so once a query touches
// more parallel streams than the prefetcher tracks (> 4 on the paper's
// platform), the gathers degrade to demand misses. As a Source it
// contributes the decomposed layout's addressing and the bitmap-selection
// prepare pass; the scan and consume loops live in the shared pipeline.
type ColEngine struct {
	Store *colstore.Store
	Sys   *System

	// Tracer, when set, receives a span for this execution with leaves
	// that reconcile with the Breakdown. Nil means no tracing overhead.
	Tracer *obs.Tracer

	// ForceScalar pins execution to the value-at-a-time interpreter. The two
	// paths charge identical modeled costs; the knob exists for equivalence
	// tests and wall-clock benchmarks.
	ForceScalar bool

	// scratch is the engine-owned batch workspace, allocated on first
	// vectorized execution and reused so steady-state scans allocate nothing
	// per batch.
	scratch *scanScratch
}

// Name implements Executor.
func (e *ColEngine) Name() string { return "COL" }

// The columnar copy is derived from a base table; the engine span carries
// no table label of its own.
func (e *ColEngine) tableLabel() string { return "" }

func (e *ColEngine) sysTracer() (*System, *obs.Tracer) { return e.Sys, e.Tracer }

// Execute runs q and returns its result with the modeled cost.
func (e *ColEngine) Execute(q Query) (*Result, error) { return Run(e, q) }

// openScan implements Source: selection happens up front as full-column
// bitmap passes (the prepare hook), leaving the pipeline an explicit row-id
// list whose reconstruction touches each consumed column per row.
func (e *ColEngine) openScan(q Query, _ *obs.Span) (*scan, error) {
	if e.Store == nil || e.Sys == nil {
		return nil, errors.New("engine: ColEngine needs a column store and a system")
	}
	sch := e.Store.Schema()
	if err := q.Validate(sch); err != nil {
		return nil, err
	}
	if q.Snapshot != nil {
		// The columnar copy is a point-in-time conversion; it has no
		// version headers. This limitation is part of what the paper's
		// design removes.
		return nil, errors.New("engine: columnar copy does not support MVCC snapshots")
	}

	store := e.Store
	rows := store.NumRows()
	s := &scan{
		sch:         sch,
		fetchCycles: VectorOpCycles,
		tickPerRow:  true,
		visit:       q.consumedColumns(),
	}

	if !e.ForceScalar && rows <= vecRowLimit {
		// The column arrays are dense, so every slot decodes at offset 0 of
		// its own array; predicates run as bitmap passes outside the
		// program, hence the empty selection.
		if prog, ok := compileScanProg(q, sch, nil, q.consumedColumns(), func(int) int { return 0 }, colVecCharges); ok {
			s.prog = prog
			s.colVec = &colVecLayout{store: store}
			if e.scratch == nil {
				e.scratch = &scanScratch{}
			}
			s.scratch = e.scratch
			return s, nil
		}
	}

	s.prepare = func(pr *pipeRun) ([]int, error) {
		return colBitmapSelect(pr, e.Sys, store, sch, q.Selection), nil
	}
	// One segment: the qualifying row ids; every source row was scanned by
	// the selection passes.
	s.segs = func(pr *pipeRun) segIter {
		return oneShotIter(segment{ids: pr.ids, sourceRows: int64(rows)})
	}
	s.colAt = func(_ *segment, row, col int) (int64, []byte) {
		w := sch.Column(col).Width
		return store.ValueAddr(col, row), store.ColumnData(col)[row*w:]
	}
	return s, nil
}
