package engine

import (
	"errors"

	"rfabric/internal/colstore"
	"rfabric/internal/obs"
	"rfabric/internal/table"
)

// ColEngine executes queries column-at-a-time over a materialized columnar
// copy — the paper's COL baseline (§V). Selection runs as full-column
// passes that narrow a row-id vector; consumption then reconstructs tuples
// by reading every consumed column at each qualifying row id. That
// reconstruction is the layout's Achilles' heel: it reads the consumed
// arrays in interleaved row-major order, so once a query touches more
// parallel streams than the prefetcher tracks (> 4 on the paper's
// platform), the gathers degrade to demand misses.
type ColEngine struct {
	Store *colstore.Store
	Sys   *System

	// Tracer, when set, receives a span for this execution with leaves
	// that reconcile with the Breakdown. Nil means no tracing overhead.
	Tracer *obs.Tracer

	// ForceScalar pins execution to the value-at-a-time interpreter. The two
	// paths charge identical modeled costs; the knob exists for equivalence
	// tests and wall-clock benchmarks.
	ForceScalar bool

	// scratch is the engine-owned batch workspace, allocated on first
	// vectorized execution and reused so steady-state scans allocate nothing
	// per batch.
	scratch *scanScratch
}

// Name implements Executor.
func (e *ColEngine) Name() string { return "COL" }

// Execute runs q and returns its result with the modeled cost.
func (e *ColEngine) Execute(q Query) (*Result, error) {
	if e.Store == nil || e.Sys == nil {
		return nil, errors.New("engine: ColEngine needs a column store and a system")
	}
	sch := e.Store.Schema()
	if err := q.Validate(sch); err != nil {
		return nil, err
	}
	if q.Snapshot != nil {
		// The columnar copy is a point-in-time conversion; it has no
		// version headers. This limitation is part of what the paper's
		// design removes.
		return nil, errors.New("engine: columnar copy does not support MVCC snapshots")
	}

	sp := beginEngineSpan(e.Tracer, e.Name(), "")
	defer e.Tracer.End()

	if !e.ForceScalar && e.Store.NumRows() <= vecRowLimit {
		// The column arrays are dense, so every slot decodes at offset 0 of
		// its own array; predicates run as bitmap passes outside the
		// program, hence the empty selection.
		if prog, ok := compileScanProg(q, sch, nil, q.consumedColumns(), func(int) int { return 0 }, colVecCharges); ok {
			return e.executeVectorized(q, prog, sp)
		}
	}

	memStart := e.Sys.Mem.Stats()
	hierStart := e.Sys.Hier.Stats()
	var compute uint64
	cons := newConsumer(q, sch, &compute)
	tk := newTicker(e.Tracer)

	rows := e.Store.NumRows()

	// Selection: one full-column pass per predicate, MonetDB-style — each
	// pass streams the entire column (dense, prefetch-friendly) and
	// materializes a full-length match bitmap, which the next pass ANDs
	// into. This is the materialized-intermediate discipline of true
	// column-at-a-time processing; it trades extra value touches for
	// perfectly sequential access.
	var bitmap []bool
	var bitmapAddr int64
	if len(q.Selection) > 0 {
		// The match bitmap is itself a memory-resident intermediate; every
		// pass streams it alongside the predicate column.
		bitmapAddr = e.Sys.Arena.Alloc(int64(rows))
	}
	for pi, p := range q.Selection {
		col := p.Col
		w := sch.Column(col).Width
		data := e.Store.ColumnData(col)
		if pi == 0 {
			// The first pass only writes the bitmap (streaming store); later
			// passes read-modify-write it and pay the load.
			bitmap = make([]bool, rows)
			for r := 0; r < rows; r++ {
				if tk.tl != nil {
					tk.advance(e.Sys.Hier.Stats().Cycles - hierStart.Cycles + compute)
				}
				e.Sys.Hier.Load(e.Store.ValueAddr(col, r))
				compute += VectorOpCycles + MaterializeCycles
				bitmap[r] = p.Eval(table.DecodeColumn(sch.Column(col), data[r*w:]))
			}
			continue
		}
		for r := 0; r < rows; r++ {
			if tk.tl != nil {
				tk.advance(e.Sys.Hier.Stats().Cycles - hierStart.Cycles + compute)
			}
			e.Sys.Hier.Load(e.Store.ValueAddr(col, r))
			e.Sys.Hier.Load(bitmapAddr + int64(r))
			compute += VectorOpCycles + MaterializeCycles
			if bitmap[r] {
				bitmap[r] = p.Eval(table.DecodeColumn(sch.Column(col), data[r*w:]))
			}
		}
	}
	sel := make([]int, 0, rows)
	if bitmap == nil {
		for r := 0; r < rows; r++ {
			sel = append(sel, r)
		}
	} else {
		for r, ok := range bitmap {
			if ok {
				sel = append(sel, r)
			}
		}
		compute += uint64(len(sel) * MaterializeCycles)
	}

	// Tuple reconstruction + consumption: for each qualifying row id, read
	// every consumed column. The loads interleave across the consumed
	// arrays in row-major order — the strided multi-stream pattern that
	// exhausts the prefetcher when more than Streams columns are touched.
	consumed := q.consumedColumns()
	numCols := sch.NumColumns()
	vals := make([]table.Value, numCols)
	fetchedAt := make([]int64, numCols)
	for i := range fetchedAt {
		fetchedAt[i] = -1
	}
	var epoch int64
	// The fetch closure is defined once outside the reconstruction loop
	// (capturing the row cursor) so it does not allocate per row.
	var row int
	fetch := func(col int) table.Value {
		if fetchedAt[col] == epoch {
			return vals[col]
		}
		w := sch.Column(col).Width
		e.Sys.Hier.Load(e.Store.ValueAddr(col, row))
		compute += VectorOpCycles
		v := table.DecodeColumn(sch.Column(col), e.Store.ColumnData(col)[row*w:])
		vals[col] = v
		fetchedAt[col] = epoch
		return v
	}

	for _, r := range sel {
		if tk.tl != nil {
			tk.advance(e.Sys.Hier.Stats().Cycles - hierStart.Cycles + compute)
		}
		epoch++
		row = r
		// Touch consumed columns in declared order so the access pattern is
		// deterministic row-major interleaving.
		for _, c := range consumed {
			fetch(c)
		}
		cons.consumeRow(fetch)
	}

	res := cons.finish(e.Name(), int64(rows))
	tk.advance(e.Sys.Hier.Stats().Cycles - hierStart.Cycles + compute)
	res.Breakdown = demandBreakdown(e.Sys, memStart, hierStart, compute)
	finishDemandSpan(sp, e.Sys, memStart, hierStart, res)
	return res, nil
}
