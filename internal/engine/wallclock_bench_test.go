package engine_test

import (
	"testing"

	"rfabric/internal/engine"
	"rfabric/internal/fabric"
	"rfabric/internal/geometry"
	"rfabric/internal/sql"
	"rfabric/internal/table"
	"rfabric/internal/tpch"
)

// Wall-clock benchmarks for the vectorized scan paths. The modeled cycles of
// the scalar and batch paths are identical by construction (the charge-replay
// equivalence tests enforce it); these benchmarks measure the thing that DID
// change — host time and allocations per executed query. Run with:
//
//	go test ./internal/engine -run '^$' -bench Wallclock -benchmem
//
// Each sub-benchmark reports scalar/ and vectorized/ variants of the same
// engine and query, so the speedup and the allocation reduction read directly
// off the output. The benchmarks live in package engine_test so they can use
// the TPC-H generator (which itself imports engine for the query builders).

const benchRows = 64 * 1024

func benchLineitem(b *testing.B, sys *engine.System) *table.Table {
	b.Helper()
	sch := tpch.LineitemSchema()
	base := sys.Arena.Alloc(int64(benchRows * sch.RowBytes()))
	tbl, err := tpch.NewLineitem(benchRows, 1, table.WithBaseAddr(base))
	if err != nil {
		b.Fatal(err)
	}
	return tbl
}

// scanQuery is the full-table scan: every row passes and every column is
// consumed. This is the shape where tuple-at-a-time interpretation pays the
// most per row (one closure call, one boxed decode, and one hash per value),
// so it is the benchmark the vectorized path is gated on.
func scanQuery() engine.Query {
	sch := tpch.LineitemSchema()
	proj := make([]int, sch.NumColumns())
	for i := range proj {
		proj[i] = i
	}
	return engine.Query{Projection: proj}
}

func runWallclock(b *testing.B, build func(forceScalar bool) engine.Executor, reset func()) {
	b.Helper()
	for _, mode := range []struct {
		name        string
		forceScalar bool
	}{{"scalar", true}, {"vectorized", false}} {
		b.Run(mode.name, func(b *testing.B) {
			eng := build(mode.forceScalar)
			q := scanQuery()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				reset()
				b.StartTimer()
				if _, err := eng.Execute(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRowScanWallclock(b *testing.B) {
	sys := engine.MustSystem(engine.DefaultSystemConfig())
	tbl := benchLineitem(b, sys)
	runWallclock(b, func(fs bool) engine.Executor {
		return &engine.RowEngine{Tbl: tbl, Sys: sys, ForceScalar: fs}
	}, sys.ResetState)
}

func BenchmarkRMScanWallclock(b *testing.B) {
	sys := engine.MustSystem(engine.DefaultSystemConfig())
	tbl := benchLineitem(b, sys)
	runWallclock(b, func(fs bool) engine.Executor {
		return &engine.RMEngine{Tbl: tbl, Sys: sys, PushSelection: true, ForceScalar: fs}
	}, sys.ResetState)
}

func BenchmarkQ6Wallclock(b *testing.B) {
	for _, mode := range []struct {
		name        string
		forceScalar bool
	}{{"scalar", true}, {"vectorized", false}} {
		b.Run(mode.name, func(b *testing.B) {
			sys := engine.MustSystem(engine.DefaultSystemConfig())
			tbl := benchLineitem(b, sys)
			eng := &engine.RowEngine{Tbl: tbl, Sys: sys, ForceScalar: mode.forceScalar}
			q := tpch.Q6()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				sys.ResetState()
				b.StartTimer()
				if _, err := eng.Execute(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkParScanWallclock(b *testing.B) {
	sys := engine.MustSystem(engine.DefaultSystemConfig())
	tbl := benchLineitem(b, sys)
	runWallclock(b, func(fs bool) engine.Executor {
		return &engine.ParallelEngine{Tbl: tbl, Sys: sys,
			Par:           engine.ParallelConfig{Workers: 8},
			PushSelection: true, ForceScalar: fs}
	}, sys.ResetState)
}

// BenchmarkSequenceCold and BenchmarkSequenceWarm measure the group cache's
// host-time effect on a repeated Q6-class scan: cold rebuilds the ephemeral
// view every iteration (no cache), warm replays the resident group after one
// priming run. The modeled-cycle savings are pinned by the sequence
// experiment; these report the wall-clock and allocation side.
func BenchmarkSequenceCold(b *testing.B) {
	sys := engine.MustSystem(engine.DefaultSystemConfig())
	tbl := benchLineitem(b, sys)
	eng := &engine.RMEngine{Tbl: tbl, Sys: sys}
	q := tpch.Q6()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys.ResetState()
		b.StartTimer()
		if _, err := eng.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSequenceWarm(b *testing.B) {
	sys := engine.MustSystem(engine.DefaultSystemConfig())
	tbl := benchLineitem(b, sys)
	cache := fabric.NewGroupCache(64<<20, sys.Arena)
	eng := &engine.RMEngine{Tbl: tbl, Sys: sys, Cache: cache}
	q := tpch.Q6()
	if _, err := eng.Execute(q); err != nil { // prime the group
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys.ResetState()
		b.StartTimer()
		res, err := eng.Execute(q)
		if err != nil {
			b.Fatal(err)
		}
		if !res.CacheWarm {
			b.Fatal("warm benchmark ran cold")
		}
	}
}

// BenchmarkJoinQ3Wallclock measures the hash-join pipeline end to end: the
// Q3-class lineitem ⋈ orders query lowered from SQL, executed serially and
// under the morsel-parallel executor. Join sides always run scalar (the sink
// path), so the variants here are the executors, not the kernels.
func BenchmarkJoinQ3Wallclock(b *testing.B) {
	sys := engine.MustSystem(engine.DefaultSystemConfig())
	li := benchLineitem(b, sys)
	nOrders := tpch.OrdersFor(benchRows)
	osch := tpch.OrdersSchema()
	ord, err := tpch.NewOrders(nOrders, 2,
		table.WithBaseAddr(sys.Arena.Alloc(int64(nOrders*osch.RowBytes()))))
	if err != nil {
		b.Fatal(err)
	}
	lookup := func(name string) (*geometry.Schema, error) {
		if name == "orders" {
			return ord.Schema(), nil
		}
		return li.Schema(), nil
	}
	st, err := sql.Parse(tpch.Q3SQL)
	if err != nil {
		b.Fatal(err)
	}
	root, err := sql.LowerCatalog(st, lookup)
	if err != nil {
		b.Fatal(err)
	}
	jp, _, err := engine.FromJoinPlan(root, lookup)
	if err != nil {
		b.Fatal(err)
	}
	builds := func() []engine.Source {
		out := make([]engine.Source, len(jp.Stages))
		for i := range jp.Stages {
			out[i] = &engine.RMEngine{Tbl: ord, Sys: sys, ForceScalar: true}
		}
		return out
	}
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			sys.ResetState()
			b.StartTimer()
			ex := &engine.JoinExec{
				Plan:   jp,
				Probe:  &engine.RMEngine{Tbl: li, Sys: sys, ForceScalar: true},
				Builds: builds(),
			}
			if _, err := ex.Execute(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			sys.ResetState()
			b.StartTimer()
			ex := &engine.ParallelJoinExec{
				Plan:     jp,
				ProbeTbl: li,
				Sys:      sys,
				Par:      engine.ParallelConfig{Workers: 8},
				Builds:   builds(),
			}
			if _, err := ex.Execute(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
