package engine

import (
	"rfabric/internal/cache"
	"rfabric/internal/dram"
)

// demandBreakdown assembles the cost model for a pure CPU-demand-path run
// (ROW and COL engines): execution time is the demand path (compute plus
// the memory latency the hierarchy exposed), floored by the DRAM occupancy
// of every byte the run moved (demand fills plus prefetch traffic). The
// floor captures that no amount of latency overlap can stream data faster
// than the memory module's bandwidth.
func demandBreakdown(sys *System, memStart dram.Stats, hierStart cache.Stats, compute uint64) Breakdown {
	memNow := sys.Mem.Stats()
	hierNow := sys.Hier.Stats()
	b := Breakdown{
		ComputeCycles:   compute,
		MemDemandCycles: hierNow.Cycles - hierStart.Cycles,
		BytesFromDRAM:   memNow.BytesRead - memStart.BytesRead,
		BytesToCPU:      hierNow.BytesFromDRAM - hierStart.BytesFromDRAM,
	}
	demand := b.ComputeCycles + b.MemDemandCycles
	floor := sys.Mem.OccupancyCycles(b.BytesFromDRAM)
	if demand >= floor {
		b.TotalCycles = demand
	} else {
		b.TotalCycles = floor
	}
	return b
}

// pipelineBreakdown assembles the cost model for the RM engine: the
// producer/consumer pipeline total (already summed per chunk by the caller)
// floored by DRAM occupancy. The fabric's gathers ride its aggregated ports
// while the consumer's demand traffic rides the CPU port; the two streams
// flow concurrently, so the floor is the larger of the per-port occupancies.
// Packed lines delivered to the CPU are an on-chip transfer and consume no
// DRAM bandwidth.
func pipelineBreakdown(sys *System, memStart dram.Stats, hierStart cache.Stats, compute, pipeline, producer, shipped uint64) Breakdown {
	memNow := sys.Mem.Stats()
	hierNow := sys.Hier.Stats()
	b := Breakdown{
		ComputeCycles:   compute,
		MemDemandCycles: hierNow.Cycles - hierStart.Cycles,
		ProducerCycles:  producer,
		BytesFromDRAM:   memNow.BytesRead - memStart.BytesRead,
		BytesToCPU:      shipped,
		PipelineCycles:  pipeline,
	}
	gathered := memNow.GatherBytes - memStart.GatherBytes
	if gathered > b.BytesFromDRAM {
		gathered = b.BytesFromDRAM
	}
	cpuBytes := b.BytesFromDRAM - gathered
	floor := sys.Mem.FabricOccupancyCycles(gathered)
	if f := sys.Mem.OccupancyCycles(cpuBytes); f > floor {
		floor = f
	}
	b.TotalCycles = pipeline
	if floor > b.TotalCycles {
		b.TotalCycles = floor
	}
	return b
}
