package dram

import "rfabric/internal/obs"

// Delta returns the counters accumulated since prev. All Stats fields are
// monotonically increasing, so a component-wise subtraction is exact.
func (s Stats) Delta(prev Stats) Stats {
	return Stats{
		Accesses:     s.Accesses - prev.Accesses,
		RowHits:      s.RowHits - prev.RowHits,
		RowMisses:    s.RowMisses - prev.RowMisses,
		BytesRead:    s.BytesRead - prev.BytesRead,
		GatherBytes:  s.GatherBytes - prev.GatherBytes,
		Cycles:       s.Cycles - prev.Cycles,
		BatchCycles:  s.BatchCycles - prev.BatchCycles,
		BatchedReqs:  s.BatchedReqs - prev.BatchedReqs,
		BatchesTotal: s.BatchesTotal - prev.BatchesTotal,
	}
}

// RowBufferHitRate returns row-buffer hits over all row activations.
func (s Stats) RowBufferHitRate() float64 {
	total := s.RowHits + s.RowMisses
	if total == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(total)
}

// Publish adds this stats snapshot (typically a Delta) into the registry as
// rfabric_dram_* counters. Callers attach identity through labels (engine
// kind, table, component).
func (s Stats) Publish(reg *obs.Registry, labels obs.Labels) {
	if reg == nil {
		return
	}
	reg.Counter("rfabric_dram_accesses_total", labels).Add(s.Accesses)
	reg.Counter("rfabric_dram_row_hits_total", labels).Add(s.RowHits)
	reg.Counter("rfabric_dram_row_misses_total", labels).Add(s.RowMisses)
	reg.Counter("rfabric_dram_bytes_read_total", labels).Add(s.BytesRead)
	reg.Counter("rfabric_dram_gather_bytes_total", labels).Add(s.GatherBytes)
	reg.Counter("rfabric_dram_cycles_total", labels).Add(s.Cycles)
	reg.Counter("rfabric_dram_batched_requests_total", labels).Add(s.BatchedReqs)
	reg.Gauge("rfabric_dram_row_buffer_hit_rate", labels).Set(s.RowBufferHitRate())
}
