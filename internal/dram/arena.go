package dram

import (
	"fmt"
	"sync"
)

// Arena hands out disjoint simulated address ranges. Tables, column arrays,
// and fabric delivery buffers each allocate their range from one arena so
// that the cache simulation sees them as distinct physical objects that can
// conflict in sets, exactly like separately allocated buffers on the real
// platform. The arena manages addresses only; the owning structures hold
// their own bytes.
//
// An Arena is safe for concurrent use: catalog operations (CreateTable,
// index builds, lazy columnar copies) may allocate from goroutines other
// than the one driving the simulated system.
type Arena struct {
	mu    sync.Mutex
	next  int64
	align int64
}

// NewArena starts allocating at base with the given power-of-two alignment.
func NewArena(base, align int64) (*Arena, error) {
	if align <= 0 || align&(align-1) != 0 {
		return nil, fmt.Errorf("dram: arena alignment must be a positive power of two, got %d", align)
	}
	if base < 0 {
		return nil, fmt.Errorf("dram: negative arena base %d", base)
	}
	return &Arena{next: alignUp(base, align), align: align}, nil
}

// MustArena is NewArena panicking on error.
func MustArena(base, align int64) *Arena {
	a, err := NewArena(base, align)
	if err != nil {
		panic(err)
	}
	return a
}

func alignUp(v, a int64) int64 {
	return (v + a - 1) &^ (a - 1)
}

// Alloc reserves size bytes and returns the base address of the range.
func (a *Arena) Alloc(size int64) int64 {
	if size < 0 {
		panic(fmt.Sprintf("dram: negative allocation %d", size))
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	addr := a.next
	a.next = alignUp(a.next+size, a.align)
	return addr
}

// Next returns the next address the arena would hand out.
func (a *Arena) Next() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.next
}
