package dram

// GatherReq asks for Bytes bytes starting at Addr. The module rounds the
// request outward to burst boundaries; the requester pays for every burst
// the range touches.
type GatherReq struct {
	Addr  int64
	Bytes int
}

// GatherBatch serves a set of fine-grained reads issued simultaneously by a
// near-data requester. Unlike the line-granularity Access path, gathers move
// only the bursts covering each requested range — this is the fabric's
// data-movement advantage. Bursts to distinct banks overlap; the returned
// cost is the busiest bank's total cycles, with the whole batch capped below
// by the module bandwidth.
//
// Row-buffer state is shared with the CPU path: a gather that lands in a row
// the CPU just opened hits, and vice versa.
func (m *Module) GatherBatch(reqs []GatherReq) uint64 {
	if len(reqs) == 0 {
		return 0
	}
	burst := int64(m.cfg.BurstBytes)
	perBank := m.gatherPerBank
	for i := range perBank {
		perBank[i] = 0
	}
	var bytes uint64
	for _, r := range reqs {
		if r.Bytes <= 0 {
			continue
		}
		first := r.Addr &^ (burst - 1)
		last := (r.Addr + int64(r.Bytes) - 1) &^ (burst - 1)
		for a := first; a <= last; a += burst {
			bank := m.bankOf(a)
			row := m.rowOf(a)
			// Unlike the CPU's demand path, the gather engine keeps every
			// bank's command queue full, so each burst costs the bank its
			// occupancy (transfer time, plus the activate penalty on a row
			// change), not the full CAS latency — requests to an open row
			// pipeline at burst rate.
			cost := uint64(m.cfg.BurstCycles)
			hit := m.openRow[bank] == row
			if hit {
				m.stats.RowHits++
			} else {
				m.stats.RowMisses++
				m.openRow[bank] = row
				cost += uint64(m.cfg.RowMissCycles - m.cfg.RowHitCycles)
			}
			m.tl.DRAMAccess(bank, cost, hit)
			perBank[bank] += cost
			m.stats.Accesses++
			bytes += uint64(m.cfg.BurstBytes)
		}
	}
	var critical uint64
	for _, c := range perBank {
		if c > critical {
			critical = c
		}
	}
	if floor := m.FabricOccupancyCycles(bytes); floor > critical {
		critical = floor
	}
	m.stats.BytesRead += bytes
	m.stats.GatherBytes += bytes
	m.stats.Cycles += critical
	m.stats.BatchCycles += critical
	m.stats.BatchedReqs += uint64(len(reqs))
	m.stats.BatchesTotal++
	return critical
}

// OccupancyCycles converts a byte count into the minimum cycles one CPU
// port needs to move it at peak bandwidth.
func (m *Module) OccupancyCycles(bytes uint64) uint64 {
	return uint64(float64(bytes)/m.cfg.BandwidthBytesPerCycle + 0.5)
}

// FabricOccupancyCycles is OccupancyCycles across the fabric's aggregated
// ports.
func (m *Module) FabricOccupancyCycles(bytes uint64) uint64 {
	return uint64(float64(bytes)/(m.cfg.BandwidthBytesPerCycle*float64(m.cfg.FabricPorts)) + 0.5)
}

// BurstBytes returns the finest transfer granularity.
func (m *Module) BurstBytes() int { return m.cfg.BurstBytes }
