// Package dram models a banked DRAM module with row-buffer locality and
// bank-level parallelism. It is the bottom of the simulated memory hierarchy:
// the cache simulator sends it line fills, and the Relational Memory fabric
// issues gather requests directly against it, exploiting multiple banks in
// parallel exactly as the paper's FPGA engine exploits "the inherent
// parallelism of memory cells" (Relational Fabric, ICDE 2023, §II, §IV-A).
//
// The model is deliberately simple — fixed cycle charges for row-buffer hits
// and misses, interleaved bank mapping, per-bank open-row state — because the
// paper's results depend on *how many* lines move and *how parallel* the
// fetches are, not on exact DDR4 timings.
package dram

import (
	"fmt"

	"rfabric/internal/obs"
)

// Config parameterizes the DRAM module. All latencies are in CPU cycles.
type Config struct {
	Banks        int // number of independent banks (power of two)
	RowBufferLen int // bytes per open row buffer ("DRAM page")
	LineBytes    int // transfer granularity toward caches/fabric

	RowHitCycles  int // access latency when the open row matches (CAS only)
	RowMissCycles int // precharge + activate + CAS
	BurstCycles   int // data-transfer cycles per line once the row is open

	// BurstBytes is the finest transfer the module supports. The CPU path
	// always moves whole cache lines, but a near-data requester (the fabric)
	// can gather at burst granularity — the mechanism behind "issues parallel
	// main memory requests for the target data" (§IV-A): it pays for the
	// bytes it asks for, rounded up to bursts, not for whole lines.
	BurstBytes int

	// BandwidthBytesPerCycle is the peak transfer rate of one port toward
	// the CPU complex. Whatever latency overlap a requester achieves, no
	// engine can stream data faster than this; experiment harnesses use it
	// as the occupancy floor time >= BytesRead / BandwidthBytesPerCycle.
	BandwidthBytesPerCycle float64

	// FabricPorts is how many memory ports the near-data fabric aggregates.
	// On the paper's platform the programmable logic masters several
	// high-performance AXI ports into the DDR controller, so its aggregate
	// gather bandwidth exceeds the single CPU-cluster port. Gathers are
	// floored at FabricPorts x BandwidthBytesPerCycle.
	FabricPorts int
}

// DefaultConfig mirrors a small LPDDR-class part behind a 1.5 GHz CPU: the
// absolute values are round numbers, the ratios (miss ≈ 3× hit, many banks)
// are what shape the experiments.
func DefaultConfig() Config {
	return Config{
		Banks:                  8,
		RowBufferLen:           2048,
		LineBytes:              64,
		RowHitCycles:           40,
		RowMissCycles:          120,
		BurstCycles:            4,
		BurstBytes:             16,
		BandwidthBytesPerCycle: 2,
		FabricPorts:            2,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Banks <= 0 || c.Banks&(c.Banks-1) != 0 {
		return fmt.Errorf("dram: Banks must be a positive power of two, got %d", c.Banks)
	}
	if c.RowBufferLen <= 0 || c.RowBufferLen&(c.RowBufferLen-1) != 0 {
		return fmt.Errorf("dram: RowBufferLen must be a positive power of two, got %d", c.RowBufferLen)
	}
	if c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("dram: LineBytes must be a positive power of two, got %d", c.LineBytes)
	}
	if c.LineBytes > c.RowBufferLen {
		return fmt.Errorf("dram: LineBytes (%d) exceeds RowBufferLen (%d)", c.LineBytes, c.RowBufferLen)
	}
	if c.RowHitCycles <= 0 || c.RowMissCycles < c.RowHitCycles || c.BurstCycles < 0 {
		return fmt.Errorf("dram: inconsistent latencies hit=%d miss=%d burst=%d", c.RowHitCycles, c.RowMissCycles, c.BurstCycles)
	}
	if c.BurstBytes <= 0 || c.BurstBytes&(c.BurstBytes-1) != 0 || c.BurstBytes > c.LineBytes {
		return fmt.Errorf("dram: BurstBytes must be a power of two no larger than LineBytes, got %d", c.BurstBytes)
	}
	if c.BandwidthBytesPerCycle <= 0 {
		return fmt.Errorf("dram: BandwidthBytesPerCycle must be positive, got %g", c.BandwidthBytesPerCycle)
	}
	if c.FabricPorts <= 0 {
		return fmt.Errorf("dram: FabricPorts must be positive, got %d", c.FabricPorts)
	}
	return nil
}

// Stats accumulates access counts and cycle totals.
type Stats struct {
	Accesses     uint64 // line-granularity accesses served
	RowHits      uint64
	RowMisses    uint64
	BytesRead    uint64
	GatherBytes  uint64 // subset of BytesRead moved through GatherBatch
	Cycles       uint64 // total serialized cycles charged
	BatchCycles  uint64 // cycles charged through AccessBatch (parallel path)
	BatchedReqs  uint64 // accesses that went through AccessBatch
	BatchesTotal uint64
}

// Module is a banked DRAM timing model. It is not safe for concurrent use;
// each simulated hierarchy owns one.
type Module struct {
	cfg     Config
	openRow []int64 // per-bank open row id, -1 when closed
	stats   Stats
	tl      *obs.Timeline // optional cycle sampler; nil-safe hooks

	bankShift uint // log2(LineBytes): bank selected by line index
	bankMask  int64
	rowShift  uint // log2(RowBufferLen * Banks): row id within bank

	// gatherPerBank is GatherBatch's per-bank cycle accumulator, kept on the
	// module so the hot gather path allocates nothing per batch.
	gatherPerBank []uint64
}

// New returns a module with all banks closed.
func New(cfg Config) (*Module, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Module{cfg: cfg, openRow: make([]int64, cfg.Banks), gatherPerBank: make([]uint64, cfg.Banks)}
	for i := range m.openRow {
		m.openRow[i] = -1
	}
	m.bankShift = log2(int64(cfg.LineBytes))
	m.bankMask = int64(cfg.Banks - 1)
	m.rowShift = log2(int64(cfg.RowBufferLen) * int64(cfg.Banks))
	return m, nil
}

// MustNew is New panicking on error, for fixtures.
func MustNew(cfg Config) *Module {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

func log2(v int64) uint {
	var s uint
	for v > 1 {
		v >>= 1
		s++
	}
	return s
}

// Config returns the module configuration.
func (m *Module) Config() Config { return m.cfg }

// Clone returns a fresh module with the same configuration: all banks
// closed, zero statistics. Parallel executors give each worker its own
// clone because a Module is single-owner state.
func (m *Module) Clone() *Module { return MustNew(m.cfg) }

// SetTimeline attaches (or, with nil, detaches) a cycle sampler. Clones do
// not inherit it: parallel workers run on private modules whose accesses
// would double-count against the shared query timeline.
func (m *Module) SetTimeline(tl *obs.Timeline) { m.tl = tl }

// Stats returns a copy of the accumulated statistics.
func (m *Module) Stats() Stats { return m.stats }

// ResetStats zeroes counters but keeps open-row state.
func (m *Module) ResetStats() { m.stats = Stats{} }

// Reset closes all rows and zeroes statistics.
func (m *Module) Reset() {
	for i := range m.openRow {
		m.openRow[i] = -1
	}
	m.stats = Stats{}
}

// bankOf maps a byte address to its bank: consecutive lines interleave
// across banks, the standard mapping that makes sequential streams use all
// banks and strided streams collide.
func (m *Module) bankOf(addr int64) int {
	return int((addr >> m.bankShift) & m.bankMask)
}

// rowOf maps a byte address to its row id within the bank.
func (m *Module) rowOf(addr int64) int64 {
	return addr >> m.rowShift
}

// Access serves one line-granularity read at addr and returns its cycle
// cost. The address is truncated to line alignment.
func (m *Module) Access(addr int64) uint64 {
	cost := m.accessCost(addr)
	m.stats.Accesses++
	m.stats.BytesRead += uint64(m.cfg.LineBytes)
	m.stats.Cycles += cost
	return cost
}

func (m *Module) accessCost(addr int64) uint64 {
	bank := m.bankOf(addr)
	row := m.rowOf(addr)
	hit := m.openRow[bank] == row
	var cost uint64
	if hit {
		m.stats.RowHits++
		cost = uint64(m.cfg.RowHitCycles)
	} else {
		m.stats.RowMisses++
		m.openRow[bank] = row
		cost = uint64(m.cfg.RowMissCycles)
	}
	cost += uint64(m.cfg.BurstCycles)
	m.tl.DRAMAccess(bank, cost, hit)
	return cost
}

// AccessBatch serves a set of line addresses that a parallel requester (the
// fabric) issues simultaneously. Requests to distinct banks overlap; requests
// queued on the same bank serialize. The returned cost is the critical path:
// the busiest bank's total cycles. This is the mechanism by which the fabric
// beats a CPU that must serialize its demand misses.
func (m *Module) AccessBatch(addrs []int64) uint64 {
	if len(addrs) == 0 {
		return 0
	}
	perBank := make(map[int]uint64, m.cfg.Banks)
	for _, a := range addrs {
		c := m.accessCost(a)
		perBank[m.bankOf(a)] += c
		m.stats.Accesses++
		m.stats.BytesRead += uint64(m.cfg.LineBytes)
	}
	var critical uint64
	for _, c := range perBank {
		if c > critical {
			critical = c
		}
	}
	m.stats.Cycles += critical
	m.stats.BatchCycles += critical
	m.stats.BatchedReqs += uint64(len(addrs))
	m.stats.BatchesTotal++
	return critical
}

// LineBytes returns the configured transfer granularity.
func (m *Module) LineBytes() int { return m.cfg.LineBytes }

// BankOf exposes the address-to-bank mapping so the cache layer can model
// miss overlap: demand misses headed to distinct banks can be in flight
// simultaneously.
func (m *Module) BankOf(addr int64) int { return m.bankOf(addr) }
