package dram

import (
	"testing"
	"testing/quick"
)

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Banks = 0 },
		func(c *Config) { c.Banks = 3 },
		func(c *Config) { c.RowBufferLen = 1000 },
		func(c *Config) { c.LineBytes = 0 },
		func(c *Config) { c.LineBytes = c.RowBufferLen * 2 },
		func(c *Config) { c.RowHitCycles = 0 },
		func(c *Config) { c.RowMissCycles = c.RowHitCycles - 1 },
		func(c *Config) { c.BurstBytes = 0 },
		func(c *Config) { c.BurstBytes = c.LineBytes * 2 },
		func(c *Config) { c.BandwidthBytesPerCycle = 0 },
		func(c *Config) { c.FabricPorts = 0 },
	}
	for i, mutate := range mutations {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestRowBufferLocality(t *testing.T) {
	m := MustNew(DefaultConfig())
	first := m.Access(0)
	second := m.Access(64 * int64(m.Config().Banks)) // same bank, same row
	if first <= second {
		t.Errorf("first access (row miss, %d) should cost more than row hit (%d)", first, second)
	}
	st := m.Stats()
	if st.RowMisses != 1 || st.RowHits != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", st.RowHits, st.RowMisses)
	}
}

func TestBankInterleaving(t *testing.T) {
	m := MustNew(DefaultConfig())
	lb := int64(m.LineBytes())
	seen := map[int]bool{}
	for i := int64(0); i < int64(m.Config().Banks); i++ {
		seen[m.BankOf(i*lb)] = true
	}
	if len(seen) != m.Config().Banks {
		t.Errorf("consecutive lines hit %d distinct banks, want %d", len(seen), m.Config().Banks)
	}
	// Same line offset maps to the same bank.
	if m.BankOf(0) != m.BankOf(63) {
		t.Error("addresses within one line map to different banks")
	}
}

func TestAccessBatchOverlapsBanks(t *testing.T) {
	cfg := DefaultConfig()
	m := MustNew(cfg)
	lb := int64(cfg.LineBytes)

	// N accesses all to one bank: serialized.
	var oneBank []int64
	for i := 0; i < 8; i++ {
		oneBank = append(oneBank, int64(i)*lb*int64(cfg.Banks))
	}
	serial := m.AccessBatch(oneBank)

	m2 := MustNew(cfg)
	// N accesses spread over all banks: overlapped.
	var spread []int64
	for i := 0; i < 8; i++ {
		spread = append(spread, int64(i)*lb)
	}
	parallel := m2.AccessBatch(spread)

	if parallel >= serial {
		t.Errorf("bank-parallel batch (%d) not faster than single-bank batch (%d)", parallel, serial)
	}
}

func TestGatherBatchBurstGranularity(t *testing.T) {
	cfg := DefaultConfig()
	m := MustNew(cfg)
	// 4 bytes at offset 0: one burst.
	m.GatherBatch([]GatherReq{{Addr: 0, Bytes: 4}})
	if got := m.Stats().BytesRead; got != uint64(cfg.BurstBytes) {
		t.Errorf("4-byte gather read %d bytes, want one %d-byte burst", got, cfg.BurstBytes)
	}
	m.ResetStats()
	// A range straddling a burst boundary: two bursts.
	m.GatherBatch([]GatherReq{{Addr: int64(cfg.BurstBytes) - 2, Bytes: 4}})
	if got := m.Stats().BytesRead; got != uint64(2*cfg.BurstBytes) {
		t.Errorf("straddling gather read %d bytes, want %d", got, 2*cfg.BurstBytes)
	}
	m.ResetStats()
	// Zero/negative requests are ignored.
	if got := m.GatherBatch([]GatherReq{{Addr: 0, Bytes: 0}}); got != 0 {
		t.Errorf("empty gather cost %d", got)
	}
}

func TestGatherBytesTracked(t *testing.T) {
	m := MustNew(DefaultConfig())
	m.Access(0)
	m.GatherBatch([]GatherReq{{Addr: 4096, Bytes: 32}})
	st := m.Stats()
	if st.GatherBytes != 32 {
		t.Errorf("GatherBytes = %d, want 32", st.GatherBytes)
	}
	if st.BytesRead != 64+32 {
		t.Errorf("BytesRead = %d, want 96", st.BytesRead)
	}
}

func TestOccupancyFloors(t *testing.T) {
	m := MustNew(DefaultConfig())
	if got := m.OccupancyCycles(128); got != 64 {
		t.Errorf("OccupancyCycles(128) = %d, want 64 at 2 B/cycle", got)
	}
	if got := m.FabricOccupancyCycles(128); got != 32 {
		t.Errorf("FabricOccupancyCycles(128) = %d, want 32 at 2 ports", got)
	}
}

func TestGatherSharesRowBufferWithCPU(t *testing.T) {
	m := MustNew(DefaultConfig())
	m.Access(0) // opens the row on bank 0
	before := m.Stats().RowMisses
	m.GatherBatch([]GatherReq{{Addr: 8, Bytes: 4}}) // same line, same open row
	if got := m.Stats().RowMisses; got != before {
		t.Errorf("gather to an open row caused a row miss")
	}
}

func TestReset(t *testing.T) {
	m := MustNew(DefaultConfig())
	m.Access(0)
	m.Reset()
	if m.Stats() != (Stats{}) {
		t.Error("Reset did not clear stats")
	}
	// Row buffers are closed again: first access misses.
	m.Access(0)
	if m.Stats().RowMisses != 1 {
		t.Error("Reset did not close row buffers")
	}
}

func TestArena(t *testing.T) {
	a := MustArena(100, 64)
	first := a.Alloc(10)
	if first != 128 {
		t.Errorf("first alloc at %d, want 128 (aligned up from 100)", first)
	}
	second := a.Alloc(64)
	if second != 192 {
		t.Errorf("second alloc at %d, want 192", second)
	}
	third := a.Alloc(1)
	if third != 256 {
		t.Errorf("third alloc at %d, want 256", third)
	}
	if _, err := NewArena(0, 3); err == nil {
		t.Error("non-power-of-two alignment accepted")
	}
	if _, err := NewArena(-1, 64); err == nil {
		t.Error("negative base accepted")
	}
}

// TestArenaDisjointProperty: arena allocations never overlap and are
// aligned.
func TestArenaDisjointProperty(t *testing.T) {
	check := func(sizes []uint16) bool {
		a := MustArena(0, 64)
		prevEnd := int64(0)
		for _, s := range sizes {
			start := a.Alloc(int64(s))
			if start%64 != 0 || start < prevEnd {
				return false
			}
			prevEnd = start + int64(s)
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// TestGatherCostNeverBelowFloor: for arbitrary gathers, the critical path
// returned is at least the fabric-port bandwidth floor of the bytes moved.
func TestGatherCostNeverBelowFloor(t *testing.T) {
	check := func(addrs []uint16, width uint8) bool {
		if len(addrs) == 0 {
			return true
		}
		m := MustNew(DefaultConfig())
		reqs := make([]GatherReq, len(addrs))
		w := int(width%64) + 1
		for i, a := range addrs {
			reqs[i] = GatherReq{Addr: int64(a), Bytes: w}
		}
		cost := m.GatherBatch(reqs)
		return cost >= m.FabricOccupancyCycles(m.Stats().BytesRead)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
