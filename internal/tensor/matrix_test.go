package tensor

import (
	"math"
	"math/rand"
	"testing"

	"rfabric/internal/engine"
)

func newMatrix(t *testing.T, rows, cols int) *Matrix {
	t.Helper()
	sys := engine.MustSystem(engine.DefaultSystemConfig())
	m, err := NewMatrix(sys, rows, cols)
	if err != nil {
		t.Fatalf("NewMatrix: %v", err)
	}
	rng := rand.New(rand.NewSource(13))
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if err := m.Set(r, c, float64(r*cols+c)+rng.Float64()); err != nil {
				t.Fatal(err)
			}
		}
	}
	return m
}

func TestSetAtRoundTrip(t *testing.T) {
	sys := engine.MustSystem(engine.DefaultSystemConfig())
	m, err := NewMatrix(sys, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Set(2, 1, 42.5); err != nil {
		t.Fatal(err)
	}
	v, err := m.At(2, 1)
	if err != nil || v != 42.5 {
		t.Errorf("At = %v, %v", v, err)
	}
	if v, _ := m.At(0, 0); v != 0 {
		t.Errorf("untouched cell = %v", v)
	}
	if err := m.Set(4, 0, 1); err == nil {
		t.Error("out-of-range Set accepted")
	}
}

func TestFabricSliceMatchesCPU(t *testing.T) {
	m := newMatrix(t, 200, 16)
	for _, block := range [][2]int{{0, 1}, {3, 7}, {0, 16}, {12, 16}} {
		fab, err := m.SliceColsFabric(block[0], block[1])
		if err != nil {
			t.Fatalf("fabric slice %v: %v", block, err)
		}
		m.sys.ResetState()
		cpu, err := m.SliceColsCPU(block[0], block[1])
		if err != nil {
			t.Fatalf("cpu slice %v: %v", block, err)
		}
		if len(fab.Data) != len(cpu.Data) {
			t.Fatalf("block %v: lengths differ", block)
		}
		for i := range fab.Data {
			if fab.Data[i] != cpu.Data[i] {
				t.Fatalf("block %v: element %d differs", block, i)
			}
		}
	}
}

func TestFabricSliceBeatsStridedForNarrowBlocks(t *testing.T) {
	m := newMatrix(t, 5000, 16)
	m.sys.ResetState()
	fab, err := m.SliceColsFabric(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	m.sys.ResetState()
	cpu, err := m.SliceColsCPU(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if fab.Cycles >= cpu.Cycles {
		t.Errorf("fabric slice (%d cycles) not cheaper than strided CPU slice (%d)", fab.Cycles, cpu.Cycles)
	}
}

func TestMatVecSlice(t *testing.T) {
	m := newMatrix(t, 300, 8)
	x := []float64{1, -2, 0.5}
	y, cycles, err := m.MatVecSlice(2, 5, x)
	if err != nil {
		t.Fatal(err)
	}
	if cycles == 0 {
		t.Error("zero modeled cost")
	}
	// Reference multiply.
	for r := 0; r < m.Rows(); r++ {
		want := 0.0
		for i, c := range []int{2, 3, 4} {
			v, _ := m.At(r, c)
			want += v * x[i]
		}
		if math.Abs(y[r]-want) > 1e-9 {
			t.Fatalf("y[%d] = %v, want %v", r, y[r], want)
		}
	}
	if _, _, err := m.MatVecSlice(0, 3, []float64{1}); err == nil {
		t.Error("mismatched x accepted")
	}
}

func TestSliceValidation(t *testing.T) {
	m := newMatrix(t, 4, 4)
	for _, block := range [][2]int{{-1, 2}, {2, 2}, {3, 9}} {
		if _, err := m.SliceColsFabric(block[0], block[1]); err == nil {
			t.Errorf("block %v accepted", block)
		}
	}
	if _, err := NewMatrix(nil, 2, 2); err == nil {
		t.Error("nil system accepted")
	}
	if _, err := NewMatrix(engine.MustSystem(engine.DefaultSystemConfig()), 0, 2); err == nil {
		t.Error("zero rows accepted")
	}
}

// TestWideMatrixStillPacks exercises a matrix whose packed slice needs
// chunking through a small fabric buffer.
func TestWideMatrixStillPacks(t *testing.T) {
	cfg := engine.DefaultSystemConfig()
	cfg.Fabric.BufferBytes = 4096
	sys := engine.MustSystem(cfg)
	m, err := NewMatrix(sys, 600, 12)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 600; r++ {
		for c := 0; c < 12; c++ {
			if err := m.Set(r, c, float64(r-c)); err != nil {
				t.Fatal(err)
			}
		}
	}
	s, err := m.SliceColsFabric(1, 11)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.At(599, 0); got != float64(599-1) {
		t.Errorf("element = %v", got)
	}
	if sys.Fab.Stats().Chunks < 2 {
		t.Errorf("expected multiple chunks, got %d", sys.Fab.Stats().Chunks)
	}
}
