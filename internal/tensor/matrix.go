// Package tensor applies Relational Fabric to multi-dimensional data, the
// extension the paper singles out (§VII Q1: "data transformation has great
// potential for other data-intensive applications over multi-dimensional
// data — matrix/tensor slicing and vectorized operations on matrix/tensor
// slices"). A row-major matrix is just a relation whose attributes are
// float64 columns, so a column-block slice is an ephemeral column group:
// the fabric gathers the block and ships it densely, while a CPU slicing
// the same block walks strided memory.
package tensor

import (
	"errors"
	"fmt"

	"rfabric/internal/engine"
	"rfabric/internal/geometry"
	"rfabric/internal/table"
)

// Matrix is a dense row-major float64 matrix placed in simulated memory.
type Matrix struct {
	rows, cols int
	tbl        *table.Table
	sys        *engine.System
}

// NewMatrix allocates a rows×cols matrix on the system.
func NewMatrix(sys *engine.System, rows, cols int) (*Matrix, error) {
	if sys == nil {
		return nil, errors.New("tensor: nil system")
	}
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("tensor: non-positive shape %dx%d", rows, cols)
	}
	defs := make([]geometry.Column, cols)
	for c := range defs {
		defs[c] = geometry.Column{Name: fmt.Sprintf("c%04d", c), Type: geometry.Float64, Width: 8}
	}
	sch, err := geometry.NewSchema(defs...)
	if err != nil {
		return nil, err
	}
	base := sys.Arena.Alloc(int64(rows * sch.RowBytes()))
	tbl, err := table.New("matrix", sch, table.WithCapacity(rows), table.WithBaseAddr(base))
	if err != nil {
		return nil, err
	}
	zero := make([]byte, sch.RowBytes())
	for r := 0; r < rows; r++ {
		if _, err := tbl.AppendRaw(0, zero); err != nil {
			return nil, err
		}
	}
	return &Matrix{rows: rows, cols: cols, tbl: tbl, sys: sys}, nil
}

// Rows returns the row count.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the column count.
func (m *Matrix) Cols() int { return m.cols }

// Set writes element (r, c). Load-time operation; not cost-modeled.
func (m *Matrix) Set(r, c int, v float64) error {
	if r < 0 || r >= m.rows || c < 0 || c >= m.cols {
		return fmt.Errorf("tensor: (%d,%d) out of %dx%d", r, c, m.rows, m.cols)
	}
	// Rewrite the single cell in place through the payload view.
	payload := m.tbl.RowPayload(r)
	row, err := table.DecodeRow(m.tbl.Schema(), payload)
	if err != nil {
		return err
	}
	row[c] = table.F64(v)
	buf, err := table.EncodeRow(m.tbl.Schema(), row...)
	if err != nil {
		return err
	}
	copy(payload, buf)
	return nil
}

// At reads element (r, c) without cost accounting.
func (m *Matrix) At(r, c int) (float64, error) {
	v, err := m.tbl.Get(r, c)
	if err != nil {
		return 0, err
	}
	return v.Float, nil
}

// Slice is a dense copy of a column block with its modeled extraction cost.
type Slice struct {
	Rows, Cols int
	Data       []float64 // row-major, Rows*Cols
	Cycles     uint64
}

// At reads element (r, c) of the slice.
func (s *Slice) At(r, c int) float64 { return s.Data[r*s.Cols+c] }

// SliceColsFabric extracts columns [c0, c1) through the fabric: an
// ephemeral view of the block, packed and shipped densely.
func (m *Matrix) SliceColsFabric(c0, c1 int) (*Slice, error) {
	if err := m.checkBlock(c0, c1); err != nil {
		return nil, err
	}
	cols := make([]int, 0, c1-c0)
	for c := c0; c < c1; c++ {
		cols = append(cols, c)
	}
	geom, err := geometry.NewGeometry(m.tbl.Schema(), cols...)
	if err != nil {
		return nil, err
	}
	ev, err := m.sys.Fab.Configure(m.tbl, geom)
	if err != nil {
		return nil, err
	}
	out := &Slice{Rows: m.rows, Cols: c1 - c0, Data: make([]float64, 0, m.rows*(c1-c0))}
	lineBytes := int64(m.sys.Hier.LineBytes())
	var pipeline uint64
	for {
		before := m.sys.Hier.Stats().Cycles
		ch, ok := ev.Next()
		if !ok {
			break
		}
		lines := (len(ch.Data) + int(lineBytes) - 1) / int(lineBytes)
		for i := 0; i < lines; i++ {
			m.sys.Hier.FillFromFabric(ch.BaseAddr + int64(i)*lineBytes)
		}
		for off := 0; off+8 <= len(ch.Data); off += 8 {
			m.sys.Hier.Load(ch.BaseAddr + int64(off))
			out.Data = append(out.Data, decodeF64(ch.Data[off:]))
		}
		consumer := m.sys.Hier.Stats().Cycles - before
		if ch.ProducerCycles > consumer {
			pipeline += ch.ProducerCycles
		} else {
			pipeline += consumer
		}
	}
	out.Cycles = pipeline
	return out, nil
}

// SliceColsCPU extracts the same block the conventional way: strided loads
// through the cache hierarchy, one row at a time.
func (m *Matrix) SliceColsCPU(c0, c1 int) (*Slice, error) {
	if err := m.checkBlock(c0, c1); err != nil {
		return nil, err
	}
	out := &Slice{Rows: m.rows, Cols: c1 - c0, Data: make([]float64, 0, m.rows*(c1-c0))}
	h := m.sys.Hier
	start := h.Stats().Cycles
	sch := m.tbl.Schema()
	for r := 0; r < m.rows; r++ {
		payload := m.tbl.RowPayload(r)
		for c := c0; c < c1; c++ {
			h.Load(m.tbl.ColumnAddr(r, c))
			out.Data = append(out.Data, decodeF64(payload[sch.Offset(c):]))
		}
	}
	out.Cycles = h.Stats().Cycles - start
	return out, nil
}

// MatVecSlice computes y = A[:, c0:c1] · x over the fabric-shipped block.
// x must have c1-c0 entries. Returns y and the modeled cycles (slice
// extraction + multiply-accumulate work).
func (m *Matrix) MatVecSlice(c0, c1 int, x []float64) ([]float64, uint64, error) {
	if len(x) != c1-c0 {
		return nil, 0, fmt.Errorf("tensor: x has %d entries for a %d-column block", len(x), c1-c0)
	}
	s, err := m.SliceColsFabric(c0, c1)
	if err != nil {
		return nil, 0, err
	}
	y := make([]float64, m.rows)
	var fma uint64
	for r := 0; r < m.rows; r++ {
		acc := 0.0
		for c := 0; c < s.Cols; c++ {
			acc += s.At(r, c) * x[c]
			fma++
		}
		y[r] = acc
	}
	return y, s.Cycles + fma*engine.ScalarOpCycles, nil
}

func (m *Matrix) checkBlock(c0, c1 int) error {
	if c0 < 0 || c1 > m.cols || c0 >= c1 {
		return fmt.Errorf("tensor: column block [%d,%d) out of %d columns", c0, c1, m.cols)
	}
	return nil
}

func decodeF64(b []byte) float64 {
	v := table.DecodeColumn(geometry.Column{Name: "x", Type: geometry.Float64, Width: 8}, b)
	return v.Float
}
