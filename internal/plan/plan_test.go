package plan

import (
	"strings"
	"testing"

	"rfabric/internal/expr"
	"rfabric/internal/geometry"
	"rfabric/internal/table"
)

func testSchema() *geometry.Schema {
	return geometry.MustSchema(
		geometry.Column{Name: "id", Type: geometry.Int64, Width: 8},
		geometry.Column{Name: "qty", Type: geometry.Float64, Width: 8},
		geometry.Column{Name: "flag", Type: geometry.Char, Width: 1},
	)
}

func TestValidateProjectionChain(t *testing.T) {
	n := NewScan("items", "RM", []int{0, 1}).
		Filter(expr.Conjunction{{Col: 1, Op: expr.Lt, Operand: table.F64(5)}}).
		Project([]int{0, 1})
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if n.Scan().Table != "items" {
		t.Errorf("scan table = %q", n.Scan().Table)
	}
}

func TestValidateSinkChain(t *testing.T) {
	agg := NewScan("items", "", []int{2, 1}).
		Aggregate([]int{2}, []Agg{{Kind: expr.Count}, {Kind: expr.Sum, Arg: expr.ColRef{Col: 1}}})
	n := agg.OrderBy([]SortKey{{Key: -1, Agg: 1, Desc: true}}).Limit(3)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsMalformedChains(t *testing.T) {
	cases := map[string]*Node{
		"no consume": NewScan("t", "", []int{0}).
			Filter(nil).Limit(2),
		"orderby over projection": NewScan("t", "", []int{0}).
			Project([]int{0}).OrderBy([]SortKey{{Key: 0, Agg: -1}}),
		"limit over scalar agg": NewScan("t", "", []int{1}).
			Aggregate(nil, []Agg{{Kind: expr.Count}}).Limit(1),
		"sort key out of range": NewScan("t", "", []int{2}).
			Aggregate([]int{2}, []Agg{{Kind: expr.Count}}).
			OrderBy([]SortKey{{Key: 3, Agg: -1}}),
		"sort key names both": NewScan("t", "", []int{2}).
			Aggregate([]int{2}, []Agg{{Kind: expr.Count}}).
			OrderBy([]SortKey{{Key: 0, Agg: 0}}),
		"negative limit": NewScan("t", "", []int{2}).
			Aggregate([]int{2}, []Agg{{Kind: expr.Count}}).Limit(-1),
	}
	for name, n := range cases {
		if err := n.Validate(); err == nil {
			t.Errorf("%s: Validate accepted malformed chain", name)
		}
	}
}

func TestExplainRendersOperatorTree(t *testing.T) {
	sch := testSchema()
	n := NewScan("items", "RM", []int{2, 1}).
		Filter(expr.Conjunction{{Col: 1, Op: expr.Lt, Operand: table.F64(5)}}).
		Aggregate([]int{2}, []Agg{{Kind: expr.Sum, Arg: expr.ColRef{Col: 1}}}).
		OrderBy([]SortKey{{Key: -1, Agg: 0, Desc: true}}).
		Limit(10)
	got := n.Explain(sch)
	for _, want := range []string{
		"Limit[10]",
		"OrderBy[agg#0 DESC]",
		"Aggregate[group=(flag) aggs=(SUM(qty))]",
		"Filter[qty < 5]",
		"Scan[items source=RM cols=(flag, qty)]",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("Explain missing %q in:\n%s", want, got)
		}
	}
	// Outermost operator first.
	if !strings.HasPrefix(got, "Limit") {
		t.Errorf("Explain should start with the outermost operator:\n%s", got)
	}
}

func TestExplainWithoutSchema(t *testing.T) {
	n := NewScan("t", "", []int{0}).Project([]int{0})
	got := n.Explain(nil)
	if !strings.Contains(got, "source=?") || !strings.Contains(got, "#0") {
		t.Errorf("schema-less Explain = %q", got)
	}
}
