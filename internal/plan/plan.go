// Package plan defines the physical plan IR every execution path shares.
//
// The paper's constructive optimizer (§III-B) prices *access paths*, not
// operator implementations: with the fabric present, any data geometry is
// available on demand, so the only real decision is where the bytes come
// from and what each touched byte costs. The IR encodes that split. A plan
// is an operator chain
//
//	Scan → [Filter] → [Join]* → (Project | Aggregate) → [OrderBy] → [Limit]
//
// where the Scan node names the table and the chosen access path (its
// Source: ROW, COL, RM, IDX, PAR — or AUTO before pricing), and everything
// above it is engine-independent. One shared pipeline in internal/engine
// executes the chain; each engine contributes only its Source.
//
// Join nodes make the chain a left-deep tree: a Join's Input is the probe
// side (another Join, or a [Filter]→Scan chain) and its Build field is the
// build side (always a [Filter]→Scan chain over a base table). Each side is
// a full Source-backed subplan the optimizer prices independently. Column
// indices above a Join live in the join's combined namespace — the probe
// subtree's columns followed by each build table's columns in join order —
// so the probe table's local indices coincide with the combined prefix.
//
// The package depends only on the expression and schema layers so both the
// SQL front end and the engines can build and inspect plans without import
// cycles.
package plan

import (
	"errors"
	"fmt"
	"strings"

	"rfabric/internal/expr"
	"rfabric/internal/geometry"
)

// Op enumerates the physical operators.
type Op uint8

// Physical operators, innermost (Scan) to outermost (Limit).
const (
	OpScan Op = iota
	OpFilter
	OpProject
	OpAggregate
	OpOrderBy
	OpLimit
	OpJoin
)

// String returns the operator's EXPLAIN spelling.
func (o Op) String() string {
	switch o {
	case OpScan:
		return "Scan"
	case OpFilter:
		return "Filter"
	case OpProject:
		return "Project"
	case OpAggregate:
		return "Aggregate"
	case OpOrderBy:
		return "OrderBy"
	case OpLimit:
		return "Limit"
	case OpJoin:
		return "Join"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Agg is one aggregate output term: COUNT(*) when Arg is nil, otherwise
// Kind over an arbitrary scalar expression.
type Agg struct {
	Kind expr.AggKind
	Arg  expr.Scalar
}

// Format renders the term against a schema.
func (a Agg) Format(s *geometry.Schema) string {
	if a.Arg == nil {
		return a.Kind.String() + "(*)"
	}
	return fmt.Sprintf("%s(%s)", a.Kind, a.Arg.Format(s))
}

// SortKey orders grouped output by one output column of the Aggregate
// below: either group key GroupBy[Key] (Agg == -1) or aggregate Aggs[Agg]
// (Key == -1). Exactly one of the two indices is >= 0.
type SortKey struct {
	Key  int // index into the aggregate's group keys, or -1
	Agg  int // index into the aggregate's output terms, or -1
	Desc bool
}

// Node is one operator in the chain. Input is nil only for Scan. Which
// fields are meaningful depends on Op:
//
//	Scan      Table, Source, Snapshot, Cols (columns the path must deliver)
//	Filter    Preds
//	Project   Cols (projected columns, duplicates allowed)
//	Aggregate GroupBy, Aggs
//	OrderBy   Keys
//	Limit     N
//	Join      Build, ProbeKey, BuildKey
type Node struct {
	Op    Op
	Input *Node

	Table    string
	Source   string
	Snapshot *uint64
	Cols     []int

	Preds expr.Conjunction

	GroupBy []int
	Aggs    []Agg

	Keys []SortKey

	N int64

	// Join fields. Build is the build side's [Filter]→Scan chain. ProbeKey
	// indexes the probe subtree's combined namespace; BuildKey indexes the
	// build table's own schema.
	Build    *Node
	ProbeKey int
	BuildKey int

	// Sch, when set, names this node's column indices in Explain instead of
	// the schema the caller passes — join trees set it so nodes above a Join
	// render against the combined namespace while each side's nodes render
	// against their own table schema.
	Sch *geometry.Schema

	// Est and Act carry the optimizer-accountability pair for the access
	// path rooted at this Scan: the estimate the plan was priced with and
	// what execution actually measured. Both are nil until stamped (Est by
	// ChoosePlan / join-side pricing, Act by the executors), so plans that
	// were never priced or never ran render exactly as before.
	Est *Est
	Act *Act

	// Offload names the fabric operator program this Scan pushes near memory
	// ("agg", "group-agg", "semi-join", "dict-scan", or combinations). Empty
	// means every operator runs CPU-side and the node renders exactly as
	// before.
	Offload string
}

// Est is the optimizer's priced prediction for one access path: the engine
// it chose, the modeled cycles it predicted, the selectivity it assumed, and
// the input cardinality the pricing saw. EXPLAIN renders it as the pricing
// block; est_rows for operators above the Scan derive from Rows×Selectivity.
type Est struct {
	Engine      string
	Cycles      float64
	Selectivity float64
	Rows        float64
	// Warm marks an RM estimate priced against a resident fabric group-
	// cache entry (buffer replay) rather than a cold DRAM gather.
	Warm bool
	// Offloaded marks an RM estimate priced for a fabric operator offload:
	// the consumer side collapses to reading the reduced result, so
	// bytes-to-CPU is the dominant term that separates it from CPU-side
	// plans.
	Offloaded bool
}

// EstRowsOut is the predicted output cardinality of the side's Filter (its
// Scan feeds Rows rows in; Selectivity of them survive).
func (e *Est) EstRowsOut() float64 {
	if e == nil {
		return 0
	}
	return e.Rows * e.Selectivity
}

// Act is what one access path's execution actually measured: rows in, rows
// surviving selection, and the side's modeled cycles.
type Act struct {
	RowsScanned int64
	RowsPassed  int64
	Cycles      uint64
}

// Selectivity is the observed survivor fraction.
func (a *Act) Selectivity() float64 {
	if a == nil || a.RowsScanned == 0 {
		return 0
	}
	return float64(a.RowsPassed) / float64(a.RowsScanned)
}

// QError is the symmetric cycle misprediction factor max(est/act, act/est)
// between a stamped estimate and measurement, or 0 when either is missing.
func QError(est, act float64) float64 {
	if est <= 0 || act <= 0 {
		return 0
	}
	if est > act {
		return est / act
	}
	return act / est
}

// NewScan starts a chain at an access-path scan. source may be empty until
// the optimizer prices the plan.
func NewScan(table, source string, cols []int) *Node {
	return &Node{Op: OpScan, Table: table, Source: source, Cols: cols}
}

// Filter appends a predicate operator and returns the new chain head.
func (n *Node) Filter(preds expr.Conjunction) *Node {
	return &Node{Op: OpFilter, Input: n, Preds: preds}
}

// Project appends a projection (checksum consumption) operator.
func (n *Node) Project(cols []int) *Node {
	return &Node{Op: OpProject, Input: n, Cols: cols}
}

// Aggregate appends a (possibly grouped) aggregation operator.
func (n *Node) Aggregate(groupBy []int, aggs []Agg) *Node {
	return &Node{Op: OpAggregate, Input: n, GroupBy: groupBy, Aggs: aggs}
}

// Join appends an equi-join: the receiver becomes the probe side and build
// the build side. probeKey indexes the probe subtree's combined namespace;
// buildKey indexes the build table's schema.
func (n *Node) Join(build *Node, probeKey, buildKey int) *Node {
	return &Node{Op: OpJoin, Input: n, Build: build, ProbeKey: probeKey, BuildKey: buildKey}
}

// OrderBy appends a sort sink over grouped output.
func (n *Node) OrderBy(keys []SortKey) *Node {
	return &Node{Op: OpOrderBy, Input: n, Keys: keys}
}

// Limit appends a row-limit sink.
func (n *Node) Limit(count int64) *Node {
	return &Node{Op: OpLimit, Input: n, N: count}
}

// Scan returns the chain's innermost node along the Input spine, which
// Validate guarantees is an access-path scan (the probe side's scan in a
// join tree; build-side scans are reached through each Join's Build field).
func (n *Node) Scan() *Node {
	cur := n
	for cur.Input != nil {
		cur = cur.Input
	}
	return cur
}

// HasJoin reports whether the tree contains a Join operator.
func (n *Node) HasJoin() bool {
	for cur := n; cur != nil; cur = cur.Input {
		if cur.Op == OpJoin {
			return true
		}
	}
	return false
}

// Joins returns the spine's Join nodes outermost-first (nil for linear
// chains).
func (n *Node) Joins() []*Node {
	var out []*Node
	for cur := n; cur != nil; cur = cur.Input {
		if cur.Op == OpJoin {
			out = append(out, cur)
		}
	}
	return out
}

// Aggregation returns the chain's Aggregate node, or nil.
func (n *Node) Aggregation() *Node {
	for cur := n; cur != nil; cur = cur.Input {
		if cur.Op == OpAggregate {
			return cur
		}
	}
	return nil
}

// Walk visits the chain outermost-first.
func (n *Node) Walk(f func(*Node)) {
	for cur := n; cur != nil; cur = cur.Input {
		f(cur)
	}
}

// Validate checks the tree's structure: operators in pipeline order, one
// consumption shape (Project or Aggregate), sinks only above an Aggregate,
// sort keys referencing its output. Join trees follow the join grammar
// (validateJoinTree); linear chains keep the original straight-line check.
func (n *Node) Validate() error {
	if n.HasJoin() {
		return n.validateJoinTree()
	}
	// Collect outermost-first, then check the order against the grammar
	// Scan [Filter] (Project|Aggregate) [OrderBy] [Limit].
	var ops []*Node
	n.Walk(func(c *Node) { ops = append(ops, c) })
	i := len(ops) - 1
	if ops[i].Op != OpScan {
		return fmt.Errorf("plan: chain must start at a Scan, found %s", ops[i].Op)
	}
	if ops[i].Table == "" {
		return errors.New("plan: Scan has no table")
	}
	i--
	if i >= 0 && ops[i].Op == OpFilter {
		i--
	}
	if i < 0 || (ops[i].Op != OpProject && ops[i].Op != OpAggregate) {
		return errors.New("plan: chain needs exactly one Project or Aggregate above the Scan")
	}
	consume := ops[i]
	if consume.Op == OpAggregate {
		if len(consume.Aggs) == 0 {
			return errors.New("plan: Aggregate with no aggregate terms")
		}
	} else if len(consume.Cols) == 0 {
		return errors.New("plan: Project with no columns")
	}
	i--
	if i >= 0 && ops[i].Op == OpOrderBy {
		ob := ops[i]
		if consume.Op != OpAggregate || len(consume.GroupBy) == 0 {
			return errors.New("plan: OrderBy requires grouped aggregation output")
		}
		if len(ob.Keys) == 0 {
			return errors.New("plan: OrderBy with no keys")
		}
		for _, k := range ob.Keys {
			switch {
			case k.Key >= 0 && k.Agg < 0:
				if k.Key >= len(consume.GroupBy) {
					return fmt.Errorf("plan: sort key references group key %d of %d", k.Key, len(consume.GroupBy))
				}
			case k.Agg >= 0 && k.Key < 0:
				if k.Agg >= len(consume.Aggs) {
					return fmt.Errorf("plan: sort key references aggregate %d of %d", k.Agg, len(consume.Aggs))
				}
			default:
				return errors.New("plan: sort key must name exactly one of group key or aggregate")
			}
		}
		i--
	}
	if i >= 0 && ops[i].Op == OpLimit {
		lim := ops[i]
		if consume.Op != OpAggregate || len(consume.GroupBy) == 0 {
			return errors.New("plan: Limit requires grouped aggregation output")
		}
		if lim.N < 0 {
			return fmt.Errorf("plan: negative Limit %d", lim.N)
		}
		i--
	}
	if i >= 0 {
		return fmt.Errorf("plan: operator %s out of pipeline order", ops[i].Op)
	}
	return nil
}

// validateJoinTree checks the join grammar: [Limit] over [OrderBy] over
// exactly one Project or Aggregate, sitting directly on a left-deep spine
// of Joins whose sides are [Filter]→Scan chains. Predicates live on the
// sides — a Filter directly above a Join is out of order, because the
// lowering pushes every conjunct to the side that owns its column.
func (n *Node) validateJoinTree() error {
	cur := n
	if cur.Op == OpLimit {
		if cur.N < 0 {
			return fmt.Errorf("plan: negative Limit %d", cur.N)
		}
		cur = cur.Input
	}
	var ob *Node
	if cur != nil && cur.Op == OpOrderBy {
		ob = cur
		cur = cur.Input
	}
	if cur == nil || (cur.Op != OpProject && cur.Op != OpAggregate) {
		return errors.New("plan: join tree needs exactly one Project or Aggregate above its topmost Join")
	}
	consume := cur
	if consume.Op == OpAggregate {
		if len(consume.Aggs) == 0 {
			return errors.New("plan: Aggregate with no aggregate terms")
		}
	} else if len(consume.Cols) == 0 {
		return errors.New("plan: Project with no columns")
	}
	if n.Op == OpLimit || ob != nil {
		if consume.Op != OpAggregate || len(consume.GroupBy) == 0 {
			return errors.New("plan: sinks over a join require grouped aggregation output")
		}
	}
	if ob != nil {
		if len(ob.Keys) == 0 {
			return errors.New("plan: OrderBy with no keys")
		}
		for _, k := range ob.Keys {
			switch {
			case k.Key >= 0 && k.Agg < 0:
				if k.Key >= len(consume.GroupBy) {
					return fmt.Errorf("plan: sort key references group key %d of %d", k.Key, len(consume.GroupBy))
				}
			case k.Agg >= 0 && k.Key < 0:
				if k.Agg >= len(consume.Aggs) {
					return fmt.Errorf("plan: sort key references aggregate %d of %d", k.Agg, len(consume.Aggs))
				}
			default:
				return errors.New("plan: sort key must name exactly one of group key or aggregate")
			}
		}
	}
	if consume.Input == nil || consume.Input.Op != OpJoin {
		return errors.New("plan: join tree consumption must sit directly on its topmost Join")
	}
	return validateJoinNode(consume.Input)
}

// validateJoinNode checks one Join and recurses down the probe spine.
func validateJoinNode(j *Node) error {
	if j.ProbeKey < 0 || j.BuildKey < 0 {
		return errors.New("plan: Join needs non-negative probe and build keys")
	}
	if j.Build == nil {
		return errors.New("plan: Join has no build side")
	}
	if err := validateSideChain(j.Build, "build"); err != nil {
		return err
	}
	probe := j.Input
	if probe == nil {
		return errors.New("plan: Join has no probe side")
	}
	if probe.Op == OpJoin {
		return validateJoinNode(probe)
	}
	return validateSideChain(probe, "probe")
}

// validateSideChain checks one join side: an optional Filter over a Scan of
// a base table.
func validateSideChain(n *Node, side string) error {
	cur := n
	if cur.Op == OpFilter {
		if len(cur.Preds) == 0 {
			return fmt.Errorf("plan: %s-side Filter with no predicates", side)
		}
		cur = cur.Input
	}
	if cur == nil || cur.Op != OpScan {
		return fmt.Errorf("plan: %s side must be a [Filter]→Scan chain", side)
	}
	if cur.Table == "" {
		return errors.New("plan: Scan has no table")
	}
	if cur.Input != nil {
		return fmt.Errorf("plan: %s-side Scan has an input", side)
	}
	return nil
}

// Explain renders the tree as an indented operator tree, outermost first.
// sch may be nil; columns then print as ordinals. A node's Sch field, when
// set, overrides sch for naming that node's columns. A Join renders its
// build subtree (├─) before continuing down the probe spine (└─).
func (n *Node) Explain(sch *geometry.Schema) string {
	var b strings.Builder
	n.render(&b, sch, 0, "└─ ")
	return b.String()
}

func (n *Node) render(b *strings.Builder, sch *geometry.Schema, depth int, connector string) {
	if depth > 0 {
		b.WriteString("\n")
		b.WriteString(strings.Repeat("  ", depth-1))
		b.WriteString(connector)
	}
	b.WriteString(n.describe(sch))
	if n.Op == OpJoin && n.Build != nil {
		n.Build.render(b, sch, depth+1, "├─ ")
	}
	if n.Input != nil {
		n.Input.render(b, sch, depth+1, "└─ ")
	}
}

// Describe renders one node's EXPLAIN line (without tree structure); traced
// runs use it to annotate per-operator spans.
func (n *Node) Describe(sch *geometry.Schema) string { return n.describe(sch) }

func (c *Node) describe(sch *geometry.Schema) string {
	if c.Sch != nil {
		sch = c.Sch
	}
	colName := func(col int) string {
		if sch != nil && col >= 0 && col < sch.NumColumns() {
			return sch.Column(col).Name
		}
		return fmt.Sprintf("#%d", col)
	}
	colList := func(cols []int) string {
		parts := make([]string, len(cols))
		for i, col := range cols {
			parts[i] = colName(col)
		}
		return strings.Join(parts, ", ")
	}
	switch c.Op {
	case OpScan:
		src := c.Source
		if src == "" {
			src = "?"
		}
		s := fmt.Sprintf("Scan[%s source=%s cols=(%s)]", c.Table, src, colList(c.Cols))
		if c.Snapshot != nil {
			s += fmt.Sprintf(" @snapshot=%d", *c.Snapshot)
		}
		if c.Offload != "" {
			s += fmt.Sprintf(" offload=%s", c.Offload)
		}
		// The pricing block: the estimate this side was planned with, and —
		// after an EXPLAIN ANALYZE run — what actually happened, so the
		// cost-model error is visible per access path.
		if c.Est != nil {
			warm := ""
			if c.Est.Warm {
				warm = " warm"
			}
			if c.Est.Offloaded {
				warm += " offload"
			}
			s += fmt.Sprintf(" est[%s≈%.0f sel=%.3f rows=%.0f%s]",
				c.Est.Engine, c.Est.Cycles, c.Est.Selectivity, c.Est.Rows, warm)
		}
		if c.Act != nil {
			s += fmt.Sprintf(" act[cycles=%d sel=%.3f rows=%d]",
				c.Act.Cycles, c.Act.Selectivity(), c.Act.RowsScanned)
			if c.Est != nil {
				s += fmt.Sprintf(" q_err=%.2f", QError(c.Est.Cycles, float64(c.Act.Cycles)))
			}
		}
		return s
	case OpFilter:
		if sch != nil {
			return fmt.Sprintf("Filter[%s]", c.Preds.Format(sch))
		}
		return fmt.Sprintf("Filter[%d predicates]", len(c.Preds))
	case OpProject:
		return fmt.Sprintf("Project[%s]", colList(c.Cols))
	case OpAggregate:
		terms := make([]string, len(c.Aggs))
		for i, a := range c.Aggs {
			if sch != nil {
				terms[i] = a.Format(sch)
			} else if a.Arg == nil {
				terms[i] = a.Kind.String() + "(*)"
			} else {
				terms[i] = a.Kind.String() + "(…)"
			}
		}
		if len(c.GroupBy) == 0 {
			return fmt.Sprintf("Aggregate[%s]", strings.Join(terms, ", "))
		}
		return fmt.Sprintf("Aggregate[group=(%s) aggs=(%s)]", colList(c.GroupBy), strings.Join(terms, ", "))
	case OpOrderBy:
		agg := c
		for agg != nil && agg.Op != OpAggregate {
			agg = agg.Input
		}
		parts := make([]string, len(c.Keys))
		for i, k := range c.Keys {
			var label string
			switch {
			case k.Key >= 0 && agg != nil && k.Key < len(agg.GroupBy):
				label = colName(agg.GroupBy[k.Key])
			case k.Key >= 0:
				label = fmt.Sprintf("key#%d", k.Key)
			default:
				label = fmt.Sprintf("agg#%d", k.Agg)
			}
			if k.Desc {
				label += " DESC"
			}
			parts[i] = label
		}
		return fmt.Sprintf("OrderBy[%s]", strings.Join(parts, ", "))
	case OpLimit:
		return fmt.Sprintf("Limit[%d]", c.N)
	case OpJoin:
		buildName := fmt.Sprintf("#%d", c.BuildKey)
		if c.Build != nil {
			bs := c.Build.Scan()
			if bs.Sch != nil && c.BuildKey >= 0 && c.BuildKey < bs.Sch.NumColumns() {
				buildName = bs.Sch.Column(c.BuildKey).Name
			}
		}
		return fmt.Sprintf("Join[%s = %s]", colName(c.ProbeKey), buildName)
	default:
		return c.Op.String()
	}
}
