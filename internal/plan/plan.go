// Package plan defines the physical plan IR every execution path shares.
//
// The paper's constructive optimizer (§III-B) prices *access paths*, not
// operator implementations: with the fabric present, any data geometry is
// available on demand, so the only real decision is where the bytes come
// from and what each touched byte costs. The IR encodes that split. A plan
// is a straight-line operator chain
//
//	Scan → [Filter] → (Project | Aggregate) → [OrderBy] → [Limit]
//
// where the Scan node names the table and the chosen access path (its
// Source: ROW, COL, RM, IDX, PAR — or AUTO before pricing), and everything
// above it is engine-independent. One shared pipeline in internal/engine
// executes the chain; each engine contributes only its Source.
//
// The package depends only on the expression and schema layers so both the
// SQL front end and the engines can build and inspect plans without import
// cycles.
package plan

import (
	"errors"
	"fmt"
	"strings"

	"rfabric/internal/expr"
	"rfabric/internal/geometry"
)

// Op enumerates the physical operators.
type Op uint8

// Physical operators, innermost (Scan) to outermost (Limit).
const (
	OpScan Op = iota
	OpFilter
	OpProject
	OpAggregate
	OpOrderBy
	OpLimit
)

// String returns the operator's EXPLAIN spelling.
func (o Op) String() string {
	switch o {
	case OpScan:
		return "Scan"
	case OpFilter:
		return "Filter"
	case OpProject:
		return "Project"
	case OpAggregate:
		return "Aggregate"
	case OpOrderBy:
		return "OrderBy"
	case OpLimit:
		return "Limit"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Agg is one aggregate output term: COUNT(*) when Arg is nil, otherwise
// Kind over an arbitrary scalar expression.
type Agg struct {
	Kind expr.AggKind
	Arg  expr.Scalar
}

// Format renders the term against a schema.
func (a Agg) Format(s *geometry.Schema) string {
	if a.Arg == nil {
		return a.Kind.String() + "(*)"
	}
	return fmt.Sprintf("%s(%s)", a.Kind, a.Arg.Format(s))
}

// SortKey orders grouped output by one output column of the Aggregate
// below: either group key GroupBy[Key] (Agg == -1) or aggregate Aggs[Agg]
// (Key == -1). Exactly one of the two indices is >= 0.
type SortKey struct {
	Key  int // index into the aggregate's group keys, or -1
	Agg  int // index into the aggregate's output terms, or -1
	Desc bool
}

// Node is one operator in the chain. Input is nil only for Scan. Which
// fields are meaningful depends on Op:
//
//	Scan      Table, Source, Snapshot, Cols (columns the path must deliver)
//	Filter    Preds
//	Project   Cols (projected columns, duplicates allowed)
//	Aggregate GroupBy, Aggs
//	OrderBy   Keys
//	Limit     N
type Node struct {
	Op    Op
	Input *Node

	Table    string
	Source   string
	Snapshot *uint64
	Cols     []int

	Preds expr.Conjunction

	GroupBy []int
	Aggs    []Agg

	Keys []SortKey

	N int64
}

// NewScan starts a chain at an access-path scan. source may be empty until
// the optimizer prices the plan.
func NewScan(table, source string, cols []int) *Node {
	return &Node{Op: OpScan, Table: table, Source: source, Cols: cols}
}

// Filter appends a predicate operator and returns the new chain head.
func (n *Node) Filter(preds expr.Conjunction) *Node {
	return &Node{Op: OpFilter, Input: n, Preds: preds}
}

// Project appends a projection (checksum consumption) operator.
func (n *Node) Project(cols []int) *Node {
	return &Node{Op: OpProject, Input: n, Cols: cols}
}

// Aggregate appends a (possibly grouped) aggregation operator.
func (n *Node) Aggregate(groupBy []int, aggs []Agg) *Node {
	return &Node{Op: OpAggregate, Input: n, GroupBy: groupBy, Aggs: aggs}
}

// OrderBy appends a sort sink over grouped output.
func (n *Node) OrderBy(keys []SortKey) *Node {
	return &Node{Op: OpOrderBy, Input: n, Keys: keys}
}

// Limit appends a row-limit sink.
func (n *Node) Limit(count int64) *Node {
	return &Node{Op: OpLimit, Input: n, N: count}
}

// Scan returns the chain's innermost node, which Validate guarantees is the
// access-path scan.
func (n *Node) Scan() *Node {
	cur := n
	for cur.Input != nil {
		cur = cur.Input
	}
	return cur
}

// Aggregation returns the chain's Aggregate node, or nil.
func (n *Node) Aggregation() *Node {
	for cur := n; cur != nil; cur = cur.Input {
		if cur.Op == OpAggregate {
			return cur
		}
	}
	return nil
}

// Walk visits the chain outermost-first.
func (n *Node) Walk(f func(*Node)) {
	for cur := n; cur != nil; cur = cur.Input {
		f(cur)
	}
}

// Validate checks the chain's structure: operators in pipeline order, one
// consumption shape (Project or Aggregate), sinks only above an Aggregate,
// sort keys referencing its output.
func (n *Node) Validate() error {
	// Collect outermost-first, then check the order against the grammar
	// Scan [Filter] (Project|Aggregate) [OrderBy] [Limit].
	var ops []*Node
	n.Walk(func(c *Node) { ops = append(ops, c) })
	i := len(ops) - 1
	if ops[i].Op != OpScan {
		return fmt.Errorf("plan: chain must start at a Scan, found %s", ops[i].Op)
	}
	if ops[i].Table == "" {
		return errors.New("plan: Scan has no table")
	}
	i--
	if i >= 0 && ops[i].Op == OpFilter {
		i--
	}
	if i < 0 || (ops[i].Op != OpProject && ops[i].Op != OpAggregate) {
		return errors.New("plan: chain needs exactly one Project or Aggregate above the Scan")
	}
	consume := ops[i]
	if consume.Op == OpAggregate {
		if len(consume.Aggs) == 0 {
			return errors.New("plan: Aggregate with no aggregate terms")
		}
	} else if len(consume.Cols) == 0 {
		return errors.New("plan: Project with no columns")
	}
	i--
	if i >= 0 && ops[i].Op == OpOrderBy {
		ob := ops[i]
		if consume.Op != OpAggregate || len(consume.GroupBy) == 0 {
			return errors.New("plan: OrderBy requires grouped aggregation output")
		}
		if len(ob.Keys) == 0 {
			return errors.New("plan: OrderBy with no keys")
		}
		for _, k := range ob.Keys {
			switch {
			case k.Key >= 0 && k.Agg < 0:
				if k.Key >= len(consume.GroupBy) {
					return fmt.Errorf("plan: sort key references group key %d of %d", k.Key, len(consume.GroupBy))
				}
			case k.Agg >= 0 && k.Key < 0:
				if k.Agg >= len(consume.Aggs) {
					return fmt.Errorf("plan: sort key references aggregate %d of %d", k.Agg, len(consume.Aggs))
				}
			default:
				return errors.New("plan: sort key must name exactly one of group key or aggregate")
			}
		}
		i--
	}
	if i >= 0 && ops[i].Op == OpLimit {
		lim := ops[i]
		if consume.Op != OpAggregate || len(consume.GroupBy) == 0 {
			return errors.New("plan: Limit requires grouped aggregation output")
		}
		if lim.N < 0 {
			return fmt.Errorf("plan: negative Limit %d", lim.N)
		}
		i--
	}
	if i >= 0 {
		return fmt.Errorf("plan: operator %s out of pipeline order", ops[i].Op)
	}
	return nil
}

// Explain renders the chain as an indented operator tree, outermost first.
// sch may be nil; columns then print as ordinals.
func (n *Node) Explain(sch *geometry.Schema) string {
	var b strings.Builder
	depth := 0
	n.Walk(func(c *Node) {
		if depth > 0 {
			b.WriteString("\n")
			b.WriteString(strings.Repeat("  ", depth-1))
			b.WriteString("└─ ")
		}
		b.WriteString(c.describe(sch))
		depth++
	})
	return b.String()
}

func (c *Node) describe(sch *geometry.Schema) string {
	colName := func(col int) string {
		if sch != nil && col >= 0 && col < sch.NumColumns() {
			return sch.Column(col).Name
		}
		return fmt.Sprintf("#%d", col)
	}
	colList := func(cols []int) string {
		parts := make([]string, len(cols))
		for i, col := range cols {
			parts[i] = colName(col)
		}
		return strings.Join(parts, ", ")
	}
	switch c.Op {
	case OpScan:
		src := c.Source
		if src == "" {
			src = "?"
		}
		s := fmt.Sprintf("Scan[%s source=%s cols=(%s)]", c.Table, src, colList(c.Cols))
		if c.Snapshot != nil {
			s += fmt.Sprintf(" @snapshot=%d", *c.Snapshot)
		}
		return s
	case OpFilter:
		if sch != nil {
			return fmt.Sprintf("Filter[%s]", c.Preds.Format(sch))
		}
		return fmt.Sprintf("Filter[%d predicates]", len(c.Preds))
	case OpProject:
		return fmt.Sprintf("Project[%s]", colList(c.Cols))
	case OpAggregate:
		terms := make([]string, len(c.Aggs))
		for i, a := range c.Aggs {
			if sch != nil {
				terms[i] = a.Format(sch)
			} else if a.Arg == nil {
				terms[i] = a.Kind.String() + "(*)"
			} else {
				terms[i] = a.Kind.String() + "(…)"
			}
		}
		if len(c.GroupBy) == 0 {
			return fmt.Sprintf("Aggregate[%s]", strings.Join(terms, ", "))
		}
		return fmt.Sprintf("Aggregate[group=(%s) aggs=(%s)]", colList(c.GroupBy), strings.Join(terms, ", "))
	case OpOrderBy:
		agg := c
		for agg != nil && agg.Op != OpAggregate {
			agg = agg.Input
		}
		parts := make([]string, len(c.Keys))
		for i, k := range c.Keys {
			var label string
			switch {
			case k.Key >= 0 && agg != nil && k.Key < len(agg.GroupBy):
				label = colName(agg.GroupBy[k.Key])
			case k.Key >= 0:
				label = fmt.Sprintf("key#%d", k.Key)
			default:
				label = fmt.Sprintf("agg#%d", k.Agg)
			}
			if k.Desc {
				label += " DESC"
			}
			parts[i] = label
		}
		return fmt.Sprintf("OrderBy[%s]", strings.Join(parts, ", "))
	case OpLimit:
		return fmt.Sprintf("Limit[%d]", c.N)
	default:
		return c.Op.String()
	}
}
