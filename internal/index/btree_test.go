package index

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"rfabric/internal/cache"
	"rfabric/internal/dram"
	"rfabric/internal/geometry"
	"rfabric/internal/table"
)

func buildFixture(t *testing.T, keys []int64) (*BTree, *table.Table, *cache.Hierarchy) {
	t.Helper()
	sch := geometry.MustSchema(
		geometry.Column{Name: "k", Type: geometry.Int64, Width: 8},
		geometry.Column{Name: "v", Type: geometry.Int32, Width: 4},
	)
	arena := dram.MustArena(0, 64)
	tbl := table.MustNew("t", sch, table.WithCapacity(len(keys)),
		table.WithBaseAddr(arena.Alloc(int64(len(keys)*sch.RowBytes()))))
	for i, k := range keys {
		tbl.MustAppend(0, table.I64(k), table.I32(int32(i)))
	}
	idx, err := Build(tbl, 0, arena)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	mem := dram.MustNew(dram.DefaultConfig())
	h := cache.MustHierarchy(cache.DefaultHierarchy(), mem)
	return idx, tbl, h
}

func TestLookupFindsAllDuplicates(t *testing.T) {
	keys := make([]int64, 1000)
	for i := range keys {
		keys[i] = int64(i % 100) // ten duplicates per key
	}
	idx, _, h := buildFixture(t, keys)
	if err := idx.Validate(); err != nil {
		t.Fatal(err)
	}
	rows := idx.Lookup(h, 42)
	if len(rows) != 10 {
		t.Fatalf("Lookup(42) = %d rows, want 10", len(rows))
	}
	for _, r := range rows {
		if keys[r] != 42 {
			t.Errorf("row %d has key %d", r, keys[r])
		}
	}
	if got := idx.Lookup(h, 1000); got != nil {
		t.Errorf("Lookup of absent key = %v", got)
	}
}

func TestRangeMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	keys := make([]int64, 5000)
	for i := range keys {
		keys[i] = int64(rng.Intn(2000))
	}
	idx, _, h := buildFixture(t, keys)
	lo, hi := int64(500), int64(800)
	got := idx.Range(h, lo, hi)
	var want []int
	for r, k := range keys {
		if k >= lo && k <= hi {
			want = append(want, r)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("Range = %d rows, want %d", len(got), len(want))
	}
	// Range returns key order; compare as sets.
	sort.Ints(got)
	sort.Ints(want)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Range row set differs at %d: %d vs %d", i, got[i], want[i])
		}
	}
	if idx.Range(h, 10, 5) != nil {
		t.Error("inverted range returned rows")
	}
}

func TestPointLookupIsCheaperThanScan(t *testing.T) {
	keys := make([]int64, 100_000)
	for i := range keys {
		keys[i] = int64(i)
	}
	idx, tbl, h := buildFixture(t, keys)
	h.Reset()
	idx.Lookup(h, 77_777)
	lookupLoads := h.Stats().Loads
	// An index point lookup touches height * ~3 lines; a scan touches every
	// row. The gap is the paper's residual-role-for-indexes claim (§III-A).
	if lookupLoads > uint64(idx.Height()*4) {
		t.Errorf("lookup issued %d loads for height %d", lookupLoads, idx.Height())
	}
	if lookupLoads*100 > uint64(tbl.NumRows()) {
		t.Errorf("lookup cost (%d loads) not clearly below scan cost (%d rows)", lookupLoads, tbl.NumRows())
	}
}

func TestInsertKeepsInvariants(t *testing.T) {
	idx, _, h := buildFixture(t, []int64{10, 20, 30})
	rng := rand.New(rand.NewSource(11))
	inserted := map[int64]int{10: 1, 20: 1, 30: 1}
	for i := 0; i < 5000; i++ {
		k := int64(rng.Intn(1000))
		idx.Insert(h, k, 3+i)
		inserted[k]++
	}
	if err := idx.Validate(); err != nil {
		t.Fatalf("after inserts: %v", err)
	}
	// Spot-check a few keys.
	for _, k := range []int64{0, 10, 500, 999} {
		got := len(idx.Lookup(h, k))
		if got != inserted[k] {
			t.Errorf("Lookup(%d) = %d rows, want %d", k, got, inserted[k])
		}
	}
	if idx.Height() < 2 {
		t.Errorf("tree never split: height %d", idx.Height())
	}
}

func TestBuildValidation(t *testing.T) {
	sch := geometry.MustSchema(
		geometry.Column{Name: "k", Type: geometry.Char, Width: 4},
	)
	tbl := table.MustNew("t", sch)
	arena := dram.MustArena(0, 64)
	if _, err := Build(tbl, 0, arena); err == nil {
		t.Error("CHAR column accepted as index key")
	}
	if _, err := Build(tbl, 7, arena); err == nil {
		t.Error("out-of-range column accepted")
	}
	if _, err := Build(nil, 0, arena); err == nil {
		t.Error("nil table accepted")
	}
	// Empty table builds an empty, valid tree.
	sch2 := geometry.MustSchema(geometry.Column{Name: "k", Type: geometry.Int64, Width: 8})
	empty := table.MustNew("e", sch2)
	idx, err := Build(empty, 0, arena)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := idx.Lookup(nil, 5); got != nil {
		t.Errorf("empty tree lookup = %v", got)
	}
}

// TestLookupRangeProperty: for random key multisets, Lookup and Range agree
// with a linear scan, before and after random inserts.
func TestLookupRangeProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(500) + 1
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = int64(rng.Intn(200) - 100)
		}
		sch := geometry.MustSchema(geometry.Column{Name: "k", Type: geometry.Int64, Width: 8})
		arena := dram.MustArena(0, 64)
		tbl := table.MustNew("t", sch, table.WithCapacity(n))
		for _, k := range keys {
			tbl.MustAppend(0, table.I64(k))
		}
		idx, err := Build(tbl, 0, arena)
		if err != nil {
			return false
		}
		// Random inserts on top of the bulk load.
		extra := rng.Intn(200)
		for i := 0; i < extra; i++ {
			k := int64(rng.Intn(200) - 100)
			idx.Insert(nil, k, n+i)
			keys = append(keys, k)
		}
		if idx.Validate() != nil {
			return false
		}
		probe := int64(rng.Intn(200) - 100)
		want := 0
		for _, k := range keys {
			if k == probe {
				want++
			}
		}
		if len(idx.Lookup(nil, probe)) != want {
			return false
		}
		lo := int64(rng.Intn(200) - 100)
		hi := lo + int64(rng.Intn(50))
		wantRange := 0
		for _, k := range keys {
			if k >= lo && k <= hi {
				wantRange++
			}
		}
		return len(idx.Range(nil, lo, hi)) == wantRange
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
