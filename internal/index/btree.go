// Package index implements a B+tree over a numeric column of a row table.
// The paper's position (§III-A): with Relational Fabric, range queries are
// served efficiently by on-the-fly column-group scans, so "indexes should be
// used for point queries and point updates". This package provides exactly
// that residual role — and the ablation that quantifies it: a point lookup
// costs a handful of node visits against a fabric scan's full sweep.
//
// Nodes live at simulated addresses so traversals charge the cache
// hierarchy like any other memory access.
package index

import (
	"errors"
	"fmt"
	"sort"

	"rfabric/internal/cache"
	"rfabric/internal/dram"
	"rfabric/internal/geometry"
	"rfabric/internal/table"
)

// fanout is the maximum number of keys per node. 64 keys of 8 bytes plus
// child pointers roughly fills four cache lines — a realistic node.
const fanout = 64

// nodeBytes is the simulated footprint of one node.
const nodeBytes = 1024

// BTree is a B+tree mapping int64-comparable column values to row indices.
// Duplicate keys are supported; each leaf entry carries one row index.
type BTree struct {
	col    int
	sch    *geometry.Schema
	root   *node
	height int
	nodes  int
	arena  *dram.Arena

	// Statistics maintained for the constructive optimizer.
	entries  int
	distinct int
	minKey   int64
	maxKey   int64
}

type node struct {
	addr     int64
	leaf     bool
	keys     []int64
	children []*node // internal nodes
	rows     []int   // leaf nodes: row index per key
	next     *node   // leaf chain for range scans
}

// keyOf extracts the indexable int64 from a column value.
func keyOf(v table.Value) (int64, error) {
	switch v.Type {
	case geometry.Int64, geometry.Int32, geometry.Date:
		return v.Int, nil
	default:
		return 0, fmt.Errorf("index: column type %s is not indexable", v.Type)
	}
}

// Build bulk-loads a B+tree over column col of tbl, allocating node
// addresses from arena. MVCC tables are indexed over all versions; lookups
// can filter by snapshot afterwards (the paper keeps indexes on base data).
func Build(tbl *table.Table, col int, arena *dram.Arena) (*BTree, error) {
	if tbl == nil || arena == nil {
		return nil, errors.New("index: nil table or arena")
	}
	sch := tbl.Schema()
	if col < 0 || col >= sch.NumColumns() {
		return nil, fmt.Errorf("index: column %d out of range", col)
	}
	switch sch.Column(col).Type {
	case geometry.Int64, geometry.Int32, geometry.Date:
	default:
		return nil, fmt.Errorf("index: column %q of type %s is not indexable", sch.Column(col).Name, sch.Column(col).Type)
	}

	t := &BTree{col: col, sch: sch, arena: arena}

	// Collect and sort (key, row) pairs.
	type kr struct {
		k int64
		r int
	}
	pairs := make([]kr, tbl.NumRows())
	for r := 0; r < tbl.NumRows(); r++ {
		v, err := tbl.Get(r, col)
		if err != nil {
			return nil, err
		}
		k, err := keyOf(v)
		if err != nil {
			return nil, err
		}
		pairs[r] = kr{k, r}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].k != pairs[j].k {
			return pairs[i].k < pairs[j].k
		}
		return pairs[i].r < pairs[j].r
	})
	t.entries = len(pairs)
	for i, p := range pairs {
		if i == 0 {
			t.minKey, t.maxKey = p.k, p.k
			t.distinct = 1
			continue
		}
		if p.k != pairs[i-1].k {
			t.distinct++
		}
		t.maxKey = p.k
	}

	// Build the leaf level.
	var leaves []*node
	for start := 0; start < len(pairs); start += fanout {
		end := start + fanout
		if end > len(pairs) {
			end = len(pairs)
		}
		n := t.newNode(true)
		for _, p := range pairs[start:end] {
			n.keys = append(n.keys, p.k)
			n.rows = append(n.rows, p.r)
		}
		if len(leaves) > 0 {
			leaves[len(leaves)-1].next = n
		}
		leaves = append(leaves, n)
	}
	if len(leaves) == 0 {
		t.root = t.newNode(true)
		t.height = 1
		return t, nil
	}

	// Build internal levels bottom-up.
	level := leaves
	t.height = 1
	for len(level) > 1 {
		var parents []*node
		for start := 0; start < len(level); start += fanout {
			end := start + fanout
			if end > len(level) {
				end = len(level)
			}
			p := t.newNode(false)
			for _, child := range level[start:end] {
				// Separator key: the smallest key under the child.
				p.keys = append(p.keys, child.keys[0])
				p.children = append(p.children, child)
			}
			parents = append(parents, p)
		}
		level = parents
		t.height++
	}
	t.root = level[0]
	return t, nil
}

func (t *BTree) newNode(leaf bool) *node {
	t.nodes++
	return &node{addr: t.arena.Alloc(nodeBytes), leaf: leaf}
}

// Column returns the indexed column.
func (t *BTree) Column() int { return t.col }

// Height returns the number of levels.
func (t *BTree) Height() int { return t.height }

// Nodes returns the node count (the index's space cost: nodes * 1 KiB).
func (t *BTree) Nodes() int { return t.nodes }

// Entries returns the number of indexed (key, row) pairs.
func (t *BTree) Entries() int { return t.entries }

// DistinctKeys returns the number of distinct keys — the cardinality
// statistic the optimizer uses to price equality lookups.
func (t *BTree) DistinctKeys() int { return t.distinct }

// KeyRange returns the smallest and largest indexed keys (both zero when
// the index is empty).
func (t *BTree) KeyRange() (min, max int64) { return t.minKey, t.maxKey }

// SizeBytes returns the simulated footprint.
func (t *BTree) SizeBytes() int { return t.nodes * nodeBytes }

// touch charges one node visit to the hierarchy: the header line plus the
// key area actually searched.
func touch(h *cache.Hierarchy, n *node) {
	if h == nil {
		return
	}
	// A binary search over up to 64 keys touches ~3 lines of the node.
	for i := int64(0); i < 3; i++ {
		h.Load(n.addr + i*64)
	}
}

// descend walks from the root to the LEFTMOST leaf that may contain key.
// Separators are the minimum key of their child, so with duplicates a run of
// key may begin in the child before the first separator equal to it.
func (t *BTree) descend(h *cache.Hierarchy, key int64) *node {
	n := t.root
	for !n.leaf {
		touch(h, n)
		// Smallest separator >= key.
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
		switch {
		case i < len(n.keys) && n.keys[i] == key:
			// A run of key starts at child i but may spill back into the
			// previous child's tail.
			if i > 0 {
				i--
			}
		case i == 0:
			// key is below every separator: leftmost child.
		default:
			i--
		}
		n = n.children[i]
	}
	touch(h, n)
	return n
}

// Lookup returns the row indices holding exactly key, charging the
// traversal to h (pass nil to skip cost accounting).
func (t *BTree) Lookup(h *cache.Hierarchy, key int64) []int {
	n := t.descend(h, key)
	var out []int
	for n != nil {
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
		for ; i < len(n.keys) && n.keys[i] == key; i++ {
			out = append(out, n.rows[i])
		}
		if i < len(n.keys) {
			break // saw a key beyond the run
		}
		n = n.next
		if n != nil {
			if len(n.keys) > 0 && n.keys[0] > key {
				break
			}
			touch(h, n)
		}
	}
	return out
}

// Range returns the row indices with lo <= key <= hi in key order.
func (t *BTree) Range(h *cache.Hierarchy, lo, hi int64) []int {
	if lo > hi {
		return nil
	}
	n := t.descend(h, lo)
	var out []int
	for n != nil {
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= lo })
		for ; i < len(n.keys); i++ {
			if n.keys[i] > hi {
				return out
			}
			out = append(out, n.rows[i])
		}
		n = n.next
		if n != nil {
			touch(h, n)
		}
	}
	return out
}

// Insert adds one (key, row) entry. Nodes split top-down on the way back
// up; the tree stays balanced.
func (t *BTree) Insert(h *cache.Hierarchy, key int64, row int) {
	if t.entries == 0 {
		t.minKey, t.maxKey = key, key
		t.distinct = 1
	} else {
		if key < t.minKey {
			t.minKey = key
		}
		if key > t.maxKey {
			t.maxKey = key
		}
		if len(t.Lookup(nil, key)) == 0 {
			t.distinct++
		}
	}
	t.entries++
	promoted, sibling := t.insertInto(h, t.root, key, row)
	if sibling != nil {
		newRoot := t.newNode(false)
		newRoot.keys = []int64{t.root.minKey(), promoted}
		newRoot.children = []*node{t.root, sibling}
		t.root = newRoot
		t.height++
	}
}

func (n *node) minKey() int64 {
	if len(n.keys) == 0 {
		return 0
	}
	return n.keys[0]
}

// insertInto inserts and returns (separator, sibling) when the child split.
func (t *BTree) insertInto(h *cache.Hierarchy, n *node, key int64, row int) (int64, *node) {
	touch(h, n)
	if n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] > key })
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.rows = append(n.rows, 0)
		copy(n.rows[i+1:], n.rows[i:])
		n.rows[i] = row
		if len(n.keys) <= fanout {
			return 0, nil
		}
		// Split the leaf.
		mid := len(n.keys) / 2
		sib := t.newNode(true)
		sib.keys = append(sib.keys, n.keys[mid:]...)
		sib.rows = append(sib.rows, n.rows[mid:]...)
		n.keys = n.keys[:mid]
		n.rows = n.rows[:mid]
		sib.next = n.next
		n.next = sib
		return sib.keys[0], sib
	}

	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] > key })
	if i == 0 {
		i = 1
		// Descending left of everything: lower the separator.
		if key < n.keys[0] {
			n.keys[0] = key
		}
	}
	promoted, sibling := t.insertInto(h, n.children[i-1], key, row)
	if sibling == nil {
		return 0, nil
	}
	n.keys = append(n.keys, 0)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = promoted
	n.children = append(n.children, nil)
	copy(n.children[i+1:], n.children[i:])
	n.children[i] = sibling
	if len(n.children) <= fanout {
		return 0, nil
	}
	// Split the internal node.
	mid := len(n.children) / 2
	sib := t.newNode(false)
	sib.keys = append(sib.keys, n.keys[mid:]...)
	sib.children = append(sib.children, n.children[mid:]...)
	sep := n.keys[mid]
	n.keys = n.keys[:mid]
	n.children = n.children[:mid]
	return sep, sib
}

// Validate checks the B+tree invariants: sorted keys, correct separators,
// balanced depth, and leaf-chain completeness. Tests call it after mutation.
func (t *BTree) Validate() error {
	depths := map[int]bool{}
	var walk func(n *node, depth int, lo, hi *int64) error
	walk = func(n *node, depth int, lo, hi *int64) error {
		for i := 1; i < len(n.keys); i++ {
			if n.keys[i-1] > n.keys[i] {
				return fmt.Errorf("index: unsorted keys at depth %d", depth)
			}
		}
		if lo != nil && len(n.keys) > 0 && n.keys[0] < *lo {
			return fmt.Errorf("index: key below separator at depth %d", depth)
		}
		if hi != nil && len(n.keys) > 0 && n.keys[len(n.keys)-1] > *hi {
			// Equality is legal: a run of duplicates may end exactly at the
			// next subtree's separator.
			return fmt.Errorf("index: key above upper separator at depth %d", depth)
		}
		if n.leaf {
			depths[depth] = true
			if len(n.rows) != len(n.keys) {
				return errors.New("index: leaf rows/keys mismatch")
			}
			return nil
		}
		if len(n.children) != len(n.keys) {
			return errors.New("index: internal children/keys mismatch")
		}
		for i, c := range n.children {
			var childLo, childHi *int64
			childLo = &n.keys[i]
			if i+1 < len(n.keys) {
				childHi = &n.keys[i+1]
			} else {
				childHi = hi
			}
			if err := walk(c, depth+1, childLo, childHi); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 1, nil, nil); err != nil {
		return err
	}
	if len(depths) > 1 {
		return fmt.Errorf("index: leaves at multiple depths %v", depths)
	}
	return nil
}
