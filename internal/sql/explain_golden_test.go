package sql

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rfabric/internal/plan"
	"rfabric/internal/tpch"
)

var updateGolden = flag.Bool("update", false, "rewrite golden EXPLAIN files")

// TestExplainGolden pins the lowered operator tree for the TPC-H workload
// queries (the same three rfquery demos) under every access path. The golden
// files are the EXPLAIN contract: a change to lowering or to the plan
// renderer must show up here as a reviewed diff, not drift silently.
func TestExplainGolden(t *testing.T) {
	sch := tpch.LineitemSchema()
	queries := []struct{ name, sql string }{
		{"projection",
			"SELECT l_orderkey, l_extendedprice FROM lineitem WHERE l_quantity < 5"},
		{"q6",
			"SELECT SUM(l_extendedprice * l_discount) FROM lineitem " +
				"WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01' " +
				"AND l_discount BETWEEN 0.049 AND 0.071 AND l_quantity < 24"},
		{"q1",
			"SELECT l_returnflag, l_linestatus, SUM(l_quantity), SUM(l_extendedprice), " +
				"SUM(l_extendedprice * (1 - l_discount)), COUNT(*) FROM lineitem " +
				"WHERE l_shipdate <= DATE '1998-09-02' GROUP BY l_returnflag, l_linestatus"},
		{"q1_topn",
			"SELECT l_returnflag, l_linestatus, SUM(l_quantity), SUM(l_extendedprice), " +
				"SUM(l_extendedprice * (1 - l_discount)), COUNT(*) FROM lineitem " +
				"WHERE l_shipdate <= DATE '1998-09-02' GROUP BY l_returnflag, l_linestatus " +
				"ORDER BY 3 DESC, l_returnflag LIMIT 4"},
	}
	sources := []string{"ROW", "COL", "RM", "IDX", "PAR", "AUTO"}

	for _, qc := range queries {
		t.Run(qc.name, func(t *testing.T) {
			root, err := CompilePlan(qc.sql, sch)
			if err != nil {
				t.Fatal(err)
			}
			var b strings.Builder
			fmt.Fprintf(&b, "query: %s\n", qc.sql)
			for _, src := range sources {
				if src == "AUTO" {
					root.Scan().Source = "" // renders as "?" until the optimizer prices it
				} else {
					root.Scan().Source = src
				}
				fmt.Fprintf(&b, "\n-- source=%s\n%s\n", src, root.Explain(sch))
			}
			got := b.String()
			path := filepath.Join("testdata", "explain_"+qc.name+".golden")
			if *updateGolden {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("EXPLAIN drifted from %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
			}
		})
	}
}

// TestExplainOffloadGolden pins the EXPLAIN rendering of fabric-offloaded
// plans: the Scan line's offload=... program descriptor and the " offload"
// marker inside the estimate block, for each offload shape the dispatch can
// stamp (ungrouped aggregation, grouped aggregation, Bloom-filtered join
// probe, and a compressed-domain dict-scan).
func TestExplainOffloadGolden(t *testing.T) {
	sch := tpch.LineitemSchema()
	cases := []struct {
		name, sql, offload string
	}{
		{"agg",
			"SELECT SUM(l_quantity), COUNT(*) FROM lineitem WHERE l_quantity < 24",
			"agg"},
		{"group-agg",
			"SELECT l_returnflag, SUM(l_quantity), COUNT(*) FROM lineitem " +
				"WHERE l_shipdate <= DATE '1998-09-02' GROUP BY l_returnflag",
			"group-agg"},
		{"semi-join",
			"SELECT l_orderkey, l_extendedprice FROM lineitem WHERE l_quantity < 5",
			"semi-join"},
		{"dict-scan",
			"SELECT l_orderkey, l_quantity FROM lineitem WHERE l_quantity < 5",
			"dict-scan"},
	}
	var b strings.Builder
	for _, c := range cases {
		root, err := CompilePlan(c.sql, sch)
		if err != nil {
			t.Fatal(err)
		}
		scan := root.Scan()
		scan.Source = "RM"
		scan.Offload = c.offload
		scan.Est = &plan.Est{Engine: "RM", Cycles: 52000, Selectivity: 0.25,
			Rows: 4000, Offloaded: true}
		fmt.Fprintf(&b, "-- offload=%s\nquery: %s\n%s\n\n", c.name, c.sql, root.Explain(sch))
	}
	got := b.String()
	path := filepath.Join("testdata", "explain_offload.golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("offload EXPLAIN drifted from %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestExplainAnalyzedGolden pins the priced EXPLAIN rendering: the Scan line
// with the optimizer's estimate block (est[...]), the run's actuals
// (act[...]), and the derived q-error, exactly as EXPLAIN ANALYZE and the
// statement audit render them. Fixed Est/Act values stand in for a run so
// the golden is deterministic.
func TestExplainAnalyzedGolden(t *testing.T) {
	sch := tpch.LineitemSchema()
	root, err := CompilePlan(
		"SELECT l_orderkey, l_extendedprice FROM lineitem WHERE l_quantity < 5", sch)
	if err != nil {
		t.Fatal(err)
	}
	scan := root.Scan()
	scan.Source = "RM"
	scan.Est = &plan.Est{Engine: "RM", Cycles: 80000, Selectivity: 0.333, Rows: 4000}
	scan.Act = &plan.Act{RowsScanned: 4000, RowsPassed: 1520, Cycles: 76500}
	got := root.Explain(sch)
	path := filepath.Join("testdata", "explain_analyzed.golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("analyzed EXPLAIN drifted from %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}
