package sql

import (
	"testing"

	"rfabric/internal/geometry"
)

// FuzzParseSQL drives arbitrary bytes through the full front end. The
// contract under fuzzing: Parse never panics — it returns a *Stmt or an
// error — and any statement it does accept must survive planning against a
// representative schema, lowering to the physical plan IR, and validation
// of the results, again without panicking. Planning is allowed to reject
// the statement (unknown columns, type mismatches); it is not allowed to
// crash.
func FuzzParseSQL(f *testing.F) {
	seeds := []string{
		"SELECT id, price FROM items",
		"SELECT id FROM t WHERE qty < 5 AND flag = 'R' AND shipdate >= DATE '1994-01-01'",
		"SELECT id FROM t WHERE qty BETWEEN 2 AND 7 AND id > 0",
		"SELECT flag, COUNT(*), SUM(price * (1 - qty)), AVG(qty) FROM t GROUP BY flag",
		"SELECT SUM(price + qty * 2) FROM t",
		"SELECT MIN(price), MAX(price) FROM t WHERE cnt != 3",
		"select ID from Items where QTY < 5",
		"SELECT",
		"SELECT a FROM t WHERE a <",
		"SELECT COUNT( FROM t",
		"SELECT * FROM t",
		"SELECT a FROM t GROUP BY",
		"SELECT '",
		"SELECT a FROM t WHERE d = DATE '19x4-01-01'",
		"SELECT a,,b FROM t",
		"\x00\xff SELECT \xf0 FROM \x9f",
		"SELECT flag, COUNT(*) FROM t GROUP BY flag ORDER BY flag DESC LIMIT 10",
		"SELECT flag, SUM(qty) FROM t GROUP BY flag ORDER BY 2, flag ASC LIMIT 0",
		"SELECT flag, COUNT(*) FROM t GROUP BY flag ORDER BY 0",
		"SELECT id FROM t LIMIT -1",
	}
	for _, s := range seeds {
		f.Add(s)
	}

	schema := geometry.MustSchema(
		geometry.Column{Name: "id", Type: geometry.Int64, Width: 8},
		geometry.Column{Name: "qty", Type: geometry.Float64, Width: 8},
		geometry.Column{Name: "price", Type: geometry.Float64, Width: 8},
		geometry.Column{Name: "flag", Type: geometry.Char, Width: 1},
		geometry.Column{Name: "shipdate", Type: geometry.Date, Width: 4},
		geometry.Column{Name: "cnt", Type: geometry.Int32, Width: 4},
	)

	f.Fuzz(func(t *testing.T, input string) {
		st, err := Parse(input)
		if err != nil {
			if st != nil {
				t.Errorf("Parse(%q) returned both a statement and an error", input)
			}
			return
		}
		if st == nil {
			t.Fatalf("Parse(%q) returned nil statement and nil error", input)
		}
		if q, err := Plan(st, schema); err == nil {
			// A planned query must be internally consistent or explicitly
			// rejected by its own validator — never something in between
			// that would crash an engine downstream.
			_ = q.Validate(schema)
		}
		// The IR path must hold the same contract, including statements
		// with ORDER BY / LIMIT sinks that Plan refuses: a lowered chain
		// validates and renders without panicking.
		root, err := Lower(st, schema)
		if err != nil {
			return // rejection is fine; only a panic is a bug
		}
		if err := root.Validate(); err != nil {
			t.Errorf("Lower(%q) returned an invalid plan: %v", input, err)
		}
		_ = root.Explain(schema)
	})
}
