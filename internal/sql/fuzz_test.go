package sql

import (
	"testing"

	"rfabric/internal/geometry"
)

// FuzzParseSQL drives arbitrary bytes through the full front end. The
// contract under fuzzing: Parse never panics — it returns a *Stmt or an
// error — and any statement it does accept must survive planning against a
// representative schema, lowering to the physical plan IR, and validation
// of the results, again without panicking. Planning is allowed to reject
// the statement (unknown columns, type mismatches); it is not allowed to
// crash.
func FuzzParseSQL(f *testing.F) {
	seeds := []string{
		"SELECT id, price FROM items",
		"SELECT id FROM t WHERE qty < 5 AND flag = 'R' AND shipdate >= DATE '1994-01-01'",
		"SELECT id FROM t WHERE qty BETWEEN 2 AND 7 AND id > 0",
		"SELECT flag, COUNT(*), SUM(price * (1 - qty)), AVG(qty) FROM t GROUP BY flag",
		"SELECT SUM(price + qty * 2) FROM t",
		"SELECT MIN(price), MAX(price) FROM t WHERE cnt != 3",
		"select ID from Items where QTY < 5",
		"SELECT",
		"SELECT a FROM t WHERE a <",
		"SELECT COUNT( FROM t",
		"SELECT * FROM t",
		"SELECT a FROM t GROUP BY",
		"SELECT '",
		"SELECT a FROM t WHERE d = DATE '19x4-01-01'",
		"SELECT a,,b FROM t",
		"\x00\xff SELECT \xf0 FROM \x9f",
		"SELECT flag, COUNT(*) FROM t GROUP BY flag ORDER BY flag DESC LIMIT 10",
		"SELECT flag, SUM(qty) FROM t GROUP BY flag ORDER BY 2, flag ASC LIMIT 0",
		"SELECT flag, COUNT(*) FROM t GROUP BY flag ORDER BY 0",
		"SELECT id FROM t LIMIT -1",
		"SELECT id, SUM(price) FROM t JOIN u ON id = rid GROUP BY id",
		"SELECT t.id, u.tag, SUM(t.price) FROM t JOIN u ON t.id = u.rid GROUP BY t.id, u.tag",
		"SELECT id FROM t JOIN u ON id = rid JOIN v ON rid = vid WHERE qty < 3",
		"SELECT flag, shipdate, COUNT(*) FROM t GROUP BY flag, shipdate",
		"SELECT id FROM t JOIN t ON id = id",
		"SELECT id FROM t JOIN u ON id < rid",
		"SELECT id FROM t JOIN",
		"SELECT id FROM t JOIN u ON",
		"SELECT id FROM t JOIN u ON id =",
		"SELECT u. FROM t JOIN u ON id = rid",
		"SELECT id FROM t JOIN u ON qty = qty",
	}
	for _, s := range seeds {
		f.Add(s)
	}

	schema := geometry.MustSchema(
		geometry.Column{Name: "id", Type: geometry.Int64, Width: 8},
		geometry.Column{Name: "qty", Type: geometry.Float64, Width: 8},
		geometry.Column{Name: "price", Type: geometry.Float64, Width: 8},
		geometry.Column{Name: "flag", Type: geometry.Char, Width: 1},
		geometry.Column{Name: "shipdate", Type: geometry.Date, Width: 4},
		geometry.Column{Name: "cnt", Type: geometry.Int32, Width: 4},
	)

	// Join statements lower against a two-schema catalog: the primary table
	// name resolves to the schema above, anything else to a second schema
	// with disjoint column names. Every table name resolving keeps the fuzzer
	// inside the lowerer (duplicate-table, ambiguity, and key-side checks)
	// instead of bouncing off name lookup.
	other := geometry.MustSchema(
		geometry.Column{Name: "rid", Type: geometry.Int64, Width: 8},
		geometry.Column{Name: "vid", Type: geometry.Int32, Width: 4},
		geometry.Column{Name: "val", Type: geometry.Float64, Width: 8},
		geometry.Column{Name: "tag", Type: geometry.Char, Width: 2},
	)

	// Fingerprint normalization seeds: literal variety, qualified names, and
	// JOIN shapes (the inputs the statistics store keys on).
	fingerprintSeeds := []string{
		"SELECT id FROM t WHERE qty < 5.5 AND flag = 'R' AND shipdate >= DATE '1994-01-01'",
		"SELECT id FROM t WHERE qty < .5 AND price <> 1e3",
		"SELECT t.id, u.tag FROM t JOIN u ON t.id = u.rid WHERE t.qty < 3 LIMIT 7",
		"SELECT id FROM t JOIN u ON id = rid JOIN v ON rid = vid WHERE qty BETWEEN 2 AND 7",
		"select T.ID from t where T.QTY < 0005 and flag = ''",
		"SELECT id FROM t WHERE flag = 'it''s'",
		"SELECT id FROM t WHERE flag = '\x00\xff'",
	}
	for _, s := range fingerprintSeeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, input string) {
		// Fingerprinting must accept anything — it is called on statements
		// before they parse — and must be idempotent: normalizing normalized
		// text cannot change the fingerprint again (literals are already '?').
		norm, hash := Fingerprint(input)
		norm2, hash2 := Fingerprint(norm)
		if norm2 != norm || hash2 != hash {
			t.Errorf("Fingerprint not idempotent: %q -> %q (%#x) -> %q (%#x)",
				input, norm, hash, norm2, hash2)
		}

		st, err := Parse(input)
		if err != nil {
			if st != nil {
				t.Errorf("Parse(%q) returned both a statement and an error", input)
			}
			return
		}
		if st == nil {
			t.Fatalf("Parse(%q) returned nil statement and nil error", input)
		}
		if len(st.Joins) > 0 {
			// Multi-table statements go through the catalog lowerer; the
			// same contract applies — reject or produce a valid tree, never
			// panic.
			lookup := func(name string) (*geometry.Schema, error) {
				if name == st.Table {
					return schema, nil
				}
				return other, nil
			}
			root, err := LowerCatalog(st, lookup)
			if err != nil {
				return
			}
			if err := root.Validate(); err != nil {
				t.Errorf("LowerCatalog(%q) returned an invalid plan: %v", input, err)
			}
			_ = root.Explain(nil)
			return
		}
		if q, err := Plan(st, schema); err == nil {
			// A planned query must be internally consistent or explicitly
			// rejected by its own validator — never something in between
			// that would crash an engine downstream.
			_ = q.Validate(schema)
		}
		// The IR path must hold the same contract, including statements
		// with ORDER BY / LIMIT sinks that Plan refuses: a lowered chain
		// validates and renders without panicking.
		root, err := Lower(st, schema)
		if err != nil {
			return // rejection is fine; only a panic is a bug
		}
		if err := root.Validate(); err != nil {
			t.Errorf("Lower(%q) returned an invalid plan: %v", input, err)
		}
		_ = root.Explain(schema)
	})
}
