package sql

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rfabric/internal/geometry"
	"rfabric/internal/plan"
	"rfabric/internal/tpch"
)

// tpchLookup resolves the multi-table TPC-H catalog for join lowering tests.
func tpchLookup(name string) (*geometry.Schema, error) {
	switch name {
	case "lineitem":
		return tpch.LineitemSchema(), nil
	case "orders":
		return tpch.OrdersSchema(), nil
	case "customer":
		return tpch.CustomerSchema(), nil
	case "part":
		return tpch.PartSchema(), nil
	}
	return nil, fmt.Errorf("sql: unknown table %q", name)
}

// stampScans sets every Scan's source across the join tree — probe chain and
// build sides alike.
func stampScans(root *plan.Node, src string) {
	var walk func(n *plan.Node)
	walk = func(n *plan.Node) {
		if n == nil {
			return
		}
		if n.Op == plan.OpScan {
			n.Source = src
		}
		walk(n.Build)
		walk(n.Input)
	}
	walk(root)
}

// TestExplainJoinGolden pins the lowered join trees for the Q3/Q5/Q10-class
// multi-table queries under every access path. Each side carries its own
// source, so the golden files are the contract for per-side stamping too.
func TestExplainJoinGolden(t *testing.T) {
	queries := []struct{ name, sql string }{
		{"q3_join", tpch.Q3SQL},
		{"q5_join", tpch.Q5SQL},
		{"q10_join", tpch.Q10SQL},
	}
	sources := []string{"ROW", "COL", "RM", "IDX", "PAR", "AUTO"}

	for _, qc := range queries {
		t.Run(qc.name, func(t *testing.T) {
			st, err := Parse(qc.sql)
			if err != nil {
				t.Fatal(err)
			}
			root, err := LowerCatalog(st, tpchLookup)
			if err != nil {
				t.Fatal(err)
			}
			var b strings.Builder
			fmt.Fprintf(&b, "query: %s\n", strings.Join(strings.Fields(qc.sql), " "))
			for _, src := range sources {
				if src == "AUTO" {
					stampScans(root, "") // renders as "?" until the optimizer prices each side
				} else {
					stampScans(root, src)
				}
				fmt.Fprintf(&b, "\n-- source=%s\n%s\n", src, root.Explain(nil))
			}
			got := b.String()
			path := filepath.Join("testdata", "explain_"+qc.name+".golden")
			if *updateGolden {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("EXPLAIN drifted from %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
			}
		})
	}
}

// TestParseJoinErrors pins the parser's error messages for malformed
// JOIN ... ON clauses.
func TestParseJoinErrors(t *testing.T) {
	cases := []struct{ sql, want string }{
		{"SELECT x FROM a JOIN", `expected table name after JOIN, got ""`},
		{"SELECT x FROM a JOIN WHERE x < 1", `expected table name after JOIN, got "WHERE"`},
		{"SELECT x FROM a JOIN b", `expected ON`},
		{"SELECT x FROM a JOIN b ON", `expected column in ON, got ""`},
		{"SELECT x FROM a JOIN b ON x", `JOIN ... ON supports only equality, got ""`},
		{"SELECT x FROM a JOIN b ON x < y", `JOIN ... ON supports only equality, got "<"`},
		{"SELECT x FROM a JOIN b ON x =", `expected column in ON, got ""`},
		{"SELECT x FROM a JOIN b ON x = 5", `expected column in ON, got "5"`},
		{"SELECT x FROM a JOIN b ON a. = y", `expected column name after "a"., got "="`},
	}
	for _, tc := range cases {
		_, err := Parse(tc.sql)
		if err == nil {
			t.Errorf("%q: parsed without error, want %q", tc.sql, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%q: error %q does not contain %q", tc.sql, err.Error(), tc.want)
		}
	}
}

// TestLowerCatalogErrors pins the join lowering errors: ambiguous and
// unknown columns, duplicate tables, and ON clauses that do not link the new
// table to an earlier one.
func TestLowerCatalogErrors(t *testing.T) {
	cases := []struct{ sql, want string }{
		{"SELECT l_orderkey FROM lineitem JOIN orders ON l_orderkey = o_orderkey JOIN orders ON o_custkey = o_orderkey",
			`table "orders" joined twice`},
		{"SELECT l_orderkey FROM lineitem JOIN orders ON l_orderkey = l_partkey",
			"must compare a column of"},
		{"SELECT l_orderkey FROM lineitem JOIN orders ON o_orderkey = o_custkey",
			"must compare a column of"},
		{"SELECT nope FROM lineitem JOIN orders ON l_orderkey = o_orderkey",
			`unknown column "nope"`},
		{"SELECT bad.l_orderkey FROM lineitem JOIN orders ON l_orderkey = o_orderkey",
			`unknown table "bad"`},
		{"SELECT l_orderkey FROM lineitem JOIN lineitem ON l_orderkey = l_orderkey",
			`joined twice`},
	}
	for _, tc := range cases {
		st, err := Parse(tc.sql)
		if err != nil {
			t.Fatalf("%q: parse: %v", tc.sql, err)
		}
		_, err = LowerCatalog(st, tpchLookup)
		if err == nil {
			t.Errorf("%q: lowered without error, want %q", tc.sql, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%q: error %q does not contain %q", tc.sql, err.Error(), tc.want)
		}
	}
}

// TestLowerCatalogAmbiguousColumn uses two tables sharing a column name: a
// bare reference must be rejected, the qualified form accepted.
func TestLowerCatalogAmbiguousColumn(t *testing.T) {
	dup := func(name string) (*geometry.Schema, error) {
		return geometry.NewSchema(
			geometry.Column{Name: "id", Type: geometry.Int64, Width: 8},
			geometry.Column{Name: "v", Type: geometry.Float64, Width: 8},
		)
	}
	st, err := Parse("SELECT id FROM a JOIN b ON a.id = b.id")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LowerCatalog(st, dup); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("bare ambiguous column error = %v, want ambiguity complaint", err)
	}
	st, err = Parse("SELECT a.id, SUM(b.v) FROM a JOIN b ON a.id = b.id GROUP BY a.id")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LowerCatalog(st, dup); err != nil {
		t.Errorf("qualified join failed to lower: %v", err)
	}
}
