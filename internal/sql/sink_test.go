package sql

import (
	"strings"
	"testing"

	"rfabric/internal/plan"
)

func TestParseOrderByNamedKeys(t *testing.T) {
	st, err := Parse("SELECT flag, COUNT(*) FROM t GROUP BY flag ORDER BY flag DESC, id ASC, qty")
	if err != nil {
		t.Fatal(err)
	}
	want := []OrderItem{
		{Column: "flag", Desc: true},
		{Column: "id"},
		{Column: "qty"},
	}
	if len(st.OrderBy) != len(want) {
		t.Fatalf("order by = %+v", st.OrderBy)
	}
	for i, it := range st.OrderBy {
		if it != want[i] {
			t.Errorf("key %d = %+v, want %+v", i, it, want[i])
		}
	}
}

func TestParseOrderByOrdinalsAndLimit(t *testing.T) {
	st, err := Parse("SELECT flag, SUM(qty) FROM t GROUP BY flag ORDER BY 2 DESC, 1 LIMIT 10")
	if err != nil {
		t.Fatal(err)
	}
	if len(st.OrderBy) != 2 || st.OrderBy[0].Ordinal != 2 || !st.OrderBy[0].Desc || st.OrderBy[1].Ordinal != 1 {
		t.Errorf("order by = %+v", st.OrderBy)
	}
	if !st.HasLimit || st.Limit != 10 {
		t.Errorf("limit = %d (has=%v)", st.Limit, st.HasLimit)
	}
}

func TestParseLimitZero(t *testing.T) {
	st, err := Parse("SELECT flag, COUNT(*) FROM t GROUP BY flag LIMIT 0")
	if err != nil {
		t.Fatal(err)
	}
	if !st.HasLimit || st.Limit != 0 {
		t.Errorf("LIMIT 0 parsed as %d (has=%v)", st.Limit, st.HasLimit)
	}
}

func TestParseSinkErrors(t *testing.T) {
	cases := []struct {
		query   string
		wantErr string
	}{
		{"SELECT flag, COUNT(*) FROM t GROUP BY flag ORDER BY 0", "bad ORDER BY ordinal"},
		{"SELECT flag, COUNT(*) FROM t GROUP BY flag ORDER BY 1.5", "bad ORDER BY ordinal"},
		{"SELECT flag, COUNT(*) FROM t GROUP BY flag ORDER BY *", "expected column or ordinal in ORDER BY"},
		{"SELECT flag, COUNT(*) FROM t GROUP BY flag LIMIT x", "expected row count after LIMIT"},
		{"SELECT flag, COUNT(*) FROM t GROUP BY flag LIMIT -1", "expected row count after LIMIT"},
		{"SELECT flag, COUNT(*) FROM t GROUP BY flag ORDER BY", "expected column or ordinal in ORDER BY"},
	}
	for _, c := range cases {
		_, err := Parse(c.query)
		if err == nil {
			t.Errorf("Parse(%q) accepted", c.query)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("Parse(%q) error = %q, want substring %q", c.query, err, c.wantErr)
		}
	}
}

// Satellite: parser error messages must stay diagnostic — the trailing-token
// and bad-literal paths name the offending token, not just "syntax error".
func TestParseErrorMessages(t *testing.T) {
	cases := []struct {
		query   string
		wantErr string
	}{
		{"SELECT id FROM t extra", `trailing input starting at "extra"`},
		{"SELECT flag, COUNT(*) FROM t GROUP BY flag LIMIT 3 4", `trailing input starting at "4"`},
		{"SELECT id FROM t WHERE qty < FROM", `expected literal, got "FROM"`},
		{"SELECT id FROM t WHERE shipdate >= DATE 1994", "expected 'YYYY-MM-DD' after DATE"},
		{"SELECT id FROM t WHERE qty < -'x'", "cannot negate a non-numeric literal"},
	}
	for _, c := range cases {
		_, err := Parse(c.query)
		if err == nil {
			t.Errorf("Parse(%q) accepted", c.query)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("Parse(%q) error = %q, want substring %q", c.query, err, c.wantErr)
		}
	}
}

func TestLowerOrderByAndLimit(t *testing.T) {
	sch := testSchema(t)
	root, err := CompilePlan(
		"SELECT flag, COUNT(*), SUM(qty) FROM t GROUP BY flag ORDER BY 3 DESC, flag LIMIT 5", sch)
	if err != nil {
		t.Fatal(err)
	}
	if root.Op != plan.OpLimit || root.N != 5 {
		t.Fatalf("root = %s", root.Op)
	}
	ob := root.Input
	if ob.Op != plan.OpOrderBy {
		t.Fatalf("expected OrderBy below Limit, got %s", ob.Op)
	}
	want := []plan.SortKey{
		{Key: -1, Agg: 1, Desc: true}, // ordinal 3 is the second aggregate
		{Key: 0, Agg: -1},             // flag is group key 0
	}
	if len(ob.Keys) != len(want) {
		t.Fatalf("keys = %+v", ob.Keys)
	}
	for i, k := range ob.Keys {
		if k != want[i] {
			t.Errorf("key %d = %+v, want %+v", i, k, want[i])
		}
	}
}

func TestLowerOrdinalResolvesGroupKey(t *testing.T) {
	sch := testSchema(t)
	root, err := CompilePlan("SELECT flag, COUNT(*) FROM t GROUP BY flag ORDER BY 1", sch)
	if err != nil {
		t.Fatal(err)
	}
	ob := root
	if ob.Op != plan.OpOrderBy {
		t.Fatalf("root = %s", ob.Op)
	}
	if k := ob.Keys[0]; k.Key != 0 || k.Agg != -1 {
		t.Errorf("ordinal 1 resolved to %+v", k)
	}
}

func TestLowerLimitZero(t *testing.T) {
	sch := testSchema(t)
	root, err := CompilePlan("SELECT flag, COUNT(*) FROM t GROUP BY flag LIMIT 0", sch)
	if err != nil {
		t.Fatal(err)
	}
	if root.Op != plan.OpLimit || root.N != 0 {
		t.Errorf("LIMIT 0 lowered to %s N=%d", root.Op, root.N)
	}
	if err := root.Validate(); err != nil {
		t.Errorf("LIMIT 0 plan invalid: %v", err)
	}
}

func TestLowerSinkErrors(t *testing.T) {
	sch := testSchema(t)
	cases := []struct {
		query   string
		wantErr string
	}{
		{"SELECT COUNT(*) FROM t ORDER BY 1", "OrderBy requires grouped aggregation"},
		{"SELECT id FROM t ORDER BY id", `ORDER BY column "id" is not a group key`},
		{"SELECT id FROM t LIMIT 3", "Limit requires grouped aggregation"},
		{"SELECT flag, COUNT(*) FROM t GROUP BY flag ORDER BY 5", "ordinal 5 exceeds the 2 select items"},
		{"SELECT flag, COUNT(*) FROM t GROUP BY flag ORDER BY nosuch", `unknown column "nosuch"`},
		{"SELECT flag, COUNT(*) FROM t GROUP BY flag ORDER BY qty", `ORDER BY column "qty" is not a group key`},
	}
	for _, c := range cases {
		_, err := CompilePlan(c.query, sch)
		if err == nil {
			t.Errorf("CompilePlan(%q) accepted", c.query)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("CompilePlan(%q) error = %q, want substring %q", c.query, err, c.wantErr)
		}
	}
}

func TestPlanRejectsSinkStatements(t *testing.T) {
	st, err := Parse("SELECT flag, COUNT(*) FROM t GROUP BY flag ORDER BY flag")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Plan(st, testSchema(t)); err == nil {
		t.Error("Plan accepted a statement with sinks")
	}
}
