package sql

import "testing"

// The fingerprint contract: literals never split a fingerprint, structure
// always does, and the hash is a pure function of the normalized text.

func TestFingerprintStripsLiterals(t *testing.T) {
	cases := [][2]string{
		{"SELECT l_orderkey FROM lineitem WHERE l_quantity < 5",
			"SELECT l_orderkey FROM lineitem WHERE l_quantity < 17"},
		{"SELECT COUNT(*) FROM lineitem WHERE l_shipdate >= DATE '1994-01-01'",
			"SELECT COUNT(*) FROM lineitem WHERE l_shipdate >= DATE '1997-06-30'"},
		{"SELECT c_name FROM customer WHERE c_mktsegment = 'BUILDING'",
			"SELECT c_name FROM customer WHERE c_mktsegment = 'AUTOMOBILE'"},
		// Whitespace and keyword/identifier case are normalization noise.
		{"select   l_orderkey from LINEITEM where l_quantity < 5",
			"SELECT l_orderkey FROM lineitem WHERE l_quantity < 99"},
	}
	for _, c := range cases {
		n1, h1 := Fingerprint(c[0])
		n2, h2 := Fingerprint(c[1])
		if n1 != n2 || h1 != h2 {
			t.Errorf("want same fingerprint:\n  %q -> %q (%#x)\n  %q -> %q (%#x)",
				c[0], n1, h1, c[1], n2, h2)
		}
	}
}

func TestFingerprintKeepsStructureApart(t *testing.T) {
	distinct := []string{
		"SELECT l_orderkey FROM lineitem WHERE l_quantity < 5",
		"SELECT l_orderkey FROM lineitem WHERE l_quantity > 5",
		"SELECT l_orderkey FROM lineitem WHERE l_discount < 5",
		"SELECT l_orderkey, l_partkey FROM lineitem WHERE l_quantity < 5",
		"SELECT SUM(l_quantity) FROM lineitem WHERE l_quantity < 5",
		"SELECT l_orderkey FROM lineitem JOIN orders ON l_orderkey = o_orderkey",
		"SELECT l_orderkey FROM lineitem JOIN orders ON l_orderkey = orders.o_orderkey",
	}
	seen := map[uint64]string{}
	for _, q := range distinct {
		_, h := Fingerprint(q)
		if prev, dup := seen[h]; dup {
			t.Errorf("fingerprint collision between %q and %q", prev, q)
		}
		seen[h] = q
	}
}

func TestFingerprintQualifiedNames(t *testing.T) {
	norm, _ := Fingerprint("SELECT Orders.O_OrderDate FROM orders WHERE orders.o_totalprice < 100")
	want := "SELECT orders.o_orderdate FROM orders WHERE orders.o_totalprice < ?"
	if norm != want {
		t.Errorf("normalized %q, want %q", norm, want)
	}
}

func TestFingerprintJoinShape(t *testing.T) {
	norm, _ := Fingerprint(
		"SELECT c_nationkey, COUNT(*) FROM lineitem JOIN orders ON l_orderkey = o_orderkey " +
			"JOIN customer ON o_custkey = c_custkey WHERE o_orderdate >= DATE '1993-10-01' " +
			"GROUP BY c_nationkey ORDER BY 2 DESC LIMIT 20")
	want := "SELECT c_nationkey , COUNT ( * ) FROM lineitem JOIN orders ON l_orderkey = o_orderkey " +
		"JOIN customer ON o_custkey = c_custkey WHERE o_orderdate >= DATE ? " +
		"GROUP BY c_nationkey ORDER BY ? DESC LIMIT ?"
	if norm != want {
		t.Errorf("normalized join shape:\n got %q\nwant %q", norm, want)
	}
}

func TestFingerprintUnlexableFallsBackToRawText(t *testing.T) {
	raw := "SELECT ; nonsense"
	norm, h := Fingerprint(raw)
	if norm != raw {
		t.Errorf("unlexable statement normalized to %q, want raw text", norm)
	}
	_, h2 := Fingerprint(raw)
	if h != h2 {
		t.Error("fingerprint hash not deterministic for unlexable text")
	}
}

func BenchmarkFingerprint(b *testing.B) {
	q := "SELECT l_returnflag, l_linestatus, SUM(l_quantity) FROM lineitem " +
		"WHERE l_shipdate <= DATE '1998-09-02' GROUP BY l_returnflag, l_linestatus"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Fingerprint(q)
	}
}
