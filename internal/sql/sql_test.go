package sql

import (
	"strings"
	"testing"
	"testing/quick"

	"rfabric/internal/expr"
	"rfabric/internal/geometry"
)

func testSchema(t *testing.T) *geometry.Schema {
	t.Helper()
	return geometry.MustSchema(
		geometry.Column{Name: "id", Type: geometry.Int64, Width: 8},
		geometry.Column{Name: "qty", Type: geometry.Float64, Width: 8},
		geometry.Column{Name: "price", Type: geometry.Float64, Width: 8},
		geometry.Column{Name: "flag", Type: geometry.Char, Width: 1},
		geometry.Column{Name: "shipdate", Type: geometry.Date, Width: 4},
		geometry.Column{Name: "cnt", Type: geometry.Int32, Width: 4},
	)
}

func TestParseProjection(t *testing.T) {
	st, err := Parse("SELECT id, price FROM items")
	if err != nil {
		t.Fatal(err)
	}
	if st.Table != "items" {
		t.Errorf("table = %q", st.Table)
	}
	if len(st.Items) != 2 || st.Items[0].Column != "id" || st.Items[1].Column != "price" {
		t.Errorf("items = %+v", st.Items)
	}
}

func TestParseCaseInsensitiveKeywordsLowercaseIdents(t *testing.T) {
	st, err := Parse("select ID from Items where QTY < 5")
	if err != nil {
		t.Fatal(err)
	}
	if st.Table != "items" || st.Items[0].Column != "id" || st.Where[0].Column != "qty" {
		t.Errorf("parsed %+v", st)
	}
}

func TestParseWhere(t *testing.T) {
	st, err := Parse("SELECT id FROM t WHERE qty < 5 AND flag = 'R' AND shipdate >= DATE '1994-01-01'")
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Where) != 3 {
		t.Fatalf("where = %+v", st.Where)
	}
	if st.Where[1].Lit.Str != "R" {
		t.Errorf("string literal = %+v", st.Where[1].Lit)
	}
	if !st.Where[2].Lit.IsDate {
		t.Errorf("date literal not flagged: %+v", st.Where[2].Lit)
	}
}

func TestParseBetweenDesugars(t *testing.T) {
	st, err := Parse("SELECT id FROM t WHERE qty BETWEEN 2 AND 7 AND id > 0")
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Where) != 3 {
		t.Fatalf("BETWEEN produced %d conjuncts: %+v", len(st.Where), st.Where)
	}
	if st.Where[0].Op != ">=" || st.Where[0].Lit.Num != 2 {
		t.Errorf("lower bound = %+v", st.Where[0])
	}
	if st.Where[1].Op != "<=" || st.Where[1].Lit.Num != 7 {
		t.Errorf("upper bound = %+v", st.Where[1])
	}
}

func TestParseAggregatesAndGroupBy(t *testing.T) {
	st, err := Parse("SELECT flag, COUNT(*), SUM(price * (1 - qty)), AVG(qty) FROM t GROUP BY flag")
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Items) != 4 {
		t.Fatalf("items = %+v", st.Items)
	}
	if !st.Items[1].Agg.Star {
		t.Error("COUNT(*) not recognized")
	}
	if st.Items[2].Agg.Func != "SUM" {
		t.Errorf("agg func = %q", st.Items[2].Agg.Func)
	}
	if len(st.GroupBy) != 1 || st.GroupBy[0] != "flag" {
		t.Errorf("group by = %v", st.GroupBy)
	}
}

func TestParseArithPrecedence(t *testing.T) {
	st, err := Parse("SELECT SUM(price + qty * 2) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	top, ok := st.Items[0].Agg.Arg.(BinExpr)
	if !ok || top.Op != "+" {
		t.Fatalf("top = %+v", st.Items[0].Agg.Arg)
	}
	if right, ok := top.R.(BinExpr); !ok || right.Op != "*" {
		t.Errorf("* did not bind tighter than +: %+v", top.R)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t WHERE a <",
		"SELECT a FROM t WHERE a 5",
		"SELECT COUNT( FROM t",
		"SELECT SUM(*) FROM t",
		"SELECT a FROM t GROUP BY",
		"SELECT a FROM t trailing garbage",
		"SELECT a FROM t WHERE a = 'unterminated",
		"SELECT a FROM t WHERE a = DATE 42",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) succeeded", q)
		}
	}
}

func TestPlanProjectionScan(t *testing.T) {
	s := testSchema(t)
	q, err := Compile("SELECT id, price FROM t WHERE qty < 5", s)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Projection) != 2 || q.Projection[0] != 0 || q.Projection[1] != 2 {
		t.Errorf("projection = %v", q.Projection)
	}
	if len(q.Selection) != 1 || q.Selection[0].Col != 1 || q.Selection[0].Op != expr.Lt {
		t.Errorf("selection = %+v", q.Selection)
	}
	if q.Selection[0].Operand.Float != 5 {
		t.Errorf("operand = %+v", q.Selection[0].Operand)
	}
}

func TestPlanLiteralCoercion(t *testing.T) {
	s := testSchema(t)
	q, err := Compile("SELECT id FROM t WHERE id = 7 AND cnt < 3 AND flag = 'R' AND shipdate < DATE '1994-01-01'", s)
	if err != nil {
		t.Fatal(err)
	}
	if q.Selection[0].Operand.Type != geometry.Int64 || q.Selection[0].Operand.Int != 7 {
		t.Errorf("int64 coercion: %+v", q.Selection[0].Operand)
	}
	if q.Selection[1].Operand.Type != geometry.Int32 {
		t.Errorf("int32 coercion: %+v", q.Selection[1].Operand)
	}
	if q.Selection[2].Operand.Type != geometry.Char {
		t.Errorf("char coercion: %+v", q.Selection[2].Operand)
	}
	if q.Selection[3].Operand.Type != geometry.Date || q.Selection[3].Operand.Int != 8766 {
		t.Errorf("date coercion: %+v (1994-01-01 = day 8766)", q.Selection[3].Operand)
	}
}

func TestPlanAggregates(t *testing.T) {
	s := testSchema(t)
	q, err := Compile("SELECT flag, COUNT(*), SUM(price * (1 - qty)) FROM t GROUP BY flag", s)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0] != 3 {
		t.Errorf("group by = %v", q.GroupBy)
	}
	if len(q.Aggregates) != 2 {
		t.Fatalf("aggregates = %+v", q.Aggregates)
	}
	if q.Aggregates[0].Kind != expr.Count || q.Aggregates[0].Arg != nil {
		t.Errorf("COUNT term = %+v", q.Aggregates[0])
	}
	if q.Aggregates[1].Kind != expr.Sum {
		t.Errorf("SUM term = %+v", q.Aggregates[1])
	}
	// The derived expression reads price and qty.
	cols := q.Aggregates[1].Arg.Columns()
	if len(cols) != 2 {
		t.Errorf("derived columns = %v", cols)
	}
}

func TestPlanErrors(t *testing.T) {
	s := testSchema(t)
	bad := []string{
		"SELECT nope FROM t",
		"SELECT id FROM t WHERE nope = 1",
		"SELECT id FROM t WHERE flag = 3",          // type mismatch
		"SELECT id FROM t WHERE qty = 'x'",         // type mismatch
		"SELECT SUM(flag) FROM t",                  // arithmetic over CHAR
		"SELECT id, COUNT(*) FROM t",               // bare column not grouped
		"SELECT flag, COUNT(*) FROM t GROUP BY id", // flag not in GROUP BY
	}
	for _, q := range bad {
		if _, err := Compile(q, s); err == nil {
			t.Errorf("Compile(%q) succeeded", q)
		}
	}
}

func TestDateRoundTrip(t *testing.T) {
	cases := []string{"1970-01-01", "1994-01-01", "1998-09-02", "2026-07-04"}
	for _, s := range cases {
		day, err := ParseDate(s)
		if err != nil {
			t.Fatalf("ParseDate(%q): %v", s, err)
		}
		if got := FormatDate(day); got != s {
			t.Errorf("round trip %q -> %d -> %q", s, day, got)
		}
	}
	if _, err := ParseDate("not-a-date"); err == nil {
		t.Error("bad date accepted")
	}
	if day, _ := ParseDate("1970-01-01"); day != 0 {
		t.Errorf("epoch = %d, want 0", day)
	}
}

// TestLexerNeverPanicsProperty: the lexer/parser must fail cleanly, never
// panic, on arbitrary input.
func TestParserNeverPanicsProperty(t *testing.T) {
	check := func(input string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = Parse(input)
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// Also exercise SQL-looking fragments, not just random unicode.
	fragments := []string{"SELECT", "FROM", "WHERE", "(", ")", ",", "*", "a", "1.5", "'s'", "<", "<=", "AND", "BETWEEN", "DATE"}
	for seed := 0; seed < 300; seed++ {
		var b strings.Builder
		n := seed%7 + 1
		for i := 0; i < n; i++ {
			b.WriteString(fragments[(seed*31+i*17)%len(fragments)])
			b.WriteByte(' ')
		}
		if !check(b.String()) {
			t.Fatalf("parser panicked on %q", b.String())
		}
	}
}

func TestNegativeNumericLiteral(t *testing.T) {
	s := testSchema(t)
	q, err := Compile("SELECT id FROM t WHERE price > -2.5", s)
	if err != nil {
		t.Fatal(err)
	}
	if q.Selection[0].Operand.Float != -2.5 {
		t.Errorf("operand = %+v", q.Selection[0].Operand)
	}
}

func TestGroupByMultipleColumns(t *testing.T) {
	s := testSchema(t)
	q, err := Compile("SELECT flag, cnt, COUNT(*) FROM t GROUP BY flag, cnt", s)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.GroupBy) != 2 || q.GroupBy[0] != 3 || q.GroupBy[1] != 5 {
		t.Errorf("group by = %v", q.GroupBy)
	}
}
