// Package sql implements the small SQL dialect the paper's API sketch uses
// to configure ephemeral variables (Fig. 3: configure(the_table, QUERY)):
//
//	SELECT <columns and aggregates> FROM <table>
//	  [JOIN <table> ON <col> = <col>]*
//	  [WHERE <col op literal> [AND ...]] [GROUP BY <columns>]
//	  [ORDER BY <column or ordinal> [ASC|DESC] [, ...]] [LIMIT <n>]
//
// Aggregates are COUNT(*), SUM/AVG/MIN/MAX over +,-,* arithmetic of numeric
// columns; ORDER BY and LIMIT apply to grouped output only. Column
// references may be qualified ("table.column") and must be when a bare name
// is ambiguous across joined tables. The planner lowers a parsed statement
// onto the physical plan IR (internal/plan), from which the engines derive
// the data geometry they ask the fabric for.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol // ( ) , * + - and comparison operators
)

type token struct {
	kind tokenKind
	text string // keywords upper-cased; idents lower-cased; others verbatim
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true,
	"GROUP": true, "BY": true, "COUNT": true, "SUM": true,
	"AVG": true, "MIN": true, "MAX": true, "DATE": true,
	"BETWEEN": true, "AS": true, "ORDER": true, "LIMIT": true,
	"ASC": true, "DESC": true, "JOIN": true, "ON": true,
}

// lex splits the input into tokens.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '\'':
			j := strings.IndexByte(input[i+1:], '\'')
			if j < 0 {
				return nil, fmt.Errorf("sql: unterminated string at offset %d", i)
			}
			toks = append(toks, token{tokString, input[i+1 : i+1+j], i})
			i += j + 2
		case unicode.IsDigit(c) || (c == '.' && i+1 < len(input) && unicode.IsDigit(rune(input[i+1]))):
			j := i
			for j < len(input) && (unicode.IsDigit(rune(input[j])) || input[j] == '.') {
				j++
			}
			toks = append(toks, token{tokNumber, input[i:j], i})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < len(input) && (unicode.IsLetter(rune(input[j])) || unicode.IsDigit(rune(input[j])) || input[j] == '_') {
				j++
			}
			word := input[i:j]
			if up := strings.ToUpper(word); keywords[up] {
				toks = append(toks, token{tokKeyword, up, i})
			} else {
				toks = append(toks, token{tokIdent, strings.ToLower(word), i})
			}
			i = j
		case strings.ContainsRune("(),*+-.", c):
			toks = append(toks, token{tokSymbol, string(c), i})
			i++
		case c == '<' || c == '>' || c == '=':
			op := string(c)
			if i+1 < len(input) && (input[i+1] == '=' || (c == '<' && input[i+1] == '>')) {
				op += string(input[i+1])
			}
			toks = append(toks, token{tokSymbol, op, i})
			i += len(op)
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(input)})
	return toks, nil
}
