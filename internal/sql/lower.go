package sql

import (
	"fmt"
	"strings"

	"rfabric/internal/engine"
	"rfabric/internal/expr"
	"rfabric/internal/geometry"
	"rfabric/internal/plan"
)

// Lower lowers a parsed statement to the physical plan IR: the logical
// query becomes the Scan→Filter→(Project|Aggregate) chain, and ORDER BY /
// LIMIT become sink operators above it. The Scan's source is left blank for
// the optimizer (or explicit dispatch) to stamp.
func Lower(st *Stmt, schema *geometry.Schema) (*plan.Node, error) {
	q, err := planQuery(st, schema)
	if err != nil {
		return nil, err
	}
	root := engine.PlanOf(q, st.Table)
	if len(st.OrderBy) > 0 {
		keys, err := resolveSortKeys(st, q, tableResolver(st.Table, schema))
		if err != nil {
			return nil, err
		}
		root = root.OrderBy(keys)
	}
	if st.HasLimit {
		root = root.Limit(st.Limit)
	}
	if err := root.Validate(); err != nil {
		return nil, err
	}
	return root, nil
}

// resolveSortKeys maps the statement's ORDER BY items onto the aggregate's
// output: a named key must be one of the GROUP BY columns; a 1-based
// ordinal names a select-list position (an aggregate item sorts by that
// aggregate, a bare column by its group key).
func resolveSortKeys(st *Stmt, q engine.Query, res *colResolver) ([]plan.SortKey, error) {
	groupKeyOf := func(col int) (int, bool) {
		for i, g := range q.GroupBy {
			if g == col {
				return i, true
			}
		}
		return 0, false
	}
	keys := make([]plan.SortKey, len(st.OrderBy))
	for i, it := range st.OrderBy {
		k := plan.SortKey{Key: -1, Agg: -1, Desc: it.Desc}
		switch {
		case it.Ordinal > 0:
			if it.Ordinal > len(st.Items) {
				return nil, fmt.Errorf("sql: ORDER BY ordinal %d exceeds the %d select items", it.Ordinal, len(st.Items))
			}
			item := st.Items[it.Ordinal-1]
			if item.Agg != nil {
				agg := 0
				for _, prev := range st.Items[:it.Ordinal-1] {
					if prev.Agg != nil {
						agg++
					}
				}
				k.Agg = agg
			} else {
				col, err := res.resolve(item.Column)
				if err != nil {
					return nil, err
				}
				idx, ok := groupKeyOf(col)
				if !ok {
					return nil, fmt.Errorf("sql: ORDER BY column %q is not a group key", item.Column)
				}
				k.Key = idx
			}
		default:
			col, err := res.resolve(it.Column)
			if err != nil {
				return nil, err
			}
			idx, ok := groupKeyOf(col)
			if !ok {
				return nil, fmt.Errorf("sql: ORDER BY column %q is not a group key", it.Column)
			}
			k.Key = idx
		}
		keys[i] = k
	}
	return keys, nil
}

// SchemaLookup resolves a table name to its schema — the catalog interface
// LowerCatalog plans against.
type SchemaLookup func(table string) (*geometry.Schema, error)

// joinResolver resolves (possibly qualified) column names over the combined
// namespace of joined tables. Bare names must be globally unique; qualified
// names pin the table.
func joinResolver(tables []string, schemas []*geometry.Schema, offsets []int, combined *geometry.Schema) *colResolver {
	return &colResolver{sch: combined, resolve: func(name string) (int, error) {
		if tbl, col, ok := strings.Cut(name, "."); ok {
			for ti, t := range tables {
				if t != tbl {
					continue
				}
				c, found := schemas[ti].Lookup(col)
				if !found {
					return 0, fmt.Errorf("sql: unknown column %q", name)
				}
				return offsets[ti] + c, nil
			}
			return 0, fmt.Errorf("sql: unknown table %q in column %q", tbl, name)
		}
		hit := -1
		for ti, s := range schemas {
			if c, found := s.Lookup(name); found {
				if hit >= 0 {
					return 0, fmt.Errorf("sql: column %q is ambiguous; qualify it as table.column", name)
				}
				hit = offsets[ti] + c
			}
		}
		if hit < 0 {
			return 0, fmt.Errorf("sql: unknown column %q", name)
		}
		return hit, nil
	}}
}

// LowerCatalog lowers a statement against a catalog, handling joins. For a
// single-table statement it delegates to Lower. For joins it builds the
// left-deep IR tree: the FROM table is the probe side, each JOIN clause a
// build side, WHERE conjuncts route to the side that owns their column, and
// the consumption (and any ORDER BY/LIMIT sinks) runs over the combined
// namespace.
func LowerCatalog(st *Stmt, lookup SchemaLookup) (*plan.Node, error) {
	if len(st.Joins) == 0 {
		sch, err := lookup(st.Table)
		if err != nil {
			return nil, err
		}
		return Lower(st, sch)
	}

	tables := []string{st.Table}
	for _, jc := range st.Joins {
		for _, seen := range tables {
			if seen == jc.Table {
				return nil, fmt.Errorf("sql: table %q joined twice", jc.Table)
			}
		}
		tables = append(tables, jc.Table)
	}
	schemas := make([]*geometry.Schema, len(tables))
	for i, t := range tables {
		sch, err := lookup(t)
		if err != nil {
			return nil, err
		}
		schemas[i] = sch
	}
	combined, offsets, err := engine.JoinSchema(tables, schemas)
	if err != nil {
		return nil, err
	}
	res := joinResolver(tables, schemas, offsets, combined)

	q, err := planConsume(st, res)
	if err != nil {
		return nil, err
	}

	// Route each WHERE conjunct to the side that owns its column, localized
	// to that side's schema.
	sideOf := func(c int) int {
		s := 0
		for i := 1; i < len(offsets); i++ {
			if c >= offsets[i] {
				s = i
			}
		}
		return s
	}
	sideSel := make([]expr.Conjunction, len(tables))
	for _, cmp := range st.Where {
		p, err := planComparison(cmp, res)
		if err != nil {
			return nil, err
		}
		s := sideOf(p.Col)
		p.Col -= offsets[s]
		sideSel[s] = append(sideSel[s], p)
	}

	// Resolve each ON clause: one side must name a column of the newly
	// joined table (the build key), the other a column of an earlier table
	// (the probe key, in combined coordinates).
	probeKeys := make([]int, len(st.Joins))
	buildKeys := make([]int, len(st.Joins))
	for k, jc := range st.Joins {
		l, err := res.resolve(jc.LeftCol)
		if err != nil {
			return nil, err
		}
		r, err := res.resolve(jc.RightCol)
		if err != nil {
			return nil, err
		}
		start, end := offsets[k+1], offsets[k+1]+schemas[k+1].NumColumns()
		inNew := func(c int) bool { return c >= start && c < end }
		switch {
		case inNew(l) && !inNew(r) && r < start:
			buildKeys[k], probeKeys[k] = l-start, r
		case inNew(r) && !inNew(l) && l < start:
			buildKeys[k], probeKeys[k] = r-start, l
		default:
			return nil, fmt.Errorf("sql: JOIN %s ON %s = %s must compare a column of %q with a column of an earlier table",
				jc.Table, jc.LeftCol, jc.RightCol, jc.Table)
		}
	}

	// Assemble the IR. Side nodes carry their table schema; nodes above the
	// joins carry the combined namespace, so Explain renders both correctly.
	mkChain := func(i int) *plan.Node {
		scan := plan.NewScan(tables[i], "", nil)
		scan.Snapshot = nil
		scan.Sch = schemas[i]
		n := scan
		if len(sideSel[i]) > 0 {
			n = n.Filter(sideSel[i])
			n.Sch = schemas[i]
		}
		return n
	}
	root := mkChain(0)
	for k := range st.Joins {
		root = root.Join(mkChain(k+1), probeKeys[k], buildKeys[k])
		root.Sch = combined
	}
	if len(q.Aggregates) > 0 {
		aggs := make([]plan.Agg, len(q.Aggregates))
		for i, a := range q.Aggregates {
			aggs[i] = plan.Agg{Kind: a.Kind, Arg: a.Arg}
		}
		root = root.Aggregate(q.GroupBy, aggs)
	} else {
		root = root.Project(q.Projection)
	}
	root.Sch = combined
	if len(st.OrderBy) > 0 {
		keys, err := resolveSortKeys(st, q, res)
		if err != nil {
			return nil, err
		}
		root = root.OrderBy(keys)
		root.Sch = combined
	}
	if st.HasLimit {
		root = root.Limit(st.Limit)
		root.Sch = combined
	}

	// Validate through the engine lowering; it also stamps each side Scan's
	// needed columns.
	if _, _, err := engine.FromJoinPlan(root, func(t string) (*geometry.Schema, error) { return lookup(t) }); err != nil {
		return nil, err
	}
	return root, nil
}

// CompilePlan is the one-call convenience for the IR path: parse then lower.
func CompilePlan(query string, schema *geometry.Schema) (*plan.Node, error) {
	st, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return Lower(st, schema)
}
