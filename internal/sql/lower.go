package sql

import (
	"fmt"

	"rfabric/internal/engine"
	"rfabric/internal/geometry"
	"rfabric/internal/plan"
)

// Lower lowers a parsed statement to the physical plan IR: the logical
// query becomes the Scan→Filter→(Project|Aggregate) chain, and ORDER BY /
// LIMIT become sink operators above it. The Scan's source is left blank for
// the optimizer (or explicit dispatch) to stamp.
func Lower(st *Stmt, schema *geometry.Schema) (*plan.Node, error) {
	q, err := planQuery(st, schema)
	if err != nil {
		return nil, err
	}
	root := engine.PlanOf(q, st.Table)
	if len(st.OrderBy) > 0 {
		keys, err := resolveSortKeys(st, q, schema)
		if err != nil {
			return nil, err
		}
		root = root.OrderBy(keys)
	}
	if st.HasLimit {
		root = root.Limit(st.Limit)
	}
	if err := root.Validate(); err != nil {
		return nil, err
	}
	return root, nil
}

// resolveSortKeys maps the statement's ORDER BY items onto the aggregate's
// output: a named key must be one of the GROUP BY columns; a 1-based
// ordinal names a select-list position (an aggregate item sorts by that
// aggregate, a bare column by its group key).
func resolveSortKeys(st *Stmt, q engine.Query, schema *geometry.Schema) ([]plan.SortKey, error) {
	groupKeyOf := func(col int) (int, bool) {
		for i, g := range q.GroupBy {
			if g == col {
				return i, true
			}
		}
		return 0, false
	}
	keys := make([]plan.SortKey, len(st.OrderBy))
	for i, it := range st.OrderBy {
		k := plan.SortKey{Key: -1, Agg: -1, Desc: it.Desc}
		switch {
		case it.Ordinal > 0:
			if it.Ordinal > len(st.Items) {
				return nil, fmt.Errorf("sql: ORDER BY ordinal %d exceeds the %d select items", it.Ordinal, len(st.Items))
			}
			item := st.Items[it.Ordinal-1]
			if item.Agg != nil {
				agg := 0
				for _, prev := range st.Items[:it.Ordinal-1] {
					if prev.Agg != nil {
						agg++
					}
				}
				k.Agg = agg
			} else {
				col, ok := schema.Lookup(item.Column)
				if !ok {
					return nil, fmt.Errorf("sql: unknown column %q", item.Column)
				}
				idx, ok := groupKeyOf(col)
				if !ok {
					return nil, fmt.Errorf("sql: ORDER BY column %q is not a group key", item.Column)
				}
				k.Key = idx
			}
		default:
			col, ok := schema.Lookup(it.Column)
			if !ok {
				return nil, fmt.Errorf("sql: unknown column %q", it.Column)
			}
			idx, ok := groupKeyOf(col)
			if !ok {
				return nil, fmt.Errorf("sql: ORDER BY column %q is not a group key", it.Column)
			}
			k.Key = idx
		}
		keys[i] = k
	}
	return keys, nil
}

// CompilePlan is the one-call convenience for the IR path: parse then lower.
func CompilePlan(query string, schema *geometry.Schema) (*plan.Node, error) {
	st, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return Lower(st, schema)
}
