package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// AST node types. The dialect is small enough that the tree is concrete.

// Stmt is a parsed SELECT statement.
type Stmt struct {
	Items    []SelectItem
	Table    string
	Joins    []JoinClause
	Where    []Comparison
	GroupBy  []string
	OrderBy  []OrderItem
	Limit    int64
	HasLimit bool
}

// JoinClause is one `JOIN table ON left = right` clause. The sides are
// column references as written — possibly qualified — and which one names
// the joined table is resolved during lowering.
type JoinClause struct {
	Table    string
	LeftCol  string
	RightCol string
}

// OrderItem is one ORDER BY key: a column name or a 1-based select-list
// ordinal, optionally descending.
type OrderItem struct {
	Column  string // set for named keys
	Ordinal int    // 1-based select-list position, when > 0
	Desc    bool
}

// SelectItem is either a plain column reference or an aggregate call.
type SelectItem struct {
	Column string   // set for plain references
	Agg    *AggCall // set for aggregates
}

// AggCall is COUNT(*) or FUNC(arithmetic expression).
type AggCall struct {
	Func string // COUNT, SUM, AVG, MIN, MAX
	Star bool   // COUNT(*)
	Arg  Arith  // nil when Star
}

// Arith is an arithmetic expression node.
type Arith interface{ arithNode() }

// ColExpr references a column.
type ColExpr struct{ Name string }

// NumExpr is a numeric literal.
type NumExpr struct{ Value float64 }

// BinExpr combines two expressions with + - or *.
type BinExpr struct {
	Op   string
	L, R Arith
}

func (ColExpr) arithNode() {}
func (NumExpr) arithNode() {}
func (BinExpr) arithNode() {}

// Comparison is one WHERE conjunct: column op literal.
type Comparison struct {
	Column string
	Op     string // < <= = <> >= >
	Lit    Literal
}

// Literal is a typed constant.
type Literal struct {
	Kind   LitKind
	Num    float64
	Str    string
	IsDate bool
}

// LitKind discriminates literal forms.
type LitKind uint8

// Literal kinds.
const (
	LitNumber LitKind = iota
	LitString
)

type parser struct {
	toks []token
	pos  int
	src  string
}

// Parse parses one SELECT statement.
func Parse(input string) (*Stmt, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: input}
	st, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF {
		return nil, p.errf("trailing input starting at %q", p.cur().text)
	}
	return st, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: %s (near offset %d)", fmt.Sprintf(format, args...), p.cur().pos)
}

func (p *parser) expectKeyword(kw string) error {
	if t := p.cur(); t.kind == tokKeyword && t.text == kw {
		p.pos++
		return nil
	}
	return p.errf("expected %s, got %q", kw, p.cur().text)
}

func (p *parser) acceptSymbol(sym string) bool {
	if t := p.cur(); t.kind == tokSymbol && t.text == sym {
		p.pos++
		return true
	}
	return false
}

func (p *parser) parseSelect() (*Stmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	st := &Stmt{}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		st.Items = append(st.Items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	if t := p.cur(); t.kind == tokIdent {
		st.Table = t.text
		p.pos++
	} else {
		return nil, p.errf("expected table name, got %q", p.cur().text)
	}
	for {
		t := p.cur()
		if t.kind != tokKeyword || t.text != "JOIN" {
			break
		}
		p.pos++
		var jc JoinClause
		if t := p.cur(); t.kind == tokIdent {
			jc.Table = t.text
			p.pos++
		} else {
			return nil, p.errf("expected table name after JOIN, got %q", p.cur().text)
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		left, err := p.parseColumnRef("ON")
		if err != nil {
			return nil, err
		}
		if op := p.cur(); op.kind != tokSymbol || op.text != "=" {
			return nil, p.errf("JOIN ... ON supports only equality, got %q", op.text)
		}
		p.pos++
		right, err := p.parseColumnRef("ON")
		if err != nil {
			return nil, err
		}
		jc.LeftCol, jc.RightCol = left, right
		st.Joins = append(st.Joins, jc)
	}
	if t := p.cur(); t.kind == tokKeyword && t.text == "WHERE" {
		p.pos++
		for {
			cmp, err := p.parseComparison()
			if err != nil {
				return nil, err
			}
			st.Where = append(st.Where, cmp...)
			if t := p.cur(); t.kind == tokKeyword && t.text == "AND" {
				p.pos++
				continue
			}
			break
		}
	}
	if t := p.cur(); t.kind == tokKeyword && t.text == "GROUP" {
		p.pos++
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseColumnRef("GROUP BY")
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, col)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if t := p.cur(); t.kind == tokKeyword && t.text == "ORDER" {
		p.pos++
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			var it OrderItem
			switch t := p.cur(); {
			case t.kind == tokIdent:
				col, err := p.parseColumnRef("ORDER BY")
				if err != nil {
					return nil, err
				}
				it.Column = col
			case t.kind == tokNumber:
				n, err := strconv.Atoi(t.text)
				if err != nil || n <= 0 {
					return nil, p.errf("bad ORDER BY ordinal %q", t.text)
				}
				it.Ordinal = n
				p.pos++
			default:
				return nil, p.errf("expected column or ordinal in ORDER BY, got %q", t.text)
			}
			if t := p.cur(); t.kind == tokKeyword && (t.text == "ASC" || t.text == "DESC") {
				it.Desc = t.text == "DESC"
				p.pos++
			}
			st.OrderBy = append(st.OrderBy, it)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if t := p.cur(); t.kind == tokKeyword && t.text == "LIMIT" {
		p.pos++
		lt := p.cur()
		if lt.kind != tokNumber {
			return nil, p.errf("expected row count after LIMIT, got %q", lt.text)
		}
		n, err := strconv.ParseInt(lt.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad LIMIT %q", lt.text)
		}
		p.pos++
		st.Limit = n
		st.HasLimit = true
	}
	return st, nil
}

var aggFuncs = map[string]bool{"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if t := p.cur(); t.kind == tokKeyword && aggFuncs[t.text] {
		p.pos++
		call := &AggCall{Func: t.text}
		if !p.acceptSymbol("(") {
			return SelectItem{}, p.errf("expected ( after %s", t.text)
		}
		if t.text == "COUNT" && p.acceptSymbol("*") {
			call.Star = true
		} else {
			arg, err := p.parseArith()
			if err != nil {
				return SelectItem{}, err
			}
			call.Arg = arg
		}
		if !p.acceptSymbol(")") {
			return SelectItem{}, p.errf("expected ) to close %s", t.text)
		}
		return SelectItem{Agg: call}, nil
	}
	if t := p.cur(); t.kind == tokIdent {
		col, err := p.parseColumnRef("select list")
		if err != nil {
			return SelectItem{}, err
		}
		return SelectItem{Column: col}, nil
	}
	return SelectItem{}, p.errf("expected column or aggregate, got %q", p.cur().text)
}

// parseColumnRef parses a possibly qualified column reference: `col` or
// `table.col`. ctx names the clause for error messages.
func (p *parser) parseColumnRef(ctx string) (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", p.errf("expected column in %s, got %q", ctx, t.text)
	}
	name := t.text
	p.pos++
	if p.acceptSymbol(".") {
		q := p.cur()
		if q.kind != tokIdent {
			return "", p.errf("expected column name after %q., got %q", name, q.text)
		}
		name += "." + q.text
		p.pos++
	}
	return name, nil
}

// parseArith parses + and - at the lowest precedence.
func (p *parser) parseArith() (Arith, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind == tokSymbol && (t.text == "+" || t.text == "-") {
			p.pos++
			right, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			left = BinExpr{Op: t.text, L: left, R: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseTerm() (Arith, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokSymbol && p.cur().text == "*" {
		p.pos++
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		left = BinExpr{Op: "*", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseFactor() (Arith, error) {
	switch t := p.cur(); {
	case t.kind == tokNumber:
		p.pos++
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return NumExpr{Value: v}, nil
	case t.kind == tokIdent:
		name, err := p.parseColumnRef("expression")
		if err != nil {
			return nil, err
		}
		return ColExpr{Name: name}, nil
	case t.kind == tokSymbol && t.text == "(":
		p.pos++
		inner, err := p.parseArith()
		if err != nil {
			return nil, err
		}
		if !p.acceptSymbol(")") {
			return nil, p.errf("expected )")
		}
		return inner, nil
	default:
		return nil, p.errf("expected number, column, or (, got %q", t.text)
	}
}

// parseComparison parses `col op literal` or `col BETWEEN lit AND lit`
// (which desugars to two conjuncts).
func (p *parser) parseComparison() ([]Comparison, error) {
	col, err := p.parseColumnRef("WHERE")
	if err != nil {
		return nil, err
	}
	if bt := p.cur(); bt.kind == tokKeyword && bt.text == "BETWEEN" {
		p.pos++
		lo, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return []Comparison{{Column: col, Op: ">=", Lit: lo}, {Column: col, Op: "<=", Lit: hi}}, nil
	}
	op := p.cur()
	if op.kind != tokSymbol || !strings.Contains("< <= = <> >= >", op.text) {
		return nil, p.errf("expected comparison operator, got %q", op.text)
	}
	p.pos++
	lit, err := p.parseLiteral()
	if err != nil {
		return nil, err
	}
	return []Comparison{{Column: col, Op: op.text, Lit: lit}}, nil
}

func (p *parser) parseLiteral() (Literal, error) {
	switch t := p.cur(); {
	case t.kind == tokNumber:
		p.pos++
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return Literal{}, p.errf("bad number %q", t.text)
		}
		return Literal{Kind: LitNumber, Num: v}, nil
	case t.kind == tokSymbol && t.text == "-":
		p.pos++
		lit, err := p.parseLiteral()
		if err != nil {
			return Literal{}, err
		}
		if lit.Kind != LitNumber {
			return Literal{}, p.errf("cannot negate a non-numeric literal")
		}
		lit.Num = -lit.Num
		return lit, nil
	case t.kind == tokString:
		p.pos++
		return Literal{Kind: LitString, Str: t.text}, nil
	case t.kind == tokKeyword && t.text == "DATE":
		p.pos++
		if s := p.cur(); s.kind == tokString {
			p.pos++
			return Literal{Kind: LitString, Str: s.text, IsDate: true}, nil
		}
		return Literal{}, p.errf("expected 'YYYY-MM-DD' after DATE")
	default:
		return Literal{}, p.errf("expected literal, got %q", t.text)
	}
}
