package sql

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"rfabric/internal/engine"
	"rfabric/internal/expr"
	"rfabric/internal/geometry"
	"rfabric/internal/table"
)

// colResolver maps (possibly qualified) column names onto a schema. The
// single-table resolver strips the table's own qualifier; the join resolver
// in lower.go resolves over the combined namespace.
type colResolver struct {
	sch     *geometry.Schema
	resolve func(name string) (int, error)
}

// tableResolver resolves names against one table: bare names and names
// qualified with the table's own name.
func tableResolver(tableName string, sch *geometry.Schema) *colResolver {
	return &colResolver{sch: sch, resolve: func(name string) (int, error) {
		n := name
		if rest, ok := strings.CutPrefix(n, tableName+"."); ok {
			n = rest
		}
		c, ok := sch.Lookup(n)
		if !ok {
			return 0, fmt.Errorf("sql: unknown column %q", name)
		}
		return c, nil
	}}
}

// Plan lowers a statement onto an engine.Query against the given schema.
// The statement's table name is the caller's concern (the catalog in
// rfquery resolves it before planning). Statements carrying sink operators
// (ORDER BY, LIMIT) do not fit in a bare Query; lower them with Lower.
func Plan(st *Stmt, schema *geometry.Schema) (engine.Query, error) {
	if len(st.OrderBy) > 0 || st.HasLimit {
		return engine.Query{}, errors.New("sql: statement has ORDER BY/LIMIT sinks; lower it with Lower")
	}
	return planQuery(st, schema)
}

func planQuery(st *Stmt, schema *geometry.Schema) (engine.Query, error) {
	if len(st.Joins) > 0 {
		return engine.Query{}, errors.New("sql: statement joins tables; lower it with LowerCatalog")
	}
	res := tableResolver(st.Table, schema)
	q, err := planConsume(st, res)
	if err != nil {
		return q, err
	}

	for _, cmp := range st.Where {
		p, err := planComparison(cmp, res)
		if err != nil {
			return q, err
		}
		q.Selection = append(q.Selection, p)
	}

	if err := q.Validate(schema); err != nil {
		return q, err
	}
	return q, nil
}

// planConsume plans the consumption shape — projection, aggregates, group
// keys — against a resolver, leaving selection to the caller (single-table
// plans keep it in the same query; join plans route conjuncts per side).
func planConsume(st *Stmt, res *colResolver) (engine.Query, error) {
	var q engine.Query

	lookup := res.resolve

	hasAgg := false
	for _, item := range st.Items {
		if item.Agg != nil {
			hasAgg = true
			break
		}
	}

	for _, item := range st.Items {
		switch {
		case item.Agg != nil:
			term, err := planAgg(item.Agg, res)
			if err != nil {
				return q, err
			}
			q.Aggregates = append(q.Aggregates, term)
		case hasAgg:
			// A bare column alongside aggregates must be a group key; SQL
			// requires it to appear in GROUP BY, checked below.
			c, err := lookup(item.Column)
			if err != nil {
				return q, err
			}
			found := false
			for _, g := range st.GroupBy {
				if g == item.Column {
					found = true
					break
				}
			}
			if !found {
				return q, fmt.Errorf("sql: column %q must appear in GROUP BY", item.Column)
			}
			_ = c
		default:
			c, err := lookup(item.Column)
			if err != nil {
				return q, err
			}
			q.Projection = append(q.Projection, c)
		}
	}

	for _, g := range st.GroupBy {
		c, err := lookup(g)
		if err != nil {
			return q, err
		}
		q.GroupBy = append(q.GroupBy, c)
	}
	return q, nil
}

func planAgg(call *AggCall, res *colResolver) (engine.AggTerm, error) {
	kinds := map[string]expr.AggKind{
		"COUNT": expr.Count, "SUM": expr.Sum, "AVG": expr.Avg,
		"MIN": expr.Min, "MAX": expr.Max,
	}
	kind, ok := kinds[call.Func]
	if !ok {
		return engine.AggTerm{}, fmt.Errorf("sql: unknown aggregate %q", call.Func)
	}
	if call.Star {
		if kind != expr.Count {
			return engine.AggTerm{}, fmt.Errorf("sql: %s(*) is not valid", call.Func)
		}
		return engine.AggTerm{Kind: expr.Count}, nil
	}
	arg, err := planArith(call.Arg, res)
	if err != nil {
		return engine.AggTerm{}, err
	}
	return engine.AggTerm{Kind: kind, Arg: arg}, nil
}

func planArith(a Arith, res *colResolver) (expr.Scalar, error) {
	switch n := a.(type) {
	case ColExpr:
		c, err := res.resolve(n.Name)
		if err != nil {
			return nil, err
		}
		ref := expr.ColRef{Col: c}
		if err := expr.ValidateScalar(ref, res.sch); err != nil {
			return nil, err
		}
		return ref, nil
	case NumExpr:
		return expr.Const{V: n.Value}, nil
	case BinExpr:
		l, err := planArith(n.L, res)
		if err != nil {
			return nil, err
		}
		r, err := planArith(n.R, res)
		if err != nil {
			return nil, err
		}
		ops := map[string]expr.BinOp{"+": expr.Add, "-": expr.Sub, "*": expr.Mul}
		op, ok := ops[n.Op]
		if !ok {
			return nil, fmt.Errorf("sql: unknown operator %q", n.Op)
		}
		return expr.Binary{Op: op, L: l, R: r}, nil
	default:
		return nil, fmt.Errorf("sql: unknown arithmetic node %T", a)
	}
}

func planComparison(cmp Comparison, res *colResolver) (expr.Predicate, error) {
	c, err := res.resolve(cmp.Column)
	if err != nil {
		return expr.Predicate{}, err
	}
	ops := map[string]expr.CmpOp{
		"<": expr.Lt, "<=": expr.Le, "=": expr.Eq,
		"<>": expr.Ne, ">=": expr.Ge, ">": expr.Gt,
	}
	op, ok := ops[cmp.Op]
	if !ok {
		return expr.Predicate{}, fmt.Errorf("sql: unknown comparison %q", cmp.Op)
	}
	operand, err := planLiteral(cmp.Lit, res.sch.Column(c))
	if err != nil {
		return expr.Predicate{}, fmt.Errorf("sql: column %q: %w", cmp.Column, err)
	}
	return expr.Predicate{Col: c, Op: op, Operand: operand}, nil
}

// planLiteral coerces a literal to the column's type.
func planLiteral(lit Literal, col geometry.Column) (table.Value, error) {
	switch col.Type {
	case geometry.Int64:
		if lit.Kind != LitNumber {
			return table.Value{}, fmt.Errorf("expected number for BIGINT, got %q", lit.Str)
		}
		return table.I64(int64(lit.Num)), nil
	case geometry.Int32:
		if lit.Kind != LitNumber {
			return table.Value{}, fmt.Errorf("expected number for INT, got %q", lit.Str)
		}
		return table.I32(int32(lit.Num)), nil
	case geometry.Float64:
		if lit.Kind != LitNumber {
			return table.Value{}, fmt.Errorf("expected number for DOUBLE, got %q", lit.Str)
		}
		return table.F64(lit.Num), nil
	case geometry.Char:
		if lit.Kind != LitString {
			return table.Value{}, fmt.Errorf("expected string for CHAR, got %g", lit.Num)
		}
		return table.Str(lit.Str), nil
	case geometry.Date:
		switch lit.Kind {
		case LitNumber:
			return table.DateV(int32(lit.Num)), nil
		case LitString:
			day, err := ParseDate(lit.Str)
			if err != nil {
				return table.Value{}, err
			}
			return table.DateV(day), nil
		}
	}
	return table.Value{}, fmt.Errorf("unsupported column type %s", col.Type)
}

// ParseDate converts 'YYYY-MM-DD' into days since 1970-01-01.
func ParseDate(s string) (int32, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return 0, fmt.Errorf("sql: bad date %q: %w", s, err)
	}
	return int32(t.Unix() / 86400), nil
}

// FormatDate renders a day number as 'YYYY-MM-DD'.
func FormatDate(day int32) string {
	return time.Unix(int64(day)*86400, 0).UTC().Format("2006-01-02")
}

// Compile is the one-call convenience: parse then plan.
func Compile(query string, schema *geometry.Schema) (engine.Query, error) {
	st, err := Parse(query)
	if err != nil {
		return engine.Query{}, err
	}
	return Plan(st, schema)
}
