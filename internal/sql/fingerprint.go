package sql

import "hash/fnv"

// Statement fingerprinting, pg_stat_statements-style. Two statements that
// differ only in their literal values — the shifting predicates of a
// dashboard workload — share one fingerprint, so the statistics store
// aggregates them as a single logical statement. Normalization happens at
// the lexer: literals are replaced by '?', identifiers are already
// lower-cased and keywords upper-cased by lex, and token spelling is joined
// with single spaces so whitespace and case never split a fingerprint.
//
// The fingerprint is the FNV-1a 64-bit hash of the normalized text. FNV is
// stable across processes and Go versions (unlike maphash), which the audit
// report and the /debug/statements endpoint rely on for stable keys.

// Fingerprint normalizes one statement and returns the normalized text plus
// its stable 64-bit hash. Statements that fail to lex fingerprint as their
// raw text, so error accounting still aggregates; the error from lexing is
// not surfaced here because the caller has already parsed (or will parse)
// the statement through the real front end.
func Fingerprint(query string) (string, uint64) {
	toks, err := lex(query)
	if err != nil {
		return query, hashString(query)
	}
	// Size estimate: token texts plus one separator each; literals shrink
	// to one byte.
	n := 0
	for _, t := range toks {
		n += len(t.text) + 1
	}
	buf := make([]byte, 0, n)
	for _, t := range toks {
		if t.kind == tokEOF {
			break
		}
		var text string
		switch t.kind {
		case tokNumber, tokString:
			text = "?"
		default:
			text = t.text
		}
		// Qualified references lex as ident '.' ident; gluing the dot keeps
		// "orders.o_orderkey" one fingerprint token instead of three.
		if t.kind == tokSymbol && t.text == "." {
			if len(buf) > 0 && buf[len(buf)-1] == ' ' {
				buf = buf[:len(buf)-1]
			}
			buf = append(buf, '.')
			continue
		}
		if len(buf) > 0 && buf[len(buf)-1] != '.' {
			buf = append(buf, ' ')
		}
		buf = append(buf, text...)
	}
	norm := string(buf)
	return norm, hashString(norm)
}

func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
