package vec

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"rfabric/internal/expr"
	"rfabric/internal/table"
)

var cmpOps = []expr.CmpOp{expr.Lt, expr.Le, expr.Eq, expr.Ne, expr.Ge, expr.Gt}

// boundary-heavy value pools
var i64Pool = []int64{math.MinInt64, math.MinInt64 + 1, -1, 0, 1, 42, math.MaxInt64 - 1, math.MaxInt64}
var f64Pool = []float64{math.Inf(-1), -1.5, math.Copysign(0, -1), 0, 0.25, 1e300, math.Inf(1), math.NaN()}
var charPool = []string{"", "a", "ash", "ash\x00x", "oak", "oakum", "zzzzzz"}

func randI64(rng *rand.Rand) int64 {
	if rng.Intn(3) == 0 {
		return i64Pool[rng.Intn(len(i64Pool))]
	}
	return rng.Int63() - rng.Int63()
}

func randF64(rng *rand.Rand) float64 {
	if rng.Intn(3) == 0 {
		return f64Pool[rng.Intn(len(f64Pool))]
	}
	return rng.NormFloat64() * 1e3
}

// TestFilterMatchesPredicateEval checks the integer and float filter kernels
// against the scalar Predicate.Eval path over boundary-heavy random lanes.
func TestFilterMatchesPredicateEval(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 512
	for trial := 0; trial < 50; trial++ {
		op := cmpOps[rng.Intn(len(cmpOps))]

		ints := make([]int64, n)
		for i := range ints {
			ints[i] = randI64(rng)
		}
		opI := randI64(rng)
		sel := make([]int32, n)
		for i := range sel {
			sel[i] = int32(i)
		}
		fail := make([]int16, n)
		for i := range fail {
			fail[i] = -1
		}
		out := FilterI64(ints, op, opI, sel, fail, 3)
		p := expr.Predicate{Op: op, Operand: table.I64(opI)}
		j := 0
		for i := 0; i < n; i++ {
			want := p.Eval(table.I64(ints[i]))
			if want {
				if j >= len(out) || out[j] != int32(i) {
					t.Fatalf("FilterI64: row %d should survive (%d %s %d)", i, ints[i], op, opI)
				}
				if fail[i] != -1 {
					t.Fatalf("FilterI64: surviving row %d has fail depth %d", i, fail[i])
				}
				j++
			} else if fail[i] != 3 {
				t.Fatalf("FilterI64: dropped row %d has fail depth %d, want 3", i, fail[i])
			}
		}
		if j != len(out) {
			t.Fatalf("FilterI64: %d survivors, want %d", len(out), j)
		}

		floats := make([]float64, n)
		for i := range floats {
			floats[i] = randF64(rng)
		}
		opF := randF64(rng)
		for i := range sel {
			sel[i] = int32(i)
			fail[i] = -1
		}
		outF := FilterF64(floats, op, opF, sel, fail, 0)
		pf := expr.Predicate{Op: op, Operand: table.F64(opF)}
		j = 0
		for i := 0; i < n; i++ {
			if pf.Eval(table.F64(floats[i])) {
				if j >= len(outF) || outF[j] != int32(i) {
					t.Fatalf("FilterF64: row %d should survive (%v %s %v)", i, floats[i], op, opF)
				}
				j++
			}
		}
		if j != len(outF) {
			t.Fatalf("FilterF64: %d survivors, want %d", len(outF), j)
		}
	}
}

// TestFilterCharMatchesPredicateEval checks the in-place CHAR kernel,
// including trailing-NUL padding and embedded NULs.
func TestFilterCharMatchesPredicateEval(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const width, n = 6, 256
	src := make([]byte, n*width)
	vals := make([]table.Value, n)
	for i := 0; i < n; i++ {
		s := charPool[rng.Intn(len(charPool))]
		copy(src[i*width:(i+1)*width], s)
		// The scalar comparison trims trailing NULs itself, so the unpadded
		// spelling is the same logical value the kernel sees padded in src.
		vals[i] = table.Str(s)
	}
	for trial := 0; trial < 30; trial++ {
		op := cmpOps[rng.Intn(len(cmpOps))]
		operand := charPool[rng.Intn(len(charPool))]
		padOp := make([]byte, width)
		copy(padOp, operand)
		opVal := table.Str(operand)

		sel := make([]int32, n)
		fail := make([]int16, n)
		for i := range sel {
			sel[i] = int32(i)
			fail[i] = -1
		}
		out := FilterChar(src, 0, width, width, op, TrimPad(padOp), sel, fail, 0)
		p := expr.Predicate{Op: op, Operand: opVal}
		j := 0
		for i := 0; i < n; i++ {
			if p.Eval(vals[i]) {
				if j >= len(out) || out[j] != int32(i) {
					t.Fatalf("FilterChar: row %d (%q %s %q) should survive", i, vals[i].Bytes, op, operand)
				}
				j++
			}
		}
		if j != len(out) {
			t.Fatalf("FilterChar: %d survivors, want %d", len(out), j)
		}
	}
}

// TestCmpCharMatchesValueCompare pins the CHAR comparison against
// table.Value.Compare for every pool pair.
func TestCmpCharMatchesValueCompare(t *testing.T) {
	const width = 8
	pad := func(s string) []byte {
		b := make([]byte, width)
		copy(b, s)
		return b
	}
	for _, a := range charPool {
		for _, b := range charPool {
			want := table.Str(a).Compare(table.Str(b))
			got := CmpChar(pad(a), TrimPad(pad(b)))
			if got != want {
				t.Fatalf("CmpChar(%q, %q) = %d, want %d", a, b, got, want)
			}
		}
	}
}

// TestDecodeKernels checks stride-aware decode against the binary codec,
// including Int32 sign extension.
func TestDecodeKernels(t *testing.T) {
	const n, stride, off = 64, 24, 4
	src := make([]byte, n*stride+off+8)
	wantI64 := make([]int64, n)
	wantI32 := make([]int64, n)
	wantF64 := make([]float64, n)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < n; i++ {
		v := randI64(rng)
		wantI64[i] = v
		binary.LittleEndian.PutUint64(src[off+i*stride:], uint64(v))
	}
	dst := make([]int64, n)
	DecodeI64(dst, src, off, stride, n)
	for i := range dst {
		if dst[i] != wantI64[i] {
			t.Fatalf("DecodeI64[%d] = %d, want %d", i, dst[i], wantI64[i])
		}
	}
	for i := 0; i < n; i++ {
		v := int32(rng.Uint32())
		wantI32[i] = int64(v)
		binary.LittleEndian.PutUint32(src[off+i*stride:], uint32(v))
	}
	DecodeI32(dst, src, off, stride, n)
	for i := range dst {
		if dst[i] != wantI32[i] {
			t.Fatalf("DecodeI32[%d] = %d, want %d (sign extension)", i, dst[i], wantI32[i])
		}
	}
	for i := 0; i < n; i++ {
		v := randF64(rng)
		wantF64[i] = v
		binary.LittleEndian.PutUint64(src[off+i*stride:], math.Float64bits(v))
	}
	dstF := make([]float64, n)
	DecodeF64(dstF, src, off, stride, n)
	for i := range dstF {
		if math.Float64bits(dstF[i]) != math.Float64bits(wantF64[i]) {
			t.Fatalf("DecodeF64[%d] = %v, want %v", i, dstF[i], wantF64[i])
		}
	}
}

// TestAggStateMatchesSequentialFold pins the accumulator update order
// (including its NaN min/max behavior) against a literal transcription of
// the engine's scalar accumulator.
func TestAggStateMatchesSequentialFold(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = randF64(rng)
		}
		var a AggState
		AddVals(&a, xs)

		var count int64
		var sum, min, max float64
		var any bool
		for _, x := range xs {
			count++
			sum += x
			if !any || x < min {
				min = x
			}
			if !any || x > max {
				max = x
			}
			any = true
		}
		if a.Count != count ||
			math.Float64bits(a.Sum) != math.Float64bits(sum) ||
			math.Float64bits(a.Min) != math.Float64bits(min) ||
			math.Float64bits(a.Max) != math.Float64bits(max) {
			t.Fatalf("AggState %+v, want count=%d sum=%v min=%v max=%v", a, count, sum, min, max)
		}
	}
}

// TestHashCharStopsAtNUL pins the CHAR hash window: bytes up to the first
// NUL, so padded and unpadded spellings of one logical value hash alike.
func TestHashCharStopsAtNUL(t *testing.T) {
	if HashChar(3, []byte("oak\x00\x00\x00")) != HashChar(3, []byte("oak")) {
		t.Fatal("padded CHAR hashes differently from unpadded")
	}
	if HashChar(3, []byte("oak\x00x")) != HashChar(3, []byte("oak")) {
		t.Fatal("bytes after an embedded NUL leaked into the hash")
	}
	if HashChar(3, []byte("oak")) == HashChar(4, []byte("oak")) {
		t.Fatal("column index not mixed into the hash")
	}
}

// TestKernelsDoNotAllocate pins the zero-allocation property of every kernel
// on the steady-state scan path.
func TestKernelsDoNotAllocate(t *testing.T) {
	const n = BatchRows
	lane := make([]int64, n)
	laneF := make([]float64, n)
	src := make([]byte, n*16)
	sel := make([]int32, n)
	fail := make([]int16, n)
	dst := make([]bool, n)
	out := make([]float64, n)
	var st AggState
	allocs := testing.AllocsPerRun(10, func() {
		for i := range sel {
			sel[i] = int32(i)
			fail[i] = -1
		}
		DecodeI64(lane, src, 0, 16, n)
		DecodeF64(laneF, src, 8, 16, n)
		s := FilterI64(lane, expr.Le, 0, sel, fail, 0)
		s = FilterF64(laneF, expr.Ge, -1, s, fail, 1)
		CmpBitmapI64(dst, lane, expr.Lt, 5, false)
		_ = ChecksumI64(1, lane, s)
		_ = ChecksumF64(2, laneF, s)
		_ = ChecksumChar(3, src, 0, 16, 6, s)
		CompactLaneF64(out[:len(s)], laneF, s)
		MulLanes(out[:len(s)], out[:len(s)])
		AddF64(&st, laneF, s)
	})
	if allocs != 0 {
		t.Fatalf("kernel chain allocates %.1f times per run, want 0", allocs)
	}
}
