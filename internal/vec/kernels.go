package vec

import (
	"encoding/binary"
	"math"

	"rfabric/internal/expr"
)

// Decode kernels: stride-aware bulk decode from a row-major buffer into a
// typed lane. They replace per-row table.DecodeColumn calls; the source
// layout (base table payload, fabric-packed chunk, or dense column array) is
// expressed as (src, off, stride).

// DecodeI64 decodes n BIGINT values starting at byte off, one per stride.
func DecodeI64(dst []int64, src []byte, off, stride, n int) {
	for i := 0; i < n; i++ {
		dst[i] = int64(binary.LittleEndian.Uint64(src[off : off+8]))
		off += stride
	}
}

// DecodeI32 decodes n INT/DATE values, sign-extending like the row codec.
func DecodeI32(dst []int64, src []byte, off, stride, n int) {
	for i := 0; i < n; i++ {
		dst[i] = int64(int32(binary.LittleEndian.Uint32(src[off : off+4])))
		off += stride
	}
}

// DecodeF64 decodes n DOUBLE values.
func DecodeF64(dst []float64, src []byte, off, stride, n int) {
	for i := 0; i < n; i++ {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[off : off+8]))
		off += stride
	}
}

// Gather kernels: compacting decode of scattered rows from a dense column
// array (stride == width), used by the COL engine's tuple reconstruction.

// GatherI64 decodes dst[j] from row sel[j] of a dense BIGINT array.
func GatherI64(dst []int64, src []byte, width int, sel []int32) {
	for j, r := range sel {
		o := int(r) * width
		dst[j] = int64(binary.LittleEndian.Uint64(src[o : o+8]))
	}
}

// GatherI32 decodes dst[j] from row sel[j] of a dense INT/DATE array.
func GatherI32(dst []int64, src []byte, width int, sel []int32) {
	for j, r := range sel {
		o := int(r) * width
		dst[j] = int64(int32(binary.LittleEndian.Uint32(src[o : o+4])))
	}
}

// GatherF64 decodes dst[j] from row sel[j] of a dense DOUBLE array.
func GatherF64(dst []float64, src []byte, width int, sel []int32) {
	for j, r := range sel {
		o := int(r) * width
		dst[j] = math.Float64frombits(binary.LittleEndian.Uint64(src[o : o+8]))
	}
}

// Filter kernels: selection-vector refinement. Each keeps the rows whose
// lane value satisfies (op, operand) and records the failing predicate depth
// in fail[row] for the rows it drops, so the engine's charge-replay loop can
// reproduce the scalar short-circuit exactly. sel is refined in place (the
// surviving prefix is returned).

// FilterI64 refines sel over an integer lane.
func FilterI64(lane []int64, op expr.CmpOp, operand int64, sel []int32, fail []int16, depth int16) []int32 {
	out := sel[:0]
	for _, r := range sel {
		if op.Holds(CmpI64(lane[r], operand)) {
			out = append(out, r)
		} else {
			fail[r] = depth
		}
	}
	return out
}

// FilterF64 refines sel over a float lane (NaN compares as cmp 0).
func FilterF64(lane []float64, op expr.CmpOp, operand float64, sel []int32, fail []int16, depth int16) []int32 {
	out := sel[:0]
	for _, r := range sel {
		if op.Holds(CmpF64(lane[r], operand)) {
			out = append(out, r)
		} else {
			fail[r] = depth
		}
	}
	return out
}

// FilterChar refines sel over an in-place CHAR column of the given layout.
// operand must be pre-trimmed with TrimPad.
func FilterChar(src []byte, off, stride, width int, op expr.CmpOp, operand []byte, sel []int32, fail []int16, depth int16) []int32 {
	out := sel[:0]
	for _, r := range sel {
		o := off + int(r)*stride
		if op.Holds(CmpChar(src[o:o+width], operand)) {
			out = append(out, r)
		} else {
			fail[r] = depth
		}
	}
	return out
}

// Bitmap compare kernels for the COL engine's full-column selection passes.
// With refine=false every row is evaluated (first pass); with refine=true
// only rows still true are re-evaluated, like the scalar read-modify-write.

// CmpBitmapI64 evaluates an integer lane into dst.
func CmpBitmapI64(dst []bool, lane []int64, op expr.CmpOp, operand int64, refine bool) {
	for i := range dst {
		if refine && !dst[i] {
			continue
		}
		dst[i] = op.Holds(CmpI64(lane[i], operand))
	}
}

// CmpBitmapF64 evaluates a float lane into dst.
func CmpBitmapF64(dst []bool, lane []float64, op expr.CmpOp, operand float64, refine bool) {
	for i := range dst {
		if refine && !dst[i] {
			continue
		}
		dst[i] = op.Holds(CmpF64(lane[i], operand))
	}
}

// CmpBitmapChar evaluates rows base.. of a dense CHAR array into dst.
// operand must be pre-trimmed with TrimPad.
func CmpBitmapChar(dst []bool, src []byte, width, base int, op expr.CmpOp, operand []byte, refine bool) {
	for i := range dst {
		if refine && !dst[i] {
			continue
		}
		o := (base + i) * width
		dst[i] = op.Holds(CmpChar(src[o:o+width], operand))
	}
}

// Checksum kernels: fold the selected values of one projected column into
// the order-insensitive FNV checksum, replicating the scalar consumer. The
// hash of a value is mix8(mix8(offset, col), payload); the column premix is
// constant across a kernel call, so each kernel computes it once and folds
// only the payload per row.

// ChecksumI64 folds selected integer lanes.
func ChecksumI64(col int, lane []int64, sel []int32) uint64 {
	seed := mix8(fnvOffset, uint64(col))
	var sum uint64
	for _, r := range sel {
		sum += mix8(seed, uint64(lane[r]))
	}
	return sum
}

// ChecksumF64 folds selected float lanes.
func ChecksumF64(col int, lane []float64, sel []int32) uint64 {
	seed := mix8(fnvOffset, uint64(col))
	var sum uint64
	for _, r := range sel {
		sum += mix8(seed, math.Float64bits(lane[r]))
	}
	return sum
}

// hashCharSeeded continues a CHAR hash from the precomputed column seed.
func hashCharSeeded(seed uint64, b []byte) uint64 {
	h := seed
	for _, c := range b {
		if c == 0 {
			break
		}
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

// ChecksumChar folds selected CHAR fields in place from a row-major buffer.
func ChecksumChar(col int, src []byte, off, stride, width int, sel []int32) uint64 {
	seed := mix8(fnvOffset, uint64(col))
	var sum uint64
	for _, r := range sel {
		o := off + int(r)*stride
		sum += hashCharSeeded(seed, src[o:o+width])
	}
	return sum
}

// ChecksumCharGather folds CHAR fields of scattered rows of a dense column
// array (the COL reconstruction layout).
func ChecksumCharGather(col int, src []byte, width int, sel []int32) uint64 {
	seed := mix8(fnvOffset, uint64(col))
	var sum uint64
	for _, r := range sel {
		o := int(r) * width
		sum += hashCharSeeded(seed, src[o:o+width])
	}
	return sum
}

// Lane arithmetic for derived aggregate expressions (compacted to the
// selection): each row's value is computed with the same per-row operation
// order as Scalar.EvalF, so float results are bit-identical.

// FillF64 sets every element of dst to v.
func FillF64(dst []float64, v float64) {
	for i := range dst {
		dst[i] = v
	}
}

// CompactLaneI64 widens selected integer lanes into a compacted float vector.
func CompactLaneI64(dst []float64, lane []int64, sel []int32) {
	for j, r := range sel {
		dst[j] = float64(lane[r])
	}
}

// CompactLaneF64 copies selected float lanes into a compacted vector.
func CompactLaneF64(dst []float64, lane []float64, sel []int32) {
	for j, r := range sel {
		dst[j] = lane[r]
	}
}

// AddLanes computes dst[i] += b[i].
func AddLanes(dst, b []float64) {
	for i := range dst {
		dst[i] += b[i]
	}
}

// SubLanes computes dst[i] -= b[i].
func SubLanes(dst, b []float64) {
	for i := range dst {
		dst[i] -= b[i]
	}
}

// MulLanes computes dst[i] *= b[i].
func MulLanes(dst, b []float64) {
	for i := range dst {
		dst[i] *= b[i]
	}
}
