// Package vec implements the fixed-size columnar batch kernels behind the
// engines' vectorized scan paths. A batch is BatchRows rows of one or more
// typed lanes ([]int64 for BIGINT/INT/DATE, []float64 for DOUBLE; CHAR
// columns are accessed in place in the source buffer), narrowed by a
// selection vector of row indices. The kernels are pure wall-clock
// optimizations: they carry no modeled cost of their own. The engines still
// charge every PredEvalCycles/ExtractCycles/Hier.Load exactly as the scalar
// interpreters do — the kernels only replace the per-row closure dispatch,
// Value boxing, and per-value DecodeColumn calls with tight typed loops.
//
// Every kernel replicates the corresponding scalar semantics bit for bit:
// comparisons follow table.Value.Compare (three-way compare, then
// expr.CmpOp.Holds; CHAR compares with trailing-NUL padding stripped),
// checksums follow the engine's FNV-1a value hash (CHAR hashes bytes up to
// the first NUL), and aggregation follows the engine accumulator's exact
// update order so float results stay bit-identical.
package vec

import (
	"bytes"
	"encoding/binary"
	"math"
)

// BatchRows is the batch width of the vectorized scan paths. 1024 rows keeps
// a handful of 8-byte lanes comfortably inside L1 of the *host* machine while
// amortizing per-batch bookkeeping; it deliberately matches the modeled
// engines' VectorSize so the simulator's batching mirrors what it simulates.
const BatchRows = 1024

// FNV-1a constants, identical to the engine consumer's checksum hash.
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

func mix8(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= (x >> (8 * uint(i))) & 0xff
		h *= fnvPrime
	}
	return h
}

// HashI64 hashes one integer-family value exactly like the engine consumer:
// FNV offset, then the column index, then the sign-extended payload.
func HashI64(col int, x int64) uint64 {
	return mix8(mix8(fnvOffset, uint64(col)), uint64(x))
}

// HashF64 hashes one DOUBLE value (by its IEEE-754 bits).
func HashF64(col int, x float64) uint64 {
	return mix8(mix8(fnvOffset, uint64(col)), math.Float64bits(x))
}

// HashChar hashes one CHAR field: bytes up to (excluding) the first NUL.
func HashChar(col int, b []byte) uint64 {
	h := mix8(fnvOffset, uint64(col))
	for _, c := range b {
		if c == 0 {
			break
		}
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

// TrimPad strips trailing NUL padding, mirroring table.Value's CHAR
// comparison semantics.
func TrimPad(b []byte) []byte {
	end := len(b)
	for end > 0 && b[end-1] == 0 {
		end--
	}
	return b[:end]
}

// CmpI64 is the three-way integer compare of table.Value.Compare.
func CmpI64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// CmpF64 is the three-way float compare of table.Value.Compare. NaN compares
// as neither less nor greater — cmp 0 — exactly like the scalar path.
func CmpF64(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// CmpChar compares a padded CHAR field against a pre-trimmed operand.
func CmpChar(field, operand []byte) int {
	return bytes.Compare(TrimPad(field), operand)
}

// AggState mirrors the engine aggregate accumulator field for field so folds
// produce bit-identical float results. Add replicates the accumulator's
// update order exactly (including its NaN behavior: `!any || x < min`).
type AggState struct {
	Count int64
	Sum   float64
	Min   float64
	Max   float64
	Any   bool
}

// Add folds one value, replicating the scalar accumulator's exact semantics.
func (a *AggState) Add(x float64) {
	a.Count++
	a.Sum += x
	if !a.Any || x < a.Min {
		a.Min = x
	}
	if !a.Any || x > a.Max {
		a.Max = x
	}
	a.Any = true
}

// AddCount registers n qualifying rows for COUNT(*) terms.
func (a *AggState) AddCount(n int64) { a.Count += n }

// AddI64 folds the selected lanes of an integer lane, in selection order, so
// float accumulation is sequential exactly like the scalar loop.
func AddI64(a *AggState, lane []int64, sel []int32) {
	for _, r := range sel {
		a.Add(float64(lane[r]))
	}
}

// AddF64 folds the selected lanes of a float lane in selection order.
func AddF64(a *AggState, lane []float64, sel []int32) {
	for _, r := range sel {
		a.Add(lane[r])
	}
}

// AddVals folds an already-compacted value vector in order.
func AddVals(a *AggState, xs []float64) {
	for _, x := range xs {
		a.Add(x)
	}
}

// VisibleMask computes MVCC visibility for rows [start, start+len(vis)) of a
// row heap with the 16-byte timestamp header at each row start: visible iff
// begin <= ts < end.
func VisibleMask(vis []bool, data []byte, stride, start int, ts uint64) {
	off := start * stride
	for i := range vis {
		row := data[off : off+16]
		begin := binary.LittleEndian.Uint64(row[0:8])
		end := binary.LittleEndian.Uint64(row[8:16])
		vis[i] = begin <= ts && ts < end
		off += stride
	}
}
