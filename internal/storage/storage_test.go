package storage

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"rfabric/internal/expr"
	"rfabric/internal/geometry"
	"rfabric/internal/table"
)

func testTable(t *testing.T, rows int) *table.Table {
	t.Helper()
	sch := geometry.MustSchema(
		geometry.Column{Name: "id", Type: geometry.Int64, Width: 8},
		geometry.Column{Name: "grp", Type: geometry.Int32, Width: 4},
		geometry.Column{Name: "price", Type: geometry.Float64, Width: 8},
		geometry.Column{Name: "note", Type: geometry.Char, Width: 12},
	)
	tbl := table.MustNew("t", sch, table.WithCapacity(rows))
	rng := rand.New(rand.NewSource(21))
	notes := []string{"alpha", "bravo", "charlie", "delta"}
	for r := 0; r < rows; r++ {
		tbl.MustAppend(0,
			table.I64(int64(r)),
			table.I32(int32(rng.Intn(8))),
			table.F64(float64(rng.Intn(1000))/4),
			table.Str(notes[rng.Intn(len(notes))]),
		)
	}
	return tbl
}

func TestDeviceConfigValidation(t *testing.T) {
	if err := DefaultDeviceConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []func(*DeviceConfig){
		func(c *DeviceConfig) { c.Channels = 0 },
		func(c *DeviceConfig) { c.DiesPerChan = 0 },
		func(c *DeviceConfig) { c.PageBytes = 1000 },
		func(c *DeviceConfig) { c.PageReadCycles = 0 },
		func(c *DeviceConfig) { c.TransferCyclesPerByte = 0 },
		func(c *DeviceConfig) { c.ControllerCyclesPerByte = 0 },
		func(c *DeviceConfig) { c.HostCyclesPerByte = 0 },
	}
	for i, mutate := range mutations {
		c := DefaultDeviceConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestWritePageBounds(t *testing.T) {
	dev, err := NewDevice(DefaultDeviceConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.WritePage(make([]byte, dev.Config().PageBytes+1)); err == nil {
		t.Error("oversized page accepted")
	}
	pn, err := dev.WritePage([]byte{1, 2, 3})
	if err != nil || pn != 0 {
		t.Fatalf("WritePage: %d, %v", pn, err)
	}
	page, err := dev.Page(0)
	if err != nil {
		t.Fatal(err)
	}
	if page[0] != 1 || page[3] != 0 {
		t.Error("page content or padding wrong")
	}
	if _, err := dev.Page(1); err == nil {
		t.Error("out-of-range page accepted")
	}
}

func TestStoreTableLayout(t *testing.T) {
	tbl := testTable(t, 1000)
	dev, _ := NewDevice(DefaultDeviceConfig())
	ps, err := StoreTable(dev, tbl, false)
	if err != nil {
		t.Fatal(err)
	}
	rowsPerPage := dev.Config().PageBytes / tbl.Schema().RowBytes()
	wantPages := (1000 + rowsPerPage - 1) / rowsPerPage
	if ps.NumPages() != wantPages {
		t.Errorf("pages = %d, want %d", ps.NumPages(), wantPages)
	}
	if ps.NumRows() != 1000 {
		t.Errorf("rows = %d", ps.NumRows())
	}
}

func TestStoreTableRejectsMVCC(t *testing.T) {
	sch := geometry.MustSchema(geometry.Column{Name: "id", Type: geometry.Int64, Width: 8})
	tbl := table.MustNew("t", sch, table.WithMVCC())
	dev, _ := NewDevice(DefaultDeviceConfig())
	if _, err := StoreTable(dev, tbl, false); err == nil {
		t.Error("MVCC table accepted at the storage tier")
	}
}

func scanBoth(t *testing.T, compressed bool, rows int, preds expr.Conjunction, cols ...int) (*ScanResult, *ScanResult, *table.Table) {
	t.Helper()
	tbl := testTable(t, rows)
	dev, _ := NewDevice(DefaultDeviceConfig())
	ps, err := StoreTable(dev, tbl, compressed)
	if err != nil {
		t.Fatal(err)
	}
	geom := geometry.MustGeometry(tbl.Schema(), cols...)
	near, err := ps.ScanNearStorage(geom, preds)
	if err != nil {
		t.Fatal(err)
	}
	host, err := ps.ScanHost(geom, preds)
	if err != nil {
		t.Fatal(err)
	}
	return near, host, tbl
}

func TestNearStorageMatchesHost(t *testing.T) {
	for _, compressed := range []bool{false, true} {
		preds := expr.Conjunction{{Col: 1, Op: expr.Lt, Operand: table.I32(4)}}
		near, host, _ := scanBoth(t, compressed, 500, preds, 0, 2)
		if !bytes.Equal(near.Packed, host.Packed) {
			t.Errorf("compressed=%v: near-storage and host scans disagree", compressed)
		}
		if near.Rows != host.Rows || near.Rows == 0 || near.Rows == 500 {
			t.Errorf("compressed=%v: rows near=%d host=%d", compressed, near.Rows, host.Rows)
		}
	}
}

func TestNearStorageShipsLess(t *testing.T) {
	// Selective scan over a narrow column group: near-storage ships the
	// packed survivors; the host path ships every page.
	preds := expr.Conjunction{{Col: 1, Op: expr.Eq, Operand: table.I32(0)}}
	near, host, _ := scanBoth(t, false, 2000, preds, 0)
	if near.BytesToHost >= host.BytesToHost {
		t.Errorf("near-storage shipped %d bytes, host %d — pushdown should ship less",
			near.BytesToHost, host.BytesToHost)
	}
	if near.Cycles >= host.Cycles {
		t.Errorf("near-storage took %d cycles, host %d — pushdown should be faster here",
			near.Cycles, host.Cycles)
	}
}

func TestCompressedPagesReduceWireBytesForHost(t *testing.T) {
	preds := expr.Conjunction{}
	_, hostRaw, _ := scanBoth(t, false, 2000, preds, 0, 1, 2, 3)
	_, hostComp, _ := scanBoth(t, true, 2000, preds, 0, 1, 2, 3)
	if hostComp.BytesToHost >= hostRaw.BytesToHost {
		t.Errorf("compressed pages moved %d bytes to host, raw %d", hostComp.BytesToHost, hostRaw.BytesToHost)
	}
}

func TestScanValidation(t *testing.T) {
	tbl := testTable(t, 10)
	dev, _ := NewDevice(DefaultDeviceConfig())
	ps, err := StoreTable(dev, tbl, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ps.ScanNearStorage(nil, nil); err == nil {
		t.Error("nil geometry accepted")
	}
	other := geometry.MustSchema(geometry.Column{Name: "x", Type: geometry.Int64, Width: 8})
	if _, err := ps.ScanNearStorage(geometry.MustGeometry(other, 0), nil); err == nil {
		t.Error("foreign geometry accepted")
	}
	badPred := expr.Conjunction{{Col: 77, Op: expr.Eq, Operand: table.I64(0)}}
	if _, err := ps.ScanHost(geometry.MustGeometry(tbl.Schema(), 0), badPred); err == nil {
		t.Error("invalid predicate accepted")
	}
}

func TestChannelParallelism(t *testing.T) {
	// Reading N pages over C channels should cost about ceil(N/(C*dies))
	// page times, not N page times.
	cfg := DefaultDeviceConfig()
	dev, _ := NewDevice(cfg)
	var pages []int
	for i := 0; i < cfg.Channels*cfg.DiesPerChan*2; i++ {
		if _, err := dev.WritePage(nil); err != nil {
			t.Fatal(err)
		}
		pages = append(pages, i)
	}
	cycles, err := dev.readPages(pages)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * cfg.PageReadCycles; cycles != want {
		t.Errorf("reading %d pages cost %d cycles, want %d (2 pipelined rounds)", len(pages), cycles, want)
	}
}

// TestScanEquivalenceProperty: near-storage and host scans agree for random
// predicates, geometries, and page compression.
func TestScanEquivalenceProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := rng.Intn(400) + 1
		tbl := testTableSeeded(rows, rng.Int63())
		dev, _ := NewDevice(DefaultDeviceConfig())
		ps, err := StoreTable(dev, tbl, rng.Intn(2) == 0)
		if err != nil {
			return false
		}
		cols := []int{rng.Intn(4)}
		if rng.Intn(2) == 0 {
			cols = append(cols, (cols[0]+1+rng.Intn(3))%4)
			if cols[1] == cols[0] {
				cols = cols[:1]
			}
		}
		geom, err := geometry.NewGeometry(tbl.Schema(), cols...)
		if err != nil {
			return false
		}
		var preds expr.Conjunction
		if rng.Intn(2) == 0 {
			preds = expr.Conjunction{{Col: 1, Op: expr.Lt, Operand: table.I32(int32(rng.Intn(9)))}}
		}
		near, err := ps.ScanNearStorage(geom, preds)
		if err != nil {
			return false
		}
		host, err := ps.ScanHost(geom, preds)
		if err != nil {
			return false
		}
		return bytes.Equal(near.Packed, host.Packed) && near.Rows == host.Rows
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func testTableSeeded(rows int, seed int64) *table.Table {
	sch := geometry.MustSchema(
		geometry.Column{Name: "id", Type: geometry.Int64, Width: 8},
		geometry.Column{Name: "grp", Type: geometry.Int32, Width: 4},
		geometry.Column{Name: "price", Type: geometry.Float64, Width: 8},
		geometry.Column{Name: "note", Type: geometry.Char, Width: 12},
	)
	tbl := table.MustNew("t", sch, table.WithCapacity(rows))
	rng := rand.New(rand.NewSource(seed))
	for r := 0; r < rows; r++ {
		tbl.MustAppend(0,
			table.I64(rng.Int63()),
			table.I32(int32(rng.Intn(8))),
			table.F64(rng.Float64()*100),
			table.Str("note"),
		)
	}
	return tbl
}

func TestAggregateNearStorageMatchesScan(t *testing.T) {
	tbl := testTable(t, 1500)
	dev, _ := NewDevice(DefaultDeviceConfig())
	ps, err := StoreTable(dev, tbl, true)
	if err != nil {
		t.Fatal(err)
	}
	geom := geometry.MustGeometry(tbl.Schema(), 2)
	preds := expr.Conjunction{{Col: 1, Op: expr.Lt, Operand: table.I32(4)}}
	agg, err := ps.AggregateNearStorage(geom, preds, []expr.AggSpec{
		{Kind: expr.Count},
		{Kind: expr.Sum, Col: 2},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Software reference over the base table.
	var count int
	var sum float64
	for r := 0; r < tbl.NumRows(); r++ {
		g, _ := tbl.Get(r, 1)
		if g.Int >= 4 {
			continue
		}
		count++
		p, _ := tbl.Get(r, 2)
		sum += p.Float
	}
	if agg.Values[0].Int != int64(count) || agg.RowsQualified != count {
		t.Errorf("COUNT = %s (%d qualified), want %d", agg.Values[0], agg.RowsQualified, count)
	}
	if agg.Values[1].Float != sum {
		t.Errorf("SUM = %s, want %v", agg.Values[1], sum)
	}
	if agg.BytesToHost != 16 {
		t.Errorf("aggregation shipped %d bytes, want 16", agg.BytesToHost)
	}
	// Compare against shipping packed columns: the aggregate path moves
	// orders of magnitude less.
	dev2, _ := NewDevice(DefaultDeviceConfig())
	ps2, _ := StoreTable(dev2, tbl, true)
	scan, err := ps2.ScanNearStorage(geom, preds)
	if err != nil {
		t.Fatal(err)
	}
	if agg.BytesToHost*10 > scan.BytesToHost {
		t.Errorf("aggregate bytes %d not well below scan bytes %d", agg.BytesToHost, scan.BytesToHost)
	}
}

func TestAggregateNearStorageValidation(t *testing.T) {
	tbl := testTable(t, 50)
	dev, _ := NewDevice(DefaultDeviceConfig())
	ps, _ := StoreTable(dev, tbl, false)
	geom := geometry.MustGeometry(tbl.Schema(), 0)
	if _, err := ps.AggregateNearStorage(geom, nil, nil); err == nil {
		t.Error("empty specs accepted")
	}
	if _, err := ps.AggregateNearStorage(geom, nil, []expr.AggSpec{{Kind: expr.Sum, Col: 2}}); err == nil {
		t.Error("aggregate over column outside the geometry accepted")
	}
}
