package storage

import (
	"encoding/binary"
	"errors"
	"fmt"

	"rfabric/internal/compress"
	"rfabric/internal/expr"
	"rfabric/internal/geometry"
	"rfabric/internal/table"
)

// PageStore lays a row table out on a Device: rows are packed back to back
// into pages (no row spans a page), optionally LZ77-compressed per page.
// Compressed pages exercise §IV-D's "even decompression can be done
// on-the-fly along with data transformation".
type PageStore struct {
	dev        *Device
	schema     *geometry.Schema
	rowBytes   int
	rowsPer    int
	rows       int
	pageNos    []int
	compressed bool
	// rawLens[i] is the pre-compression payload length of page i
	// (compressed layout only).
	rawLens []int
}

// StoreTable writes tbl onto dev, compressing each page when compress is
// set. Only non-MVCC tables are supported at the storage tier.
func StoreTable(dev *Device, tbl *table.Table, compressPages bool) (*PageStore, error) {
	if dev == nil || tbl == nil {
		return nil, errors.New("storage: nil device or table")
	}
	if tbl.HasMVCC() {
		return nil, errors.New("storage: MVCC tables are a memory-tier feature")
	}
	ps := &PageStore{
		dev:        dev,
		schema:     tbl.Schema(),
		rowBytes:   tbl.Schema().RowBytes(),
		rows:       tbl.NumRows(),
		compressed: compressPages,
	}
	ps.rowsPer = dev.Config().PageBytes / ps.rowBytes
	if ps.rowsPer < 1 {
		return nil, fmt.Errorf("storage: row of %d bytes exceeds page of %d", ps.rowBytes, dev.Config().PageBytes)
	}
	for start := 0; start < ps.rows; start += ps.rowsPer {
		end := start + ps.rowsPer
		if end > ps.rows {
			end = ps.rows
		}
		payload := make([]byte, 0, (end-start)*ps.rowBytes)
		for r := start; r < end; r++ {
			payload = append(payload, tbl.RowPayload(r)...)
		}
		rawLen := len(payload)
		if compressPages {
			enc := compress.EncodeLZ77(payload)
			if len(enc)+4 < rawLen {
				// Store with a 4-byte compressed-length header.
				var hdr [4]byte
				binary.LittleEndian.PutUint32(hdr[:], uint32(len(enc)))
				payload = append(hdr[:], enc...)
			} else {
				// Incompressible page: store raw, marked by length 0.
				var hdr [4]byte
				payload = append(hdr[:], payload...)
			}
			if len(payload) > dev.Config().PageBytes {
				return nil, fmt.Errorf("storage: compressed page grew past PageBytes")
			}
		}
		pn, err := dev.WritePage(payload)
		if err != nil {
			return nil, err
		}
		ps.pageNos = append(ps.pageNos, pn)
		ps.rawLens = append(ps.rawLens, rawLen)
	}
	return ps, nil
}

// Schema returns the stored schema.
func (ps *PageStore) Schema() *geometry.Schema { return ps.schema }

// NumRows returns the stored row count.
func (ps *PageStore) NumRows() int { return ps.rows }

// NumPages returns how many pages the table occupies.
func (ps *PageStore) NumPages() int { return len(ps.pageNos) }

// ScanResult is the outcome of a storage-tier column-group scan.
type ScanResult struct {
	// Packed holds the qualifying rows' selected columns back to back, in
	// geometry pack order — the same wire format the memory-tier fabric
	// ships.
	Packed []byte
	// Rows is the number of packed rows.
	Rows int
	// Cycles is the modeled end-to-end time: flash critical path, then the
	// larger of controller work and host-link transfer (they pipeline),
	// plus any host-side software work.
	Cycles uint64
	// BytesToHost is the interconnect traffic the scan caused.
	BytesToHost uint64
}

// pagePayload returns the decompressed payload of table page i along with
// the stored (possibly compressed) length.
func (ps *PageStore) pagePayload(i int) (payload []byte, storedLen int, err error) {
	raw, err := ps.dev.Page(ps.pageNos[i])
	if err != nil {
		return nil, 0, err
	}
	if !ps.compressed {
		return raw[:ps.rawLens[i]], ps.rawLens[i], nil
	}
	encLen := int(binary.LittleEndian.Uint32(raw[:4]))
	if encLen == 0 {
		return raw[4 : 4+ps.rawLens[i]], ps.rawLens[i] + 4, nil
	}
	payload, err = compress.DecodeLZ77(raw[4 : 4+encLen])
	if err != nil {
		return nil, 0, err
	}
	if len(payload) != ps.rawLens[i] {
		return nil, 0, fmt.Errorf("storage: page %d decompressed to %d bytes, want %d", i, len(payload), ps.rawLens[i])
	}
	return payload, encLen + 4, nil
}

// ScanNearStorage runs the Relational Storage path: the controller reads
// the pages, decompresses them in place, evaluates the predicates, and
// ships only the selected columns of qualifying rows.
func (ps *PageStore) ScanNearStorage(geom *geometry.Geometry, preds expr.Conjunction) (*ScanResult, error) {
	if err := ps.checkArgs(geom, preds); err != nil {
		return nil, err
	}
	dev := ps.dev
	flashCycles, err := dev.readPages(ps.pageNos)
	if err != nil {
		return nil, err
	}

	var packed []byte
	rows := 0
	var controlBytes int
	for i := range ps.pageNos {
		payload, _, err := ps.pagePayload(i)
		if err != nil {
			return nil, err
		}
		// The controller touches every decompressed byte once.
		controlBytes += len(payload)
		for off := 0; off+ps.rowBytes <= len(payload); off += ps.rowBytes {
			row := payload[off : off+ps.rowBytes]
			if !rowQualifies(ps.schema, row, preds) {
				continue
			}
			for _, c := range geom.Columns() {
				o := ps.schema.Offset(c)
				packed = append(packed, row[o:o+ps.schema.Column(c).Width]...)
			}
			rows++
		}
	}
	controlCycles := dev.control(controlBytes)
	transferCycles := dev.transfer(len(packed))

	// Controller processing pipelines with the host transfer.
	pipe := controlCycles
	if transferCycles > pipe {
		pipe = transferCycles
	}
	return &ScanResult{
		Packed:      packed,
		Rows:        rows,
		Cycles:      flashCycles + pipe,
		BytesToHost: uint64(len(packed)),
	}, nil
}

// ScanHost runs the baseline: every (possibly compressed) page crosses the
// interconnect and the host CPU decompresses, filters, and projects.
func (ps *PageStore) ScanHost(geom *geometry.Geometry, preds expr.Conjunction) (*ScanResult, error) {
	if err := ps.checkArgs(geom, preds); err != nil {
		return nil, err
	}
	dev := ps.dev
	flashCycles, err := dev.readPages(ps.pageNos)
	if err != nil {
		return nil, err
	}

	var packed []byte
	rows := 0
	var wireBytes, hostBytes int
	for i := range ps.pageNos {
		payload, storedLen, err := ps.pagePayload(i)
		if err != nil {
			return nil, err
		}
		wireBytes += storedLen
		// The host touches every byte it received, plus every decompressed
		// byte when pages are compressed.
		hostBytes += storedLen
		if ps.compressed {
			hostBytes += len(payload)
		}
		for off := 0; off+ps.rowBytes <= len(payload); off += ps.rowBytes {
			row := payload[off : off+ps.rowBytes]
			if !rowQualifies(ps.schema, row, preds) {
				continue
			}
			for _, c := range geom.Columns() {
				o := ps.schema.Offset(c)
				packed = append(packed, row[o:o+ps.schema.Column(c).Width]...)
			}
			rows++
		}
	}
	transferCycles := dev.transfer(wireBytes)
	hostCycles := uint64(float64(hostBytes) * dev.Config().HostCyclesPerByte)
	return &ScanResult{
		Packed:      packed,
		Rows:        rows,
		Cycles:      flashCycles + transferCycles + hostCycles,
		BytesToHost: uint64(wireBytes),
	}, nil
}

// AggregateResult is the outcome of an in-storage aggregation.
type AggregateResult struct {
	Values        []table.Value
	RowsQualified int
	// Cycles is flash critical path plus controller processing; only the
	// aggregate values cross the interconnect.
	Cycles      uint64
	BytesToHost uint64
}

// AggregateNearStorage pushes plain-column aggregates into the controller
// (§IV-D: "it is possible to push other operators like selection and
// aggregation by utilizing the processing capabilities of in-storage custom
// logic"). Pages never leave the device; the host receives the results.
func (ps *PageStore) AggregateNearStorage(geom *geometry.Geometry, preds expr.Conjunction, specs []expr.AggSpec) (*AggregateResult, error) {
	if err := ps.checkArgs(geom, preds); err != nil {
		return nil, err
	}
	if len(specs) == 0 {
		return nil, errors.New("storage: no aggregate specs")
	}
	accs := make([]*expr.Accumulator, len(specs))
	for i, sp := range specs {
		if sp.Kind != expr.Count && !geom.Contains(sp.Col) {
			return nil, fmt.Errorf("storage: aggregate over column %q outside the configured geometry",
				ps.schema.Column(sp.Col).Name)
		}
		a, err := expr.NewAccumulator(sp, ps.schema)
		if err != nil {
			return nil, err
		}
		accs[i] = a
	}

	dev := ps.dev
	flashCycles, err := dev.readPages(ps.pageNos)
	if err != nil {
		return nil, err
	}
	qualified := 0
	var controlBytes int
	for i := range ps.pageNos {
		payload, _, err := ps.pagePayload(i)
		if err != nil {
			return nil, err
		}
		controlBytes += len(payload)
		for off := 0; off+ps.rowBytes <= len(payload); off += ps.rowBytes {
			row := payload[off : off+ps.rowBytes]
			if !rowQualifies(ps.schema, row, preds) {
				continue
			}
			qualified++
			for j, sp := range specs {
				if sp.Kind == expr.Count {
					accs[j].AddCount(1)
					continue
				}
				accs[j].Add(table.DecodeColumn(ps.schema.Column(sp.Col), row[ps.schema.Offset(sp.Col):]))
			}
		}
	}
	controlCycles := dev.control(controlBytes)
	transferCycles := dev.transfer(len(specs) * 8)

	out := &AggregateResult{
		Values:        make([]table.Value, len(specs)),
		RowsQualified: qualified,
		Cycles:        flashCycles + controlCycles + transferCycles,
		BytesToHost:   uint64(len(specs) * 8),
	}
	for i, a := range accs {
		out.Values[i] = a.Result()
	}
	return out, nil
}

func (ps *PageStore) checkArgs(geom *geometry.Geometry, preds expr.Conjunction) error {
	if geom == nil {
		return errors.New("storage: nil geometry")
	}
	if geom.Schema() != ps.schema {
		return errors.New("storage: geometry schema does not match stored table")
	}
	return preds.Validate(ps.schema)
}

func rowQualifies(sch *geometry.Schema, row []byte, preds expr.Conjunction) bool {
	for _, p := range preds {
		v := table.DecodeColumn(sch.Column(p.Col), row[sch.Offset(p.Col):])
		if !p.Eval(v) {
			return false
		}
	}
	return true
}
