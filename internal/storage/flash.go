// Package storage implements Relational Storage (RS), the disk-based
// instance of Relational Fabric (ICDE 2023, §IV-D): a simulated flash device
// whose controller can project, filter, and decompress pages before they
// cross the host interconnect, so only the relevant columns of the relevant
// rows are ever transferred. The host-side baseline reads whole pages and
// transforms on the CPU — the contrast that reproduces the data-movement
// argument at the storage tier.
package storage

import (
	"errors"
	"fmt"
)

// DeviceConfig sizes the simulated SSD and its timing model. Latencies are
// in host CPU cycles, matching the convention of the memory-tier model.
type DeviceConfig struct {
	Channels    int // independent flash channels
	DiesPerChan int // dies per channel (pipelined within a channel)
	PageBytes   int // flash page size

	// PageReadCycles is the flash array read time of one page.
	PageReadCycles uint64
	// TransferCyclesPerByte is the host-interconnect cost per byte shipped
	// to the CPU.
	TransferCyclesPerByte float64
	// ControllerCyclesPerByte is the in-storage processing rate of the RS
	// engine (projection, selection, decompression).
	ControllerCyclesPerByte float64
	// HostCyclesPerByte is the host CPU's cost to transform or decompress a
	// byte in software (the baseline's burden).
	HostCyclesPerByte float64
}

// DefaultDeviceConfig returns a small NVMe-class device: 8 channels, 4 KiB
// pages, controller processing faster than the host's software path.
func DefaultDeviceConfig() DeviceConfig {
	return DeviceConfig{
		Channels:                8,
		DiesPerChan:             2,
		PageBytes:               4096,
		PageReadCycles:          30_000, // ~20 µs at 1.5 GHz
		TransferCyclesPerByte:   0.5,    // ~3 GB/s link
		ControllerCyclesPerByte: 0.25,
		HostCyclesPerByte:       1.0,
	}
}

// Validate reports configuration errors.
func (c DeviceConfig) Validate() error {
	if c.Channels <= 0 || c.DiesPerChan <= 0 {
		return fmt.Errorf("storage: need positive channels/dies, got %d/%d", c.Channels, c.DiesPerChan)
	}
	if c.PageBytes <= 0 || c.PageBytes&(c.PageBytes-1) != 0 {
		return fmt.Errorf("storage: PageBytes must be a positive power of two, got %d", c.PageBytes)
	}
	if c.PageReadCycles == 0 || c.TransferCyclesPerByte <= 0 || c.ControllerCyclesPerByte <= 0 || c.HostCyclesPerByte <= 0 {
		return fmt.Errorf("storage: non-positive timing in %+v", c)
	}
	return nil
}

// Device is the simulated SSD: a flat page space striped across channels.
type Device struct {
	cfg   DeviceConfig
	pages [][]byte
	stats DeviceStats
}

// DeviceStats accumulates device activity.
type DeviceStats struct {
	PagesRead      uint64
	BytesFromFlash uint64
	BytesToHost    uint64
	FlashCycles    uint64 // critical-path flash array time
	TransferCycles uint64
	ControlCycles  uint64 // in-controller processing
}

// NewDevice creates an empty device.
func NewDevice(cfg DeviceConfig) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Device{cfg: cfg}, nil
}

// Config returns the device configuration.
func (d *Device) Config() DeviceConfig { return d.cfg }

// Stats returns a copy of the accumulated statistics.
func (d *Device) Stats() DeviceStats { return d.stats }

// ResetStats zeroes the counters.
func (d *Device) ResetStats() { d.stats = DeviceStats{} }

// NumPages returns how many pages are written.
func (d *Device) NumPages() int { return len(d.pages) }

// WritePage appends a page (padded or truncated to PageBytes) and returns
// its page number. Writes model only capacity, not timing: the experiments
// are read-path studies.
func (d *Device) WritePage(data []byte) (int, error) {
	if len(data) > d.cfg.PageBytes {
		return 0, fmt.Errorf("storage: page of %d bytes exceeds PageBytes %d", len(data), d.cfg.PageBytes)
	}
	page := make([]byte, d.cfg.PageBytes)
	copy(page, data)
	d.pages = append(d.pages, page)
	return len(d.pages) - 1, nil
}

// readPages fetches the given pages from flash and returns the critical-path
// flash cycles: pages on distinct channels overlap fully; within a channel,
// dies pipeline, so a channel serving k pages costs ceil(k/dies) page times.
func (d *Device) readPages(pageNos []int) (uint64, error) {
	if len(pageNos) == 0 {
		return 0, nil
	}
	perChan := make([]int, d.cfg.Channels)
	for _, p := range pageNos {
		if p < 0 || p >= len(d.pages) {
			return 0, fmt.Errorf("storage: page %d out of range [0,%d)", p, len(d.pages))
		}
		perChan[p%d.cfg.Channels]++
	}
	busiest := 0
	for _, k := range perChan {
		if k > busiest {
			busiest = k
		}
	}
	rounds := (busiest + d.cfg.DiesPerChan - 1) / d.cfg.DiesPerChan
	cycles := uint64(rounds) * d.cfg.PageReadCycles
	d.stats.PagesRead += uint64(len(pageNos))
	d.stats.BytesFromFlash += uint64(len(pageNos) * d.cfg.PageBytes)
	d.stats.FlashCycles += cycles
	return cycles, nil
}

// transfer charges shipping n bytes over the host interconnect.
func (d *Device) transfer(n int) uint64 {
	c := uint64(float64(n) * d.cfg.TransferCyclesPerByte)
	d.stats.BytesToHost += uint64(n)
	d.stats.TransferCycles += c
	return c
}

// control charges in-controller processing of n bytes.
func (d *Device) control(n int) uint64 {
	c := uint64(float64(n) * d.cfg.ControllerCyclesPerByte)
	d.stats.ControlCycles += c
	return c
}

// Page returns a read-only view of page p (test helper).
func (d *Device) Page(p int) ([]byte, error) {
	if p < 0 || p >= len(d.pages) {
		return nil, errors.New("storage: page out of range")
	}
	return d.pages[p], nil
}
