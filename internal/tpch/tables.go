package tpch

import (
	"fmt"
	"math/rand"

	"rfabric/internal/geometry"
	"rfabric/internal/table"
)

// Multi-table TPC-H: orders, customer, and part generators whose keys
// correlate with the lineitem generator, plus the Q3/Q5/Q10-class join
// query texts. Lineitem row i carries l_orderkey = i/4+1 and a part key
// uniform in [1, 200000], so a lineitem table of n rows joins every row
// against an orders table of OrdersFor(n) rows and a part table whose keys
// cover a prefix of the part-key domain.

// Orders column indices, in schema order.
const (
	OOrderKey = iota
	OCustKey
	OOrderStatus
	OTotalPrice
	OOrderDate
	OOrderPriority
	OShipPriority
	ordersColumns
)

// Customer column indices, in schema order.
const (
	CCustKey = iota
	CName
	CNationKey
	CAcctBal
	CMktSegment
	customerColumns
)

// Part column indices, in schema order.
const (
	PPartKey = iota
	PName
	PBrand
	PSize
	PRetailPrice
	partColumns
)

// PartKeyDomain is the l_partkey value range of the lineitem generator.
const PartKeyDomain = 200000

// Order dates span 1991-09-01 through 1998-10-27 so that Q3's 1995-03-15
// cutoff splits the population roughly in half.
const (
	orderDateLo = 7913  // 1991-09-01
	orderDateHi = 10526 // 1998-10-27
)

// Q3CutoffDate is 1995-03-15, Q3's order/ship date pivot.
const Q3CutoffDate = 9204

// OrdersSchema returns the fixed-width orders layout.
func OrdersSchema() *geometry.Schema {
	return geometry.MustSchema(
		geometry.Column{Name: "o_orderkey", Type: geometry.Int64, Width: 8},
		geometry.Column{Name: "o_custkey", Type: geometry.Int64, Width: 8},
		geometry.Column{Name: "o_orderstatus", Type: geometry.Char, Width: 1},
		geometry.Column{Name: "o_totalprice", Type: geometry.Float64, Width: 8},
		geometry.Column{Name: "o_orderdate", Type: geometry.Date, Width: 4},
		geometry.Column{Name: "o_orderpriority", Type: geometry.Char, Width: 15},
		geometry.Column{Name: "o_shippriority", Type: geometry.Int32, Width: 4},
	)
}

// CustomerSchema returns the fixed-width customer layout.
func CustomerSchema() *geometry.Schema {
	return geometry.MustSchema(
		geometry.Column{Name: "c_custkey", Type: geometry.Int64, Width: 8},
		geometry.Column{Name: "c_name", Type: geometry.Char, Width: 18},
		geometry.Column{Name: "c_nationkey", Type: geometry.Int32, Width: 4},
		geometry.Column{Name: "c_acctbal", Type: geometry.Float64, Width: 8},
		geometry.Column{Name: "c_mktsegment", Type: geometry.Char, Width: 10},
	)
}

// PartSchema returns the fixed-width part layout.
func PartSchema() *geometry.Schema {
	return geometry.MustSchema(
		geometry.Column{Name: "p_partkey", Type: geometry.Int64, Width: 8},
		geometry.Column{Name: "p_name", Type: geometry.Char, Width: 22},
		geometry.Column{Name: "p_brand", Type: geometry.Char, Width: 10},
		geometry.Column{Name: "p_size", Type: geometry.Int32, Width: 4},
		geometry.Column{Name: "p_retailprice", Type: geometry.Float64, Width: 8},
	)
}

// OrdersFor returns the orders row count that covers every l_orderkey a
// lineitem table of lineitemRows rows generates (keys run 1..⌈n/4⌉).
func OrdersFor(lineitemRows int) int {
	n := (lineitemRows + 3) / 4
	if n < 1 {
		n = 1
	}
	return n
}

// CustomersFor returns the customer row count for an orders table of
// orderRows rows: one customer per ten orders, at least one.
func CustomersFor(orderRows int) int {
	n := orderRows / 10
	if n < 1 {
		n = 1
	}
	return n
}

var (
	orderPriorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECI", "5-LOW"}
	mktSegments     = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	partNouns       = []string{"almond", "antique", "aquamarine", "azure", "beige", "bisque", "black", "blanched", "blue", "blush"}
)

// GenerateOrders populates tbl with n deterministic orders rows from seed.
// o_orderkey runs 1..n (matching the lineitem foreign keys); o_custkey is
// uniform in [1, CustomersFor(n)].
func GenerateOrders(tbl *table.Table, n int, seed int64) error {
	sch := tbl.Schema()
	if sch.NumColumns() != ordersColumns {
		return fmt.Errorf("tpch: orders table has %d columns, want %d", sch.NumColumns(), ordersColumns)
	}
	rng := rand.New(rand.NewSource(seed))
	nCust := CustomersFor(n)
	buf := make([]byte, sch.RowBytes())
	vals := make([]table.Value, ordersColumns)
	for i := 0; i < n; i++ {
		date := int32(orderDateLo + rng.Intn(orderDateHi-orderDateLo+1))
		status := "O"
		if date <= Q3CutoffDate {
			status = "F"
		}
		vals[OOrderKey] = table.I64(int64(i + 1))
		vals[OCustKey] = table.I64(int64(rng.Intn(nCust) + 1))
		vals[OOrderStatus] = table.Str(status)
		vals[OTotalPrice] = table.F64(1000 + float64(rng.Intn(450000))/100)
		vals[OOrderDate] = table.DateV(date)
		vals[OOrderPriority] = table.Str(orderPriorities[rng.Intn(len(orderPriorities))])
		vals[OShipPriority] = table.I32(0)

		row, err := encodeInto(buf, sch, vals)
		if err != nil {
			return err
		}
		if _, err := tbl.AppendRaw(1, row); err != nil {
			return err
		}
	}
	return nil
}

// GenerateCustomer populates tbl with n deterministic customer rows from
// seed. c_custkey runs 1..n (matching GenerateOrders' foreign keys).
func GenerateCustomer(tbl *table.Table, n int, seed int64) error {
	sch := tbl.Schema()
	if sch.NumColumns() != customerColumns {
		return fmt.Errorf("tpch: customer table has %d columns, want %d", sch.NumColumns(), customerColumns)
	}
	rng := rand.New(rand.NewSource(seed))
	buf := make([]byte, sch.RowBytes())
	vals := make([]table.Value, customerColumns)
	for i := 0; i < n; i++ {
		vals[CCustKey] = table.I64(int64(i + 1))
		vals[CName] = table.Str(fmt.Sprintf("Customer#%09d", i+1))
		vals[CNationKey] = table.I32(int32(rng.Intn(25)))
		vals[CAcctBal] = table.F64(float64(rng.Intn(1100000))/100 - 1000)
		vals[CMktSegment] = table.Str(mktSegments[rng.Intn(len(mktSegments))])

		row, err := encodeInto(buf, sch, vals)
		if err != nil {
			return err
		}
		if _, err := tbl.AppendRaw(1, row); err != nil {
			return err
		}
	}
	return nil
}

// GeneratePart populates tbl with n deterministic part rows from seed.
// p_partkey runs 1..n; with n = PartKeyDomain every l_partkey resolves.
func GeneratePart(tbl *table.Table, n int, seed int64) error {
	sch := tbl.Schema()
	if sch.NumColumns() != partColumns {
		return fmt.Errorf("tpch: part table has %d columns, want %d", sch.NumColumns(), partColumns)
	}
	rng := rand.New(rand.NewSource(seed))
	buf := make([]byte, sch.RowBytes())
	vals := make([]table.Value, partColumns)
	for i := 0; i < n; i++ {
		vals[PPartKey] = table.I64(int64(i + 1))
		vals[PName] = table.Str(partNouns[rng.Intn(len(partNouns))] + " " + partNouns[rng.Intn(len(partNouns))])
		vals[PBrand] = table.Str(fmt.Sprintf("Brand#%d%d", rng.Intn(5)+1, rng.Intn(5)+1))
		vals[PSize] = table.I32(int32(rng.Intn(50) + 1))
		vals[PRetailPrice] = table.F64(900 + float64((i+1)%2000)*10)

		row, err := encodeInto(buf, sch, vals)
		if err != nil {
			return err
		}
		if _, err := tbl.AppendRaw(1, row); err != nil {
			return err
		}
	}
	return nil
}

// NewOrders creates and populates an orders table of n rows.
func NewOrders(n int, seed int64, opts ...table.Option) (*table.Table, error) {
	opts = append(opts, table.WithCapacity(n))
	tbl, err := table.New("orders", OrdersSchema(), opts...)
	if err != nil {
		return nil, err
	}
	if err := GenerateOrders(tbl, n, seed); err != nil {
		return nil, err
	}
	return tbl, nil
}

// NewCustomer creates and populates a customer table of n rows.
func NewCustomer(n int, seed int64, opts ...table.Option) (*table.Table, error) {
	opts = append(opts, table.WithCapacity(n))
	tbl, err := table.New("customer", CustomerSchema(), opts...)
	if err != nil {
		return nil, err
	}
	if err := GenerateCustomer(tbl, n, seed); err != nil {
		return nil, err
	}
	return tbl, nil
}

// NewPart creates and populates a part table of n rows.
func NewPart(n int, seed int64, opts ...table.Option) (*table.Table, error) {
	opts = append(opts, table.WithCapacity(n))
	tbl, err := table.New("part", PartSchema(), opts...)
	if err != nil {
		return nil, err
	}
	if err := GeneratePart(tbl, n, seed); err != nil {
		return nil, err
	}
	return tbl, nil
}

// Q3SQL is the Q3-class shipping-priority query over lineitem ⋈ orders:
// revenue per order for orders placed before the cutoff whose items shipped
// after it. (The official Q3 adds the customer segment filter — Q10SQL
// exercises that three-table form.)
const Q3SQL = `SELECT l_orderkey, SUM(l_extendedprice * (1 - l_discount)), o_orderdate
FROM lineitem JOIN orders ON l_orderkey = o_orderkey
WHERE o_orderdate < DATE '1995-03-15' AND l_shipdate > DATE '1995-03-15'
GROUP BY l_orderkey, o_orderdate`

// Q10SQL is the Q10-class returned-item reporting query over
// lineitem ⋈ orders ⋈ customer: revenue lost to returned items per
// customer nation in a half-year window.
const Q10SQL = `SELECT c_nationkey, SUM(l_extendedprice * (1 - l_discount)), COUNT(*)
FROM lineitem JOIN orders ON l_orderkey = o_orderkey
JOIN customer ON o_custkey = c_custkey
WHERE l_returnflag = 'R'
  AND o_orderdate >= DATE '1993-10-01' AND o_orderdate < DATE '1994-04-01'
GROUP BY c_nationkey`

// Q5SQL is a Q5-class local-supplier-volume simplification over
// lineitem ⋈ part: revenue per part brand for a size band. (The official
// Q5 joins six tables through region/nation; this keeps its
// revenue-per-dimension-group shape on the tables the generator provides.)
const Q5SQL = `SELECT p_brand, SUM(l_extendedprice * (1 - l_discount)), COUNT(*)
FROM lineitem JOIN part ON l_partkey = p_partkey
WHERE p_size <= 15
GROUP BY p_brand`
