package tpch

import (
	"testing"

	"rfabric/internal/colstore"
	"rfabric/internal/engine"
	"rfabric/internal/geometry"
	"rfabric/internal/table"
)

func TestSchemaShape(t *testing.T) {
	sch := LineitemSchema()
	if sch.NumColumns() != lineitemColumns {
		t.Fatalf("columns = %d, want %d", sch.NumColumns(), lineitemColumns)
	}
	if sch.RowBytes() != 136 {
		t.Errorf("row bytes = %d, want 136", sch.RowBytes())
	}
	for name, idx := range map[string]int{
		"l_orderkey": LOrderKey, "l_quantity": LQuantity,
		"l_extendedprice": LExtendedPrice, "l_discount": LDiscount,
		"l_returnflag": LReturnFlag, "l_shipdate": LShipDate,
	} {
		got, ok := sch.Lookup(name)
		if !ok || got != idx {
			t.Errorf("Lookup(%q) = %d,%v want %d", name, got, ok, idx)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := NewLineitem(200, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewLineitem(200, 7)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 200; r++ {
		if string(a.RowPayload(r)) != string(b.RowPayload(r)) {
			t.Fatalf("row %d differs between same-seed generations", r)
		}
	}
	c, err := NewLineitem(200, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for r := 0; r < 200; r++ {
		if string(a.RowPayload(r)) == string(c.RowPayload(r)) {
			same++
		}
	}
	if same == 200 {
		t.Error("different seeds produced identical data")
	}
}

func TestGeneratedDistributions(t *testing.T) {
	tbl, err := NewLineitem(20_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	groups := map[string]int{}
	var discountOK, qtyOK int
	for r := 0; r < tbl.NumRows(); r++ {
		rf := tbl.MustGet(r, LReturnFlag).String()
		ls := tbl.MustGet(r, LLineStatus).String()
		groups[rf+"/"+ls]++
		d := tbl.MustGet(r, LDiscount).Float
		if d >= 0 && d <= 0.10 {
			discountOK++
		}
		q := tbl.MustGet(r, LQuantity).Float
		if q >= 1 && q <= 50 {
			qtyOK++
		}
		ship := tbl.MustGet(r, LShipDate).Int
		if ship < shipDateLo || ship > shipDateHi {
			t.Fatalf("row %d shipdate %d out of range", r, ship)
		}
		receipt := tbl.MustGet(r, LReceiptDate).Int
		if receipt <= ship {
			t.Fatalf("row %d receipt %d not after ship %d", r, receipt, ship)
		}
	}
	if discountOK != tbl.NumRows() || qtyOK != tbl.NumRows() {
		t.Errorf("discount/quantity out of TPC-H ranges")
	}
	// Exactly the four TPC-H groups, with N/F the smallest.
	for _, g := range []string{"A/F", "R/F", "N/O", "N/F"} {
		if groups[g] == 0 {
			t.Errorf("group %s missing (groups: %v)", g, groups)
		}
	}
	if len(groups) != 4 {
		t.Errorf("got %d groups %v, want the 4 TPC-H groups", len(groups), groups)
	}
	if groups["N/F"] >= groups["A/F"] {
		t.Errorf("N/F (%d) should be the small sliver (A/F=%d)", groups["N/F"], groups["A/F"])
	}
}

func TestQ6Selectivity(t *testing.T) {
	sys := engine.MustSystem(engine.DefaultSystemConfig())
	rows := 30_000
	sch := LineitemSchema()
	tbl := table.MustNew("lineitem", sch,
		table.WithCapacity(rows), table.WithBaseAddr(sys.Arena.Alloc(int64(rows*sch.RowBytes()))))
	if err := Generate(tbl, rows, 1); err != nil {
		t.Fatal(err)
	}
	res, err := (&engine.RowEngine{Tbl: tbl, Sys: sys}).Execute(Q6())
	if err != nil {
		t.Fatal(err)
	}
	sel := float64(res.RowsPassed) / float64(rows)
	// TPC-H Q6 hits ~1.9 % of lineitem.
	if sel < 0.008 || sel > 0.045 {
		t.Errorf("Q6 selectivity %.4f outside the expected band around 0.019", sel)
	}
	if res.Aggs[0].Float <= 0 {
		t.Errorf("Q6 revenue = %s", res.Aggs[0])
	}
}

func TestQ1AllEnginesAgree(t *testing.T) {
	sys := engine.MustSystem(engine.DefaultSystemConfig())
	rows := 10_000
	sch := LineitemSchema()
	tbl := table.MustNew("lineitem", sch,
		table.WithCapacity(rows), table.WithBaseAddr(sys.Arena.Alloc(int64(rows*sch.RowBytes()))))
	if err := Generate(tbl, rows, 1); err != nil {
		t.Fatal(err)
	}
	store, err := colstore.FromTable(tbl, sys.Arena)
	if err != nil {
		t.Fatal(err)
	}
	q := Q1()
	ref, err := (&engine.RowEngine{Tbl: tbl, Sys: sys}).Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Groups) != 4 {
		t.Fatalf("Q1 produced %d groups, want 4", len(ref.Groups))
	}
	// The shipdate cutoff excludes some rows.
	if ref.RowsPassed == ref.RowsScanned {
		t.Error("Q1 predicate filtered nothing")
	}
	for _, e := range []engine.Executor{
		&engine.ColEngine{Store: store, Sys: sys},
		&engine.RMEngine{Tbl: tbl, Sys: sys},
		&engine.RMEngine{Tbl: tbl, Sys: sys, PushSelection: true},
	} {
		sys.ResetState()
		got, err := e.Execute(q)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if err := got.EquivalentTo(ref, 1e-9); err != nil {
			t.Errorf("%s disagrees on Q1: %v", e.Name(), err)
		}
	}
}

func TestTargetColumnSizing(t *testing.T) {
	q6 := Q6()
	// Q6 touches shipdate(4) + discount(8) + quantity(8) + extendedprice(8).
	if got := TargetColumnBytes(q6); got != 28 {
		t.Errorf("Q6 target bytes = %d, want 28", got)
	}
	rows := RowsForTargetBytes(q6, 28_000)
	if rows != 1000 {
		t.Errorf("RowsForTargetBytes = %d, want 1000", rows)
	}
	q1 := Q1()
	if got := TargetColumnBytes(q1); got != 4+1+1+8+8+8+8 {
		t.Errorf("Q1 target bytes = %d", got)
	}
}

func TestGenerateRejectsForeignSchema(t *testing.T) {
	other := geometry.MustSchema(geometry.Column{Name: "x", Type: geometry.Int64, Width: 8})
	tbl := table.MustNew("t", other)
	if err := Generate(tbl, 1, 1); err == nil {
		t.Error("foreign schema accepted")
	}
}

func TestMustSystemHelper(t *testing.T) {
	// engine.MustSystem with a broken config must panic (exercise the
	// fixture helper used above).
	defer func() {
		if recover() == nil {
			t.Error("MustSystem did not panic on invalid config")
		}
	}()
	bad := engine.DefaultSystemConfig()
	bad.DRAM.Banks = 3
	engine.MustSystem(bad)
}
