// Package tpch provides the workload behind the paper's practical-query
// experiments (ICDE 2023, §V, Figure 7): a deterministic TPC-H-style
// lineitem generator and the Q1 and Q6 query definitions for the three
// engines. The generator reproduces the value distributions that drive the
// figures — Q6's ≈1.9 % selectivity and Q1's ≈98 % pass rate over four main
// (returnflag, linestatus) groups — without requiring the official dbgen
// tool or its data files.
package tpch

import (
	"fmt"
	"math/rand"

	"rfabric/internal/engine"
	"rfabric/internal/expr"
	"rfabric/internal/geometry"
	"rfabric/internal/table"
)

// Lineitem column indices, in schema order.
const (
	LOrderKey = iota
	LPartKey
	LSuppKey
	LLineNumber
	LQuantity
	LExtendedPrice
	LDiscount
	LTax
	LReturnFlag
	LLineStatus
	LShipDate
	LCommitDate
	LReceiptDate
	LShipInstruct
	LShipMode
	LComment
	lineitemColumns
)

// Day numbers (days since 1970-01-01) bounding the generated ship dates:
// 1992-01-02 through 1998-12-01, the l_shipdate range of the TPC-H
// population rules. Q1's cutoff (1998-09-02) therefore excludes the final
// ~90 days of shipments, passing ≈96-98 % of rows.
const (
	shipDateLo = 8036  // 1992-01-02
	shipDateHi = 10561 // 1998-12-01
)

// Date1994 and Date1995 bound Q6's ship-date year.
const (
	Date1994 = 8766 // 1994-01-01
	Date1995 = 9131 // 1995-01-01
)

// Q1CutoffDate is 1998-12-01 minus 90 days (1998-09-02).
const Q1CutoffDate = 10471

// LineitemSchema returns the fixed-width lineitem layout (136-byte rows).
func LineitemSchema() *geometry.Schema {
	return geometry.MustSchema(
		geometry.Column{Name: "l_orderkey", Type: geometry.Int64, Width: 8},
		geometry.Column{Name: "l_partkey", Type: geometry.Int64, Width: 8},
		geometry.Column{Name: "l_suppkey", Type: geometry.Int64, Width: 8},
		geometry.Column{Name: "l_linenumber", Type: geometry.Int32, Width: 4},
		geometry.Column{Name: "l_quantity", Type: geometry.Float64, Width: 8},
		geometry.Column{Name: "l_extendedprice", Type: geometry.Float64, Width: 8},
		geometry.Column{Name: "l_discount", Type: geometry.Float64, Width: 8},
		geometry.Column{Name: "l_tax", Type: geometry.Float64, Width: 8},
		geometry.Column{Name: "l_returnflag", Type: geometry.Char, Width: 1},
		geometry.Column{Name: "l_linestatus", Type: geometry.Char, Width: 1},
		geometry.Column{Name: "l_shipdate", Type: geometry.Date, Width: 4},
		geometry.Column{Name: "l_commitdate", Type: geometry.Date, Width: 4},
		geometry.Column{Name: "l_receiptdate", Type: geometry.Date, Width: 4},
		geometry.Column{Name: "l_shipinstruct", Type: geometry.Char, Width: 25},
		geometry.Column{Name: "l_shipmode", Type: geometry.Char, Width: 10},
		geometry.Column{Name: "l_comment", Type: geometry.Char, Width: 27},
	)
}

var (
	shipInstructs = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	shipModes     = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	commentWords  = []string{"carefully", "quickly", "furiously", "slyly", "blithely", "deposits", "requests", "packages", "accounts", "theodolites"}
)

// Generate populates tbl with n deterministic lineitem rows from seed.
// The table must use LineitemSchema (structurally: same column layout).
func Generate(tbl *table.Table, n int, seed int64) error {
	sch := tbl.Schema()
	if sch.NumColumns() != lineitemColumns {
		return fmt.Errorf("tpch: table has %d columns, want %d", sch.NumColumns(), lineitemColumns)
	}
	rng := rand.New(rand.NewSource(seed))
	buf := make([]byte, sch.RowBytes())
	vals := make([]table.Value, lineitemColumns)
	for i := 0; i < n; i++ {
		orderKey := int64(i/4 + 1)
		lineNum := int32(i%4 + 1)
		quantity := float64(rng.Intn(50) + 1)
		partKey := int64(rng.Intn(200000) + 1)
		partPrice := 900.0 + float64(partKey%2000)*10 // 900..20890
		extended := quantity * partPrice
		discount := float64(rng.Intn(11)) / 100.0 // 0.00..0.10
		tax := float64(rng.Intn(9)) / 100.0       // 0.00..0.08
		ship := int32(shipDateLo + rng.Intn(shipDateHi-shipDateLo+1))
		commit := ship + int32(rng.Intn(60)) - 30
		receipt := ship + int32(rng.Intn(30)) + 1

		// Return flag and line status follow the TPC-H population rule with
		// its 1995-06-17 currentdate (day 9298): R or A when the receipt
		// date is past, N otherwise; F when the ship date is past, O
		// otherwise. Because receipt follows ship by at most 30 days this
		// yields exactly the four groups Q1 reports — A/F, R/F, N/O, and
		// the small N/F sliver.
		const currentDate = 9298
		var rf, ls string
		if receipt <= currentDate {
			if rng.Intn(2) == 0 {
				rf = "R"
			} else {
				rf = "A"
			}
		} else {
			rf = "N"
		}
		if ship <= currentDate {
			ls = "F"
		} else {
			ls = "O"
		}

		vals[LOrderKey] = table.I64(orderKey)
		vals[LPartKey] = table.I64(partKey)
		vals[LSuppKey] = table.I64(partKey%10000 + 1)
		vals[LLineNumber] = table.I32(lineNum)
		vals[LQuantity] = table.F64(quantity)
		vals[LExtendedPrice] = table.F64(extended)
		vals[LDiscount] = table.F64(discount)
		vals[LTax] = table.F64(tax)
		vals[LReturnFlag] = table.Str(rf)
		vals[LLineStatus] = table.Str(ls)
		vals[LShipDate] = table.DateV(ship)
		vals[LCommitDate] = table.DateV(commit)
		vals[LReceiptDate] = table.DateV(receipt)
		vals[LShipInstruct] = table.Str(shipInstructs[rng.Intn(len(shipInstructs))])
		vals[LShipMode] = table.Str(shipModes[rng.Intn(len(shipModes))])
		vals[LComment] = table.Str(commentWords[rng.Intn(len(commentWords))] + " " + commentWords[rng.Intn(len(commentWords))])

		row, err := encodeInto(buf, sch, vals)
		if err != nil {
			return err
		}
		if _, err := tbl.AppendRaw(1, row); err != nil {
			return err
		}
	}
	return nil
}

func encodeInto(buf []byte, sch *geometry.Schema, vals []table.Value) ([]byte, error) {
	row, err := table.EncodeRow(sch, vals...)
	if err != nil {
		return nil, err
	}
	copy(buf, row)
	return buf, nil
}

// NewLineitem creates and populates a lineitem table of n rows.
func NewLineitem(n int, seed int64, opts ...table.Option) (*table.Table, error) {
	opts = append(opts, table.WithCapacity(n))
	tbl, err := table.New("lineitem", LineitemSchema(), opts...)
	if err != nil {
		return nil, err
	}
	if err := Generate(tbl, n, seed); err != nil {
		return nil, err
	}
	return tbl, nil
}

// Q1 returns TPC-H query 1, the pricing summary report:
//
//	SELECT l_returnflag, l_linestatus,
//	       SUM(l_quantity), SUM(l_extendedprice),
//	       SUM(l_extendedprice*(1-l_discount)),
//	       SUM(l_extendedprice*(1-l_discount)*(1+l_tax)),
//	       AVG(l_quantity), AVG(l_extendedprice), AVG(l_discount), COUNT(*)
//	FROM lineitem WHERE l_shipdate <= DATE '1998-12-01' - 90 days
//	GROUP BY l_returnflag, l_linestatus
//
// Its per-row arithmetic makes it CPU-bound — the layout-insensitive case
// of Figure 7a.
func Q1() engine.Query {
	discPrice := expr.Binary{
		Op: expr.Mul,
		L:  expr.ColRef{Col: LExtendedPrice},
		R:  expr.Binary{Op: expr.Sub, L: expr.Const{V: 1}, R: expr.ColRef{Col: LDiscount}},
	}
	charge := expr.Binary{
		Op: expr.Mul,
		L:  discPrice,
		R:  expr.Binary{Op: expr.Add, L: expr.Const{V: 1}, R: expr.ColRef{Col: LTax}},
	}
	return engine.Query{
		Selection: expr.Conjunction{
			{Col: LShipDate, Op: expr.Le, Operand: table.DateV(Q1CutoffDate)},
		},
		GroupBy: []int{LReturnFlag, LLineStatus},
		Aggregates: []engine.AggTerm{
			{Kind: expr.Sum, Arg: expr.ColRef{Col: LQuantity}},
			{Kind: expr.Sum, Arg: expr.ColRef{Col: LExtendedPrice}},
			{Kind: expr.Sum, Arg: discPrice},
			{Kind: expr.Sum, Arg: charge},
			{Kind: expr.Avg, Arg: expr.ColRef{Col: LQuantity}},
			{Kind: expr.Avg, Arg: expr.ColRef{Col: LExtendedPrice}},
			{Kind: expr.Avg, Arg: expr.ColRef{Col: LDiscount}},
			{Kind: expr.Count},
		},
	}
}

// Q6 returns TPC-H query 6, the forecasting revenue change query:
//
//	SELECT SUM(l_extendedprice * l_discount)
//	FROM lineitem
//	WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01'
//	  AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24
//
// Its ≈1.9 % selectivity and trivial arithmetic make it data-movement
// bound — the case where Relational Memory shines (Figure 7b).
func Q6() engine.Query {
	return engine.Query{
		Selection: expr.Conjunction{
			{Col: LShipDate, Op: expr.Ge, Operand: table.DateV(Date1994)},
			{Col: LShipDate, Op: expr.Lt, Operand: table.DateV(Date1995)},
			{Col: LDiscount, Op: expr.Ge, Operand: table.F64(0.049)},
			{Col: LDiscount, Op: expr.Le, Operand: table.F64(0.071)},
			{Col: LQuantity, Op: expr.Lt, Operand: table.F64(24)},
		},
		Aggregates: []engine.AggTerm{
			{Kind: expr.Sum, Arg: expr.Binary{Op: expr.Mul, L: expr.ColRef{Col: LExtendedPrice}, R: expr.ColRef{Col: LDiscount}}},
		},
	}
}

// TargetColumnBytes returns the bytes per row the query's needed columns
// occupy — the paper's x-axis unit in Figure 7 ("target column size").
func TargetColumnBytes(q engine.Query) int {
	sch := LineitemSchema()
	total := 0
	for _, c := range q.NeededColumns() {
		total += sch.Column(c).Width
	}
	return total
}

// RowsForTargetBytes returns the row count that makes the query's target
// columns occupy targetBytes.
func RowsForTargetBytes(q engine.Query, targetBytes int) int {
	per := TargetColumnBytes(q)
	if per == 0 {
		return 0
	}
	return targetBytes / per
}
