package bench

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// fakeResult mimics an experiment result shape: nested structs, a slice of
// points, per-engine maps, plus fields that must NOT become gated metrics.
type fakeResult struct {
	Rows   int
	Label  string // string leaf: dropped
	Points []fakePoint
}

type fakePoint struct {
	Projectivity int
	Cycles       map[string]uint64
	WallNanos    int64 // wall-clock: skipped by flatten
	Speedup      float64
}

func fake(rmCycles uint64) fakeResult {
	return fakeResult{
		Rows:  8000,
		Label: "demo",
		Points: []fakePoint{
			{Projectivity: 1, Cycles: map[string]uint64{"ROW": 5000, "RM": rmCycles}, WallNanos: 123456, Speedup: 1.0},
			{Projectivity: 2, Cycles: map[string]uint64{"ROW": 9000, "RM": 2 * rmCycles}, WallNanos: 654321, Speedup: 1.5},
		},
	}
}

func record(t *testing.T, rmCycles uint64) *Record {
	t.Helper()
	r := NewRecord("test", 8000, 1)
	if err := r.AddResult("fig5", fake(rmCycles)); err != nil {
		t.Fatalf("AddResult: %v", err)
	}
	return r
}

func TestFlattenPathsAndSkips(t *testing.T) {
	r := record(t, 1000)
	want := map[string]float64{
		"fig5.rows":                  8000,
		"fig5.points.0.projectivity": 1,
		"fig5.points.0.cycles.row":   5000,
		"fig5.points.0.cycles.rm":    1000,
		"fig5.points.0.speedup":      1.0,
		"fig5.points.1.projectivity": 2,
		"fig5.points.1.cycles.row":   9000,
		"fig5.points.1.cycles.rm":    2000,
		"fig5.points.1.speedup":      1.5,
	}
	if len(r.Metrics) != len(want) {
		t.Errorf("got %d metrics, want %d: %v", len(r.Metrics), len(want), r.Metrics)
	}
	for k, v := range want {
		if got, ok := r.Metrics[k]; !ok || got != v {
			t.Errorf("metric %q = %v (present %v), want %v", k, got, ok, v)
		}
	}
	for k := range r.Metrics {
		if strings.Contains(k, "wall") || strings.Contains(k, "label") {
			t.Errorf("non-metric leaf leaked into record: %q", k)
		}
	}
}

// TestCompareDetectsInjectedRegression is the acceptance check: a 10% cycle
// regression must trip a 5% gate and name the exact metrics that moved.
func TestCompareDetectsInjectedRegression(t *testing.T) {
	base := record(t, 1000)
	slower := record(t, 1100) // +10% on every RM cycle metric

	regs, err := Compare(base, slower, 5)
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if len(regs) != 2 {
		t.Fatalf("got %d regressions, want 2 (both RM points): %v", len(regs), regs)
	}
	for _, g := range regs {
		if !strings.Contains(g.Key, "cycles.rm") {
			t.Errorf("regression on unexpected metric %q", g.Key)
		}
		if g.Percent < 9.9 || g.Percent > 10.1 {
			t.Errorf("regression %q reports %.2f%%, want ~10%%", g.Key, g.Percent)
		}
	}

	// The same delta passes a looser gate.
	regs, err = Compare(base, slower, 15)
	if err != nil {
		t.Fatalf("Compare at 15%%: %v", err)
	}
	if len(regs) != 0 {
		t.Errorf("15%% gate flagged %v, want none", regs)
	}
}

func TestCompareIgnoresImprovementsAndNonCycles(t *testing.T) {
	base := record(t, 1000)
	faster := record(t, 900) // -10%: improvements never gate
	regs, err := Compare(base, faster, 5)
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if len(regs) != 0 {
		t.Errorf("improvement flagged as regression: %v", regs)
	}

	// A non-cycle metric blowing up is not gated.
	moved := record(t, 1000)
	moved.Metrics["fig5.points.0.speedup"] = 99
	if regs, _ = Compare(base, moved, 5); len(regs) != 0 {
		t.Errorf("non-cycle metric gated: %v", regs)
	}
}

func TestCompareMetadataMismatch(t *testing.T) {
	base := record(t, 1000)
	other := NewRecord("test", 16000, 1)
	if _, err := Compare(base, other, 5); err == nil {
		t.Error("rows mismatch not rejected")
	}
	other = NewRecord("test", 8000, 2)
	if _, err := Compare(base, other, 5); err == nil {
		t.Error("seed mismatch not rejected")
	}
}

func TestCompareMissingMetric(t *testing.T) {
	base := record(t, 1000)
	cur := record(t, 1000)
	delete(cur.Metrics, "fig5.points.0.cycles.rm")
	regs, err := Compare(base, cur, 5)
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if len(regs) != 1 || regs[0].New != -1 {
		t.Fatalf("missing metric not reported: %v", regs)
	}
	if !strings.Contains(regs[0].String(), "missing") {
		t.Errorf("missing-metric message unclear: %q", regs[0])
	}
}

func TestRecordRoundTripDeterministic(t *testing.T) {
	r := record(t, 1000)
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if got.Name != r.Name || got.Rows != r.Rows || got.Seed != r.Seed || len(got.Metrics) != len(r.Metrics) {
		t.Fatalf("round trip changed the record: %+v vs %+v", got, r)
	}

	// Two marshals of equal records are byte-identical — the property the
	// committed baseline relies on.
	a, _ := json.MarshalIndent(r, "", "  ")
	b, _ := json.MarshalIndent(record(t, 1000), "", "  ")
	if !bytes.Equal(a, b) {
		t.Error("equal records marshal differently")
	}
}
