// Package bench records experiment results as flat metric maps and gates
// cycle regressions between two records — the machinery behind
// `rfbench -bench` / `rfbench -compare` and the CI regression gate.
//
// A Record is deliberately schema-free: every numeric leaf of an
// experiment's JSON encoding becomes one metric under a dotted path
// ("fig5.points.3.cycles.RM"). New experiments and new result fields flow
// into the record without touching this package; the comparison gate keys
// off path substrings instead of struct shapes.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Record is one benchmark run: identifying metadata plus the flattened
// numeric metrics of every experiment it covered. Records marshal to
// deterministic JSON (encoding/json sorts map keys), so same-seed runs of a
// deterministic model produce byte-identical files — which is what makes a
// committed baseline meaningful.
type Record struct {
	Name    string             `json:"name"`
	Rows    int                `json:"rows"`
	Seed    int64              `json:"seed"`
	Metrics map[string]float64 `json:"metrics"`
}

// NewRecord starts an empty record for a run at the given scale.
func NewRecord(name string, rows int, seed int64) *Record {
	return &Record{Name: name, Rows: rows, Seed: seed, Metrics: map[string]float64{}}
}

// AddResult flattens one experiment result into the record: the result is
// round-tripped through JSON and every numeric leaf lands under
// "<experiment>.<dotted.path>". Wall-clock fields (any path containing
// "wall") are skipped — they vary run to run and would dirty a committed
// baseline without measuring the model.
func (r *Record) AddResult(experiment string, result any) error {
	raw, err := json.Marshal(result)
	if err != nil {
		return fmt.Errorf("bench: marshal %s: %w", experiment, err)
	}
	var tree any
	if err := json.Unmarshal(raw, &tree); err != nil {
		return fmt.Errorf("bench: unmarshal %s: %w", experiment, err)
	}
	flatten(strings.ToLower(experiment), tree, r.Metrics)
	return nil
}

// flatten walks a decoded JSON tree in sorted-key order and writes numeric
// leaves into out under dotted paths. Strings, booleans, and nulls are not
// metrics and are dropped.
func flatten(prefix string, v any, out map[string]float64) {
	switch node := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(node))
		for k := range node {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			flatten(prefix+"."+strings.ToLower(k), node[k], out)
		}
	case []any:
		for i, elem := range node {
			flatten(fmt.Sprintf("%s.%d", prefix, i), elem, out)
		}
	case float64:
		if strings.Contains(prefix, "wall") {
			return
		}
		out[prefix] = node
	}
}

// Regression is one gated metric that got worse than the tolerance allows.
type Regression struct {
	Key     string  // dotted metric path
	Old     float64 // baseline value
	New     float64 // current value
	Percent float64 // relative growth, e.g. 10.0 for +10%
}

func (g Regression) String() string {
	if g.New < 0 {
		return fmt.Sprintf("%s: %.0f -> metric missing from current record", g.Key, g.Old)
	}
	return fmt.Sprintf("%s: %.0f -> %.0f (+%.1f%%)", g.Key, g.Old, g.New, g.Percent)
}

// Compare gates cur against base: every baseline metric whose path contains
// "cycles" must not have grown by more than tolerancePct percent, and must
// still exist. Non-cycle metrics (speedups, checksums, row counts) are
// carried for context but not gated. Records taken at different scales or
// seeds measure different workloads, so a Rows/Seed mismatch is an error,
// not a regression.
func Compare(base, cur *Record, tolerancePct float64) ([]Regression, error) {
	if base == nil || cur == nil {
		return nil, fmt.Errorf("bench: compare needs two records")
	}
	if base.Rows != cur.Rows || base.Seed != cur.Seed {
		return nil, fmt.Errorf("bench: records are not comparable: baseline rows=%d seed=%d vs current rows=%d seed=%d",
			base.Rows, base.Seed, cur.Rows, cur.Seed)
	}
	keys := make([]string, 0, len(base.Metrics))
	for k := range base.Metrics {
		if strings.Contains(k, "cycles") {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var regs []Regression
	for _, k := range keys {
		old := base.Metrics[k]
		now, ok := cur.Metrics[k]
		if !ok {
			regs = append(regs, Regression{Key: k, Old: old, New: -1, Percent: 0})
			continue
		}
		if old <= 0 {
			continue
		}
		growth := (now - old) / old * 100
		if growth > tolerancePct {
			regs = append(regs, Regression{Key: k, Old: old, New: now, Percent: growth})
		}
	}
	return regs, nil
}

// WriteFile writes the record as indented, key-sorted JSON.
func (r *Record) WriteFile(path string) error {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// ReadFile loads a record written by WriteFile.
func ReadFile(path string) (*Record, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Record
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &r, nil
}
