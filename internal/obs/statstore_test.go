package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestStatStoreAggregatesByFingerprint(t *testing.T) {
	s := NewStatStore()
	// Two calls of one statement (different literals collapse to one
	// fingerprint upstream), one call of another.
	s.Record(StatSample{
		Fingerprint: 0xabc, Text: "SELECT a FROM t WHERE b < ?", Engine: "COL",
		Cycles: 1000, WallNanos: 10, RowsRet: 3, RowsScan: 100,
		BytesDRAM: 800, BytesCPU: 400,
		EstCycles: 2000, HasSel: true, EstSelectivity: 0.3, ActSelectivity: 0.03,
	})
	s.Record(StatSample{
		Fingerprint: 0xabc, Text: "SELECT a FROM t WHERE b < ?", Engine: "RM",
		Cycles: 3000, WallNanos: 30, RowsRet: 5, RowsScan: 100,
		BytesDRAM: 200, BytesCPU: 200,
		EstCycles: 1500, HasSel: true, EstSelectivity: 0.3, ActSelectivity: 0.05,
	})
	s.Record(StatSample{
		Fingerprint: 0xdef, Text: "SELECT COUNT ( * ) FROM u", Engine: "ROW",
		Cycles: 500, RowsRet: 1, RowsScan: 10,
	})
	s.Record(StatSample{Fingerprint: 0xdef, Text: "SELECT COUNT ( * ) FROM u", Err: true})

	snap := s.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("got %d statements, want 2", len(snap))
	}
	// Ordered hottest (total cycles) first.
	hot, cold := snap[0], snap[1]
	if hot.Fingerprint != "0000000000000abc" {
		t.Fatalf("hottest statement is %s, want 0000000000000abc", hot.Fingerprint)
	}
	if hot.Calls != 2 || hot.TotalCycles != 4000 || hot.RowsRet != 8 || hot.RowsScan != 200 {
		t.Errorf("hot stats wrong: %+v", hot)
	}
	if hot.BytesDRAM != 1000 || hot.BytesCPU != 600 {
		t.Errorf("byte accounting wrong: dram=%d cpu=%d", hot.BytesDRAM, hot.BytesCPU)
	}
	if hot.MeanCycles != 2000 {
		t.Errorf("mean cycles %.0f, want 2000", hot.MeanCycles)
	}
	if hot.Engines["COL"] != 1 || hot.Engines["RM"] != 1 {
		t.Errorf("engine counts wrong: %v", hot.Engines)
	}
	// q-error: call 1 est 2000 act 1000 -> 2; call 2 est 1500 act 3000 -> 2.
	if hot.QErrorSamples != 2 || hot.MeanQError != 2 || hot.MaxQError != 2 {
		t.Errorf("q-error wrong: %+v", hot)
	}
	if hot.MeanEstSel != 0.3 || hot.MeanActSel != 0.04 {
		t.Errorf("selectivity means wrong: est=%g act=%g", hot.MeanEstSel, hot.MeanActSel)
	}
	if cold.Calls != 2 || cold.Errors != 1 || cold.TotalCycles != 500 {
		t.Errorf("cold stats wrong: %+v", cold)
	}
	// An errored call contributes to Calls/Errors only.
	if cold.RowsRet != 1 {
		t.Errorf("error call leaked row counts: %+v", cold)
	}
}

func TestStatStoreExportFormats(t *testing.T) {
	s := NewStatStore()
	s.Record(StatSample{
		Fingerprint: 7, Text: "SELECT x FROM t", Engine: "IDX",
		Cycles: 4096, RowsRet: 2, RowsScan: 8, BytesDRAM: 64,
		EstCycles: 8192, Slow: true,
	})

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var recs []StatementRecord
	if err := json.Unmarshal(buf.Bytes(), &recs); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if len(recs) != 1 || recs[0].Fingerprint != "0000000000000007" || recs[0].SlowCalls != 1 {
		t.Fatalf("JSON snapshot wrong: %+v", recs)
	}

	buf.Reset()
	s.WritePrometheus(&buf)
	prom := buf.String()
	for _, want := range []string{
		`rfabric_stmt_calls_total{fingerprint="0000000000000007"} 1`,
		`rfabric_stmt_cycles_total{fingerprint="0000000000000007"} 4096`,
		`rfabric_stmt_mean_q_error{fingerprint="0000000000000007"} 2`,
		`rfabric_stmt_slow_total{fingerprint="0000000000000007"} 1`,
		"# TYPE rfabric_stmt_calls_total counter",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("Prometheus export missing %q in:\n%s", want, prom)
		}
	}
	if strings.Contains(prom, "rfabric_stmt_errors_total") {
		t.Error("Prometheus export emits error series with zero errors")
	}
}

// TestStatStoreConcurrentPublishRead is the -race satellite: writers fold
// samples while readers snapshot, export, and toggle the disabled flag.
func TestStatStoreConcurrentPublishRead(t *testing.T) {
	s := NewStatStore()
	const writers, perWriter = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				s.Record(StatSample{
					Fingerprint: uint64(i % 5), Text: "SELECT ?", Engine: "COL",
					Cycles: uint64(100 + i), WallNanos: int64(i),
					RowsRet: 1, RowsScan: 10, EstCycles: 150,
					HasSel: true, EstSelectivity: 0.1, ActSelectivity: 0.2,
				})
			}
		}(w)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			var sink bytes.Buffer
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch r {
				case 0:
					s.Snapshot()
				case 1:
					sink.Reset()
					s.WriteJSON(&sink)
				case 2:
					sink.Reset()
					s.WritePrometheus(&sink)
				case 3:
					s.SetDisabled(true)
					s.SetDisabled(false)
				}
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	// The disabled-toggling reader legitimately drops records that land in
	// its off-windows, so only bounds hold; what matters is that every
	// record that did land is fully consistent and nothing raced.
	if got := s.Len(); got > 5 {
		t.Errorf("got %d fingerprints, want at most 5", got)
	}
	var total uint64
	for _, rec := range s.Snapshot() {
		total += rec.Calls
		if rec.Engines["COL"] != rec.Calls {
			t.Errorf("engine count %d != calls %d for %s", rec.Engines["COL"], rec.Calls, rec.Fingerprint)
		}
	}
	if total > writers*perWriter {
		t.Errorf("total calls %d exceeds writes issued %d", total, writers*perWriter)
	}
}

// Histogram.Quantile edge cases (satellite): empty, single-sample, and
// every-sample-in-the-overflow-bucket.
func TestHistogramQuantileEdgeCases(t *testing.T) {
	reg := NewRegistry()

	empty := reg.Histogram("rfabric_test_q_empty", nil)
	if got := empty.Quantile(0.99); got != 0 {
		t.Errorf("empty histogram Quantile = %g, want 0", got)
	}

	single := reg.Histogram("rfabric_test_q_single", nil)
	single.Observe(256) // exactly the first bucket bound
	if got := single.Quantile(1); got != 256 {
		t.Errorf("single-sample Quantile(1) = %g, want 256", got)
	}
	// Any quantile of a one-sample histogram stays inside that bucket.
	for _, q := range []float64{-0.5, 0, 0.5, 0.99, 1, 2} {
		if got := single.Quantile(q); got < 0 || got > 256 {
			t.Errorf("single-sample Quantile(%g) = %g outside bucket [0,256]", q, got)
		}
	}

	over := reg.Histogram("rfabric_test_q_overflow", nil)
	bounds := DefaultBuckets()
	last := bounds[len(bounds)-1]
	for i := 0; i < 3; i++ {
		over.Observe(last * 100) // beyond every finite bound
	}
	for _, q := range []float64{0, 0.5, 1} {
		if got := over.Quantile(q); got != last {
			t.Errorf("overflow-only Quantile(%g) = %g, want clamp to %g", q, got, last)
		}
	}
}

func TestSlowLogRingEviction(t *testing.T) {
	l := NewSlowLog(3)
	for i := 1; i <= 5; i++ {
		l.Add(SlowEntry{Query: "q", Cycles: uint64(i)})
	}
	if l.Total() != 5 {
		t.Errorf("Total = %d, want 5", l.Total())
	}
	got := l.Entries()
	if len(got) != 3 {
		t.Fatalf("retained %d entries, want 3", len(got))
	}
	// Newest first: cycles 5, 4, 3; seq assigned in arrival order.
	for i, wantCycles := range []uint64{5, 4, 3} {
		if got[i].Cycles != wantCycles || got[i].Seq != wantCycles-1 {
			t.Errorf("entry %d = {cycles %d seq %d}, want {cycles %d seq %d}",
				i, got[i].Cycles, got[i].Seq, wantCycles, wantCycles-1)
		}
	}

	var nilLog *SlowLog
	nilLog.Add(SlowEntry{})
	if nilLog.Entries() != nil || nilLog.Total() != 0 {
		t.Error("nil SlowLog not inert")
	}
}
