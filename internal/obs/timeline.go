package obs

import (
	"encoding/json"
	"sort"
)

// DefaultTimelineInterval is the sample spacing (in modeled CPU cycles) used
// when a Timeline is created with interval 0.
const DefaultTimelineInterval = 10_000

// TimelineSample is one sampled window of a query's execution. Each sample
// covers the modeled-cycle range (Cycle-Window, Cycle]; rates and occupancy
// fractions are computed over that window only, so the series shows *when*
// during the query the row buffer thrashed or the fabric pipeline stalled,
// not just the end-of-query averages the Breakdown reports.
type TimelineSample struct {
	// Cycle is the window's end position on the query's attributed-cycle
	// axis (the same axis the span tree reconciles against).
	Cycle uint64 `json:"cycle"`
	// Window is the width of the sampled window. Samples are emitted at the
	// first progress point at or after each interval boundary, so Window is
	// at least the configured interval (except for the final partial one).
	Window uint64 `json:"window"`

	// DRAM: line/burst accesses served in the window and how they hit the
	// open row buffers.
	DRAMAccesses     uint64  `json:"dram_accesses"`
	RowBufferHitRate float64 `json:"row_buffer_hit_rate"`
	// BankOccupancy is each bank's busy cycles divided by the window. A
	// value above 1.0 means the bank was charged more occupancy than the
	// window exposed as latency (overlapped misses, batched gathers).
	BankOccupancy []float64 `json:"bank_occupancy"`

	// Cache: demand loads in the window and the fraction that missed to
	// DRAM.
	CacheLoads     uint64  `json:"cache_loads"`
	CacheMissRatio float64 `json:"cache_miss_ratio"`

	// Fabric: datapath-busy and stalled (waiting on DRAM gathers or refill
	// handshakes) fractions of the window. Both are 0 for windows where the
	// fabric produced nothing.
	FabricOccupancy float64 `json:"fabric_occupancy"`
	FabricStall     float64 `json:"fabric_stall"`

	// WorkersBusy is the average number of parallel workers (PAR morsels,
	// shard scatters) executing during the window, reconstructed from the
	// deterministic schedule. 0 for single-goroutine paths.
	WorkersBusy float64 `json:"workers_busy"`
}

// WorkerSlice is one scheduled execution slice on a parallel worker lane: a
// morsel or shard run placed at its deterministic list-scheduling start.
type WorkerSlice struct {
	Worker int    `json:"worker"`
	Name   string `json:"name"`
	Start  uint64 `json:"start"`
	Cycles uint64 `json:"cycles"`
}

// Timeline samples hardware state every ~interval modeled cycles while a
// query runs. The dram/cache/fabric layers feed it through cheap nil-safe
// hooks (the same zero-overhead pattern as Tracer: a nil *Timeline no-ops
// every method), and the executing engine advances the clock with Tick at
// its natural progress points (per row for demand paths, per chunk for the
// RM pipeline). Like the simulated System it observes, a Timeline is
// single-goroutine state.
type Timeline struct {
	interval uint64
	banks    int

	now      uint64
	lastEmit uint64
	finished bool

	samples []TimelineSample
	slices  []WorkerSlice

	// Window accumulators, zeroed at each emitted sample.
	winAccesses uint64
	winHits     uint64
	winMisses   uint64
	winBankBusy []uint64
	winLoads    uint64
	winFills    uint64
	winFabBusy  uint64
	winFabStall uint64
}

// NewTimeline creates a sampler emitting every interval modeled cycles
// (DefaultTimelineInterval when 0) over a module with banks DRAM banks.
func NewTimeline(interval uint64, banks int) *Timeline {
	if interval == 0 {
		interval = DefaultTimelineInterval
	}
	if banks < 0 {
		banks = 0
	}
	return &Timeline{interval: interval, banks: banks, winBankBusy: make([]uint64, banks)}
}

// Interval returns the configured sample spacing.
func (t *Timeline) Interval() uint64 {
	if t == nil {
		return 0
	}
	return t.interval
}

// DRAMAccess records one DRAM access (a demand line fill or one gather
// burst) charged cost cycles against bank, hitting or missing the open row.
// Nil-safe.
func (t *Timeline) DRAMAccess(bank int, cost uint64, rowHit bool) {
	if t == nil {
		return
	}
	t.winAccesses++
	if rowHit {
		t.winHits++
	} else {
		t.winMisses++
	}
	if bank >= 0 && bank < len(t.winBankBusy) {
		t.winBankBusy[bank] += cost
	}
}

// CacheLoad records one demand load; fill marks a miss that went to DRAM.
// Nil-safe.
func (t *Timeline) CacheLoad(fill bool) {
	if t == nil {
		return
	}
	t.winLoads++
	if fill {
		t.winFills++
	}
}

// FabricChunk records one buffer refill: busy cycles the datapath spent
// packing and stall cycles it waited on DRAM gathers or the refill
// handshake. Nil-safe.
func (t *Timeline) FabricChunk(busy, stall uint64) {
	if t == nil {
		return
	}
	t.winFabBusy += busy
	t.winFabStall += stall
}

// AddWorkerSlice records one scheduled parallel execution (a morsel or a
// shard) for the worker lanes. Nil-safe.
func (t *Timeline) AddWorkerSlice(worker int, name string, start, cycles uint64) {
	if t == nil {
		return
	}
	t.slices = append(t.slices, WorkerSlice{Worker: worker, Name: name, Start: start, Cycles: cycles})
}

// Tick advances the query clock by delta attributed cycles and emits a
// sample whenever the clock crosses an interval boundary. Nil-safe.
func (t *Timeline) Tick(delta uint64) {
	if t == nil || delta == 0 || t.finished {
		return
	}
	t.now += delta
	if t.now-t.lastEmit >= t.interval {
		t.emit()
	}
}

// TickThrough advances the clock from its current position to total in
// interval-sized steps. Coordinator paths (PAR morsels, sharded scatters)
// use it because their workers run on unhooked System clones: stepping the
// clock keeps the worker-occupancy series resolved across the makespan
// instead of collapsing it into one trailing window. Nil-safe.
func (t *Timeline) TickThrough(total uint64) {
	if t == nil {
		return
	}
	for t.now < total {
		d := t.interval
		if rem := total - t.now; rem < d {
			d = rem
		}
		t.Tick(d)
	}
}

// emit closes the current window into a sample and resets the accumulators.
func (t *Timeline) emit() {
	win := t.now - t.lastEmit
	if win == 0 {
		return
	}
	s := TimelineSample{
		Cycle:         t.now,
		Window:        win,
		DRAMAccesses:  t.winAccesses,
		CacheLoads:    t.winLoads,
		BankOccupancy: make([]float64, len(t.winBankBusy)),
	}
	if rows := t.winHits + t.winMisses; rows > 0 {
		s.RowBufferHitRate = float64(t.winHits) / float64(rows)
	}
	for i, busy := range t.winBankBusy {
		s.BankOccupancy[i] = float64(busy) / float64(win)
		t.winBankBusy[i] = 0
	}
	if t.winLoads > 0 {
		s.CacheMissRatio = float64(t.winFills) / float64(t.winLoads)
	}
	s.FabricOccupancy = float64(t.winFabBusy) / float64(win)
	s.FabricStall = float64(t.winFabStall) / float64(win)
	t.samples = append(t.samples, s)

	t.winAccesses, t.winHits, t.winMisses = 0, 0, 0
	t.winLoads, t.winFills = 0, 0
	t.winFabBusy, t.winFabStall = 0, 0
	t.lastEmit = t.now
}

// Finish advances the clock to totalCycles (the run's Breakdown.TotalCycles,
// covering any trailing stall the engines never ticked), emits the final
// partial window, and fills the per-sample WorkersBusy series from the
// recorded worker slices. Nil-safe; further hooks after Finish are ignored.
func (t *Timeline) Finish(totalCycles uint64) {
	if t == nil || t.finished {
		return
	}
	if totalCycles > t.now {
		t.now = totalCycles
	}
	if t.now > t.lastEmit {
		t.emit()
	}
	if len(t.slices) > 0 {
		for i := range t.samples {
			s := &t.samples[i]
			var busy uint64
			lo := s.Cycle - s.Window
			for _, sl := range t.slices {
				busy += overlap(lo, s.Cycle, sl.Start, sl.Start+sl.Cycles)
			}
			s.WorkersBusy = float64(busy) / float64(s.Window)
		}
	}
	t.finished = true
}

// overlap returns the length of the intersection of [aLo,aHi) and [bLo,bHi).
func overlap(aLo, aHi, bLo, bHi uint64) uint64 {
	if bLo > aLo {
		aLo = bLo
	}
	if bHi < aHi {
		aHi = bHi
	}
	if aHi <= aLo {
		return 0
	}
	return aHi - aLo
}

// Now returns the clock's current position in attributed cycles.
func (t *Timeline) Now() uint64 {
	if t == nil {
		return 0
	}
	return t.now
}

// Samples returns the emitted samples.
func (t *Timeline) Samples() []TimelineSample {
	if t == nil {
		return nil
	}
	return t.samples
}

// WorkerSlices returns the recorded parallel execution slices, sorted by
// (worker, start) for deterministic rendering.
func (t *Timeline) WorkerSlices() []WorkerSlice {
	if t == nil {
		return nil
	}
	out := append([]WorkerSlice(nil), t.slices...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Worker != out[j].Worker {
			return out[i].Worker < out[j].Worker
		}
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// timelineJSON is the marshaled shape of a Timeline.
type timelineJSON struct {
	Interval    uint64           `json:"interval"`
	TotalCycles uint64           `json:"total_cycles"`
	Samples     []TimelineSample `json:"samples"`
	Workers     []WorkerSlice    `json:"workers,omitempty"`
}

// MarshalJSON renders the timeline deterministically.
func (t *Timeline) MarshalJSON() ([]byte, error) {
	if t == nil {
		return []byte("null"), nil
	}
	samples := t.samples
	if samples == nil {
		samples = []TimelineSample{}
	}
	return json.Marshal(timelineJSON{
		Interval:    t.interval,
		TotalCycles: t.now,
		Samples:     samples,
		Workers:     t.WorkerSlices(),
	})
}
