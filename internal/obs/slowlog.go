package obs

import (
	"encoding/json"
	"net/http"
	"sync"
)

// SlowLog is a fixed-capacity ring of slow-query captures. When a DB has a
// slow threshold set, every query that exceeds it lands here with its full
// trace, so the outlier that blew the p99 can be dissected after the fact
// instead of hoping it reproduces. The ring keeps the most recent entries;
// Seq is monotone so a scraper can tell how many were evicted between reads.
type SlowLog struct {
	mu      sync.Mutex
	cap     int
	seq     uint64
	entries []SlowEntry // ring, position seq % cap
}

// SlowEntry is one captured slow query.
type SlowEntry struct {
	Seq       uint64 `json:"seq"`
	Query     string `json:"query"`
	Engine    string `json:"engine,omitempty"`
	Cycles    uint64 `json:"cycles"`
	Threshold uint64 `json:"threshold"`
	WallNanos int64  `json:"wall_ns,omitempty"`
	RowsScan  int64  `json:"rows_scanned"`
	RowsRet   int64  `json:"rows_returned"`
	Trace     *Trace `json:"trace,omitempty"`
}

// NewSlowLog returns a ring holding the most recent capacity entries
// (capacity <= 0 defaults to 32).
func NewSlowLog(capacity int) *SlowLog {
	if capacity <= 0 {
		capacity = 32
	}
	return &SlowLog{cap: capacity}
}

// Add appends one capture, evicting the oldest entry once full. Nil-safe.
func (l *SlowLog) Add(e SlowEntry) {
	if l == nil {
		return
	}
	l.mu.Lock()
	e.Seq = l.seq
	if len(l.entries) < l.cap {
		l.entries = append(l.entries, e)
	} else {
		l.entries[l.seq%uint64(l.cap)] = e
	}
	l.seq++
	l.mu.Unlock()
}

// Total returns how many entries were ever added (including evicted ones).
func (l *SlowLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Entries returns the retained captures, newest first.
func (l *SlowLog) Entries() []SlowEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowEntry, 0, len(l.entries))
	for i := 0; i < len(l.entries); i++ {
		// Walk backwards from the most recent write position.
		idx := (l.seq - 1 - uint64(i)) % uint64(l.cap)
		out = append(out, l.entries[idx])
	}
	return out
}

// Handle mounts GET /debug/slowlog, a JSON array of the retained captures
// newest first (each with its full trace tree).
func (l *SlowLog) Handle(mux *http.ServeMux) {
	mux.HandleFunc("/debug/slowlog", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		entries := l.Entries()
		if entries == nil {
			entries = []SlowEntry{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(entries)
	})
}
