package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Chrome Trace Event Format export: a finished Trace (span tree plus the
// optional cycle-sampled Timeline) renders as a JSON object loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing. Timestamps are modeled CPU
// cycles used as the trace's microsecond unit — absolute wall time is
// meaningless in a discrete-event model, relative placement is everything.
//
// Layout rules mirror the attribution rules of the span tree:
//
//   - non-detail spans lay out sequentially on the query lane: a child
//     starts where its elder siblings' attributed cycles end, so the root
//     slice's duration equals Root.AttributedCycles — which reconciles
//     exactly with Breakdown.TotalCycles;
//   - detail subtrees (per-morsel, per-shard executions that overlap the
//     makespan) render on per-worker lanes at the starts the deterministic
//     list schedule assigned, when their roots carry the worker/start_cycles
//     attributes, and on a shared detail lane otherwise;
//   - timeline samples render as counter tracks (row-buffer hit rate, bank
//     occupancy, cache miss ratio, fabric occupancy/stall, workers busy).

// Lane (tid) assignment inside the single trace process.
const (
	chromeTidQuery  = 0  // sequential span layout
	chromeTidDetail = 9  // detail subtrees without schedule attributes
	chromeTidWorker = 10 // worker w renders on tid chromeTidWorker + w
)

// chromeEvent is one Trace Event. Field order is fixed by the struct, and
// Args is rendered with sorted keys by encoding/json, so output is
// byte-deterministic.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
	Cat  string         `json:"cat,omitempty"`
}

// chromeTrace is the wrapping JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData"`
}

// WriteChrome writes the trace in Chrome Trace Event Format.
func (t *Trace) WriteChrome(w io.Writer) error {
	if t == nil || t.Root == nil {
		return fmt.Errorf("obs: no trace to export")
	}
	b := &chromeBuilder{pid: 1, workerLanes: map[int]bool{}}
	b.meta(0, "process_name", map[string]any{"name": "rfabric query"})
	b.thread(chromeTidQuery, "query")
	b.layoutSpan(t.Root, 0, chromeTidQuery)
	if t.Timeline != nil {
		b.counters(t.Timeline)
	}
	out := chromeTrace{
		TraceEvents:     b.events,
		DisplayTimeUnit: "ms",
		OtherData: map[string]any{
			"clock":        "modeled CPU cycles (1 cycle rendered as 1 us)",
			"query":        t.Query,
			"engine":       t.Engine,
			"total_cycles": t.TotalCycles,
		},
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

type chromeBuilder struct {
	pid         int
	events      []chromeEvent
	workerLanes map[int]bool
	usedDetail  bool
}

func (b *chromeBuilder) meta(tid int, name string, args map[string]any) {
	b.events = append(b.events, chromeEvent{Name: name, Ph: "M", Pid: b.pid, Tid: tid, Args: args})
}

func (b *chromeBuilder) thread(tid int, name string) {
	b.meta(tid, "thread_name", map[string]any{"name": name})
	b.meta(tid, "thread_sort_index", map[string]any{"sort_index": tid})
}

// layoutSpan emits s as a complete event at start on lane tid and lays out
// its children: non-detail children sequentially after s's own cycles,
// detail subtrees on worker or detail lanes.
func (b *chromeBuilder) layoutSpan(s *Span, start uint64, tid int) {
	args := map[string]any{}
	if s.Cycles > 0 {
		args["own_cycles"] = s.Cycles
	}
	if s.Bytes > 0 {
		args["bytes"] = s.Bytes
	}
	for _, a := range s.Attrs {
		args[a.Key] = a.Value
	}
	if len(args) == 0 {
		args = nil
	}
	ev := chromeEvent{Name: s.Name, Ph: "X", Ts: start, Dur: s.AttributedCycles(), Pid: b.pid, Tid: tid, Args: args}
	if s.Detail {
		ev.Cat = "detail"
	}
	b.events = append(b.events, ev)

	cursor := start + s.Cycles
	for _, c := range s.Children {
		if c.Detail {
			b.layoutDetail(c, start)
			continue
		}
		b.layoutSpan(c, cursor, tid)
		cursor += c.AttributedCycles()
	}
}

// layoutDetail places a detail subtree. Children carrying the deterministic
// schedule attributes (worker, start_cycles) land on per-worker lanes at
// their scheduled offsets from the parent's start; the rest overlap the
// parent on the shared detail lane.
func (b *chromeBuilder) layoutDetail(d *Span, parentStart uint64) {
	if len(d.Children) == 0 {
		b.detailLane()
		b.layoutSpan(d, parentStart, chromeTidDetail)
		return
	}
	for _, c := range d.Children {
		ws, okW := c.Attr("worker")
		ss, okS := c.Attr("start_cycles")
		if okW && okS {
			wkr, errW := strconv.Atoi(ws)
			st, errS := strconv.ParseUint(ss, 10, 64)
			if errW == nil && errS == nil && wkr >= 0 {
				tid := chromeTidWorker + wkr
				if !b.workerLanes[wkr] {
					b.workerLanes[wkr] = true
					b.thread(tid, fmt.Sprintf("worker %d", wkr))
				}
				b.layoutSpan(c, parentStart+st, tid)
				continue
			}
		}
		b.detailLane()
		b.layoutSpan(c, parentStart, chromeTidDetail)
	}
}

func (b *chromeBuilder) detailLane() {
	if !b.usedDetail {
		b.usedDetail = true
		b.thread(chromeTidDetail, "detail")
	}
}

// counters renders the timeline as counter tracks. Each sample's value is
// emitted at the window's start, so the track holds the value across the
// window it was measured over.
func (b *chromeBuilder) counters(tl *Timeline) {
	hasWorkers := len(tl.WorkerSlices()) > 0
	for _, s := range tl.Samples() {
		ts := s.Cycle - s.Window
		b.counter("row_buffer_hit_rate", ts, map[string]any{"rate": s.RowBufferHitRate})
		b.counter("cache_miss_ratio", ts, map[string]any{"ratio": s.CacheMissRatio})
		b.counter("fabric_pipeline", ts, map[string]any{"busy": s.FabricOccupancy, "stall": s.FabricStall})
		if len(s.BankOccupancy) > 0 {
			args := make(map[string]any, len(s.BankOccupancy))
			for i, v := range s.BankOccupancy {
				args[fmt.Sprintf("bank%02d", i)] = v
			}
			b.counter("dram_bank_occupancy", ts, args)
		}
		if hasWorkers {
			b.counter("workers_busy", ts, map[string]any{"workers": s.WorkersBusy})
		}
	}
}

func (b *chromeBuilder) counter(name string, ts uint64, args map[string]any) {
	b.events = append(b.events, chromeEvent{Name: name, Ph: "C", Ts: ts, Pid: b.pid, Tid: chromeTidQuery, Args: args})
}
