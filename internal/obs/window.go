package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"runtime/metrics"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Sliding-window telemetry: the time dimension of the observability stack.
// The metrics Registry answers "how much since process start?" and the
// StatStore "how much per statement?"; Windows answers "how is the system
// doing *right now* and over the last N seconds?" — the signal a serving
// layer gates on and ReProVide-style feedback loops consume.
//
// The aggregator is a fixed ring of per-second buckets, lock-striped so
// concurrent query paths (PAR morsel roots, many sessions) never contend on
// one mutex: each Record picks a stripe round-robin, takes that stripe's
// lock, and folds into the stripe's own ring. Snapshots merge the stripes.
// Buckets are fixed-size arrays — recording allocates nothing, and a
// disabled (or nil) Windows reduces Record to one atomic load, the same
// off-path contract the Registry and StatStore keep.

// windowStripes is the number of independently locked rings. Eight stripes
// keep the hottest realistic publish rates (thousands of QPS across a
// worker pool) essentially contention-free while the merge cost at
// snapshot time stays trivial.
const windowStripes = 8

// defaultBounds is the shared latency bucket layout, identical to every
// registry Histogram so windowed quantiles and lifetime quantiles are
// computed over the same grid.
var defaultBounds = DefaultBuckets()

// latBuckets is len(defaultBounds)+1: one overflow bucket past the last
// bound, mirroring Histogram.
const latBuckets = 16

func init() {
	if len(defaultBounds)+1 != latBuckets {
		panic("obs: latBuckets out of sync with DefaultBuckets")
	}
}

// WindowSample is one finished query's contribution to the rolling window.
type WindowSample struct {
	// Err marks a failed execution; failed runs contribute to the error
	// rate but not to the latency or byte series.
	Err bool
	// Cycles is the run's modeled total (Breakdown.TotalCycles).
	Cycles uint64
	// WallNanos is the real wall-clock duration of the run.
	WallNanos int64
	// AllocBytes is the heap allocated during the run (process-wide delta;
	// noisy under concurrency, but the trend is the signal).
	AllocBytes uint64
	// BytesDRAM / BytesCPU are the run's Breakdown byte movements.
	BytesDRAM uint64
	BytesCPU  uint64
	// CacheLoads / CacheMisses are the hierarchy's demand loads and DRAM
	// fills during the run, for the windowed miss ratio.
	CacheLoads  uint64
	CacheMisses uint64
	// GroupHits / GroupMisses are the fabric group cache's lookups during
	// the run (zero when the cache is off), for the windowed hit ratio.
	GroupHits   uint64
	GroupMisses uint64
}

// windowBucket accumulates one second of samples. Fixed-size on purpose:
// folding a sample into it allocates nothing.
type windowBucket struct {
	sec         int64 // unix second this bucket holds; 0 = never used
	queries     uint64
	errors      uint64
	slow        uint64 // queries over the SLO cycle threshold
	cycles      uint64
	wallNanos   int64
	allocBytes  uint64
	bytesDRAM   uint64
	bytesCPU    uint64
	cacheLoads  uint64
	cacheMisses uint64
	groupHits   uint64
	groupMisses uint64
	lat         [latBuckets]uint64 // modeled-cycle histogram, defaultBounds grid
}

// add folds one sample (successful or not) into the bucket.
func (b *windowBucket) add(s *WindowSample, slo uint64) {
	b.queries++
	if s.Err {
		b.errors++
		return
	}
	if slo > 0 && s.Cycles > slo {
		b.slow++
	}
	b.cycles += s.Cycles
	b.wallNanos += s.WallNanos
	b.allocBytes += s.AllocBytes
	b.bytesDRAM += s.BytesDRAM
	b.bytesCPU += s.BytesCPU
	b.cacheLoads += s.CacheLoads
	b.cacheMisses += s.CacheMisses
	b.groupHits += s.GroupHits
	b.groupMisses += s.GroupMisses
	b.lat[bucketIndex(defaultBounds, float64(s.Cycles))]++
}

// merge folds another bucket's counts into this one (snapshot-side only).
func (b *windowBucket) merge(o *windowBucket) {
	b.queries += o.queries
	b.errors += o.errors
	b.slow += o.slow
	b.cycles += o.cycles
	b.wallNanos += o.wallNanos
	b.allocBytes += o.allocBytes
	b.bytesDRAM += o.bytesDRAM
	b.bytesCPU += o.bytesCPU
	b.cacheLoads += o.cacheLoads
	b.cacheMisses += o.cacheMisses
	b.groupHits += o.groupHits
	b.groupMisses += o.groupMisses
	for i := range b.lat {
		b.lat[i] += o.lat[i]
	}
}

// windowStripe is one independently locked ring of per-second buckets.
type windowStripe struct {
	mu      sync.Mutex
	buckets []windowBucket
}

// Windows is the lock-striped sliding-window aggregator. Construct with
// NewWindows (wall clock) or NewWindowsAt (injected clock, for tests and
// deterministic harnesses), attach with DB.SetWindows, and read through
// Snapshot / Series / WriteJSON or the /debug/windows.json handler.
type Windows struct {
	disabled atomic.Bool
	slo      atomic.Uint64 // modeled cycles over which a query counts as slow (0 = off)
	seconds  int
	now      func() int64 // nanosecond clock
	next     atomic.Uint64
	stripes  [windowStripes]windowStripe
}

// NewWindows builds an aggregator retaining the last seconds seconds
// (minimum 2) on the wall clock.
func NewWindows(seconds int) *Windows {
	return NewWindowsAt(seconds, func() int64 { return time.Now().UnixNano() })
}

// NewWindowsAt is NewWindows with an injected nanosecond clock, the hook
// deterministic tests drive time through.
func NewWindowsAt(seconds int, now func() int64) *Windows {
	if seconds < 2 {
		seconds = 2
	}
	w := &Windows{seconds: seconds, now: now}
	for i := range w.stripes {
		w.stripes[i].buckets = make([]windowBucket, seconds)
	}
	return w
}

// SetDisabled toggles recording. Snapshots still render whatever was
// recorded while enabled.
func (w *Windows) SetDisabled(d bool) {
	if w == nil {
		return
	}
	w.disabled.Store(d)
}

// Enabled reports whether this aggregator accepts samples — the single
// check the query path makes before spending anything on capture. A nil
// Windows reports false, so "not attached" and "disabled" share one test.
func (w *Windows) Enabled() bool { return w != nil && !w.disabled.Load() }

// Seconds returns the ring capacity in seconds.
func (w *Windows) Seconds() int {
	if w == nil {
		return 0
	}
	return w.seconds
}

// SetSLOCycles arms the latency SLO: successful queries whose modeled
// cycles exceed c count toward the windowed slow_rate metric (the latency
// analogue of error_rate, the input to latency burn-rate rules). Zero
// disarms.
func (w *Windows) SetSLOCycles(c uint64) {
	if w == nil {
		return
	}
	w.slo.Store(c)
}

// Record folds one query execution into the current second's bucket.
// Safe for concurrent use; allocates nothing; a nil or disabled receiver
// costs one atomic load.
func (w *Windows) Record(s WindowSample) {
	if w == nil || w.disabled.Load() {
		return
	}
	sec := w.now() / 1e9
	st := &w.stripes[w.next.Add(1)%windowStripes]
	st.mu.Lock()
	b := &st.buckets[int(sec%int64(w.seconds))]
	if b.sec != sec {
		*b = windowBucket{sec: sec}
	}
	b.add(&s, w.slo.Load())
	st.mu.Unlock()
}

// WindowSnapshot is the merged view over the trailing window: the health
// scoreboard one poll of /debug/windows.json returns.
type WindowSnapshot struct {
	WindowSeconds int    `json:"window_seconds"`
	Queries       uint64 `json:"queries"`
	Errors        uint64 `json:"errors"`
	Slow          uint64 `json:"slow,omitempty"`

	QPS       float64 `json:"qps"`
	ErrorRate float64 `json:"error_rate"`
	// SlowRate is the fraction of successful queries over the SLO cycle
	// threshold (0 when no SLO is armed).
	SlowRate float64 `json:"slow_rate"`

	P50Cycles  float64 `json:"p50_cycles"`
	P95Cycles  float64 `json:"p95_cycles"`
	P99Cycles  float64 `json:"p99_cycles"`
	MeanCycles float64 `json:"mean_cycles"`

	CyclesPerSec    float64 `json:"cycles_per_sec"`
	DRAMBytesPerSec float64 `json:"dram_bytes_per_sec"`
	CPUBytesPerSec  float64 `json:"cpu_bytes_per_sec"`
	CacheMissRatio  float64 `json:"cache_miss_ratio"`

	// Group-cache traffic in the window (zero when the cache is off).
	GroupHits     uint64  `json:"group_hits,omitempty"`
	GroupMisses   uint64  `json:"group_misses,omitempty"`
	GroupHitRatio float64 `json:"group_hit_ratio,omitempty"`

	MeanWallNanos  float64 `json:"mean_wall_ns"`
	MeanAllocBytes float64 `json:"mean_alloc_bytes"`
}

// Snapshot merges the trailing windowSeconds seconds (clamped to the ring)
// ending at the current clock second into one scoreboard.
func (w *Windows) Snapshot(windowSeconds int) WindowSnapshot {
	if w == nil {
		return WindowSnapshot{}
	}
	if windowSeconds <= 0 || windowSeconds > w.seconds {
		windowSeconds = w.seconds
	}
	nowSec := w.now() / 1e9
	lo := nowSec - int64(windowSeconds) + 1 // inclusive: the window ends at the current second
	var m windowBucket
	for i := range w.stripes {
		st := &w.stripes[i]
		st.mu.Lock()
		for j := range st.buckets {
			if b := &st.buckets[j]; b.sec >= lo && b.sec <= nowSec {
				m.merge(b)
			}
		}
		st.mu.Unlock()
	}

	snap := WindowSnapshot{
		WindowSeconds: windowSeconds,
		Queries:       m.queries,
		Errors:        m.errors,
		Slow:          m.slow,
		QPS:           float64(m.queries) / float64(windowSeconds),
	}
	if m.queries > 0 {
		snap.ErrorRate = float64(m.errors) / float64(m.queries)
	}
	okQ := m.queries - m.errors
	if okQ > 0 {
		snap.SlowRate = float64(m.slow) / float64(okQ)
		snap.MeanCycles = float64(m.cycles) / float64(okQ)
		snap.MeanWallNanos = float64(m.wallNanos) / float64(okQ)
		snap.MeanAllocBytes = float64(m.allocBytes) / float64(okQ)
	}
	snap.CyclesPerSec = float64(m.cycles) / float64(windowSeconds)
	snap.DRAMBytesPerSec = float64(m.bytesDRAM) / float64(windowSeconds)
	snap.CPUBytesPerSec = float64(m.bytesCPU) / float64(windowSeconds)
	if m.cacheLoads > 0 {
		snap.CacheMissRatio = float64(m.cacheMisses) / float64(m.cacheLoads)
	}
	snap.GroupHits, snap.GroupMisses = m.groupHits, m.groupMisses
	if lookups := m.groupHits + m.groupMisses; lookups > 0 {
		snap.GroupHitRatio = float64(m.groupHits) / float64(lookups)
	}
	var count uint64
	for _, n := range m.lat {
		count += n
	}
	snap.P50Cycles = bucketQuantile(defaultBounds, m.lat[:], count, 0.50)
	snap.P95Cycles = bucketQuantile(defaultBounds, m.lat[:], count, 0.95)
	snap.P99Cycles = bucketQuantile(defaultBounds, m.lat[:], count, 0.99)
	return snap
}

// WindowPoint is one second of the per-second series, oldest first.
type WindowPoint struct {
	UnixSec     int64   `json:"sec"`
	Queries     uint64  `json:"queries"`
	Errors      uint64  `json:"errors,omitempty"`
	Slow        uint64  `json:"slow,omitempty"`
	Cycles      uint64  `json:"cycles"`
	P99Cycles   float64 `json:"p99_cycles"`
	DRAMBytes   uint64  `json:"dram_bytes"`
	CPUBytes    uint64  `json:"cpu_bytes"`
	CacheLoads  uint64  `json:"cache_loads"`
	CacheMisses uint64  `json:"cache_misses"`
	GroupHits   uint64  `json:"group_hits,omitempty"`
	GroupMisses uint64  `json:"group_misses,omitempty"`
	WallNanos   int64   `json:"wall_ns"`
	AllocBytes  uint64  `json:"alloc_bytes"`
}

// Series returns the trailing windowSeconds seconds as per-second points,
// oldest first. Seconds with no samples are omitted — the dashboard fills
// the gaps, the wire format stays small.
func (w *Windows) Series(windowSeconds int) []WindowPoint {
	if w == nil {
		return nil
	}
	if windowSeconds <= 0 || windowSeconds > w.seconds {
		windowSeconds = w.seconds
	}
	nowSec := w.now() / 1e9
	lo := nowSec - int64(windowSeconds) + 1
	// Merge stripes second by second.
	merged := make(map[int64]*windowBucket, windowSeconds)
	for i := range w.stripes {
		st := &w.stripes[i]
		st.mu.Lock()
		for j := range st.buckets {
			b := &st.buckets[j]
			if b.sec < lo || b.sec > nowSec {
				continue
			}
			mb, ok := merged[b.sec]
			if !ok {
				mb = &windowBucket{sec: b.sec}
				merged[b.sec] = mb
			}
			mb.merge(b)
		}
		st.mu.Unlock()
	}
	out := make([]WindowPoint, 0, len(merged))
	for sec := lo; sec <= nowSec; sec++ {
		b, ok := merged[sec]
		if !ok {
			continue
		}
		var count uint64
		for _, n := range b.lat {
			count += n
		}
		out = append(out, WindowPoint{
			UnixSec:     b.sec,
			Queries:     b.queries,
			Errors:      b.errors,
			Slow:        b.slow,
			Cycles:      b.cycles,
			P99Cycles:   bucketQuantile(defaultBounds, b.lat[:], count, 0.99),
			DRAMBytes:   b.bytesDRAM,
			CPUBytes:    b.bytesCPU,
			CacheLoads:  b.cacheLoads,
			CacheMisses: b.cacheMisses,
			GroupHits:   b.groupHits,
			GroupMisses: b.groupMisses,
			WallNanos:   b.wallNanos,
			AllocBytes:  b.allocBytes,
		})
	}
	return out
}

// WindowsJSON is the /debug/windows.json document: the merged scoreboard
// plus the per-second series behind it (see EXPERIMENTS.md for the schema).
type WindowsJSON struct {
	NowUnix int64          `json:"now_unix"`
	Window  WindowSnapshot `json:"window"`
	Series  []WindowPoint  `json:"series"`
}

// WriteJSON renders the window document for the trailing windowSeconds.
func (w *Windows) WriteJSON(out io.Writer, windowSeconds int) error {
	doc := WindowsJSON{Window: w.Snapshot(windowSeconds)}
	if w != nil {
		doc.NowUnix = w.now() / 1e9
	}
	doc.Series = w.Series(windowSeconds)
	if doc.Series == nil {
		doc.Series = []WindowPoint{}
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Handle mounts GET /debug/windows.json. The optional ?window=N query
// parameter narrows the merge window (default: the full ring).
func (w *Windows) Handle(mux *http.ServeMux) {
	mux.HandleFunc("/debug/windows.json", func(rw http.ResponseWriter, req *http.Request) {
		window := 0
		if v := req.URL.Query().Get("window"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 {
				http.Error(rw, `{"error":"bad window parameter"}`, http.StatusBadRequest)
				return
			}
			window = n
		}
		rw.Header().Set("Content-Type", "application/json")
		w.WriteJSON(rw, window)
	})
}

// allocSamples pools the one-element runtime/metrics read buffers so
// HeapAllocBytes stays allocation-free on the steady path.
var allocSamples = sync.Pool{New: func() any {
	s := make([]metrics.Sample, 1)
	s[0].Name = "/gc/heap/allocs:bytes"
	return &s
}}

// HeapAllocBytes returns the process's cumulative heap allocation counter.
// Two reads bracketing a query give its allocation delta — process-wide,
// so concurrent work bleeds in, but cheap enough to sit on the query path
// (runtime/metrics, no stop-the-world).
func HeapAllocBytes() uint64 {
	sp := allocSamples.Get().(*[]metrics.Sample)
	metrics.Read(*sp)
	v := (*sp)[0].Value
	allocSamples.Put(sp)
	if v.Kind() != metrics.KindUint64 {
		return 0
	}
	return v.Uint64()
}
