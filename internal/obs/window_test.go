package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// fakeClock is a hand-advanced nanosecond clock shared by Windows and
// AlertEngine in deterministic tests.
type fakeClock struct {
	mu sync.Mutex
	ns int64
}

func newFakeClock(startSec int64) *fakeClock { return &fakeClock{ns: startSec * 1e9} }

func (c *fakeClock) Now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ns
}

func (c *fakeClock) AdvanceSec(s int64) {
	c.mu.Lock()
	c.ns += s * 1e9
	c.mu.Unlock()
}

func TestWindowsSnapshotCountsAndRates(t *testing.T) {
	clk := newFakeClock(1000)
	w := NewWindowsAt(60, clk.Now)
	w.SetSLOCycles(1_000_000)

	// Second 1000: 4 ok (one slow), 1 error.
	for i := 0; i < 3; i++ {
		w.Record(WindowSample{Cycles: 50_000, WallNanos: 1000, AllocBytes: 64,
			BytesDRAM: 4096, BytesCPU: 1024, CacheLoads: 100, CacheMisses: 10})
	}
	w.Record(WindowSample{Cycles: 2_000_000, WallNanos: 9000, AllocBytes: 640,
		BytesDRAM: 8192, BytesCPU: 2048, CacheLoads: 200, CacheMisses: 50})
	w.Record(WindowSample{Err: true})

	clk.AdvanceSec(1) // second 1001: 1 ok
	w.Record(WindowSample{Cycles: 50_000, CacheLoads: 100, CacheMisses: 10})

	snap := w.Snapshot(10)
	if snap.WindowSeconds != 10 {
		t.Fatalf("WindowSeconds = %d, want 10", snap.WindowSeconds)
	}
	if snap.Queries != 6 || snap.Errors != 1 || snap.Slow != 1 {
		t.Fatalf("queries/errors/slow = %d/%d/%d, want 6/1/1", snap.Queries, snap.Errors, snap.Slow)
	}
	if got, want := snap.QPS, 0.6; got != want {
		t.Fatalf("QPS = %g, want %g", got, want)
	}
	if got, want := snap.ErrorRate, 1.0/6; got != want {
		t.Fatalf("ErrorRate = %g, want %g", got, want)
	}
	if got, want := snap.SlowRate, 1.0/5; got != want {
		t.Fatalf("SlowRate = %g, want %g", got, want)
	}
	wantMean := float64(3*50_000+2_000_000+50_000) / 5
	if snap.MeanCycles != wantMean {
		t.Fatalf("MeanCycles = %g, want %g", snap.MeanCycles, wantMean)
	}
	if got, want := snap.MeanWallNanos, float64(3*1000+9000)/5; got != want {
		t.Fatalf("MeanWallNanos = %g, want %g", got, want)
	}
	if got, want := snap.MeanAllocBytes, float64(3*64+640)/5; got != want {
		t.Fatalf("MeanAllocBytes = %g, want %g", got, want)
	}
	if got, want := snap.DRAMBytesPerSec, float64(3*4096+8192)/10; got != want {
		t.Fatalf("DRAMBytesPerSec = %g, want %g", got, want)
	}
	if got, want := snap.CacheMissRatio, float64(10*3+50+10)/float64(100*3+200+100); got != want {
		t.Fatalf("CacheMissRatio = %g, want %g", got, want)
	}
}

// TestWindowedQuantileMatchesHistogram is the acceptance check: the windowed
// p50/p95/p99 must agree exactly with Histogram.Quantile over the same
// samples — both sides share the bucket grid and the interpolation.
func TestWindowedQuantileMatchesHistogram(t *testing.T) {
	clk := newFakeClock(5000)
	w := NewWindowsAt(30, clk.Now)
	reg := NewRegistry()
	h := reg.Histogram("cmp_cycles", nil)

	cycles := []uint64{100, 900, 5_000, 5_000, 60_000, 250_000, 1_100_000,
		4_000_000, 4_100_000, 17_000_000, 65_000_000, 300_000_000, 1_200_000_000,
		5_000_000_000, 20_000_000_000, 90_000_000_000}
	for i, c := range cycles {
		w.Record(WindowSample{Cycles: c})
		h.Observe(float64(c))
		if i%4 == 3 {
			clk.AdvanceSec(1) // spread across seconds to exercise the merge
		}
	}
	snap := w.Snapshot(30)
	for _, q := range []struct {
		q    float64
		got  float64
		name string
	}{
		{0.50, snap.P50Cycles, "p50"},
		{0.95, snap.P95Cycles, "p95"},
		{0.99, snap.P99Cycles, "p99"},
	} {
		if want := h.Quantile(q.q); q.got != want {
			t.Fatalf("windowed %s = %g, Histogram.Quantile = %g — must match exactly", q.name, q.got, want)
		}
	}
}

func TestWindowsEviction(t *testing.T) {
	clk := newFakeClock(2000)
	w := NewWindowsAt(5, clk.Now)
	w.Record(WindowSample{Cycles: 1000})
	if got := w.Snapshot(0).Queries; got != 1 {
		t.Fatalf("fresh sample: queries = %d, want 1", got)
	}
	// Advance past the ring span: the old second evicts even though its slot
	// was never overwritten.
	clk.AdvanceSec(6)
	if got := w.Snapshot(0).Queries; got != 0 {
		t.Fatalf("after eviction: queries = %d, want 0", got)
	}
	// A narrow window excludes in-ring but out-of-window seconds.
	w.Record(WindowSample{Cycles: 1000})
	clk.AdvanceSec(2)
	w.Record(WindowSample{Cycles: 2000})
	if got := w.Snapshot(2).Queries; got != 1 {
		t.Fatalf("narrow window: queries = %d, want 1", got)
	}
	if got := w.Snapshot(5).Queries; got != 2 {
		t.Fatalf("full window: queries = %d, want 2", got)
	}
}

func TestWindowsSeries(t *testing.T) {
	clk := newFakeClock(3000)
	w := NewWindowsAt(30, clk.Now)
	w.Record(WindowSample{Cycles: 1000, BytesDRAM: 10})
	w.Record(WindowSample{Err: true})
	clk.AdvanceSec(2) // leave a one-second gap
	w.Record(WindowSample{Cycles: 3000, BytesDRAM: 30})

	pts := w.Series(10)
	if len(pts) != 2 {
		t.Fatalf("series has %d points, want 2 (gap seconds omitted): %+v", len(pts), pts)
	}
	if pts[0].UnixSec != 3000 || pts[0].Queries != 2 || pts[0].Errors != 1 || pts[0].Cycles != 1000 {
		t.Fatalf("first point = %+v", pts[0])
	}
	if pts[1].UnixSec != 3002 || pts[1].Queries != 1 || pts[1].DRAMBytes != 30 {
		t.Fatalf("second point = %+v", pts[1])
	}
}

func TestWindowsDisabledAndNil(t *testing.T) {
	var nilW *Windows
	if nilW.Enabled() {
		t.Fatal("nil Windows reports enabled")
	}
	nilW.Record(WindowSample{Cycles: 1}) // must not panic
	nilW.SetSLOCycles(5)
	nilW.SetDisabled(true)
	if s := nilW.Snapshot(10); s.Queries != 0 {
		t.Fatalf("nil snapshot = %+v", s)
	}
	if pts := nilW.Series(10); pts != nil {
		t.Fatalf("nil series = %+v", pts)
	}

	clk := newFakeClock(100)
	w := NewWindowsAt(10, clk.Now)
	w.SetDisabled(true)
	if w.Enabled() {
		t.Fatal("disabled Windows reports enabled")
	}
	w.Record(WindowSample{Cycles: 1})
	if got := w.Snapshot(0).Queries; got != 0 {
		t.Fatalf("disabled Record still counted: %d", got)
	}
	w.SetDisabled(false)
	w.Record(WindowSample{Cycles: 1})
	if got := w.Snapshot(0).Queries; got != 1 {
		t.Fatalf("re-enabled Record lost: %d", got)
	}
}

func TestWindowsConcurrentRecord(t *testing.T) {
	clk := newFakeClock(7000)
	w := NewWindowsAt(10, clk.Now)
	const goroutines, per = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				w.Record(WindowSample{Cycles: 1000, BytesDRAM: 8})
			}
		}()
	}
	wg.Wait()
	snap := w.Snapshot(0)
	if snap.Queries != goroutines*per {
		t.Fatalf("queries = %d, want %d", snap.Queries, goroutines*per)
	}
	if got, want := snap.DRAMBytesPerSec*float64(snap.WindowSeconds), float64(goroutines*per*8); got != want {
		t.Fatalf("dram bytes = %g, want %g", got, want)
	}
}

func TestWindowsHandle(t *testing.T) {
	clk := newFakeClock(9000)
	w := NewWindowsAt(60, clk.Now)
	w.Record(WindowSample{Cycles: 4000})
	mux := http.NewServeMux()
	w.Handle(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (int, []byte) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}

	code, body := get("/debug/windows.json")
	if code != http.StatusOK {
		t.Fatalf("/debug/windows.json: HTTP %d", code)
	}
	var doc WindowsJSON
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("windows.json not JSON: %v\n%s", err, body)
	}
	if doc.NowUnix != 9000 || doc.Window.Queries != 1 || len(doc.Series) != 1 {
		t.Fatalf("windows.json doc = %+v", doc)
	}

	code, body = get("/debug/windows.json?window=5")
	var narrow WindowsJSON
	if code != http.StatusOK || json.Unmarshal(body, &narrow) != nil {
		t.Fatalf("?window=5: HTTP %d body %s", code, body)
	}
	if narrow.Window.WindowSeconds != 5 {
		t.Fatalf("?window=5 snapshot window = %d", narrow.Window.WindowSeconds)
	}

	if code, _ := get("/debug/windows.json?window=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad window parameter: HTTP %d, want 400", code)
	}
}

// allocSink defeats dead-store elimination in TestHeapAllocBytesMonotonic.
var allocSink []byte

func TestHeapAllocBytesMonotonic(t *testing.T) {
	a := HeapAllocBytes()
	allocSink = make([]byte, 1<<20)
	b := HeapAllocBytes()
	if b < a {
		t.Fatalf("heap alloc counter went backwards: %d then %d", a, b)
	}
	if b == 0 {
		t.Fatal("heap alloc counter is zero")
	}
}
