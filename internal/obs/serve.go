package obs

import (
	"encoding/json"
	"net/http"
)

// NewMux builds the live-export HTTP surface:
//
//	GET /metrics                  — Prometheus text exposition of reg
//	GET /metrics.json             — JSON dump of reg
//	GET /debug/trace/last         — the most recent query trace as JSON
//	GET /debug/trace/last.chrome  — same trace in Chrome Trace Event
//	                                Format (open in ui.perfetto.dev)
//
// Both rfbench -serve and embedding applications mount it; tests drive it
// through net/http/httptest.
func NewMux(reg *Registry, last *LastTrace) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		reg.WriteJSON(w)
	})
	mux.HandleFunc("/debug/trace/last", func(w http.ResponseWriter, req *http.Request) {
		t := last.Load()
		if t == nil {
			http.Error(w, `{"error":"no trace recorded yet"}`, http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(t)
	})
	mux.HandleFunc("/debug/trace/last.chrome", func(w http.ResponseWriter, req *http.Request) {
		t := last.Load()
		if t == nil {
			http.Error(w, `{"error":"no trace recorded yet"}`, http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="trace.chrome.json"`)
		t.WriteChrome(w)
	})
	return mux
}
